// Package repro is the root of the FEO reproduction module. The library
// lives in the feo package (public API) and internal/* (substrates); this
// root package carries the repository-level benchmark suite that
// regenerates and times every artifact of the paper's evaluation — see
// bench_test.go, DESIGN.md, and EXPERIMENTS.md.
package repro
