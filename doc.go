// Package repro is the root of the FEO reproduction module. The library
// lives in the feo package (public API) and internal/* (substrates); this
// root package carries the repository-level benchmark suite that
// regenerates and times every artifact of the paper's evaluation — see
// bench_test.go, DESIGN.md, and EXPERIMENTS.md.
//
// # Dictionary-encoded engine
//
// The storage and query substrate is dictionary-encoded: internal/store
// interns every distinct RDF term into a dense uint32 ID (store.TermDict)
// and keeps its SPO/POS/OSP permutation indexes as nested map[ID]
// structures. Terms are encoded once, on write; reads decode lazily, only
// for the positions a caller receives. The two hot consumers exploit this
// end to end: the OWL RL reasoner (internal/reasoner) joins rule premises
// on IDs, and the SPARQL evaluator (internal/sparql) runs basic graph
// patterns as an ID-space pipeline after reordering them by estimated
// selectivity. scripts/bench.sh records the benchmark trajectory across
// PRs (BENCH_*.json).
package repro
