// Package repro is the root of the FEO reproduction module. The library
// lives in the feo package (public API) and internal/* (substrates); this
// root package carries the repository-level benchmark suite that
// regenerates and times every artifact of the paper's evaluation — see
// bench_test.go, DESIGN.md, and EXPERIMENTS.md.
//
// # Dictionary-encoded engine
//
// The storage and query substrate is dictionary-encoded: internal/store
// interns every distinct RDF term into a dense uint32 ID (store.TermDict)
// and keeps its SPO/POS/OSP permutation indexes as nested map[ID]
// structures. Terms are encoded once, on write; reads decode lazily, only
// for the positions a caller receives. The two hot consumers exploit this
// end to end: the OWL RL reasoner (internal/reasoner) joins rule premises
// on IDs, and the SPARQL evaluator (internal/sparql) runs basic graph
// patterns as an ID-space pipeline after reordering them by estimated
// selectivity.
//
// # Parallel query execution
//
// On top of the ID pipeline the evaluator fans each query out across a
// worker pool: BGP joins partition their row stream into contiguous
// morsels, UNION branches and OPTIONAL/EXISTS probes evaluate
// concurrently, filters apply in parallel morsels, and property-path BFS
// frontiers expand across workers. The knob is
// sparql.SetParallelism (re-exported as feo.SetQueryParallelism): 0 means
// one worker per CPU, 1 pins the sequential reference implementation, and
// results are identical at every setting — workers write into
// index-ordered slots, so the fan-out preserves the sequential append
// order, and the equivalence suite (internal/sparql/parallel_test.go,
// parallel_equiv_test.go) holds every operator and every paper artifact
// byte-identical across parallelism levels. The pool relies on the
// store's reader contract: a quiescent Graph is safe for any number of
// concurrent readers.
//
// # Benchmark trajectory and its CI gate
//
// scripts/bench.sh records the benchmark suite (all packages) across PRs
// (BENCH_*.json), and scripts/bench_compare.sh enforces it: the CI
// bench-compare job re-runs the suite and fails the build when a paper
// listing, Table I, figure, or reasoner benchmark regresses more than 15%
// against the latest committed trajectory point.
package repro
