// Package repro is the root of the FEO reproduction module. The library
// lives in the feo package (public API) and internal/* (substrates); this
// root package carries the repository-level benchmark suite that
// regenerates and times every artifact of the paper's evaluation — see
// bench_test.go, DESIGN.md, and EXPERIMENTS.md.
//
// # Dictionary-encoded engine over roaring bitmap indexes
//
// The storage and query substrate is dictionary-encoded: internal/store
// interns every distinct RDF term into a dense uint32 ID (store.TermDict)
// and keeps its SPO/POS/OSP permutation indexes as two nested map levels
// whose innermost level is a roaring-style bitmap set (store.IDSet,
// internal/store/bitset.go) — 16-bit-keyed containers, sorted-array when
// sparse and 1024-word bitmap when dense. Terms are encoded once, on
// write; reads decode lazily, only for the positions a caller receives,
// and ID-level set iteration is in ascending ID order. The two hot
// consumers exploit this end to end: the OWL RL reasoner
// (internal/reasoner) joins rule premises on IDs with bitmap membership
// probes, and the SPARQL evaluator (internal/sparql) runs basic graph
// patterns as an ID-space pipeline after reordering them by estimated
// selectivity — fusing runs of patterns that constrain the same fresh
// variable into word-level bitmap intersections (Graph.MatchSetID +
// IDSet.And), and running property-path BFS with bitmap visited/frontier
// sets. Graph.Version counts mutations, so memoized per-version state
// (path reachability, the SPARQL plan cache) can assert graph stability.
//
// # MVCC snapshot reads
//
// The store is multi-versioned: a single writer mutates the live graph
// and, at commit points, publishes an immutable store.Snapshot via one
// atomic pointer swap (internal/store/mvcc.go). Readers pin the latest
// snapshot with one atomic load and read its frozen view indefinitely —
// no lock, no coordination, never blocking the writer and never blocked
// by it. Publishing bumps a copy-on-write epoch: index structures the
// snapshot shares with the live graph are copied the first time the
// writer touches them again (outer index levels by slice memcpy, bitmap
// sets container-by-container), so an untouched region costs nothing and
// a pinned snapshot always observes exactly its publish-time state. The
// Graph.Begin/Txn.Commit transaction surface wraps the protocol for
// layered writers and doubles as the write-ahead-log capture point;
// Txn.CommitDeferred retains a commit privately so a burst of writes
// shares one copy-on-write freeze instead of paying one per commit.
//
// feo.Session serves on top of this: every read method pins a snapshot
// (feo.Snapshot is the explicit multi-call handle), writers serialize on
// an internal mutex and commit with the publish deferred — the next pin
// publishes the accumulated state, without waiting, falling back to the
// latest published version if a writer holds the lock just then — and the
// serve-time writer stall points — WAL fsync, log compaction — happen
// with no reader-visible lock held at all.
//
// # Parallel query execution
//
// On top of the ID pipeline the evaluator fans each query out across a
// worker pool: BGP joins partition their row stream into contiguous
// morsels, UNION branches and OPTIONAL/EXISTS probes evaluate
// concurrently, filters apply in parallel morsels, and property-path BFS
// frontiers expand across workers. The knob is
// sparql.SetParallelism (re-exported as feo.SetQueryParallelism): 0 means
// one worker per CPU, 1 pins the sequential reference implementation, and
// results are identical at every setting — workers write into
// index-ordered slots, so the fan-out preserves the sequential append
// order, and the equivalence suite (internal/sparql/parallel_test.go,
// parallel_equiv_test.go) holds every operator and every paper artifact
// byte-identical across parallelism levels. The pool relies on the
// store's reader contract: a quiescent Graph is safe for any number of
// concurrent readers.
//
// # Crash-safe durability
//
// internal/durable persists the whole engine state: a binary snapshot of
// the TermDict, the three roaring permutation indexes, namespaces, and
// the reasoner's carried closure (dictionary-coded against the snapshot's
// own term table), plus a CRC-32C-framed write-ahead log that records
// every committed mutation batch — the ordered asserted+inferred op
// stream, the derivation delta, and the end-of-commit version — before
// the public API acknowledges it. Boot is O(file size): read the
// snapshot, replay the WAL verbatim (no rule evaluation), restore the
// closure once, and resume incremental materialization. A torn or
// corrupt WAL tail truncates at the first bad frame, so recovery is
// always a prefix of the acknowledged commits; the crash-recovery CI job
// enforces exactly that with randomized apply/crash/reopen loops,
// exhaustive truncation offsets, bit flips, and mid-write failpoint
// kills (feo/crash_test.go, internal/durable/durable_test.go). Turn it
// on with feo.Options{DataDir: ...} or `feo -datadir` (sync policy
// selectable: always/interval/never); `feo compact` rewrites the
// snapshot and truncates the log, and `feo serve` drains in-flight
// requests and flushes the WAL on SIGINT/SIGTERM. The gated
// SnapshotLoad/TurtleBoot benchmark pair keeps snapshot boot measurably
// faster than re-parsing Turtle and re-running the reasoner. Commits
// append to the log before the new version is published, so a pinned
// reader can never observe state that is not durably logged, and
// feo.Session.Compact serializes its snapshot from a pinned immutable
// view — the fsync-heavy step blocks neither readers nor writers.
//
// # The serve tier
//
// `feo serve` exposes the engine over HTTP. /sparql speaks the SPARQL
// 1.1 Protocol — GET ?query=, urlencoded POST, and raw
// application/sparql-query POST — with the result format negotiated
// (?format= or Accept with q-values) before the query runs, and answers
// in the W3C JSON, XML, CSV, or TSV result formats. Serialization
// streams: sparql.ExecuteStream feeds each projected row through a
// constant-memory ResultWriter (internal/sparql/stream.go), so result
// size never shows up as server memory, and every query runs under the
// server's deadline and row/byte caps — a runaway query is canceled
// cooperatively, a capped one ends as a well-formed truncated document
// with the reason in the X-Feo-Truncated trailer. Handler semantics are
// strict: 405 with Allow, 415 for unknown POST bodies, 406 for an
// unsatisfiable Accept. /metrics publishes a hand-rolled Prometheus text
// exposition (internal/metrics, stdlib-only, byte-deterministic):
// per-endpoint latency histograms and response counters, plan-cache
// hits/misses, snapshot age, graph size, and reasoner inference gauges.
// `feo loadtest` closes the loop — a closed-loop harness replays the
// mixed sparql/explain/recommend workload, gates CI on zero 5xx, and
// records throughput and p50/p99 (LOAD_*.json) next to the benchmark
// trajectory.
//
// # Static invariants
//
// The MVCC, durability, and determinism contracts above are not just
// documentation: cmd/feovet is a custom vet tool (a stdlib-only
// go/analysis-style framework, internal/analysis) that proves them at
// build time from //feo: annotations on the code itself. frozenmut
// verifies that no mutator is statically reachable from a published
// snapshot view and that every exported method of a mutable type
// declares itself //feo:mutates or //feo:frozen-safe (fail closed);
// walorder verifies that the WAL append precedes snapshot publication
// on every commit path, that nothing publishes on a failed append's
// error branch, and that durability errors are consumed; mapdeterminism
// verifies that paper-artifact emitters never iterate Go maps in output
// order without a sort or an explicit //feo:unordered justification;
// idspacedecode verifies that ID-space query hot paths never decode
// terms. CI builds feovet and runs `go vet -vettool=feovet ./...` next
// to gofmt, plain go vet, staticcheck, and govulncheck; the
// internal/analysis analysistest suites prove each pass fails when its
// contract is broken (an annotation deleted, a frozen-view mutation
// injected, a commit reordered, a sort removed).
//
// # Benchmark trajectory and its CI gate
//
// scripts/bench.sh records the benchmark suite (all packages) across PRs
// (BENCH_*.json), and scripts/bench_compare.sh enforces it: the CI
// bench-compare job re-runs the suite and fails the build when a paper
// listing, Table I, figure, reasoner, or store bitset/dense-pattern
// benchmark regresses more than 15% against the latest committed
// trajectory point.
package repro
