package feo

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// TestSessionSnapshotIsolation is the session-level MVCC harness (run
// under -race in CI): a pinned Snapshot must stay bit-identical — same
// Turtle serialization, same query results, same version — while a
// concurrent stream of Update and Explain commits mutates the session,
// and a fresh pin taken afterwards must see every commit.
func TestSessionSnapshotIsolation(t *testing.T) {
	s := NewSession(Options{})

	sn := s.Snapshot()
	var before bytes.Buffer
	if err := sn.WriteTurtle(&before); err != nil {
		t.Fatalf("WriteTurtle: %v", err)
	}
	const probe = `SELECT ?s WHERE { ?s a <http://x/mvcc/Marker> }`
	res0, err := sn.Query(probe)
	if err != nil {
		t.Fatalf("probe query: %v", err)
	}
	if res0.Len() != 0 {
		t.Fatalf("marker class already populated")
	}
	baseUsers := len(sn.Users())

	const commits = 15
	var wg sync.WaitGroup
	writerDone := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		for i := 0; i < commits; i++ {
			if _, err := s.Update(fmt.Sprintf(
				"INSERT DATA { <http://x/mvcc/s%d> a <http://x/mvcc/Marker> . }", i)); err != nil {
				t.Errorf("update %d: %v", i, err)
				return
			}
			if _, err := s.Explain(Question{Type: Contextual, Primary: FEO("CauliflowerPotatoCurry")}); err != nil {
				t.Errorf("explain %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				var now bytes.Buffer
				if err := sn.WriteTurtle(&now); err != nil {
					t.Errorf("pinned WriteTurtle: %v", err)
					return
				}
				if !bytes.Equal(before.Bytes(), now.Bytes()) {
					t.Errorf("pinned snapshot serialization changed under concurrent commits")
					return
				}
				res, err := sn.Query(probe)
				if err != nil || res.Len() != 0 {
					t.Errorf("pinned snapshot sees marker inserts: res=%v err=%v", res.Len(), err)
					return
				}
				if got := len(sn.Users()); got != baseUsers {
					t.Errorf("pinned snapshot user count moved %d -> %d", baseUsers, got)
					return
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	fresh := s.Snapshot()
	if fresh.Version() <= sn.Version() {
		t.Fatalf("fresh pin version %d not past pinned %d", fresh.Version(), sn.Version())
	}
	res, err := fresh.Query(probe)
	if err != nil {
		t.Fatalf("fresh probe: %v", err)
	}
	if res.Len() != commits {
		t.Fatalf("fresh pin sees %d markers, want %d", res.Len(), commits)
	}
	if sn.Superseded() != true || fresh.Superseded() != false {
		t.Fatalf("superseded flags wrong: old=%v fresh=%v", sn.Superseded(), fresh.Superseded())
	}
	// The old pin still answers, unchanged, after everything settled.
	var after bytes.Buffer
	if err := sn.WriteTurtle(&after); err != nil {
		t.Fatalf("pinned WriteTurtle after settle: %v", err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatalf("pinned snapshot drifted after commits settled")
	}
}

// TestSessionReadsSeeCommit: the pin-and-delegate Session read methods
// must observe a commit as soon as the mutating call returns.
func TestSessionReadsSeeCommit(t *testing.T) {
	s := NewSession(Options{})
	if _, err := s.Update("INSERT DATA { <http://x/seen/a> <http://x/seen/p> <http://x/seen/b> . }"); err != nil {
		t.Fatalf("update: %v", err)
	}
	res, err := s.Query("SELECT ?o WHERE { <http://x/seen/a> <http://x/seen/p> ?o }")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Len() != 1 {
		t.Fatalf("committed triple not visible to Session.Query: %d rows", res.Len())
	}
}
