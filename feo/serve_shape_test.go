package feo

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// TestServeShapeMatchesSequentialReplay drives a Session in the exact shape
// `feo serve` produces — one stream of mutating requests (Explain with
// fresh question texts, INSERT DATA, a DELETE DATA that forces the full
// fallback) interleaved with many concurrent Query/Recommend readers — and
// then checks the final state is byte-for-byte the state a sequential
// replay of the same write stream produces. Run under -race (CI does) this
// locks in both halves of the serve contract: the locking keeps the
// incremental re-materialization invisible to readers, and the delta path
// converges to exactly the closure the historical full re-runs built.
func TestServeShapeMatchesSequentialReplay(t *testing.T) {
	cfg := KGConfig{
		Seed: 11, Recipes: 25, Ingredients: 20, Users: 4,
		MinIngredients: 2, MaxIngredients: 4,
		SeasonalShare: 0.5, LikesPerUser: 2, DislikesPerUser: 1,
	}
	newSession := func() *Session { return NewSession(Options{Data: DataSynthetic, KG: cfg}) }

	live := newSession()
	recipes := live.Recipes()
	users := live.Users()
	if len(recipes) < 4 || len(users) == 0 {
		t.Fatalf("synthetic KG too small: %d recipes, %d users", len(recipes), len(users))
	}

	// The write stream. Each op must be deterministic given execution order;
	// a single writer goroutine preserves that order in the live run.
	type op func(s *Session) error
	var ops []op
	for i := 0; i < 6; i++ {
		i := i
		ops = append(ops, func(s *Session) error {
			_, err := s.Explain(Question{
				Type:    Contextual,
				Primary: recipes[i%len(recipes)],
				Text:    fmt.Sprintf("serve-shape ask %d", i),
			})
			return err
		})
		ops = append(ops, func(s *Session) error {
			_, err := s.Update(fmt.Sprintf(`INSERT DATA {
  <http://example.org/serve/batch%d> a <http://purl.org/heals/food/Ingredient> .
}`, i))
			return err
		})
	}
	// One deletion mid-stream: exercises the monotonic full-path fallback
	// and staleness detection under the serve mix.
	ops = append(ops[:7], append([]op{func(s *Session) error {
		_, err := s.Update(`DELETE DATA {
  <http://example.org/serve/batch0> a <http://purl.org/heals/food/Ingredient> .
}`)
		return err
	}}, ops[7:]...)...)

	// Concurrent phase: one writer in-order, many readers hammering.
	done := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		defer close(done)
		for _, o := range ops {
			if err := o(live); err != nil {
				writerErr <- err
				return
			}
		}
	}()
	var wg sync.WaitGroup
	readerErrs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := live.Query(`SELECT ?q WHERE { ?q a feo:FoodQuestion }`)
				if err != nil {
					readerErrs <- fmt.Errorf("reader %d query: %w", w, err)
					return
				}
				_ = res.Len()
				if recs := live.Recommend(users[w%len(users)], 3); len(recs) == 0 {
					readerErrs <- fmt.Errorf("reader %d: no recommendations", w)
					return
				}
				_ = live.Stats()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatalf("writer: %v", err)
	default:
	}
	close(readerErrs)
	for err := range readerErrs {
		t.Error(err)
	}

	// Sequential replay on an identical fresh session.
	replay := newSession()
	for i, o := range ops {
		if err := o(replay); err != nil {
			t.Fatalf("replay op %d: %v", i, err)
		}
	}

	// Blank node labels are session-local (the Turtle parser numbers its
	// documents process-globally), so compare up to bnode isomorphism.
	if !store.Isomorphic(live.Graph(), replay.Graph()) {
		t.Fatal("concurrent serve shape and sequential replay built different graphs")
	}
	// Probe a rendered artifact too: identical graphs must answer
	// identically through the full query stack.
	const probe = `SELECT ?q ?text WHERE { ?q a feo:FoodQuestion . ?q rdfs:comment ?text } ORDER BY ?text`
	liveRes, err := live.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	replayRes, err := replay.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	if liveRes.Table() != replayRes.Table() {
		t.Errorf("probe query diverges:\nlive:\n%s\nreplay:\n%s", liveRes.Table(), replayRes.Table())
	}
	if !strings.Contains(liveRes.Table(), "serve-shape ask 5") {
		t.Error("probe should surface the asserted question texts")
	}
}

// TestServeShapeDurable runs the same serve-shaped traffic mix against a
// durable session — one writer, concurrent readers, and a background
// goroutine forcing log compactions while the writer commits (the race a
// long-lived `feo serve -datadir` process sees) — then closes the session
// and asserts the on-disk snapshot + write-ahead log replay to exactly the
// graph the live session ended with. Run under -race this locks in that
// Append/Compact are safe against the session's own writer and that
// compaction never drops or duplicates a commit.
func TestServeShapeDurable(t *testing.T) {
	cfg := KGConfig{
		Seed: 13, Recipes: 25, Ingredients: 20, Users: 4,
		MinIngredients: 2, MaxIngredients: 4,
		SeasonalShare: 0.5, LikesPerUser: 2, DislikesPerUser: 1,
	}
	dir := t.TempDir()
	live, err := Open(Options{Data: DataSynthetic, KG: cfg, DataDir: dir,
		Sync: SyncInterval, SyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	recipes := live.Recipes()
	users := live.Users()

	done := make(chan struct{})
	writerErr := make(chan error, 1)
	go func() {
		defer close(done)
		for i := 0; i < 12; i++ {
			if _, err := live.Explain(Question{
				Type:    Contextual,
				Primary: recipes[i%len(recipes)],
				Text:    fmt.Sprintf("durable serve ask %d", i),
			}); err != nil {
				writerErr <- err
				return
			}
			if _, err := live.Update(fmt.Sprintf(`INSERT DATA {
  <http://example.org/serve/durable%d> a <http://purl.org/heals/food/Ingredient> .
}`, i)); err != nil {
				writerErr <- err
				return
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	// Background compactions racing the writer's commits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := live.Compact(); err != nil {
				errs <- fmt.Errorf("compact: %w", err)
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := live.Query(`SELECT ?q WHERE { ?q a feo:FoodQuestion }`); err != nil {
					errs <- fmt.Errorf("reader %d: %w", w, err)
					return
				}
				_ = live.Recommend(users[w%len(users)], 3)
				_ = live.Stats()
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-writerErr:
		t.Fatalf("writer: %v", err)
	default:
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := live.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	recovered, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer recovered.Close()
	if !recovered.Replayed() {
		t.Fatal("reopen did not replay from disk")
	}
	if !recovered.Graph().Equal(live.Graph()) {
		t.Fatalf("on-disk state diverged from the live session (%d vs %d triples)",
			recovered.Graph().Len(), live.Graph().Len())
	}
	const probe = `SELECT ?q ?text WHERE { ?q a feo:FoodQuestion . ?q rdfs:comment ?text } ORDER BY ?text`
	liveRes, err := live.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	recRes, err := recovered.Query(probe)
	if err != nil {
		t.Fatal(err)
	}
	if liveRes.Table() != recRes.Table() {
		t.Errorf("probe query diverges after replay:\nlive:\n%s\nrecovered:\n%s",
			liveRes.Table(), recRes.Table())
	}
}
