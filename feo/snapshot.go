package feo

import (
	"fmt"
	"io"

	"repro/internal/healthcoach"
	"repro/internal/ontology"
	"repro/internal/rdfxml"
	"repro/internal/reasoner"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// Snapshot is a pinned, immutable read view of a Session: one published
// version of the materialized graph, plus a Health Coach bound to it.
// Every method reads exactly the pinned version, no matter how many
// commits land concurrently, and takes no lock — a Snapshot never blocks
// a writer and is never blocked by one.
//
// Pinning is an atomic dirty-check plus an atomic pointer load (plus a
// non-blocking publish of any deferred commits — see Session.Snapshot);
// the handle itself is two small allocations (the Coach is stateless).
// Pin per request, or hold one across several calls when they must
// observe a single consistent version:
//
//	sn := sess.Snapshot()
//	users := sn.Users()              // same version ...
//	recs := sn.Recommend(users[0], 3) // ... as this ranking
//
// A held Snapshot stays fully readable after newer versions publish
// (Superseded then reports true); it pins its version's share of the
// graph in memory until released to the garbage collector.
//
//feo:frozen-type
type Snapshot struct {
	sess  *Session
	snap  *store.Snapshot
	g     *store.Graph // frozen view; mutating it panics
	coach *healthcoach.Coach
}

// Snapshot pins the latest published version of the session graph and
// returns a read handle onto it. See Snapshot's type documentation.
//
// Commits keep their state private until a pin asks for it (deferring the
// publish lets a burst of writes share one copy-on-write freeze), so
// Snapshot first publishes any pending commits — if it can take the
// writer lock without waiting. If a writer holds the lock right now, the
// pin falls back to the latest published version: still a fully
// consistent view, just the one from a moment earlier, and the pin
// remains non-blocking. One consequence: read-your-write is guaranteed
// only when no OTHER writer is mid-commit at pin time.
func (s *Session) Snapshot() *Snapshot {
	if s.dirty.Load() && s.mu.TryLock() {
		if s.dirty.Load() {
			s.graph.Publish()
			s.dirty.Store(false)
		}
		s.mu.Unlock()
	}
	sp := s.graph.Snapshot()
	g := sp.Graph()
	return &Snapshot{sess: s, snap: sp, g: g, coach: healthcoach.New(g, s.weights)}
}

// Version returns the graph mutation version this handle pins.
func (sn *Snapshot) Version() uint64 { return sn.snap.Version() }

// Superseded reports whether the session has published a newer version
// since this handle pinned. The handle remains fully readable either way.
func (sn *Snapshot) Superseded() bool { return sn.snap.Superseded() }

// Graph returns the pinned frozen graph view. All store read methods
// work on it; mutating methods panic.
func (sn *Snapshot) Graph() *store.Graph { return sn.g }

// Query runs a SPARQL query against the pinned version. Repeated queries
// on the same handle (or on any handle pinning the same version) hit the
// engine's plan cache.
func (sn *Snapshot) Query(q string) (*QueryResult, error) { return sparql.Run(sn.g, q) }

// QueryStream runs a SELECT or ASK query against the pinned version and
// feeds each result row into rw as it is produced, bounded by opts —
// memory stays O(row) on the serialization side no matter how large the
// result is. CONSTRUCT/DESCRIBE return ErrGraphResult (use Query plus a
// graph serializer); a deadline that fires before the first byte returns
// ErrQueryDeadlineExceeded, and one that fires mid-stream ends the
// document with a well-formed truncation instead.
func (sn *Snapshot) QueryStream(q string, rw ResultWriter, opts StreamOptions) (StreamStats, error) {
	return sparql.RunStream(sn.g, q, rw, opts)
}

// Recommend ranks recipes for the user against the pinned version.
func (sn *Snapshot) Recommend(user Term, limit int) []Recommendation {
	return sn.coach.Recommend(user, limit)
}

// RecommendGroup ranks recipes for a group against the pinned version;
// any member's hard constraint excludes a recipe.
func (sn *Snapshot) RecommendGroup(users []Term, limit int) []Recommendation {
	return sn.coach.RecommendGroup(users, limit)
}

// Users returns the user individuals in the pinned version.
func (sn *Snapshot) Users() []Term { return sn.g.InstancesOf(ontology.FoodUser) }

// Recipes returns the recipe individuals in the pinned version.
func (sn *Snapshot) Recipes() []Term { return sn.g.InstancesOf(ontology.FoodRecipe) }

// Validate runs the OWL consistency checks over the pinned version.
func (sn *Snapshot) Validate() []reasoner.Inconsistency { return reasoner.Validate(sn.g) }

// ExplainTriple returns the reasoner's derivation proof for a triple.
//
// Caveat: derivation traces live in the session's reasoner and are not
// versioned with the graph, so this delegates to the live session state —
// it reflects every commit up to now, which may be NEWER than the pinned
// version (never older: the proofs for everything in this version exist).
func (sn *Snapshot) ExplainTriple(subject, predicate, object Term) []reasoner.ProofStep {
	return sn.sess.ExplainTriple(subject, predicate, object)
}

// WriteTurtle serializes the pinned version as Turtle.
//
//feo:emit
func (sn *Snapshot) WriteTurtle(w io.Writer) error { return turtle.Write(w, sn.g) }

// WriteRDFXML serializes the pinned version as RDF/XML.
//
//feo:emit
func (sn *Snapshot) WriteRDFXML(w io.Writer) error { return rdfxml.Write(w, sn.g) }

// WriteGraphTurtle serializes any graph — typically a CONSTRUCT or
// DESCRIBE result — as Turtle.
//
//feo:emit
func WriteGraphTurtle(w io.Writer, g *Graph) error { return turtle.Write(w, g) }

// Stats summarizes the pinned version.
//
//feo:emit
func (sn *Snapshot) Stats() string {
	st := sn.g.Statistics()
	return fmt.Sprintf("triples=%d subjects=%d predicates=%d classes=%d instances=%d",
		st.Triples, st.Subjects, st.Predicates, st.Classes, st.Instances)
}
