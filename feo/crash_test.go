package feo

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/rdf"
)

// Crash-fault-injection harness for the durability subsystem.
//
// The contract under test: a session opened on a data directory recovers to
// the state after some prefix of its acknowledged commits — with
// Sync: SyncAlways, exactly ALL of them — no matter where the write-ahead
// log was torn or bit-flipped, and the recovered session is behaviorally
// indistinguishable from an uncrashed replica that applied the same
// commits: same graph, same stats, same validation verdicts, same
// derivation proofs, same post-recovery explanation output (including the
// resumed question numbering).
//
// Process crashes are simulated by copying the data directory out from
// under a live session (never calling Close, so nothing is flushed on the
// way out) and damaging the copy's WAL tail.

// harnessOp is one deterministic session mutation, replayable on any
// session so a victim and its replica apply identical schedules. Bnode-free
// by construction: blank-node labels are process-global, so a schedule
// containing them would not replay identically.
type harnessOp struct {
	name    string
	explain *Question
	update  string
	turtle  string
}

func (op harnessOp) apply(s *Session) error {
	switch {
	case op.explain != nil:
		_, err := s.Explain(*op.explain)
		return err
	case op.update != "":
		_, err := s.Update(op.update)
		return err
	default:
		return s.LoadTurtle(op.turtle)
	}
}

// randomSchedule builds a deterministic mixed mutation schedule: fresh and
// repeated explanations, INSERT/DELETE DATA, Turtle loads, and (rarely) a
// CLEAR immediately refilled with a small document.
func randomSchedule(rng *rand.Rand, k int, allowClear bool) []harnessOp {
	recipes := []Term{FEO("CauliflowerPotatoCurry"), FEO("Sushi"), FEO("ButternutSquashSoup")}
	users := []Term{FEO("User1"), FEO("User2")}
	types := []ExplanationType{Contextual, Contrastive, Counterfactual, Everyday, Scientific}
	var ops []harnessOp
	for i := 0; len(ops) < k; i++ {
		switch n := rng.Intn(10); {
		case n < 4:
			q := Question{
				Type:    types[rng.Intn(len(types))],
				Primary: recipes[rng.Intn(len(recipes))],
				User:    users[rng.Intn(len(users))],
			}
			if q.Type == Contrastive {
				q.Secondary = recipes[rng.Intn(len(recipes))]
			}
			ops = append(ops, harnessOp{name: "explain", explain: &q})
		case n < 6:
			ops = append(ops, harnessOp{
				name: "insert",
				update: fmt.Sprintf(
					"INSERT DATA { <http://e/crash/s%d> <http://e/crash/p> <http://e/crash/o%d> . }",
					i, rng.Intn(3)),
			})
		case n < 7:
			ops = append(ops, harnessOp{
				name:   "delete",
				update: fmt.Sprintf("DELETE DATA { <http://e/crash/s%d> <http://e/crash/p> <http://e/crash/o0> . }", rng.Intn(i+1)),
			})
		case n < 9:
			ops = append(ops, harnessOp{
				name: "turtle",
				turtle: fmt.Sprintf(`@prefix c: <http://e/crash/> .
c:doc%d c:says "payload %d" ; c:links c:doc%d .`, i, rng.Intn(100), rng.Intn(i+1)),
			})
		default:
			if !allowClear {
				continue
			}
			ops = append(ops,
				harnessOp{name: "clear", update: "CLEAR"},
				harnessOp{name: "refill", turtle: `@prefix c: <http://e/crash/> .
c:seed c:says "post-clear world" .`})
		}
	}
	return ops[:k]
}

// copyDataDir clones a durability directory (snapshot + WALs) into a fresh
// temp dir.
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func walPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected exactly one WAL in %s, got %v (%v)", dir, matches, err)
	}
	return matches[0]
}

// seedBaseDir builds the shared CQ-dataset data directory the harness
// copies for every victim and replica, so all of them boot from the same
// snapshot (and therefore the same blank-node labels).
func seedBaseDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(Options{Data: DataCQ, DataDir: dir})
	if err != nil {
		t.Fatalf("seed open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("seed close: %v", err)
	}
	return dir
}

func openReplayed(t *testing.T, dir string) *Session {
	t.Helper()
	s, err := Open(Options{DataDir: dir})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	if !s.Replayed() {
		t.Fatalf("session on %s did not replay", dir)
	}
	return s
}

// assertSessionsEqual checks two sessions are behaviorally identical:
// graph, version, stats, validation verdicts, and derivation proofs for
// every triple in the graph. Proofs are compared (not raw closure state)
// because a CLEAR leaves the live session's derivation trace holding
// entries for triples no longer in the graph, which replay legitimately
// drops — observable behavior is identical either way.
func assertSessionsEqual(t *testing.T, label string, got, want *Session) {
	t.Helper()
	if !got.Graph().Equal(want.Graph()) {
		t.Fatalf("%s: graphs differ (%d vs %d triples)", label, got.Graph().Len(), want.Graph().Len())
	}
	if got.Graph().Version() != want.Graph().Version() {
		t.Fatalf("%s: versions differ: %d vs %d", label, got.Graph().Version(), want.Graph().Version())
	}
	if g, w := got.Stats(), want.Stats(); g != w {
		t.Fatalf("%s: stats differ:\n got %s\nwant %s", label, g, w)
	}
	if g, w := fmt.Sprint(got.Validate()), fmt.Sprint(want.Validate()); g != w {
		t.Fatalf("%s: validation verdicts differ:\n got %s\nwant %s", label, g, w)
	}
	for i, tr := range got.Graph().Triples() {
		if i%7 != 0 { // sample; full proof-by-proof comparison is O(n·depth)
			continue
		}
		g := got.ExplainTriple(tr.S, tr.P, tr.O)
		w := want.ExplainTriple(tr.S, tr.P, tr.O)
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("%s: proof for %v differs:\n got %v\nwant %v", label, tr, g, w)
		}
	}
}

func TestCrashRecoveryHarness(t *testing.T) {
	base := seedBaseDir(t)

	// Fixed seed matrix — CI runs exactly these.
	for _, seed := range []int64{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			victimDir := copyDataDir(t, base)
			victim := openReplayed(t, victimDir)

			const k = 8
			ops := randomSchedule(rng, k, seed%2 == 0)
			// ackStates[i] = victim graph after i acknowledged commits.
			ackStates := []*Graph{victim.Graph().Clone()}
			for _, op := range ops {
				op.apply(victim) // errors allowed; partial mutations are state
				ackStates = append(ackStates, victim.Graph().Clone())
			}
			// Crash: never Close the victim; its WAL is already durable
			// (SyncAlways), so the on-disk state is the acknowledged state.
			wal := mustReadFile(t, walPath(t, victimDir))

			// Clean crash: recovery must land on ALL acknowledged commits.
			cleanDir := copyDataDir(t, victimDir)
			clean := openReplayed(t, cleanDir)
			if !clean.Graph().Equal(ackStates[k]) {
				t.Fatal("clean crash lost acknowledged commits")
			}

			// Uncrashed replica: replay the same schedule from the same
			// base; the recovered session must be indistinguishable.
			replica := openReplayed(t, copyDataDir(t, base))
			for _, op := range ops {
				op.apply(replica)
			}
			assertSessionsEqual(t, "recovered-vs-replica", clean, replica)

			// Post-recovery behavior: one more schedule on both; question
			// numbering must resume, not collide, so outputs stay equal.
			for _, op := range randomSchedule(rng, 3, false) {
				gotErr := op.apply(clean)
				wantErr := op.apply(replica)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("post-recovery op %s error divergence: %v vs %v", op.name, gotErr, wantErr)
				}
			}
			assertSessionsEqual(t, "post-recovery", clean, replica)
			clean.Close()
			replica.Close()

			// Torn tails: cut the WAL at random offsets; recovery must land
			// on a commit-boundary prefix of the acknowledged states, never
			// a partial commit, never an error or panic.
			for trial := 0; trial < 6; trial++ {
				cut := rng.Intn(len(wal))
				tornDir := copyDataDir(t, victimDir)
				if err := os.WriteFile(walPath(t, tornDir), wal[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				s, err := Open(Options{DataDir: tornDir})
				if err != nil {
					t.Fatalf("cut %d: recovery failed: %v", cut, err)
				}
				if m := matchPrefix(s.Graph(), ackStates); m < 0 {
					t.Fatalf("cut %d: recovered state is not an acknowledged prefix", cut)
				}
				s.Close()
			}

			// Bit flips anywhere in the log: same prefix guarantee.
			for trial := 0; trial < 6; trial++ {
				mut := append([]byte(nil), wal...)
				mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
				flipDir := copyDataDir(t, victimDir)
				if err := os.WriteFile(walPath(t, flipDir), mut, 0o644); err != nil {
					t.Fatal(err)
				}
				s, err := Open(Options{DataDir: flipDir})
				if err != nil {
					t.Fatalf("flip %d: recovery failed: %v", trial, err)
				}
				if m := matchPrefix(s.Graph(), ackStates); m < 0 {
					t.Fatalf("flip %d: recovered state is not an acknowledged prefix", trial)
				}
				s.Close()
			}
			victim.Close()
		})
	}
}

func matchPrefix(g *Graph, states []*Graph) int {
	for i, st := range states {
		if g.Equal(st) {
			return i
		}
	}
	return -1
}

func mustReadFile(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRecoveryDirectedCases pins the corner cases the randomized harness
// reaches only by luck.
func TestRecoveryDirectedCases(t *testing.T) {
	base := seedBaseDir(t)

	t.Run("snapshot-only boot", func(t *testing.T) {
		// Deleting the (empty) WAL entirely must still boot: the snapshot
		// alone is a valid prefix-0 recovery.
		dir := copyDataDir(t, base)
		if err := os.Remove(walPath(t, dir)); err != nil {
			t.Fatal(err)
		}
		s := openReplayed(t, dir)
		defer s.Close()
		want := openReplayed(t, copyDataDir(t, base))
		defer want.Close()
		if !s.Graph().Equal(want.Graph()) {
			t.Fatal("snapshot-only boot lost state")
		}
	})

	t.Run("empty WAL", func(t *testing.T) {
		dir := copyDataDir(t, base)
		if err := os.Truncate(walPath(t, dir), 0); err != nil {
			t.Fatal(err)
		}
		s := openReplayed(t, dir)
		defer s.Close()
		if _, err := s.Update("INSERT DATA { <http://e/x> <http://e/p> <http://e/y> . }"); err != nil {
			t.Fatalf("append after empty-WAL boot: %v", err)
		}
	})

	t.Run("clear in WAL", func(t *testing.T) {
		dir := copyDataDir(t, base)
		s := openReplayed(t, dir)
		if _, err := s.Update("CLEAR"); err != nil {
			t.Fatal(err)
		}
		if err := s.LoadTurtle(`@prefix c: <http://e/crash/> . c:a c:p c:b .`); err != nil {
			t.Fatal(err)
		}
		want := s.Graph().Clone()
		// Crash (no Close) and recover.
		s2 := openReplayed(t, copyDataDir(t, dir))
		defer s2.Close()
		if !s2.Graph().Equal(want) {
			t.Fatalf("CLEAR did not replay: %d triples, want %d", s2.Graph().Len(), want.Len())
		}
		// The recovered session accepts further commits on the post-Clear
		// dictionary.
		if _, err := s2.Update("INSERT DATA { <http://e/crash/c> <http://e/crash/p> <http://e/crash/d> . }"); err != nil {
			t.Fatalf("append after CLEAR recovery: %v", err)
		}
		s.Close()
	})

	t.Run("question numbering resumes", func(t *testing.T) {
		dir := copyDataDir(t, base)
		s := openReplayed(t, dir)
		q := Question{Type: Contextual, Primary: FEO("Sushi"), User: FEO("User1")}
		if _, err := s.Explain(q); err != nil {
			t.Fatal(err)
		}
		q2 := Question{Type: Everyday, User: FEO("User2")}
		if _, err := s.Explain(q2); err != nil {
			t.Fatal(err)
		}
		countQuestions := func(g *Graph) int {
			n := 0
			for _, tr := range g.Triples() {
				if tr.P == rdf.TypeIRI && strings.HasPrefix(tr.S.Value, rdf.KGNS+"question/q") {
					if tr.O.Value == rdf.FEONS+"FoodQuestion" {
						n++
					}
				}
			}
			return n
		}
		before := countQuestions(s.Graph())

		s2 := openReplayed(t, copyDataDir(t, dir))
		defer s2.Close()
		// A repeated question reuses its individual; a fresh one mints the
		// next sequence number instead of colliding with a replayed IRI.
		if _, err := s2.Explain(q); err != nil {
			t.Fatal(err)
		}
		if got := countQuestions(s2.Graph()); got != before {
			t.Fatalf("repeated question after recovery minted a duplicate: %d vs %d", got, before)
		}
		q3 := Question{Type: Scientific, Primary: FEO("CauliflowerPotatoCurry"), User: FEO("User1")}
		if _, err := s2.Explain(q3); err != nil {
			t.Fatal(err)
		}
		if got := countQuestions(s2.Graph()); got != before+1 {
			t.Fatalf("fresh question after recovery: %d questions, want %d", got, before+1)
		}
		s.Close()
	})

	t.Run("version monotonic across restart", func(t *testing.T) {
		dir := copyDataDir(t, base)
		s := openReplayed(t, dir)
		if _, err := s.Update("INSERT DATA { <http://e/v> <http://e/p> <http://e/w> . }"); err != nil {
			t.Fatal(err)
		}
		v := s.Graph().Version()
		s.Close()
		s2 := openReplayed(t, dir)
		defer s2.Close()
		if s2.Graph().Version() != v {
			t.Fatalf("version changed across restart: %d -> %d", v, s2.Graph().Version())
		}
		if _, err := s2.Update("INSERT DATA { <http://e/v2> <http://e/p> <http://e/w2> . }"); err != nil {
			t.Fatal(err)
		}
		if s2.Graph().Version() <= v {
			t.Fatalf("version not monotonic after restart: %d <= %d", s2.Graph().Version(), v)
		}
	})

	t.Run("auto compaction", func(t *testing.T) {
		dir := copyDataDir(t, base)
		s, err := Open(Options{DataDir: dir, CompactBytes: 1}) // compact after every commit
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := s.Update(fmt.Sprintf("INSERT DATA { <http://e/ac%d> <http://e/p> <http://e/o> . }", i)); err != nil {
				t.Fatal(err)
			}
		}
		want := s.Graph().Clone()
		s.Close()
		s2 := openReplayed(t, dir)
		defer s2.Close()
		if !s2.Graph().Equal(want) {
			t.Fatal("state lost across auto-compactions")
		}
	})
}
