// Package feo is the public entry point of the FEO reproduction: semantic
// modeling for food recommendation explanations (Padhiar et al., ICDE 2021).
//
// A Session bundles everything a downstream application needs:
//
//	sess := feo.NewSession(feo.Options{})            // FEO + CQ data
//	rec  := sess.Recommend(user, 1)[0]               // Health Coach pick
//	ex, _ := sess.Explain(feo.Question{              // post-hoc explanation
//	    Type:    feo.Contextual,
//	    Primary: rec.Recipe,
//	})
//	fmt.Println(ex.Summary)
//
// Under the hood a Session owns an in-memory triple store, the OWL 2 RL
// materializer that substitutes for the paper's Pellet run, a SPARQL 1.1
// engine, the FEO/EO/food ontologies, and a simulated Health Coach
// recommender. All of it is stdlib-only Go.
package feo

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/foodkg"
	"repro/internal/healthcoach"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/rdfxml"
	"repro/internal/reasoner"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// Re-exported explanation types (Table I).
const (
	CaseBased       = core.CaseBased
	Contextual      = core.Contextual
	Contrastive     = core.Contrastive
	Counterfactual  = core.Counterfactual
	Everyday        = core.Everyday
	Scientific      = core.Scientific
	SimulationBased = core.SimulationBased
	Statistical     = core.Statistical
	TraceBased      = core.TraceBased
)

// Type aliases so callers only import this package.
type (
	// Question is a user question about a recommendation.
	Question = core.Question
	// Explanation is a generated explanation with evidence.
	Explanation = core.Explanation
	// ExplanationType selects one of the nine Table I types.
	ExplanationType = core.ExplanationType
	// Recommendation is one Health Coach result.
	Recommendation = healthcoach.Recommendation
	// Term is an RDF term.
	Term = rdf.Term
	// Graph is an indexed triple store.
	Graph = store.Graph
	// QueryResult holds SPARQL results.
	QueryResult = sparql.Result
	// KGConfig configures the synthetic FoodKG generator.
	KGConfig = foodkg.Config
	// ResultWriter serializes a streamed query result incrementally.
	ResultWriter = sparql.ResultWriter
	// StreamOptions bounds a streamed query (deadline, row/byte caps).
	StreamOptions = sparql.StreamOptions
	// StreamStats reports what a streamed query emitted.
	StreamStats = sparql.StreamStats
	// Truncation describes why a streamed result ended early.
	Truncation = sparql.Truncation
)

// Streaming-query sentinel errors (see Snapshot.QueryStream).
var (
	// ErrGraphResult marks a CONSTRUCT/DESCRIBE handed to the streaming
	// path; evaluate it with Query and serialize the graph instead.
	ErrGraphResult = sparql.ErrGraphResult
	// ErrQueryDeadlineExceeded marks a query canceled by its deadline
	// before the first result byte was written.
	ErrQueryDeadlineExceeded = sparql.ErrDeadlineExceeded
)

// NewJSONResultWriter returns a streaming writer for the W3C SPARQL 1.1
// JSON results format (application/sparql-results+json).
func NewJSONResultWriter(w io.Writer) ResultWriter { return sparql.NewJSONWriter(w) }

// NewXMLResultWriter returns a streaming writer for the W3C SPARQL
// results XML format (application/sparql-results+xml).
func NewXMLResultWriter(w io.Writer) ResultWriter { return sparql.NewXMLWriter(w) }

// NewCSVResultWriter returns a streaming writer for the W3C SPARQL 1.1
// CSV results format (text/csv, CRLF records).
func NewCSVResultWriter(w io.Writer) ResultWriter { return sparql.NewCSVWriter(w) }

// NewTSVResultWriter returns a streaming writer for the W3C SPARQL 1.1
// TSV results format (text/tab-separated-values).
func NewTSVResultWriter(w io.Writer) ResultWriter { return sparql.NewTSVWriter(w) }

// ParseExplanationType maps a name like "contextual" to its type.
func ParseExplanationType(s string) (ExplanationType, error) {
	return core.ParseExplanationType(s)
}

// AllExplanationTypes lists the nine types in Table I order.
func AllExplanationTypes() []ExplanationType { return core.AllExplanationTypes() }

// SetQueryParallelism sets the worker count the SPARQL engine uses per
// query, process-wide: 0 (the default) means one worker per CPU
// (GOMAXPROCS), 1 selects the sequential reference implementation, n > 1
// caps the pool at n. Results are identical at every setting — the
// executor partitions work into index-ordered morsels, so parallelism
// changes only latency, never the solution multiset or any rendered
// artifact. Safe to call at any time, including while queries run (each
// query reads the knob once at entry).
func SetQueryParallelism(n int) { sparql.SetParallelism(n) }

// QueryParallelism reports the current SetQueryParallelism setting.
func QueryParallelism() int { return sparql.Parallelism() }

// QueryPlanCacheStats reports the SPARQL engine's cumulative plan-cache
// hit and miss counts. The engine memoizes each basic graph pattern's
// compiled plan (join order, constant encoding, fused intersection runs)
// per graph snapshot; a repeated query on an unmodified session hits,
// and any mutation (load, update, explain-time assertion) invalidates by
// bumping the graph version. Useful for serve-time dashboards.
func QueryPlanCacheStats() (hits, misses uint64) { return sparql.PlanCacheStats() }

// ResetQueryPlanCache drops every memoized query plan and zeroes the
// counters — a benchmarking/testing hook, never needed for correctness.
func ResetQueryPlanCache() { sparql.ResetPlanCache() }

// IRI builds an IRI term.
func IRI(s string) Term { return rdf.NewIRI(s) }

// FEO expands a local name in the FEO namespace (feo.FEO("Autumn")).
func FEO(local string) Term { return rdf.NewIRI(rdf.FEONS + local) }

// SyncPolicy selects when durable sessions fsync the write-ahead log; see
// the constants and internal/durable's package documentation.
type SyncPolicy = durable.SyncPolicy

// WAL fsync policies for Options.Sync, strongest first.
const (
	// SyncAlways fsyncs after every commit (the default): an acknowledged
	// mutation survives OS or power failure, not just process death.
	SyncAlways = durable.SyncAlways
	// SyncInterval fsyncs in the background every Options.SyncEvery:
	// process death loses nothing, power failure at most the last window.
	SyncInterval = durable.SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever = durable.SyncNever
)

// Options configures a Session.
type Options struct {
	// Data selects the initial instance data. DataCQ (default) loads the
	// paper's competency-question ABoxes; DataSynthetic generates a FoodKG
	// per KG; DataNone loads only the ontologies.
	Data DataSource
	// KG configures the synthetic FoodKG when Data == DataSynthetic.
	// Zero value means foodkg.DefaultConfig().
	KG KGConfig
	// NaiveReasoner selects the slow ablation evaluation strategy.
	NaiveReasoner bool
	// DataDir, when non-empty, makes the session durable: mutations are
	// written ahead to a log in this directory before they are
	// acknowledged, and Open recovers the graph (and the reasoner's
	// closure state) from the directory's snapshot + log instead of
	// rebuilding from Data when it holds earlier state. Use Open rather
	// than NewSession so recovery errors are reportable.
	DataDir string
	// Sync selects the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// CompactBytes triggers automatic log compaction (snapshot + log
	// rotation) once the WAL exceeds this size. Zero means 64 MiB;
	// negative disables automatic compaction (Compact still works).
	CompactBytes int64
}

// DataSource selects a Session's initial instance data.
type DataSource int

// Data sources for NewSession.
const (
	DataCQ DataSource = iota
	DataSynthetic
	DataNone
)

// Session is a loaded, materialized knowledge graph with attached engines.
//
// # Concurrency
//
// A Session is safe for concurrent use, and its readers never block. The
// store serves reads from immutable versioned snapshots of the graph (see
// internal/store's MVCC documentation); every read-only call — Query,
// Recommend, RecommendGroup, Users, Recipes, Stats, Validate, WriteTurtle,
// WriteRDFXML — pins the latest snapshot and runs entirely against that
// frozen view. Readers run concurrently with each other AND with any
// in-flight mutation, and a reader that wants several calls to observe one
// consistent version pins explicitly with Snapshot and makes them all on
// the handle.
//
// Mutating calls (Explain — which asserts the question and explanation
// individuals into the graph — LoadTurtle, LoadRDFXML, Update) serialize
// on an internal writer lock and run as store transactions: mutate and
// incrementally re-materialize the OWL RL closure, then append the commit
// to the write-ahead log (durable sessions). The publish is deferred to
// the next Snapshot pin, so an uninterrupted burst of writes shares one
// copy-on-write freeze instead of paying one per commit. Readers observe
// the old version until a pin publishes and the new one after; they are
// never exposed to a half-applied mutation, and a writer stalled in the
// WAL append stalls no reader (pins taken meanwhile return the latest
// published version without waiting).
//
// ExplainTriple is the one read that consults live, unversioned state (the
// reasoner's derivation traces) and briefly shares a read lock with the
// mutate-and-materialize step; see its caveat.
//
// Graph exposes the raw live store and escapes all of this: callers that
// mutate it directly while other goroutines use the Session must provide
// their own serialization.
type Session struct {
	// mu serializes writers end to end: transaction, re-materialization,
	// WAL append, publish, auto-compaction. Readers never take it.
	mu sync.Mutex
	// live guards the mutate-and-materialize step of a commit against the
	// few reads of live (unpublished, unversioned) state: ExplainTriple's
	// reasoner proofs. Writers hold it only while mutating — never across
	// the WAL append — so a stalled disk cannot stall those readers for
	// long, and snapshot readers skip this lock entirely.
	live sync.RWMutex
	// dirty reports committed-but-unpublished state: commits defer their
	// publish (so write bursts share one copy-on-write freeze) and the
	// next Snapshot pin publishes on demand. Set by commitWrite under mu;
	// cleared by whoever publishes (also under mu).
	dirty    atomic.Bool
	graph    *store.Graph
	reasoner *reasoner.Reasoner
	engine   *core.Engine
	coach    *healthcoach.Coach
	weights  healthcoach.Weights
	kg       *foodkg.KG
	// durable is non-nil for sessions opened with Options.DataDir: every
	// mutating call appends its commit to the write-ahead log before
	// acknowledging (and before publishing the snapshot, so a pinned
	// reader can never observe state that is not durably logged).
	durable      *durable.Store
	compactBytes int64
	replayed     bool
}

// NewSession loads the ontologies and data, materializes the OWL RL
// closure, and wires the explanation engine and Health Coach. It panics if
// the session cannot be built — which only durability (Options.DataDir)
// can cause; durable callers should prefer Open and handle the error.
func NewSession(opts Options) *Session {
	s, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("feo.NewSession: %v (use feo.Open to handle durability errors)", err))
	}
	return s
}

// Open builds a Session. Without Options.DataDir it cannot fail and is
// equivalent to NewSession. With a DataDir it opens the directory's
// durability store first: if the directory holds earlier state, the graph
// and the reasoner's closure are recovered from its snapshot +
// write-ahead log (Options.Data is then ignored — the disk is the source
// of truth); a fresh directory is seeded with the initial dataset's
// snapshot. Either way the session's mutating calls then append to the
// log before acknowledging, and Close flushes it.
func Open(opts Options) (*Session, error) {
	var (
		st   *durable.Store
		boot *durable.Boot
		err  error
	)
	if opts.DataDir != "" {
		st, boot, err = durable.Open(opts.DataDir, durable.Options{
			Sync:      opts.Sync,
			SyncEvery: opts.SyncEvery,
		})
		if err != nil {
			return nil, err
		}
	}
	compactBytes := opts.CompactBytes
	switch {
	case compactBytes == 0:
		compactBytes = 64 << 20
	case compactBytes < 0:
		compactBytes = 0
	}

	r := reasoner.New(reasoner.Options{
		TraceDerivations: true,
		Naive:            opts.NaiveReasoner,
	})
	var (
		g        *store.Graph
		kg       *foodkg.KG
		replayed bool
	)
	if boot != nil && boot.Graph != nil {
		// Recovered boot: the snapshot + WAL replay IS the materialized
		// graph; restore the carried closure state instead of re-running
		// the reasoner, so the first write after recovery still takes the
		// incremental path.
		g = boot.Graph
		r.RestoreClosure(g, boot.Closure)
		replayed = true
	} else {
		g = ontology.TBox()
		switch opts.Data {
		case DataSynthetic:
			cfg := opts.KG
			if cfg.Recipes == 0 {
				cfg = foodkg.DefaultConfig()
			}
			kg = foodkg.Generate(cfg)
			g.Merge(kg.Graph)
		case DataNone:
			// ontologies only
		default:
			g.Merge(ontology.ABox(ontology.CQAll))
		}
		r.Materialize(g)
		if st != nil {
			// Seed the fresh data directory so the WAL has a snapshot to
			// hang off; a crash from here on recovers at least this state.
			if err := st.Compact(g, r.ClosureState()); err != nil {
				st.Close()
				return nil, err
			}
		}
	}
	if st != nil {
		r.StartDerivationJournal()
	}
	weights := healthcoach.DefaultWeights()
	coach := healthcoach.New(g, weights)
	engine := core.NewEngine(g, r)
	engine.SetCoach(coach)
	// Publish the boot state as the first snapshot so Session.Snapshot()
	// (and every pin-and-delegate read) has a version to pin before any
	// commit happens.
	g.Publish()
	return &Session{graph: g, reasoner: r, engine: engine, coach: coach,
		weights: weights, kg: kg,
		durable: st, compactBytes: compactBytes, replayed: replayed}, nil
}

// Replayed reports whether the session's graph was recovered from
// Options.DataDir (snapshot + WAL) rather than built from Options.Data.
func (s *Session) Replayed() bool { return s.replayed }

// Graph returns the session's live, mutable graph.
//
// Deprecated for reading: the live graph is NOT covered by any Session
// lock, and reading it while the session serves writers is a data race.
// Readers should use Snapshot (or the Session read methods, which pin one
// internally). Graph remains for tests and tooling that own the session
// exclusively — seeding fixtures, poking at store internals — where direct
// mutation of the live store is the point.
func (s *Session) Graph() *store.Graph { return s.graph }

// KG returns the generated FoodKG handles (nil unless DataSynthetic).
func (s *Session) KG() *foodkg.KG { return s.kg }

// Users returns the user individuals known to the session.
func (s *Session) Users() []Term { return s.Snapshot().Users() }

// Recipes returns the recipe individuals known to the session.
func (s *Session) Recipes() []Term { return s.Snapshot().Recipes() }

// commitWrite runs op as one writer commit. The sequence, under the
// writer lock:
//
//  1. Begin a store transaction (ordered mutation capture for the WAL)
//     and run op — the mutation plus its incremental re-materialization —
//     holding the live read-write lock, so live-state readers
//     (ExplainTriple) never see a half-applied mutation.
//  2. Release the live lock and append the commit record to the
//     write-ahead log. This is the slow, possibly stalling step (fsync);
//     no reader waits on it.
//  3. Commit the transaction with the publish deferred, marking the
//     session dirty: the next Snapshot pin publishes the accumulated
//     state (see Session.Snapshot). Deferring keeps a burst of
//     back-to-back commits from paying one copy-on-write freeze each —
//     the dense count vectors and outer index levels are O(dictionary)
//     copies per freeze — while isolation is untouched, because pins
//     only ever see published states and the WAL append above still
//     precedes every publish.
//
// The commit is logged and committed even when op failed: a parser can
// die after half its triples landed, and those mutations are part of the
// session's state now. Empty commits append nothing and leave the
// published snapshot untouched. A log failure poisons the durable store
// and is returned so the caller never acknowledges an unlogged mutation
// (the state is still committed — it is real, merely not durable).
func (s *Session) commitWrite(op func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	mark := 0
	if s.durable != nil {
		mark = s.reasoner.JournalLen()
	}
	s.live.Lock()
	tx := s.graph.Begin()
	opErr := op()
	s.live.Unlock()

	var logErr error
	if s.durable != nil {
		span := tx.Changes()
		ops := span.Ops()
		if span.Cleared() || len(ops) > 0 {
			logErr = s.durable.Append(durable.Record{
				Cleared:       span.Cleared(),
				Ops:           ops,
				EndVersion:    span.EndVersion(),
				TotalInferred: s.reasoner.TotalInferred(),
				Derivations:   s.reasoner.JournalSince(mark),
			})
		}
	}
	tx.CommitDeferred()
	if s.graph.Version() != s.graph.Snapshot().Version() {
		s.dirty.Store(true)
	}
	if logErr != nil {
		if opErr != nil {
			return fmt.Errorf("%w (additionally: %v)", opErr, logErr)
		}
		return logErr
	}
	if s.durable != nil && s.compactBytes > 0 && s.durable.WALSize() >= s.compactBytes {
		if err := s.compactLocked(); err != nil && opErr == nil {
			return err
		}
	}
	return opErr
}

// compactLocked writes a fresh snapshot and rotates the WAL, entirely
// under the writer lock (held by the caller). The serialization blocks
// writers for its duration but — unlike the pre-MVCC design — no reader:
// snapshot readers run against their pinned frozen views throughout.
func (s *Session) compactLocked() error {
	if err := s.durable.Compact(s.graph, s.reasoner.ClosureState()); err != nil {
		return err
	}
	s.reasoner.TrimJournal()
	return nil
}

// Compact forces a durability compaction now: the current graph and
// closure state become the on-disk snapshot, and the write-ahead log
// restarts empty. No-op for non-durable sessions.
//
// The heavy work — serializing and fsyncing the snapshot file — runs from
// a pinned in-memory snapshot with the writer lock RELEASED, so commits
// proceed concurrently. If a commit lands while the file is being
// written, the pinned bytes no longer describe the latest acknowledged
// state (its WAL records would be lost with the rotation), so the pending
// file is discarded and Compact falls back to one compaction under the
// writer lock — guaranteed progress under any write load.
func (s *Session) Compact() error {
	s.mu.Lock()
	if s.durable == nil {
		s.mu.Unlock()
		return nil
	}
	// Pin a consistent (graph, closure) pair: the writer lock is held, so
	// no commit can interleave between the publish and the closure export.
	snap := s.graph.Publish()
	s.dirty.Store(false)
	closure := s.reasoner.ClosureState()
	ver := s.graph.Version()
	pc, err := s.durable.BeginCompact()
	s.mu.Unlock()
	if err != nil {
		return err
	}
	if err := pc.WriteSnapshot(snap.Graph(), closure); err != nil {
		pc.Abort()
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.graph.Version() != ver {
		pc.Abort()
		return s.compactLocked()
	}
	if err := pc.Install(ver); err != nil {
		return err
	}
	s.reasoner.TrimJournal()
	return nil
}

// Close flushes and closes the durability store (if any). Mutating calls
// after Close fail their commit append; read-only calls keep working.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durable == nil {
		return nil
	}
	return s.durable.Close()
}

// LoadTurtle adds Turtle data to the session and re-materializes — only
// the loaded delta's consequences, not the whole closure. It commits as
// one writer transaction; readers keep the previous snapshot until the
// load publishes.
func (s *Session) LoadTurtle(doc string) error {
	return s.commitWrite(func() error {
		if err := turtle.ParseInto(s.graph, doc); err != nil {
			return err
		}
		s.engine.Rematerialize()
		return nil
	})
}

// LoadRDFXML adds RDF/XML data (Protégé's export format) to the session
// and incrementally re-materializes, as one writer transaction.
func (s *Session) LoadRDFXML(r io.Reader) error {
	return s.commitWrite(func() error {
		if err := rdfxml.ParseInto(s.graph, r); err != nil {
			return err
		}
		s.engine.Rematerialize()
		return nil
	})
}

// WriteRDFXML serializes the latest published snapshot as RDF/XML.
func (s *Session) WriteRDFXML(w io.Writer) error { return s.Snapshot().WriteRDFXML(w) }

// Query runs a SPARQL query against the latest published snapshot.
// Queries may run from many goroutines concurrently (each one
// additionally fans out across the SetQueryParallelism worker budget) and
// never block on — or get blocked by — the mutating calls (Explain,
// LoadTurtle, LoadRDFXML, Update): each query pins the snapshot current
// at its start and runs entirely against that frozen version.
func (s *Session) Query(q string) (*QueryResult, error) { return s.Snapshot().Query(q) }

// Explain generates an explanation for the question. Explanation
// generation WRITES: the engine asserts the question individual and the
// generated explanation individual (eo:Explanation node, eo:usesKnowledge
// evidence links, …) into the graph, so Explain runs as a writer
// transaction. Concurrent readers are untouched — they keep the previous
// snapshot until the commit publishes. The re-classification a new
// question triggers is incremental (delta) work, so the writer lock is
// held for the question's own consequences, not a whole-graph closure
// re-run.
func (s *Session) Explain(q Question) (*Explanation, error) {
	var ex *Explanation
	err := s.commitWrite(func() error {
		var opErr error
		ex, opErr = s.engine.Explain(q)
		return opErr
	})
	if err != nil {
		return nil, err
	}
	return ex, nil
}

// Recommend ranks recipes for the user (Health Coach simulation) against
// the latest published snapshot.
func (s *Session) Recommend(user Term, limit int) []Recommendation {
	return s.Snapshot().Recommend(user, limit)
}

// RecommendGroup ranks recipes for a group; any member's hard constraint
// excludes a recipe. Runs against the latest published snapshot.
func (s *Session) RecommendGroup(users []Term, limit int) []Recommendation {
	return s.Snapshot().RecommendGroup(users, limit)
}

// Update applies a SPARQL 1.1 Update request (INSERT DATA, DELETE DATA,
// DELETE WHERE, DELETE/INSERT WHERE, CLEAR) and re-materializes when
// triples were added — incrementally for addition-only requests, with the
// historical full re-run when the request also deleted.
//
// Deletions remove only the named triples: consequences previously
// inferred from them are NOT retracted (forward-chaining materialization
// is monotonic, the same behavior as re-exporting from Pellet without
// reclassifying). Inferences whose recorded derivation lost a premise to
// the deletion are detected and returned in UpdateResult.StaleInferred so
// callers are never silently served stale proofs; to fully retract,
// rebuild the session from the edited source data.
func (s *Session) Update(req string) (sparql.UpdateResult, error) {
	var res sparql.UpdateResult
	err := s.commitWrite(func() error {
		span := s.graph.StartCapture()
		r, opErr := sparql.RunUpdate(s.graph, req)
		span.Stop()
		res = r
		if opErr != nil {
			return opErr
		}
		if removed := span.RemovedTriples(); len(removed) > 0 {
			res.StaleInferred = s.reasoner.StaleDerivations(removed)
		}
		if res.Inserted > 0 {
			s.engine.Rematerialize()
		}
		return nil
	})
	return res, err
}

// Validate runs the OWL consistency checks (disjoint classes, sameAs vs
// differentFrom, owl:Nothing, asymmetric/irreflexive violations, negative
// property assertions) over the latest published snapshot.
func (s *Session) Validate() []reasoner.Inconsistency { return s.Snapshot().Validate() }

// ExplainTriple returns the reasoner's derivation proof for a triple:
// which OWL RL rules produced it from which premises. Empty for asserted
// or unknown triples.
//
// Unlike the other reads, proofs come from the reasoner's live derivation
// traces, which are not versioned with the graph: ExplainTriple reflects
// every commit up to now (taking a short read lock against the
// mutate-and-materialize step), not the latest published snapshot.
func (s *Session) ExplainTriple(subject, predicate, object Term) []reasoner.ProofStep {
	s.live.RLock()
	defer s.live.RUnlock()
	return s.reasoner.Proof(rdf.Triple{S: subject, P: predicate, O: object})
}

// ReasonerInferred reports the reasoner's cumulative inferred-triple
// count and the per-run delta of its most recent materialization. Like
// ExplainTriple it reads the live session state (reasoner counters are
// not versioned with graph snapshots), under the live reader lock so it
// never races a committing writer. A serve-time observability hook: the
// /metrics endpoint exposes both numbers as gauges.
func (s *Session) ReasonerInferred() (total, lastRun int) {
	s.live.RLock()
	defer s.live.RUnlock()
	return s.reasoner.TotalInferred(), s.reasoner.LastRunInferred()
}

// WriteTurtle serializes the latest published snapshot as Turtle.
func (s *Session) WriteTurtle(w io.Writer) error { return s.Snapshot().WriteTurtle(w) }

// Stats summarizes the latest published snapshot.
func (s *Session) Stats() string { return s.Snapshot().Stats() }
