// Package feo is the public entry point of the FEO reproduction: semantic
// modeling for food recommendation explanations (Padhiar et al., ICDE 2021).
//
// A Session bundles everything a downstream application needs:
//
//	sess := feo.NewSession(feo.Options{})            // FEO + CQ data
//	rec  := sess.Recommend(user, 1)[0]               // Health Coach pick
//	ex, _ := sess.Explain(feo.Question{              // post-hoc explanation
//	    Type:    feo.Contextual,
//	    Primary: rec.Recipe,
//	})
//	fmt.Println(ex.Summary)
//
// Under the hood a Session owns an in-memory triple store, the OWL 2 RL
// materializer that substitutes for the paper's Pellet run, a SPARQL 1.1
// engine, the FEO/EO/food ontologies, and a simulated Health Coach
// recommender. All of it is stdlib-only Go.
package feo

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/foodkg"
	"repro/internal/healthcoach"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/rdfxml"
	"repro/internal/reasoner"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// Re-exported explanation types (Table I).
const (
	CaseBased       = core.CaseBased
	Contextual      = core.Contextual
	Contrastive     = core.Contrastive
	Counterfactual  = core.Counterfactual
	Everyday        = core.Everyday
	Scientific      = core.Scientific
	SimulationBased = core.SimulationBased
	Statistical     = core.Statistical
	TraceBased      = core.TraceBased
)

// Type aliases so callers only import this package.
type (
	// Question is a user question about a recommendation.
	Question = core.Question
	// Explanation is a generated explanation with evidence.
	Explanation = core.Explanation
	// ExplanationType selects one of the nine Table I types.
	ExplanationType = core.ExplanationType
	// Recommendation is one Health Coach result.
	Recommendation = healthcoach.Recommendation
	// Term is an RDF term.
	Term = rdf.Term
	// Graph is an indexed triple store.
	Graph = store.Graph
	// QueryResult holds SPARQL results.
	QueryResult = sparql.Result
	// KGConfig configures the synthetic FoodKG generator.
	KGConfig = foodkg.Config
)

// ParseExplanationType maps a name like "contextual" to its type.
func ParseExplanationType(s string) (ExplanationType, error) {
	return core.ParseExplanationType(s)
}

// AllExplanationTypes lists the nine types in Table I order.
func AllExplanationTypes() []ExplanationType { return core.AllExplanationTypes() }

// SetQueryParallelism sets the worker count the SPARQL engine uses per
// query, process-wide: 0 (the default) means one worker per CPU
// (GOMAXPROCS), 1 selects the sequential reference implementation, n > 1
// caps the pool at n. Results are identical at every setting — the
// executor partitions work into index-ordered morsels, so parallelism
// changes only latency, never the solution multiset or any rendered
// artifact. Safe to call at any time, including while queries run (each
// query reads the knob once at entry).
func SetQueryParallelism(n int) { sparql.SetParallelism(n) }

// QueryParallelism reports the current SetQueryParallelism setting.
func QueryParallelism() int { return sparql.Parallelism() }

// QueryPlanCacheStats reports the SPARQL engine's cumulative plan-cache
// hit and miss counts. The engine memoizes each basic graph pattern's
// compiled plan (join order, constant encoding, fused intersection runs)
// per graph snapshot; a repeated query on an unmodified session hits,
// and any mutation (load, update, explain-time assertion) invalidates by
// bumping the graph version. Useful for serve-time dashboards.
func QueryPlanCacheStats() (hits, misses uint64) { return sparql.PlanCacheStats() }

// ResetQueryPlanCache drops every memoized query plan and zeroes the
// counters — a benchmarking/testing hook, never needed for correctness.
func ResetQueryPlanCache() { sparql.ResetPlanCache() }

// IRI builds an IRI term.
func IRI(s string) Term { return rdf.NewIRI(s) }

// FEO expands a local name in the FEO namespace (feo.FEO("Autumn")).
func FEO(local string) Term { return rdf.NewIRI(rdf.FEONS + local) }

// SyncPolicy selects when durable sessions fsync the write-ahead log; see
// the constants and internal/durable's package documentation.
type SyncPolicy = durable.SyncPolicy

// WAL fsync policies for Options.Sync, strongest first.
const (
	// SyncAlways fsyncs after every commit (the default): an acknowledged
	// mutation survives OS or power failure, not just process death.
	SyncAlways = durable.SyncAlways
	// SyncInterval fsyncs in the background every Options.SyncEvery:
	// process death loses nothing, power failure at most the last window.
	SyncInterval = durable.SyncInterval
	// SyncNever leaves flushing to the operating system.
	SyncNever = durable.SyncNever
)

// Options configures a Session.
type Options struct {
	// Data selects the initial instance data. DataCQ (default) loads the
	// paper's competency-question ABoxes; DataSynthetic generates a FoodKG
	// per KG; DataNone loads only the ontologies.
	Data DataSource
	// KG configures the synthetic FoodKG when Data == DataSynthetic.
	// Zero value means foodkg.DefaultConfig().
	KG KGConfig
	// NaiveReasoner selects the slow ablation evaluation strategy.
	NaiveReasoner bool
	// DataDir, when non-empty, makes the session durable: mutations are
	// written ahead to a log in this directory before they are
	// acknowledged, and Open recovers the graph (and the reasoner's
	// closure state) from the directory's snapshot + log instead of
	// rebuilding from Data when it holds earlier state. Use Open rather
	// than NewSession so recovery errors are reportable.
	DataDir string
	// Sync selects the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval
	// (default 100ms).
	SyncEvery time.Duration
	// CompactBytes triggers automatic log compaction (snapshot + log
	// rotation) once the WAL exceeds this size. Zero means 64 MiB;
	// negative disables automatic compaction (Compact still works).
	CompactBytes int64
}

// DataSource selects a Session's initial instance data.
type DataSource int

// Data sources for NewSession.
const (
	DataCQ DataSource = iota
	DataSynthetic
	DataNone
)

// Session is a loaded, materialized knowledge graph with attached engines.
//
// # Concurrency
//
// A Session is safe for concurrent use. The underlying store forbids any
// read overlapping a mutation (see internal/store's reader contract), and
// a serving Session mutates more often than it looks: Explain asserts the
// question and explanation individuals into the graph before querying it,
// and LoadTurtle / LoadRDFXML / Update both parse into the graph and
// re-materialize the OWL RL closure. Session therefore gates every method
// with an RWMutex — mutating calls (Explain, LoadTurtle, LoadRDFXML,
// Update) take the write lock, read-only calls (Query, Recommend,
// RecommendGroup, Users, Recipes, Stats, Validate, ExplainTriple,
// WriteTurtle, WriteRDFXML) share the read lock. Readers still run fully
// concurrently with each other, and each Query additionally fans out
// across the SetQueryParallelism worker budget under its read lock.
//
// The write-critical section is kept short by incremental (delta)
// re-materialization: the session's engine captures every mutation since
// the last reasoner run, and addition-only spans — the serve-time common
// case — re-classify in time proportional to the delta's consequences
// rather than the whole graph. Readers queue behind O(|delta closure|),
// not O(|graph|). Deletions fall back to the historical full re-run; see
// Update for the monotonicity caveat and its staleness detection.
//
// Graph exposes the raw store and escapes this gate: callers that mix
// direct Graph mutation with concurrent Session use must provide their
// own serialization.
type Session struct {
	mu       sync.RWMutex
	graph    *store.Graph
	reasoner *reasoner.Reasoner
	engine   *core.Engine
	coach    *healthcoach.Coach
	kg       *foodkg.KG
	// durable is non-nil for sessions opened with Options.DataDir: every
	// mutating call appends its commit to the write-ahead log inside the
	// write lock, before acknowledging.
	durable      *durable.Store
	compactBytes int64
	replayed     bool
}

// NewSession loads the ontologies and data, materializes the OWL RL
// closure, and wires the explanation engine and Health Coach. It panics if
// the session cannot be built — which only durability (Options.DataDir)
// can cause; durable callers should prefer Open and handle the error.
func NewSession(opts Options) *Session {
	s, err := Open(opts)
	if err != nil {
		panic(fmt.Sprintf("feo.NewSession: %v (use feo.Open to handle durability errors)", err))
	}
	return s
}

// Open builds a Session. Without Options.DataDir it cannot fail and is
// equivalent to NewSession. With a DataDir it opens the directory's
// durability store first: if the directory holds earlier state, the graph
// and the reasoner's closure are recovered from its snapshot +
// write-ahead log (Options.Data is then ignored — the disk is the source
// of truth); a fresh directory is seeded with the initial dataset's
// snapshot. Either way the session's mutating calls then append to the
// log before acknowledging, and Close flushes it.
func Open(opts Options) (*Session, error) {
	var (
		st   *durable.Store
		boot *durable.Boot
		err  error
	)
	if opts.DataDir != "" {
		st, boot, err = durable.Open(opts.DataDir, durable.Options{
			Sync:      opts.Sync,
			SyncEvery: opts.SyncEvery,
		})
		if err != nil {
			return nil, err
		}
	}
	compactBytes := opts.CompactBytes
	switch {
	case compactBytes == 0:
		compactBytes = 64 << 20
	case compactBytes < 0:
		compactBytes = 0
	}

	r := reasoner.New(reasoner.Options{
		TraceDerivations: true,
		Naive:            opts.NaiveReasoner,
	})
	var (
		g        *store.Graph
		kg       *foodkg.KG
		replayed bool
	)
	if boot != nil && boot.Graph != nil {
		// Recovered boot: the snapshot + WAL replay IS the materialized
		// graph; restore the carried closure state instead of re-running
		// the reasoner, so the first write after recovery still takes the
		// incremental path.
		g = boot.Graph
		r.RestoreClosure(g, boot.Closure)
		replayed = true
	} else {
		g = ontology.TBox()
		switch opts.Data {
		case DataSynthetic:
			cfg := opts.KG
			if cfg.Recipes == 0 {
				cfg = foodkg.DefaultConfig()
			}
			kg = foodkg.Generate(cfg)
			g.Merge(kg.Graph)
		case DataNone:
			// ontologies only
		default:
			g.Merge(ontology.ABox(ontology.CQAll))
		}
		r.Materialize(g)
		if st != nil {
			// Seed the fresh data directory so the WAL has a snapshot to
			// hang off; a crash from here on recovers at least this state.
			if err := st.Compact(g, r.ClosureState()); err != nil {
				st.Close()
				return nil, err
			}
		}
	}
	if st != nil {
		r.StartDerivationJournal()
	}
	coach := healthcoach.New(g, healthcoach.DefaultWeights())
	engine := core.NewEngine(g, r)
	engine.SetCoach(coach)
	return &Session{graph: g, reasoner: r, engine: engine, coach: coach, kg: kg,
		durable: st, compactBytes: compactBytes, replayed: replayed}, nil
}

// Replayed reports whether the session's graph was recovered from
// Options.DataDir (snapshot + WAL) rather than built from Options.Data.
func (s *Session) Replayed() bool { return s.replayed }

// Graph returns the session's materialized graph. The returned store is
// NOT covered by the session's lock: direct mutation of it while other
// goroutines use the Session is the caller's race to prevent.
func (s *Session) Graph() *store.Graph { return s.graph }

// KG returns the generated FoodKG handles (nil unless DataSynthetic).
func (s *Session) KG() *foodkg.KG { return s.kg }

// Users returns the user individuals known to the session.
func (s *Session) Users() []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.InstancesOf(ontology.FoodUser)
}

// Recipes returns the recipe individuals known to the session.
func (s *Session) Recipes() []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.InstancesOf(ontology.FoodRecipe)
}

// beginCommit opens a durability commit span: an ordered capture of every
// mutation the current write-locked operation applies, plus the journal
// mark its derivation delta starts at. No-op (nil span) for non-durable
// sessions. Must be called with the write lock held.
func (s *Session) beginCommit() (*store.ChangeSet, int) {
	if s.durable == nil {
		return nil, 0
	}
	return s.graph.StartOrderedCapture(), s.reasoner.JournalLen()
}

// endCommit closes the span and appends its record to the write-ahead log
// before the write lock is released — the mutation is acknowledged only
// once it is in the log. The span is logged even when the operation
// itself failed (opErr != nil): a parser can die after half its triples
// landed, and those mutations are part of the session's state now. Empty
// spans append nothing. A log failure poisons the store and is returned
// so the caller never acknowledges an unlogged mutation.
func (s *Session) endCommit(span *store.ChangeSet, mark int, opErr error) error {
	if span == nil {
		return opErr
	}
	span.Stop()
	ops := span.Ops()
	if !span.Cleared() && len(ops) == 0 {
		return opErr
	}
	rec := durable.Record{
		Cleared:       span.Cleared(),
		Ops:           ops,
		EndVersion:    span.EndVersion(),
		TotalInferred: s.reasoner.TotalInferred(),
		Derivations:   s.reasoner.JournalSince(mark),
	}
	if err := s.durable.Append(rec); err != nil {
		if opErr != nil {
			return fmt.Errorf("%w (additionally: %v)", opErr, err)
		}
		return err
	}
	if s.compactBytes > 0 && s.durable.WALSize() >= s.compactBytes {
		if err := s.compactLocked(); err != nil && opErr == nil {
			return err
		}
	}
	return opErr
}

// compactLocked writes a fresh snapshot and rotates the WAL; write lock
// held by the caller.
func (s *Session) compactLocked() error {
	if err := s.durable.Compact(s.graph, s.reasoner.ClosureState()); err != nil {
		return err
	}
	s.reasoner.TrimJournal()
	return nil
}

// Compact forces a durability compaction now: the current graph and
// closure state become the snapshot, and the write-ahead log restarts
// empty. No-op for non-durable sessions.
func (s *Session) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durable == nil {
		return nil
	}
	return s.compactLocked()
}

// Close flushes and closes the durability store (if any). Mutating calls
// after Close fail their commit append; read-only calls keep working.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.durable == nil {
		return nil
	}
	return s.durable.Close()
}

// LoadTurtle adds Turtle data to the session and re-materializes — only
// the loaded delta's consequences, not the whole closure. It takes the
// session's write lock: no query overlaps the load.
func (s *Session) LoadTurtle(doc string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	span, mark := s.beginCommit()
	err := func() error {
		if err := turtle.ParseInto(s.graph, doc); err != nil {
			return err
		}
		s.engine.Rematerialize()
		return nil
	}()
	return s.endCommit(span, mark, err)
}

// LoadRDFXML adds RDF/XML data (Protégé's export format) to the session
// and incrementally re-materializes, under the session's write lock.
func (s *Session) LoadRDFXML(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	span, mark := s.beginCommit()
	err := func() error {
		if err := rdfxml.ParseInto(s.graph, r); err != nil {
			return err
		}
		s.engine.Rematerialize()
		return nil
	}()
	return s.endCommit(span, mark, err)
}

// WriteRDFXML serializes the session graph as RDF/XML.
func (s *Session) WriteRDFXML(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return rdfxml.Write(w, s.graph)
}

// Query runs a SPARQL query against the materialized graph. Queries may
// run from many goroutines concurrently (each one additionally fans out
// across the SetQueryParallelism worker budget); the session's read lock
// keeps them off the mutating calls (Explain, LoadTurtle, LoadRDFXML,
// Update) automatically.
func (s *Session) Query(q string) (*QueryResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sparql.Run(s.graph, q)
}

// Explain generates an explanation for the question. Explanation
// generation WRITES: the engine asserts the question individual and the
// generated explanation individual (eo:Explanation node, eo:usesKnowledge
// evidence links, …) into the graph, so Explain takes the session's write
// lock and never overlaps Query/Recommend readers — the data race that
// serving /explain next to /sparql used to carry. The re-classification a
// new question triggers is incremental (delta) work, so readers queue
// behind the question's own consequences, not a whole-graph closure
// re-run.
func (s *Session) Explain(q Question) (*Explanation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	span, mark := s.beginCommit()
	ex, err := s.engine.Explain(q)
	if err := s.endCommit(span, mark, err); err != nil {
		return nil, err
	}
	return ex, nil
}

// Recommend ranks recipes for the user (Health Coach simulation).
func (s *Session) Recommend(user Term, limit int) []Recommendation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.coach.Recommend(user, limit)
}

// RecommendGroup ranks recipes for a group; any member's hard constraint
// excludes a recipe.
func (s *Session) RecommendGroup(users []Term, limit int) []Recommendation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.coach.RecommendGroup(users, limit)
}

// Update applies a SPARQL 1.1 Update request (INSERT DATA, DELETE DATA,
// DELETE WHERE, DELETE/INSERT WHERE, CLEAR) and re-materializes when
// triples were added — incrementally for addition-only requests, with the
// historical full re-run when the request also deleted.
//
// Deletions remove only the named triples: consequences previously
// inferred from them are NOT retracted (forward-chaining materialization
// is monotonic, the same behavior as re-exporting from Pellet without
// reclassifying). Inferences whose recorded derivation lost a premise to
// the deletion are detected and returned in UpdateResult.StaleInferred so
// callers are never silently served stale proofs; to fully retract,
// rebuild the session from the edited source data.
func (s *Session) Update(req string) (sparql.UpdateResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	commit, mark := s.beginCommit()
	span := s.graph.StartCapture()
	res, err := sparql.RunUpdate(s.graph, req)
	span.Stop()
	if err != nil {
		return res, s.endCommit(commit, mark, err)
	}
	if removed := span.RemovedTriples(); len(removed) > 0 {
		res.StaleInferred = s.reasoner.StaleDerivations(removed)
	}
	if res.Inserted > 0 {
		s.engine.Rematerialize()
	}
	return res, s.endCommit(commit, mark, nil)
}

// Validate runs the OWL consistency checks (disjoint classes, sameAs vs
// differentFrom, owl:Nothing, asymmetric/irreflexive violations, negative
// property assertions) over the materialized graph.
func (s *Session) Validate() []reasoner.Inconsistency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return reasoner.Validate(s.graph)
}

// ExplainTriple returns the reasoner's derivation proof for a triple:
// which OWL RL rules produced it from which premises. Empty for asserted
// or unknown triples.
func (s *Session) ExplainTriple(subject, predicate, object Term) []reasoner.ProofStep {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reasoner.Proof(rdf.Triple{S: subject, P: predicate, O: object})
}

// WriteTurtle serializes the session graph as Turtle.
func (s *Session) WriteTurtle(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return turtle.Write(w, s.graph)
}

// Stats summarizes the session graph.
func (s *Session) Stats() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.graph.Statistics()
	return fmt.Sprintf("triples=%d subjects=%d predicates=%d classes=%d instances=%d",
		st.Triples, st.Subjects, st.Predicates, st.Classes, st.Instances)
}
