// Package feo is the public entry point of the FEO reproduction: semantic
// modeling for food recommendation explanations (Padhiar et al., ICDE 2021).
//
// A Session bundles everything a downstream application needs:
//
//	sess := feo.NewSession(feo.Options{})            // FEO + CQ data
//	rec  := sess.Recommend(user, 1)[0]               // Health Coach pick
//	ex, _ := sess.Explain(feo.Question{              // post-hoc explanation
//	    Type:    feo.Contextual,
//	    Primary: rec.Recipe,
//	})
//	fmt.Println(ex.Summary)
//
// Under the hood a Session owns an in-memory triple store, the OWL 2 RL
// materializer that substitutes for the paper's Pellet run, a SPARQL 1.1
// engine, the FEO/EO/food ontologies, and a simulated Health Coach
// recommender. All of it is stdlib-only Go.
package feo

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/foodkg"
	"repro/internal/healthcoach"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/rdfxml"
	"repro/internal/reasoner"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/turtle"
)

// Re-exported explanation types (Table I).
const (
	CaseBased       = core.CaseBased
	Contextual      = core.Contextual
	Contrastive     = core.Contrastive
	Counterfactual  = core.Counterfactual
	Everyday        = core.Everyday
	Scientific      = core.Scientific
	SimulationBased = core.SimulationBased
	Statistical     = core.Statistical
	TraceBased      = core.TraceBased
)

// Type aliases so callers only import this package.
type (
	// Question is a user question about a recommendation.
	Question = core.Question
	// Explanation is a generated explanation with evidence.
	Explanation = core.Explanation
	// ExplanationType selects one of the nine Table I types.
	ExplanationType = core.ExplanationType
	// Recommendation is one Health Coach result.
	Recommendation = healthcoach.Recommendation
	// Term is an RDF term.
	Term = rdf.Term
	// Graph is an indexed triple store.
	Graph = store.Graph
	// QueryResult holds SPARQL results.
	QueryResult = sparql.Result
	// KGConfig configures the synthetic FoodKG generator.
	KGConfig = foodkg.Config
)

// ParseExplanationType maps a name like "contextual" to its type.
func ParseExplanationType(s string) (ExplanationType, error) {
	return core.ParseExplanationType(s)
}

// AllExplanationTypes lists the nine types in Table I order.
func AllExplanationTypes() []ExplanationType { return core.AllExplanationTypes() }

// SetQueryParallelism sets the worker count the SPARQL engine uses per
// query, process-wide: 0 (the default) means one worker per CPU
// (GOMAXPROCS), 1 selects the sequential reference implementation, n > 1
// caps the pool at n. Results are identical at every setting — the
// executor partitions work into index-ordered morsels, so parallelism
// changes only latency, never the solution multiset or any rendered
// artifact. Safe to call at any time, including while queries run (each
// query reads the knob once at entry).
func SetQueryParallelism(n int) { sparql.SetParallelism(n) }

// QueryParallelism reports the current SetQueryParallelism setting.
func QueryParallelism() int { return sparql.Parallelism() }

// QueryPlanCacheStats reports the SPARQL engine's cumulative plan-cache
// hit and miss counts. The engine memoizes each basic graph pattern's
// compiled plan (join order, constant encoding, fused intersection runs)
// per graph snapshot; a repeated query on an unmodified session hits,
// and any mutation (load, update, explain-time assertion) invalidates by
// bumping the graph version. Useful for serve-time dashboards.
func QueryPlanCacheStats() (hits, misses uint64) { return sparql.PlanCacheStats() }

// ResetQueryPlanCache drops every memoized query plan and zeroes the
// counters — a benchmarking/testing hook, never needed for correctness.
func ResetQueryPlanCache() { sparql.ResetPlanCache() }

// IRI builds an IRI term.
func IRI(s string) Term { return rdf.NewIRI(s) }

// FEO expands a local name in the FEO namespace (feo.FEO("Autumn")).
func FEO(local string) Term { return rdf.NewIRI(rdf.FEONS + local) }

// Options configures a Session.
type Options struct {
	// Data selects the initial instance data. DataCQ (default) loads the
	// paper's competency-question ABoxes; DataSynthetic generates a FoodKG
	// per KG; DataNone loads only the ontologies.
	Data DataSource
	// KG configures the synthetic FoodKG when Data == DataSynthetic.
	// Zero value means foodkg.DefaultConfig().
	KG KGConfig
	// NaiveReasoner selects the slow ablation evaluation strategy.
	NaiveReasoner bool
}

// DataSource selects a Session's initial instance data.
type DataSource int

// Data sources for NewSession.
const (
	DataCQ DataSource = iota
	DataSynthetic
	DataNone
)

// Session is a loaded, materialized knowledge graph with attached engines.
//
// # Concurrency
//
// A Session is safe for concurrent use. The underlying store forbids any
// read overlapping a mutation (see internal/store's reader contract), and
// a serving Session mutates more often than it looks: Explain asserts the
// question and explanation individuals into the graph before querying it,
// and LoadTurtle / LoadRDFXML / Update both parse into the graph and
// re-materialize the OWL RL closure. Session therefore gates every method
// with an RWMutex — mutating calls (Explain, LoadTurtle, LoadRDFXML,
// Update) take the write lock, read-only calls (Query, Recommend,
// RecommendGroup, Users, Recipes, Stats, Validate, ExplainTriple,
// WriteTurtle, WriteRDFXML) share the read lock. Readers still run fully
// concurrently with each other, and each Query additionally fans out
// across the SetQueryParallelism worker budget under its read lock.
//
// The write-critical section is kept short by incremental (delta)
// re-materialization: the session's engine captures every mutation since
// the last reasoner run, and addition-only spans — the serve-time common
// case — re-classify in time proportional to the delta's consequences
// rather than the whole graph. Readers queue behind O(|delta closure|),
// not O(|graph|). Deletions fall back to the historical full re-run; see
// Update for the monotonicity caveat and its staleness detection.
//
// Graph exposes the raw store and escapes this gate: callers that mix
// direct Graph mutation with concurrent Session use must provide their
// own serialization.
type Session struct {
	mu       sync.RWMutex
	graph    *store.Graph
	reasoner *reasoner.Reasoner
	engine   *core.Engine
	coach    *healthcoach.Coach
	kg       *foodkg.KG
}

// NewSession loads the ontologies and data, materializes the OWL RL
// closure, and wires the explanation engine and Health Coach.
func NewSession(opts Options) *Session {
	g := ontology.TBox()
	var kg *foodkg.KG
	switch opts.Data {
	case DataSynthetic:
		cfg := opts.KG
		if cfg.Recipes == 0 {
			cfg = foodkg.DefaultConfig()
		}
		kg = foodkg.Generate(cfg)
		g.Merge(kg.Graph)
	case DataNone:
		// ontologies only
	default:
		g.Merge(ontology.ABox(ontology.CQAll))
	}
	r := reasoner.New(reasoner.Options{
		TraceDerivations: true,
		Naive:            opts.NaiveReasoner,
	})
	r.Materialize(g)
	coach := healthcoach.New(g, healthcoach.DefaultWeights())
	engine := core.NewEngine(g, r)
	engine.SetCoach(coach)
	return &Session{graph: g, reasoner: r, engine: engine, coach: coach, kg: kg}
}

// Graph returns the session's materialized graph. The returned store is
// NOT covered by the session's lock: direct mutation of it while other
// goroutines use the Session is the caller's race to prevent.
func (s *Session) Graph() *store.Graph { return s.graph }

// KG returns the generated FoodKG handles (nil unless DataSynthetic).
func (s *Session) KG() *foodkg.KG { return s.kg }

// Users returns the user individuals known to the session.
func (s *Session) Users() []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.InstancesOf(ontology.FoodUser)
}

// Recipes returns the recipe individuals known to the session.
func (s *Session) Recipes() []Term {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.graph.InstancesOf(ontology.FoodRecipe)
}

// LoadTurtle adds Turtle data to the session and re-materializes — only
// the loaded delta's consequences, not the whole closure. It takes the
// session's write lock: no query overlaps the load.
func (s *Session) LoadTurtle(doc string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := turtle.ParseInto(s.graph, doc); err != nil {
		return err
	}
	s.engine.Rematerialize()
	return nil
}

// LoadRDFXML adds RDF/XML data (Protégé's export format) to the session
// and incrementally re-materializes, under the session's write lock.
func (s *Session) LoadRDFXML(r io.Reader) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := rdfxml.ParseInto(s.graph, r); err != nil {
		return err
	}
	s.engine.Rematerialize()
	return nil
}

// WriteRDFXML serializes the session graph as RDF/XML.
func (s *Session) WriteRDFXML(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return rdfxml.Write(w, s.graph)
}

// Query runs a SPARQL query against the materialized graph. Queries may
// run from many goroutines concurrently (each one additionally fans out
// across the SetQueryParallelism worker budget); the session's read lock
// keeps them off the mutating calls (Explain, LoadTurtle, LoadRDFXML,
// Update) automatically.
func (s *Session) Query(q string) (*QueryResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return sparql.Run(s.graph, q)
}

// Explain generates an explanation for the question. Explanation
// generation WRITES: the engine asserts the question individual and the
// generated explanation individual (eo:Explanation node, eo:usesKnowledge
// evidence links, …) into the graph, so Explain takes the session's write
// lock and never overlaps Query/Recommend readers — the data race that
// serving /explain next to /sparql used to carry. The re-classification a
// new question triggers is incremental (delta) work, so readers queue
// behind the question's own consequences, not a whole-graph closure
// re-run.
func (s *Session) Explain(q Question) (*Explanation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Explain(q)
}

// Recommend ranks recipes for the user (Health Coach simulation).
func (s *Session) Recommend(user Term, limit int) []Recommendation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.coach.Recommend(user, limit)
}

// RecommendGroup ranks recipes for a group; any member's hard constraint
// excludes a recipe.
func (s *Session) RecommendGroup(users []Term, limit int) []Recommendation {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.coach.RecommendGroup(users, limit)
}

// Update applies a SPARQL 1.1 Update request (INSERT DATA, DELETE DATA,
// DELETE WHERE, DELETE/INSERT WHERE, CLEAR) and re-materializes when
// triples were added — incrementally for addition-only requests, with the
// historical full re-run when the request also deleted.
//
// Deletions remove only the named triples: consequences previously
// inferred from them are NOT retracted (forward-chaining materialization
// is monotonic, the same behavior as re-exporting from Pellet without
// reclassifying). Inferences whose recorded derivation lost a premise to
// the deletion are detected and returned in UpdateResult.StaleInferred so
// callers are never silently served stale proofs; to fully retract,
// rebuild the session from the edited source data.
func (s *Session) Update(req string) (sparql.UpdateResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	span := s.graph.StartCapture()
	res, err := sparql.RunUpdate(s.graph, req)
	span.Stop()
	if err != nil {
		return res, err
	}
	if removed := span.RemovedTriples(); len(removed) > 0 {
		res.StaleInferred = s.reasoner.StaleDerivations(removed)
	}
	if res.Inserted > 0 {
		s.engine.Rematerialize()
	}
	return res, nil
}

// Validate runs the OWL consistency checks (disjoint classes, sameAs vs
// differentFrom, owl:Nothing, asymmetric/irreflexive violations, negative
// property assertions) over the materialized graph.
func (s *Session) Validate() []reasoner.Inconsistency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return reasoner.Validate(s.graph)
}

// ExplainTriple returns the reasoner's derivation proof for a triple:
// which OWL RL rules produced it from which premises. Empty for asserted
// or unknown triples.
func (s *Session) ExplainTriple(subject, predicate, object Term) []reasoner.ProofStep {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.reasoner.Proof(rdf.Triple{S: subject, P: predicate, O: object})
}

// WriteTurtle serializes the session graph as Turtle.
func (s *Session) WriteTurtle(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return turtle.Write(w, s.graph)
}

// Stats summarizes the session graph.
func (s *Session) Stats() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.graph.Statistics()
	return fmt.Sprintf("triples=%d subjects=%d predicates=%d classes=%d instances=%d",
		st.Triples, st.Subjects, st.Predicates, st.Classes, st.Instances)
}
