package feo

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestSessionCQData(t *testing.T) {
	s := NewSession(Options{})
	if s.Graph().Len() == 0 {
		t.Fatal("empty session graph")
	}
	ex, err := s.Explain(Question{Type: Contextual, Primary: FEO("CauliflowerPotatoCurry")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "Autumn") {
		t.Errorf("summary = %q", ex.Summary)
	}
}

func TestSessionSynthetic(t *testing.T) {
	s := NewSession(Options{Data: DataSynthetic, KG: KGConfig{
		Seed: 7, Recipes: 30, Ingredients: 25, Users: 5,
		MinIngredients: 2, MaxIngredients: 5,
		SeasonalShare: 0.5, LikesPerUser: 3, DislikesPerUser: 1,
	}})
	if s.KG() == nil {
		t.Fatal("synthetic session should expose KG")
	}
	users := s.Users()
	if len(users) != 5 {
		t.Fatalf("users = %d", len(users))
	}
	recs := s.Recommend(users[0], 3)
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}
	ex, err := s.Explain(Question{Type: Contextual, Primary: recs[0].Recipe})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Summary == "" {
		t.Error("empty explanation for synthetic recommendation")
	}
}

func TestSessionQuery(t *testing.T) {
	s := NewSession(Options{})
	res, err := s.Query(`SELECT ?q WHERE { ?q a feo:FoodQuestion }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("question count = %d, want 3 (CQ1-CQ3)", res.Len())
	}
}

func TestSessionLoadTurtle(t *testing.T) {
	s := NewSession(Options{Data: DataNone})
	err := s.LoadTurtle(`
@prefix feo:  <https://purl.org/heals/feo#> .
@prefix food: <http://purl.org/heals/food/> .
feo:Mango a food:Ingredient .
`)
	if err != nil {
		t.Fatal(err)
	}
	// Re-materialization classifies the new instance (isInternal via
	// food:Ingredient's hasValue restriction).
	res, err := s.Query(`ASK { feo:Mango feo:isInternal true }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Boolean {
		t.Error("loaded instance not classified after LoadTurtle")
	}
	if err := s.LoadTurtle("@@@ bad turtle"); err == nil {
		t.Error("bad turtle should error")
	}
}

func TestSessionGroupRecommend(t *testing.T) {
	s := NewSession(Options{Data: DataSynthetic, KG: KGConfig{
		Seed: 9, Recipes: 20, Ingredients: 15, Users: 4,
		MinIngredients: 2, MaxIngredients: 4,
		LikesPerUser: 2, DislikesPerUser: 1, AllergyRate: 1.0,
	}})
	users := s.Users()
	recs := s.RecommendGroup(users[:2], 5)
	if len(recs) == 0 {
		t.Fatal("no group recommendations")
	}
}

func TestSessionWriteTurtle(t *testing.T) {
	s := NewSession(Options{Data: DataNone})
	var sb strings.Builder
	if err := s.WriteTurtle(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "feo:Characteristic") {
		t.Error("serialized TBox missing FEO classes")
	}
	if !strings.Contains(s.Stats(), "triples=") {
		t.Error("Stats should render")
	}
}

func TestNaiveReasonerOption(t *testing.T) {
	s := NewSession(Options{NaiveReasoner: true})
	ex, err := s.Explain(Question{Type: Contextual, Primary: FEO("CauliflowerPotatoCurry")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Summary, "Autumn") {
		t.Error("naive reasoner must reach the same closure")
	}
}

func TestSessionUpdate(t *testing.T) {
	s := NewSession(Options{Data: DataNone})
	res, err := s.Update(`
INSERT DATA {
  feo:Mango a <http://purl.org/heals/food/Ingredient> .
  feo:MangoSalad a <http://purl.org/heals/food/Recipe> ;
      feo:hasIngredient feo:Mango .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 3 {
		t.Errorf("inserted = %d, want 3", res.Inserted)
	}
	// Re-materialization must have closed the inverse.
	ask, err := s.Query(`ASK { feo:Mango feo:isIngredientOf feo:MangoSalad }`)
	if err != nil {
		t.Fatal(err)
	}
	if !ask.Boolean {
		t.Error("update did not trigger re-materialization")
	}
	if _, err := s.Update("NONSENSE"); err == nil {
		t.Error("bad update should error")
	}
}

func TestSessionValidate(t *testing.T) {
	s := NewSession(Options{})
	if incs := s.Validate(); len(incs) != 0 {
		t.Fatalf("CQ datasets must be consistent, got %v", incs)
	}
	// Inject a violation: a season that is also a food.
	_, err := s.Update(`INSERT DATA { feo:Autumn a <http://purl.org/heals/food/Food> }`)
	if err != nil {
		t.Fatal(err)
	}
	incs := s.Validate()
	if len(incs) == 0 {
		t.Error("disjointness violation not detected")
	}
}

func TestSessionExplainTriple(t *testing.T) {
	s := NewSession(Options{})
	// The closure triple from CQ1 must have a derivation proof.
	steps := s.ExplainTriple(
		FEO("CauliflowerPotatoCurry"), FEO("hasCharacteristic"), FEO("Autumn"))
	if len(steps) == 0 {
		t.Fatal("no proof for inferred closure triple")
	}
	last := steps[len(steps)-1]
	if last.Rule == "asserted" {
		t.Error("closure triple should be inferred, not asserted")
	}
	sawAsserted := false
	for _, st := range steps {
		if st.Rule == "asserted" {
			sawAsserted = true
		}
	}
	if !sawAsserted {
		t.Error("proof should ground out in asserted triples")
	}
}

func TestSessionRDFXMLRoundTrip(t *testing.T) {
	s := NewSession(Options{Data: DataNone})
	var sb strings.Builder
	if err := s.WriteRDFXML(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Characteristic") {
		t.Error("RDF/XML export missing FEO classes")
	}
	s2 := NewSession(Options{Data: DataNone})
	before := s2.Graph().Len()
	if err := s2.LoadRDFXML(strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	// Loading the same TBox back should add nothing new except blank-node
	// renamed restriction structures; the graph must at least not shrink
	// and queries must still work.
	if s2.Graph().Len() < before {
		t.Error("round-trip lost triples")
	}
	res, err := s2.Query(`ASK { feo:SeasonCharacteristic rdfs:subClassOf feo:SystemCharacteristic }`)
	if err != nil || !res.Boolean {
		t.Error("hierarchy lost through RDF/XML round trip")
	}
}

// TestSessionConcurrentQuery guards the public concurrency contract: a
// materialized Session serves Query from many goroutines at once, and the
// engine-level parallelism knob round-trips and never changes results.
func TestSessionConcurrentQuery(t *testing.T) {
	old := QueryParallelism()
	defer SetQueryParallelism(old)
	s := NewSession(Options{})
	const query = `SELECT ?c WHERE { feo:CauliflowerPotatoCurry feo:hasCharacteristic ?c }`
	SetQueryParallelism(1)
	ref, err := s.Query(query)
	if err != nil {
		t.Fatalf("reference query: %v", err)
	}
	if ref.Len() == 0 {
		t.Fatal("reference query returned no rows")
	}
	SetQueryParallelism(4)
	if QueryParallelism() != 4 {
		t.Fatalf("QueryParallelism = %d, want 4", QueryParallelism())
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				res, err := s.Query(query)
				if err != nil {
					errs <- err
					return
				}
				if res.Len() != ref.Len() {
					errs <- fmt.Errorf("concurrent query returned %d rows, want %d", res.Len(), ref.Len())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestQueryPlanCacheStats: repeated session queries hit the memoized
// plans; loading data invalidates them (the graph version moves).
func TestQueryPlanCacheStats(t *testing.T) {
	ResetQueryPlanCache()
	s := NewSession(Options{})
	const q = `SELECT ?c WHERE { ?c a feo:Characteristic }`
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := QueryPlanCacheStats()
	if misses0 == 0 {
		t.Fatal("first query should compile a plan")
	}
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := QueryPlanCacheStats()
	if hits1 <= hits0 || misses1 != misses0 {
		t.Errorf("repeat query should hit, not recompile (hits %d->%d, misses %d->%d)",
			hits0, hits1, misses0, misses1)
	}
	if err := s.LoadTurtle(`<http://e/x> <http://e/p> <http://e/y> .`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(q); err != nil {
		t.Fatal(err)
	}
	_, misses2 := QueryPlanCacheStats()
	if misses2 <= misses1 {
		t.Error("query after LoadTurtle must recompile (version bumped)")
	}
	ResetQueryPlanCache()
	if h, m := QueryPlanCacheStats(); h != 0 || m != 0 {
		t.Errorf("reset did not zero counters: %d/%d", h, m)
	}
}

// TestSessionUpdateStaleInferred: deleting a premise of a traced
// derivation is surfaced in UpdateResult instead of silently serving
// stale proofs (materialization stays monotonic).
func TestSessionUpdateStaleInferred(t *testing.T) {
	s := NewSession(Options{Data: DataNone})
	if _, err := s.Update(`
INSERT DATA {
  feo:Mango a <http://purl.org/heals/food/Ingredient> .
  feo:MangoSalad a <http://purl.org/heals/food/Recipe> ;
      feo:hasIngredient feo:Mango .
}`); err != nil {
		t.Fatal(err)
	}
	// The insert closed feo:Mango feo:isIngredientOf feo:MangoSalad via the
	// inverse axiom. Deleting the premise leaves that inference stale.
	res, err := s.Update(`DELETE DATA { feo:MangoSalad feo:hasIngredient feo:Mango . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Fatalf("deleted = %d, want 1", res.Deleted)
	}
	if len(res.StaleInferred) == 0 {
		t.Fatal("deleting a traced premise must surface stale inferences")
	}
	found := false
	for _, tr := range res.StaleInferred {
		if tr.S == FEO("Mango") && tr.P == FEO("isIngredientOf") && tr.O == FEO("MangoSalad") {
			found = true
		}
	}
	if !found {
		t.Errorf("stale list %v should include the inverse inference", res.StaleInferred)
	}
	if !strings.Contains(res.String(), "stale") {
		t.Errorf("UpdateResult.String should mention staleness: %q", res.String())
	}
	// The stale inference is still present (monotonic), and an unrelated
	// update reports nothing stale.
	ask, err := s.Query(`ASK { feo:Mango feo:isIngredientOf feo:MangoSalad }`)
	if err != nil || !ask.Boolean {
		t.Error("monotonic behavior lost: inference was retracted")
	}
	res2, err := s.Update(`INSERT DATA { feo:Papaya a <http://purl.org/heals/food/Ingredient> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.StaleInferred) != 0 {
		t.Errorf("addition-only update flagged stale inferences: %v", res2.StaleInferred)
	}
}
