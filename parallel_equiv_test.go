package repro

import (
	"runtime"
	"strings"
	"testing"

	"repro/internal/foodkg"
	"repro/internal/ontology"
	"repro/internal/paper"
	"repro/internal/reasoner"
	"repro/internal/sparql"
	"repro/internal/store"
)

// runAt executes query at the given parallelism level, restoring the knob.
func runAt(t *testing.T, g *store.Graph, query string, par int) *sparql.Result {
	t.Helper()
	old := sparql.Parallelism()
	sparql.SetParallelism(par)
	defer sparql.SetParallelism(old)
	res, err := sparql.Run(g, query)
	if err != nil {
		t.Fatalf("execute at parallelism %d: %v", par, err)
	}
	return res
}

// parallelLevels is the equivalence matrix: the sequential reference,
// fixed two- and four-worker pools (so the multi-worker paths run even on
// single-CPU machines), and the automatic GOMAXPROCS setting.
func parallelLevels() []int {
	return []int{1, 2, 4, runtime.GOMAXPROCS(0)}
}

// TestParallelEquivalenceListings evaluates every paper listing on every
// competency dataset at parallelism 1, 2, and GOMAXPROCS and requires the
// identical solution multiset from each level.
func TestParallelEquivalenceListings(t *testing.T) {
	cases := []struct {
		name  string
		cq    ontology.CompetencyQuestion
		query string
	}{
		{"listing1/cq1", ontology.CQ1, paper.Listing1Query},
		{"listing2/cq2", ontology.CQ2, paper.Listing2Query},
		{"listing3/cq3", ontology.CQ3, paper.Listing3Query},
		{"listing1/cqall", ontology.CQAll, paper.Listing1Query},
		{"listing2/cqall", ontology.CQAll, paper.Listing2Query},
		{"listing3/cqall", ontology.CQAll, paper.Listing3Query},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := ontology.Dataset(tc.cq)
			want := canonRows(runAt(t, g, tc.query, 1))
			for _, par := range parallelLevels()[1:] {
				got := canonRows(runAt(t, g, tc.query, par))
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("parallelism %d: solutions differ from sequential\npar:\n%s\nseq:\n%s",
						par, strings.Join(got, "\n"), strings.Join(want, "\n"))
				}
			}
		})
	}
}

// TestParallelEquivalenceOperators runs the A4 operator suite over the
// synthetic FoodKG — row sets large enough that the morsel scheduler
// engages at its production threshold — at every parallelism level.
func TestParallelEquivalenceOperators(t *testing.T) {
	kg := foodkg.Generate(foodkg.DefaultConfig())
	g := ontology.TBox()
	g.Merge(kg.Graph)
	reasoner.New(reasoner.Options{}).Materialize(g)
	queries := []struct{ name, query string }{
		{"bgp-join", `SELECT ?r ?i WHERE { ?r a food:Recipe . ?r feo:hasIngredient ?i }`},
		{"filter", `SELECT ?r WHERE { ?r food:calories ?c . FILTER(?c > 400) }`},
		{"not-exists", `SELECT ?r WHERE { ?r a food:Recipe . FILTER NOT EXISTS { ?r feo:compatibleWithDiet ?d } }`},
		{"optional", `SELECT ?r ?d WHERE { ?r a food:Recipe . OPTIONAL { ?r feo:compatibleWithDiet ?d } }`},
		{"union", `SELECT ?x WHERE { { ?x a food:Recipe } UNION { ?x a food:Ingredient } }`},
		{"path-plus", `SELECT ?c WHERE { ?r a food:Recipe . ?r (feo:hasIngredient|feo:availableIn)+ ?c }`},
		{"aggregate", `SELECT ?i (COUNT(?r) AS ?n) WHERE { ?r feo:hasIngredient ?i } GROUP BY ?i`},
	}
	for _, tc := range queries {
		t.Run(tc.name, func(t *testing.T) {
			want := canonRows(runAt(t, g, tc.query, 1))
			if len(want) == 0 {
				t.Fatalf("corpus query %s returned no rows; equivalence check is vacuous", tc.name)
			}
			for _, par := range parallelLevels()[1:] {
				got := canonRows(runAt(t, g, tc.query, par))
				if strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Fatalf("parallelism %d: %d rows vs sequential %d; solutions differ",
						par, len(got), len(want))
				}
			}
		})
	}
}

// renderAt regenerates an artifact with the knob pinned to par.
func renderAt(par int, f func() string) string {
	old := sparql.Parallelism()
	sparql.SetParallelism(par)
	defer sparql.SetParallelism(old)
	return f()
}

// TestParallelArtifactsByteIdentical requires every paper artifact —
// listings, Table I, Figures 1-4 — to come out byte-identical whether the
// engine runs sequentially or fully parallel. (The listing renderer sorts
// its rows, so this is a real guarantee, not map-order luck.)
func TestParallelArtifactsByteIdentical(t *testing.T) {
	artifacts := []struct {
		name   string
		render func() string
	}{
		{"listing1", func() string { out, _ := paper.Listing(1); return out }},
		{"listing2", func() string { out, _ := paper.Listing(2); return out }},
		{"listing3", func() string { out, _ := paper.Listing(3); return out }},
		{"table1", func() string { out, _ := paper.Table1(); return out }},
		{"figure1", paper.Figure1},
		{"figure2", paper.Figure2},
		{"figure3", paper.Figure3},
		{"figure4", paper.Figure4},
	}
	for _, a := range artifacts {
		t.Run(a.name, func(t *testing.T) {
			want := renderAt(1, a.render)
			if want == "" {
				t.Fatalf("%s rendered empty at parallelism 1", a.name)
			}
			for _, par := range parallelLevels()[1:] {
				if got := renderAt(par, a.render); got != want {
					t.Errorf("%s differs at parallelism %d", a.name, par)
				}
			}
		})
	}
}
