package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/feo"
)

func testServer(t *testing.T) *apiServer {
	t.Helper()
	return newAPIServer(feo.NewSession(feo.Options{}), 30*time.Second, 0, 0)
}

func TestSPARQLEndpointGET(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodGet,
		"/sparql?query="+strings.ReplaceAll("SELECT ?q WHERE { ?q a feo:FoodQuestion }", " ", "%20"), nil)
	rr := httptest.NewRecorder()
	srv.handleSPARQL(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("content type = %q", ct)
	}
	var out struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]map[string]any `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results.Bindings) != 3 {
		t.Errorf("bindings = %d, want 3 questions", len(out.Results.Bindings))
	}
}

func TestSPARQLEndpointFormats(t *testing.T) {
	srv := testServer(t)
	query := "/sparql?query=" + strings.ReplaceAll("SELECT ?q WHERE { ?q a feo:FoodQuestion }", " ", "%20")
	for format, wantCT := range map[string]string{
		"csv": "text/csv; charset=utf-8",
		"tsv": "text/tab-separated-values; charset=utf-8",
		"xml": "application/sparql-results+xml",
	} {
		rr := httptest.NewRecorder()
		srv.handleSPARQL(rr, httptest.NewRequest(http.MethodGet, query+"&format="+format, nil))
		if rr.Code != http.StatusOK {
			t.Errorf("%s: status %d", format, rr.Code)
		}
		if ct := rr.Header().Get("Content-Type"); ct != wantCT {
			t.Errorf("%s: content type %q, want %q", format, ct, wantCT)
		}
	}
	// Accept-header negotiation.
	req := httptest.NewRequest(http.MethodGet, query, nil)
	req.Header.Set("Accept", "text/csv")
	rr := httptest.NewRecorder()
	srv.handleSPARQL(rr, req)
	if ct := rr.Header().Get("Content-Type"); ct != "text/csv; charset=utf-8" {
		t.Errorf("accept negotiation: %q", ct)
	}
	// Unknown format rejected.
	rr = httptest.NewRecorder()
	srv.handleSPARQL(rr, httptest.NewRequest(http.MethodGet, query+"&format=bogus", nil))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("bogus format status = %d", rr.Code)
	}
}

func TestSPARQLEndpointPOSTAndAsk(t *testing.T) {
	srv := testServer(t)
	body := strings.NewReader(`{"query":"ASK { feo:Sushi feo:hasIngredient feo:RawFish }"}`)
	req := httptest.NewRequest(http.MethodPost, "/sparql", body)
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	srv.handleSPARQL(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rr.Code, rr.Body.String())
	}
	var out struct {
		Boolean *bool `json:"boolean"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Boolean == nil || !*out.Boolean {
		t.Errorf("ASK should be true: %s", rr.Body.String())
	}
}

func TestSPARQLEndpointErrors(t *testing.T) {
	srv := testServer(t)
	// Missing query.
	rr := httptest.NewRecorder()
	srv.handleSPARQL(rr, httptest.NewRequest(http.MethodGet, "/sparql", nil))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("missing query status = %d", rr.Code)
	}
	// Malformed query.
	rr = httptest.NewRecorder()
	srv.handleSPARQL(rr, httptest.NewRequest(http.MethodGet, "/sparql?query=SELECT", nil))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("bad query status = %d", rr.Code)
	}
}

func TestExplainEndpoint(t *testing.T) {
	srv := testServer(t)
	body := strings.NewReader(`{
		"type": "contextual",
		"primary": "feo:CauliflowerPotatoCurry"
	}`)
	req := httptest.NewRequest(http.MethodPost, "/explain", body)
	rr := httptest.NewRecorder()
	srv.handleExplain(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rr.Code, rr.Body.String())
	}
	var out struct {
		Summary  string   `json:"summary"`
		Evidence []string `json:"evidence"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Summary, "Autumn") {
		t.Errorf("summary = %q", out.Summary)
	}
	if len(out.Evidence) == 0 {
		t.Error("no evidence in response")
	}
}

func TestExplainEndpointValidation(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"bad type", `{"type":"bogus","primary":"feo:Sushi"}`, http.StatusBadRequest},
		{"bad term", `{"type":"contextual","primary":"nope:X"}`, http.StatusBadRequest},
		{"missing primary", `{"type":"contextual"}`, http.StatusUnprocessableEntity},
		{"bad json", `{`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodPost, "/explain", strings.NewReader(tc.body))
			rr := httptest.NewRecorder()
			srv.handleExplain(rr, req)
			if rr.Code != tc.wantStatus {
				t.Errorf("status = %d, want %d (%s)", rr.Code, tc.wantStatus, rr.Body.String())
			}
		})
	}
	// GET not allowed.
	rr := httptest.NewRecorder()
	srv.handleExplain(rr, httptest.NewRequest(http.MethodGet, "/explain", nil))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /explain status = %d", rr.Code)
	}
}

// TestConcurrentExplainAndSPARQL hammers the mutating /explain endpoint
// concurrently with /sparql and /recommend readers. Before feo.Session
// gated mutation behind its RWMutex this was a data race (the explain
// engine asserts individuals into the graph while queries walk its
// indexes) that -race reliably caught; the test pins the fix.
func TestConcurrentExplainAndSPARQL(t *testing.T) {
	srv := testServer(t)
	query := "/sparql?query=" + strings.ReplaceAll(
		"SELECT ?e WHERE { ?e a eo:Explanation }", " ", "%20")
	const workers, rounds = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				body := strings.NewReader(`{"type":"contextual","primary":"feo:CauliflowerPotatoCurry"}`)
				rr := httptest.NewRecorder()
				srv.handleExplain(rr, httptest.NewRequest(http.MethodPost, "/explain", body))
				if rr.Code != http.StatusOK {
					t.Errorf("explain status = %d body=%s", rr.Code, rr.Body.String())
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				rr := httptest.NewRecorder()
				srv.handleSPARQL(rr, httptest.NewRequest(http.MethodGet, query, nil))
				if rr.Code != http.StatusOK {
					t.Errorf("sparql status = %d body=%s", rr.Code, rr.Body.String())
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				rr := httptest.NewRecorder()
				srv.handleRecommend(rr, httptest.NewRequest(http.MethodGet, "/recommend?user=feo:User2&limit=3", nil))
				if rr.Code != http.StatusOK {
					t.Errorf("recommend status = %d body=%s", rr.Code, rr.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	// The explanations asserted under the write lock must be visible to a
	// subsequent read.
	rr := httptest.NewRecorder()
	srv.handleStats(rr, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("stats after hammering = %d", rr.Code)
	}
}

func TestRecommendEndpoint(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodGet, "/recommend?user=feo:User2&limit=3", nil)
	rr := httptest.NewRecorder()
	srv.handleRecommend(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rr.Code, rr.Body.String())
	}
	var out []struct {
		Label string  `json:"label"`
		Score float64 `json:"score"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Error("no recommendations")
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	rr := httptest.NewRecorder()
	srv.handleStats(rr, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "triples=") {
		t.Errorf("stats response: %d %s", rr.Code, rr.Body.String())
	}
}

func TestResolveTerm(t *testing.T) {
	if tm, err := resolveTerm("feo:Sushi"); err != nil || !strings.HasSuffix(tm.Value, "Sushi") {
		t.Errorf("resolveTerm qname: %v %v", tm, err)
	}
	if tm, err := resolveTerm("https://x/y"); err != nil || tm.Value != "https://x/y" {
		t.Errorf("resolveTerm iri: %v %v", tm, err)
	}
	if tm, err := resolveTerm(""); err != nil || tm.IsValid() {
		t.Errorf("resolveTerm empty: %v %v", tm, err)
	}
	if _, err := resolveTerm("nope:x"); err == nil {
		t.Error("unbound prefix should error")
	}
}

func TestNewSessionDatasets(t *testing.T) {
	for _, data := range []string{"cq1", "cq2", "cq3", "all", "none", "synthetic"} {
		s, err := newSession(data)
		if err != nil {
			t.Errorf("newSession(%s): %v", data, err)
			continue
		}
		if s.Graph().Len() == 0 {
			t.Errorf("newSession(%s): empty graph", data)
		}
	}
	if _, err := newSession("bogus"); err == nil {
		t.Error("bogus dataset should error")
	}
}
