package main

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestLoadHarnessClosedLoop runs the real mix against the real mux for a
// short burst: every request in the mix must succeed (no 4xx — the mix
// is supposed to be well-formed — and certainly no 5xx), and the report
// must close the loop through /metrics.
func TestLoadHarnessClosedLoop(t *testing.T) {
	ts := httptest.NewServer(testServer(t).mux())
	defer ts.Close()
	report, err := runLoad(ts.URL, 300*time.Millisecond, 4)
	if err != nil {
		t.Fatal(err)
	}
	if report.Requests == 0 {
		t.Fatal("no requests completed")
	}
	if report.Errors5xx > 0 {
		t.Fatalf("%d server errors: %+v", report.Errors5xx, report.StatusCounts)
	}
	for code := range report.StatusCounts {
		if code != "200" {
			t.Errorf("mix request answered %s (want all 200): %+v", code, report.StatusCounts)
		}
	}
	if report.ThroughputRPS <= 0 {
		t.Error("throughput not recorded")
	}
	if report.LatencyMS["p99"] < report.LatencyMS["p50"] {
		t.Errorf("p99 %.3f < p50 %.3f", report.LatencyMS["p99"], report.LatencyMS["p50"])
	}
	// The identical SPARQL queries repeat throughout the mix, so the
	// scraped plan-cache hit rate must be positive.
	if report.PlanCache["hit_rate"] <= 0 {
		t.Errorf("plan cache hit rate = %v, want > 0", report.PlanCache)
	}
	if report.EndpointCounts["/sparql"] == 0 || report.EndpointCounts["/explain"] == 0 {
		t.Errorf("mix did not cover the endpoints: %+v", report.EndpointCounts)
	}
}
