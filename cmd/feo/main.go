// Command feo is the command-line interface to the FEO reproduction.
//
//	feo query    [-data cq1|cq2|cq3|all|synthetic] [-datadir DIR] [-file f.rq] [QUERY]
//	feo explain  -type contextual -primary feo:CauliflowerPotatoCurry
//	             [-secondary feo:X] [-user feo:U] [-data ...] [-datadir DIR]
//	feo recommend [-user IRI] [-group IRI,IRI] [-limit N] [-data synthetic]
//	feo reason   [-data ...] [-naive]          print materialization stats
//	feo bench    -artifact table1|fig1|fig2|fig3|fig4|listing1|listing2|listing3|all
//	feo export   [-data ...] [-format ttl|nt]  dump the materialized graph
//	feo compact  -datadir DIR [-data ...]      snapshot + rotate the write-ahead log
//	feo serve    [-addr :8080] [-data ...] [-datadir DIR] [-sync commit|interval|off]
//	feo loadtest [-duration 5s] [-concurrency 8] [-out LOAD.json] [-url http://host:8080]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/feo"
	"repro/internal/ontology"
	"repro/internal/paper"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/turtle"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "query":
		err = cmdQuery(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "recommend":
		err = cmdRecommend(os.Args[2:])
	case "reason":
		err = cmdReason(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "update":
		err = cmdUpdate(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "compact":
		err = cmdCompact(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "loadtest":
		err = cmdLoadtest(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "feo: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "feo:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `feo — Food Explanation Ontology reproduction (ICDE 2021)

commands:
  query      run SPARQL against a dataset
  explain    generate one of the nine explanation types
  recommend  run the Health Coach recommender
  reason     materialize and print reasoner statistics
  bench      regenerate a paper artifact (table1, fig1-4, listing1-3, all)
  export     dump the materialized graph (ttl or nt)
  update     apply a SPARQL 1.1 Update request
  validate   run OWL consistency checks over the materialized graph
  compact    write a fresh durability snapshot and rotate the write-ahead log
  serve      start the HTTP SPARQL + explanation API
  loadtest   drive a closed-loop load mix against the API and report p50/p99
`)
}

// dataFlag registers the shared -data flag.
func dataFlag(fs *flag.FlagSet) *string {
	return fs.String("data", "all", "dataset: cq1, cq2, cq3, all, synthetic, none")
}

// parallelFlag registers the shared -parallel flag (SPARQL worker count).
func parallelFlag(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0, "SPARQL workers per query: 0 = one per CPU, 1 = sequential")
}

func newSession(data string) (*feo.Session, error) {
	return openSession(data, "", "")
}

// datadirFlag registers the shared -datadir flag (durability directory).
// Named -datadir rather than -data because -data already selects the
// dataset.
func datadirFlag(fs *flag.FlagSet) *string {
	return fs.String("datadir", "", "durability directory: snapshot + write-ahead log (empty = memory only)")
}

// syncFlag registers the shared -sync flag (WAL fsync policy).
func syncFlag(fs *flag.FlagSet) *string {
	return fs.String("sync", "commit", "WAL fsync policy: commit, interval, off")
}

// openSession builds a session, durable when datadir is set. When the
// directory already holds state, the graph is recovered from it and the
// dataset selector only matters for a fresh directory.
func openSession(data, datadir, syncMode string) (*feo.Session, error) {
	opts := feo.Options{DataDir: datadir}
	switch syncMode {
	case "", "commit":
		opts.Sync = feo.SyncAlways
	case "interval":
		opts.Sync = feo.SyncInterval
	case "off":
		opts.Sync = feo.SyncNever
	default:
		return nil, fmt.Errorf("unknown -sync policy %q (commit, interval, off)", syncMode)
	}
	var cq ontology.CompetencyQuestion
	loadCQ := false
	switch data {
	case "synthetic":
		opts.Data = feo.DataSynthetic
	case "none":
		opts.Data = feo.DataNone
	case "cq1", "cq2", "cq3":
		opts.Data = feo.DataNone
		cq = map[string]ontology.CompetencyQuestion{
			"cq1": ontology.CQ1, "cq2": ontology.CQ2, "cq3": ontology.CQ3,
		}[data]
		loadCQ = true
	case "all", "":
		opts.Data = feo.DataCQ
	default:
		return nil, fmt.Errorf("unknown dataset %q", data)
	}
	s, err := feo.Open(opts)
	if err != nil {
		return nil, err
	}
	// A replayed boot already contains whatever was loaded before the
	// restart; re-loading the CQ subset would mint fresh blank nodes and
	// duplicate its bnode-rooted structures.
	if loadCQ && !s.Replayed() {
		var sb strings.Builder
		if err := turtle.Write(&sb, ontology.ABox(cq)); err != nil {
			s.Close()
			return nil, err
		}
		if err := s.LoadTurtle(sb.String()); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

func cmdCompact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	data := dataFlag(fs)
	datadir := datadirFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *datadir == "" {
		return fmt.Errorf("compact requires -datadir")
	}
	s, err := openSession(*data, *datadir, "commit")
	if err != nil {
		return err
	}
	defer s.Close()
	if err := s.Compact(); err != nil {
		return err
	}
	fmt.Printf("compacted %s (stats: %s)\n", *datadir, s.Stats())
	return nil
}

// resolveTerm accepts a full IRI or a QName with the standard prefixes.
func resolveTerm(s string) (rdf.Term, error) {
	if s == "" {
		return rdf.Term{}, nil
	}
	if strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") {
		return rdf.NewIRI(s), nil
	}
	ns := rdf.StandardNamespaces()
	if iri, ok := ns.Expand(s); ok {
		return rdf.NewIRI(iri), nil
	}
	return rdf.Term{}, fmt.Errorf("cannot resolve term %q (use a full IRI or a standard QName)", s)
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	data := dataFlag(fs)
	datadir := datadirFlag(fs)
	sync := syncFlag(fs)
	file := fs.String("file", "", "read the query from a file")
	format := fs.String("format", "table", "output: table, json, csv, tsv, xml")
	par := parallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	feo.SetQueryParallelism(*par)
	query := strings.Join(fs.Args(), " ")
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		query = string(b)
	}
	if strings.TrimSpace(query) == "" {
		return fmt.Errorf("no query given")
	}
	s, err := openSession(*data, *datadir, *sync)
	if err != nil {
		return err
	}
	defer s.Close()
	res, err := s.Query(query)
	if err != nil {
		return err
	}
	if res.Graph != nil {
		return turtle.Write(os.Stdout, res.Graph)
	}
	switch *format {
	case "json":
		return res.WriteJSON(os.Stdout)
	case "csv":
		return res.WriteCSV(os.Stdout)
	case "tsv":
		return res.WriteTSV(os.Stdout)
	case "xml":
		return res.WriteXML(os.Stdout)
	case "table", "":
		fmt.Print(res.Table())
		fmt.Printf("(%d rows)\n", res.Len())
		return nil
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	data := dataFlag(fs)
	datadir := datadirFlag(fs)
	sync := syncFlag(fs)
	typeName := fs.String("type", "contextual", "explanation type (see Table I)")
	primary := fs.String("primary", "", "primary parameter IRI/QName")
	secondary := fs.String("secondary", "", "secondary parameter (contrastive)")
	user := fs.String("user", "", "asking user IRI/QName")
	verbose := fs.Bool("v", false, "print evidence and the SPARQL query")
	if err := fs.Parse(args); err != nil {
		return err
	}
	et, err := feo.ParseExplanationType(*typeName)
	if err != nil {
		return err
	}
	p, err := resolveTerm(*primary)
	if err != nil {
		return err
	}
	sec, err := resolveTerm(*secondary)
	if err != nil {
		return err
	}
	u, err := resolveTerm(*user)
	if err != nil {
		return err
	}
	s, err := openSession(*data, *datadir, *sync)
	if err != nil {
		return err
	}
	defer s.Close()
	ex, err := s.Explain(feo.Question{Type: et, Primary: p, Secondary: sec, User: u})
	if err != nil {
		return err
	}
	fmt.Printf("[%s] %s\n", ex.Type, ex.Summary)
	if *verbose {
		fmt.Println("\nevidence:")
		for _, ev := range ex.Evidence {
			fmt.Println("  -", ev.Phrase)
		}
		if ex.Query != "" {
			fmt.Println("\nquery:", ex.Query)
		}
	}
	return nil
}

func cmdRecommend(args []string) error {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	data := dataFlag(fs)
	user := fs.String("user", "", "user IRI/QName (default: first known user)")
	group := fs.String("group", "", "comma-separated user IRIs for group mode")
	limit := fs.Int("limit", 5, "number of recommendations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := newSession(*data)
	if err != nil {
		return err
	}
	// Pin one snapshot so the user listing and the ranking observe the
	// same graph version.
	sn := s.Snapshot()
	var recs []feo.Recommendation
	if *group != "" {
		var users []feo.Term
		for _, part := range strings.Split(*group, ",") {
			t, err := resolveTerm(strings.TrimSpace(part))
			if err != nil {
				return err
			}
			users = append(users, t)
		}
		recs = sn.RecommendGroup(users, *limit)
	} else {
		u, err := resolveTerm(*user)
		if err != nil {
			return err
		}
		if !u.IsValid() {
			all := sn.Users()
			if len(all) == 0 {
				return fmt.Errorf("no users in dataset")
			}
			u = all[0]
			fmt.Printf("(no -user given; using %s)\n", u.Value)
		}
		recs = sn.Recommend(u, *limit)
	}
	for i, r := range recs {
		if r.Excluded {
			fmt.Printf("%2d. %-40s EXCLUDED: %s\n", i+1, r.Label, r.Reason)
			continue
		}
		fmt.Printf("%2d. %-40s score %.1f\n", i+1, r.Label, r.Score)
	}
	return nil
}

func cmdReason(args []string) error {
	fs := flag.NewFlagSet("reason", flag.ExitOnError)
	data := dataFlag(fs)
	naive := fs.Bool("naive", false, "use naive (re-evaluation) strategy")
	if err := fs.Parse(args); err != nil {
		return err
	}
	g := ontology.TBox()
	switch *data {
	case "cq1":
		g.Merge(ontology.ABox(ontology.CQ1))
	case "cq2":
		g.Merge(ontology.ABox(ontology.CQ2))
	case "cq3":
		g.Merge(ontology.ABox(ontology.CQ3))
	case "none":
	default:
		g.Merge(ontology.ABox(ontology.CQAll))
	}
	r := reasoner.New(reasoner.Options{Naive: *naive})
	stats := r.Materialize(g)
	fmt.Println(stats)
	fmt.Println("rule firings:")
	rules := make([]string, 0, len(stats.RuleFirings))
	//feo:unordered
	for rule := range stats.RuleFirings {
		rules = append(rules, rule)
	}
	sort.Strings(rules)
	for _, rule := range rules {
		fmt.Printf("  %-12s %d\n", rule, stats.RuleFirings[rule])
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	artifact := fs.String("artifact", "all", "table1, fig1, fig2, fig3, fig4, listing1, listing2, listing3, all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	emit := func(name string) error {
		switch name {
		case "table1":
			out, err := paper.Table1()
			if err != nil {
				return err
			}
			fmt.Println(out)
		case "fig1":
			fmt.Println(paper.Figure1())
		case "fig2":
			fmt.Println(paper.Figure2())
		case "fig3":
			fmt.Println(paper.Figure3())
		case "fig4":
			fmt.Println(paper.Figure4())
		case "listing1", "listing2", "listing3":
			n := int(name[len(name)-1] - '0')
			out, err := paper.Listing(n)
			if err != nil {
				return err
			}
			fmt.Println(out)
		default:
			return fmt.Errorf("unknown artifact %q", name)
		}
		return nil
	}
	if *artifact == "all" {
		for _, a := range []string{"table1", "fig1", "fig2", "fig3", "fig4",
			"listing1", "listing2", "listing3"} {
			if err := emit(a); err != nil {
				return err
			}
		}
		return nil
	}
	return emit(*artifact)
}

func cmdUpdate(args []string) error {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	data := dataFlag(fs)
	datadir := datadirFlag(fs)
	sync := syncFlag(fs)
	file := fs.String("file", "", "read the update request from a file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := strings.Join(fs.Args(), " ")
	if *file != "" {
		b, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		req = string(b)
	}
	if strings.TrimSpace(req) == "" {
		return fmt.Errorf("no update request given")
	}
	s, err := openSession(*data, *datadir, *sync)
	if err != nil {
		return err
	}
	defer s.Close()
	res, err := s.Update(req)
	if err != nil {
		return err
	}
	fmt.Println(res)
	// Monotonic deletion caveat: inferences that lost a premise stay in
	// the graph; surface them instead of silently serving stale proofs.
	for _, t := range res.StaleInferred {
		fmt.Printf("warning: inference may be stale (a premise of its proof was deleted): %s %s %s\n",
			t.S, t.P, t.O)
	}
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	data := dataFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := newSession(*data)
	if err != nil {
		return err
	}
	incs := s.Validate()
	if len(incs) == 0 {
		fmt.Println("consistent: no violations found")
		return nil
	}
	for _, inc := range incs {
		fmt.Println(inc)
	}
	return fmt.Errorf("%d inconsistencies", len(incs))
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	data := dataFlag(fs)
	format := fs.String("format", "ttl", "ttl or nt")
	if err := fs.Parse(args); err != nil {
		return err
	}
	s, err := newSession(*data)
	if err != nil {
		return err
	}
	sn := s.Snapshot()
	switch *format {
	case "ttl":
		return sn.WriteTurtle(os.Stdout)
	case "nt":
		return turtle.WriteNTriples(os.Stdout, sn.Graph())
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}
