package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/feo"
)

// cmdLoadtest drives a closed-loop load harness against the HTTP API:
// every worker issues one request, waits for the full response, and
// immediately issues the next, so offered load adapts to server capacity
// instead of overrunning it. The request mix replays the serve tier's
// real traffic shape — SPARQL queries across all three protocol
// invocation forms and all four result formats, explanation generation
// (the write path), recommendations, and stats — and the report records
// throughput plus latency percentiles next to the plan-cache hit rate
// scraped from /metrics.
//
// By default the harness self-hosts: it starts the same mux `feo serve`
// runs on a loopback listener, so CI can smoke the serve tier with no
// orchestration. Point -url at a running server to drive a real
// deployment instead.
//
// The exit status is a gate: a run with zero completed requests or any
// 5xx response fails, so wiring `feo loadtest` into CI asserts the serve
// tier stays alive under concurrent mixed load.
func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ExitOnError)
	data := dataFlag(fs)
	par := parallelFlag(fs)
	duration := fs.Duration("duration", 5*time.Second, "how long to drive load")
	concurrency := fs.Int("concurrency", 8, "closed-loop workers")
	out := fs.String("out", "", "write the JSON report to this file (default stdout)")
	target := fs.String("url", "", "base URL of a running server (empty = self-host in-process)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *concurrency <= 0 {
		return fmt.Errorf("concurrency must be positive, got %d", *concurrency)
	}
	feo.SetQueryParallelism(*par)

	base := *target
	if base == "" {
		s, err := newSession(*data)
		if err != nil {
			return err
		}
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: newAPIServer(s, 30*time.Second, 0, 0).mux()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
	}
	base = strings.TrimRight(base, "/")

	report, err := runLoad(base, *duration, *concurrency)
	if err != nil {
		return err
	}
	encoded, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	encoded = append(encoded, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, encoded, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d requests, %.0f req/s, p99 %.2fms)\n",
			*out, report.Requests, report.ThroughputRPS, report.LatencyMS["p99"])
	} else {
		os.Stdout.Write(encoded)
	}
	// The CI gate: the serve tier must have done real work and never
	// answered with a server error.
	if report.Requests == 0 {
		return fmt.Errorf("load gate: zero requests completed")
	}
	if report.Errors5xx > 0 {
		return fmt.Errorf("load gate: %d server errors (5xx)", report.Errors5xx)
	}
	return nil
}

// loadReport is the machine-readable result, recorded in the repo as
// LOAD_N.json alongside the BENCH_N.json trajectory.
type loadReport struct {
	DurationSeconds float64            `json:"duration_s"`
	Concurrency     int                `json:"concurrency"`
	Requests        int                `json:"requests"`
	ThroughputRPS   float64            `json:"throughput_rps"`
	Errors5xx       int                `json:"errors_5xx"`
	StatusCounts    map[string]int     `json:"status_counts"`
	EndpointCounts  map[string]int     `json:"endpoint_counts"`
	LatencyMS       map[string]float64 `json:"latency_ms"`
	PlanCache       map[string]float64 `json:"plan_cache"`
}

// loadCall is one entry in the replayed mix.
type loadCall struct {
	endpoint string
	build    func(base string) (*http.Request, error)
}

func sparqlGET(query, format string) loadCall {
	return loadCall{"/sparql", func(base string) (*http.Request, error) {
		u := base + "/sparql?query=" + url.QueryEscape(query)
		if format != "" {
			u += "&format=" + format
		}
		return http.NewRequest(http.MethodGet, u, nil)
	}}
}

func sparqlFormPOST(query, accept string) loadCall {
	return loadCall{"/sparql", func(base string) (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/sparql",
			strings.NewReader(url.Values{"query": {query}}.Encode()))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
		req.Header.Set("Accept", accept)
		return req, nil
	}}
}

func sparqlRawPOST(query, accept string) loadCall {
	return loadCall{"/sparql", func(base string) (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, base+"/sparql", strings.NewReader(query))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/sparql-query")
		req.Header.Set("Accept", accept)
		return req, nil
	}}
}

func jsonPOST(path, body string) loadCall {
	return loadCall{path, func(base string) (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, base+path, strings.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}}
}

func plainGET(endpoint, path string) loadCall {
	return loadCall{endpoint, func(base string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, base+path, nil)
	}}
}

// loadMix is the fixed traffic shape, weighted toward the read-heavy
// query path the way the serve tier is actually used: repeated identical
// queries (so the plan cache matters), every protocol invocation form,
// every result format, a steady trickle of graph-mutating explanations,
// and recommendation/stats reads.
var loadMix = []loadCall{
	sparqlGET("SELECT ?q WHERE { ?q a feo:FoodQuestion }", ""),
	sparqlGET("SELECT ?r ?i WHERE { ?r feo:hasIngredient ?i }", "tsv"),
	sparqlFormPOST("SELECT ?q WHERE { ?q a feo:FoodQuestion }", "application/sparql-results+xml"),
	sparqlGET("SELECT ?q WHERE { ?q a feo:FoodQuestion }", ""),
	plainGET("/recommend", "/recommend?user=feo:User2&limit=5"),
	sparqlRawPOST("SELECT ?r ?i WHERE { ?r feo:hasIngredient ?i }", "text/csv"),
	jsonPOST("/explain", `{"type":"contextual","primary":"feo:CauliflowerPotatoCurry"}`),
	sparqlGET("ASK { feo:Sushi feo:hasIngredient feo:RawFish }", ""),
	plainGET("/recommend", "/recommend?user=feo:User2&limit=5"),
	plainGET("/stats", "/stats"),
}

// workerStats is accumulated lock-free per worker and merged after the
// run, so measurement adds no cross-worker synchronization.
type workerStats struct {
	latencies []float64 // milliseconds
	status    map[int]int
	endpoints map[string]int
}

func runLoad(base string, duration time.Duration, concurrency int) (*loadReport, error) {
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        concurrency * 2,
			MaxIdleConnsPerHost: concurrency * 2,
		},
		Timeout: 60 * time.Second,
	}
	deadline := time.Now().Add(duration)
	start := time.Now()
	workers := make([]workerStats, concurrency)
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := workerStats{status: make(map[int]int), endpoints: make(map[string]int)}
			// Offset each worker's starting point so the mix interleaves
			// across workers instead of marching in lockstep.
			for i := w; time.Now().Before(deadline); i++ {
				call := loadMix[i%len(loadMix)]
				req, err := call.build(base)
				if err != nil {
					st.status[0]++
					continue
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					st.status[0]++
					continue
				}
				// Drain fully: closed-loop means the response is consumed,
				// and keep-alive needs the body read to completion.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.latencies = append(st.latencies, float64(time.Since(t0).Nanoseconds())/1e6)
				st.status[resp.StatusCode]++
				st.endpoints[call.endpoint]++
			}
			workers[w] = st
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := &loadReport{
		DurationSeconds: elapsed.Seconds(),
		Concurrency:     concurrency,
		StatusCounts:    make(map[string]int),
		EndpointCounts:  make(map[string]int),
		LatencyMS:       make(map[string]float64),
		PlanCache:       make(map[string]float64),
	}
	var all []float64
	for _, st := range workers {
		all = append(all, st.latencies...)
		for code, n := range st.status {
			key := "transport_error"
			if code != 0 {
				key = strconv.Itoa(code)
			}
			report.StatusCounts[key] += n
			if code >= 500 {
				report.Errors5xx += n
			}
		}
		for ep, n := range st.endpoints {
			report.EndpointCounts[ep] += n
		}
	}
	report.Requests = len(all)
	if elapsed > 0 {
		report.ThroughputRPS = float64(len(all)) / elapsed.Seconds()
	}
	sort.Float64s(all)
	pct := func(q float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return all[int(q*float64(len(all)-1))]
	}
	report.LatencyMS["p50"] = pct(0.50)
	report.LatencyMS["p95"] = pct(0.95)
	report.LatencyMS["p99"] = pct(0.99)
	report.LatencyMS["max"] = pct(1.0)

	if err := scrapePlanCache(client, base, report.PlanCache); err != nil {
		return nil, fmt.Errorf("scraping /metrics: %w", err)
	}
	return report, nil
}

// scrapePlanCache closes the observability loop: the harness reads the
// server's own /metrics exposition (rather than any in-process state) to
// report the plan-cache hit rate the run achieved.
func scrapePlanCache(client *http.Client, base string, out map[string]float64) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/metrics status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	for _, line := range strings.Split(string(body), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		switch fields[0] {
		case "feo_query_plan_cache_hits":
			out["hits"], _ = strconv.ParseFloat(fields[1], 64)
		case "feo_query_plan_cache_misses":
			out["misses"], _ = strconv.ParseFloat(fields[1], 64)
		}
	}
	if total := out["hits"] + out["misses"]; total > 0 {
		out["hit_rate"] = out["hits"] / total
	}
	return nil
}
