package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"mime"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/feo"
)

// SPARQL 1.1 Protocol (https://www.w3.org/TR/sparql11-protocol/) on
// /sparql. The three query invocation forms:
//
//	GET  /sparql?query=...                        (query via query string)
//	POST /sparql  application/x-www-form-urlencoded   query=... in the body
//	POST /sparql  application/sparql-query            the query IS the body
//
// plus the pre-protocol JSON form this server always spoke, kept for
// compatibility: POST application/json {"query": "..."}.
//
// Errors follow the protocol: 405 (with Allow) for methods other than
// GET/POST, 415 for an unsupported POST content type, 400 for a missing
// or malformed query, 406 for an Accept header naming no supported
// result format. Content negotiation — explicit ?format= first, then
// Accept with q-values — resolves BEFORE the query runs, so a rejected
// request never costs an evaluation.

var (
	errMethodNotAllowed = errors.New("method not allowed")
	errNotAcceptable    = errors.New("no supported format in Accept header " +
		"(supported: application/sparql-results+json, application/sparql-results+xml, text/csv, text/tab-separated-values)")
)

// truncationTrailer is the response trailer carrying the truncation
// reason for formats with no in-band channel (CSV/TSV). It is declared on
// every streamed response; JSON and XML additionally record truncation
// inside the document.
const truncationTrailer = "X-Feo-Truncated"

// resultFormat binds a negotiated format name to its media type and
// streaming writer.
type resultFormat struct {
	name        string
	contentType string
	newWriter   func(io.Writer) feo.ResultWriter
}

var resultFormats = []resultFormat{
	{"json", "application/sparql-results+json", feo.NewJSONResultWriter},
	{"xml", "application/sparql-results+xml", feo.NewXMLResultWriter},
	{"csv", "text/csv; charset=utf-8", feo.NewCSVResultWriter},
	{"tsv", "text/tab-separated-values; charset=utf-8", feo.NewTSVResultWriter},
}

func formatNamed(name string) (resultFormat, bool) {
	for _, f := range resultFormats {
		if f.name == name {
			return f, true
		}
	}
	return resultFormat{}, false
}

// mediaTypeFormats maps acceptable media types to format names.
// application/json and application/xml are conventional aliases.
var mediaTypeFormats = map[string]string{
	"application/sparql-results+json": "json",
	"application/json":                "json",
	"application/sparql-results+xml":  "xml",
	"application/xml":                 "xml",
	"text/csv":                        "csv",
	"text/tab-separated-values":       "tsv",
}

// negotiateFormat resolves the result format before evaluation: an
// explicit ?format= wins (unknown values are a 400), otherwise the Accept
// header is parsed with q-values (unsatisfiable is a 406), and no
// preference at all defaults to the SPARQL results JSON format.
func negotiateFormat(r *http.Request) (resultFormat, int, error) {
	if name := r.URL.Query().Get("format"); name != "" {
		f, ok := formatNamed(name)
		if !ok {
			return resultFormat{}, http.StatusBadRequest, fmt.Errorf("unknown format %q (want json, xml, csv, or tsv)", name)
		}
		return f, 0, nil
	}
	accept := r.Header.Get("Accept")
	if strings.TrimSpace(accept) == "" {
		return resultFormats[0], 0, nil
	}
	type choice struct {
		name string
		q    float64
		pref int // server preference order, tie-breaker at equal q
	}
	var choices []choice
	for _, clause := range strings.Split(accept, ",") {
		mt, params, err := mime.ParseMediaType(strings.TrimSpace(clause))
		if err != nil {
			continue // a malformed clause never blocks the others
		}
		q := 1.0
		if qs, ok := params["q"]; ok {
			if v, err := strconv.ParseFloat(qs, 64); err == nil {
				q = v
			}
		}
		if q <= 0 {
			continue // explicitly refused
		}
		var name string
		switch {
		case mt == "*/*" || mt == "application/*":
			name = "json"
		case mt == "text/*":
			name = "csv"
		default:
			var ok bool
			if name, ok = mediaTypeFormats[mt]; !ok {
				continue
			}
		}
		pref := 0
		for i, f := range resultFormats {
			if f.name == name {
				pref = i
				break
			}
		}
		choices = append(choices, choice{name, q, pref})
	}
	if len(choices) == 0 {
		return resultFormat{}, http.StatusNotAcceptable, errNotAcceptable
	}
	sort.SliceStable(choices, func(i, j int) bool {
		if choices[i].q != choices[j].q {
			return choices[i].q > choices[j].q
		}
		return choices[i].pref < choices[j].pref
	})
	f, _ := formatNamed(choices[0].name)
	return f, 0, nil
}

// readQuery extracts the query string per the protocol's invocation
// forms. A non-zero status means the request was rejected.
func readQuery(r *http.Request) (string, int, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("query")
		if strings.TrimSpace(q) == "" {
			return "", http.StatusBadRequest, errors.New("missing query parameter")
		}
		return q, 0, nil
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		mt, _, err := mime.ParseMediaType(ct)
		if ct == "" || err != nil {
			return "", http.StatusUnsupportedMediaType, fmt.Errorf("unsupported content type %q", ct)
		}
		switch mt {
		case "application/x-www-form-urlencoded":
			if err := r.ParseForm(); err != nil {
				return "", http.StatusBadRequest, fmt.Errorf("malformed form body: %w", err)
			}
			q := r.PostForm.Get("query")
			if strings.TrimSpace(q) == "" {
				return "", http.StatusBadRequest, errors.New("missing query form parameter")
			}
			return q, 0, nil
		case "application/sparql-query":
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				return "", http.StatusBadRequest, fmt.Errorf("reading query body: %w", err)
			}
			if strings.TrimSpace(string(body)) == "" {
				return "", http.StatusBadRequest, errors.New("empty query body")
			}
			return string(body), 0, nil
		case "application/json":
			// Pre-protocol body shape; decode failures are reported, not
			// swallowed into a misleading "missing query".
			var body struct {
				Query string `json:"query"`
			}
			if err := decodeJSONBody(r, &body); err != nil {
				return "", http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err)
			}
			if strings.TrimSpace(body.Query) == "" {
				return "", http.StatusBadRequest, errors.New("missing \"query\" member in JSON body")
			}
			return body.Query, 0, nil
		default:
			return "", http.StatusUnsupportedMediaType, fmt.Errorf("unsupported content type %q", mt)
		}
	default:
		return "", http.StatusMethodNotAllowed, errMethodNotAllowed
	}
}

// handleSPARQL is the protocol endpoint. The full request is validated —
// method, invocation form, query presence, result format — before the
// query executes, and results stream through the negotiated writer under
// the server's deadline/row/byte limits with O(row) serialization memory.
func (s *apiServer) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed)
		return
	}
	format, status, err := negotiateFormat(r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	query, status, err := readQuery(r)
	if err != nil {
		writeError(w, status, err)
		return
	}
	opts := feo.StreamOptions{MaxRows: s.maxRows, MaxBytes: s.maxBytes}
	if s.queryTimeout > 0 {
		opts.Deadline = time.Now().Add(s.queryTimeout)
	}
	sn := s.sess.Snapshot()
	// Headers (and the truncation trailer declaration) go out with the
	// first streamed byte; nothing below writes before QueryStream's first
	// row, so every pre-stream error still gets a clean error response.
	w.Header().Set("Content-Type", format.contentType)
	w.Header().Set("Trailer", truncationTrailer)
	rw := format.newWriter(w)
	st, err := sn.QueryStream(query, rw, opts)
	switch {
	case err == nil:
		if st.Truncated {
			// In the trailer for every format (CSV/TSV have no in-band
			// channel); JSON/XML documents additionally carry it inline.
			w.Header().Set(truncationTrailer, st.Reason)
			s.metrics.truncations(st.Reason).Inc()
		}
	case errors.Is(err, feo.ErrGraphResult):
		// CONSTRUCT/DESCRIBE: a graph, not bindings. Nothing has been
		// written yet, so the negotiated headers can be replaced wholesale.
		res, qerr := sn.Query(query)
		if qerr != nil {
			writeError(w, http.StatusBadRequest, qerr)
			return
		}
		w.Header().Set("Content-Type", "text/turtle; charset=utf-8")
		if werr := feo.WriteGraphTurtle(w, res.Graph); werr != nil {
			log.Printf("feo: sparql turtle response: %v", werr)
		}
	case errors.Is(err, feo.ErrQueryDeadlineExceeded):
		s.metrics.truncations("deadline").Inc()
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("query exceeded the server time limit (%s)", s.queryTimeout))
	case rw.Written() == 0:
		// Parse/evaluation failure before the first result byte: a clean
		// HTTP error is still possible.
		writeError(w, http.StatusBadRequest, err)
	default:
		// Mid-stream transport failure (client went away): the status is
		// already on the wire, only log.
		log.Printf("feo: sparql stream: %v", err)
	}
}
