package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/feo"
)

const protoQuery = "SELECT ?q WHERE { ?q a feo:FoodQuestion }"

func protoJSONBindings(t *testing.T, body string) int {
	t.Helper()
	var out struct {
		Results struct {
			Bindings []map[string]map[string]any `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("invalid results JSON: %v\n%s", err, body)
	}
	return len(out.Results.Bindings)
}

// TestProtocolInvocationForms exercises the three SPARQL 1.1 Protocol
// query invocations; all must return the same result set.
func TestProtocolInvocationForms(t *testing.T) {
	srv := testServer(t)
	requests := map[string]*http.Request{
		"get": httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(protoQuery), nil),
	}
	form := httptest.NewRequest(http.MethodPost, "/sparql",
		strings.NewReader(url.Values{"query": {protoQuery}}.Encode()))
	form.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	requests["urlencoded-post"] = form
	raw := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(protoQuery))
	raw.Header.Set("Content-Type", "application/sparql-query")
	requests["raw-post"] = raw
	// Content-type parameters must not break dispatch.
	rawParams := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(protoQuery))
	rawParams.Header.Set("Content-Type", "application/sparql-query; charset=UTF-8")
	requests["raw-post-params"] = rawParams

	for name, req := range requests {
		rr := httptest.NewRecorder()
		srv.handleSPARQL(rr, req)
		if rr.Code != http.StatusOK {
			t.Errorf("%s: status = %d body=%s", name, rr.Code, rr.Body.String())
			continue
		}
		if got := protoJSONBindings(t, rr.Body.String()); got != 3 {
			t.Errorf("%s: bindings = %d, want 3", name, got)
		}
	}
}

// TestProtocolContentNegotiation drives the Accept matrix: media types,
// aliases, q-values, wildcards, and the 406 path.
func TestProtocolContentNegotiation(t *testing.T) {
	srv := testServer(t)
	get := "/sparql?query=" + url.QueryEscape(protoQuery)
	cases := []struct {
		accept string
		wantCT string
	}{
		{"", "application/sparql-results+json"},
		{"application/sparql-results+json", "application/sparql-results+json"},
		{"application/json", "application/sparql-results+json"},
		{"application/sparql-results+xml", "application/sparql-results+xml"},
		{"application/xml", "application/sparql-results+xml"},
		{"text/csv", "text/csv; charset=utf-8"},
		{"text/tab-separated-values", "text/tab-separated-values; charset=utf-8"},
		{"*/*", "application/sparql-results+json"},
		{"text/*", "text/csv; charset=utf-8"},
		// q-values: the higher preference wins regardless of order.
		{"text/csv;q=0.3, application/sparql-results+xml;q=0.9", "application/sparql-results+xml"},
		{"application/sparql-results+xml;q=0.2, text/tab-separated-values", "text/tab-separated-values; charset=utf-8"},
		// An unsupported type falls through to a supported alternative.
		{"text/html, application/sparql-results+json;q=0.5", "application/sparql-results+json"},
		// q=0 refuses a type.
		{"text/csv;q=0, */*", "application/sparql-results+json"},
	}
	for _, tc := range cases {
		req := httptest.NewRequest(http.MethodGet, get, nil)
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		rr := httptest.NewRecorder()
		srv.handleSPARQL(rr, req)
		if rr.Code != http.StatusOK {
			t.Errorf("Accept %q: status = %d", tc.accept, rr.Code)
			continue
		}
		if ct := rr.Header().Get("Content-Type"); ct != tc.wantCT {
			t.Errorf("Accept %q: content type = %q, want %q", tc.accept, ct, tc.wantCT)
		}
	}
	// Unsatisfiable Accept: 406, and the query must not have run — the
	// error arrives before evaluation.
	req := httptest.NewRequest(http.MethodGet, get, nil)
	req.Header.Set("Accept", "text/html")
	rr := httptest.NewRecorder()
	srv.handleSPARQL(rr, req)
	if rr.Code != http.StatusNotAcceptable {
		t.Errorf("unsatisfiable Accept: status = %d, want 406", rr.Code)
	}
	// ?format= beats Accept.
	req = httptest.NewRequest(http.MethodGet, get+"&format=tsv", nil)
	req.Header.Set("Accept", "application/sparql-results+xml")
	rr = httptest.NewRecorder()
	srv.handleSPARQL(rr, req)
	if ct := rr.Header().Get("Content-Type"); ct != "text/tab-separated-values; charset=utf-8" {
		t.Errorf("format override: content type = %q", ct)
	}
}

// TestProtocolFormatValidatedBeforeEvaluation pins the bugfix: a bogus
// ?format= (or hopeless Accept) must be rejected without burning an
// evaluation. The probe is a query that would fail to parse — if
// validation happened after evaluation, the response would be the parse
// error, not the format error.
func TestProtocolFormatValidatedBeforeEvaluation(t *testing.T) {
	srv := testServer(t)
	rr := httptest.NewRecorder()
	srv.handleSPARQL(rr, httptest.NewRequest(http.MethodGet, "/sparql?query=NOT+SPARQL&format=bogus", nil))
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "unknown format") {
		t.Errorf("want the format error (pre-evaluation), got: %s", rr.Body.String())
	}
}

func TestProtocolMethodAndMediaTypeErrors(t *testing.T) {
	srv := testServer(t)
	// 405 with Allow for non-GET/POST.
	for _, method := range []string{http.MethodDelete, http.MethodPut, http.MethodPatch} {
		rr := httptest.NewRecorder()
		srv.handleSPARQL(rr, httptest.NewRequest(method, "/sparql?query=ASK{}", nil))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s /sparql: status = %d, want 405", method, rr.Code)
		}
		if allow := rr.Header().Get("Allow"); allow != "GET, POST" {
			t.Errorf("%s /sparql: Allow = %q", method, allow)
		}
	}
	// 415 for POST bodies the endpoint does not speak (or none declared).
	for _, ct := range []string{"text/plain", "application/octet-stream", ""} {
		req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(protoQuery))
		if ct != "" {
			req.Header.Set("Content-Type", ct)
		}
		rr := httptest.NewRecorder()
		srv.handleSPARQL(rr, req)
		if rr.Code != http.StatusUnsupportedMediaType {
			t.Errorf("POST %q: status = %d, want 415", ct, rr.Code)
		}
	}
}

// TestProtocolMalformedJSONBodyReported pins the bugfix: a broken legacy
// JSON body must surface the decode error, not a misleading "missing
// query".
func TestProtocolMalformedJSONBodyReported(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/sparql", strings.NewReader(`{"query": `))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	srv.handleSPARQL(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "malformed JSON body") {
		t.Errorf("decode error not reported: %s", rr.Body.String())
	}
}

func TestProtocolConstructAnswersTurtle(t *testing.T) {
	srv := testServer(t)
	q := "CONSTRUCT { ?q a feo:FoodQuestion } WHERE { ?q a feo:FoodQuestion }"
	rr := httptest.NewRecorder()
	srv.handleSPARQL(rr, httptest.NewRequest(http.MethodGet, "/sparql?query="+url.QueryEscape(q), nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/turtle") {
		t.Errorf("content type = %q, want text/turtle", ct)
	}
	if !strings.Contains(rr.Body.String(), "FoodQuestion") {
		t.Errorf("turtle body missing constructed triples:\n%s", rr.Body.String())
	}
}

// TestProtocolRowLimitTruncates drives the server-side result caps: the
// truncated JSON document stays well-formed and carries the in-band
// truncation member plus the trailer, and the truncation counter moves.
func TestProtocolRowLimitTruncates(t *testing.T) {
	srv := newAPIServer(feo.NewSession(feo.Options{}), 30*time.Second, 1, 0)
	rr := httptest.NewRecorder()
	srv.handleSPARQL(rr, httptest.NewRequest(http.MethodGet,
		"/sparql?query="+url.QueryEscape(protoQuery), nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var doc struct {
		Results struct {
			Bindings []map[string]any `json:"bindings"`
		} `json:"results"`
		Truncated string `json:"truncated"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("truncated response not well-formed: %v\n%s", err, rr.Body.String())
	}
	if len(doc.Results.Bindings) != 1 || doc.Truncated != "rows" {
		t.Errorf("bindings = %d truncated = %q, want 1/rows", len(doc.Results.Bindings), doc.Truncated)
	}
	if got := rr.Header().Get(truncationTrailer); got != "rows" {
		t.Errorf("trailer = %q, want rows", got)
	}
	if srv.metrics.truncations("rows").Value() != 1 {
		t.Error("truncation counter did not move")
	}
}

func TestRecommendLimitValidation(t *testing.T) {
	srv := testServer(t)
	for _, bad := range []string{"abc", "-3", "0", "1e3", "101"} {
		rr := httptest.NewRecorder()
		srv.handleRecommend(rr, httptest.NewRequest(http.MethodGet, "/recommend?user=feo:User2&limit="+bad, nil))
		if rr.Code != http.StatusBadRequest {
			t.Errorf("limit=%s: status = %d, want 400", bad, rr.Code)
		}
	}
	// In-range limits still work, and the default applies when absent.
	for _, u := range []string{"/recommend?user=feo:User2&limit=2", "/recommend?user=feo:User2"} {
		rr := httptest.NewRecorder()
		srv.handleRecommend(rr, httptest.NewRequest(http.MethodGet, u, nil))
		if rr.Code != http.StatusOK {
			t.Errorf("%s: status = %d body=%s", u, rr.Code, rr.Body.String())
		}
	}
}

// TestMethodHardening pins the bugfix that POST/DELETE /stats (and
// non-GET /recommend) returned 200.
func TestMethodHardening(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		method  string
		handler http.HandlerFunc
		path    string
		allow   string
	}{
		{http.MethodPost, srv.handleStats, "/stats", "GET"},
		{http.MethodDelete, srv.handleStats, "/stats", "GET"},
		{http.MethodPost, srv.handleRecommend, "/recommend", "GET"},
		{http.MethodDelete, srv.handleRecommend, "/recommend", "GET"},
		{http.MethodDelete, srv.handleMetrics, "/metrics", "GET"},
		{http.MethodGet, srv.handleExplain, "/explain", "POST"},
	}
	for _, tc := range cases {
		rr := httptest.NewRecorder()
		tc.handler(rr, httptest.NewRequest(tc.method, tc.path, nil))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status = %d, want 405", tc.method, tc.path, rr.Code)
		}
		if allow := rr.Header().Get("Allow"); allow != tc.allow {
			t.Errorf("%s %s: Allow = %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
	}
}

// TestMetricsEndpoint drives requests through the instrumented mux and
// checks the exposition carries the families the load harness consumes.
func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)
	mux := srv.mux()
	for i := 0; i < 3; i++ {
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet,
			"/sparql?query="+url.QueryEscape(protoQuery), nil))
		if rr.Code != http.StatusOK {
			t.Fatalf("sparql via mux: %d", rr.Code)
		}
	}
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rr.Code)
	}
	out := rr.Body.String()
	for _, want := range []string{
		`feo_http_request_duration_seconds_bucket{endpoint="/sparql",le="+Inf"} 3`,
		`feo_http_requests_total{code="200",endpoint="/sparql"} 3`,
		"feo_query_plan_cache_hits",
		"feo_query_plan_cache_misses",
		"feo_snapshot_age_seconds",
		"feo_graph_triples",
		"feo_reasoner_inferred_total",
		"feo_reasoner_last_run_inferred",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Plan-cache hits must be non-zero after repeating one query: the
	// serve path keeps the cached plan hot across requests.
	if strings.Contains(out, "feo_query_plan_cache_hits 0\n") {
		t.Error("plan cache never hit across repeated identical queries")
	}
}
