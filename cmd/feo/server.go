package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/feo"
)

// cmdServe starts the HTTP API:
//
//	/sparql     SPARQL 1.1 Protocol query endpoint (see sparqlproto.go):
//	            GET ?query=..., POST application/x-www-form-urlencoded,
//	            POST application/sparql-query (plus the legacy JSON body).
//	            Results stream in the negotiated W3C format — JSON, XML,
//	            CSV, or TSV via ?format= or the Accept header — with
//	            O(row) serialization memory. CONSTRUCT/DESCRIBE answer
//	            text/turtle.
//	POST /explain    {"type","primary","secondary","user"} -> explanation
//	GET  /recommend?user=IRI&limit=N   (1 <= N <= 100)
//	GET  /stats      graph statistics
//	GET  /metrics    Prometheus text exposition: per-endpoint latency
//	                 histograms and response counters, plan-cache
//	                 hit/miss counts, snapshot age, graph size, and
//	                 reasoner inference gauges
//
// Every query runs under -query-timeout plus the -max-rows / -max-bytes
// result caps: a runaway query is canceled cooperatively, and one that
// trips a cap mid-stream ends with a well-formed truncated document
// whose reason travels in the X-Feo-Truncated trailer (JSON and XML also
// record it in-band). Unknown methods get 405 with Allow, unsupported
// POST bodies 415, unsatisfiable Accept headers 406 — all decided before
// any evaluation work.
//
// net/http serves each request on its own goroutine, and /explain mutates
// the graph (the engine asserts question and explanation individuals), so
// handler concurrency is exactly the writer-vs-reader mix. feo.Session
// resolves it with MVCC snapshots: every read handler pins the latest
// published version (one atomic load, zero lock hold) and runs entirely
// against that immutable view, so /sparql, /recommend, and /stats never
// queue — not behind each other and not behind an in-flight /explain,
// even one stalled in a WAL fsync. Explanation writes serialize among
// themselves and publish a new version when they commit; a handler that
// makes several session calls pins one snapshot so they all observe the
// same version.
//
// The server carries read/write/idle timeouts (a stuck client cannot pin
// a connection forever) and shuts down gracefully on SIGINT/SIGTERM:
// in-flight requests drain, then the session's write-ahead log is flushed
// and closed, so a deliberate stop never relies on crash recovery.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := dataFlag(fs)
	datadir := datadirFlag(fs)
	sync := syncFlag(fs)
	addr := fs.String("addr", ":8080", "listen address")
	par := parallelFlag(fs)
	queryTimeout := fs.Duration("query-timeout", 30*time.Second, "per-query deadline (0 = none)")
	maxRows := fs.Int("max-rows", 0, "cap on result rows per query (0 = unlimited)")
	maxBytes := fs.Int64("max-bytes", 0, "cap on serialized result bytes per query (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	feo.SetQueryParallelism(*par)
	s, err := openSession(*data, *datadir, *sync)
	if err != nil {
		return err
	}
	srv := newAPIServer(s, *queryTimeout, *maxRows, *maxBytes)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		if *datadir != "" {
			log.Printf("feo: serving on %s (dataset %s, durable in %s)", *addr, *data, *datadir)
		} else {
			log.Printf("feo: serving on %s (dataset %s)", *addr, *data)
		}
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("feo: shutting down (draining in-flight requests)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if closeErr := s.Close(); shutdownErr == nil {
		shutdownErr = closeErr
	}
	if errors.Is(shutdownErr, http.ErrServerClosed) {
		shutdownErr = nil
	}
	if shutdownErr == nil {
		log.Printf("feo: shutdown complete")
	}
	return shutdownErr
}

type apiServer struct {
	sess         *feo.Session
	metrics      *serverMetrics
	queryTimeout time.Duration
	maxRows      int
	maxBytes     int64
}

func newAPIServer(s *feo.Session, queryTimeout time.Duration, maxRows int, maxBytes int64) *apiServer {
	return &apiServer{
		sess:         s,
		metrics:      newServerMetrics(s),
		queryTimeout: queryTimeout,
		maxRows:      maxRows,
		maxBytes:     maxBytes,
	}
}

// mux routes the API with per-endpoint instrumentation.
func (s *apiServer) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", s.instrument("/sparql", s.handleSPARQL))
	mux.HandleFunc("/explain", s.instrument("/explain", s.handleExplain))
	mux.HandleFunc("/recommend", s.instrument("/recommend", s.handleRecommend))
	mux.HandleFunc("/stats", s.instrument("/stats", s.handleStats))
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("feo: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// decodeJSONBody decodes one JSON value from the request body.
func decodeJSONBody(r *http.Request, v any) error {
	return json.NewDecoder(r.Body).Decode(v)
}

func (s *apiServer) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed)
		return
	}
	var body struct {
		Type      string `json:"type"`
		Primary   string `json:"primary"`
		Secondary string `json:"secondary"`
		User      string `json:"user"`
		Text      string `json:"text"`
	}
	if err := decodeJSONBody(r, &body); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err))
		return
	}
	et, err := feo.ParseExplanationType(body.Type)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	primary, err := resolveTerm(body.Primary)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	secondary, err := resolveTerm(body.Secondary)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	user, err := resolveTerm(body.User)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ex, err := s.sess.Explain(feo.Question{
		Type: et, Primary: primary, Secondary: secondary, User: user, Text: body.Text,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	evidence := make([]string, 0, len(ex.Evidence))
	for _, ev := range ex.Evidence {
		evidence = append(evidence, ev.Phrase)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"type":     ex.Type.String(),
		"summary":  ex.Summary,
		"evidence": evidence,
	})
}

// maxRecommendLimit bounds ?limit= on /recommend: the coach ranks the
// whole recipe set either way, but an absurd limit would serialize an
// absurd response.
const maxRecommendLimit = 100

func (s *apiServer) handleRecommend(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed)
		return
	}
	userStr := r.URL.Query().Get("user")
	user, err := resolveTerm(userStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	limit := 5
	if ls := r.URL.Query().Get("limit"); ls != "" {
		limit, err = strconv.Atoi(ls)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("limit %q is not an integer", ls))
			return
		}
		if limit <= 0 || limit > maxRecommendLimit {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("limit must be in 1..%d, got %d", maxRecommendLimit, limit))
			return
		}
	}
	// One pinned snapshot for the whole request: the user listing and the
	// ranking are guaranteed to observe the same graph version.
	sn := s.sess.Snapshot()
	if !user.IsValid() {
		users := sn.Users()
		if len(users) == 0 {
			writeError(w, http.StatusNotFound, fmt.Errorf("no users in dataset"))
			return
		}
		user = users[0]
	}
	recs := sn.Recommend(user, limit)
	type rec struct {
		Recipe   string  `json:"recipe"`
		Label    string  `json:"label"`
		Score    float64 `json:"score"`
		Excluded bool    `json:"excluded,omitempty"`
		Reason   string  `json:"reason,omitempty"`
	}
	out := make([]rec, 0, len(recs))
	for _, r := range recs {
		out = append(out, rec{
			Recipe: r.Recipe.Value, Label: r.Label, Score: r.Score,
			Excluded: r.Excluded, Reason: r.Reason,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *apiServer) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"stats": s.sess.Snapshot().Stats()})
}
