package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/feo"
)

// cmdServe starts the HTTP API:
//
//	GET/POST /sparql?query=...   SPARQL endpoint (JSON results)
//	POST     /explain            {"type","primary","secondary","user"} -> explanation
//	GET      /recommend?user=IRI&limit=N
//	GET      /stats              graph statistics
//
// net/http serves each request on its own goroutine, and /explain mutates
// the graph (the engine asserts question and explanation individuals), so
// handler concurrency is exactly the writer-vs-reader mix. feo.Session
// resolves it with MVCC snapshots: every read handler pins the latest
// published version (one atomic load, zero lock hold) and runs entirely
// against that immutable view, so /sparql, /recommend, and /stats never
// queue — not behind each other and not behind an in-flight /explain,
// even one stalled in a WAL fsync. Explanation writes serialize among
// themselves and publish a new version when they commit; a handler that
// makes several session calls pins one snapshot so they all observe the
// same version.
//
// The server carries read/write/idle timeouts (a stuck client cannot pin
// a connection forever) and shuts down gracefully on SIGINT/SIGTERM:
// in-flight requests drain, then the session's write-ahead log is flushed
// and closed, so a deliberate stop never relies on crash recovery.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := dataFlag(fs)
	datadir := datadirFlag(fs)
	sync := syncFlag(fs)
	addr := fs.String("addr", ":8080", "listen address")
	par := parallelFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	feo.SetQueryParallelism(*par)
	s, err := openSession(*data, *datadir, *sync)
	if err != nil {
		return err
	}
	srv := &apiServer{sess: s}
	mux := http.NewServeMux()
	mux.HandleFunc("/sparql", srv.handleSPARQL)
	mux.HandleFunc("/explain", srv.handleExplain)
	mux.HandleFunc("/recommend", srv.handleRecommend)
	mux.HandleFunc("/stats", srv.handleStats)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		if *datadir != "" {
			log.Printf("feo: serving on %s (dataset %s, durable in %s)", *addr, *data, *datadir)
		} else {
			log.Printf("feo: serving on %s (dataset %s)", *addr, *data)
		}
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		s.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("feo: shutting down (draining in-flight requests)")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	shutdownErr := httpSrv.Shutdown(shutdownCtx)
	if closeErr := s.Close(); shutdownErr == nil {
		shutdownErr = closeErr
	}
	if errors.Is(shutdownErr, http.ErrServerClosed) {
		shutdownErr = nil
	}
	if shutdownErr == nil {
		log.Printf("feo: shutdown complete")
	}
	return shutdownErr
}

type apiServer struct {
	sess *feo.Session
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("feo: encode response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleSPARQL evaluates a query from ?query= or the POST body and encodes
// bindings in a simplified SPARQL-results-JSON shape.
func (s *apiServer) handleSPARQL(w http.ResponseWriter, r *http.Request) {
	query := r.URL.Query().Get("query")
	if query == "" && r.Method == http.MethodPost {
		var body struct {
			Query string `json:"query"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err == nil {
			query = body.Query
		}
	}
	if strings.TrimSpace(query) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}
	res, err := s.sess.Snapshot().Query(query)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Content negotiation: explicit ?format= wins, then the Accept header;
	// the default is the W3C SPARQL results JSON format.
	format := r.URL.Query().Get("format")
	if format == "" {
		accept := r.Header.Get("Accept")
		switch {
		case strings.Contains(accept, "text/csv"):
			format = "csv"
		case strings.Contains(accept, "tab-separated"):
			format = "tsv"
		case strings.Contains(accept, "sparql-results+xml"), strings.Contains(accept, "application/xml"):
			format = "xml"
		default:
			format = "json"
		}
	}
	switch format {
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
		err = res.WriteCSV(w)
	case "tsv":
		w.Header().Set("Content-Type", "text/tab-separated-values")
		err = res.WriteTSV(w)
	case "xml":
		w.Header().Set("Content-Type", "application/sparql-results+xml")
		err = res.WriteXML(w)
	case "json":
		w.Header().Set("Content-Type", "application/sparql-results+json")
		err = res.WriteJSON(w)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown format %q", format))
		return
	}
	if err != nil {
		log.Printf("feo: write response: %v", err)
	}
}

func (s *apiServer) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST required"))
		return
	}
	var body struct {
		Type      string `json:"type"`
		Primary   string `json:"primary"`
		Secondary string `json:"secondary"`
		User      string `json:"user"`
		Text      string `json:"text"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	et, err := feo.ParseExplanationType(body.Type)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	primary, err := resolveTerm(body.Primary)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	secondary, err := resolveTerm(body.Secondary)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	user, err := resolveTerm(body.User)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ex, err := s.sess.Explain(feo.Question{
		Type: et, Primary: primary, Secondary: secondary, User: user, Text: body.Text,
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	evidence := make([]string, 0, len(ex.Evidence))
	for _, ev := range ex.Evidence {
		evidence = append(evidence, ev.Phrase)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"type":     ex.Type.String(),
		"summary":  ex.Summary,
		"evidence": evidence,
	})
}

func (s *apiServer) handleRecommend(w http.ResponseWriter, r *http.Request) {
	userStr := r.URL.Query().Get("user")
	user, err := resolveTerm(userStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// One pinned snapshot for the whole request: the user listing and the
	// ranking are guaranteed to observe the same graph version.
	sn := s.sess.Snapshot()
	if !user.IsValid() {
		users := sn.Users()
		if len(users) == 0 {
			writeError(w, http.StatusNotFound, fmt.Errorf("no users in dataset"))
			return
		}
		user = users[0]
	}
	limit := 5
	fmt.Sscanf(r.URL.Query().Get("limit"), "%d", &limit)
	recs := sn.Recommend(user, limit)
	type rec struct {
		Recipe   string  `json:"recipe"`
		Label    string  `json:"label"`
		Score    float64 `json:"score"`
		Excluded bool    `json:"excluded,omitempty"`
		Reason   string  `json:"reason,omitempty"`
	}
	out := make([]rec, 0, len(recs))
	for _, r := range recs {
		out = append(out, rec{
			Recipe: r.Recipe.Value, Label: r.Label, Score: r.Score,
			Excluded: r.Excluded, Reason: r.Reason,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *apiServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"stats": s.sess.Snapshot().Stats()})
}
