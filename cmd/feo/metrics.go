package main

import (
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/feo"
	"repro/internal/metrics"
)

// serverMetrics instruments the serve tier: per-endpoint latency
// histograms and response counters, SPARQL truncation counters, and
// scrape-time gauges over the session (plan-cache hit/miss counts,
// snapshot age, graph size, reasoner inference counters). Everything is
// served from one registry on GET /metrics in the Prometheus text format.
type serverMetrics struct {
	reg *metrics.Registry

	// Snapshot-age tracking: the store does not timestamp versions, so the
	// server records the wall-clock instant it first observes each new
	// version; age is measured from that instant. Updated on every scrape
	// and every instrumented request.
	mu          sync.Mutex
	lastVersion uint64
	lastChange  time.Time
}

func newServerMetrics(sess *feo.Session) *serverMetrics {
	m := &serverMetrics{reg: metrics.NewRegistry(), lastChange: time.Now()}
	m.lastVersion = sess.Snapshot().Version()
	m.reg.GaugeFunc("feo_query_plan_cache_hits",
		"Cumulative SPARQL plan-cache hits.", func() float64 {
			hits, _ := feo.QueryPlanCacheStats()
			return float64(hits)
		})
	m.reg.GaugeFunc("feo_query_plan_cache_misses",
		"Cumulative SPARQL plan-cache misses.", func() float64 {
			_, misses := feo.QueryPlanCacheStats()
			return float64(misses)
		})
	m.reg.GaugeFunc("feo_snapshot_age_seconds",
		"Seconds since the published graph version last changed (as observed by this server).",
		func() float64 {
			sn := sess.Snapshot()
			return m.observeVersion(sn.Version()).Seconds()
		})
	m.reg.GaugeFunc("feo_graph_triples",
		"Triples in the latest published graph version.", func() float64 {
			return float64(sess.Snapshot().Graph().Len())
		})
	m.reg.GaugeFunc("feo_reasoner_inferred_total",
		"Triples the reasoner has inferred on the current graph, cumulative.", func() float64 {
			total, _ := sess.ReasonerInferred()
			return float64(total)
		})
	m.reg.GaugeFunc("feo_reasoner_last_run_inferred",
		"Triples inferred by the most recent materialization run (the reasoner delta).", func() float64 {
			_, lastRun := sess.ReasonerInferred()
			return float64(lastRun)
		})
	return m
}

// observeVersion folds a freshly pinned version into the age tracker and
// returns the current snapshot age.
func (m *serverMetrics) observeVersion(v uint64) time.Duration {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if v != m.lastVersion {
		m.lastVersion = v
		m.lastChange = now
	}
	return now.Sub(m.lastChange)
}

// duration returns the latency histogram for one endpoint.
func (m *serverMetrics) duration(endpoint string) *metrics.Histogram {
	return m.reg.Histogram("feo_http_request_duration_seconds",
		"HTTP request latency by endpoint.", nil, metrics.Label{Name: "endpoint", Value: endpoint})
}

// requests returns the response counter for one (endpoint, status) pair.
func (m *serverMetrics) requests(endpoint string, status int) *metrics.Counter {
	return m.reg.Counter("feo_http_requests_total",
		"HTTP responses by endpoint and status code.",
		metrics.Label{Name: "endpoint", Value: endpoint},
		metrics.Label{Name: "code", Value: strconv.Itoa(status)})
}

// truncations returns the counter of streamed results cut short, by
// reason ("rows", "bytes", "deadline").
func (m *serverMetrics) truncations(reason string) *metrics.Counter {
	return m.reg.Counter("feo_sparql_truncated_total",
		"Streamed SPARQL results truncated by a server limit, by reason.",
		metrics.Label{Name: "reason", Value: reason})
}

// statusRecorder captures the response status for instrumentation while
// passing streaming writes (and Flush) straight through.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with latency and response-code accounting
// (and keeps the snapshot-age tracker current on the request path).
func (s *apiServer) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.duration(endpoint)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(sr, r)
		hist.Observe(time.Since(start).Seconds())
		s.metrics.requests(endpoint, sr.status).Inc()
		s.metrics.observeVersion(s.sess.Snapshot().Version())
	}
}

// handleMetrics serves the Prometheus text exposition.
func (s *apiServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, errMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics.reg.WritePrometheus(w); err != nil {
		log.Printf("feo: write metrics: %v", err)
	}
}
