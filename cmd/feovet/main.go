// Command feovet is the project's invariant checker: the custom passes
// that prove the MVCC, WAL-ordering, artifact-determinism, and ID-space
// contracts (see internal/analysis), bundled behind the `go vet -vettool`
// protocol.
//
// Usage:
//
//	go build -o feovet ./cmd/feovet
//	go vet -vettool=$(pwd)/feovet ./...
//
// or, standalone (typechecks from source, no go vet in front):
//
//	go run ./cmd/feovet ./...
package main

import (
	"repro/internal/analysis"
	"repro/internal/analysis/frozenmut"
	"repro/internal/analysis/idspacedecode"
	"repro/internal/analysis/mapdeterminism"
	"repro/internal/analysis/walorder"
)

func main() {
	analysis.Main("feovet", []*analysis.Analyzer{
		frozenmut.Analyzer,
		walorder.Analyzer,
		mapdeterminism.Analyzer,
		idspacedecode.Analyzer,
		analysis.Annots,
		analysis.AtomicLite,
	})
}
