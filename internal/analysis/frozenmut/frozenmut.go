// Package frozenmut checks the MVCC immutability contract (PR 7): a
// published snapshot view is frozen forever. The check is declarative —
// //feo:mutable-type marks writer-owned state, //feo:mutates marks every
// mutator, //feo:frozen-type / //feo:frozen-safe mark the read surface —
// and the analyzer proves the two halves never meet:
//
//   - a function that writes through a //feo:mutable-type receiver or
//     pointer parameter must be annotated //feo:mutates (so deleting an
//     annotation fails the build, not just weakens it);
//   - an exported method of a mutable type must declare itself one way or
//     the other (fail closed);
//   - no frozen context — a method of a frozen type, or a //feo:frozen-safe
//     function — may write shared state or statically reach a mutator,
//     except through values it provably allocated itself (//feo:fresh).
package frozenmut

import (
	"repro/internal/analysis"
)

// Analyzer is the frozenmut pass.
var Analyzer = &analysis.Analyzer{
	Name: "frozenmut",
	Doc:  "check that no mutator is reachable from a frozen snapshot view",
	Run:  run,
}

func run(p *analysis.Pass) error {
	c := p.Ctx
	for _, fi := range c.Funcs {
		if fi.TestFile {
			continue
		}
		var recvFacts analysis.Facts
		if fi.RecvVar != nil {
			recvFacts = c.TypeFacts(fi.RecvVar.Type())
		}
		name := fi.Obj.Name()

		if fi.Ann.Has(analysis.Mutates) && fi.Ann.Has(analysis.FrozenSafe) {
			p.Reportf(fi.Decl.Name.Pos(), "%s is annotated both //feo:mutates and //feo:frozen-safe", name)
			continue
		}

		// Fail closed: the exported surface of a mutable type must say
		// which side of the contract it is on.
		if recvFacts.Has(analysis.MutableType) && fi.Obj.Exported() &&
			!fi.Ann.Has(analysis.Mutates) && !fi.Ann.Has(analysis.FrozenSafe) {
			p.Reportf(fi.Decl.Name.Pos(),
				"exported method %s of mutable type %s must be annotated //feo:mutates or //feo:frozen-safe",
				name, fi.RecvVar.Type())
		}

		// Writes through mutable state demand a //feo:mutates annotation.
		var mutWrites []analysis.VarWrite
		if recvFacts.Has(analysis.MutableType) {
			for _, pos := range fi.RecvWrites {
				mutWrites = append(mutWrites, analysis.VarWrite{Var: fi.RecvVar, Pos: pos})
			}
		}
		for _, w := range fi.ParamWrites {
			if c.TypeFacts(w.Var.Type()).Has(analysis.MutableType) {
				mutWrites = append(mutWrites, w)
			}
		}
		if len(mutWrites) > 0 && !fi.Ann.Has(analysis.Mutates) {
			w := mutWrites[0]
			if fi.Ann.Has(analysis.FrozenSafe) {
				p.Reportf(w.Pos, "frozen-safe function %s writes mutable state through %s", name, w.Var.Name())
			} else {
				p.Reportf(w.Pos, "%s writes mutable state through %s but is not annotated //feo:mutates", name, w.Var.Name())
			}
		}

		// A frozen view's own methods may never write the view.
		if recvFacts.Has(analysis.FrozenType) {
			for _, pos := range fi.RecvWrites {
				p.Reportf(pos, "method %s writes its frozen receiver %s", name, fi.RecvVar.Name())
			}
		}

		if !c.FrozenContext(fi) {
			continue
		}

		// Frozen contexts: no global writes into mutable state, and no
		// static path to a mutator (fresh-owned receivers excepted).
		for _, w := range fi.GlobalWrites {
			if c.TypeFacts(w.Var.Type()).Has(analysis.MutableType) {
				p.Reportf(w.Pos, "frozen context %s writes mutable global %s", name, w.Var.Name())
			}
		}
		for _, call := range fi.Calls {
			if call.RecvOwned {
				continue
			}
			cf := c.FactsOf(call.Key)
			switch {
			case cf.Has(analysis.Mutates):
				p.Reportf(call.Pos, "frozen context %s calls mutator %s", name, call.Callee.FullName())
			case cf.Has(analysis.CallsMutator):
				p.Reportf(call.Pos, "frozen context %s calls %s, which can reach a mutator", name, call.Callee.FullName())
			}
		}
	}
	return nil
}
