// A fully annotated store/view pair with no violations. The self-check
// tests mutate THIS file — deleting an annotation, or injecting a write
// into the frozen view — and assert that frozenmut starts failing.
package clean

//feo:mutable-type
type Store struct {
	data map[string]int
	n    int
}

//feo:frozen-type
type Snapshot struct {
	s *Store
}

//feo:fresh
func NewStore() *Store { return &Store{data: map[string]int{}} }

//feo:mutates
func (s *Store) Put(k string, v int) {
	s.data[k] = v
	s.n++
}

//feo:frozen-safe
func (s *Store) Get(k string) int { return s.data[k] }

//feo:frozen-safe
func (s *Store) Len() int { return s.n }

func (sn *Snapshot) Read(k string) int { return sn.s.Get(k) }

func (sn *Snapshot) Size() int { return sn.s.Len() }
