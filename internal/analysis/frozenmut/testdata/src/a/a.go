// Fixture for the frozenmut analyzer: every contract violation it must
// catch, with // want expectations on the diagnosed lines.
package a

//feo:mutable-type
type Box struct {
	v int
	m map[string]int
}

//feo:frozen-type
type View struct {
	b *Box
}

//feo:fresh
func NewBox() *Box { return &Box{m: map[string]int{}} }

//feo:mutates
func (b *Box) Set(v int) { b.v = v }

//feo:frozen-safe
func (b *Box) Get() int { return b.v }

// Exported method of a mutable type with no annotation: fail closed.
func (b *Box) Unmarked() int { return b.v } // want `exported method Unmarked of mutable type .*Box must be annotated`

// A frozen-safe function must not write its mutable receiver.
//
//feo:frozen-safe
func (b *Box) BadWrite() {
	b.v = 1 // want `frozen-safe function BadWrite writes mutable state through b`
}

// An unexported writer still needs //feo:mutates.
func scribble(b *Box) {
	b.v = 2 // want `scribble writes mutable state through b but is not annotated //feo:mutates`
}

// Contradictory annotations are rejected outright.
//
//feo:mutates
//feo:frozen-safe
func (b *Box) Confused() {} // want `Confused is annotated both //feo:mutates and //feo:frozen-safe`

// A frozen view's methods may read but never write the view.
func (v *View) Peek() int { return v.b.Get() }

func (v *View) Smash() {
	v.b = nil // want `method Smash writes its frozen receiver v`
}

// A frozen context may not reach a mutator, directly...
func (v *View) Corrupt() {
	v.b.Set(1) // want `frozen context Corrupt calls mutator .*Set`
}

// ...or transitively through an unannotated helper.
func helper(b *Box) { b.Set(2) }

func (v *View) Sneaky() {
	helper(v.b) // want `frozen context Sneaky calls .*helper, which can reach a mutator`
}

// Mutating a set the function provably allocated itself is fine.
//
//feo:frozen-safe
func (b *Box) Doubled() *Box {
	out := NewBox()
	out.Set(b.Get() * 2)
	return out
}

// Rebinding a parameter is not a mutation.
//
//feo:frozen-safe
func (b *Box) Larger(o *Box) *Box {
	if o.Get() > b.Get() {
		b, o = o, b
	}
	_ = o
	return b
}
