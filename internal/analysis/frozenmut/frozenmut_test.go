package frozenmut_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/frozenmut"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", frozenmut.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "testdata/src/clean", frozenmut.Analyzer)
}

func cleanSrc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("testdata/src/clean/clean.go")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// Deleting the //feo:mutates annotation from a writer must fail the pass:
// the write itself now lacks its declaration, and the exported method no
// longer says which side of the contract it is on.
func TestSelfCheckAnnotationDeletion(t *testing.T) {
	src := cleanSrc(t)
	mutated := strings.Replace(src, "//feo:mutates\n", "", 1)
	if mutated == src {
		t.Fatal("fixture has no //feo:mutates annotation to delete")
	}
	_, _, diags := analysistest.RunFiles(t, map[string]string{"clean.go": mutated}, frozenmut.Analyzer)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "Put") {
			found = true
		}
	}
	if !found {
		t.Fatalf("deleting //feo:mutates from Put produced no finding about Put; got %v", diags)
	}
}

// Injecting a mutation into the frozen view must fail the pass.
func TestSelfCheckFrozenViewMutation(t *testing.T) {
	injected := cleanSrc(t) + `
func (sn *Snapshot) Reset(k string) {
	sn.s.Put(k, 0)
	sn.s = nil
}
`
	_, _, diags := analysistest.RunFiles(t, map[string]string{"clean.go": injected}, frozenmut.Analyzer)
	var mutatorCall, recvWrite bool
	for _, d := range diags {
		if strings.Contains(d.Message, "calls mutator") {
			mutatorCall = true
		}
		if strings.Contains(d.Message, "writes its frozen receiver") {
			recvWrite = true
		}
	}
	if !mutatorCall || !recvWrite {
		t.Fatalf("injected frozen-view mutation not fully caught (mutator call: %v, receiver write: %v); got %v",
			mutatorCall, recvWrite, diags)
	}
}
