package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comments: a line of the form //feo:<name> anywhere in a
// declaration's doc block, or immediately above (or trailing) a statement
// for the statement-scoped vocabulary. Like //go: directives they have no
// space after the slashes, so gofmt keeps them attached.

const directivePrefix = "//feo:"

// unknownDirective records a //feo: line that names no known directive.
type unknownDirective struct {
	pos  token.Pos
	text string
}

// parseGroup extracts declared fact bits from one comment group.
func parseGroup(g *ast.CommentGroup, unknown *[]unknownDirective) Facts {
	var f Facts
	if g == nil {
		return 0
	}
	for _, c := range g.List {
		name, ok := directiveName(c.Text)
		if !ok {
			continue
		}
		bit, known := directiveBits[name]
		if !known {
			if unknown != nil {
				*unknown = append(*unknown, unknownDirective{pos: c.Pos(), text: name})
			}
			continue
		}
		f |= bit
	}
	return f
}

// directiveName reports whether a comment line is a //feo: directive and
// returns its name (the token after the colon, before any space).
func directiveName(text string) (string, bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", false
	}
	rest := text[len(directivePrefix):]
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rest = rest[:i]
	}
	return rest, rest != ""
}

// lineDirectives indexes a file's directive comments by the line they end
// on, for statement-scoped lookups: a statement on line N is governed by
// directives ending on line N (trailing comment) or line N-1.
type lineDirectives map[int]Facts

func fileLineDirectives(fset *token.FileSet, f *ast.File, unknown *[]unknownDirective) lineDirectives {
	ld := lineDirectives{}
	for _, g := range f.Comments {
		for _, c := range g.List {
			name, ok := directiveName(c.Text)
			if !ok {
				continue
			}
			bit, known := directiveBits[name]
			if !known {
				// Reported once via the doc-block walk in buildContext;
				// free-standing unknown directives are caught here.
				if unknown != nil {
					*unknown = append(*unknown, unknownDirective{pos: c.Pos(), text: name})
				}
				continue
			}
			line := fset.Position(c.End()).Line
			ld[line] |= bit
		}
	}
	return ld
}

// at returns the statement-scoped facts governing a node starting at pos.
func (ld lineDirectives) at(fset *token.FileSet, pos token.Pos) Facts {
	line := fset.Position(pos).Line
	return ld[line] | ld[line-1]
}
