package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// A Context is the semantic model of one package that every analyzer
// shares: the typed syntax, the declared //feo: annotations, a static
// call graph with receiver-ownership classification, write and map-range
// sites, and the fact tables (imported and locally derived). Building it
// once keeps all passes, the facts exported to importers, and the test
// harness in exact agreement.
type Context struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	Funcs []*FuncInfo
	ByObj map[*types.Func]*FuncInfo

	// Imported holds the merged fact tables of all dependencies; Local
	// holds this package's declared and derived facts (function and type
	// keys). Export of Local ∪ Imported makes tables cumulative.
	Imported FactTable
	Local    FactTable

	// Unknown records //feo: comments naming no known directive.
	Unknown []unknownDirective
}

// A FuncInfo is the model of one declared function or method.
type FuncInfo struct {
	Decl     *ast.FuncDecl
	Obj      *types.Func
	Ann      Facts // declared bits from the doc block
	TestFile bool

	RecvVar   *types.Var
	ParamVars []*types.Var

	RecvWrites   []token.Pos // writes rooted at the receiver
	ParamWrites  []VarWrite  // writes rooted at a parameter
	GlobalWrites []VarWrite  // writes rooted at a package-level var

	Calls     []CallSite
	Ranges    []MapRange
	SortCalls []token.Pos // positions of sort-like calls
}

// A VarWrite is a write through a non-local root variable.
type VarWrite struct {
	Var *types.Var
	Pos token.Pos
}

// A CallSite is one statically resolved call.
type CallSite struct {
	Key       string
	Callee    *types.Func
	Pos       token.Pos
	RecvOwned bool  // method call on a function-local fresh value
	StmtAnn   Facts // statement-scoped directives at the call
}

// A MapRange is one `range` statement over a map.
type MapRange struct {
	Pos       token.Pos
	Justified bool // sorted afterwards in-function, or //feo:unordered
}

// Key returns the fact key of the function.
func (fi *FuncInfo) Key() string { return FuncKey(fi.Obj) }

// SortedAfter reports whether a sort-like call follows pos in the
// function, which justifies map-order-dependent data produced at pos.
func (fi *FuncInfo) SortedAfter(pos token.Pos) bool {
	for _, s := range fi.SortCalls {
		if s > pos {
			return true
		}
	}
	return false
}

// FactsOf resolves the current facts for a key, local first.
func (c *Context) FactsOf(key string) Facts {
	if f, ok := c.Local[key]; ok {
		return f
	}
	return c.Imported[key]
}

// TypeFacts resolves type-level marks for t (through pointers).
func (c *Context) TypeFacts(t types.Type) Facts {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return 0
	}
	return c.FactsOf(TypeKey(named.Obj()))
}

// FrozenContext reports whether fi must uphold the frozen-view contract:
// a method of a //feo:frozen-type type, or a //feo:frozen-safe function.
func (c *Context) FrozenContext(fi *FuncInfo) bool {
	if fi.Ann.Has(FrozenSafe) {
		return true
	}
	if fi.RecvVar != nil && c.TypeFacts(fi.RecvVar.Type()).Has(FrozenType) {
		return true
	}
	return false
}

// ExportFacts returns the cumulative table importers of this package see.
func (c *Context) ExportFacts() FactTable {
	out := FactTable{}
	out.Merge(c.Imported)
	out.Merge(c.Local)
	return out
}

// BuildContext models one typechecked package. imported is the merged
// fact table of the package's dependencies (may be nil).
func BuildContext(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, imported FactTable) *Context {
	c := &Context{
		Fset:     fset,
		Files:    files,
		Pkg:      pkg,
		Info:     info,
		ByObj:    map[*types.Func]*FuncInfo{},
		Imported: imported,
		Local:    FactTable{},
	}
	if c.Imported == nil {
		c.Imported = FactTable{}
	}
	for _, f := range files {
		c.buildFile(f)
	}
	c.propagate()
	return c
}

func (c *Context) buildFile(f *ast.File) {
	testFile := strings.HasSuffix(c.Fset.Position(f.Pos()).Filename, "_test.go")
	lines := fileLineDirectives(c.Fset, f, &c.Unknown)

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			declAnn := parseGroup(d.Doc, nil)
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				ann := declAnn | parseGroup(ts.Doc, nil) | parseGroup(ts.Comment, nil)
				if ann == 0 {
					continue
				}
				if obj, ok := c.Info.Defs[ts.Name].(*types.TypeName); ok {
					c.Local[TypeKey(obj)] |= ann & (MutableType | FrozenType)
				}
			}
		case *ast.FuncDecl:
			obj, ok := c.Info.Defs[d.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &FuncInfo{
				Decl:     d,
				Obj:      obj,
				Ann:      parseGroup(d.Doc, nil),
				TestFile: testFile,
			}
			sig := obj.Type().(*types.Signature)
			if r := sig.Recv(); r != nil {
				fi.RecvVar = r
			}
			for i := 0; i < sig.Params().Len(); i++ {
				fi.ParamVars = append(fi.ParamVars, sig.Params().At(i))
			}
			if d.Body != nil {
				owned := c.ownedLocals(d.Body)
				c.walkBody(fi, d.Body, owned, lines)
				c.justifyRanges(fi, lines)
			}
			c.Funcs = append(c.Funcs, fi)
			c.ByObj[obj] = fi
			c.Local[fi.Key()] |= fi.Ann
		}
	}
}

// freshExpr reports whether e evaluates to a newly allocated value the
// evaluating function owns: a composite literal (or its address), new(T),
// or a call to a //feo:fresh function.
func (c *Context) freshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, lit := ast.Unparen(e.X).(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if fn := c.staticCallee(e); fn != nil {
			return c.FactsOf(FuncKey(fn)).Has(Fresh)
		}
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := c.Info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// ownedLocals computes, flow-insensitively, the set of local variables
// that only ever hold function-private fresh values. Mutating methods
// called on such a variable do not touch shared state.
func (c *Context) ownedLocals(body *ast.BlockStmt) map[*types.Var]bool {
	state := map[*types.Var]int{} // +1 fresh seen, -1 poisoned
	mark := func(id *ast.Ident, fresh bool) {
		obj, ok := c.Info.Defs[id].(*types.Var)
		if !ok {
			obj, ok = c.Info.Uses[id].(*types.Var)
		}
		if !ok || obj == nil {
			return
		}
		if fresh {
			if state[obj] >= 0 {
				state[obj] = 1
			}
		} else {
			state[obj] = -1
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						mark(id, c.freshExpr(n.Rhs[i]))
					}
				}
			} else {
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
						mark(id, false)
					}
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				// var x T: the zero value is private unless T is a
				// pointer (nil until a later, separately judged assign).
				for _, id := range n.Names {
					if obj, ok := c.Info.Defs[id].(*types.Var); ok {
						_, ptr := obj.Type().Underlying().(*types.Pointer)
						mark(id, !ptr)
					}
				}
			} else if len(n.Values) == len(n.Names) {
				for i, id := range n.Names {
					mark(id, c.freshExpr(n.Values[i]))
				}
			} else {
				for _, id := range n.Names {
					mark(id, false)
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					mark(id, false)
				}
			}
		case *ast.FuncLit:
			// A literal's own parameters belong to whoever calls the
			// literal: mutating through them is that caller's doing, not
			// the enclosing function's. (Captured variables are not
			// parameters and keep their outer classification.)
			for _, field := range n.Type.Params.List {
				for _, id := range field.Names {
					if id.Name != "_" {
						mark(id, true)
					}
				}
			}
		}
		return true
	})
	owned := map[*types.Var]bool{}
	//feo:unordered // set build; order-insensitive
	for v, s := range state {
		if s > 0 {
			owned[v] = true
		}
	}
	return owned
}

// staticCallee resolves a call's single static target, or nil for calls
// through function values, interfaces, builtins, and conversions.
func (c *Context) staticCallee(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Strip generic instantiation syntax.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := c.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := c.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// exprRoot walks selector/index/deref chains to the base identifier.
func exprRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			return x
		default:
			return nil
		}
	}
}

func (c *Context) walkBody(fi *FuncInfo, body *ast.BlockStmt, owned map[*types.Var]bool, lines lineDirectives) {
	recordWrite := func(e ast.Expr, pos token.Pos) {
		// Rebinding a variable (`s = t`, `s, t = t, s`) copies into the
		// local; parameters and receivers are copies, so that never
		// mutates caller-visible state. Only writes through a
		// selector/index/deref chain do. Bare-ident assignment to a
		// package-level var, however, is a real package-state write.
		bare := false
		if _, ok := ast.Unparen(e).(*ast.Ident); ok {
			bare = true
		}
		root := exprRoot(e)
		if root == nil {
			return
		}
		obj, ok := c.Info.Uses[root].(*types.Var)
		if !ok {
			return
		}
		switch {
		case bare && obj.Parent() != c.Pkg.Scope():
			// local rebinding of a receiver, parameter, or local
		case fi.RecvVar != nil && obj == fi.RecvVar:
			fi.RecvWrites = append(fi.RecvWrites, pos)
		case isOneOf(obj, fi.ParamVars):
			fi.ParamWrites = append(fi.ParamWrites, VarWrite{Var: obj, Pos: pos})
		case obj.Parent() == c.Pkg.Scope():
			fi.GlobalWrites = append(fi.GlobalWrites, VarWrite{Var: obj, Pos: pos})
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if id.Name == "_" {
						continue
					}
					if n.Tok == token.DEFINE {
						continue // new local
					}
					recordWrite(lhs, lhs.Pos())
					continue
				}
				recordWrite(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			recordWrite(n.X, n.X.Pos())
		case *ast.RangeStmt:
			if t := c.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					fi.Ranges = append(fi.Ranges, MapRange{Pos: n.Pos()})
				}
			}
		case *ast.CallExpr:
			fun := ast.Unparen(n.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if b, ok := c.Info.Uses[id].(*types.Builtin); ok {
					if (b.Name() == "delete" || b.Name() == "copy") && len(n.Args) > 0 {
						recordWrite(n.Args[0], n.Pos())
					}
					return true
				}
			}
			fn := c.staticCallee(n)
			if fn == nil {
				return true
			}
			cs := CallSite{
				Key:     FuncKey(fn),
				Callee:  fn,
				Pos:     n.Pos(),
				StmtAnn: lines.at(c.Fset, n.Pos()),
			}
			if sel, ok := fun.(*ast.SelectorExpr); ok && fn.Type().(*types.Signature).Recv() != nil {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if v, ok := c.Info.Uses[id].(*types.Var); ok && owned[v] &&
						v != fi.RecvVar && !isOneOf(v, fi.ParamVars) && v.Parent() != c.Pkg.Scope() {
						cs.RecvOwned = true
					}
				}
			}
			if isSortCall(fn) {
				fi.SortCalls = append(fi.SortCalls, n.Pos())
			}
			fi.Calls = append(fi.Calls, cs)
		}
		return true
	})
}

func isOneOf(v *types.Var, vs []*types.Var) bool {
	for _, p := range vs {
		if v == p {
			return true
		}
	}
	return false
}

// isSortCall recognizes calls that establish a deterministic order: the
// sort package (other than Search*), slices.Sort*, and any project
// function whose name contains "sort".
func isSortCall(fn *types.Func) bool {
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "sort":
			return !strings.HasPrefix(name, "Search")
		case "slices":
			return strings.HasPrefix(name, "Sort")
		}
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// justifyRanges resolves each map range's justification: an explicit
// //feo:unordered (statement- or function-scoped), or a sort-like call
// later in the same function.
func (c *Context) justifyRanges(fi *FuncInfo, lines lineDirectives) {
	for i := range fi.Ranges {
		r := &fi.Ranges[i]
		if fi.Ann.Has(Unordered) || lines.at(c.Fset, r.Pos).Has(Unordered) {
			r.Justified = true
			continue
		}
		for _, s := range fi.SortCalls {
			if s > r.Pos {
				r.Justified = true
				break
			}
		}
	}
}

// propagate derives the transitive facts (CallsMutator, NondetRange,
// ReachDecodes) to a fixed point over the package's call graph, reading
// dependency facts from the imported table. Bits only turn on, so the
// loop terminates.
func (c *Context) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fi := range c.Funcs {
			key := fi.Key()
			f := c.Local[key]
			add := Facts(0)

			if !f.Has(Mutates) && !f.Has(CallsMutator) {
				for _, call := range fi.Calls {
					cf := c.FactsOf(call.Key)
					if (cf.Has(Mutates) || cf.Has(CallsMutator)) && !call.RecvOwned {
						if os.Getenv("FEOVET_DEBUG_MUT") != "" {
							fmt.Fprintf(os.Stderr, "MUT %s <- %s @ %s\n", key, call.Key, c.Fset.Position(call.Pos))
						}
						add |= CallsMutator
						break
					}
				}
			}

			if !f.Has(NondetRange) && !f.Has(Unordered) {
				for _, r := range fi.Ranges {
					if !r.Justified {
						add |= NondetRange
						break
					}
				}
				if !add.Has(NondetRange) {
					for _, call := range fi.Calls {
						cf := c.FactsOf(call.Key)
						if !cf.Has(NondetRange) || call.StmtAnn.Has(Unordered) {
							continue
						}
						if fi.SortedAfter(call.Pos) {
							continue
						}
						if os.Getenv("FEOVET_DEBUG_NDR") != "" {
							fmt.Fprintf(os.Stderr, "NDR %s <- %s @ %s\n", key, call.Key, c.Fset.Position(call.Pos))
						}
						add |= NondetRange
						break
					}
				}
			}

			if !f.Has(ReachDecodes) {
				for _, call := range fi.Calls {
					cf := c.FactsOf(call.Key)
					if cf.Has(Decodes) || cf.Has(ReachDecodes) {
						add |= ReachDecodes
						break
					}
				}
			}

			if add != 0 {
				c.Local[key] = f | add
				changed = true
			}
		}
	}
}
