// Fixture for the annots and atomiclite passes.
package hygiene

import "sync/atomic"

//feo:mutates
func known() {}

var counter int64

func bump() int64 {
	return atomic.AddInt64(&counter, 1)
}

func racy() {
	counter = atomic.AddInt64(&counter, 1) // want `direct assignment of atomic.AddInt64 result to its operand`
}
