package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Annots is the directive hygiene pass: an unknown //feo: directive is an
// error, so a typo cannot silently disable a contract check.
var Annots = &Analyzer{
	Name: "annots",
	Doc:  "check that every //feo: directive names a known annotation",
	Run: func(p *Pass) error {
		for _, u := range p.Ctx.Unknown {
			p.Reportf(u.pos, "unknown directive //feo:%s", u.text)
		}
		return nil
	},
}

// AtomicLite is a stdlib port of vet's atomic pass: flag assignments of a
// sync/atomic read-modify-write result back to the operand, which loses
// the atomicity the call was for. (The SSA-based standard passes, nilness
// and unusedwrite, need golang.org/x/tools and are gated out of this
// build; CI covers them with staticcheck.)
var AtomicLite = &Analyzer{
	Name: "atomiclite",
	Doc:  "check for direct assignment of sync/atomic results to their operand",
	Run:  runAtomicLite,
}

func runAtomicLite(p *Pass) error {
	c := p.Ctx
	for _, fi := range c.Funcs {
		if fi.TestFile || fi.Decl.Body == nil {
			continue
		}
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := c.staticCallee(call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			name := fn.Name()
			if !strings.HasPrefix(name, "Add") && !strings.HasPrefix(name, "Swap") &&
				!strings.HasPrefix(name, "And") && !strings.HasPrefix(name, "Or") {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if types.ExprString(ast.Unparen(addr.X)) == types.ExprString(ast.Unparen(as.Lhs[0])) {
				p.Reportf(as.Pos(), "direct assignment of atomic.%s result to its operand defeats the atomic operation", name)
			}
			return true
		})
	}
	return nil
}
