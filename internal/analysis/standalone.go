package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
)

// Standalone whole-program mode: `feovet ./...` without the go command in
// front. `go list -deps -json` supplies the module's packages in
// dependency order; each is parsed and typechecked from source, facts
// flow between packages in memory, and stdlib imports resolve through the
// source importer. This is the driver the analysistest harness and local
// iteration use; CI runs the identical passes through `go vet -vettool`.

type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	ForTest    string
	GoFiles    []string
	Module     *struct{ Path string }
}

// Standalone runs the analyzers over the packages matching patterns and
// prints findings to stderr. It returns the number of diagnostics.
func Standalone(patterns []string, analyzers []*Analyzer) (int, error) {
	args := append([]string{"list", "-deps", "-json=ImportPath,Dir,Standard,ForTest,GoFiles,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return 0, fmt.Errorf("go list: %v", err)
	}

	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return 0, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}

	fset := token.NewFileSet()
	srcImporter := importer.ForCompiler(fset, "source", nil)
	checked := map[string]*types.Package{}
	facts := map[string]FactTable{} // cumulative, per package

	var imp importerFunc
	imp = func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if pkg, ok := checked[path]; ok {
			return pkg, nil
		}
		return srcImporter.Import(path)
	}

	total := 0
	for _, lp := range pkgs {
		if lp.Standard || lp.Module == nil || lp.ForTest != "" {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return total, err
			}
			files = append(files, f)
		}
		info := newInfo()
		tc := &types.Config{Importer: imp}
		pkg, err := tc.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return total, fmt.Errorf("typecheck %s: %v", lp.ImportPath, err)
		}
		checked[lp.ImportPath] = pkg

		imported := FactTable{}
		for _, im := range pkg.Imports() {
			if t, ok := facts[im.Path()]; ok {
				imported.Merge(t)
			}
		}
		ctx := BuildContext(fset, files, pkg, info, imported)
		facts[lp.ImportPath] = ctx.ExportFacts()
		if os.Getenv("FEOVET_DEBUG_RANGES") != "" {
			for _, fi := range ctx.Funcs {
				if fi.TestFile {
					continue
				}
				for _, r := range fi.Ranges {
					if !r.Justified {
						fmt.Fprintf(os.Stderr, "RANGE %s: %s\n", fset.Position(r.Pos), fi.Key())
					}
				}
			}
		}

		diags, err := RunAnalyzers(ctx, analyzers)
		if err != nil {
			return total, err
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		total += len(diags)
	}
	return total, nil
}
