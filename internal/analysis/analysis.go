package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Facts is a bit set of properties attached to a function or type object,
// either declared by a //feo: directive or derived by fact propagation.
// Facts cross package boundaries through vetx files (see facts.go).
type Facts uint32

const (
	// Declared on functions.
	Mutates Facts = 1 << iota
	FrozenSafe
	IDSpace
	Unordered
	Emit
	Decodes
	WALAppend
	WALSync
	PublishPoint
	Fresh
	// Declared on types.
	MutableType
	FrozenType
	// Derived by propagation (never written by hand).
	CallsMutator // statically reaches a Mutates function
	NondetRange  // contains or reaches an unjustified map iteration
	ReachDecodes // statically reaches a Decodes function
)

// Has reports whether all bits in q are set.
func (f Facts) Has(q Facts) bool { return f&q == q }

// directiveBits maps the //feo:<name> vocabulary to declared fact bits.
var directiveBits = map[string]Facts{
	"mutates":      Mutates,
	"frozen-safe":  FrozenSafe,
	"idspace":      IDSpace,
	"unordered":    Unordered,
	"emit":         Emit,
	"decodes":      Decodes,
	"wal-append":   WALAppend,
	"wal-sync":     WALSync,
	"publish":      PublishPoint,
	"fresh":        Fresh,
	"mutable-type": MutableType,
	"frozen-type":  FrozenType,
}

// An Analyzer is one named pass. Run inspects the package model in
// pass.Ctx and reports diagnostics; facts are computed by the Context,
// not by individual analyzers, so every pass sees the same model.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Ctx      *Context
	sink     *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.sink = append(*p.sink, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned in the package's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// RunAnalyzers runs every analyzer over the package model and returns the
// findings sorted by position (ties broken by analyzer name, so output is
// deterministic for the CI gate).
func RunAnalyzers(ctx *Context, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Ctx: ctx, sink: &diags}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}
