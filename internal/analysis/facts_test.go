package analysis

import (
	"bytes"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"
)

func TestFactsRoundtrip(t *testing.T) {
	table := FactTable{
		"(*repro/internal/store.Graph).Add": Mutates | CallsMutator,
		"repro/internal/store.NewIDSet":     Fresh,
		"type:repro/internal/store.Graph":   MutableType,
	}
	data, err := EncodeFacts(table)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.vetx")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFactsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(table) {
		t.Fatalf("got %d entries, want %d", len(got), len(table))
	}
	for k, v := range table {
		if got[k] != v {
			t.Errorf("%s: got %v, want %v", k, got[k], v)
		}
	}
}

// A vetx from a different feovet build must degrade to an empty table,
// not to corrupt facts.
func TestFactsVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(factsFile{
		Version: "feovet-facts-v0",
		Table:   FactTable{"f": Mutates},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.vetx")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeFactsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("stale-version vetx should decode to an empty table; got %v", got)
	}
}

func TestFactTableMerge(t *testing.T) {
	dst := FactTable{"a": Mutates}
	dst.Merge(FactTable{"a": CallsMutator, "b": Emit})
	if dst["a"] != Mutates|CallsMutator || dst["b"] != Emit {
		t.Fatalf("merge wrong: %v", dst)
	}
}
