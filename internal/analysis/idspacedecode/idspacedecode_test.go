package idspacedecode_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/idspacedecode"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", idspacedecode.Analyzer)
}

// Introducing a decode into a clean hot path must fail the pass.
func TestSelfCheckDecodeInjection(t *testing.T) {
	src := `package p

type id uint64

var terms []string

//feo:decodes
func term(i id) string { return terms[i] }

//feo:idspace
func hot(a, b id) id {
	if a < b {
		return a
	}
	return b
}
`
	_, _, diags := analysistest.RunFiles(t, map[string]string{"p.go": src}, idspacedecode.Analyzer)
	if len(diags) != 0 {
		t.Fatalf("clean hot path should have no findings; got %v", diags)
	}

	injected := strings.Replace(src, "\tif a < b {", "\t_ = term(a)\n\tif a < b {", 1)
	_, _, diags = analysistest.RunFiles(t, map[string]string{"p.go": injected}, idspacedecode.Analyzer)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "decodes terms") {
			found = true
		}
	}
	if !found {
		t.Fatalf("injected decode not caught; got %v", diags)
	}
}
