// Fixture for the idspacedecode analyzer: ID-space hot paths must not
// reach a term decoder.
package a

type id uint64

var terms []string

// The decoding chokepoint.
//
//feo:decodes
func term(i id) string { return terms[i] }

// Direct decode on a hot path.
//
//feo:idspace
func hotDirect(i id) string {
	return term(i) // want `ID-space hot path hotDirect calls .*term, which decodes terms`
}

// Transitive decode through an unannotated helper.
func helper(i id) string { return term(i) }

//feo:idspace
func hotTransitive(i id) string {
	return helper(i) // want `ID-space hot path hotTransitive calls .*helper, which can reach a term decode`
}

// Pure ID arithmetic is the intended shape.
//
//feo:idspace
func hotOK(a, b id) id {
	if a < b {
		return a
	}
	return b
}

// The two annotations contradict each other.
//
//feo:idspace
//feo:decodes
func confused(i id) string { return "" } // want `confused is annotated both //feo:idspace and //feo:decodes`

// Decoding off the hot path is fine.
func coldPath(i id) string { return term(i) }
