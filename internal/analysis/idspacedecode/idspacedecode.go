// Package idspacedecode checks the ID-space contract (PR 4): query
// evaluation hot paths work on dictionary IDs and must not materialize
// rdf.Term values. Decoding chokepoints carry //feo:decodes
// (TermDict.Term and its wrappers); hot paths carry //feo:idspace; the
// analyzer proves no //feo:idspace function reaches a decoder, directly
// or transitively across packages.
package idspacedecode

import (
	"repro/internal/analysis"
)

// Analyzer is the idspacedecode pass.
var Analyzer = &analysis.Analyzer{
	Name: "idspacedecode",
	Doc:  "check that ID-space hot paths never decode terms",
	Run:  run,
}

func run(p *analysis.Pass) error {
	c := p.Ctx
	for _, fi := range c.Funcs {
		if fi.TestFile || !fi.Ann.Has(analysis.IDSpace) {
			continue
		}
		if fi.Ann.Has(analysis.Decodes) {
			p.Reportf(fi.Decl.Name.Pos(), "%s is annotated both //feo:idspace and //feo:decodes", fi.Obj.Name())
			continue
		}
		for _, call := range fi.Calls {
			cf := c.FactsOf(call.Key)
			switch {
			case cf.Has(analysis.Decodes):
				p.Reportf(call.Pos, "ID-space hot path %s calls %s, which decodes terms",
					fi.Obj.Name(), call.Callee.FullName())
			case cf.Has(analysis.ReachDecodes):
				p.Reportf(call.Pos, "ID-space hot path %s calls %s, which can reach a term decode",
					fi.Obj.Name(), call.Callee.FullName())
			}
		}
	}
	return nil
}
