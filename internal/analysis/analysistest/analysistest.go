// Package analysistest runs the project's analyzers over small fixture
// packages and checks their diagnostics against // want "regex"
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest on
// the stdlib alone. Fixtures live under testdata/src/<pkg> in each
// analyzer package; they are self-contained (stdlib imports only) so the
// harness can typecheck them with the source importer and an empty
// imported fact table.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run loads every .go file under dir as one package, runs the analyzers,
// and fails t unless the diagnostics match the fixture's // want
// expectations exactly: every diagnostic must be wanted, every want must
// be diagnosed.
func Run(t *testing.T, dir string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	files := map[string]string{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = string(data)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	fset, astFiles, diags := RunFiles(t, files, analyzers...)
	checkWants(t, fset, astFiles, diags)
}

// RunFiles typechecks sources (filename -> content) as one package, runs
// the analyzers, and returns the diagnostics with the fileset and syntax
// used. The self-check tests use it directly to prove that weakening an
// annotation or injecting a violation makes a pass fail.
func RunFiles(t *testing.T, files map[string]string, analyzers ...*analysis.Analyzer) (*token.FileSet, []*ast.File, []analysis.Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	var astFiles []*ast.File
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tc := &types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := tc.Check(astFiles[0].Name.Name, fset, astFiles, info)
	if err != nil {
		t.Fatalf("typecheck fixture: %v", err)
	}
	ctx := analysis.BuildContext(fset, astFiles, pkg, info, analysis.FactTable{})
	diags, err := analysis.RunAnalyzers(ctx, analyzers)
	if err != nil {
		t.Fatalf("run analyzers: %v", err)
	}
	return fset, astFiles, diags
}

// A want is one // want "regex" expectation on a fixture line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// checkWants cross-matches diagnostics against expectations.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, raw := range splitWants(text[len("want "):]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// splitWants parses the quoted regexes of a want comment: `"re1" "re2"`.
func splitWants(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			break
		}
		quoted, rest, ok := cutString(s)
		if !ok {
			break
		}
		out = append(out, quoted)
		s = strings.TrimSpace(rest)
	}
	return out
}

// cutString splits off one leading Go string literal.
func cutString(s string) (string, string, bool) {
	if s[0] == '`' {
		if i := strings.IndexByte(s[1:], '`'); i >= 0 {
			return s[1 : 1+i], s[i+2:], true
		}
		return "", "", false
	}
	// double-quoted: find the closing quote respecting escapes
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", false
			}
			return unq, s[i+1:], true
		}
	}
	return "", "", false
}
