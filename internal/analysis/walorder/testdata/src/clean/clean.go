// A correct commit path with no violations; the self-check test reorders
// it and asserts walorder fails.
package clean

import "errors"

var errBroken = errors.New("broken")

//feo:wal-append
func walAppend() error { return errBroken }

//feo:publish
func publish() {}

func commit() error {
	if err := walAppend(); err != nil {
		return err
	}
	publish()
	return nil
}
