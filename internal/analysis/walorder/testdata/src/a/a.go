// Fixture for the walorder analyzer: append/publish sequencing, discarded
// durable errors, and publication on a failed append's error path.
package a

import "errors"

var errBroken = errors.New("broken")

//feo:wal-append
func walAppend() error { return errBroken }

//feo:wal-sync
func walSync() error { return nil }

//feo:publish
func publish() {}

// The good shape: append, check, then publish.
func goodCommit() error {
	if err := walAppend(); err != nil {
		return err
	}
	publish()
	return nil
}

// Publishing before the append acknowledges a commit that may not be
// logged.
func badOrder() error {
	publish() // want `badOrder publishes before the WAL append`
	return walAppend()
}

// A dropped durable error is an unacknowledged lost write.
func dropped() {
	walAppend() // want `result of .*walAppend discarded`
}

func droppedSync() {
	walSync() // want `result of .*walSync discarded`
}

func blankAssign() {
	_ = walAppend() // want `result of .*walAppend assigned to blank`
}

func goDiscard() {
	go walSync() // want `result of .*walSync discarded by go statement`
}

func deferDiscard() {
	defer walSync() // want `result of .*walSync discarded by defer`
}

// Publishing inside the append's error branch publishes a failed commit.
func errPath() error {
	err := walAppend()
	if err != nil {
		publish() // want `errPath publishes on the error path of a failed WAL append`
		return err
	}
	publish()
	return nil
}

// The init-statement form binds the error variable too.
func errPathInit() error {
	if err := walAppend(); err != nil {
		publish() // want `errPathInit publishes on the error path of a failed WAL append`
		return err
	}
	publish()
	return nil
}

// Nil-first comparisons are recognized as well.
func errPathFlipped() error {
	err := walAppend()
	if nil != err {
		publish() // want `errPathFlipped publishes on the error path of a failed WAL append`
		return err
	}
	publish()
	return nil
}
