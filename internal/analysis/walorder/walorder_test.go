package walorder_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/walorder"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", walorder.Analyzer)
}

func TestClean(t *testing.T) {
	analysistest.Run(t, "testdata/src/clean", walorder.Analyzer)
}

// Swapping the commit body so the publish precedes the append must fail.
func TestSelfCheckReorderedCommit(t *testing.T) {
	data, err := os.ReadFile("testdata/src/clean/clean.go")
	if err != nil {
		t.Fatal(err)
	}
	reordered := strings.Replace(string(data),
		`	if err := walAppend(); err != nil {
		return err
	}
	publish()
	return nil`,
		`	publish()
	return walAppend()`, 1)
	if reordered == string(data) {
		t.Fatal("fixture body not found for reordering")
	}
	_, _, diags := analysistest.RunFiles(t, map[string]string{"clean.go": reordered}, walorder.Analyzer)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "publishes before the WAL append") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reordered commit not caught; got %v", diags)
	}
}
