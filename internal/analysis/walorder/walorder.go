// Package walorder checks the durability ordering contract (PR 6/7): an
// acknowledged commit is a logged commit. In any function that both
// appends to the write-ahead log (//feo:wal-append) and publishes state
// (//feo:publish — Publish, Txn.Commit, Txn.CommitDeferred), the append
// must be sequenced before every publication; no publication may sit on
// the append's failure branch; and the error of every WAL append or fsync
// (//feo:wal-sync) must be consumed, never discarded.
package walorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the walorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "walorder",
	Doc:  "check WAL append/publish sequencing and error handling on commit paths",
	Run:  run,
}

func run(p *analysis.Pass) error {
	c := p.Ctx
	for _, fi := range c.Funcs {
		if fi.TestFile || fi.Decl.Body == nil {
			continue
		}
		var appendPos, publishPos []token.Pos
		for _, call := range fi.Calls {
			cf := c.FactsOf(call.Key)
			if cf.Has(analysis.WALAppend) {
				appendPos = append(appendPos, call.Pos)
			}
			if cf.Has(analysis.PublishPoint) {
				publishPos = append(publishPos, call.Pos)
			}
		}

		// Sequencing: every publish after every append in the function.
		for _, pp := range publishPos {
			for _, ap := range appendPos {
				if ap > pp {
					p.Reportf(pp, "%s publishes before the WAL append at %s; the durable append must come first",
						fi.Obj.Name(), c.Fset.Position(ap))
					break
				}
			}
		}

		checkBody(p, fi, publishPos)
	}
	return nil
}

// checkBody walks one function for the syntactic rules: discarded
// append/sync errors, and publish calls inside the append's error branch.
func checkBody(p *analysis.Pass, fi *analysis.FuncInfo, publishPos []token.Pos) {
	c := p.Ctx

	durableCall := func(e ast.Expr) (*types.Func, bool) {
		call, ok := e.(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		for _, cs := range fi.Calls {
			if cs.Pos == call.Pos() {
				cf := c.FactsOf(cs.Key)
				if cf.Has(analysis.WALAppend) || cf.Has(analysis.WALSync) {
					return cs.Callee, true
				}
			}
		}
		return nil, false
	}

	// errVars: variables holding a WAL append/sync error result.
	errVars := map[*types.Var]bool{}
	bindErr := func(lhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if v, ok := c.Info.Defs[id].(*types.Var); ok {
			errVars[v] = true
			return
		}
		if v, ok := c.Info.Uses[id].(*types.Var); ok {
			errVars[v] = true
		}
	}

	seen := map[*ast.AssignStmt]bool{}
	handleAssign := func(n *ast.AssignStmt) {
		if seen[n] || len(n.Rhs) != 1 {
			seen[n] = true
			return
		}
		seen[n] = true
		fn, ok := durableCall(n.Rhs[0])
		if !ok {
			return
		}
		allBlank := true
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
				allBlank = false
			}
		}
		if allBlank {
			p.Reportf(n.Pos(), "result of %s assigned to blank; a WAL append/sync error must be consumed", fn.FullName())
			return
		}
		// The error is the last (or only) result.
		bindErr(n.Lhs[len(n.Lhs)-1])
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if fn, ok := durableCall(n.X); ok {
				p.Reportf(n.Pos(), "result of %s discarded; a WAL append/sync error must be consumed", fn.FullName())
			}
		case *ast.GoStmt:
			if fn, ok := durableCall(n.Call); ok {
				p.Reportf(n.Pos(), "result of %s discarded by go statement", fn.FullName())
			}
		case *ast.DeferStmt:
			if fn, ok := durableCall(n.Call); ok {
				p.Reportf(n.Pos(), "result of %s discarded by defer", fn.FullName())
			}
		case *ast.AssignStmt:
			handleAssign(n)
		case *ast.IfStmt:
			// The init statement binds before the condition is judged.
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				handleAssign(init)
			}
			v := errBranchVar(c, n.Cond)
			if v == nil || !errVars[v] {
				return true
			}
			for _, pp := range publishPos {
				if pp >= n.Body.Pos() && pp <= n.Body.End() {
					p.Reportf(pp, "%s publishes on the error path of a failed WAL append", fi.Obj.Name())
				}
			}
		}
		return true
	})
}

// errBranchVar recognizes `v != nil` (either operand order) and returns v.
func errBranchVar(c *analysis.Context, cond ast.Expr) *types.Var {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return nil
	}
	ident := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, _ := c.Info.Uses[id].(*types.Var)
		return v
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if isNil(bin.Y) {
		return ident(bin.X)
	}
	if isNil(bin.X) {
		return ident(bin.Y)
	}
	return nil
}
