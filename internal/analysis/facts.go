package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"os"
)

// A FactTable maps object keys to fact bits. Function keys are
// types.Func.FullName ("repro/internal/store.New",
// "(*repro/internal/store.Graph).Publish"); type keys are
// "type:" + the named type's package-qualified string. Tables are
// cumulative: a package's exported table includes everything it imported,
// so facts reach indirect importers even though the go command only hands
// each vet invocation its direct dependencies' vetx files.
type FactTable map[string]Facts

// FuncKey returns the fact key for a function object.
func FuncKey(fn *types.Func) string { return fn.FullName() }

// TypeKey returns the fact key for a named type.
func TypeKey(tn *types.TypeName) string {
	if pkg := tn.Pkg(); pkg != nil {
		return "type:" + pkg.Path() + "." + tn.Name()
	}
	return "type:" + tn.Name()
}

// Merge copies every entry of src into t, or'ing bits on collision.
func (t FactTable) Merge(src FactTable) {
	//feo:unordered // or-merge; order-insensitive
	for k, v := range src {
		t[k] |= v
	}
}

// vetx serialization. The go command treats the file as opaque; a version
// header keeps stale caches from older feovet builds unreadable rather
// than wrong.

const factsVersion = "feovet-facts-v1"

type factsFile struct {
	Version string
	Table   FactTable
}

// EncodeFacts serializes the table for a vetx output file.
func EncodeFacts(t FactTable) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(factsFile{Version: factsVersion, Table: t}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeFactsFile reads one dependency's vetx file. A missing file is an
// error (the go command guarantees dependency order); a version mismatch
// yields an empty table so a feovet upgrade degrades to a clean re-derive
// instead of corrupt facts.
func DecodeFactsFile(path string) (FactTable, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f factsFile
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&f); err != nil {
		return nil, fmt.Errorf("decode facts %s: %v", path, err)
	}
	if f.Version != factsVersion {
		return FactTable{}, nil
	}
	if f.Table == nil {
		f.Table = FactTable{}
	}
	return f.Table, nil
}
