package mapdeterminism_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/mapdeterminism"
)

func TestFixtures(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", mapdeterminism.Analyzer)
}

// Removing the sort from a sorted emitter must fail the pass.
func TestSelfCheckSortRemoval(t *testing.T) {
	src := `package p

import (
	"fmt"
	"io"
	"sort"
)

//feo:emit
func emit(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k])
	}
}
`
	_, _, diags := analysistest.RunFiles(t, map[string]string{"p.go": src}, mapdeterminism.Analyzer)
	if len(diags) != 0 {
		t.Fatalf("sorted emitter should be clean; got %v", diags)
	}

	unsorted := strings.Replace(src, "\tsort.Strings(keys)\n", "", 1)
	unsorted = strings.Replace(unsorted, "\t\"sort\"\n", "", 1)
	_, _, diags = analysistest.RunFiles(t, map[string]string{"p.go": unsorted}, mapdeterminism.Analyzer)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "iterates a map in nondeterministic order") {
			found = true
		}
	}
	if !found {
		t.Fatalf("removing the sort produced no finding; got %v", diags)
	}
}
