// Fixture for the mapdeterminism analyzer: map iteration on emit paths.
package a

import (
	"fmt"
	"io"
	"sort"
)

// A raw map range in an emit function is nondeterministic output.
//
//feo:emit
func emitRaw(w io.Writer, m map[string]int) {
	for k, v := range m { // want `emit path emitRaw iterates a map in nondeterministic order`
		fmt.Fprintln(w, k, v)
	}
}

// Sorting afterwards justifies the range.
//
//feo:emit
func emitSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k])
	}
}

// An explicit statement-level discharge is accepted.
//
//feo:emit
func emitCounted(w io.Writer, m map[string]int) {
	total := 0
	//feo:unordered // summation
	for _, v := range m {
		total += v
	}
	fmt.Fprintln(w, total)
}

// The taint flows through helpers, across the call graph.
func rangeHelper(m map[string]int) string {
	out := ""
	for k := range m {
		out += k
	}
	return out
}

//feo:emit
func emitVia(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, rangeHelper(m)) // want `emit path emitVia calls .*rangeHelper, which iterates a map in nondeterministic order`
}

// A helper declared order-insensitive does not taint its callers.
//
//feo:unordered
func countHelper(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

//feo:emit
func emitCount(w io.Writer, m map[string]int) {
	fmt.Fprintln(w, countHelper(m))
}

// Non-emit functions may range freely.
func internalUse(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
