// Package mapdeterminism checks the artifact determinism contract: paper
// artifacts (Turtle/RDF-XML serializations, SPARQL result listings) must
// be byte-stable, so no Go map may be iterated in emitted order. The
// analyzer flags, inside every //feo:emit function, (a) direct `range`
// statements over maps and (b) calls into functions that — transitively,
// across packages via facts — contain one. An iteration is justified only
// by a subsequent sort in the same function or an explicit //feo:unordered
// on the statement or function.
package mapdeterminism

import (
	"repro/internal/analysis"
)

// Analyzer is the mapdeterminism pass.
var Analyzer = &analysis.Analyzer{
	Name: "mapdeterminism",
	Doc:  "check that emit paths never depend on map iteration order",
	Run:  run,
}

func run(p *analysis.Pass) error {
	c := p.Ctx
	for _, fi := range c.Funcs {
		if fi.TestFile || !fi.Ann.Has(analysis.Emit) {
			continue
		}
		for _, r := range fi.Ranges {
			if !r.Justified {
				p.Reportf(r.Pos, "emit path %s iterates a map in nondeterministic order; sort first or annotate //feo:unordered",
					fi.Obj.Name())
			}
		}
		for _, call := range fi.Calls {
			if call.StmtAnn.Has(analysis.Unordered) {
				continue
			}
			cf := c.FactsOf(call.Key)
			if !cf.Has(analysis.NondetRange) {
				continue
			}
			if fi.SortedAfter(call.Pos) {
				continue
			}
			p.Reportf(call.Pos, "emit path %s calls %s, which iterates a map in nondeterministic order",
				fi.Obj.Name(), call.Callee.FullName())
		}
	}
	return nil
}
