package analysis_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

func TestAtomicLiteFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/hygiene", analysis.AtomicLite)
}

// A typo in a //feo: directive must be an error, never a silent no-op.
// The annots pass reports at the directive comment itself, where a
// // want comment cannot sit, so this case is driven directly.
func TestAnnotsRejectsTypo(t *testing.T) {
	src := `package p

//feo:mutates
func known() {}

//feo:mutatez
func typo() {}
`
	_, _, diags := analysistest.RunFiles(t, map[string]string{"p.go": src}, analysis.Annots)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "unknown directive //feo:mutatez") {
			found = true
		}
	}
	if !found {
		t.Fatalf("typo directive not reported; got %v", diags)
	}
}

func TestAnnotsAcceptsVocabulary(t *testing.T) {
	src := `package p

//feo:mutable-type
type box struct{ n int }

//feo:mutates
func (b *box) set(n int) { b.n = n }

//feo:frozen-safe
func (b *box) get() int { return b.n }
`
	_, _, diags := analysistest.RunFiles(t, map[string]string{"p.go": src}, analysis.Annots)
	if len(diags) != 0 {
		t.Fatalf("known directives reported as unknown: %v", diags)
	}
}
