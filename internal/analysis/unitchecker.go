package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
)

// The `go vet -vettool` unitchecker protocol, on the stdlib alone. The go
// command drives the tool three ways: `-V=full` (a build ID for the vet
// result cache), `-flags` (a JSON description of supported flags), and
// one invocation per package with a *.cfg file describing sources, the
// export data of every import, and the vetx fact files of dependencies.

// vetConfig mirrors the JSON the go command writes for each vetted
// package (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Main is the entry point for cmd/feovet. It dispatches on the protocol
// handshake flags, runs the unitchecker on a .cfg argument, or falls back
// to standalone whole-program mode on package patterns.
func Main(progname string, analyzers []*Analyzer) {
	args := os.Args[1:]
	enabled := map[string]bool{}
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	var rest []string
	jsonOut := false
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion(progname)
			return
		case arg == "-flags" || arg == "--flags":
			printFlags(analyzers)
			return
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case strings.HasPrefix(arg, "-") && strings.Contains(arg, "="):
			name, val, _ := strings.Cut(strings.TrimLeft(arg, "-"), "=")
			if _, ok := enabled[name]; ok {
				enabled[name] = val != "false" && val != "0"
			}
		case strings.HasPrefix(arg, "-"):
			name := strings.TrimLeft(arg, "-")
			if _, ok := enabled[name]; ok {
				enabled[name] = true
			}
		default:
			rest = append(rest, arg)
		}
	}
	var active []*Analyzer
	for _, a := range analyzers {
		if enabled[a.Name] {
			active = append(active, a)
		}
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		if err := runUnit(progname, rest[0], active, jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			os.Exit(1)
		}
		return
	}
	if len(rest) == 0 {
		fmt.Fprintf(os.Stderr, "usage: go vet -vettool=%s ./...  (or: %s ./packages...)\n", progname, progname)
		os.Exit(2)
	}
	n, err := Standalone(rest, active)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if n > 0 {
		os.Exit(2)
	}
}

// printVersion emits the `-V=full` line the go command hashes into its
// vet result cache key: the tool's own binary digest, so a rebuilt feovet
// invalidates cached results.
func printVersion(progname string) {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// printFlags answers the `-flags` handshake so the go command can
// validate user-supplied analyzer flags.
func printFlags(analyzers []*Analyzer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{{Name: "json", Bool: true, Usage: "emit JSON output"}}
	for _, a := range analyzers {
		flags = append(flags, jsonFlag{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analysis"})
	}
	data, _ := json.Marshal(flags)
	os.Stdout.Write(data)
	fmt.Println()
}

// runUnit analyzes the one package a .cfg file describes.
func runUnit(progname, cfgPath string, analyzers []*Analyzer, jsonOut bool) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return fmt.Errorf("parse %s: %v", cfgPath, err)
	}

	writeVetx := func(t FactTable) error {
		if cfg.VetxOutput == "" {
			return nil
		}
		out, err := EncodeFacts(t)
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, out, 0666)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(FactTable{})
			}
			return err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	tc := &types.Config{Importer: imp, GoVersion: goVersion(cfg.GoVersion)}
	info := newInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx(FactTable{})
		}
		return fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err)
	}

	imported := FactTable{}
	for _, dep := range sortedKeys(cfg.PackageVetx) {
		t, err := DecodeFactsFile(cfg.PackageVetx[dep])
		if err != nil {
			return err
		}
		imported.Merge(t)
	}

	ctx := BuildContext(fset, files, pkg, info, imported)
	if err := writeVetx(ctx.ExportFacts()); err != nil {
		return err
	}
	if cfg.VetxOnly {
		return nil
	}

	diags, err := RunAnalyzers(ctx, analyzers)
	if err != nil {
		return err
	}
	if len(diags) == 0 {
		return nil
	}
	if jsonOut {
		printJSONDiagnostics(cfg.ID, fset, diags)
		return nil
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	os.Exit(2)
	return nil
}

// printJSONDiagnostics emits the unitchecker-compatible JSON shape:
// {"pkgid": {"analyzer": [{"posn": ..., "message": ...}]}}.
func printJSONDiagnostics(pkgID string, fset *token.FileSet, diags []Diagnostic) {
	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := map[string][]jsonDiag{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
			Posn:    fset.Position(d.Pos).String(),
			Message: d.Message,
		})
	}
	out := map[string]map[string][]jsonDiag{pkgID: byAnalyzer}
	data, _ := json.MarshalIndent(out, "", "\t")
	os.Stdout.Write(data)
	fmt.Println()
}

// goVersion normalizes the config's Go version for go/types (which
// rejects empty strings only; pass through otherwise).
func goVersion(v string) string {
	if v == "" {
		return ""
	}
	if !strings.HasPrefix(v, "go") {
		return "go" + v
	}
	return v
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
