// Package analysis is feovet's core: a small, stdlib-only static-analysis
// framework plus the project-specific passes that prove this repository's
// MVCC, durability, and determinism contracts at build time.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, cross-package facts) but is implemented on
// go/parser + go/types alone, because the build environment pins the
// dependency set. cmd/feovet speaks the `go vet -vettool` unitchecker
// protocol (-V=full / -flags / pkg.cfg), typechecks each package against
// the compiler's export data, and exchanges per-function facts between
// packages through the vetx files the go command already plumbs. The same
// passes also run in-process over whole programs (Standalone) and over
// test fixtures (analysistest).
//
// # Static invariants and the annotation vocabulary
//
// The contracts from PRs 5–7 exist as doc comments and race harnesses;
// feovet turns them into machine-checked annotations. The vocabulary, all
// written as directive comments in a declaration's doc block:
//
//	//feo:mutable-type   on a type: its state is writer-owned; exported
//	                     methods must declare themselves (fail closed).
//	//feo:frozen-type    on a type: values are immutable published views
//	                     (store.Snapshot, feo.Snapshot). Every method is
//	                     checked as a frozen context.
//	//feo:mutates        on a func: mutates shared store state. Must not
//	                     be reachable from any frozen context.
//	//feo:frozen-safe    on a func: a read path, safe on frozen views;
//	                     checked exactly like a frozen-type method.
//	//feo:fresh          on a func: returns a newly allocated value the
//	                     caller owns; mutating such a value is private.
//	//feo:publish        on a func: a snapshot publication point
//	                     (Publish, Txn.Commit, Txn.CommitDeferred).
//	//feo:wal-append     on a func: the durable acknowledgment append;
//	                     must be sequenced before any publication and its
//	                     error must be consumed.
//	//feo:wal-sync       on a func: a durability fsync; its error must be
//	                     consumed.
//	//feo:emit           on a func: an artifact/result emitter root whose
//	                     output must be byte-deterministic.
//	//feo:unordered      on a func or a single statement: this map
//	                     iteration order deliberately cannot affect
//	                     emitted artifacts (order-independent
//	                     accumulation, or the caller sorts).
//	//feo:idspace        on a func: an ID-space hot path (PR 4); it must
//	                     not decode terms.
//	//feo:decodes        on a func: materializes rdf.Term values from IDs
//	                     (TermDict.Term and wrappers).
//
// # Analyzers and the contracts they pin
//
//   - frozenmut — the PR 7 MVCC contract: a published store.Snapshot /
//     feo.Snapshot view is immutable forever. No //feo:mutates function
//     may be statically reachable from a frozen-type method or a
//     //feo:frozen-safe function (mutations of function-local fresh
//     values excepted), frozen contexts must not write through their
//     receiver, parameters, or globals of mutable type, a function that
//     writes through a //feo:mutable-type receiver or pointer parameter
//     must carry //feo:mutates, and un-annotated exported methods of
//     mutable types fail closed.
//   - walorder — the PR 6/7 durability contract: inside a commit path the
//     //feo:wal-append call precedes every //feo:publish call, no publish
//     happens on the append's error branch, and append/sync errors are
//     never discarded (an acknowledged commit is a logged commit).
//   - mapdeterminism — the paper-artifact determinism contract: functions
//     reachable from //feo:emit roots must not iterate Go maps in emitted
//     order. A map range is justified only by a subsequent sort in the
//     same function or an explicit //feo:unordered.
//   - idspacedecode — the PR 4 lazy-decode contract: //feo:idspace
//     functions never reach //feo:decodes (TermDict.Term and friends),
//     directly or transitively.
//   - annots — hygiene: unknown //feo: directives are errors, so a typo
//     cannot silently disable a contract.
//   - atomiclite — a stdlib port of vet's atomic self-assignment check,
//     kept in the bundle alongside the standard passes `go vet` itself
//     runs in CI (copylocks, loopclosure, atomic, ...). The SSA-based
//     standard passes (nilness, unusedwrite) need golang.org/x/tools,
//     which this build environment does not vendor; CI covers that ground
//     with staticcheck instead.
//
// The checks are static over the single-target call graph: calls through
// function values and interfaces are not traversed, and ownership of
// fresh locals is a flow-insensitive approximation with two deliberate
// rules. A bare-identifier assignment (`s = t`, `s, t = t, s`) rebinds a
// local and is never a mutation — unless the identifier is a package-
// scope variable, which frozen contexts still may not reassign. And a
// function literal's own parameters are treated as owned inside the
// literal: whoever invokes the closure chose what to pass, so writing
// through such a parameter is the call site's responsibility (this is
// what lets worker closures fill caller-allocated fresh accumulators, as
// in internal/sparql's parallel union). Within those documented bounds
// every violation of an annotated contract is reported, and the
// analysistest suites prove the passes fail when an annotation is
// deleted or a frozen-view mutation is injected.
package analysis
