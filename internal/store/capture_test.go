package store

import (
	"testing"

	"repro/internal/rdf"
)

func capTriple(n string) (rdf.Term, rdf.Term, rdf.Term) {
	return rdf.NewIRI("http://e/s" + n), rdf.NewIRI("http://e/p" + n), rdf.NewIRI("http://e/o" + n)
}

func TestCaptureRecordsAddsAndRemoves(t *testing.T) {
	g := New()
	s0, p0, o0 := capTriple("0")
	g.Add(s0, p0, o0) // before capture: must not be recorded

	cs := g.StartCapture()
	if cs.BaseVersion() != g.Version() {
		t.Errorf("BaseVersion = %d, want %d", cs.BaseVersion(), g.Version())
	}
	s1, p1, o1 := capTriple("1")
	if !g.Add(s1, p1, o1) {
		t.Fatal("add failed")
	}
	g.Add(s1, p1, o1) // duplicate: no mutation, no record
	if !g.Remove(s0, p0, o0) {
		t.Fatal("remove failed")
	}
	g.Remove(s0, p0, o0) // already gone: no record
	cs.Stop()

	s2, p2, o2 := capTriple("2")
	g.Add(s2, p2, o2) // after Stop: must not be recorded

	added := cs.AddedTriples()
	if len(added) != 1 || added[0].S != s1 || added[0].P != p1 || added[0].O != o1 {
		t.Errorf("AddedTriples = %v", added)
	}
	removed := cs.RemovedTriples()
	if len(removed) != 1 || removed[0].S != s0 {
		t.Errorf("RemovedTriples = %v", removed)
	}
	if cs.Cleared() {
		t.Error("capture should not be cleared")
	}
	if cs.EndVersion() == cs.BaseVersion() {
		t.Error("EndVersion should have advanced with the mutations")
	}
	if cs.EndVersion() == g.Version() {
		t.Error("post-Stop mutation should make EndVersion lag Version")
	}
}

func TestCaptureSeesEveryMutationRoute(t *testing.T) {
	g := New()
	cs := g.StartCapture()

	// Term-level Add, ID-level AddID, Bulk, and Merge all funnel into the
	// same chokepoint.
	s1, p1, o1 := capTriple("1")
	g.Add(s1, p1, o1)
	s2, p2, o2 := capTriple("2")
	g.AddID(g.InternTerm(s2), g.InternTerm(p2), g.InternTerm(o2))
	s3, p3, o3 := capTriple("3")
	g.Bulk().Add(s3, p3, o3)
	other := New()
	s4, p4, o4 := capTriple("4")
	other.Add(s4, p4, o4)
	g.Merge(other)
	cs.Stop()

	if n := len(cs.Added()); n != 4 {
		t.Errorf("captured %d adds, want 4: %v", n, cs.AddedTriples())
	}
}

func TestCaptureNestedIndependent(t *testing.T) {
	g := New()
	outer := g.StartCapture()
	s1, p1, o1 := capTriple("1")
	g.Add(s1, p1, o1)
	inner := g.StartCapture()
	s2, p2, o2 := capTriple("2")
	g.Add(s2, p2, o2)
	inner.Stop()
	s3, p3, o3 := capTriple("3")
	g.Add(s3, p3, o3)
	outer.Stop()

	if n := len(inner.Added()); n != 1 {
		t.Errorf("inner captured %d adds, want 1", n)
	}
	if n := len(outer.Added()); n != 3 {
		t.Errorf("outer captured %d adds, want 3", n)
	}
}

func TestCaptureClearInvalidates(t *testing.T) {
	g := New()
	s1, p1, o1 := capTriple("1")
	g.Add(s1, p1, o1)
	cs := g.StartCapture()
	s2, p2, o2 := capTriple("2")
	g.Add(s2, p2, o2)
	g.Clear()
	s3, p3, o3 := capTriple("3")
	g.Add(s3, p3, o3) // recorded IDs would belong to the new dictionary
	cs.Stop()

	if !cs.Cleared() {
		t.Fatal("Clear must invalidate the capture")
	}
	if len(cs.Added()) != 0 || len(cs.AddedTriples()) != 0 {
		t.Error("cleared capture must hold no triples")
	}
}

func TestCaptureStopIdempotentAndNilSafe(t *testing.T) {
	var nilCS *ChangeSet
	nilCS.Stop() // must not panic
	if nilCS.Active() {
		t.Error("nil capture is not active")
	}
	g := New()
	cs := g.StartCapture()
	cs.Stop()
	cs.Stop()
	if cs.Active() {
		t.Error("stopped capture reports active")
	}
	if len(g.captures) != 0 {
		t.Error("stopped capture still registered")
	}
}

func TestOrderedCapturePreservesInterleaving(t *testing.T) {
	g := New()
	s, p, o := capTriple("x")
	g.Add(s, p, o)

	cs := g.StartOrderedCapture()
	s1, p1, o1 := capTriple("1")
	g.Add(s1, p1, o1)
	g.Remove(s, p, o)
	g.Add(s, p, o) // reinstated: the unordered split would lose this nuance
	g.Remove(s1, p1, o1)
	cs.Stop()

	ops := cs.Ops()
	want := []TermOp{
		{Remove: false, T: rdf.Triple{S: s1, P: p1, O: o1}},
		{Remove: true, T: rdf.Triple{S: s, P: p, O: o}},
		{Remove: false, T: rdf.Triple{S: s, P: p, O: o}},
		{Remove: true, T: rdf.Triple{S: s1, P: p1, O: o1}},
	}
	if len(ops) != len(want) {
		t.Fatalf("Ops len = %d, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %+v, want %+v", i, ops[i], want[i])
		}
	}

	// Replaying the stream verbatim on a copy of the base graph must land on
	// the final graph.
	replay := New()
	replay.Add(s, p, o)
	for _, op := range ops {
		if op.Remove {
			replay.Remove(op.T.S, op.T.P, op.T.O)
		} else {
			replay.AddTriple(op.T)
		}
	}
	if !replay.Equal(g) {
		t.Fatal("verbatim replay of Ops diverged from the live graph")
	}
}

func TestOrderedCaptureSurvivesClear(t *testing.T) {
	g := New()
	s0, p0, o0 := capTriple("pre")
	g.Add(s0, p0, o0)

	cs := g.StartOrderedCapture()
	s1, p1, o1 := capTriple("doomed")
	g.Add(s1, p1, o1)
	g.Clear()
	s2, p2, o2 := capTriple("post")
	g.Add(s2, p2, o2)
	g.Remove(s2, p2, o2)
	g.Add(s2, p2, o2)
	cs.Stop()

	if !cs.Cleared() {
		t.Fatal("capture should report Cleared")
	}
	if got := cs.AddedTriples(); got != nil {
		t.Fatalf("unordered view should be empty after Clear, got %v", got)
	}
	ops := cs.Ops()
	if len(ops) != 3 {
		t.Fatalf("Ops should hold only the post-Clear stream, got %d ops", len(ops))
	}
	if ops[0].T.S != s2 || ops[1].Remove != true || ops[2].Remove != false {
		t.Fatalf("post-Clear stream wrong: %+v", ops)
	}

	// Wipe-then-replay lands on the live graph.
	replay := New()
	replay.Add(s0, p0, o0)
	replay.Clear()
	for _, op := range ops {
		if op.Remove {
			replay.Remove(op.T.S, op.T.P, op.T.O)
		} else {
			replay.AddTriple(op.T)
		}
	}
	if !replay.Equal(g) {
		t.Fatal("wipe-then-replay diverged from the live graph")
	}
}

func TestOrderedCaptureEmptyOps(t *testing.T) {
	g := New()
	cs := g.StartOrderedCapture()
	cs.Stop()
	if cs.Ops() != nil {
		t.Fatal("empty capture should return nil Ops")
	}
	// Plain captures never record ops.
	cs2 := g.StartCapture()
	g.Add(capTriple("a"))
	cs2.Stop()
	if cs2.Ops() != nil {
		t.Fatal("unordered capture must not expose Ops")
	}
}
