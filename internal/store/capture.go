package store

import "repro/internal/rdf"

// IDTriple is a dictionary-encoded triple at the store's public boundary.
// The reasoner's delta path and the change-capture log exchange these so a
// recorded mutation never has to decode (and later re-encode) its terms.
type IDTriple struct {
	S, P, O ID
}

// ChangeSet records every triple-level mutation applied to a graph between
// StartCapture and Stop. It is the change-capture hook that lets layered
// consumers (feo.Session, core.Engine) hand the reasoner an exact delta for
// incremental re-materialization without threading triples by hand through
// every parser, updater, and assertion site: any mutation route — Add/AddID,
// Bulk, Merge, SPARQL updates, reasoner inference — lands in the active
// capture because they all funnel through the graph's single add/remove
// chokepoints.
//
// Several captures may be active on one graph at a time; each records
// independently. Captures follow the store's writer contract: starting,
// stopping, and reading a ChangeSet must not race with mutations (in
// practice the layer that serializes writers — e.g. feo.Session's write
// lock — also owns the captures).
//
// Graph.Clear invalidates a capture (Cleared reports true): Clear replaces
// the term dictionary, so previously recorded IDs would decode wrongly, and
// a consumer must fall back to whole-graph processing anyway. A cleared
// capture stops recording and holds no triples.
type ChangeSet struct {
	g           *Graph
	dict        *TermDict // dictionary the recorded IDs belong to
	baseVersion uint64    // graph version when capture started
	endVersion  uint64    // graph version when capture stopped
	added       []IDTriple
	removed     []IDTriple
	cleared     bool
	active      bool
}

// StartCapture begins recording mutations into a new ChangeSet. The caller
// must eventually Stop it; an active capture costs one slice append per
// mutation and nothing on reads.
func (g *Graph) StartCapture() *ChangeSet {
	cs := &ChangeSet{g: g, dict: g.dict, baseVersion: g.version, active: true}
	g.captures = append(g.captures, cs)
	return cs
}

// Stop ends recording and detaches the capture from the graph. It pins the
// end version so consumers can verify no uncaptured mutation slipped in
// after the capture closed. Stop is idempotent and nil-safe.
func (cs *ChangeSet) Stop() {
	if cs == nil || !cs.active {
		return
	}
	cs.active = false
	cs.endVersion = cs.g.version
	caps := cs.g.captures
	for i, c := range caps {
		if c == cs {
			cs.g.captures = append(caps[:i], caps[i+1:]...)
			break
		}
	}
}

// Active reports whether the capture is still recording.
func (cs *ChangeSet) Active() bool { return cs != nil && cs.active }

// Graph returns the graph this capture recorded.
func (cs *ChangeSet) Graph() *Graph { return cs.g }

// BaseVersion returns the graph version at StartCapture. A consumer that
// processed the graph up to exactly this version may treat the recorded
// triples as the complete mutation delta since then.
func (cs *ChangeSet) BaseVersion() uint64 { return cs.baseVersion }

// EndVersion returns the graph version at Stop (or the current version
// while still active). EndVersion == Graph().Version() means no mutation
// has happened since the capture closed.
func (cs *ChangeSet) EndVersion() uint64 {
	if cs.active {
		return cs.g.version
	}
	return cs.endVersion
}

// Cleared reports whether Graph.Clear ran during the capture, invalidating
// the recorded IDs (the dictionary was replaced).
func (cs *ChangeSet) Cleared() bool { return cs.cleared }

// Added returns the triples added during the capture, in mutation order.
// The returned slice is the capture's own storage; callers must not mutate
// it.
func (cs *ChangeSet) Added() []IDTriple { return cs.added }

// Removed returns the triples removed during the capture, in mutation
// order.
func (cs *ChangeSet) Removed() []IDTriple { return cs.removed }

// AddedTriples decodes Added. Empty after Clear (the IDs died with the old
// dictionary).
func (cs *ChangeSet) AddedTriples() []rdf.Triple { return cs.decode(cs.added) }

// RemovedTriples decodes Removed. Removal never un-interns a term, so the
// decoded triples are exact even though they are no longer in the graph.
func (cs *ChangeSet) RemovedTriples() []rdf.Triple { return cs.decode(cs.removed) }

func (cs *ChangeSet) decode(ts []IDTriple) []rdf.Triple {
	if len(ts) == 0 || cs.cleared {
		return nil
	}
	out := make([]rdf.Triple, len(ts))
	for i, t := range ts {
		out[i] = rdf.Triple{S: cs.dict.Term(t.S), P: cs.dict.Term(t.P), O: cs.dict.Term(t.O)}
	}
	return out
}

// notifyAdd records a successful triple insertion into every active capture.
func (g *Graph) notifyAdd(s, p, o ID) {
	for _, cs := range g.captures {
		if !cs.cleared {
			cs.added = append(cs.added, IDTriple{s, p, o})
		}
	}
}

// notifyRemove records a successful triple removal into every active capture.
func (g *Graph) notifyRemove(s, p, o ID) {
	for _, cs := range g.captures {
		if !cs.cleared {
			cs.removed = append(cs.removed, IDTriple{s, p, o})
		}
	}
}

// notifyClear invalidates every active capture.
func (g *Graph) notifyClear() {
	for _, cs := range g.captures {
		cs.cleared = true
		cs.added = nil
		cs.removed = nil
	}
}
