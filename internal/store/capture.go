package store

import "repro/internal/rdf"

// IDTriple is a dictionary-encoded triple at the store's public boundary.
// The reasoner's delta path and the change-capture log exchange these so a
// recorded mutation never has to decode (and later re-encode) its terms.
type IDTriple struct {
	S, P, O ID
}

// ChangeSet records every triple-level mutation applied to a graph between
// StartCapture and Stop. It is the change-capture hook that lets layered
// consumers (feo.Session, core.Engine) hand the reasoner an exact delta for
// incremental re-materialization without threading triples by hand through
// every parser, updater, and assertion site: any mutation route — Add/AddID,
// Bulk, Merge, SPARQL updates, reasoner inference — lands in the active
// capture because they all funnel through the graph's single add/remove
// chokepoints.
//
// Several captures may be active on one graph at a time; each records
// independently. Captures follow the store's writer contract: starting,
// stopping, and reading a ChangeSet must not race with mutations (in
// practice the layer that serializes writers — e.g. feo.Session's write
// lock — also owns the captures).
//
// Graph.Clear invalidates a capture (Cleared reports true): Clear replaces
// the term dictionary, so previously recorded IDs would decode wrongly, and
// a consumer must fall back to whole-graph processing anyway. A cleared
// capture stops recording and holds no triples.
//
//feo:mutable-type
type ChangeSet struct {
	g           *Graph
	dict        *TermDict // dictionary the recorded IDs belong to
	baseVersion uint64    // graph version when capture started
	endVersion  uint64    // graph version when capture stopped
	added       []IDTriple
	removed     []IDTriple
	cleared     bool
	active      bool
	// Ordered captures (StartOrderedCapture) additionally record the exact
	// add/remove interleaving in ops, decoded against opsDict. Unlike the
	// added/removed split, ordered recording survives Clear: ops reset to
	// the post-Clear mutations and opsDict re-points at the replacement
	// dictionary, so a log consumer can replay "wipe, then these ops".
	ordered bool
	ops     []orderedOp
	opsDict *TermDict
}

// orderedOp is one entry of an ordered capture's mutation stream.
type orderedOp struct {
	remove bool
	t      IDTriple
}

// TermOp is one mutation of an ordered capture, decoded to terms: an
// addition (Remove false) or a removal (Remove true) of triple T.
type TermOp struct {
	Remove bool
	T      rdf.Triple
}

// StartCapture begins recording mutations into a new ChangeSet. The caller
// must eventually Stop it; an active capture costs one slice append per
// mutation and nothing on reads.
//
//feo:mutates
func (g *Graph) StartCapture() *ChangeSet {
	if g.frozen {
		panic("store: StartCapture on a frozen snapshot view")
	}
	cs := &ChangeSet{g: g, dict: g.dict, baseVersion: g.version, active: true}
	g.captures = append(g.captures, cs)
	return cs
}

// StartOrderedCapture begins recording mutations into a new ChangeSet that
// additionally preserves the exact add/remove interleaving (see Ops). The
// write-ahead log uses this: replaying the stream verbatim — an add that a
// later remove undoes, a remove that a later add reinstates — reproduces
// the final graph exactly, which the unordered added/removed split cannot
// guarantee. Ordered recording also survives Graph.Clear (the ops reset to
// the post-Clear stream and Cleared reports true) instead of going blind.
//
//feo:mutates
func (g *Graph) StartOrderedCapture() *ChangeSet {
	if g.frozen {
		panic("store: StartOrderedCapture on a frozen snapshot view")
	}
	cs := &ChangeSet{g: g, dict: g.dict, baseVersion: g.version, active: true,
		ordered: true, opsDict: g.dict}
	g.captures = append(g.captures, cs)
	return cs
}

// Ops returns the ordered mutation stream of an ordered capture, decoded to
// terms. For a capture that saw Graph.Clear, the stream holds only the
// post-Clear mutations (Cleared reports true; the consumer must wipe
// first). Nil for captures started with StartCapture.
//
//feo:frozen-safe
//feo:decodes
func (cs *ChangeSet) Ops() []TermOp {
	if len(cs.ops) == 0 {
		return nil
	}
	out := make([]TermOp, len(cs.ops))
	for i, op := range cs.ops {
		out[i] = TermOp{Remove: op.remove, T: rdf.Triple{
			S: cs.opsDict.Term(op.t.S),
			P: cs.opsDict.Term(op.t.P),
			O: cs.opsDict.Term(op.t.O),
		}}
	}
	return out
}

// Stop ends recording and detaches the capture from the graph. It pins the
// end version so consumers can verify no uncaptured mutation slipped in
// after the capture closed. Stop is idempotent and nil-safe.
//
//feo:mutates
func (cs *ChangeSet) Stop() {
	if cs == nil || !cs.active {
		return
	}
	cs.active = false
	cs.endVersion = cs.g.version
	caps := cs.g.captures
	for i, c := range caps {
		if c == cs {
			cs.g.captures = append(caps[:i], caps[i+1:]...)
			break
		}
	}
}

// Active reports whether the capture is still recording.
//
//feo:frozen-safe
func (cs *ChangeSet) Active() bool { return cs != nil && cs.active }

// Graph returns the graph this capture recorded.
//
//feo:frozen-safe
func (cs *ChangeSet) Graph() *Graph { return cs.g }

// BaseVersion returns the graph version at StartCapture. A consumer that
// processed the graph up to exactly this version may treat the recorded
// triples as the complete mutation delta since then.
//
//feo:frozen-safe
func (cs *ChangeSet) BaseVersion() uint64 { return cs.baseVersion }

// EndVersion returns the graph version at Stop (or the current version
// while still active). EndVersion == Graph().Version() means no mutation
// has happened since the capture closed.
//
//feo:frozen-safe
func (cs *ChangeSet) EndVersion() uint64 {
	if cs.active {
		return cs.g.version
	}
	return cs.endVersion
}

// Cleared reports whether Graph.Clear ran during the capture, invalidating
// the recorded IDs (the dictionary was replaced).
//
//feo:frozen-safe
func (cs *ChangeSet) Cleared() bool { return cs.cleared }

// Added returns the triples added during the capture, in mutation order.
// The returned slice is the capture's own storage; callers must not mutate
// it.
//
//feo:frozen-safe
func (cs *ChangeSet) Added() []IDTriple { return cs.added }

// Removed returns the triples removed during the capture, in mutation
// order.
//
//feo:frozen-safe
func (cs *ChangeSet) Removed() []IDTriple { return cs.removed }

// AddedTriples decodes Added. Empty after Clear (the IDs died with the old
// dictionary).
//
//feo:frozen-safe
//feo:decodes
func (cs *ChangeSet) AddedTriples() []rdf.Triple { return cs.decode(cs.added) }

// RemovedTriples decodes Removed. Removal never un-interns a term, so the
// decoded triples are exact even though they are no longer in the graph.
//
//feo:frozen-safe
//feo:decodes
func (cs *ChangeSet) RemovedTriples() []rdf.Triple { return cs.decode(cs.removed) }

func (cs *ChangeSet) decode(ts []IDTriple) []rdf.Triple {
	if len(ts) == 0 || cs.cleared {
		return nil
	}
	out := make([]rdf.Triple, len(ts))
	for i, t := range ts {
		out[i] = rdf.Triple{S: cs.dict.Term(t.S), P: cs.dict.Term(t.P), O: cs.dict.Term(t.O)}
	}
	return out
}

// notifyAdd records a successful triple insertion into every active capture.
//
//feo:mutates
func (g *Graph) notifyAdd(s, p, o ID) {
	for _, cs := range g.captures {
		if cs.ordered {
			cs.ops = append(cs.ops, orderedOp{t: IDTriple{s, p, o}})
		}
		if !cs.cleared {
			cs.added = append(cs.added, IDTriple{s, p, o})
		}
	}
}

// notifyRemove records a successful triple removal into every active capture.
//
//feo:mutates
func (g *Graph) notifyRemove(s, p, o ID) {
	for _, cs := range g.captures {
		if cs.ordered {
			cs.ops = append(cs.ops, orderedOp{remove: true, t: IDTriple{s, p, o}})
		}
		if !cs.cleared {
			cs.removed = append(cs.removed, IDTriple{s, p, o})
		}
	}
}

// invalidate marks the capture cleared — its recorded delta no longer
// reflects the graph (a transaction it observed was rolled back) — so the
// consumer falls back to whole-graph processing, exactly as after Clear.
// Ordered captures restart their op stream against dict.
//
//feo:mutates
func (cs *ChangeSet) invalidate(dict *TermDict) {
	cs.cleared = true
	cs.added = nil
	cs.removed = nil
	if cs.ordered {
		cs.ops = cs.ops[:0]
		cs.opsDict = dict
	}
}

// notifyClear invalidates every active capture. Ordered captures restart
// their op stream against the replacement dictionary (Clear has already
// swapped it in by the time this runs), so they keep observing post-Clear
// mutations.
//
//feo:mutates
func (g *Graph) notifyClear() {
	// The open transaction needs its pre-Clear op prefix for Rollback (the
	// capture is about to reset to the post-Clear stream). Only the first
	// Clear matters: its saved roots and ops describe the Begin state, and
	// everything between two Clears dies with the intermediate dictionary.
	if t := g.txn; t != nil && !t.sawClear {
		t.sawClear = true
		t.preClearOps = append([]orderedOp(nil), t.cs.ops...)
	}
	for _, cs := range g.captures {
		cs.cleared = true
		cs.added = nil
		cs.removed = nil
		if cs.ordered {
			cs.ops = cs.ops[:0]
			cs.opsDict = g.dict
		}
	}
}
