package store

import (
	"math/rand"
	"sort"
	"testing"
)

// refSet is the map implementation IDSet replaced; the property suite
// checks the bitmap set against it operation by operation.
type refSet map[ID]struct{}

func (r refSet) sorted() []ID {
	out := make([]ID, 0, len(r))
	for id := range r {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func checkEquiv(t *testing.T, s *IDSet, r refSet, ctx string) {
	t.Helper()
	if s.Len() != len(r) {
		t.Fatalf("%s: Len = %d, want %d", ctx, s.Len(), len(r))
	}
	want := r.sorted()
	got := s.AppendTo(nil)
	if len(got) != len(want) {
		t.Fatalf("%s: AppendTo returned %d members, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: member %d = %d, want %d (iteration must be sorted)", ctx, i, got[i], want[i])
		}
	}
	if len(want) > 0 {
		if m, ok := s.Min(); !ok || m != want[0] {
			t.Fatalf("%s: Min = %d,%v, want %d,true", ctx, m, ok, want[0])
		}
	} else if _, ok := s.Min(); ok {
		t.Fatalf("%s: Min ok on empty set", ctx)
	}
}

// idDomain mixes IDs that collide inside one container with IDs spread
// across containers, so both array and bitmap containers and multi-key
// merges are exercised.
func idDomain(rng *rand.Rand) ID {
	switch rng.Intn(3) {
	case 0: // dense low container — drives array→bitmap conversion
		return ID(rng.Intn(10_000))
	case 1: // a handful of distant containers
		return ID(rng.Intn(4))<<containerBits | ID(rng.Intn(64))
	default: // full 24-bit spread
		return ID(rng.Intn(1 << 24))
	}
}

func TestIDSetRandomOpsEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewIDSet()
		r := refSet{}
		for op := 0; op < 20_000; op++ {
			id := idDomain(rng)
			switch rng.Intn(5) {
			case 0, 1, 2: // biased toward adds so containers densify
				_, had := r[id]
				if got := s.Add(id); got == had {
					t.Fatalf("seed %d op %d: Add(%d) = %v, want %v", seed, op, id, got, !had)
				}
				r[id] = struct{}{}
			case 3:
				_, had := r[id]
				if got := s.Remove(id); got != had {
					t.Fatalf("seed %d op %d: Remove(%d) = %v, want %v", seed, op, id, got, had)
				}
				delete(r, id)
			default:
				_, had := r[id]
				if got := s.Contains(id); got != had {
					t.Fatalf("seed %d op %d: Contains(%d) = %v, want %v", seed, op, id, got, had)
				}
			}
		}
		checkEquiv(t, s, r, "after random ops")
		// Drain part of the set to force bitmap→array reconversion.
		for _, id := range r.sorted() {
			if rng.Intn(4) > 0 {
				s.Remove(id)
				delete(r, id)
			}
		}
		checkEquiv(t, s, r, "after drain")
	}
}

func TestIDSetAlgebraEquivalence(t *testing.T) {
	build := func(rng *rand.Rand, n int) (*IDSet, refSet) {
		s, r := NewIDSet(), refSet{}
		for i := 0; i < n; i++ {
			id := idDomain(rng)
			s.Add(id)
			r[id] = struct{}{}
		}
		return s, r
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		// Vary sizes so array/array, array/bitmap, and bitmap/bitmap
		// container pairings all occur.
		a, ra := build(rng, []int{50, 3000, 9000}[seed%3])
		b, rb := build(rng, []int{9000, 50, 3000}[seed%3])

		and := refSet{}
		for id := range ra {
			if _, ok := rb[id]; ok {
				and[id] = struct{}{}
			}
		}
		checkEquiv(t, a.And(b), and, "And")
		checkEquiv(t, b.And(a), and, "And (flipped)")

		diff := refSet{}
		for id := range ra {
			if _, ok := rb[id]; !ok {
				diff[id] = struct{}{}
			}
		}
		checkEquiv(t, a.AndNot(b), diff, "AndNot")

		or := refSet{}
		for id := range ra {
			or[id] = struct{}{}
		}
		for id := range rb {
			or[id] = struct{}{}
		}
		checkEquiv(t, a.Or(b), or, "Or")
		merged := a.Clone()
		merged.OrWith(b)
		checkEquiv(t, merged, or, "OrWith")

		// The operands must be untouched.
		checkEquiv(t, a, ra, "left operand after algebra")
		checkEquiv(t, b, rb, "right operand after algebra")
	}
}

func TestIDSetNilSafety(t *testing.T) {
	var s *IDSet
	if s.Len() != 0 || s.Contains(1) || s.Remove(1) {
		t.Error("nil set should behave as empty")
	}
	if _, ok := s.Min(); ok {
		t.Error("nil Min should report not-ok")
	}
	if got := s.AppendTo(nil); len(got) != 0 {
		t.Errorf("nil AppendTo = %v", got)
	}
	s.ForEach(func(ID) bool { t.Fatal("nil ForEach must not call fn"); return true })
	if s.Clone().Len() != 0 {
		t.Error("nil Clone should be empty")
	}
	live := NewIDSet()
	live.Add(3)
	if got := live.And(s); got.Len() != 0 {
		t.Errorf("And(nil) = %v", got.AppendTo(nil))
	}
	if got := s.And(live); got.Len() != 0 {
		t.Errorf("nil.And = %v", got.AppendTo(nil))
	}
	if got := live.AndNot(s); got.Len() != 1 {
		t.Errorf("AndNot(nil) = %v", got.AppendTo(nil))
	}
	if got := s.Or(live); got.Len() != 1 {
		t.Errorf("nil.Or = %v", got.AppendTo(nil))
	}
	live.OrWith(s)
	if live.Len() != 1 {
		t.Error("OrWith(nil) changed the set")
	}
}

func TestIDSetContainerBoundaries(t *testing.T) {
	s := NewIDSet()
	edge := []ID{0, 63, 64, containerSpan - 1, containerSpan, containerSpan + 1,
		2*containerSpan - 1, 2 * containerSpan, 1<<24 - 1, 1 << 24}
	r := refSet{}
	for _, id := range edge {
		s.Add(id)
		r[id] = struct{}{}
	}
	checkEquiv(t, s, r, "container boundaries")
	for _, id := range edge {
		if !s.Contains(id) {
			t.Errorf("Contains(%d) = false after Add", id)
		}
	}
	// Dense fill across the array→bitmap threshold and back.
	for i := 0; i < 2*arrMaxLen; i++ {
		s.Add(ID(i))
		r[ID(i)] = struct{}{}
	}
	checkEquiv(t, s, r, "past array/bitmap threshold")
	for i := arrMaxLen / 2; i < 2*arrMaxLen; i++ {
		s.Remove(ID(i))
		delete(r, ID(i))
	}
	checkEquiv(t, s, r, "back below threshold")
}
