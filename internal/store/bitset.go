package store

import "math/bits"

// Roaring-style compressed ID sets.
//
// An IDSet partitions the 32-bit ID space into 2^16 buckets keyed by the
// high 16 bits of each member. Each bucket holds one container for the low
// 16 bits: a sorted uint16 array while sparse, a 1024-word bitmap once the
// bucket exceeds arrMaxLen members. This is the classic Roaring layout
// (Lemire et al.): dense sets — the POS level of rdf:type-heavy predicates,
// BFS visited sets over a contiguous dictionary — cost one bit per possible
// member, and And/Or/AndNot between dense sets run as 64-bit word
// operations instead of per-element hash probes.
//
// Iteration is always in ascending ID order, so every consumer that sorts
// or canonicalizes downstream sees a deterministic sequence (the map-based
// sets this type replaced iterated in random order).
//
// Concurrency matches the store's reader contract: no method mutates the
// set except Add, Remove, and OrWith, so once a writer quiesces any number
// of goroutines may call the read-only methods (Contains, Len, ForEach,
// Min, And, …) concurrently. All read-only methods are safe on a nil
// receiver, which behaves as the empty set.
//
// # Copy-on-write container sharing
//
// The graph's MVCC snapshots (mvcc.go) share innermost sets between a
// published snapshot and the live indexes. When a writer must mutate a set
// that a snapshot may still be reading, it first calls cowClone: the clone
// owns fresh keys/cs slices but its containers alias the original backing
// storage (arr / bmp), marked shared. Every mutating container operation
// unshares first — copies the backing before the first write — so a
// snapshot's view of the old set is bit-stable forever while the writer
// pays only for the containers it actually touches.

const (
	// containerBits is the width of the low half of an ID: one container
	// spans 2^16 consecutive IDs.
	containerBits = 16
	containerSpan = 1 << containerBits
	// bitmapWords is the size of a dense container: 65536 bits.
	bitmapWords = containerSpan / 64
	// arrMaxLen is the array/bitmap switchover: a sorted uint16 array of
	// 4096 entries occupies exactly the 8 KiB a bitmap would, so beyond it
	// the bitmap is strictly smaller (and word ops become available).
	arrMaxLen = 4096
)

// container holds the members of one 2^16-ID bucket, as either a sorted
// array of low bits (arr, when bmp == nil) or a bitmap (bmp).
//
//feo:mutable-type
type container struct {
	arr []uint16
	bmp *[bitmapWords]uint64
	n   int // cardinality
	// shared marks backing storage (arr elements / bmp words) aliased by a
	// cowClone: a published snapshot may be reading it, so mutations must
	// copy the backing first (unshare).
	shared bool
}

// IDSet is a compressed set of dictionary IDs. The zero value is an empty
// set ready for use (NewIDSet exists for symmetry with the rest of the
// package), and read-only methods additionally accept a nil *IDSet as
// empty.
//
//feo:mutable-type
type IDSet struct {
	keys []uint16 // sorted container keys (id >> containerBits)
	cs   []container
	n    int // total cardinality
	// epoch is the graph COW epoch this set was last made privately writable
	// at (see Graph.epoch in mvcc.go). Free-standing sets built by query
	// evaluation keep the zero value and are never shared.
	epoch uint64
}

// NewIDSet returns an empty set.
//
//feo:fresh
func NewIDSet() *IDSet { return &IDSet{} }

// Len returns the number of members. Nil-safe.
//
//feo:frozen-safe
func (s *IDSet) Len() int {
	if s == nil {
		return 0
	}
	return s.n
}

// findContainer returns the index of key in s.keys and whether it exists;
// when absent, the returned index is the insertion point.
//
//feo:frozen-safe
func (s *IDSet) findContainer(key uint16) (int, bool) {
	lo, hi := 0, len(s.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.keys) && s.keys[lo] == key
}

// Add inserts id and reports whether it was new.
//
//feo:mutates
func (s *IDSet) Add(id ID) bool {
	key, low := uint16(id>>containerBits), uint16(id)
	i, ok := s.findContainer(key)
	if !ok {
		s.keys = append(s.keys, 0)
		s.cs = append(s.cs, container{})
		copy(s.keys[i+1:], s.keys[i:])
		copy(s.cs[i+1:], s.cs[i:])
		s.keys[i] = key
		s.cs[i] = container{arr: []uint16{low}, n: 1}
		s.n++
		return true
	}
	if s.cs[i].add(low) {
		s.n++
		return true
	}
	return false
}

// Remove deletes id and reports whether it was present. Containers emptied
// by the removal are dropped, keeping the key list canonical.
//
//feo:mutates
func (s *IDSet) Remove(id ID) bool {
	if s == nil {
		return false
	}
	key, low := uint16(id>>containerBits), uint16(id)
	i, ok := s.findContainer(key)
	if !ok || !s.cs[i].remove(low) {
		return false
	}
	s.n--
	if s.cs[i].n == 0 {
		s.keys = append(s.keys[:i], s.keys[i+1:]...)
		s.cs = append(s.cs[:i], s.cs[i+1:]...)
	}
	return true
}

// Contains reports membership. Nil-safe.
//
//feo:frozen-safe
func (s *IDSet) Contains(id ID) bool {
	if s == nil {
		return false
	}
	i, ok := s.findContainer(uint16(id >> containerBits))
	return ok && s.cs[i].contains(uint16(id))
}

// Min returns the smallest member; ok is false for an empty set. Nil-safe.
//
//feo:frozen-safe
func (s *IDSet) Min() (ID, bool) {
	if s.Len() == 0 {
		return NoID, false
	}
	return ID(s.keys[0])<<containerBits | ID(s.cs[0].min()), true
}

// ForEach calls fn for every member in ascending ID order, stopping early
// when fn returns false; the return value reports whether iteration ran to
// completion. Nil-safe.
//
//feo:frozen-safe
func (s *IDSet) ForEach(fn func(ID) bool) bool {
	if s == nil {
		return true
	}
	for i := range s.cs {
		if !s.cs[i].forEach(ID(s.keys[i])<<containerBits, fn) {
			return false
		}
	}
	return true
}

// AppendTo appends the members in ascending ID order to buf and returns
// the extended slice. Nil-safe.
//
//feo:frozen-safe
func (s *IDSet) AppendTo(buf []ID) []ID {
	s.ForEach(func(id ID) bool {
		buf = append(buf, id)
		return true
	})
	return buf
}

// Clone returns an independent copy. Nil-safe (returns a new empty set).
//
//feo:frozen-safe
//feo:fresh
func (s *IDSet) Clone() *IDSet {
	out := NewIDSet()
	if s == nil {
		return out
	}
	out.keys = append([]uint16(nil), s.keys...)
	out.cs = make([]container, len(s.cs))
	for i := range s.cs {
		out.cs[i] = s.cs[i].clone()
	}
	out.n = s.n
	return out
}

// cowClone returns a copy-on-write clone owned by graph epoch epoch: the
// set-level slices (keys, cs) are fresh, but every container aliases the
// original backing storage and is marked shared, so the first mutation of
// each container copies it (container.unshare). The source set must never
// be mutated again — the graph guarantees this by only cowCloning sets whose
// epoch predates the current one.
//
//feo:frozen-safe
//feo:fresh
func (s *IDSet) cowClone(epoch uint64) *IDSet {
	out := &IDSet{
		keys:  append([]uint16(nil), s.keys...),
		cs:    append([]container(nil), s.cs...),
		n:     s.n,
		epoch: epoch,
	}
	for i := range out.cs {
		out.cs[i].shared = true
	}
	return out
}

// And returns the intersection s ∩ t as a new set. Bitmap/bitmap buckets
// intersect as 64-bit word ANDs. Neither operand is mutated; both may be
// nil.
//
//feo:frozen-safe
//feo:fresh
func (s *IDSet) And(t *IDSet) *IDSet {
	out := NewIDSet()
	if s.Len() == 0 || t.Len() == 0 {
		return out
	}
	if len(t.keys) < len(s.keys) {
		s, t = t, s
	}
	for i := range s.cs {
		j, ok := t.findContainer(s.keys[i])
		if !ok {
			continue
		}
		if c := andContainers(&s.cs[i], &t.cs[j]); c.n > 0 {
			out.keys = append(out.keys, s.keys[i])
			out.cs = append(out.cs, c)
			out.n += c.n
		}
	}
	return out
}

// AndNot returns the difference s \ t as a new set. Neither operand is
// mutated; both may be nil.
//
//feo:frozen-safe
//feo:fresh
func (s *IDSet) AndNot(t *IDSet) *IDSet {
	if s.Len() == 0 {
		return NewIDSet()
	}
	if t.Len() == 0 {
		return s.Clone()
	}
	out := NewIDSet()
	for i := range s.cs {
		var c container
		if j, ok := t.findContainer(s.keys[i]); ok {
			c = andNotContainers(&s.cs[i], &t.cs[j])
		} else {
			c = s.cs[i].clone()
		}
		if c.n > 0 {
			out.keys = append(out.keys, s.keys[i])
			out.cs = append(out.cs, c)
			out.n += c.n
		}
	}
	return out
}

// Or returns the union s ∪ t as a new set. Neither operand is mutated;
// both may be nil.
//
//feo:frozen-safe
//feo:fresh
func (s *IDSet) Or(t *IDSet) *IDSet {
	out := s.Clone()
	out.OrWith(t)
	return out
}

// OrWith adds every member of t to s in place. Bitmap/bitmap buckets merge
// as 64-bit word ORs. t is not mutated and may be nil.
//
//feo:mutates
func (s *IDSet) OrWith(t *IDSet) {
	if t.Len() == 0 {
		return
	}
	for j := range t.cs {
		i, ok := s.findContainer(t.keys[j])
		if !ok {
			s.keys = append(s.keys, 0)
			s.cs = append(s.cs, container{})
			copy(s.keys[i+1:], s.keys[i:])
			copy(s.cs[i+1:], s.cs[i:])
			s.keys[i] = t.keys[j]
			s.cs[i] = t.cs[j].clone()
			s.n += t.cs[j].n
			continue
		}
		before := s.cs[i].n
		orInto(&s.cs[i], &t.cs[j])
		s.n += s.cs[i].n - before
	}
}

// ---- container operations ----

// arrSearch returns the insertion point of v in the sorted array: the
// index of the first element >= v. Hand-rolled (linear for short arrays,
// closure-free binary search above) because this sits under every HasID /
// Contains probe the joins and the reasoner issue.
func arrSearch(arr []uint16, v uint16) int {
	if len(arr) <= 16 {
		for i, x := range arr {
			if x >= v {
				return i
			}
		}
		return len(arr)
	}
	lo, hi := 0, len(arr)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if arr[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// unshare copies backing storage aliased by a cowClone so the container can
// be mutated without disturbing the snapshot that still reads the original.
// No-op (one predicted branch) for the ordinary unshared case.
//
//feo:mutates
func (c *container) unshare() {
	if !c.shared {
		return
	}
	c.shared = false
	if c.bmp != nil {
		bmp := new([bitmapWords]uint64)
		*bmp = *c.bmp
		c.bmp = bmp
		return
	}
	c.arr = append([]uint16(nil), c.arr...)
}

//feo:frozen-safe
func (c *container) contains(v uint16) bool {
	if c.bmp != nil {
		return c.bmp[v>>6]&(1<<(v&63)) != 0
	}
	i := arrSearch(c.arr, v)
	return i < len(c.arr) && c.arr[i] == v
}

//feo:mutates
func (c *container) add(v uint16) bool {
	if c.bmp != nil {
		w, b := v>>6, uint64(1)<<(v&63)
		if c.bmp[w]&b != 0 {
			return false
		}
		c.unshare()
		c.bmp[w] |= b
		c.n++
		return true
	}
	i := arrSearch(c.arr, v)
	if i < len(c.arr) && c.arr[i] == v {
		return false
	}
	if len(c.arr) >= arrMaxLen {
		c.toBitmap()
		c.bmp[v>>6] |= 1 << (v & 63)
		c.n++
		return true
	}
	c.unshare()
	c.arr = append(c.arr, 0)
	copy(c.arr[i+1:], c.arr[i:])
	c.arr[i] = v
	c.n++
	return true
}

//feo:mutates
func (c *container) remove(v uint16) bool {
	if c.bmp != nil {
		w, b := v>>6, uint64(1)<<(v&63)
		if c.bmp[w]&b == 0 {
			return false
		}
		c.unshare()
		c.bmp[w] &^= b
		c.n--
		if c.n <= arrMaxLen {
			c.toArray()
		}
		return true
	}
	i := arrSearch(c.arr, v)
	if i >= len(c.arr) || c.arr[i] != v {
		return false
	}
	c.unshare()
	c.arr = append(c.arr[:i], c.arr[i+1:]...)
	c.n--
	return true
}

//feo:frozen-safe
func (c *container) min() uint16 {
	if c.bmp != nil {
		for w, word := range c.bmp {
			if word != 0 {
				return uint16(w<<6 + bits.TrailingZeros64(word))
			}
		}
	}
	return c.arr[0] // containers are never empty
}

//feo:frozen-safe
func (c *container) forEach(base ID, fn func(ID) bool) bool {
	if c.bmp != nil {
		for w, word := range c.bmp {
			for word != 0 {
				bit := bits.TrailingZeros64(word)
				if !fn(base | ID(w<<6+bit)) {
					return false
				}
				word &= word - 1
			}
		}
		return true
	}
	for _, v := range c.arr {
		if !fn(base | ID(v)) {
			return false
		}
	}
	return true
}

//feo:frozen-safe
//feo:fresh
func (c *container) clone() container {
	out := container{n: c.n}
	if c.bmp != nil {
		out.bmp = new([bitmapWords]uint64)
		*out.bmp = *c.bmp
	} else {
		out.arr = append([]uint16(nil), c.arr...)
	}
	return out
}

// toBitmap converts an array container in place. The bitmap is freshly
// allocated, so the conversion also unshares.
//
//feo:mutates
func (c *container) toBitmap() {
	bmp := new([bitmapWords]uint64)
	for _, v := range c.arr {
		bmp[v>>6] |= 1 << (v & 63)
	}
	c.bmp, c.arr = bmp, nil
	c.shared = false
}

// toArray converts a bitmap container in place (caller guarantees the
// cardinality fits an array container). The array is freshly allocated, so
// the conversion also unshares.
//
//feo:mutates
func (c *container) toArray() {
	arr := make([]uint16, 0, c.n)
	for w, word := range c.bmp {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			arr = append(arr, uint16(w<<6+bit))
			word &= word - 1
		}
	}
	c.arr, c.bmp = arr, nil
	c.shared = false
}

// normalize converts a freshly built bitmap container to array form when
// small enough, keeping the array-iff-sparse invariant.
//
//feo:mutates
func (c *container) normalize() {
	if c.bmp != nil && c.n <= arrMaxLen {
		c.toArray()
	}
}

//feo:frozen-safe
//feo:fresh
func andContainers(a, b *container) container {
	if a.bmp != nil && b.bmp != nil {
		out := container{bmp: new([bitmapWords]uint64)}
		for w := range a.bmp {
			v := a.bmp[w] & b.bmp[w]
			out.bmp[w] = v
			out.n += bits.OnesCount64(v)
		}
		out.normalize()
		return out
	}
	// At least one side is an array: filter the (smaller) array side.
	if a.bmp != nil {
		a, b = b, a
	}
	if b.bmp == nil && len(b.arr) < len(a.arr) {
		a, b = b, a
	}
	out := container{}
	for _, v := range a.arr {
		if b.contains(v) {
			out.arr = append(out.arr, v)
		}
	}
	out.n = len(out.arr)
	return out
}

//feo:frozen-safe
//feo:fresh
func andNotContainers(a, b *container) container {
	if a.bmp != nil {
		out := container{bmp: new([bitmapWords]uint64)}
		if b.bmp != nil {
			for w := range a.bmp {
				v := a.bmp[w] &^ b.bmp[w]
				out.bmp[w] = v
				out.n += bits.OnesCount64(v)
			}
		} else {
			*out.bmp = *a.bmp
			out.n = a.n
			for _, v := range b.arr {
				w, bit := v>>6, uint64(1)<<(v&63)
				if out.bmp[w]&bit != 0 {
					out.bmp[w] &^= bit
					out.n--
				}
			}
		}
		out.normalize()
		return out
	}
	out := container{}
	for _, v := range a.arr {
		if !b.contains(v) {
			out.arr = append(out.arr, v)
		}
	}
	out.n = len(out.arr)
	return out
}

// orInto merges b into a in place.
//
//feo:mutates
func orInto(a, b *container) {
	a.unshare()
	if a.bmp == nil && b.bmp == nil && a.n+b.n <= arrMaxLen {
		// Array/array merge that certainly stays an array.
		merged := make([]uint16, 0, a.n+b.n)
		i, j := 0, 0
		for i < len(a.arr) && j < len(b.arr) {
			switch {
			case a.arr[i] < b.arr[j]:
				merged = append(merged, a.arr[i])
				i++
			case a.arr[i] > b.arr[j]:
				merged = append(merged, b.arr[j])
				j++
			default:
				merged = append(merged, a.arr[i])
				i++
				j++
			}
		}
		merged = append(merged, a.arr[i:]...)
		merged = append(merged, b.arr[j:]...)
		a.arr, a.n = merged, len(merged)
		return
	}
	if a.bmp == nil {
		a.toBitmap()
	}
	if b.bmp != nil {
		n := 0
		for w := range a.bmp {
			a.bmp[w] |= b.bmp[w]
			n += bits.OnesCount64(a.bmp[w])
		}
		a.n = n
	} else {
		for _, v := range b.arr {
			w, bit := v>>6, uint64(1)<<(v&63)
			if a.bmp[w]&bit == 0 {
				a.bmp[w] |= bit
				a.n++
			}
		}
	}
	a.normalize()
}
