package store

import (
	"fmt"
	"testing"

	"repro/internal/rdf"
)

// The bitset benchmarks are part of the gated trajectory (see
// scripts/bench_compare.sh): And/Or/iteration over dense and sparse
// container mixes, plus pattern matching against a dense predicate level —
// the rdf:type-shaped workload the roaring layout exists for.

// benchSets builds two overlapping sets: a dense one (every ID in [0, n))
// and a sparse one (every third ID, offset so containers overlap).
func benchSets(n int) (*IDSet, *IDSet) {
	a, b := NewIDSet(), NewIDSet()
	for i := 0; i < n; i++ {
		a.Add(ID(i))
		if i%3 == 0 {
			b.Add(ID(i + n/2))
		}
	}
	return a, b
}

func BenchmarkBitsetAnd(b *testing.B) {
	x, y := benchSets(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.And(y).Len() == 0 {
			b.Fatal("empty intersection")
		}
	}
}

func BenchmarkBitsetOr(b *testing.B) {
	x, y := benchSets(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.Or(y).Len() == 0 {
			b.Fatal("empty union")
		}
	}
}

func BenchmarkBitsetAndNot(b *testing.B) {
	x, y := benchSets(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.AndNot(y).Len() == 0 {
			b.Fatal("empty difference")
		}
	}
}

func BenchmarkBitsetIterate(b *testing.B) {
	x, _ := benchSets(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		x.ForEach(func(ID) bool {
			n++
			return true
		})
		if n != x.Len() {
			b.Fatalf("iterated %d of %d", n, x.Len())
		}
	}
}

func BenchmarkBitsetContains(b *testing.B) {
	x, _ := benchSets(100_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !x.Contains(ID(i % 100_000)) {
			b.Fatal("missing member")
		}
	}
}

// denseGraph types every subject with one shared class (the dense POS
// level) and a second class for every third subject.
func denseGraph(n int) (*Graph, ID, ID, ID) {
	g := New()
	classA := rdf.NewIRI("http://bench/ClassA")
	classB := rdf.NewIRI("http://bench/ClassB")
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://bench/s%d", i))
		g.Add(s, rdf.TypeIRI, classA)
		if i%3 == 0 {
			g.Add(s, rdf.TypeIRI, classB)
		}
	}
	p, _ := g.LookupID(rdf.TypeIRI)
	a, _ := g.LookupID(classA)
	bID, _ := g.LookupID(classB)
	return g, p, a, bID
}

// BenchmarkStoreMatchDensePredicate iterates the full (?, rdf:type, ClassA)
// POS level — the hottest single pattern shape of the paper's workload.
func BenchmarkStoreMatchDensePredicate(b *testing.B) {
	g, p, a, _ := denseGraph(50_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g.ForEachID(NoID, p, a, func(_, _, _ ID) bool {
			n++
			return true
		})
		if n != 50_000 {
			b.Fatalf("matched %d", n)
		}
	}
}

// BenchmarkStoreMatchDenseIntersect intersects the two dense class levels
// through MatchSetID — the word-level join the SPARQL ID pipeline fuses
// `?x a :A . ?x a :B` runs into.
func BenchmarkStoreMatchDenseIntersect(b *testing.B) {
	g, p, a, cb := denseGraph(50_000)
	want := g.MatchSetID(NoID, p, a).And(g.MatchSetID(NoID, p, cb)).Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := g.MatchSetID(NoID, p, a).And(g.MatchSetID(NoID, p, cb))
		if got.Len() != want {
			b.Fatalf("intersection %d, want %d", got.Len(), want)
		}
	}
}
