package store

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/rdf"
)

func miri(n int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://x/%d", n)) }

// randomTriple draws from a small term universe so adds collide with
// existing triples and removes usually hit.
func randomTriple(rng *rand.Rand, universe int) (s, p, o rdf.Term) {
	return miri(rng.Intn(universe)), miri(universe + rng.Intn(8)), miri(rng.Intn(universe))
}

// TestSnapshotIsolationRandomized is the core MVCC contract check: a
// pinned snapshot observes exactly its publish-time state — bit for bit,
// across every read path — no matter what transaction stream the writer
// runs afterwards.
func TestSnapshotIsolationRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := New()
	for i := 0; i < 400; i++ {
		g.Add(randomTriple(rng, 60))
	}

	type pinned struct {
		snap   *Snapshot
		expect *Graph // deep clone at publish time
		bytes  []byte // serialized form at publish time
	}
	var pins []pinned
	pin := func() {
		snap := g.Publish()
		p := pinned{snap: snap, expect: g.Clone(), bytes: snapshotBytes(t, snap.Graph())}
		pins = append(pins, p)
	}
	check := func(round int) {
		for i, p := range pins {
			view := p.snap.Graph()
			if view.Version() != p.snap.Version() {
				t.Fatalf("round %d: pin %d version drifted: %d != %d",
					round, i, view.Version(), p.snap.Version())
			}
			if !view.Equal(p.expect) {
				t.Fatalf("round %d: pin %d no longer equals its publish-time clone", round, i)
			}
			if got := snapshotBytes(t, view); string(got) != string(p.bytes) {
				t.Fatalf("round %d: pin %d serialization changed", round, i)
			}
		}
	}

	pin()
	for round := 0; round < 30; round++ {
		tx := g.Begin()
		for k := 0; k < 25; k++ {
			if rng.Intn(3) == 0 {
				g.Remove(randomTriple(rng, 60))
			} else {
				g.Add(randomTriple(rng, 60))
			}
		}
		tx.Commit()
		check(round)
		// The fresh pin must see the committed state exactly.
		if fresh := g.Snapshot(); !fresh.Graph().Equal(g) {
			t.Fatalf("round %d: fresh pin does not equal the live graph", round)
		}
		if round%5 == 0 {
			pin()
		}
	}
}

// TestSnapshotSurvivesClear: Clear wipes the live graph (and its
// dictionary) but published snapshots keep reading their own state.
func TestSnapshotSurvivesClear(t *testing.T) {
	g := New()
	for i := 0; i < 50; i++ {
		g.Add(miri(i), miri(100), miri(i+1))
	}
	expect := g.Clone()
	snap := g.Publish()
	g.Clear()
	if g.Len() != 0 {
		t.Fatalf("live graph not cleared")
	}
	if !snap.Graph().Equal(expect) {
		t.Fatalf("snapshot lost state across Clear")
	}
}

// TestSnapshotCOWEdgeCases drives the container-level copy-on-write
// through its representation changes: array containers growing in place,
// the array→bitmap promotion past 4096 entries, removes that splice
// arrays and clear bitmap words, and the bitmap→array demotion.
func TestSnapshotCOWEdgeCases(t *testing.T) {
	g := New()
	s, p := rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p")
	// One dense predicate: 5000 objects under a single (s,p) forces the
	// object set through array growth and into a bitmap container.
	for i := 0; i < 5000; i++ {
		g.Add(s, p, miri(i))
	}
	expect := g.Clone()
	snap := g.Publish()

	// Mutate the SAME set post-publish: every add/remove must unshare the
	// touched container instead of writing into the snapshot's storage.
	for i := 0; i < 5000; i += 2 {
		g.Remove(s, p, miri(i)) // drains the bitmap back toward array range
	}
	for i := 6000; i < 6100; i++ {
		g.Add(s, p, miri(i))
	}
	if !snap.Graph().Equal(expect) {
		t.Fatalf("snapshot changed under container representation churn")
	}
	if got := snap.Graph().Count(s, p, Wildcard); got != 5000 {
		t.Fatalf("snapshot object count = %d, want 5000", got)
	}
	if got := g.Count(s, p, Wildcard); got != 2500+100 {
		t.Fatalf("live object count = %d, want %d", got, 2600)
	}
}

// TestTxnRollback: Rollback restores triples, counters, dictionary, and
// namespaces; the version stays monotonic; and other active captures are
// invalidated so no consumer replays undone mutations.
func TestTxnRollback(t *testing.T) {
	g := New()
	for i := 0; i < 20; i++ {
		g.Add(miri(i), miri(50), miri(i+1))
	}
	expect := g.Clone()
	verBefore := g.Version()
	observer := g.StartCapture()

	tx := g.Begin()
	for i := 100; i < 140; i++ {
		g.Add(miri(i), miri(51), miri(i+1))
	}
	g.Remove(miri(0), miri(50), miri(1))
	midVer := g.Version()
	tx.Rollback()

	if !g.Equal(expect) {
		t.Fatalf("rollback did not restore the graph")
	}
	if g.Version() <= verBefore || g.Version() <= midVer {
		t.Fatalf("rollback version not monotonic: before=%d mid=%d after=%d",
			verBefore, midVer, g.Version())
	}
	if !observer.Cleared() {
		t.Fatalf("capture active across rollback was not invalidated")
	}
	observer.Stop()

	// The graph remains fully usable: a later transaction commits and
	// publishes normally.
	tx2 := g.Begin()
	g.Add(miri(200), miri(52), miri(201))
	snap := tx2.Commit()
	if !snap.Graph().Has(miri(200), miri(52), miri(201)) {
		t.Fatalf("post-rollback commit not visible in published snapshot")
	}
}

// TestRollbackEmptyTxnKeepsVersion: a transaction that never mutated must
// not burn a version (publish dedup depends on version equality).
func TestRollbackEmptyTxnKeepsVersion(t *testing.T) {
	g := New()
	g.Add(miri(1), miri(2), miri(3))
	before := g.Version()
	g.Begin().Rollback()
	if g.Version() != before {
		t.Fatalf("empty rollback moved version %d -> %d", before, g.Version())
	}
	snap1 := g.Publish()
	tx := g.Begin()
	if snap2 := tx.Commit(); snap2 != snap1 {
		t.Fatalf("empty commit minted a new snapshot")
	}
}

// TestFrozenViewPanics: every mutation route on a frozen snapshot view
// must panic rather than corrupt the published version.
func TestFrozenViewPanics(t *testing.T) {
	g := New()
	g.Add(miri(1), miri(2), miri(3))
	view := g.Publish().Graph()
	for name, fn := range map[string]func(){
		"Add":          func() { view.Add(miri(4), miri(5), miri(6)) },
		"Remove":       func() { view.Remove(miri(1), miri(2), miri(3)) },
		"Clear":        func() { view.Clear() },
		"InternTerm":   func() { view.InternTerm(miri(9)) },
		"Begin":        func() { view.Begin() },
		"Publish":      func() { view.Publish() },
		"StartCapture": func() { view.StartCapture() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on frozen view did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSnapshotSuperseded tracks the eviction-ranking signal: a snapshot
// reports superseded exactly once a newer version publishes.
func TestSnapshotSuperseded(t *testing.T) {
	g := New()
	g.Add(miri(1), miri(2), miri(3))
	s1 := g.Publish()
	if s1.Superseded() || s1.Graph().Superseded() {
		t.Fatalf("fresh snapshot already superseded")
	}
	g.Add(miri(4), miri(5), miri(6))
	s2 := g.Publish()
	if !s1.Superseded() || !s1.Graph().Superseded() {
		t.Fatalf("old snapshot not marked superseded")
	}
	if s2.Superseded() {
		t.Fatalf("latest snapshot marked superseded")
	}
	if got := g.Snapshot(); got != s2 {
		t.Fatalf("Snapshot() did not return the latest publish")
	}
	if got := s1.Graph().Snapshot(); got != s1 {
		t.Fatalf("frozen view's Snapshot() did not return its own pin")
	}
}

// TestConcurrentSnapshotReaders is the -race harness for the whole MVCC
// design: one writer commits transactions in a loop while many readers
// pin snapshots and hammer every read path. The race detector proves the
// epoch/COW discipline — any live-write into shared storage, or any
// unsynchronized dictionary access, fails the run; the assertions prove
// each pinned view is internally consistent (its length never changes
// between passes).
func TestConcurrentSnapshotReaders(t *testing.T) {
	g := New()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		g.Add(randomTriple(rng, 40))
	}
	g.Publish()

	const (
		writers  = 1 // single-writer protocol
		readers  = 4
		commits  = 80
		perTx    = 12
		universe = 40
	)
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(writers)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		wrng := rand.New(rand.NewSource(13))
		for c := 0; c < commits; c++ {
			tx := g.Begin()
			for k := 0; k < perTx; k++ {
				if wrng.Intn(4) == 0 {
					g.Remove(randomTriple(wrng, universe))
				} else {
					g.Add(randomTriple(wrng, universe))
				}
			}
			tx.Commit()
		}
	}()

	errCh := make(chan error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				snap := g.Snapshot()
				view := snap.Graph()
				n1 := view.Len()
				count := 0
				view.ForEach(Wildcard, Wildcard, Wildcard, func(rdf.Triple) bool {
					count++
					return true
				})
				if count != n1 {
					errCh <- fmt.Errorf("pinned view inconsistent: Len=%d iterated=%d", n1, count)
					return
				}
				// Exercise the indexed paths too.
				s := miri(rrng.Intn(universe))
				view.Objects(s, miri(universe))
				view.TypesOf(s)
				view.Statistics()
				if view.Len() != n1 {
					errCh <- fmt.Errorf("pinned view length moved %d -> %d", n1, view.Len())
					return
				}
			}
		}(int64(100 + r))
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestDeferredCommitVisibility: CommitDeferred retains the transaction's
// state privately — existing pins and new pins keep seeing the published
// version — until the next Publish exposes the accumulated burst at once.
func TestDeferredCommitVisibility(t *testing.T) {
	g := New()
	g.Add(miri(1), miri(2), miri(3))
	s1 := g.Publish()

	for i := 0; i < 5; i++ {
		tx := g.Begin()
		g.Add(miri(10+i), miri(2), miri(3))
		tx.CommitDeferred()
		if got := g.Snapshot(); got != s1 {
			t.Fatalf("deferred commit %d published a snapshot", i)
		}
	}
	if s1.Graph().Len() != 1 {
		t.Fatalf("deferred burst leaked into the pinned view: len=%d", s1.Graph().Len())
	}
	s2 := g.Publish()
	if s2 == s1 || s2.Graph().Len() != 6 {
		t.Fatalf("publish after burst: snap=%p len=%d, want fresh len=6", s2, s2.Graph().Len())
	}
	if !s1.Superseded() {
		t.Fatalf("old snapshot not superseded by the burst publish")
	}
}

// TestRollbackAfterDeferredCommits exercises the inverse-apply Rollback
// path: the graph is dirty at Begin (deferred commits wrote in place), so
// the saved roots are not restorable and Rollback must undo the
// transaction by inverting its own op stream.
func TestRollbackAfterDeferredCommits(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := New()
	for i := 0; i < 200; i++ {
		g.Add(randomTriple(rng, 40))
	}
	pin := g.Publish()
	pinLen := pin.Graph().Len()

	for c := 0; c < 3; c++ {
		tx := g.Begin()
		for k := 0; k < 20; k++ {
			if rng.Intn(3) == 0 {
				g.Remove(randomTriple(rng, 40))
			} else {
				g.Add(randomTriple(rng, 40))
			}
		}
		tx.CommitDeferred()
	}
	expect := g.Clone()
	verBefore := g.Version()

	tx := g.Begin()
	for k := 0; k < 60; k++ {
		if rng.Intn(3) == 0 {
			g.Remove(randomTriple(rng, 40))
		} else {
			g.Add(randomTriple(rng, 40))
		}
	}
	tx.Rollback()

	if !g.Equal(expect) {
		t.Fatalf("inverse-apply rollback did not restore the deferred state")
	}
	if g.Version() <= verBefore {
		t.Fatalf("rollback version not monotonic: %d -> %d", verBefore, g.Version())
	}
	if pin.Graph().Len() != pinLen {
		t.Fatalf("pinned snapshot disturbed across deferred commits + rollback")
	}
	if !g.Publish().Graph().Equal(expect) {
		t.Fatalf("publish after rollback does not expose the deferred state")
	}
}

// TestRollbackClearInTxn covers Clear inside a transaction for both
// Rollback strategies: a clean graph at Begin (root restore handles the
// Clear outright) and a dirty graph at Begin (the saved roots survive the
// post-Clear half, and the stashed pre-Clear ops undo the in-place half).
func TestRollbackClearInTxn(t *testing.T) {
	build := func() *Graph {
		g := New()
		for i := 0; i < 50; i++ {
			g.Add(miri(i), miri(100), miri(i+1))
		}
		g.Publish()
		return g
	}

	t.Run("clean-at-begin", func(t *testing.T) {
		g := build()
		expect := g.Clone()
		tx := g.Begin()
		g.Add(miri(300), miri(100), miri(301))
		g.Clear()
		g.Add(miri(400), miri(100), miri(401))
		tx.Rollback()
		if !g.Equal(expect) {
			t.Fatalf("rollback across Clear (clean Begin) did not restore")
		}
	})

	t.Run("dirty-at-begin", func(t *testing.T) {
		g := build()
		tx0 := g.Begin()
		g.Add(miri(200), miri(100), miri(201))
		tx0.CommitDeferred()
		expect := g.Clone()

		tx := g.Begin()
		g.Add(miri(300), miri(100), miri(301)) // in-place write into root storage
		g.Remove(miri(0), miri(100), miri(1))  // in-place removal too
		g.Clear()
		g.Add(miri(400), miri(100), miri(401))
		g.Clear() // second Clear: only the first one's stash matters
		g.Add(miri(500), miri(100), miri(501))
		tx.Rollback()
		if !g.Equal(expect) {
			t.Fatalf("rollback across Clear (dirty Begin) did not restore")
		}
		// The graph stays fully usable: commit and publish normally.
		tx2 := g.Begin()
		g.Add(miri(600), miri(100), miri(601))
		if snap := tx2.Commit(); !snap.Graph().Has(miri(600), miri(100), miri(601)) {
			t.Fatalf("post-rollback commit not visible")
		}
	})
}
