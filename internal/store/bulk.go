package store

import "repro/internal/rdf"

// Bulk is a write path for loaders that emit runs of triples sharing a
// subject or predicate (Turtle predicate/object lists, RDF/XML property
// elements, generated datasets). It keeps the dictionary IDs of the last
// subject and predicate seen, so a run of n triples about one subject
// interns that subject once instead of n times.
//
// A Bulk wraps a Graph and follows the same concurrency contract: one
// writer, no concurrent readers during writes.
//
//feo:mutable-type
type Bulk struct {
	g            *Graph
	dict         *TermDict // dictionary the cached IDs belong to
	lastS, lastP rdf.Term
	sID, pID     ID
	haveS, haveP bool
}

// Bulk returns a bulk writer for the graph.
//
//feo:mutates
func (g *Graph) Bulk() *Bulk { return &Bulk{g: g, dict: g.dict} }

// Add inserts the triple (s, p, o) with the same validation and return
// value as Graph.Add.
//
//feo:mutates
func (b *Bulk) Add(s, p, o rdf.Term) bool {
	t := rdf.Triple{S: s, P: p, O: o}
	if !t.Valid() {
		return false
	}
	if b.dict != b.g.dict {
		// Graph.Clear replaced the dictionary; cached IDs are meaningless.
		b.dict = b.g.dict
		b.haveS, b.haveP = false, false
	}
	if !b.haveS || b.lastS != s {
		b.sID = b.g.dict.Intern(s)
		b.lastS = s
		b.haveS = true
	}
	if !b.haveP || b.lastP != p {
		b.pID = b.g.dict.Intern(p)
		b.lastP = p
		b.haveP = true
	}
	return b.g.addIDs(b.sID, b.pID, b.g.dict.Intern(o))
}

// Graph returns the underlying graph.
//
//feo:frozen-safe
func (b *Bulk) Graph() *Graph { return b.g }
