package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }

func TestAddHasRemove(t *testing.T) {
	g := New()
	s, p, o := iri("s"), iri("p"), iri("o")
	if !g.Add(s, p, o) {
		t.Fatal("first Add should report new")
	}
	if g.Add(s, p, o) {
		t.Error("duplicate Add should report not-new")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if !g.Has(s, p, o) {
		t.Error("Has should find added triple")
	}
	if !g.Remove(s, p, o) {
		t.Error("Remove should report present")
	}
	if g.Remove(s, p, o) {
		t.Error("second Remove should report absent")
	}
	if g.Len() != 0 || g.Has(s, p, o) {
		t.Error("graph should be empty after Remove")
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	g := New()
	if g.Add(rdf.NewLiteral("x"), iri("p"), iri("o")) {
		t.Error("literal subject must be rejected")
	}
	if g.Add(iri("s"), rdf.NewBlank("b"), iri("o")) {
		t.Error("blank predicate must be rejected")
	}
	if g.Len() != 0 {
		t.Error("rejected triples must not change Len")
	}
}

func TestAllPatternShapes(t *testing.T) {
	g := New()
	// 2x2x2 grid of triples.
	for _, s := range []string{"s1", "s2"} {
		for _, p := range []string{"p1", "p2"} {
			for _, o := range []string{"o1", "o2"} {
				g.Add(iri(s), iri(p), iri(o))
			}
		}
	}
	w := Wildcard
	cases := []struct {
		name    string
		s, p, o rdf.Term
		want    int
	}{
		{"spo bound", iri("s1"), iri("p1"), iri("o1"), 1},
		{"sp?", iri("s1"), iri("p1"), w, 2},
		{"s?o", iri("s1"), w, iri("o1"), 2},
		{"?po", w, iri("p1"), iri("o1"), 2},
		{"s??", iri("s1"), w, w, 4},
		{"?p?", w, iri("p1"), w, 4},
		{"??o", w, w, iri("o1"), 4},
		{"???", w, w, w, 8},
		{"absent", iri("nope"), w, w, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := g.Count(tc.s, tc.p, tc.o)
			if got != tc.want {
				t.Errorf("Count = %d, want %d", got, tc.want)
			}
			if len(g.Match(tc.s, tc.p, tc.o)) != tc.want {
				t.Errorf("Match length mismatch")
			}
			if g.Exists(tc.s, tc.p, tc.o) != (tc.want > 0) {
				t.Errorf("Exists inconsistent with Count")
			}
		})
	}
}

func TestForEachEarlyStop(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.Add(iri(fmt.Sprintf("s%d", i)), iri("p"), iri("o"))
	}
	n := 0
	g.ForEach(Wildcard, iri("p"), Wildcard, func(rdf.Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d, want 3", n)
	}
}

func TestAccessors(t *testing.T) {
	g := New()
	g.Add(iri("s"), iri("p"), iri("o1"))
	g.Add(iri("s"), iri("p"), iri("o2"))
	g.Add(iri("s2"), iri("p"), iri("o1"))
	g.Add(iri("s"), iri("q"), iri("o1"))

	if objs := g.Objects(iri("s"), iri("p")); len(objs) != 2 {
		t.Errorf("Objects = %v", objs)
	}
	if subs := g.Subjects(iri("p"), iri("o1")); len(subs) != 2 {
		t.Errorf("Subjects = %v", subs)
	}
	if preds := g.Predicates(iri("s"), iri("o1")); len(preds) != 2 {
		t.Errorf("Predicates = %v", preds)
	}
	if f := g.FirstObject(iri("s"), iri("p")); f != iri("o1") {
		t.Errorf("FirstObject = %v, want deterministic smallest o1", f)
	}
	if f := g.FirstObject(iri("s"), iri("missing")); f.IsValid() {
		t.Error("FirstObject of absent pattern should be zero Term")
	}
}

func TestTypeHelpers(t *testing.T) {
	g := New()
	food := iri("Food")
	g.Add(iri("apple"), rdf.TypeIRI, food)
	g.Add(iri("pear"), rdf.TypeIRI, food)
	g.Add(iri("apple"), rdf.TypeIRI, iri("Fruit"))
	if !g.IsA(iri("apple"), food) {
		t.Error("IsA should hold")
	}
	if got := len(g.InstancesOf(food)); got != 2 {
		t.Errorf("InstancesOf = %d, want 2", got)
	}
	if got := len(g.TypesOf(iri("apple"))); got != 2 {
		t.Errorf("TypesOf = %d, want 2", got)
	}
}

func TestTriplesSortedDeterministic(t *testing.T) {
	g := New()
	g.Add(iri("b"), iri("p"), iri("o"))
	g.Add(iri("a"), iri("p"), iri("o"))
	g.Add(iri("a"), iri("p"), iri("n"))
	ts := g.Triples()
	if len(ts) != 3 {
		t.Fatalf("len = %d", len(ts))
	}
	if ts[0].S != iri("a") || ts[0].O != iri("n") {
		t.Errorf("Triples not sorted: %v", ts)
	}
}

func TestCloneMergeSubtract(t *testing.T) {
	g := New()
	g.Add(iri("s"), iri("p"), iri("o"))
	c := g.Clone()
	c.Add(iri("s2"), iri("p"), iri("o"))
	if g.Len() != 1 || c.Len() != 2 {
		t.Error("Clone must be independent")
	}
	h := New()
	h.Add(iri("s2"), iri("p"), iri("o"))
	h.Add(iri("s3"), iri("p"), iri("o"))
	if added := c.Merge(h); added != 1 {
		t.Errorf("Merge added %d, want 1 (one duplicate)", added)
	}
	if removed := c.Subtract(h); removed != 2 {
		t.Errorf("Subtract removed %d, want 2", removed)
	}
	if c.Len() != 1 {
		t.Errorf("after subtract Len = %d, want 1", c.Len())
	}
}

func TestEqual(t *testing.T) {
	g, h := New(), New()
	g.Add(iri("s"), iri("p"), iri("o"))
	h.Add(iri("s"), iri("p"), iri("o"))
	if !g.Equal(h) {
		t.Error("identical graphs must be Equal")
	}
	h.Add(iri("s"), iri("p"), iri("o2"))
	if g.Equal(h) {
		t.Error("different sizes must not be Equal")
	}
	g.Add(iri("s"), iri("p"), iri("o3"))
	if g.Equal(h) {
		t.Error("same size different content must not be Equal")
	}
	if g.Equal(nil) {
		t.Error("nil is never Equal")
	}
}

func TestClear(t *testing.T) {
	g := New()
	g.Add(iri("s"), iri("p"), iri("o"))
	g.Clear()
	if g.Len() != 0 || g.Exists(Wildcard, Wildcard, Wildcard) {
		t.Error("Clear must empty the graph")
	}
}

func TestListRoundTrip(t *testing.T) {
	g := New()
	members := []rdf.Term{iri("a"), iri("b"), iri("c")}
	head := g.AddList("l", members)
	got, ok := g.ReadList(head)
	if !ok {
		t.Fatal("ReadList failed on well-formed list")
	}
	if len(got) != 3 || got[0] != iri("a") || got[2] != iri("c") {
		t.Errorf("ReadList = %v", got)
	}
	// Empty list.
	if h := g.AddList("e", nil); h != rdf.NilIRI {
		t.Errorf("empty AddList head = %v, want rdf:nil", h)
	}
	if m, ok := g.ReadList(rdf.NilIRI); !ok || len(m) != 0 {
		t.Error("ReadList(nil) should be empty and ok")
	}
}

func TestReadListMalformed(t *testing.T) {
	g := New()
	// Cycle: b1 -> b1
	b1 := rdf.NewBlank("b1")
	g.Add(b1, rdf.FirstIRI, iri("a"))
	g.Add(b1, rdf.RestIRI, b1)
	if _, ok := g.ReadList(b1); ok {
		t.Error("cyclic list must not be ok")
	}
	// Missing rdf:first.
	b2 := rdf.NewBlank("b2")
	g.Add(b2, rdf.RestIRI, rdf.NilIRI)
	if _, ok := g.ReadList(b2); ok {
		t.Error("list node without rdf:first must not be ok")
	}
	// Dangling rest (no rdf:rest at all → zero Term).
	b3 := rdf.NewBlank("b3")
	g.Add(b3, rdf.FirstIRI, iri("a"))
	if _, ok := g.ReadList(b3); ok {
		t.Error("list node without rdf:rest must not be ok")
	}
}

func TestStatistics(t *testing.T) {
	g := New()
	g.Add(iri("a"), rdf.TypeIRI, iri("C"))
	g.Add(iri("b"), rdf.TypeIRI, iri("C"))
	g.Add(iri("a"), iri("p"), rdf.NewBlank("x"))
	st := g.Statistics()
	if st.Triples != 3 || st.Classes != 1 || st.Instances != 2 || st.Blanks != 1 {
		t.Errorf("Statistics = %+v", st)
	}
}

// Property: pattern matching agrees with a linear scan filter, for random
// small graphs and random patterns.
func TestMatchAgreesWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pool := []rdf.Term{iri("a"), iri("b"), iri("c"), iri("d")}
	for trial := 0; trial < 200; trial++ {
		g := New()
		var all []rdf.Triple
		for i := 0; i < 20; i++ {
			tr := rdf.Triple{S: pool[rng.Intn(4)], P: pool[rng.Intn(4)], O: pool[rng.Intn(4)]}
			if g.AddTriple(tr) {
				all = append(all, tr)
			}
		}
		pick := func() rdf.Term {
			if rng.Intn(2) == 0 {
				return Wildcard
			}
			return pool[rng.Intn(4)]
		}
		s, p, o := pick(), pick(), pick()
		want := 0
		for _, tr := range all {
			if (!s.IsValid() || tr.S == s) && (!p.IsValid() || tr.P == p) && (!o.IsValid() || tr.O == o) {
				want++
			}
		}
		if got := g.Count(s, p, o); got != want {
			t.Fatalf("trial %d: Count(%v,%v,%v) = %d, want %d", trial, s, p, o, got, want)
		}
	}
}

// Property: add then remove returns the graph to its previous state.
func TestAddRemoveInverse(t *testing.T) {
	f := func(s1, p1, o1, s2, p2, o2 uint8) bool {
		names := []string{"x", "y", "z"}
		g := New()
		t1 := rdf.Triple{S: iri(names[s1%3]), P: iri(names[p1%3]), O: iri(names[o1%3])}
		t2 := rdf.Triple{S: iri(names[s2%3]), P: iri(names[p2%3]), O: iri(names[o2%3])}
		g.AddTriple(t1)
		before := g.Len()
		wasNew := g.AddTriple(t2)
		if wasNew {
			g.Remove(t2.S, t2.P, t2.O)
		}
		return g.Len() == before && g.Has(t1.S, t1.P, t1.O) == true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsomorphicGroundGraphs(t *testing.T) {
	g, h := New(), New()
	g.Add(iri("s"), iri("p"), iri("o"))
	h.Add(iri("s"), iri("p"), iri("o"))
	if !Isomorphic(g, h) {
		t.Error("identical ground graphs must be isomorphic")
	}
	h.Add(iri("s"), iri("p"), iri("o2"))
	if Isomorphic(g, h) {
		t.Error("size mismatch must fail")
	}
}

func TestIsomorphicBlankRenaming(t *testing.T) {
	g, h := New(), New()
	// g: _:a p o ; s q _:a
	g.Add(rdf.NewBlank("a"), iri("p"), iri("o"))
	g.Add(iri("s"), iri("q"), rdf.NewBlank("a"))
	// h: same structure, different label
	h.Add(rdf.NewBlank("zz"), iri("p"), iri("o"))
	h.Add(iri("s"), iri("q"), rdf.NewBlank("zz"))
	if !Isomorphic(g, h) {
		t.Error("blank-renamed graphs must be isomorphic")
	}
}

func TestIsomorphicDistinguishesStructure(t *testing.T) {
	g, h := New(), New()
	// g: two blanks, chained. h: two blanks, parallel.
	g.Add(rdf.NewBlank("a"), iri("p"), rdf.NewBlank("b"))
	g.Add(rdf.NewBlank("b"), iri("p"), iri("o"))
	h.Add(rdf.NewBlank("x"), iri("p"), iri("o"))
	h.Add(rdf.NewBlank("y"), iri("p"), iri("o"))
	if Isomorphic(g, h) {
		t.Error("chain vs parallel blanks must not be isomorphic")
	}
}

func TestIsomorphicSymmetricBlanksNeedSearch(t *testing.T) {
	// Two structurally identical blanks (same signature) — color refinement
	// alone cannot split them; the backtracking phase must succeed.
	g, h := New(), New()
	for _, label := range []string{"a", "b"} {
		g.Add(rdf.NewBlank(label), iri("p"), iri("o"))
	}
	for _, label := range []string{"u", "v"} {
		h.Add(rdf.NewBlank(label), iri("p"), iri("o"))
	}
	if !Isomorphic(g, h) {
		t.Error("symmetric blank graphs must be isomorphic")
	}
}

func TestMergeCopiesNamespaces(t *testing.T) {
	g, h := New(), New()
	h.Namespaces().Bind("custom", "http://custom/")
	h.Add(iri("s"), iri("p"), iri("o"))
	g.Merge(h)
	if _, ok := g.Namespaces().IRIFor("custom"); !ok {
		t.Error("Merge should copy unbound prefixes")
	}
}

func TestConcurrentReads(t *testing.T) {
	// The documented contract: concurrent readers are safe once mutation
	// stops. Run under -race this exercises the guarantee.
	g := New()
	for i := 0; i < 500; i++ {
		g.Add(iri(fmt.Sprintf("s%d", i%50)), iri(fmt.Sprintf("p%d", i%10)), iri(fmt.Sprintf("o%d", i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := iri(fmt.Sprintf("s%d", (seed+i)%50))
				g.Count(s, Wildcard, Wildcard)
				g.Objects(s, iri("p1"))
				g.Exists(Wildcard, iri(fmt.Sprintf("p%d", i%10)), Wildcard)
			}
		}(w)
	}
	wg.Wait()
}

func TestVersionCounter(t *testing.T) {
	g := New()
	v0 := g.Version()
	if !g.Add(iri("s"), iri("p"), iri("o")) {
		t.Fatal("add failed")
	}
	v1 := g.Version()
	if v1 == v0 {
		t.Error("Add must bump the version")
	}
	// A duplicate add mutates nothing and must not bump.
	g.Add(iri("s"), iri("p"), iri("o"))
	if g.Version() != v1 {
		t.Error("no-op Add bumped the version")
	}
	// Interning alone is not a mutation.
	g.InternTerm(iri("unseen"))
	if g.Version() != v1 {
		t.Error("InternTerm bumped the version")
	}
	if !g.Remove(iri("s"), iri("p"), iri("o")) {
		t.Fatal("remove failed")
	}
	v2 := g.Version()
	if v2 == v1 {
		t.Error("Remove must bump the version")
	}
	g.Remove(iri("s"), iri("p"), iri("o"))
	if g.Version() != v2 {
		t.Error("no-op Remove bumped the version")
	}
	h := New()
	h.Add(iri("a"), iri("b"), iri("c"))
	g.Merge(h)
	if g.Version() == v2 {
		t.Error("Merge must bump the version")
	}
	v3 := g.Version()
	g.Subtract(h)
	if g.Version() == v3 {
		t.Error("Subtract must bump the version")
	}
	v4 := g.Version()
	g.Clear()
	if g.Version() == v4 {
		t.Error("Clear must bump the version")
	}
}

func TestFirstObjectIDAgreesWithFirstObject(t *testing.T) {
	g := New()
	s, p := iri("s"), iri("p")
	// Insert objects whose ID order deliberately disagrees with term order:
	// z is interned first (lowest ID) but sorts last.
	for _, o := range []string{"z", "m", "a", "q"} {
		g.Add(s, p, iri(o))
	}
	want := iri("a")
	if got := g.FirstObject(s, p); got != want {
		t.Fatalf("FirstObject = %v, want %v", got, want)
	}
	sID, _ := g.LookupID(s)
	pID, _ := g.LookupID(p)
	if got := g.TermOf(g.FirstObjectID(sID, pID)); got != want {
		t.Fatalf("FirstObjectID decodes to %v, want %v", got, want)
	}
	// Singleton fast path.
	g2 := New()
	g2.Add(s, p, iri("only"))
	sID2, _ := g2.LookupID(s)
	pID2, _ := g2.LookupID(p)
	if got := g2.TermOf(g2.FirstObjectID(sID2, pID2)); got != iri("only") {
		t.Fatalf("singleton FirstObjectID = %v", got)
	}
	if g2.FirstObjectID(sID2, NoID) != NoID {
		t.Error("FirstObjectID with absent pattern should be NoID")
	}
	if g2.FirstObject(iri("missing"), p).IsValid() {
		t.Error("FirstObject on missing subject should be zero Term")
	}
}

func TestMatchSetID(t *testing.T) {
	g := New()
	for i := 0; i < 10; i++ {
		g.Add(iri(fmt.Sprintf("s%d", i)), iri("p"), iri("o"))
	}
	pID, _ := g.LookupID(iri("p"))
	oID, _ := g.LookupID(iri("o"))
	sID, _ := g.LookupID(iri("s3"))
	if set := g.MatchSetID(NoID, pID, oID); set.Len() != 10 {
		t.Errorf("POS set len = %d, want 10", set.Len())
	}
	if set := g.MatchSetID(sID, pID, NoID); set.Len() != 1 || !set.Contains(oID) {
		t.Errorf("SPO set = %v", set.AppendTo(nil))
	}
	if set := g.MatchSetID(sID, NoID, oID); set.Len() != 1 || !set.Contains(pID) {
		t.Errorf("OSP set = %v", set.AppendTo(nil))
	}
	if g.MatchSetID(sID, pID, oID) != nil || g.MatchSetID(NoID, pID, NoID) != nil {
		t.Error("non-doubly-bound shapes must return nil")
	}
}
