package store

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// Isomorphic reports whether two graphs are equal up to blank node renaming.
//
// The algorithm is iterative color refinement (hashing each blank node by
// the multiset of its ground neighborhood signatures) followed, when
// refinement leaves ambiguous groups, by backtracking search over the small
// candidate sets. Ontology documents have few and shallow blank nodes
// (OWL restrictions and RDF lists), so the search space stays tiny; the
// worst case is exponential, as graph isomorphism demands.
func Isomorphic(a, b *Graph) bool {
	if a.Len() != b.Len() {
		return false
	}
	// Ground triples (no blank nodes) must match exactly.
	groundA, bnodeA := splitGround(a)
	groundB, bnodeB := splitGround(b)
	if len(groundA) != len(groundB) || len(bnodeA) != len(bnodeB) {
		return false
	}
	gset := make(map[rdf.Triple]struct{}, len(groundB))
	for _, t := range groundB {
		gset[t] = struct{}{}
	}
	for _, t := range groundA {
		if _, ok := gset[t]; !ok {
			return false
		}
	}
	blanksA := collectBlanks(bnodeA)
	blanksB := collectBlanks(bnodeB)
	if len(blanksA) != len(blanksB) {
		return false
	}
	if len(blanksA) == 0 {
		return true
	}
	sigA := refine(bnodeA, blanksA)
	sigB := refine(bnodeB, blanksB)
	// Group by signature; candidate targets for each A-blank are B-blanks
	// sharing its signature.
	groupsB := make(map[string][]rdf.Term)
	for n, s := range sigB {
		groupsB[s] = append(groupsB[s], n)
	}
	for _, g := range groupsB {
		sort.Slice(g, func(i, j int) bool { return rdf.Compare(g[i], g[j]) < 0 })
	}
	order := make([]rdf.Term, 0, len(blanksA))
	for n := range sigA {
		order = append(order, n)
	}
	// Match most-constrained nodes first.
	sort.Slice(order, func(i, j int) bool {
		gi, gj := len(groupsB[sigA[order[i]]]), len(groupsB[sigA[order[j]]])
		if gi != gj {
			return gi < gj
		}
		return rdf.Compare(order[i], order[j]) < 0
	})
	mapping := make(map[rdf.Term]rdf.Term, len(order))
	used := make(map[rdf.Term]bool, len(order))
	return matchBlanks(order, 0, sigA, groupsB, mapping, used, bnodeA, b)
}

func matchBlanks(order []rdf.Term, i int, sigA map[rdf.Term]string,
	groupsB map[string][]rdf.Term, mapping map[rdf.Term]rdf.Term,
	used map[rdf.Term]bool, bnodeA []rdf.Triple, b *Graph) bool {
	if i == len(order) {
		// Verify every bnode triple of A maps into B.
		for _, t := range bnodeA {
			if !b.Has(applyMapping(t.S, mapping), t.P, applyMapping(t.O, mapping)) {
				return false
			}
		}
		return true
	}
	n := order[i]
	for _, cand := range groupsB[sigA[n]] {
		if used[cand] {
			continue
		}
		mapping[n] = cand
		used[cand] = true
		if matchBlanks(order, i+1, sigA, groupsB, mapping, used, bnodeA, b) {
			return true
		}
		delete(mapping, n)
		used[cand] = false
	}
	return false
}

func applyMapping(t rdf.Term, m map[rdf.Term]rdf.Term) rdf.Term {
	if t.IsBlank() {
		if mapped, ok := m[t]; ok {
			return mapped
		}
	}
	return t
}

func splitGround(g *Graph) (ground, withBlank []rdf.Triple) {
	g.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		if t.S.IsBlank() || t.O.IsBlank() {
			withBlank = append(withBlank, t)
		} else {
			ground = append(ground, t)
		}
		return true
	})
	return ground, withBlank
}

func collectBlanks(ts []rdf.Triple) []rdf.Term {
	set := make(map[rdf.Term]struct{})
	for _, t := range ts {
		if t.S.IsBlank() {
			set[t.S] = struct{}{}
		}
		if t.O.IsBlank() {
			set[t.O] = struct{}{}
		}
	}
	out := make([]rdf.Term, 0, len(set))
	//feo:unordered // sorted below
	for n := range set {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return rdf.Compare(out[i], out[j]) < 0 })
	return out
}

// refine computes a stable signature for each blank node by iteratively
// hashing its incident triples, replacing blank neighbors with their
// previous-round signatures.
func refine(ts []rdf.Triple, blanks []rdf.Term) map[rdf.Term]string {
	sig := make(map[rdf.Term]string, len(blanks))
	for _, n := range blanks {
		sig[n] = "b"
	}
	termSig := func(t rdf.Term) string {
		if t.IsBlank() {
			return "{" + sig[t] + "}"
		}
		return t.String()
	}
	for round := 0; round < len(blanks)+1; round++ {
		next := make(map[rdf.Term]string, len(blanks))
		for _, n := range blanks {
			var parts []string
			for _, t := range ts {
				if t.S == n {
					parts = append(parts, "out|"+t.P.String()+"|"+termSig(t.O))
				}
				if t.O == n {
					parts = append(parts, "in|"+t.P.String()+"|"+termSig(t.S))
				}
			}
			sort.Strings(parts)
			next[n] = fmt.Sprintf("%x", fnv64(parts))
		}
		changed := false
		//feo:unordered // convergence check only
		for n := range sig {
			if sig[n] != next[n] {
				changed = true
				break
			}
		}
		sig = next
		if !changed {
			break
		}
	}
	return sig
}

func fnv64(parts []string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime
		}
		h ^= 0xff
		h *= prime
	}
	return h
}

// Stats summarizes the shape of a graph; used by the CLI and benchmarks.
type Stats struct {
	Triples    int
	Subjects   int
	Predicates int
	Objects    int
	Classes    int // distinct objects of rdf:type
	Instances  int // distinct subjects of rdf:type
	Blanks     int // distinct blank nodes in any position
}

// Statistics computes summary statistics for the graph in one pass.
// Statistics only counts set cardinalities, so enumeration order is
// immaterial.
//
//feo:frozen-safe
//feo:unordered
func (g *Graph) Statistics() Stats {
	st := Stats{Triples: g.n, Subjects: g.spo.levels(), Predicates: g.pos.levels(), Objects: g.osp.levels()}
	classes := make(map[rdf.Term]struct{})
	instances := make(map[rdf.Term]struct{})
	blanks := make(map[rdf.Term]struct{})
	g.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		if t.P == rdf.TypeIRI {
			classes[t.O] = struct{}{}
			instances[t.S] = struct{}{}
		}
		if t.S.IsBlank() {
			blanks[t.S] = struct{}{}
		}
		if t.O.IsBlank() {
			blanks[t.O] = struct{}{}
		}
		return true
	})
	st.Classes = len(classes)
	st.Instances = len(instances)
	st.Blanks = len(blanks)
	return st
}
