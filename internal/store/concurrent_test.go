package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// TestConcurrentReaders locks in the reader contract the package doc
// promises and the SPARQL engine's worker pool depends on: once a graph is
// quiescent, every non-mutating accessor may run from any number of
// goroutines with no synchronization. Run under -race (CI does), this test
// fails on any accidental mutation sneaking into a read path — e.g. a
// cache, a lazily built index, or a dictionary intern on lookup.
func TestConcurrentReaders(t *testing.T) {
	g := New()
	subjects := make([]rdf.Term, 40)
	preds := make([]rdf.Term, 8)
	for i := range subjects {
		subjects[i] = rdf.NewIRI(fmt.Sprintf("http://c/s%d", i))
	}
	for i := range preds {
		preds[i] = rdf.NewIRI(fmt.Sprintf("http://c/p%d", i))
	}
	for i, s := range subjects {
		for j, p := range preds {
			g.Add(s, p, subjects[(i+j+1)%len(subjects)])
		}
		g.Add(s, rdf.TypeIRI, rdf.NewIRI("http://c/Thing"))
	}
	list := g.AddList("l", []rdf.Term{subjects[0], subjects[1], subjects[2]})
	wantLen := g.Len()
	unknown := rdf.NewIRI("http://c/never-stored")

	const goroutines = 12
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				s := subjects[(w+r)%len(subjects)]
				p := preds[(w*r)%len(preds)]
				// Term-level reads.
				if g.Len() != wantLen {
					errs <- fmt.Errorf("Len changed under readers")
					return
				}
				n := 0
				g.ForEach(s, Wildcard, Wildcard, func(rdf.Triple) bool { n++; return true })
				if n != g.Count(s, Wildcard, Wildcard) {
					errs <- fmt.Errorf("ForEach/Count disagree for %v", s)
					return
				}
				_ = g.Match(Wildcard, p, Wildcard)
				_ = g.Objects(s, p)
				_ = g.Subjects(p, s)
				_ = g.Predicates(s, s)
				_ = g.FirstObject(s, p)
				_ = g.Exists(s, p, Wildcard)
				_ = g.Has(s, p, unknown)
				_ = g.TypesOf(s)
				if members, ok := g.ReadList(list); !ok || len(members) != 3 {
					errs <- fmt.Errorf("ReadList broke under readers")
					return
				}
				// ID-level reads (what the query workers actually use).
				sID, ok := g.LookupID(s)
				if !ok {
					errs <- fmt.Errorf("LookupID lost %v", s)
					return
				}
				pID, _ := g.LookupID(p)
				if _, miss := g.LookupID(unknown); miss {
					errs <- fmt.Errorf("LookupID invented an ID")
					return
				}
				got := 0
				g.ForEachID(sID, pID, NoID, func(_, _, _ ID) bool { got++; return true })
				if got != g.CountID(sID, pID, NoID) {
					errs <- fmt.Errorf("ForEachID/CountID disagree")
					return
				}
				viaIter := 0
				g.ForEachObjectID(sID, pID, func(ID) bool { viaIter++; return true })
				if viaIter != len(g.ObjectsID(sID, pID)) {
					errs <- fmt.Errorf("ForEachObjectID/ObjectsID disagree")
					return
				}
				viaIter = 0
				g.ForEachSubjectID(pID, sID, func(ID) bool { viaIter++; return true })
				if viaIter != len(g.SubjectsID(pID, sID)) {
					errs <- fmt.Errorf("ForEachSubjectID/SubjectsID disagree")
					return
				}
				if g.TermOf(sID) != s {
					errs <- fmt.Errorf("TermOf changed meaning")
					return
				}
				_ = g.KindOf(sID)
				_ = g.IsResourceID(sID)
				_ = g.FirstObjectID(sID, pID)
				_ = g.HasID(sID, pID, sID)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestForEachObjectSubjectID pins the new iterators' single-threaded
// semantics: set equality with the slice accessors and early stop.
func TestForEachObjectSubjectID(t *testing.T) {
	g := New()
	s := rdf.NewIRI("http://c/s")
	p := rdf.NewIRI("http://c/p")
	for i := 0; i < 5; i++ {
		g.Add(s, p, rdf.NewIRI(fmt.Sprintf("http://c/o%d", i)))
	}
	sID, _ := g.LookupID(s)
	pID, _ := g.LookupID(p)
	seen := map[ID]bool{}
	g.ForEachObjectID(sID, pID, func(o ID) bool { seen[o] = true; return true })
	if len(seen) != 5 {
		t.Fatalf("ForEachObjectID visited %d objects, want 5", len(seen))
	}
	for _, o := range g.ObjectsID(sID, pID) {
		if !seen[o] {
			t.Fatalf("ForEachObjectID missed object %d", o)
		}
	}
	calls := 0
	g.ForEachObjectID(sID, pID, func(ID) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop: %d calls, want 1", calls)
	}
	oID, _ := g.LookupID(rdf.NewIRI("http://c/o0"))
	subs := 0
	g.ForEachSubjectID(pID, oID, func(ID) bool { subs++; return true })
	if subs != 1 {
		t.Errorf("ForEachSubjectID found %d subjects, want 1", subs)
	}
	// Unknown keys iterate nothing.
	g.ForEachObjectID(NoID, NoID, func(ID) bool { t.Error("iterated on NoID"); return false })
}
