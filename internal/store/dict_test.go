package store

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
)

func TestTermDictRoundTrip(t *testing.T) {
	d := NewTermDict()
	terms := []rdf.Term{
		rdf.NewIRI("http://example.org/a"),
		rdf.NewBlank("b0"),
		rdf.NewLiteral("plain"),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
		rdf.NewLangLiteral("chou-fleur", "fr"),
	}
	ids := make([]ID, len(terms))
	for i, term := range terms {
		ids[i] = d.Intern(term)
		if i > 0 && ids[i] == ids[i-1] {
			t.Fatalf("distinct terms %v and %v share ID %d", terms[i-1], terms[i], ids[i])
		}
	}
	if d.Len() != len(terms) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(terms))
	}
	for i, term := range terms {
		if got := d.Term(ids[i]); got != term {
			t.Errorf("Term(%d) = %v, want %v", ids[i], got, term)
		}
		if id, ok := d.Lookup(term); !ok || id != ids[i] {
			t.Errorf("Lookup(%v) = (%d, %v), want (%d, true)", term, id, ok, ids[i])
		}
		if d.Intern(term) != ids[i] {
			t.Errorf("re-Intern(%v) changed the ID", term)
		}
		if got, want := d.Kind(ids[i]), term.Kind; got != want {
			t.Errorf("Kind(%d) = %v, want %v", ids[i], got, want)
		}
	}
	if id, ok := d.Lookup(rdf.NewIRI("http://example.org/never")); ok || id != NoID {
		t.Errorf("Lookup of unseen term = (%d, %v), want (NoID, false)", id, ok)
	}
}

// TestTermDictConcurrentReaders exercises the documented contract under the
// race detector: once writers quiesce, any number of goroutines may Lookup
// and decode concurrently.
func TestTermDictConcurrentReaders(t *testing.T) {
	d := NewTermDict()
	const n = 500
	terms := make([]rdf.Term, n)
	for i := range terms {
		terms[i] = rdf.NewIRI(fmt.Sprintf("http://example.org/t%d", i))
		d.Intern(terms[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				k := (i + seed) % n
				id, ok := d.Lookup(terms[k])
				if !ok {
					t.Errorf("Lookup(%v) failed", terms[k])
					return
				}
				if got := d.Term(id); got != terms[k] {
					t.Errorf("Term(%d) = %v, want %v", id, got, terms[k])
					return
				}
			}
		}(w * 37)
	}
	wg.Wait()
}

func TestGraphIDsStableAcrossClone(t *testing.T) {
	g := New()
	a := rdf.NewIRI("http://example.org/a")
	p := rdf.NewIRI("http://example.org/p")
	b := rdf.NewIRI("http://example.org/b")
	g.Add(a, p, b)
	g.Add(b, p, a)
	clone := g.Clone()
	for _, term := range []rdf.Term{a, p, b} {
		origID, ok1 := g.LookupID(term)
		cloneID, ok2 := clone.LookupID(term)
		if !ok1 || !ok2 || origID != cloneID {
			t.Errorf("ID of %v changed across Clone: (%d,%v) vs (%d,%v)", term, origID, ok1, cloneID, ok2)
		}
	}
	// Writes to the clone must not leak into the original.
	c := rdf.NewIRI("http://example.org/c")
	clone.Add(a, p, c)
	if g.Has(a, p, c) {
		t.Error("clone write visible in original graph")
	}
	if _, ok := g.LookupID(c); ok {
		t.Error("clone intern visible in original dictionary")
	}
}

func TestGraphIDsStableAcrossMerge(t *testing.T) {
	g := New()
	a := rdf.NewIRI("http://example.org/a")
	p := rdf.NewIRI("http://example.org/p")
	b := rdf.NewIRI("http://example.org/b")
	g.Add(a, p, b)
	beforeA, _ := g.LookupID(a)
	beforeP, _ := g.LookupID(p)

	other := New()
	c := rdf.NewIRI("http://example.org/c")
	other.Add(c, p, a) // shares p and a, brings new c
	if added := g.Merge(other); added != 1 {
		t.Fatalf("Merge added %d, want 1", added)
	}
	afterA, _ := g.LookupID(a)
	afterP, _ := g.LookupID(p)
	if beforeA != afterA || beforeP != afterP {
		t.Errorf("existing IDs changed across Merge: a %d→%d, p %d→%d", beforeA, afterA, beforeP, afterP)
	}
	if !g.Has(c, p, a) {
		t.Error("merged triple missing")
	}
	// The merged graph must answer by its own dictionary, not other's.
	cID, ok := g.LookupID(c)
	if !ok {
		t.Fatal("merged term not interned")
	}
	if g.TermOf(cID) != c {
		t.Errorf("TermOf(%d) = %v, want %v", cID, g.TermOf(cID), c)
	}
}

func TestCountExistsFastPaths(t *testing.T) {
	g := New()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
	for i := 0; i < 4; i++ {
		for j := 0; j < 3; j++ {
			g.Add(iri(fmt.Sprintf("s%d", i)), iri(fmt.Sprintf("p%d", j)), iri(fmt.Sprintf("o%d", (i+j)%5)))
		}
	}
	w := Wildcard
	patterns := [][3]rdf.Term{
		{iri("s0"), iri("p0"), iri("o0")},
		{iri("s0"), iri("p1"), w},
		{iri("s0"), w, iri("o1")},
		{w, iri("p2"), iri("o2")},
		{iri("s1"), w, w},
		{w, iri("p1"), w},
		{w, w, iri("o3")},
		{w, w, w},
		{iri("nope"), w, w},
	}
	for _, pat := range patterns {
		want := 0
		g.ForEach(pat[0], pat[1], pat[2], func(rdf.Triple) bool { want++; return true })
		if got := g.Count(pat[0], pat[1], pat[2]); got != want {
			t.Errorf("Count(%v) = %d, want %d", pat, got, want)
		}
		if got := g.Exists(pat[0], pat[1], pat[2]); got != (want > 0) {
			t.Errorf("Exists(%v) = %v, want %v", pat, got, want > 0)
		}
	}
	// Counts stay correct through removals.
	g.Remove(iri("s0"), iri("p0"), iri("o0"))
	if got := g.Count(iri("s0"), w, w); got != 2 {
		t.Errorf("Count(s0,*,*) after remove = %d, want 2", got)
	}
	if got := g.Count(w, iri("p0"), w); got != 3 {
		t.Errorf("Count(*,p0,*) after remove = %d, want 3", got)
	}
}

func TestFirstObjectMinScan(t *testing.T) {
	g := New()
	s := rdf.NewIRI("http://example.org/s")
	p := rdf.NewIRI("http://example.org/p")
	objs := []rdf.Term{
		rdf.NewIRI("http://example.org/zz"),
		rdf.NewIRI("http://example.org/aa"),
		rdf.NewIRI("http://example.org/mm"),
		rdf.NewLiteral("lit"),
		rdf.NewBlank("bn"),
	}
	for _, o := range objs {
		g.Add(s, p, o)
	}
	want := g.Objects(s, p)[0] // Objects sorts per rdf.Compare
	if got := g.FirstObject(s, p); got != want {
		t.Errorf("FirstObject = %v, want smallest %v", got, want)
	}
	if got := g.FirstObject(s, rdf.NewIRI("http://example.org/absent")); got.IsValid() {
		t.Errorf("FirstObject of absent pattern = %v, want zero Term", got)
	}
}

func TestBulkAddMatchesGraphAdd(t *testing.T) {
	reference := New()
	bulkG := New()
	bulk := bulkG.Bulk()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
	triples := []rdf.Triple{
		{S: iri("s"), P: iri("p"), O: iri("a")},
		{S: iri("s"), P: iri("p"), O: iri("b")}, // same subject+predicate run
		{S: iri("s"), P: iri("q"), O: rdf.NewLiteral("x")},
		{S: iri("t"), P: iri("p"), O: iri("a")},
		{S: iri("s"), P: iri("p"), O: iri("a")}, // duplicate
	}
	for _, tr := range triples {
		if got, want := bulk.Add(tr.S, tr.P, tr.O), reference.AddTriple(tr); got != want {
			t.Errorf("Bulk.Add(%v) = %v, Graph.Add = %v", tr, got, want)
		}
	}
	if bulk.Add(rdf.NewLiteral("bad"), iri("p"), iri("a")) {
		t.Error("Bulk.Add accepted a literal subject")
	}
	if !reference.Equal(bulkG) {
		t.Error("bulk-loaded graph differs from reference graph")
	}
}

// TestBulkSurvivesClear: Graph.Clear replaces the dictionary; a Bulk writer
// created beforehand must not feed its stale cached IDs into the new one.
func TestBulkSurvivesClear(t *testing.T) {
	g := New()
	b := g.Bulk()
	s := rdf.NewIRI("http://example.org/s")
	p := rdf.NewIRI("http://example.org/p")
	b.Add(s, p, rdf.NewIRI("http://example.org/o1"))
	g.Clear()
	if !b.Add(s, p, rdf.NewIRI("http://example.org/o2")) {
		t.Fatal("Bulk.Add failed after Clear")
	}
	ts := g.Triples() // panics or decodes garbage if stale IDs leaked
	if len(ts) != 1 || ts[0].S != s || ts[0].P != p {
		t.Fatalf("post-Clear bulk add produced %v", ts)
	}
}

func TestForEachIDAndAddID(t *testing.T) {
	g := New()
	s := rdf.NewIRI("http://example.org/s")
	p := rdf.NewIRI("http://example.org/p")
	o := rdf.NewLiteral("v")
	sID, pID, oID := g.InternTerm(s), g.InternTerm(p), g.InternTerm(o)
	if !g.AddID(sID, pID, oID) {
		t.Fatal("AddID rejected a valid triple")
	}
	if g.AddID(sID, pID, oID) {
		t.Error("AddID re-added an existing triple")
	}
	if g.AddID(oID, pID, sID) {
		t.Error("AddID accepted a literal subject")
	}
	if !g.Has(s, p, o) {
		t.Error("triple added by ID invisible to Term API")
	}
	n := 0
	g.ForEachID(NoID, pID, NoID, func(si, pi, oi ID) bool {
		if si != sID || pi != pID || oi != oID {
			t.Errorf("ForEachID yielded (%d,%d,%d), want (%d,%d,%d)", si, pi, oi, sID, pID, oID)
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("ForEachID matched %d triples, want 1", n)
	}
}
