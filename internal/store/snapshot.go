package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"sort"

	"repro/internal/rdf"
)

// Binary graph snapshots.
//
// WriteSnapshot serializes a Graph — term dictionary, namespaces, mutation
// version, and all three permutation indexes with their roaring containers —
// into a compact binary form that ReadSnapshot loads back in time
// proportional to the file size: the dictionary streams in ID order (one
// hash per term, exactly like the original interning), the indexes
// deserialize container-by-container without a single triple-level insert,
// and the per-position counts are summed from index levels during the walk.
// Loading therefore skips everything that makes text parsing slow:
// tokenizing, IRI resolution, per-triple index maintenance, and container
// growth/conversion churn.
//
// The format is versioned (snapshotFormatVersion) and deterministic: index
// levels are written in sorted ID order, so the same graph always produces
// byte-identical output — which is what lets the durability layer checksum
// snapshots and compare them across machines.
//
// The snapshot carries no integrity trailer of its own; the durability
// layer (internal/durable) frames it with a checksum. ReadSnapshot still
// validates structure — kind bytes, ID bounds against the dictionary, and
// set cardinalities — so a corrupt stream fails loudly instead of building
// an inconsistent graph.

// snapshotFormatVersion identifies the snapshot encoding. Bump on any
// incompatible layout change; ReadSnapshot rejects versions it predates.
const snapshotFormatVersion = 1

// WriteSnapshot writes the graph in the binary snapshot format. Calling it
// on a frozen snapshot view is safe concurrently with the live writer
// (that is how Session.Compact serializes off the write lock): the view's
// COW storage is immutable and the dictionary is truncated to the
// publish-time prefix, so the output is deterministic.
//
//feo:frozen-safe
//feo:emit
func (g *Graph) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	e := &snapEncoder{w: bw}
	e.uvarint(snapshotFormatVersion)
	e.uvarint(g.version)
	e.writeDict(g.dict, g.dictCap())
	e.writeNamespaces(g.ns)
	e.writeIndex(&g.spo)
	e.writeIndex(&g.pos)
	e.writeIndex(&g.osp)
	if e.err != nil {
		return e.err
	}
	return bw.Flush()
}

// readSnapshotInto decodes a snapshot stream into a freshly constructed
// (still empty) graph.
//
//feo:mutates
func (g *Graph) readSnapshotInto(r io.Reader) error {
	d := &snapDecoder{r: bufio.NewReader(r)}
	ver := d.uvarint()
	if d.err == nil && ver != snapshotFormatVersion {
		return fmt.Errorf("store: unsupported snapshot format version %d", ver)
	}
	g.version = d.uvarint()
	d.readDict(g.dict)
	d.readNamespaces(g.ns)
	nTerms := uint64(g.dict.Len())
	d.readIndex(&g.spo, nTerms)
	d.readIndex(&g.pos, nTerms)
	d.readIndex(&g.osp, nTerms)
	if d.err != nil {
		return d.err
	}
	// Derive the per-position counts and the triple total from the loaded
	// index levels; they are redundant with the indexes, so the snapshot
	// does not store them.
	n := deriveCounts(&g.spo, &g.subjN, int(nTerms))
	g.n = n
	nPOS := deriveCounts(&g.pos, &g.predN, int(nTerms))
	nOSP := deriveCounts(&g.osp, &g.objN, int(nTerms))
	if nPOS != n || nOSP != n {
		return fmt.Errorf("store: snapshot index cardinalities disagree (spo=%d pos=%d osp=%d)", n, nPOS, nOSP)
	}
	return nil
}

// deriveCounts fills one per-position counter vector from a loaded index
// and returns the total cardinality.
//
//feo:mutates
func deriveCounts(ix *index, cnt *counts, nTerms int) int {
	cnt.v = make([]int32, nTerms)
	total := 0
	for ai, l := range ix.s {
		if l == nil {
			continue
		}
		c := 0
		//feo:unordered // summation; order-insensitive
		for _, set := range l.m {
			c += set.Len()
		}
		cnt.v[ai] = int32(c)
		total += c
	}
	return total
}

// ReadSnapshot reads a graph previously written by WriteSnapshot. The
// returned graph is fully indexed and ready for reads and further mutation;
// its Version matches the snapshotted graph's.
//
//feo:fresh
func ReadSnapshot(r io.Reader) (*Graph, error) {
	g := New()
	if err := g.readSnapshotInto(r); err != nil {
		return nil, err
	}
	return g, nil
}

// ForceVersion raises the graph's mutation version to v. It never lowers
// the version: Version is monotonic by contract, and consumers key caches
// on it. The durability layer uses this during write-ahead-log replay so a
// recovered graph reports exactly the version its acknowledged mutations
// reached, keeping the plan cache's and the reasoner's version-keyed
// invariants intact across a restart.
//
//feo:mutates
func (g *Graph) ForceVersion(v uint64) {
	if v > g.version {
		g.version = v
	}
}

// ---- encoder ----

type snapEncoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *snapEncoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *snapEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *snapEncoder) term(t rdf.Term) {
	if e.err != nil {
		return
	}
	e.err = e.w.WriteByte(byte(t.Kind))
	e.str(t.Value)
	if t.Kind == rdf.KindLiteral {
		e.str(t.Datatype)
		e.str(t.Lang)
	}
}

func (e *snapEncoder) writeDict(d *TermDict, n int) {
	terms := d.snapshotTerms()[:n]
	e.uvarint(uint64(len(terms)))
	for _, t := range terms {
		e.term(t)
	}
}

func (e *snapEncoder) writeNamespaces(ns *rdf.Namespaces) {
	prefixes := ns.Prefixes() // sorted
	e.uvarint(uint64(len(prefixes)))
	for _, p := range prefixes {
		iri, _ := ns.IRIFor(p)
		e.str(p)
		e.str(iri)
	}
	e.str(ns.Base())
}

func (e *snapEncoder) writeIndex(idx *index) {
	// The outer level iterates in ascending ID order by construction, so
	// the byte layout matches the sorted-map encoding this replaced.
	e.uvarint(uint64(idx.levels()))
	for ai, l := range idx.s {
		if l == nil {
			continue
		}
		inner := make([]ID, 0, len(l.m))
		for b := range l.m {
			inner = append(inner, b)
		}
		sort.Slice(inner, func(i, j int) bool { return inner[i] < inner[j] })
		e.uvarint(uint64(ai))
		e.uvarint(uint64(len(inner)))
		for _, b := range inner {
			e.uvarint(uint64(b))
			e.writeSet(l.m[b])
		}
	}
}

func (e *snapEncoder) writeSet(s *IDSet) {
	e.uvarint(uint64(len(s.cs)))
	for i := range s.cs {
		c := &s.cs[i]
		e.uvarint(uint64(s.keys[i]))
		if c.bmp != nil {
			if e.err == nil {
				e.err = e.w.WriteByte(1)
			}
			var word [8]byte
			for _, w := range c.bmp {
				binary.LittleEndian.PutUint64(word[:], w)
				if e.err == nil {
					_, e.err = e.w.Write(word[:])
				}
			}
			continue
		}
		if e.err == nil {
			e.err = e.w.WriteByte(0)
		}
		e.uvarint(uint64(len(c.arr)))
		var b [2]byte
		for _, v := range c.arr {
			binary.LittleEndian.PutUint16(b[:], v)
			if e.err == nil {
				_, e.err = e.w.Write(b[:])
			}
		}
	}
}

// ---- decoder ----

type snapDecoder struct {
	r   *bufio.Reader
	err error
}

func (d *snapDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("store: corrupt snapshot: "+format, args...)
	}
}

func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("store: corrupt snapshot: %w", err)
	}
	return v
}

// length reads a collection length and bounds it against max so a corrupt
// count fails fast instead of allocating gigabytes.
func (d *snapDecoder) length(max uint64, what string) int {
	v := d.uvarint()
	if d.err == nil && v > max {
		d.fail("%s count %d exceeds bound %d", what, v, max)
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}

const maxSnapshotStr = 64 << 20 // no single term string exceeds 64 MiB

func (d *snapDecoder) str() string {
	n := d.length(maxSnapshotStr, "string length")
	if d.err != nil || n == 0 {
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.r, b); err != nil {
		d.fail("%v", err)
		return ""
	}
	return string(b)
}

func (d *snapDecoder) term() rdf.Term {
	kind, err := d.r.ReadByte()
	if err != nil {
		d.fail("%v", err)
		return rdf.Term{}
	}
	t := rdf.Term{Kind: rdf.TermKind(kind)}
	switch t.Kind {
	case rdf.KindIRI, rdf.KindBlank:
		t.Value = d.str()
	case rdf.KindLiteral:
		t.Value = d.str()
		t.Datatype = d.str()
		t.Lang = d.str()
	default:
		d.fail("invalid term kind %d", kind)
	}
	return t
}

func (d *snapDecoder) readDict(dict *TermDict) {
	n := d.length(1<<32, "term")
	if d.err == nil {
		dict.grow(n)
	}
	for i := 0; i < n && d.err == nil; i++ {
		t := d.term()
		if d.err != nil {
			return
		}
		if id := dict.Intern(t); id != ID(i) {
			d.fail("duplicate term at ID %d", i)
			return
		}
	}
}

func (d *snapDecoder) readNamespaces(ns *rdf.Namespaces) {
	n := d.length(1<<20, "namespace")
	for i := 0; i < n && d.err == nil; i++ {
		prefix := d.str()
		iri := d.str()
		if d.err == nil {
			ns.Bind(prefix, iri)
		}
	}
	if base := d.str(); d.err == nil && base != "" {
		ns.SetBase(base)
	}
}

//feo:mutates
func (d *snapDecoder) readIndex(idx *index, nTerms uint64) {
	checkID := func(v uint64) ID {
		if d.err == nil && v >= nTerms {
			d.fail("index ID %d out of dictionary range %d", v, nTerms)
		}
		return ID(v)
	}
	idx.s = make([]*lvl2, nTerms)
	nOuter := d.length(nTerms, "outer key")
	for i := 0; i < nOuter && d.err == nil; i++ {
		a := checkID(d.uvarint())
		nInner := d.length(nTerms, "inner key")
		m1 := make(map[ID]*IDSet, nInner)
		for j := 0; j < nInner && d.err == nil; j++ {
			b := checkID(d.uvarint())
			set := d.readSet(nTerms)
			if d.err != nil {
				return
			}
			if set.Len() == 0 {
				d.fail("empty set at index level (%d,%d)", a, b)
				return
			}
			m1[b] = set
		}
		if d.err == nil {
			if idx.s[a] != nil {
				d.fail("duplicate outer key %d", a)
				return
			}
			idx.s[a] = &lvl2{m: m1}
		}
	}
}

func (d *snapDecoder) readSet(nTerms uint64) *IDSet {
	s := NewIDSet()
	nc := d.length(1<<16, "container")
	s.keys = make([]uint16, 0, nc)
	s.cs = make([]container, 0, nc)
	prevKey := -1
	for i := 0; i < nc && d.err == nil; i++ {
		key := d.length(1<<16-1, "container key")
		if d.err != nil {
			return s
		}
		if key <= prevKey {
			d.fail("container keys out of order (%d after %d)", key, prevKey)
			return s
		}
		prevKey = key
		form, err := d.r.ReadByte()
		if err != nil {
			d.fail("%v", err)
			return s
		}
		var c container
		switch form {
		case 0: // sorted array
			n := d.length(arrMaxLen, "array container")
			if d.err != nil {
				return s
			}
			if n == 0 {
				d.fail("empty array container")
				return s
			}
			c.arr = make([]uint16, n)
			buf := make([]byte, 2*n)
			if _, err := io.ReadFull(d.r, buf); err != nil {
				d.fail("%v", err)
				return s
			}
			prev := -1
			for k := range c.arr {
				v := binary.LittleEndian.Uint16(buf[2*k:])
				if int(v) <= prev {
					d.fail("array container values out of order")
					return s
				}
				prev = int(v)
				c.arr[k] = v
			}
			c.n = n
		case 1: // bitmap
			c.bmp = new([bitmapWords]uint64)
			buf := make([]byte, 8*bitmapWords)
			if _, err := io.ReadFull(d.r, buf); err != nil {
				d.fail("%v", err)
				return s
			}
			for w := range c.bmp {
				word := binary.LittleEndian.Uint64(buf[8*w:])
				c.bmp[w] = word
				c.n += bits.OnesCount64(word)
			}
			if c.n <= arrMaxLen {
				d.fail("bitmap container below array threshold (%d members)", c.n)
				return s
			}
		default:
			d.fail("unknown container form %d", form)
			return s
		}
		// Bound the container's largest member against the dictionary.
		base := uint64(key) << containerBits
		var maxLow uint16
		if c.bmp != nil {
			for w := bitmapWords - 1; w >= 0; w-- {
				if c.bmp[w] != 0 {
					maxLow = uint16(w<<6 + 63 - bits.LeadingZeros64(c.bmp[w]))
					break
				}
			}
		} else {
			maxLow = c.arr[len(c.arr)-1]
		}
		if base+uint64(maxLow) >= nTerms {
			d.fail("set member %d out of dictionary range %d", base+uint64(maxLow), nTerms)
			return s
		}
		s.keys = append(s.keys, uint16(key))
		s.cs = append(s.cs, c)
		s.n += c.n
	}
	return s
}
