// Package store provides an in-memory indexed RDF graph with MVCC
// snapshot reads.
//
// # Dictionary encoding
//
// The store is dictionary-encoded: a TermDict interns every distinct
// rdf.Term into a dense uint32 ID (append-only, first-seen order), and the
// three permutation indexes (SPO, POS, OSP) are nested levels whose
// innermost level is a roaring-style bitmap set (IDSet, bitset.go): 16-bit-
// keyed containers holding either a sorted uint16 array (sparse) or a
// 1024-word bitmap (dense). The outermost level is a dense slice indexed
// directly by the leading ID (IDs are dense, so the probe is a bounds check
// and an array load, cheaper than the hash probe it replaced); the middle
// level is a small map from the second ID to the bitmap set. Terms are
// encoded exactly once, on write; every probe, join, and iteration
// afterwards touches 4-byte integers instead of 4-field structs holding up
// to three IRI strings, and the innermost membership tests and set
// combinations run as binary searches or 64-bit word operations instead of
// hash probes. This is the standard access-path design of serious RDF
// engines (Jena TDB, RDF4J, Virtuoso) and is what makes the OWL RL
// reasoner's rule joins and the SPARQL evaluator's BGP joins cheap: the
// huge object/subject sets of rdf:type-heavy predicates compress to about
// one bit per member, and intersecting two of them (MatchSetID + IDSet.And)
// ANDs words rather than re-hashing elements.
//
// ID-level set iteration (ForEachID, ObjectsID, SubjectsID, …) is in
// ascending ID order — deterministic, unlike the map sets this layout
// replaced. Full scans additionally iterate the outer level in ascending
// leading-ID order. The term-level API still decodes and term-sorts at the
// boundary, so rendered artifacts are unchanged.
//
// Reads decode lazily: the Term-based API (ForEach, Match, Objects, …)
// materializes rdf.Term values only for the positions a caller actually
// receives, via a slice index into the dictionary — no allocation and no
// hashing on the read path. Hot consumers (the reasoner and the SPARQL
// evaluator) opt into the ID-level API (LookupID, ForEachID, CountID, …)
// and defer decoding until results leave the engine.
//
// The three permutation indexes answer every triple-pattern shape — any
// combination of bound and wildcard positions — by at most one nested
// walk without scanning unrelated triples.
//
// # Concurrency: MVCC snapshots, copy-on-write, and the writer protocol
//
// The graph is a single-writer, many-reader MVCC structure. A writer
// publishes immutable versioned snapshots (Publish, or the
// Begin/Commit/Rollback transaction surface in mvcc.go); readers pin a
// *Snapshot — an atomic pointer load, no lock — and read a frozen view of
// the graph that never changes, no matter what the writer does next.
// Readers never block the writer and the writer never blocks readers.
//
// Isolation is copy-on-write with epoch tagging: every index structure
// (outer slice, middle map, innermost IDSet, per-position count vector)
// carries the epoch at which it was last privately writable. Publishing a
// snapshot bumps the graph's epoch, freezing all current structures in
// place; the writer's next mutation of a frozen structure first copies it
// (a slice memcpy at the outer levels, a shallow map copy in the middle,
// and a container-aliasing cowClone at the set level — see bitset.go), so
// the snapshot keeps reading the original bits while the writer moves on.
// Structures already private to the current epoch mutate in place, so a
// graph that has never published — the load/reason boot path — pays nothing
// for any of this.
//
// The writer-side rules are unchanged from the pre-MVCC store: at most one
// goroutine may mutate (Add*, Merge, Remove, Subtract, Clear, InternTerm)
// at a time, and un-pinned reads of the live graph must not overlap a
// mutation. What MVCC adds is that *pinned* reads are always safe: any
// number of goroutines may read a published Snapshot concurrently with the
// writer, under -race, with no synchronization beyond the pin itself
// (internal/store/mvcc_test.go locks this in). The term dictionary is
// shared between live graph and snapshots and is safe for concurrent
// decode/lookup during writes (see TermDict).
//
// Two classes of consumer rely on this: applications serving many queries
// from pinned snapshots while a writer commits (feo.Session), and the
// SPARQL engine's parallel executor (internal/sparql), which fans a single
// query's joins, filters, and path searches across a worker pool probing
// one shared frozen view. Version() gives memo caches a cheap way to detect
// that any mutation happened; a frozen view's version never changes.
package store

import (
	"sort"
	"sync/atomic"

	"repro/internal/rdf"
)

// Wildcard is the zero rdf.Term; in pattern positions it matches any term.
var Wildcard = rdf.Term{}

// lvl2 is the middle level of one permutation index: the second-position
// map of one leading ID, with the COW epoch it was last privately writable
// at. A published snapshot may share the lvl2 pointer with the live graph;
// the writer shallow-copies the map before its first mutation in a new
// epoch.
type lvl2 struct {
	epoch uint64
	m     map[ID]*IDSet
}

// index is one permutation index: a dense slice over the first position
// (indexed directly by ID), a map level over the second, a bitmap set (see
// bitset.go) over the third. A missing level reads as nil; every read-only
// IDSet method treats a nil *IDSet as the empty set. The epoch marks when
// the outer slice was last privately writable (see the package doc on COW).
//
//feo:mutable-type
type index struct {
	epoch uint64
	s     []*lvl2
}

// get returns the innermost set for (a, b), or nil. Safe on any ID
// (including NoID) and on shared/frozen structures.
func (ix *index) get(a, b ID) *IDSet {
	ai := int(a)
	if ai >= len(ix.s) {
		return nil
	}
	l := ix.s[ai]
	if l == nil {
		return nil
	}
	return l.m[b]
}

// level returns the second-position map of leading ID a, or nil. Read-only.
func (ix *index) level(a ID) map[ID]*IDSet {
	ai := int(a)
	if ai >= len(ix.s) {
		return nil
	}
	l := ix.s[ai]
	if l == nil {
		return nil
	}
	return l.m
}

// levels counts the distinct leading IDs present in the index.
func (ix *index) levels() int {
	n := 0
	for _, l := range ix.s {
		if l != nil {
			n++
		}
	}
	return n
}

// counts is a per-position triple counter (counts.get(s) = triples with
// subject s, …), maintained on every add/remove so CountID answers any
// singly-bound pattern in O(1). The SPARQL planner's selectivity estimates
// probe these on every BGP, so they must not require an index walk. Dense
// int32 vector indexed by ID, COW-copied per epoch like the index levels.
//
//feo:mutable-type
type counts struct {
	epoch uint64
	v     []int32
}

func (c *counts) get(id ID) int {
	if int(id) >= len(c.v) {
		return 0
	}
	return int(c.v[id])
}

// Graph is a set of RDF triples with full permutation indexing over
// dictionary-encoded term IDs.
//
//feo:mutable-type
type Graph struct {
	dict  *TermDict
	spo   index
	pos   index
	osp   index
	subjN counts
	predN counts
	objN  counts
	n     int
	// version counts successful mutations (triple adds/removes and Clear).
	// Consumers that memoize derived state per graph snapshot — the SPARQL
	// engine's plan cache and per-query path-reachability caches — key or
	// guard on it; see Version.
	version uint64
	// captures holds the active change-capture logs (see capture.go). Empty
	// in the common case; every successful add/remove fans into each one.
	captures []*ChangeSet
	ns       *rdf.Namespaces

	// MVCC state; see mvcc.go. epoch counts publishes: any structure whose
	// epoch predates g.epoch may be shared with a published snapshot and
	// is COW-copied before its first mutation.
	// frozen marks an immutable snapshot view (mutations panic); dictN is
	// the dictionary length a frozen view was published at; owner backlinks
	// a frozen view to its Snapshot; published holds the live graph's
	// latest snapshot; txn is the open transaction, if any.
	epoch     uint64
	frozen    bool
	dictN     int
	owner     *Snapshot
	published atomic.Pointer[Snapshot]
	txn       *Txn
	// frozenAt is the version at the last epoch bump, valid only while
	// frozenValid: when frozenValid && frozenAt == version, every structure
	// the graph references is frozen (COW-protected) and nothing has been
	// written in place since. Begin uses this to pick the cheap
	// root-restore Rollback strategy; see Txn.
	frozenAt    uint64
	frozenValid bool
}

// New returns an empty graph with the repository's standard namespaces bound.
//
//feo:fresh
func New() *Graph {
	return &Graph{
		dict: NewTermDict(),
		ns:   rdf.StandardNamespaces(),
	}
}

// Namespaces returns the prefix mapping attached to the graph. Parsers add
// prefixes they encounter; serializers and human-facing output read them.
// A frozen snapshot view carries its own copy, taken at publish time.
//
//feo:frozen-safe
func (g *Graph) Namespaces() *rdf.Namespaces { return g.ns }

// Len returns the number of triples in the graph.
//
//feo:frozen-safe
func (g *Graph) Len() int { return g.n }

// Version returns a counter that increases on every successful mutation
// (Add*, Remove, Merge, Subtract, Clear — including mutations that go
// through Bulk or the reasoner). Two reads returning the same value
// bracket a span with no triple-level mutation, so caches of derived
// state (path reachability memos, query plans) can assert the graph they
// were built against is still the graph being read. A frozen snapshot
// view's version never changes, which is what lets the plan cache keep
// warm plans alive for as long as a snapshot stays pinned. InternTerm
// alone does not bump the version: interning never changes any pattern's
// matches.
//
//feo:frozen-safe
func (g *Graph) Version() uint64 { return g.version }

// ---- ID-level API (hot-path opt-ins) ----

// Dict exposes the graph's term dictionary. It is append-only and shared
// with published snapshots; see TermDict for its concurrency contract.
//
//feo:frozen-safe
func (g *Graph) Dict() *TermDict { return g.dict }

// LookupID encodes a term without interning it. A term the graph has never
// stored returns (NoID, false) — by construction no triple can match it.
//
//feo:frozen-safe
func (g *Graph) LookupID(t rdf.Term) (ID, bool) { return g.dict.Lookup(t) }

// InternTerm encodes a term, assigning a fresh ID when new. Invalid (zero)
// terms are not interned and return NoID. Writer-only: panics on a frozen
// snapshot view.
//
//feo:mutates
func (g *Graph) InternTerm(t rdf.Term) ID {
	if g.frozen {
		panic("store: InternTerm on a frozen snapshot view")
	}
	if !t.IsValid() {
		return NoID
	}
	return g.dict.Intern(t)
}

// TermOf decodes an ID previously issued by this graph's dictionary.
//
//feo:frozen-safe
//feo:decodes
func (g *Graph) TermOf(id ID) rdf.Term { return g.dict.Term(id) }

// KindOf returns the term kind behind id without copying the term.
//
//feo:frozen-safe
func (g *Graph) KindOf(id ID) rdf.TermKind { return g.dict.Kind(id) }

// IsResourceID reports whether id decodes to an IRI or blank node — the
// positions allowed as triple subjects and the guard many OWL rules need.
//
//feo:frozen-safe
func (g *Graph) IsResourceID(id ID) bool {
	k := g.dict.Kind(id)
	return k == rdf.KindIRI || k == rdf.KindBlank
}

// HasID reports whether the exact triple (s, p, o) is present, by ID.
// NoID in any position returns false (use ForEachID for patterns).
//
//feo:frozen-safe
func (g *Graph) HasID(s, p, o ID) bool {
	return g.spo.get(s, p).Contains(o)
}

// MatchSetID returns the graph's own bitmap set for a pattern with exactly
// two bound positions: the objects of (s, p, ?), the subjects of (?, p, o),
// or the predicates of (s, ?, o). Any other shape returns nil. The result
// is the live innermost index level — callers must treat it as read-only
// and follow the reader contract — which is what lets a join intersect two
// index levels word-by-word (IDSet.And) without copying either.
//
//feo:frozen-safe
func (g *Graph) MatchSetID(s, p, o ID) *IDSet {
	switch {
	case s != NoID && p != NoID && o == NoID:
		return g.spo.get(s, p)
	case s == NoID && p != NoID && o != NoID:
		return g.pos.get(p, o)
	case s != NoID && p == NoID && o != NoID:
		return g.osp.get(o, s)
	}
	return nil
}

// AddID inserts the triple (s, p, o) given already-interned IDs; it reports
// whether the triple was new. Kind constraints (subject resource, predicate
// IRI) are enforced against the dictionary.
//
//feo:mutates
func (g *Graph) AddID(s, p, o ID) bool {
	if s == NoID || p == NoID || o == NoID {
		return false
	}
	if !g.IsResourceID(s) || g.dict.Kind(p) != rdf.KindIRI {
		return false
	}
	return g.addIDs(s, p, o)
}

//feo:mutates
func (g *Graph) addIDs(s, p, o ID) bool {
	if g.frozen {
		panic("store: mutation on a frozen snapshot view")
	}
	// Duplicate probe before any COW work: re-derived triples (the
	// reasoner's common case) must not churn copies.
	if g.spo.get(s, p).Contains(o) {
		return false
	}
	g.indexAdd(&g.spo, s, p, o)
	g.indexAdd(&g.pos, p, o, s)
	g.indexAdd(&g.osp, o, s, p)
	g.countAdd(&g.subjN, s, 1)
	g.countAdd(&g.predN, p, 1)
	g.countAdd(&g.objN, o, 1)
	g.n++
	g.version++
	if len(g.captures) != 0 {
		g.notifyAdd(s, p, o)
	}
	return true
}

// mutableLvl2 returns the privately writable middle level for leading ID a
// of ix, COW-copying the outer slice and/or the map when they are still
// shared with a published snapshot (epoch predates g.epoch), and growing
// the outer slice when a is beyond it.
//
//feo:mutates
func (g *Graph) mutableLvl2(ix *index, a ID) *lvl2 {
	ai := int(a)
	if ix.epoch != g.epoch {
		n := len(ix.s)
		if ai >= n {
			n = ai + 1
		}
		s := make([]*lvl2, n)
		copy(s, ix.s)
		ix.s, ix.epoch = s, g.epoch
	} else if ai >= len(ix.s) {
		ix.s = append(ix.s, make([]*lvl2, ai+1-len(ix.s))...)
	}
	l := ix.s[ai]
	switch {
	case l == nil:
		l = &lvl2{epoch: g.epoch, m: make(map[ID]*IDSet, 1)}
		ix.s[ai] = l
	case l.epoch != g.epoch:
		m := make(map[ID]*IDSet, len(l.m)+1)
		//feo:unordered // COW map clone
		for k, v := range l.m {
			m[k] = v
		}
		l = &lvl2{epoch: g.epoch, m: m}
		ix.s[ai] = l
	}
	return l
}

// indexAdd inserts c into the (a, b) set of ix, COW-copying shared levels.
// The caller has already established the triple is absent.
//
//feo:mutates
func (g *Graph) indexAdd(ix *index, a, b, c ID) {
	l := g.mutableLvl2(ix, a)
	set := l.m[b]
	switch {
	case set == nil:
		set = &IDSet{epoch: g.epoch}
		l.m[b] = set
	case set.epoch != g.epoch:
		set = set.cowClone(g.epoch)
		l.m[b] = set
	}
	set.Add(c)
}

// indexRemove deletes c from the (a, b) set of ix, COW-copying shared
// levels and pruning emptied levels. The caller has already established the
// triple is present.
//
//feo:mutates
func (g *Graph) indexRemove(ix *index, a, b, c ID) {
	l := g.mutableLvl2(ix, a)
	set := l.m[b]
	if set.epoch != g.epoch {
		set = set.cowClone(g.epoch)
		l.m[b] = set
	}
	set.Remove(c)
	if set.Len() == 0 {
		delete(l.m, b)
		if len(l.m) == 0 {
			ix.s[a] = nil
		}
	}
}

// countAdd adjusts one per-position counter, COW-copying the vector when it
// is still shared with a published snapshot.
//
//feo:mutates
func (g *Graph) countAdd(c *counts, id ID, d int32) {
	ai := int(id)
	if c.epoch != g.epoch {
		n := len(c.v)
		if ai >= n {
			n = ai + 1
		}
		v := make([]int32, n)
		copy(v, c.v)
		c.v, c.epoch = v, g.epoch
	} else if ai >= len(c.v) {
		c.v = append(c.v, make([]int32, ai+1-len(c.v))...)
	}
	c.v[ai] += d
}

// ForEachID calls fn for every ID triple matching the pattern (s, p, o),
// where NoID matches anything. Iteration stops early when fn returns false.
// The innermost (bitmap) level iterates in ascending ID order and full
// scans walk the outer level in ascending leading-ID order; the middle map
// level remains unordered. The callback must not mutate the graph.
//
//feo:frozen-safe
func (g *Graph) ForEachID(s, p, o ID, fn func(s, p, o ID) bool) {
	sB, pB, oB := s != NoID, p != NoID, o != NoID
	switch {
	case sB && pB && oB:
		if g.HasID(s, p, o) {
			fn(s, p, o)
		}
	case sB && pB: // (s, p, ?) — SPO
		g.spo.get(s, p).ForEach(func(obj ID) bool { return fn(s, p, obj) })
	case sB && oB: // (s, ?, o) — OSP
		g.osp.get(o, s).ForEach(func(pred ID) bool { return fn(s, pred, o) })
	case pB && oB: // (?, p, o) — POS
		g.pos.get(p, o).ForEach(func(subj ID) bool { return fn(subj, p, o) })
	case sB: // (s, ?, ?) — SPO
		for pred, objs := range g.spo.level(s) {
			if !objs.ForEach(func(obj ID) bool { return fn(s, pred, obj) }) {
				return
			}
		}
	case pB: // (?, p, ?) — POS
		for obj, subjs := range g.pos.level(p) {
			if !subjs.ForEach(func(subj ID) bool { return fn(subj, p, obj) }) {
				return
			}
		}
	case oB: // (?, ?, o) — OSP
		for subj, preds := range g.osp.level(o) {
			if !preds.ForEach(func(pred ID) bool { return fn(subj, pred, o) }) {
				return
			}
		}
	default: // full scan
		for si, l := range g.spo.s {
			if l == nil {
				continue
			}
			subj := ID(si)
			for pred, objs := range l.m {
				if !objs.ForEach(func(obj ID) bool { return fn(subj, pred, obj) }) {
					return
				}
			}
		}
	}
}

// CountID returns the number of triples matching the ID pattern without
// iterating them: fully and doubly bound shapes are a single len() of the
// underlying index level; singly bound shapes read a per-position counter.
//
//feo:frozen-safe
func (g *Graph) CountID(s, p, o ID) int {
	sB, pB, oB := s != NoID, p != NoID, o != NoID
	switch {
	case sB && pB && oB:
		if g.HasID(s, p, o) {
			return 1
		}
		return 0
	case sB && pB:
		return g.spo.get(s, p).Len()
	case sB && oB:
		return g.osp.get(o, s).Len()
	case pB && oB:
		return g.pos.get(p, o).Len()
	case sB:
		return g.subjN.get(s)
	case pB:
		return g.predN.get(p)
	case oB:
		return g.objN.get(o)
	default:
		return g.n
	}
}

// ObjectsID returns the object IDs of triples (s, p, *) in ascending ID
// order. The reasoner's rule joins use this to avoid the term decode and
// sort that Objects pays for.
//
//feo:frozen-safe
func (g *Graph) ObjectsID(s, p ID) []ID {
	objs := g.spo.get(s, p)
	if objs.Len() == 0 {
		return nil
	}
	return objs.AppendTo(make([]ID, 0, objs.Len()))
}

// ForEachObjectID calls fn for every object ID of triples (s, p, *), in
// ascending ID order, stopping early when fn returns false. It is the
// allocation-free form of ObjectsID, for hot loops — the SPARQL engine's
// path BFS expands frontiers with it — that want neither a fresh slice per
// probe nor a full triple callback.
//
//feo:frozen-safe
func (g *Graph) ForEachObjectID(s, p ID, fn func(o ID) bool) {
	g.spo.get(s, p).ForEach(fn)
}

// ForEachSubjectID calls fn for every subject ID of triples (*, p, o), in
// ascending ID order, stopping early when fn returns false. The
// allocation-free form of SubjectsID.
//
//feo:frozen-safe
func (g *Graph) ForEachSubjectID(p, o ID, fn func(s ID) bool) {
	g.pos.get(p, o).ForEach(fn)
}

// SubjectsID returns the subject IDs of triples (*, p, o) in ascending ID
// order.
//
//feo:frozen-safe
func (g *Graph) SubjectsID(p, o ID) []ID {
	subjs := g.pos.get(p, o)
	if subjs.Len() == 0 {
		return nil
	}
	return subjs.AppendTo(make([]ID, 0, subjs.Len()))
}

// FirstObjectID returns one object ID of (s, p, *), or NoID if none. When
// several objects exist the smallest decoded term (per rdf.Compare) wins, so
// results are deterministic and agree with FirstObject. The dominant case —
// a single object, as every functional property and rdf:first/rdf:rest
// chain produces — answers straight from the bitmap without decoding any
// term; larger sets decode each candidate exactly once.
//
//feo:frozen-safe
func (g *Graph) FirstObjectID(s, p ID) ID {
	objs := g.spo.get(s, p)
	if objs.Len() <= 1 {
		o, ok := objs.Min()
		if !ok {
			return NoID
		}
		return o
	}
	best := NoID
	var bestTerm rdf.Term
	objs.ForEach(func(o ID) bool {
		t := g.dict.Term(o)
		if best == NoID || rdf.Compare(t, bestTerm) < 0 {
			best, bestTerm = o, t
		}
		return true
	})
	return best
}

// ---- Term-level API (encode on write, decode lazily on read) ----

// Add inserts the triple (s, p, o); it reports whether the triple was new.
// Invalid triples (per rdf.Triple.Valid) are rejected and return false.
//
//feo:mutates
func (g *Graph) Add(s, p, o rdf.Term) bool {
	t := rdf.Triple{S: s, P: p, O: o}
	if !t.Valid() {
		return false
	}
	return g.addIDs(g.dict.Intern(s), g.dict.Intern(p), g.dict.Intern(o))
}

// AddTriple inserts t; it reports whether the triple was new.
//
//feo:mutates
func (g *Graph) AddTriple(t rdf.Triple) bool { return g.Add(t.S, t.P, t.O) }

// AddAll inserts every triple in ts and returns the number actually added.
//
//feo:mutates
func (g *Graph) AddAll(ts []rdf.Triple) int {
	added := 0
	for _, t := range ts {
		if g.AddTriple(t) {
			added++
		}
	}
	return added
}

// Remove deletes the triple (s, p, o); it reports whether it was present.
// The terms stay interned: IDs are never reused or reassigned.
//
//feo:mutates
func (g *Graph) Remove(s, p, o rdf.Term) bool {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return false
	}
	oID, ok := g.dict.Lookup(o)
	if !ok {
		return false
	}
	return g.removeIDs(sID, pID, oID)
}

//feo:mutates
func (g *Graph) removeIDs(s, p, o ID) bool {
	if g.frozen {
		panic("store: mutation on a frozen snapshot view")
	}
	if !g.spo.get(s, p).Contains(o) {
		return false
	}
	g.indexRemove(&g.spo, s, p, o)
	g.indexRemove(&g.pos, p, o, s)
	g.indexRemove(&g.osp, o, s, p)
	g.countAdd(&g.subjN, s, -1)
	g.countAdd(&g.predN, p, -1)
	g.countAdd(&g.objN, o, -1)
	g.n--
	g.version++
	if len(g.captures) != 0 {
		g.notifyRemove(s, p, o)
	}
	return true
}

// Has reports whether the exact triple (s, p, o) is present. Wildcards are
// not interpreted; use Exists for pattern queries.
//
//feo:frozen-safe
func (g *Graph) Has(s, p, o rdf.Term) bool {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return false
	}
	oID, ok := g.dict.Lookup(o)
	if !ok {
		return false
	}
	return g.HasID(sID, pID, oID)
}

// encodePattern maps a Term pattern position to an ID pattern position:
// wildcard terms become NoID, known terms their ID. ok is false when the
// term is bound but unknown to the dictionary — no triple can match.
//
//feo:frozen-safe
func (g *Graph) encodePattern(t rdf.Term) (ID, bool) {
	if !t.IsValid() {
		return NoID, true
	}
	id, ok := g.dict.Lookup(t)
	return id, ok
}

// ForEach calls fn for every triple matching the pattern (s, p, o), where
// the zero Term (Wildcard) matches anything. Iteration stops early when fn
// returns false. The callback must not mutate the graph.
//
//feo:frozen-safe
func (g *Graph) ForEach(s, p, o rdf.Term, fn func(rdf.Triple) bool) {
	sID, ok := g.encodePattern(s)
	if !ok {
		return
	}
	pID, ok := g.encodePattern(p)
	if !ok {
		return
	}
	oID, ok := g.encodePattern(o)
	if !ok {
		return
	}
	g.ForEachID(sID, pID, oID, func(si, pi, oi ID) bool {
		// Reuse the caller's bound terms; decode only wildcard positions.
		t := rdf.Triple{S: s, P: p, O: o}
		if sID == NoID {
			t.S = g.dict.Term(si)
		}
		if pID == NoID {
			t.P = g.dict.Term(pi)
		}
		if oID == NoID {
			t.O = g.dict.Term(oi)
		}
		return fn(t)
	})
}

// Match returns all triples matching the pattern, in unspecified order.
//
//feo:frozen-safe
func (g *Graph) Match(s, p, o rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	g.ForEach(s, p, o, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Exists reports whether any triple matches the pattern. Like Count, it
// answers from index-level sizes without iterating triples.
//
//feo:frozen-safe
func (g *Graph) Exists(s, p, o rdf.Term) bool {
	sID, ok := g.encodePattern(s)
	if !ok {
		return false
	}
	pID, ok := g.encodePattern(p)
	if !ok {
		return false
	}
	oID, ok := g.encodePattern(o)
	if !ok {
		return false
	}
	sB, pB, oB := sID != NoID, pID != NoID, oID != NoID
	switch {
	case sB && pB && oB:
		return g.HasID(sID, pID, oID)
	case sB && pB:
		return g.spo.get(sID, pID).Len() > 0
	case sB && oB:
		return g.osp.get(oID, sID).Len() > 0
	case pB && oB:
		return g.pos.get(pID, oID).Len() > 0
	case sB:
		return g.subjN.get(sID) > 0
	case pB:
		return g.predN.get(pID) > 0
	case oB:
		return g.objN.get(oID) > 0
	default:
		return g.n > 0
	}
}

// Count returns the number of triples matching the pattern without
// materializing or iterating them (a len() of the right index level).
//
//feo:frozen-safe
func (g *Graph) Count(s, p, o rdf.Term) int {
	sID, ok := g.encodePattern(s)
	if !ok {
		return 0
	}
	pID, ok := g.encodePattern(p)
	if !ok {
		return 0
	}
	oID, ok := g.encodePattern(o)
	if !ok {
		return 0
	}
	return g.CountID(sID, pID, oID)
}

// decodeSorted decodes an ID set to terms sorted per rdf.Compare. The set
// iterates in ID order but the output contract is term order, so the sort
// remains (ID order is first-seen order, not term order).
//
//feo:frozen-safe
//feo:decodes
func (g *Graph) decodeSorted(set *IDSet) []rdf.Term {
	out := make([]rdf.Term, 0, set.Len())
	set.ForEach(func(id ID) bool {
		out = append(out, g.dict.Term(id))
		return true
	})
	sortTerms(out)
	return out
}

// Objects returns the distinct objects of triples (s, p, *), sorted.
//
//feo:frozen-safe
func (g *Graph) Objects(s, p rdf.Term) []rdf.Term {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return nil
	}
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return nil
	}
	return g.decodeSorted(g.spo.get(sID, pID))
}

// FirstObject returns one object of (s, p, *), or the zero Term if none.
// When several objects exist the smallest (per rdf.Compare) is returned so
// results are deterministic and agree with FirstObjectID. This is a single
// O(n) min-scan, not a sort; the singleton case decodes exactly one term.
//
//feo:frozen-safe
func (g *Graph) FirstObject(s, p rdf.Term) rdf.Term {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return rdf.Term{}
	}
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return rdf.Term{}
	}
	best := g.FirstObjectID(sID, pID)
	if best == NoID {
		return rdf.Term{}
	}
	return g.dict.Term(best)
}

// Subjects returns the distinct subjects of triples (*, p, o), sorted.
//
//feo:frozen-safe
func (g *Graph) Subjects(p, o rdf.Term) []rdf.Term {
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return nil
	}
	oID, ok := g.dict.Lookup(o)
	if !ok {
		return nil
	}
	return g.decodeSorted(g.pos.get(pID, oID))
}

// Predicates returns the distinct predicates of triples (s, *, o), sorted.
//
//feo:frozen-safe
func (g *Graph) Predicates(s, o rdf.Term) []rdf.Term {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return nil
	}
	oID, ok := g.dict.Lookup(o)
	if !ok {
		return nil
	}
	return g.decodeSorted(g.osp.get(oID, sID))
}

// TypesOf returns the asserted rdf:type objects of s, sorted.
//
//feo:frozen-safe
func (g *Graph) TypesOf(s rdf.Term) []rdf.Term {
	return g.Objects(s, rdf.TypeIRI)
}

// IsA reports whether (s rdf:type class) is present.
//
//feo:frozen-safe
func (g *Graph) IsA(s, class rdf.Term) bool {
	return g.Has(s, rdf.TypeIRI, class)
}

// InstancesOf returns the subjects asserted to have rdf:type class, sorted.
//
//feo:frozen-safe
func (g *Graph) InstancesOf(class rdf.Term) []rdf.Term {
	return g.Subjects(rdf.TypeIRI, class)
}

// Triples returns every triple in the graph sorted by subject, predicate,
// object. Intended for serialization and tests; large graphs should iterate
// with ForEach instead.
//
//feo:frozen-safe
func (g *Graph) Triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, g.n)
	g.ForEachID(NoID, NoID, NoID, func(s, p, o ID) bool {
		out = append(out, rdf.Triple{S: g.dict.Term(s), P: g.dict.Term(p), O: g.dict.Term(o)})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return compareTriples(out[i], out[j]) < 0 })
	return out
}

// SubjectSet returns the distinct subjects in the graph, sorted.
//
//feo:frozen-safe
func (g *Graph) SubjectSet() []rdf.Term {
	out := make([]rdf.Term, 0, g.spo.levels())
	for si, l := range g.spo.s {
		if l != nil {
			out = append(out, g.dict.Term(ID(si)))
		}
	}
	sortTerms(out)
	return out
}

// PredicateSet returns the distinct predicates in the graph, sorted.
//
//feo:frozen-safe
func (g *Graph) PredicateSet() []rdf.Term {
	out := make([]rdf.Term, 0, g.pos.levels())
	for pi, l := range g.pos.s {
		if l != nil {
			out = append(out, g.dict.Term(ID(pi)))
		}
	}
	sortTerms(out)
	return out
}

// Clone returns a deep copy of the graph. The dictionary is copied too, so
// every ID valid for g decodes to the same term in the clone (IDs are
// stable across Clone); the nested indexes are rebuilt without re-encoding
// a single term. The clone is an independent live graph: it shares no
// storage with g (unlike a Snapshot view), starts with no published
// snapshot, and may be mutated by its own writer.
//
//feo:frozen-safe
//feo:fresh
func (g *Graph) Clone() *Graph {
	out := &Graph{
		dict:  g.dict.Clone(),
		spo:   cloneIndex(g.spo),
		pos:   cloneIndex(g.pos),
		osp:   cloneIndex(g.osp),
		subjN: cloneCounts(g.subjN),
		predN: cloneCounts(g.predN),
		objN:  cloneCounts(g.objN),
		n:     g.n,
		// The clone starts its own mutation history; versions are only
		// comparable against the same Graph value.
		version: g.version,
		ns:      g.ns.Clone(),
	}
	return out
}

func cloneCounts(c counts) counts {
	return counts{v: append([]int32(nil), c.v...)}
}

func cloneIndex(ix index) index {
	out := index{s: make([]*lvl2, len(ix.s))}
	for ai, l := range ix.s {
		if l == nil {
			continue
		}
		m := make(map[ID]*IDSet, len(l.m))
		//feo:unordered // index clone
		for b, set := range l.m {
			m[b] = set.Clone()
		}
		out.s[ai] = &lvl2{m: m}
	}
	return out
}

// Merge adds every triple of other into g and returns the number added.
// Terms of other are re-interned into g's dictionary through a one-pass
// remap table, so each distinct term is hashed once regardless of how many
// triples mention it.
// Iteration order over other does not affect the result: the merged
// graph is a triple set.
//
//feo:mutates
//feo:unordered
func (g *Graph) Merge(other *Graph) int {
	if other == nil {
		return 0
	}
	remap := make(map[ID]ID, other.dict.Len())
	mapID := func(id ID) ID {
		if to, ok := remap[id]; ok {
			return to
		}
		to := g.dict.Intern(other.dict.Term(id))
		remap[id] = to
		return to
	}
	added := 0
	other.ForEachID(NoID, NoID, NoID, func(s, p, o ID) bool {
		if g.addIDs(mapID(s), mapID(p), mapID(o)) {
			added++
		}
		return true
	})
	for _, prefix := range other.ns.Prefixes() {
		if iri, ok := other.ns.IRIFor(prefix); ok {
			if _, bound := g.ns.IRIFor(prefix); !bound {
				g.ns.Bind(prefix, iri)
			}
		}
	}
	return added
}

// Subtract removes every triple of other from g and returns the number removed.
//
//feo:mutates
func (g *Graph) Subtract(other *Graph) int {
	if other == nil {
		return 0
	}
	removed := 0
	other.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		if g.Remove(t.S, t.P, t.O) {
			removed++
		}
		return true
	})
	return removed
}

// Equal reports whether g and other contain exactly the same triples.
// Blank node labels are compared literally (no isomorphism check); use
// Isomorphic for bnode-invariant comparison.
//
//feo:frozen-safe
func (g *Graph) Equal(other *Graph) bool {
	if other == nil || g.n != other.n {
		return false
	}
	eq := true
	g.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		if !other.Has(t.S, t.P, t.O) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// Clear removes all triples. The dictionary is reset too; IDs issued
// before Clear must not be used afterwards. The mutation version advances
// (it never resets), so memoized consumers observe the wipe. Published
// snapshots are unaffected: they keep the old dictionary and indexes.
//
//feo:mutates
func (g *Graph) Clear() {
	if g.frozen {
		panic("store: mutation on a frozen snapshot view")
	}
	g.dict = NewTermDict()
	g.spo = index{epoch: g.epoch}
	g.pos = index{epoch: g.epoch}
	g.osp = index{epoch: g.epoch}
	g.subjN = counts{epoch: g.epoch}
	g.predN = counts{epoch: g.epoch}
	g.objN = counts{epoch: g.epoch}
	g.n = 0
	g.version++
	if len(g.captures) != 0 {
		g.notifyClear()
	}
}

// ReadList reads an RDF collection (rdf:first / rdf:rest chain) starting at
// head and returns its members in order. Malformed lists return the members
// collected before the defect, and ok=false.
//
//feo:frozen-safe
func (g *Graph) ReadList(head rdf.Term) (members []rdf.Term, ok bool) {
	seen := make(map[rdf.Term]bool)
	for head != rdf.NilIRI {
		if !head.IsValid() || seen[head] {
			return members, false
		}
		seen[head] = true
		first := g.FirstObject(head, rdf.FirstIRI)
		if !first.IsValid() {
			return members, false
		}
		members = append(members, first)
		head = g.FirstObject(head, rdf.RestIRI)
	}
	return members, true
}

// ReadListID is ReadList at the dictionary-ID level: it reads the
// collection starting at head without decoding a single term. Malformed
// lists return the members collected before the defect, and ok=false.
//
//feo:frozen-safe
func (g *Graph) ReadListID(head ID) (members []ID, ok bool) {
	nilID, hasNil := g.dict.Lookup(rdf.NilIRI)
	firstID, hasFirst := g.dict.Lookup(rdf.FirstIRI)
	restID, hasRest := g.dict.Lookup(rdf.RestIRI)
	seen := make(map[ID]bool)
	for !hasNil || head != nilID {
		if head == NoID || seen[head] || !hasFirst || !hasRest {
			return members, false
		}
		seen[head] = true
		first := g.FirstObjectID(head, firstID)
		if first == NoID {
			return members, false
		}
		members = append(members, first)
		head = g.FirstObjectID(head, restID)
	}
	return members, true
}

// AddList writes members as an RDF collection using fresh blank nodes with
// the given label prefix and returns the head term (rdf:nil for an empty
// list).
//
//feo:mutates
func (g *Graph) AddList(labelPrefix string, members []rdf.Term) rdf.Term {
	if len(members) == 0 {
		return rdf.NilIRI
	}
	head := rdf.NewBlank(labelPrefix + "0")
	cur := head
	for i, m := range members {
		g.Add(cur, rdf.FirstIRI, m)
		if i == len(members)-1 {
			g.Add(cur, rdf.RestIRI, rdf.NilIRI)
		} else {
			next := rdf.NewBlank(labelPrefix + itoa(i+1))
			g.Add(cur, rdf.RestIRI, next)
			cur = next
		}
	}
	return head
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func sortTerms(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool { return rdf.Compare(ts[i], ts[j]) < 0 })
}

func compareTriples(a, b rdf.Triple) int {
	if c := rdf.Compare(a.S, b.S); c != 0 {
		return c
	}
	if c := rdf.Compare(a.P, b.P); c != 0 {
		return c
	}
	return rdf.Compare(a.O, b.O)
}
