// Package store provides an in-memory indexed RDF graph.
//
// Graph maintains three permutation indexes (SPO, POS, OSP) so that every
// triple-pattern shape — any combination of bound and wildcard positions —
// is answered by at most one nested-map walk without scanning unrelated
// triples. This is the same access-path design used by in-memory models in
// Jena and RDF4J and is what both the OWL RL reasoner and the SPARQL
// evaluator in this repository are built on.
//
// A Graph is not safe for concurrent mutation. Concurrent readers are safe
// provided no writer is active; the typical lifecycle (load, reason, then
// query from many goroutines) needs no locking.
package store

import (
	"sort"

	"repro/internal/rdf"
)

// Wildcard is the zero rdf.Term; in pattern positions it matches any term.
var Wildcard = rdf.Term{}

type termSet map[rdf.Term]struct{}

type index map[rdf.Term]map[rdf.Term]termSet

// Graph is a set of RDF triples with full permutation indexing.
type Graph struct {
	spo index
	pos index
	osp index
	n   int
	ns  *rdf.Namespaces
}

// New returns an empty graph with the repository's standard namespaces bound.
func New() *Graph {
	return &Graph{
		spo: make(index),
		pos: make(index),
		osp: make(index),
		ns:  rdf.StandardNamespaces(),
	}
}

// Namespaces returns the prefix mapping attached to the graph. Parsers add
// prefixes they encounter; serializers and human-facing output read them.
func (g *Graph) Namespaces() *rdf.Namespaces { return g.ns }

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// Add inserts the triple (s, p, o); it reports whether the triple was new.
// Invalid triples (per rdf.Triple.Valid) are rejected and return false.
func (g *Graph) Add(s, p, o rdf.Term) bool {
	t := rdf.Triple{S: s, P: p, O: o}
	if !t.Valid() {
		return false
	}
	if !indexAdd(g.spo, s, p, o) {
		return false
	}
	indexAdd(g.pos, p, o, s)
	indexAdd(g.osp, o, s, p)
	g.n++
	return true
}

// AddTriple inserts t; it reports whether the triple was new.
func (g *Graph) AddTriple(t rdf.Triple) bool { return g.Add(t.S, t.P, t.O) }

// AddAll inserts every triple in ts and returns the number actually added.
func (g *Graph) AddAll(ts []rdf.Triple) int {
	added := 0
	for _, t := range ts {
		if g.AddTriple(t) {
			added++
		}
	}
	return added
}

// Remove deletes the triple (s, p, o); it reports whether it was present.
func (g *Graph) Remove(s, p, o rdf.Term) bool {
	if !indexRemove(g.spo, s, p, o) {
		return false
	}
	indexRemove(g.pos, p, o, s)
	indexRemove(g.osp, o, s, p)
	g.n--
	return true
}

// Has reports whether the exact triple (s, p, o) is present. Wildcards are
// not interpreted; use Exists for pattern queries.
func (g *Graph) Has(s, p, o rdf.Term) bool {
	m1, ok := g.spo[s]
	if !ok {
		return false
	}
	m2, ok := m1[p]
	if !ok {
		return false
	}
	_, ok = m2[o]
	return ok
}

func indexAdd(idx index, a, b, c rdf.Term) bool {
	m1, ok := idx[a]
	if !ok {
		m1 = make(map[rdf.Term]termSet)
		idx[a] = m1
	}
	m2, ok := m1[b]
	if !ok {
		m2 = make(termSet)
		m1[b] = m2
	}
	if _, ok := m2[c]; ok {
		return false
	}
	m2[c] = struct{}{}
	return true
}

func indexRemove(idx index, a, b, c rdf.Term) bool {
	m1, ok := idx[a]
	if !ok {
		return false
	}
	m2, ok := m1[b]
	if !ok {
		return false
	}
	if _, ok := m2[c]; !ok {
		return false
	}
	delete(m2, c)
	if len(m2) == 0 {
		delete(m1, b)
		if len(m1) == 0 {
			delete(idx, a)
		}
	}
	return true
}

// ForEach calls fn for every triple matching the pattern (s, p, o), where
// the zero Term (Wildcard) matches anything. Iteration stops early when fn
// returns false. The callback must not mutate the graph.
func (g *Graph) ForEach(s, p, o rdf.Term, fn func(rdf.Triple) bool) {
	sB, pB, oB := s.IsValid(), p.IsValid(), o.IsValid()
	switch {
	case sB && pB && oB:
		if g.Has(s, p, o) {
			fn(rdf.Triple{S: s, P: p, O: o})
		}
	case sB && pB: // (s, p, ?) — SPO
		for obj := range g.spo[s][p] {
			if !fn(rdf.Triple{S: s, P: p, O: obj}) {
				return
			}
		}
	case sB && oB: // (s, ?, o) — OSP
		for pred := range g.osp[o][s] {
			if !fn(rdf.Triple{S: s, P: pred, O: o}) {
				return
			}
		}
	case pB && oB: // (?, p, o) — POS
		for subj := range g.pos[p][o] {
			if !fn(rdf.Triple{S: subj, P: p, O: o}) {
				return
			}
		}
	case sB: // (s, ?, ?) — SPO
		for pred, objs := range g.spo[s] {
			for obj := range objs {
				if !fn(rdf.Triple{S: s, P: pred, O: obj}) {
					return
				}
			}
		}
	case pB: // (?, p, ?) — POS
		for obj, subjs := range g.pos[p] {
			for subj := range subjs {
				if !fn(rdf.Triple{S: subj, P: p, O: obj}) {
					return
				}
			}
		}
	case oB: // (?, ?, o) — OSP
		for subj, preds := range g.osp[o] {
			for pred := range preds {
				if !fn(rdf.Triple{S: subj, P: pred, O: o}) {
					return
				}
			}
		}
	default: // full scan
		for subj, m1 := range g.spo {
			for pred, objs := range m1 {
				for obj := range objs {
					if !fn(rdf.Triple{S: subj, P: pred, O: obj}) {
						return
					}
				}
			}
		}
	}
}

// Match returns all triples matching the pattern, in unspecified order.
func (g *Graph) Match(s, p, o rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	g.ForEach(s, p, o, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Exists reports whether any triple matches the pattern.
func (g *Graph) Exists(s, p, o rdf.Term) bool {
	found := false
	g.ForEach(s, p, o, func(rdf.Triple) bool {
		found = true
		return false
	})
	return found
}

// Count returns the number of triples matching the pattern without
// materializing them.
func (g *Graph) Count(s, p, o rdf.Term) int {
	n := 0
	g.ForEach(s, p, o, func(rdf.Triple) bool {
		n++
		return true
	})
	return n
}

// Objects returns the distinct objects of triples (s, p, *).
func (g *Graph) Objects(s, p rdf.Term) []rdf.Term {
	objs := g.spo[s][p]
	out := make([]rdf.Term, 0, len(objs))
	for o := range objs {
		out = append(out, o)
	}
	sortTerms(out)
	return out
}

// FirstObject returns one object of (s, p, *), or the zero Term if none.
// When several objects exist the smallest (per rdf.Compare) is returned so
// results are deterministic.
func (g *Graph) FirstObject(s, p rdf.Term) rdf.Term {
	objs := g.Objects(s, p)
	if len(objs) == 0 {
		return rdf.Term{}
	}
	return objs[0]
}

// Subjects returns the distinct subjects of triples (*, p, o).
func (g *Graph) Subjects(p, o rdf.Term) []rdf.Term {
	subjs := g.pos[p][o]
	out := make([]rdf.Term, 0, len(subjs))
	for s := range subjs {
		out = append(out, s)
	}
	sortTerms(out)
	return out
}

// Predicates returns the distinct predicates of triples (s, *, o).
func (g *Graph) Predicates(s, o rdf.Term) []rdf.Term {
	preds := g.osp[o][s]
	out := make([]rdf.Term, 0, len(preds))
	for p := range preds {
		out = append(out, p)
	}
	sortTerms(out)
	return out
}

// TypesOf returns the asserted rdf:type objects of s, sorted.
func (g *Graph) TypesOf(s rdf.Term) []rdf.Term {
	return g.Objects(s, rdf.TypeIRI)
}

// IsA reports whether (s rdf:type class) is present.
func (g *Graph) IsA(s, class rdf.Term) bool {
	return g.Has(s, rdf.TypeIRI, class)
}

// InstancesOf returns the subjects asserted to have rdf:type class, sorted.
func (g *Graph) InstancesOf(class rdf.Term) []rdf.Term {
	return g.Subjects(rdf.TypeIRI, class)
}

// Triples returns every triple in the graph sorted by subject, predicate,
// object. Intended for serialization and tests; large graphs should iterate
// with ForEach instead.
func (g *Graph) Triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, g.n)
	g.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return compareTriples(out[i], out[j]) < 0 })
	return out
}

// SubjectSet returns the distinct subjects in the graph, sorted.
func (g *Graph) SubjectSet() []rdf.Term {
	out := make([]rdf.Term, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, s)
	}
	sortTerms(out)
	return out
}

// PredicateSet returns the distinct predicates in the graph, sorted.
func (g *Graph) PredicateSet() []rdf.Term {
	out := make([]rdf.Term, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, p)
	}
	sortTerms(out)
	return out
}

// Clone returns a deep copy of the graph (indexes rebuilt, namespaces copied).
func (g *Graph) Clone() *Graph {
	out := New()
	out.ns = g.ns.Clone()
	g.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		out.AddTriple(t)
		return true
	})
	return out
}

// Merge adds every triple of other into g and returns the number added.
func (g *Graph) Merge(other *Graph) int {
	if other == nil {
		return 0
	}
	added := 0
	other.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		if g.AddTriple(t) {
			added++
		}
		return true
	})
	for _, prefix := range other.ns.Prefixes() {
		if iri, ok := other.ns.IRIFor(prefix); ok {
			if _, bound := g.ns.IRIFor(prefix); !bound {
				g.ns.Bind(prefix, iri)
			}
		}
	}
	return added
}

// Subtract removes every triple of other from g and returns the number removed.
func (g *Graph) Subtract(other *Graph) int {
	if other == nil {
		return 0
	}
	removed := 0
	other.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		if g.Remove(t.S, t.P, t.O) {
			removed++
		}
		return true
	})
	return removed
}

// Equal reports whether g and other contain exactly the same triples.
// Blank node labels are compared literally (no isomorphism check); use
// Isomorphic for bnode-invariant comparison.
func (g *Graph) Equal(other *Graph) bool {
	if other == nil || g.n != other.n {
		return false
	}
	eq := true
	g.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		if !other.Has(t.S, t.P, t.O) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// Clear removes all triples.
func (g *Graph) Clear() {
	g.spo = make(index)
	g.pos = make(index)
	g.osp = make(index)
	g.n = 0
}

// ReadList reads an RDF collection (rdf:first / rdf:rest chain) starting at
// head and returns its members in order. Malformed lists return the members
// collected before the defect, and ok=false.
func (g *Graph) ReadList(head rdf.Term) (members []rdf.Term, ok bool) {
	seen := make(map[rdf.Term]bool)
	for head != rdf.NilIRI {
		if !head.IsValid() || seen[head] {
			return members, false
		}
		seen[head] = true
		first := g.FirstObject(head, rdf.FirstIRI)
		if !first.IsValid() {
			return members, false
		}
		members = append(members, first)
		head = g.FirstObject(head, rdf.RestIRI)
	}
	return members, true
}

// AddList writes members as an RDF collection using fresh blank nodes with
// the given label prefix and returns the head term (rdf:nil for an empty
// list).
func (g *Graph) AddList(labelPrefix string, members []rdf.Term) rdf.Term {
	if len(members) == 0 {
		return rdf.NilIRI
	}
	head := rdf.NewBlank(labelPrefix + "0")
	cur := head
	for i, m := range members {
		g.Add(cur, rdf.FirstIRI, m)
		if i == len(members)-1 {
			g.Add(cur, rdf.RestIRI, rdf.NilIRI)
		} else {
			next := rdf.NewBlank(labelPrefix + itoa(i+1))
			g.Add(cur, rdf.RestIRI, next)
			cur = next
		}
	}
	return head
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func sortTerms(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool { return rdf.Compare(ts[i], ts[j]) < 0 })
}

func compareTriples(a, b rdf.Triple) int {
	if c := rdf.Compare(a.S, b.S); c != 0 {
		return c
	}
	if c := rdf.Compare(a.P, b.P); c != 0 {
		return c
	}
	return rdf.Compare(a.O, b.O)
}
