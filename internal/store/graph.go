// Package store provides an in-memory indexed RDF graph.
//
// # Dictionary encoding
//
// The store is dictionary-encoded: a TermDict interns every distinct
// rdf.Term into a dense uint32 ID (append-only, first-seen order), and the
// three permutation indexes (SPO, POS, OSP) are nested maps whose innermost
// level is a roaring-style bitmap set (IDSet, bitset.go): 16-bit-keyed
// containers holding either a sorted uint16 array (sparse) or a 1024-word
// bitmap (dense). Terms are encoded exactly once, on write; every probe,
// join, and iteration afterwards touches 4-byte integers instead of 4-field
// structs holding up to three IRI strings, and the innermost membership
// tests and set combinations run as binary searches or 64-bit word
// operations instead of hash probes. This is the standard access-path
// design of serious RDF engines (Jena TDB, RDF4J, Virtuoso) and is what
// makes the OWL RL reasoner's rule joins and the SPARQL evaluator's BGP
// joins cheap: the huge object/subject sets of rdf:type-heavy predicates
// compress to about one bit per member, and intersecting two of them
// (MatchSetID + IDSet.And) ANDs words rather than re-hashing elements.
//
// ID-level set iteration (ForEachID, ObjectsID, SubjectsID, …) is in
// ascending ID order — deterministic, unlike the map sets this layout
// replaced. The term-level API still decodes and term-sorts at the
// boundary, so rendered artifacts are unchanged.
//
// Reads decode lazily: the Term-based API (ForEach, Match, Objects, …)
// materializes rdf.Term values only for the positions a caller actually
// receives, via a slice index into the dictionary — no allocation and no
// hashing on the read path. Hot consumers (the reasoner and the SPARQL
// evaluator) opt into the ID-level API (LookupID, ForEachID, CountID, …)
// and defer decoding until results leave the engine.
//
// The three permutation indexes answer every triple-pattern shape — any
// combination of bound and wildcard positions — by at most one nested-map
// walk without scanning unrelated triples.
//
// # Concurrency: the reader contract
//
// A Graph is not safe for concurrent mutation, and no read may overlap a
// mutation (Add*, Merge, Remove, Subtract, Clear, InternTerm). Once the
// graph is quiescent, any number of goroutines may read it concurrently
// with no locking: every non-mutating method — ForEach*, Match, Has*,
// Exists, Count*, Objects*, Subjects*, Predicates, FirstObject*, TermOf,
// KindOf, IsResourceID, LookupID, ReadList*, Triples, the set accessors —
// only walks the immutable index maps and the append-only dictionary, so
// IDs observed by readers never change meaning. The typical lifecycle
// (load, reason, then query from many goroutines) therefore needs no
// synchronization at all.
//
// Two classes of consumer rely on this contract: applications serving many
// queries from one materialized graph, and the SPARQL engine's parallel
// executor (internal/sparql), which fans a single query's joins, filters,
// and path searches across a worker pool probing one shared Graph.
// internal/store/concurrent_test.go locks the contract in under -race.
//
// The store itself does not synchronize — serializing writers against
// readers is the caller's job. Long-lived applications that interleave
// mutation with serving (e.g. feo.Session, whose Explain asserts
// explanation individuals while /sparql and /recommend read) gate access
// with an RWMutex at their own layer; see the locking notes on
// feo.Session. Version() gives such callers (and per-query memo caches) a
// cheap way to detect that any mutation happened.
package store

import (
	"sort"

	"repro/internal/rdf"
)

// Wildcard is the zero rdf.Term; in pattern positions it matches any term.
var Wildcard = rdf.Term{}

// index is one permutation index: two map levels over the first two
// positions, a bitmap set (see bitset.go) over the third. A missing third
// level reads as a nil *IDSet, which every read-only IDSet method treats
// as the empty set.
type index map[ID]map[ID]*IDSet

// Graph is a set of RDF triples with full permutation indexing over
// dictionary-encoded term IDs.
type Graph struct {
	dict *TermDict
	spo  index
	pos  index
	osp  index
	// Per-position triple counts (subjN[s] = triples with subject s, …),
	// maintained on every add/remove so CountID answers any singly-bound
	// pattern in O(1). The SPARQL planner's selectivity estimates probe
	// these on every BGP, so they must not require an index walk.
	subjN map[ID]int
	predN map[ID]int
	objN  map[ID]int
	n     int
	// version counts successful mutations (triple adds/removes and Clear).
	// Consumers that memoize derived state per graph snapshot — the SPARQL
	// engine's per-query path-reachability caches, future plan caches — key
	// or guard on it; see Version.
	version uint64
	// captures holds the active change-capture logs (see capture.go). Empty
	// in the common case; every successful add/remove fans into each one.
	captures []*ChangeSet
	ns       *rdf.Namespaces
}

// New returns an empty graph with the repository's standard namespaces bound.
func New() *Graph {
	return &Graph{
		dict:  NewTermDict(),
		spo:   make(index),
		pos:   make(index),
		osp:   make(index),
		subjN: make(map[ID]int),
		predN: make(map[ID]int),
		objN:  make(map[ID]int),
		ns:    rdf.StandardNamespaces(),
	}
}

// Namespaces returns the prefix mapping attached to the graph. Parsers add
// prefixes they encounter; serializers and human-facing output read them.
func (g *Graph) Namespaces() *rdf.Namespaces { return g.ns }

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return g.n }

// Version returns a counter that increases on every successful mutation
// (Add*, Remove, Merge, Subtract, Clear — including mutations that go
// through Bulk or the reasoner). Two reads returning the same value
// bracket a span with no triple-level mutation, so caches of derived
// state (path reachability memos, query plans) can assert the graph they
// were built against is still the graph being read. InternTerm alone does
// not bump the version: interning never changes any pattern's matches.
func (g *Graph) Version() uint64 { return g.version }

// ---- ID-level API (hot-path opt-ins) ----

// Dict exposes the graph's term dictionary. It is append-only; callers must
// follow the store's concurrency contract.
func (g *Graph) Dict() *TermDict { return g.dict }

// LookupID encodes a term without interning it. A term the graph has never
// stored returns (NoID, false) — by construction no triple can match it.
func (g *Graph) LookupID(t rdf.Term) (ID, bool) { return g.dict.Lookup(t) }

// InternTerm encodes a term, assigning a fresh ID when new. Invalid (zero)
// terms are not interned and return NoID.
func (g *Graph) InternTerm(t rdf.Term) ID {
	if !t.IsValid() {
		return NoID
	}
	return g.dict.Intern(t)
}

// TermOf decodes an ID previously issued by this graph's dictionary.
func (g *Graph) TermOf(id ID) rdf.Term { return g.dict.Term(id) }

// KindOf returns the term kind behind id without copying the term.
func (g *Graph) KindOf(id ID) rdf.TermKind { return g.dict.Kind(id) }

// IsResourceID reports whether id decodes to an IRI or blank node — the
// positions allowed as triple subjects and the guard many OWL rules need.
func (g *Graph) IsResourceID(id ID) bool {
	k := g.dict.Kind(id)
	return k == rdf.KindIRI || k == rdf.KindBlank
}

// HasID reports whether the exact triple (s, p, o) is present, by ID.
// NoID in any position returns false (use ForEachID for patterns).
func (g *Graph) HasID(s, p, o ID) bool {
	return g.spo[s][p].Contains(o)
}

// MatchSetID returns the graph's own bitmap set for a pattern with exactly
// two bound positions: the objects of (s, p, ?), the subjects of (?, p, o),
// or the predicates of (s, ?, o). Any other shape returns nil. The result
// is the live innermost index level — callers must treat it as read-only
// and follow the reader contract — which is what lets a join intersect two
// index levels word-by-word (IDSet.And) without copying either.
func (g *Graph) MatchSetID(s, p, o ID) *IDSet {
	switch {
	case s != NoID && p != NoID && o == NoID:
		return g.spo[s][p]
	case s == NoID && p != NoID && o != NoID:
		return g.pos[p][o]
	case s != NoID && p == NoID && o != NoID:
		return g.osp[o][s]
	}
	return nil
}

// AddID inserts the triple (s, p, o) given already-interned IDs; it reports
// whether the triple was new. Kind constraints (subject resource, predicate
// IRI) are enforced against the dictionary.
func (g *Graph) AddID(s, p, o ID) bool {
	if s == NoID || p == NoID || o == NoID {
		return false
	}
	if !g.IsResourceID(s) || g.dict.Kind(p) != rdf.KindIRI {
		return false
	}
	return g.addIDs(s, p, o)
}

func (g *Graph) addIDs(s, p, o ID) bool {
	if !indexAdd(g.spo, s, p, o) {
		return false
	}
	indexAdd(g.pos, p, o, s)
	indexAdd(g.osp, o, s, p)
	g.subjN[s]++
	g.predN[p]++
	g.objN[o]++
	g.n++
	g.version++
	if len(g.captures) != 0 {
		g.notifyAdd(s, p, o)
	}
	return true
}

// ForEachID calls fn for every ID triple matching the pattern (s, p, o),
// where NoID matches anything. Iteration stops early when fn returns false.
// The innermost (bitmap) level iterates in ascending ID order; the outer
// map levels remain unordered. The callback must not mutate the graph.
func (g *Graph) ForEachID(s, p, o ID, fn func(s, p, o ID) bool) {
	sB, pB, oB := s != NoID, p != NoID, o != NoID
	switch {
	case sB && pB && oB:
		if g.HasID(s, p, o) {
			fn(s, p, o)
		}
	case sB && pB: // (s, p, ?) — SPO
		g.spo[s][p].ForEach(func(obj ID) bool { return fn(s, p, obj) })
	case sB && oB: // (s, ?, o) — OSP
		g.osp[o][s].ForEach(func(pred ID) bool { return fn(s, pred, o) })
	case pB && oB: // (?, p, o) — POS
		g.pos[p][o].ForEach(func(subj ID) bool { return fn(subj, p, o) })
	case sB: // (s, ?, ?) — SPO
		for pred, objs := range g.spo[s] {
			if !objs.ForEach(func(obj ID) bool { return fn(s, pred, obj) }) {
				return
			}
		}
	case pB: // (?, p, ?) — POS
		for obj, subjs := range g.pos[p] {
			if !subjs.ForEach(func(subj ID) bool { return fn(subj, p, obj) }) {
				return
			}
		}
	case oB: // (?, ?, o) — OSP
		for subj, preds := range g.osp[o] {
			if !preds.ForEach(func(pred ID) bool { return fn(subj, pred, o) }) {
				return
			}
		}
	default: // full scan
		for subj, m1 := range g.spo {
			for pred, objs := range m1 {
				if !objs.ForEach(func(obj ID) bool { return fn(subj, pred, obj) }) {
					return
				}
			}
		}
	}
}

// CountID returns the number of triples matching the ID pattern without
// iterating them: fully and doubly bound shapes are a single len() of the
// underlying index level; singly bound shapes sum one index level.
func (g *Graph) CountID(s, p, o ID) int {
	sB, pB, oB := s != NoID, p != NoID, o != NoID
	switch {
	case sB && pB && oB:
		if g.HasID(s, p, o) {
			return 1
		}
		return 0
	case sB && pB:
		return g.spo[s][p].Len()
	case sB && oB:
		return g.osp[o][s].Len()
	case pB && oB:
		return g.pos[p][o].Len()
	case sB:
		return g.subjN[s]
	case pB:
		return g.predN[p]
	case oB:
		return g.objN[o]
	default:
		return g.n
	}
}

// ObjectsID returns the object IDs of triples (s, p, *) in ascending ID
// order. The reasoner's rule joins use this to avoid the term decode and
// sort that Objects pays for.
func (g *Graph) ObjectsID(s, p ID) []ID {
	objs := g.spo[s][p]
	if objs.Len() == 0 {
		return nil
	}
	return objs.AppendTo(make([]ID, 0, objs.Len()))
}

// ForEachObjectID calls fn for every object ID of triples (s, p, *), in
// ascending ID order, stopping early when fn returns false. It is the
// allocation-free form of ObjectsID, for hot loops — the SPARQL engine's
// path BFS expands frontiers with it — that want neither a fresh slice per
// probe nor a full triple callback.
func (g *Graph) ForEachObjectID(s, p ID, fn func(o ID) bool) {
	g.spo[s][p].ForEach(fn)
}

// ForEachSubjectID calls fn for every subject ID of triples (*, p, o), in
// ascending ID order, stopping early when fn returns false. The
// allocation-free form of SubjectsID.
func (g *Graph) ForEachSubjectID(p, o ID, fn func(s ID) bool) {
	g.pos[p][o].ForEach(fn)
}

// SubjectsID returns the subject IDs of triples (*, p, o) in ascending ID
// order.
func (g *Graph) SubjectsID(p, o ID) []ID {
	subjs := g.pos[p][o]
	if subjs.Len() == 0 {
		return nil
	}
	return subjs.AppendTo(make([]ID, 0, subjs.Len()))
}

// FirstObjectID returns one object ID of (s, p, *), or NoID if none. When
// several objects exist the smallest decoded term (per rdf.Compare) wins, so
// results are deterministic and agree with FirstObject. The dominant case —
// a single object, as every functional property and rdf:first/rdf:rest
// chain produces — answers straight from the bitmap without decoding any
// term; larger sets decode each candidate exactly once.
func (g *Graph) FirstObjectID(s, p ID) ID {
	objs := g.spo[s][p]
	if objs.Len() <= 1 {
		o, ok := objs.Min()
		if !ok {
			return NoID
		}
		return o
	}
	best := NoID
	var bestTerm rdf.Term
	objs.ForEach(func(o ID) bool {
		t := g.dict.Term(o)
		if best == NoID || rdf.Compare(t, bestTerm) < 0 {
			best, bestTerm = o, t
		}
		return true
	})
	return best
}

// ---- Term-level API (encode on write, decode lazily on read) ----

// Add inserts the triple (s, p, o); it reports whether the triple was new.
// Invalid triples (per rdf.Triple.Valid) are rejected and return false.
func (g *Graph) Add(s, p, o rdf.Term) bool {
	t := rdf.Triple{S: s, P: p, O: o}
	if !t.Valid() {
		return false
	}
	return g.addIDs(g.dict.Intern(s), g.dict.Intern(p), g.dict.Intern(o))
}

// AddTriple inserts t; it reports whether the triple was new.
func (g *Graph) AddTriple(t rdf.Triple) bool { return g.Add(t.S, t.P, t.O) }

// AddAll inserts every triple in ts and returns the number actually added.
func (g *Graph) AddAll(ts []rdf.Triple) int {
	added := 0
	for _, t := range ts {
		if g.AddTriple(t) {
			added++
		}
	}
	return added
}

// Remove deletes the triple (s, p, o); it reports whether it was present.
// The terms stay interned: IDs are never reused or reassigned.
func (g *Graph) Remove(s, p, o rdf.Term) bool {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return false
	}
	oID, ok := g.dict.Lookup(o)
	if !ok {
		return false
	}
	if !indexRemove(g.spo, sID, pID, oID) {
		return false
	}
	indexRemove(g.pos, pID, oID, sID)
	indexRemove(g.osp, oID, sID, pID)
	decCount(g.subjN, sID)
	decCount(g.predN, pID)
	decCount(g.objN, oID)
	g.n--
	g.version++
	if len(g.captures) != 0 {
		g.notifyRemove(sID, pID, oID)
	}
	return true
}

func decCount(m map[ID]int, id ID) {
	if m[id] <= 1 {
		delete(m, id)
	} else {
		m[id]--
	}
}

// Has reports whether the exact triple (s, p, o) is present. Wildcards are
// not interpreted; use Exists for pattern queries.
func (g *Graph) Has(s, p, o rdf.Term) bool {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return false
	}
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return false
	}
	oID, ok := g.dict.Lookup(o)
	if !ok {
		return false
	}
	return g.HasID(sID, pID, oID)
}

func indexAdd(idx index, a, b, c ID) bool {
	m1, ok := idx[a]
	if !ok {
		m1 = make(map[ID]*IDSet)
		idx[a] = m1
	}
	m2, ok := m1[b]
	if !ok {
		m2 = NewIDSet()
		m1[b] = m2
	}
	return m2.Add(c)
}

func indexRemove(idx index, a, b, c ID) bool {
	m1, ok := idx[a]
	if !ok {
		return false
	}
	m2, ok := m1[b]
	if !ok || !m2.Remove(c) {
		return false
	}
	if m2.Len() == 0 {
		delete(m1, b)
		if len(m1) == 0 {
			delete(idx, a)
		}
	}
	return true
}

// encodePattern maps a Term pattern position to an ID pattern position:
// wildcard terms become NoID, known terms their ID. ok is false when the
// term is bound but unknown to the dictionary — no triple can match.
func (g *Graph) encodePattern(t rdf.Term) (ID, bool) {
	if !t.IsValid() {
		return NoID, true
	}
	id, ok := g.dict.Lookup(t)
	return id, ok
}

// ForEach calls fn for every triple matching the pattern (s, p, o), where
// the zero Term (Wildcard) matches anything. Iteration stops early when fn
// returns false. The callback must not mutate the graph.
func (g *Graph) ForEach(s, p, o rdf.Term, fn func(rdf.Triple) bool) {
	sID, ok := g.encodePattern(s)
	if !ok {
		return
	}
	pID, ok := g.encodePattern(p)
	if !ok {
		return
	}
	oID, ok := g.encodePattern(o)
	if !ok {
		return
	}
	g.ForEachID(sID, pID, oID, func(si, pi, oi ID) bool {
		// Reuse the caller's bound terms; decode only wildcard positions.
		t := rdf.Triple{S: s, P: p, O: o}
		if sID == NoID {
			t.S = g.dict.Term(si)
		}
		if pID == NoID {
			t.P = g.dict.Term(pi)
		}
		if oID == NoID {
			t.O = g.dict.Term(oi)
		}
		return fn(t)
	})
}

// Match returns all triples matching the pattern, in unspecified order.
func (g *Graph) Match(s, p, o rdf.Term) []rdf.Triple {
	var out []rdf.Triple
	g.ForEach(s, p, o, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Exists reports whether any triple matches the pattern. Like Count, it
// answers from index-level sizes without iterating triples.
func (g *Graph) Exists(s, p, o rdf.Term) bool {
	sID, ok := g.encodePattern(s)
	if !ok {
		return false
	}
	pID, ok := g.encodePattern(p)
	if !ok {
		return false
	}
	oID, ok := g.encodePattern(o)
	if !ok {
		return false
	}
	sB, pB, oB := sID != NoID, pID != NoID, oID != NoID
	switch {
	case sB && pB && oB:
		return g.HasID(sID, pID, oID)
	case sB && pB:
		return g.spo[sID][pID].Len() > 0
	case sB && oB:
		return g.osp[oID][sID].Len() > 0
	case pB && oB:
		return g.pos[pID][oID].Len() > 0
	case sB:
		return len(g.spo[sID]) > 0
	case pB:
		return len(g.pos[pID]) > 0
	case oB:
		return len(g.osp[oID]) > 0
	default:
		return g.n > 0
	}
}

// Count returns the number of triples matching the pattern without
// materializing or iterating them (a len() of the right index level).
func (g *Graph) Count(s, p, o rdf.Term) int {
	sID, ok := g.encodePattern(s)
	if !ok {
		return 0
	}
	pID, ok := g.encodePattern(p)
	if !ok {
		return 0
	}
	oID, ok := g.encodePattern(o)
	if !ok {
		return 0
	}
	return g.CountID(sID, pID, oID)
}

// decodeSorted decodes an ID set to terms sorted per rdf.Compare. The set
// iterates in ID order but the output contract is term order, so the sort
// remains (ID order is first-seen order, not term order).
func (g *Graph) decodeSorted(set *IDSet) []rdf.Term {
	out := make([]rdf.Term, 0, set.Len())
	set.ForEach(func(id ID) bool {
		out = append(out, g.dict.Term(id))
		return true
	})
	sortTerms(out)
	return out
}

// Objects returns the distinct objects of triples (s, p, *), sorted.
func (g *Graph) Objects(s, p rdf.Term) []rdf.Term {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return nil
	}
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return nil
	}
	return g.decodeSorted(g.spo[sID][pID])
}

// FirstObject returns one object of (s, p, *), or the zero Term if none.
// When several objects exist the smallest (per rdf.Compare) is returned so
// results are deterministic and agree with FirstObjectID. This is a single
// O(n) min-scan, not a sort; the singleton case decodes exactly one term.
func (g *Graph) FirstObject(s, p rdf.Term) rdf.Term {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return rdf.Term{}
	}
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return rdf.Term{}
	}
	best := g.FirstObjectID(sID, pID)
	if best == NoID {
		return rdf.Term{}
	}
	return g.dict.Term(best)
}

// Subjects returns the distinct subjects of triples (*, p, o), sorted.
func (g *Graph) Subjects(p, o rdf.Term) []rdf.Term {
	pID, ok := g.dict.Lookup(p)
	if !ok {
		return nil
	}
	oID, ok := g.dict.Lookup(o)
	if !ok {
		return nil
	}
	return g.decodeSorted(g.pos[pID][oID])
}

// Predicates returns the distinct predicates of triples (s, *, o), sorted.
func (g *Graph) Predicates(s, o rdf.Term) []rdf.Term {
	sID, ok := g.dict.Lookup(s)
	if !ok {
		return nil
	}
	oID, ok := g.dict.Lookup(o)
	if !ok {
		return nil
	}
	return g.decodeSorted(g.osp[oID][sID])
}

// TypesOf returns the asserted rdf:type objects of s, sorted.
func (g *Graph) TypesOf(s rdf.Term) []rdf.Term {
	return g.Objects(s, rdf.TypeIRI)
}

// IsA reports whether (s rdf:type class) is present.
func (g *Graph) IsA(s, class rdf.Term) bool {
	return g.Has(s, rdf.TypeIRI, class)
}

// InstancesOf returns the subjects asserted to have rdf:type class, sorted.
func (g *Graph) InstancesOf(class rdf.Term) []rdf.Term {
	return g.Subjects(rdf.TypeIRI, class)
}

// Triples returns every triple in the graph sorted by subject, predicate,
// object. Intended for serialization and tests; large graphs should iterate
// with ForEach instead.
func (g *Graph) Triples() []rdf.Triple {
	out := make([]rdf.Triple, 0, g.n)
	g.ForEachID(NoID, NoID, NoID, func(s, p, o ID) bool {
		out = append(out, rdf.Triple{S: g.dict.Term(s), P: g.dict.Term(p), O: g.dict.Term(o)})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return compareTriples(out[i], out[j]) < 0 })
	return out
}

// SubjectSet returns the distinct subjects in the graph, sorted.
func (g *Graph) SubjectSet() []rdf.Term {
	out := make([]rdf.Term, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, g.dict.Term(s))
	}
	sortTerms(out)
	return out
}

// PredicateSet returns the distinct predicates in the graph, sorted.
func (g *Graph) PredicateSet() []rdf.Term {
	out := make([]rdf.Term, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, g.dict.Term(p))
	}
	sortTerms(out)
	return out
}

// Clone returns a deep copy of the graph. The dictionary is copied too, so
// every ID valid for g decodes to the same term in the clone (IDs are
// stable across Clone); the nested indexes are rebuilt without re-encoding
// a single term.
func (g *Graph) Clone() *Graph {
	out := &Graph{
		dict:  g.dict.Clone(),
		spo:   cloneIndex(g.spo),
		pos:   cloneIndex(g.pos),
		osp:   cloneIndex(g.osp),
		subjN: cloneCounts(g.subjN),
		predN: cloneCounts(g.predN),
		objN:  cloneCounts(g.objN),
		n:     g.n,
		// The clone starts its own mutation history; versions are only
		// comparable against the same Graph value.
		version: g.version,
		ns:      g.ns.Clone(),
	}
	return out
}

func cloneCounts(m map[ID]int) map[ID]int {
	out := make(map[ID]int, len(m))
	for id, n := range m {
		out[id] = n
	}
	return out
}

func cloneIndex(idx index) index {
	out := make(index, len(idx))
	for a, m1 := range idx {
		c1 := make(map[ID]*IDSet, len(m1))
		for b, m2 := range m1 {
			c1[b] = m2.Clone()
		}
		out[a] = c1
	}
	return out
}

// Merge adds every triple of other into g and returns the number added.
// Terms of other are re-interned into g's dictionary through a one-pass
// remap table, so each distinct term is hashed once regardless of how many
// triples mention it.
func (g *Graph) Merge(other *Graph) int {
	if other == nil {
		return 0
	}
	remap := make(map[ID]ID, other.dict.Len())
	mapID := func(id ID) ID {
		if to, ok := remap[id]; ok {
			return to
		}
		to := g.dict.Intern(other.dict.Term(id))
		remap[id] = to
		return to
	}
	added := 0
	other.ForEachID(NoID, NoID, NoID, func(s, p, o ID) bool {
		if g.addIDs(mapID(s), mapID(p), mapID(o)) {
			added++
		}
		return true
	})
	for _, prefix := range other.ns.Prefixes() {
		if iri, ok := other.ns.IRIFor(prefix); ok {
			if _, bound := g.ns.IRIFor(prefix); !bound {
				g.ns.Bind(prefix, iri)
			}
		}
	}
	return added
}

// Subtract removes every triple of other from g and returns the number removed.
func (g *Graph) Subtract(other *Graph) int {
	if other == nil {
		return 0
	}
	removed := 0
	other.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		if g.Remove(t.S, t.P, t.O) {
			removed++
		}
		return true
	})
	return removed
}

// Equal reports whether g and other contain exactly the same triples.
// Blank node labels are compared literally (no isomorphism check); use
// Isomorphic for bnode-invariant comparison.
func (g *Graph) Equal(other *Graph) bool {
	if other == nil || g.n != other.n {
		return false
	}
	eq := true
	g.ForEach(Wildcard, Wildcard, Wildcard, func(t rdf.Triple) bool {
		if !other.Has(t.S, t.P, t.O) {
			eq = false
			return false
		}
		return true
	})
	return eq
}

// Clear removes all triples. The dictionary is reset too; IDs issued
// before Clear must not be used afterwards. The mutation version advances
// (it never resets), so memoized consumers observe the wipe.
func (g *Graph) Clear() {
	g.dict = NewTermDict()
	g.spo = make(index)
	g.pos = make(index)
	g.osp = make(index)
	g.subjN = make(map[ID]int)
	g.predN = make(map[ID]int)
	g.objN = make(map[ID]int)
	g.n = 0
	g.version++
	if len(g.captures) != 0 {
		g.notifyClear()
	}
}

// ReadList reads an RDF collection (rdf:first / rdf:rest chain) starting at
// head and returns its members in order. Malformed lists return the members
// collected before the defect, and ok=false.
func (g *Graph) ReadList(head rdf.Term) (members []rdf.Term, ok bool) {
	seen := make(map[rdf.Term]bool)
	for head != rdf.NilIRI {
		if !head.IsValid() || seen[head] {
			return members, false
		}
		seen[head] = true
		first := g.FirstObject(head, rdf.FirstIRI)
		if !first.IsValid() {
			return members, false
		}
		members = append(members, first)
		head = g.FirstObject(head, rdf.RestIRI)
	}
	return members, true
}

// ReadListID is ReadList at the dictionary-ID level: it reads the
// collection starting at head without decoding a single term. Malformed
// lists return the members collected before the defect, and ok=false.
func (g *Graph) ReadListID(head ID) (members []ID, ok bool) {
	nilID, hasNil := g.dict.Lookup(rdf.NilIRI)
	firstID, hasFirst := g.dict.Lookup(rdf.FirstIRI)
	restID, hasRest := g.dict.Lookup(rdf.RestIRI)
	seen := make(map[ID]bool)
	for !hasNil || head != nilID {
		if head == NoID || seen[head] || !hasFirst || !hasRest {
			return members, false
		}
		seen[head] = true
		first := g.FirstObjectID(head, firstID)
		if first == NoID {
			return members, false
		}
		members = append(members, first)
		head = g.FirstObjectID(head, restID)
	}
	return members, true
}

// AddList writes members as an RDF collection using fresh blank nodes with
// the given label prefix and returns the head term (rdf:nil for an empty
// list).
func (g *Graph) AddList(labelPrefix string, members []rdf.Term) rdf.Term {
	if len(members) == 0 {
		return rdf.NilIRI
	}
	head := rdf.NewBlank(labelPrefix + "0")
	cur := head
	for i, m := range members {
		g.Add(cur, rdf.FirstIRI, m)
		if i == len(members)-1 {
			g.Add(cur, rdf.RestIRI, rdf.NilIRI)
		} else {
			next := rdf.NewBlank(labelPrefix + itoa(i+1))
			g.Add(cur, rdf.RestIRI, next)
			cur = next
		}
	}
	return head
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func sortTerms(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool { return rdf.Compare(ts[i], ts[j]) < 0 })
}

func compareTriples(a, b rdf.Triple) int {
	if c := rdf.Compare(a.S, b.S); c != 0 {
		return c
	}
	if c := rdf.Compare(a.P, b.P); c != 0 {
		return c
	}
	return rdf.Compare(a.O, b.O)
}
