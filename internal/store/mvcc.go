package store

import (
	"sync/atomic"

	"repro/internal/rdf"
)

// MVCC snapshot publication and the Begin/Commit writer protocol.
//
// A Graph is a single-writer, many-reader structure. The writer works on
// the live graph and, at commit points, publishes an immutable Snapshot via
// an atomic pointer swap; publishing bumps the graph's COW epoch so every
// structure the snapshot now shares with the live graph is copied before
// the writer's next mutation of it (see the package doc and bitset.go).
// Readers pin the latest snapshot with Graph.Snapshot() — one atomic load —
// and read its frozen view forever after without any coordination: pinned
// readers never block the writer and are never blocked by it.
//
// The transaction surface wraps the protocol for layered writers
// (feo.Session): Begin starts an ordered mutation capture whose op stream
// feeds the write-ahead log; Commit stops the capture and publishes (or
// CommitDeferred retains the state privately, letting a burst of commits
// share one freeze); Rollback restores the Begin state and discards the
// capture. Transactions do not nest and there is no writer queue —
// serializing writers is the caller's job, exactly as for plain mutations.

// Snapshot is an immutable published version of a Graph. Its Graph() view
// is a frozen *Graph sharing storage with the publisher via copy-on-write:
// every read method works, costs the same as on the live graph, and always
// observes exactly the state at publish time. Mutating methods panic.
//
//feo:frozen-type
type Snapshot struct {
	g          *Graph
	version    uint64
	superseded atomic.Bool
}

// Graph returns the frozen view. It is safe for any number of concurrent
// readers, concurrently with the writer committing new versions.
func (s *Snapshot) Graph() *Graph { return s.g }

// Version returns the mutation version the snapshot was published at.
func (s *Snapshot) Version() uint64 { return s.version }

// Superseded reports whether a newer snapshot has been published since this
// one. Plan caches use it to prefer evicting entries for abandoned
// versions; a pinned superseded snapshot remains fully readable.
func (s *Snapshot) Superseded() bool { return s.superseded.Load() }

// Publish freezes the current graph state as a Snapshot and makes it the
// one Snapshot() returns, via an atomic pointer swap. If nothing mutated
// since the last publish, the existing snapshot is returned unchanged.
// Writer-only; panics inside an open transaction (use Txn.Commit) and on a
// frozen view.
//
//feo:mutates
//feo:publish
func (g *Graph) Publish() *Snapshot {
	if g.frozen {
		panic("store: Publish on a frozen snapshot view")
	}
	if g.txn != nil {
		panic("store: Publish inside an open transaction")
	}
	return g.publish()
}

//feo:mutates
//feo:publish
func (g *Graph) publish() *Snapshot {
	if cur := g.published.Load(); cur != nil && cur.version == g.version {
		return cur
	}
	view := &Graph{
		dict:    g.dict,
		spo:     g.spo,
		pos:     g.pos,
		osp:     g.osp,
		subjN:   g.subjN,
		predN:   g.predN,
		objN:    g.objN,
		n:       g.n,
		version: g.version,
		// Namespaces are mutated in place by parsers, so the view gets its
		// own copy; the dictionary is concurrent-reader-safe and shared.
		ns:     g.ns.Clone(),
		frozen: true,
		dictN:  g.dict.Len(),
	}
	snap := &Snapshot{g: view, version: g.version}
	view.owner = snap
	if prev := g.published.Swap(snap); prev != nil {
		prev.superseded.Store(true)
	}
	// From here on, everything the view references is shared: bump the
	// epoch so the writer's next mutation of any shared structure copies
	// it first.
	g.epoch++
	g.frozenAt, g.frozenValid = g.version, true
	return snap
}

// Snapshot returns the latest published snapshot (nil if the graph has
// never published). An atomic load — this is the reader's pin operation and
// never blocks. Called on a frozen view, it returns that view's own
// snapshot, so code holding either a *Snapshot or its *Graph can recover
// the other.
//
//feo:frozen-safe
func (g *Graph) Snapshot() *Snapshot {
	if g.frozen {
		return g.owner
	}
	return g.published.Load()
}

// Frozen reports whether g is an immutable snapshot view.
//
//feo:frozen-safe
func (g *Graph) Frozen() bool { return g.frozen }

// Superseded reports whether g is a frozen view whose snapshot has been
// superseded by a newer publish. Always false for a live graph; the SPARQL
// plan cache uses it to rank evictions.
//
//feo:frozen-safe
func (g *Graph) Superseded() bool { return g.owner != nil && g.owner.superseded.Load() }

// dictCap returns how many dictionary entries belong to this graph value:
// everything for a live graph, the publish-time prefix for a frozen view
// (the shared dictionary may have grown since). The snapshot encoder uses
// it so serializing a pinned view stays deterministic while the writer
// interns new terms.
//
//feo:frozen-safe
func (g *Graph) dictCap() int {
	if g.frozen {
		return g.dictN
	}
	return g.dict.Len()
}

// txnRoots saves the complete pre-transaction state of a graph: the index
// and counter roots (cheap struct copies — pointers into storage, not the
// storage itself), the dictionary and namespace pointers, and the scalar
// counters. Whether restoring them is sufficient for Rollback depends on
// Txn.rootsFrozen; see the Txn doc.
type txnRoots struct {
	dict    *TermDict
	ns      *rdf.Namespaces
	spo     index
	pos     index
	osp     index
	subjN   counts
	predN   counts
	objN    counts
	n       int
	version uint64
}

// Txn is one writer transaction on a Graph: the span between Begin and
// Commit/Rollback. It owns an ordered mutation capture (the exact
// add/remove op stream, for the write-ahead log) and the saved pre-
// transaction roots. A Txn is not safe for concurrent use; the caller
// serializes writers.
//
// Begin deliberately does NOT freeze the graph: a freeze would force the
// transaction's mutations to copy every dense structure they touch, which
// is exactly the per-commit cost CommitDeferred exists to avoid. Rollback
// instead picks its strategy from what held at Begin: if the graph was
// clean since its last publish (rootsFrozen), every root structure is
// already COW-protected and restoring the saved root pointers is exact;
// otherwise the graph may have been written in place, and Rollback undoes
// the transaction by replaying its own ordered op stream in reverse with
// each op inverted (the capture records only effective mutations, so the
// inverse stream is exact). A Clear inside a dirty transaction stashes the
// pre-Clear op prefix (preClearOps) so both halves can be undone.
//
//feo:mutable-type
type Txn struct {
	g           *Graph
	cs          *ChangeSet
	prev        txnRoots
	done        bool
	rootsFrozen bool
	sawClear    bool
	preClearOps []orderedOp
}

// Begin opens a transaction and starts an ordered capture of every
// mutation (the op stream the write-ahead log consumes). Panics if a
// transaction is already open or g is a frozen view.
//
//feo:mutates
func (g *Graph) Begin() *Txn {
	if g.frozen {
		panic("store: Begin on a frozen snapshot view")
	}
	if g.txn != nil {
		panic("store: nested transaction (previous Txn not committed or rolled back)")
	}
	t := &Txn{g: g, prev: txnRoots{
		dict:    g.dict,
		ns:      g.ns.Clone(),
		spo:     g.spo,
		pos:     g.pos,
		osp:     g.osp,
		subjN:   g.subjN,
		predN:   g.predN,
		objN:    g.objN,
		n:       g.n,
		version: g.version,
	},
		rootsFrozen: g.frozenValid && g.frozenAt == g.version,
	}
	t.cs = g.StartOrderedCapture()
	g.txn = t
	return t
}

// Changes exposes the transaction's ordered capture while the transaction
// is open (and after Commit). The write-ahead log reads Ops/Cleared/
// EndVersion from it.
//
//feo:frozen-safe
func (t *Txn) Changes() *ChangeSet { return t.cs }

// Commit closes the transaction and publishes the resulting state as a new
// Snapshot (returned). Committing a transaction that made no mutations
// returns the previously published snapshot unchanged.
//
//feo:mutates
//feo:publish
func (t *Txn) Commit() *Snapshot {
	if t.done {
		panic("store: Commit on a finished transaction")
	}
	t.done = true
	t.cs.Stop()
	t.g.txn = nil
	return t.g.publish()
}

// CommitDeferred closes the transaction, retaining its mutations, without
// publishing a snapshot: the committed state becomes visible to new pins
// only at the next Publish. This is the fast path for write bursts — a
// publish freezes every structure the snapshot shares with the live graph,
// so the writer's next commit pays copy-on-write for each dense structure
// it touches (the count vectors and outer index levels are O(dictionary)
// memcpys). Deferring lets N back-to-back commits share one freeze, paid
// only when a reader actually pins in between. Isolation is unaffected:
// pinned snapshots only ever expose published states, and everything they
// share stays frozen.
//
//feo:mutates
//feo:publish
func (t *Txn) CommitDeferred() {
	if t.done {
		panic("store: CommitDeferred on a finished transaction")
	}
	t.done = true
	t.cs.Stop()
	t.g.txn = nil
}

// Rollback closes the transaction and restores the graph to its state at
// Begin: triples, counters, and namespaces all revert (terms interned
// during the transaction may remain in the dictionary; they are
// unreferenced and harmless, since the dictionary is append-only anyway).
// Published snapshots are unaffected (nothing was published since Begin).
// The mutation version stays monotonic — it never goes backwards, so any
// version value observed mid-transaction is permanently retired. Other
// captures active across the rollback are invalidated (Cleared reports
// true), since mutations they recorded have been undone; consumers fall
// back to whole-graph processing, exactly as after Clear.
//
//feo:mutates
func (t *Txn) Rollback() {
	if t.done {
		panic("store: Rollback on a finished transaction")
	}
	t.done = true
	t.cs.Stop()
	g := t.g
	g.txn = nil
	if g.version == t.prev.version {
		// No effective triple mutation; only namespaces could have moved.
		g.ns = t.prev.ns
		return
	}
	frozenAfter := false
	switch {
	case t.rootsFrozen:
		// The graph was clean at Begin: every root structure was frozen, so
		// in-transaction mutations copied before writing and the saved
		// roots still hold the exact Begin state (across Clear too).
		t.restoreRoots()
		frozenAfter = true
	case t.sawClear:
		// Clear swapped in fresh structures, so the saved roots survived
		// the post-Clear half of the transaction; the pre-Clear half may
		// have written into them in place — undo exactly those ops.
		t.restoreRoots()
		g.inverseApply(t.preClearOps)
	default:
		// Dirty graph, no Clear: the op stream is the precise effective
		// delta since Begin; invert it newest-first.
		g.inverseApply(t.cs.ops)
		g.ns = t.prev.ns
	}
	// Retire every version value handed out during the transaction so
	// version-keyed caches can never alias rolled-back state.
	g.version++
	g.frozenValid = frozenAfter
	if frozenAfter {
		g.frozenAt = g.version
	}
	for _, cs := range g.captures {
		cs.invalidate(g.dict)
	}
}

// restoreRoots puts the saved pre-transaction roots back. Only valid when
// the root structures were not written in place during the transaction
// (rootsFrozen), or when any such writes are subsequently undone by
// inverseApply (the sawClear path).
//
//feo:mutates
func (t *Txn) restoreRoots() {
	g := t.g
	g.dict = t.prev.dict
	g.ns = t.prev.ns
	g.spo = t.prev.spo
	g.pos = t.prev.pos
	g.osp = t.prev.osp
	g.subjN = t.prev.subjN
	g.predN = t.prev.predN
	g.objN = t.prev.objN
	g.n = t.prev.n
}

// inverseApply undoes an ordered op stream: ops replay newest-first with
// their sense inverted, through the normal mutation chokepoints, so
// counters, copy-on-write, and remaining captures stay consistent. The
// capture recorded only effective mutations, so every inverse op is
// effective and the replay restores the exact prior triple set.
//
//feo:mutates
func (g *Graph) inverseApply(ops []orderedOp) {
	for i := len(ops) - 1; i >= 0; i-- {
		op := ops[i]
		if op.remove {
			g.addIDs(op.t.S, op.t.P, op.t.O)
		} else {
			g.removeIDs(op.t.S, op.t.P, op.t.O)
		}
	}
}
