package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
)

// randomGraph builds a graph whose index shapes exercise both roaring
// container forms: a dense predicate column with >arrMaxLen subjects (bitmap
// containers in POS) plus sparse random triples (array containers), mixed
// term kinds, namespaces, and some removals so version > triple count.
func randomGraph(t *testing.T, rng *rand.Rand) *Graph {
	t.Helper()
	g := New()
	g.Namespaces().Bind("ex", "http://e/")
	g.Namespaces().Bind("kg", "http://kg/")
	g.Namespaces().SetBase("http://base/")

	typ := rdf.NewIRI("http://e/type")
	cls := rdf.NewIRI("http://e/Thing")
	dense := 4200 + rng.Intn(400) // > arrMaxLen members in one POS set
	for i := 0; i < dense; i++ {
		g.Add(rdf.NewIRI(fmt.Sprintf("http://e/s%d", i)), typ, cls)
	}
	for i := 0; i < 500; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://e/s%d", rng.Intn(dense)))
		p := rdf.NewIRI(fmt.Sprintf("http://e/p%d", rng.Intn(20)))
		var o rdf.Term
		switch rng.Intn(4) {
		case 0:
			o = rdf.NewIRI(fmt.Sprintf("http://e/o%d", rng.Intn(100)))
		case 1:
			o = rdf.NewLiteral(fmt.Sprintf("lit%d", rng.Intn(50)))
		case 2:
			o = rdf.NewTypedLiteral(fmt.Sprintf("%d", rng.Intn(50)), rdf.XSDInteger)
		default:
			o = rdf.NewLangLiteral(fmt.Sprintf("text%d", rng.Intn(50)), "en")
		}
		g.Add(s, p, o)
	}
	// Removals leave the dictionary holding terms no index references and
	// push version past the triple count.
	for i := 0; i < 50; i++ {
		g.Remove(rdf.NewIRI(fmt.Sprintf("http://e/s%d", i)), typ, cls)
	}
	return g
}

func snapshotBytes(t *testing.T, g *Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(t, rng)
		data := snapshotBytes(t, g)

		got, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: ReadSnapshot: %v", seed, err)
		}
		if !got.Equal(g) {
			t.Fatalf("seed %d: loaded graph differs from original", seed)
		}
		if got.Version() != g.Version() {
			t.Errorf("seed %d: Version = %d, want %d", seed, got.Version(), g.Version())
		}
		if got.Len() != g.Len() {
			t.Errorf("seed %d: Len = %d, want %d", seed, got.Len(), g.Len())
		}
		if iri, ok := got.Namespaces().IRIFor("ex"); !ok || iri != "http://e/" {
			t.Errorf("seed %d: namespace ex lost (%q, %v)", seed, iri, ok)
		}
		if got.Namespaces().Base() != "http://base/" {
			t.Errorf("seed %d: base lost: %q", seed, got.Namespaces().Base())
		}

		// The loaded graph must stay mutable and keep its indexes coherent.
		before := got.Len()
		got.Add(iri("fresh-s"), iri("fresh-p"), iri("fresh-o"))
		if got.Len() != before+1 || !got.Has(iri("fresh-s"), iri("fresh-p"), iri("fresh-o")) {
			t.Fatalf("seed %d: loaded graph rejects further mutation", seed)
		}

		// Count paths exercise the derived subjN/predN/objN maps.
		for _, tr := range g.Triples()[:10] {
			if got.Count(tr.S, rdf.Term{}, rdf.Term{}) != g.Count(tr.S, rdf.Term{}, rdf.Term{}) {
				t.Fatalf("seed %d: subject count mismatch for %v", seed, tr.S)
			}
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(7)))
	a := snapshotBytes(t, g)
	b := snapshotBytes(t, g)
	if !bytes.Equal(a, b) {
		t.Fatal("two snapshots of the same graph differ")
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := New()
	got, err := ReadSnapshot(bytes.NewReader(snapshotBytes(t, g)))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if got.Len() != 0 || got.Version() != 0 {
		t.Fatalf("empty graph loaded as Len=%d Version=%d", got.Len(), got.Version())
	}
}

// TestSnapshotCorruptionRejected truncates and bit-flips a valid snapshot
// at every offset in a sampled set; every damaged stream must fail or load
// a graph (flips can land in string bytes and stay structurally valid) —
// never panic or hang.
func TestSnapshotCorruptionRejected(t *testing.T) {
	g := randomGraph(t, rand.New(rand.NewSource(3)))
	data := snapshotBytes(t, g)
	rng := rand.New(rand.NewSource(9))

	for i := 0; i < 200; i++ {
		cut := rng.Intn(len(data))
		if _, err := ReadSnapshot(bytes.NewReader(data[:cut])); err == nil {
			// A truncation that still parses means trailing data was
			// redundant — impossible with three cross-checked indexes
			// unless the cut is at EOF.
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), data...)
		mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		got, err := ReadSnapshot(bytes.NewReader(mut))
		if err == nil && got == nil {
			t.Fatal("nil graph with nil error")
		}
	}
}

func TestForceVersionMonotonic(t *testing.T) {
	g := New()
	g.Add(iri("s"), iri("p"), iri("o"))
	v := g.Version()
	g.ForceVersion(v + 10)
	if g.Version() != v+10 {
		t.Fatalf("ForceVersion did not raise: %d", g.Version())
	}
	g.ForceVersion(v) // lower: must be ignored
	if g.Version() != v+10 {
		t.Fatalf("ForceVersion lowered the version: %d", g.Version())
	}
}
