package store

import "repro/internal/rdf"

// ID is a dense integer handle for a term interned in a TermDict. IDs are
// assigned in first-seen order starting at 0 and are stable for the lifetime
// of the dictionary: a term, once interned, keeps its ID forever.
type ID uint32

// NoID is the sentinel ID used for "absent": a wildcard position in an
// ID-level pattern, or the result of encoding a term the dictionary has
// never seen. No real term ever has this ID.
const NoID = ^ID(0)

// TermDict is an append-only interner mapping rdf.Term values to dense
// integer IDs and back. It is the heart of the store's dictionary encoding:
// the graph hashes each distinct term exactly once (on first insert) and all
// index probes, joins, and rule firings afterwards operate on uint32 keys.
//
// Concurrency contract: the dictionary follows the same rule as Graph —
// Intern may only be called while no other goroutine touches the dictionary,
// while any number of concurrent readers (Lookup, Term, Len) are safe once
// writers have quiesced. The typical lifecycle (load, reason, then query
// from many goroutines) therefore needs no locking.
type TermDict struct {
	terms []rdf.Term
	ids   map[rdf.Term]ID
}

// NewTermDict returns an empty dictionary.
func NewTermDict() *TermDict {
	return &TermDict{ids: make(map[rdf.Term]ID)}
}

// Intern returns the ID for t, assigning the next dense ID when t is new.
func (d *TermDict) Intern(t rdf.Term) ID {
	if id, ok := d.ids[t]; ok {
		return id
	}
	id := ID(len(d.terms))
	d.terms = append(d.terms, t)
	d.ids[t] = id
	return id
}

// Lookup returns the ID for t without interning. ok is false when t has
// never been interned; the returned ID is then NoID.
func (d *TermDict) Lookup(t rdf.Term) (ID, bool) {
	if id, ok := d.ids[t]; ok {
		return id, true
	}
	return NoID, false
}

// Term decodes an ID back to its term. Decoding is a slice index — no
// allocation, no hashing — which is what makes the store's decode-lazily
// read path cheap. Passing an ID the dictionary never issued panics.
func (d *TermDict) Term(id ID) rdf.Term { return d.terms[id] }

// Kind returns the TermKind of the term behind id without copying the
// term's strings out of the dictionary.
func (d *TermDict) Kind(id ID) rdf.TermKind { return d.terms[id].Kind }

// Len returns the number of interned terms.
func (d *TermDict) Len() int { return len(d.terms) }

// grow pre-sizes the dictionary for n total terms, so a bulk load (the
// snapshot decoder) interns without incremental map and slice growth.
func (d *TermDict) grow(n int) {
	if n <= len(d.terms) {
		return
	}
	terms := make([]rdf.Term, len(d.terms), n)
	copy(terms, d.terms)
	ids := make(map[rdf.Term]ID, n)
	for t, id := range d.ids {
		ids[t] = id
	}
	d.terms, d.ids = terms, ids
}

// Clone returns an independent copy of the dictionary. IDs are preserved:
// every term interned in d has the same ID in the clone.
func (d *TermDict) Clone() *TermDict {
	out := &TermDict{
		terms: make([]rdf.Term, len(d.terms)),
		ids:   make(map[rdf.Term]ID, len(d.ids)),
	}
	copy(out.terms, d.terms)
	for t, id := range d.ids {
		out.ids[t] = id
	}
	return out
}
