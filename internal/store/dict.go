package store

import (
	"sync"
	"sync/atomic"

	"repro/internal/rdf"
)

// ID is a dense integer handle for a term interned in a TermDict. IDs are
// assigned in first-seen order starting at 0 and are stable for the lifetime
// of the dictionary: a term, once interned, keeps its ID forever.
type ID uint32

// NoID is the sentinel ID used for "absent": a wildcard position in an
// ID-level pattern, or the result of encoding a term the dictionary has
// never seen. No real term ever has this ID.
const NoID = ^ID(0)

// TermDict is an append-only interner mapping rdf.Term values to dense
// integer IDs and back. It is the heart of the store's dictionary encoding:
// the graph hashes each distinct term exactly once (on first insert) and all
// index probes, joins, and rule firings afterwards operate on uint32 keys.
//
// Concurrency contract: at most one goroutine may call Intern (or grow) at a
// time, but — unlike the graph's triple indexes, which readers access only
// through published snapshots — the dictionary is shared between the live
// graph and every pinned snapshot, so Lookup, Term, Kind, and Len are safe
// to call concurrently with an in-flight Intern. Decoding (Term, Kind, Len)
// is lock-free: the term table is published behind an atomic slice header,
// so a reader sees a consistent prefix. Lookup takes a short read-lock
// around the hash probe; the write-lock section of Intern is the map insert
// only, never I/O, so readers are at worst delayed by nanoseconds.
//
// A snapshot pinned at dictionary length n may observe terms interned after
// it was taken (IDs >= n). That over-approximation is harmless: no triple
// visible in the snapshot references such an ID.
//
//feo:mutable-type
type TermDict struct {
	// published is the reader-visible term table: an immutable slice header
	// whose elements [0, len) never change. Intern appends into the backing
	// array beyond the published length and then stores a longer header, so
	// concurrent decodes are race-free without a lock.
	published atomic.Pointer[[]rdf.Term]
	terms     []rdf.Term // writer-side view; len(terms) == published length

	mu  sync.RWMutex // guards ids
	ids map[rdf.Term]ID
}

// NewTermDict returns an empty dictionary.
//
//feo:fresh
func NewTermDict() *TermDict {
	d := &TermDict{ids: make(map[rdf.Term]ID)}
	d.publish()
	return d
}

// publish makes the current writer-side term table visible to readers.
//
//feo:mutates
func (d *TermDict) publish() {
	h := d.terms
	d.published.Store(&h)
}

// Intern returns the ID for t, assigning the next dense ID when t is new.
// Writer-only: see the concurrency contract above.
//
//feo:mutates
func (d *TermDict) Intern(t rdf.Term) ID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	id = ID(len(d.terms))
	// Append before publishing: the new element lies beyond every published
	// header's length, so no reader can observe it until the Store below.
	d.terms = append(d.terms, t)
	d.publish()
	d.mu.Lock()
	d.ids[t] = id
	d.mu.Unlock()
	return id
}

// Lookup returns the ID for t without interning. ok is false when t has
// never been interned; the returned ID is then NoID.
//
//feo:frozen-safe
func (d *TermDict) Lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id, true
	}
	return NoID, false
}

// Term decodes an ID back to its term. Decoding is an atomic header load and
// a slice index — no allocation, no hashing, no lock — which is what makes
// the store's decode-lazily read path cheap. Passing an ID the dictionary
// never issued panics.
//
//feo:frozen-safe
//feo:decodes
func (d *TermDict) Term(id ID) rdf.Term { return (*d.published.Load())[id] }

// Kind returns the TermKind of the term behind id without copying the
// term's strings out of the dictionary.
//
//feo:frozen-safe
func (d *TermDict) Kind(id ID) rdf.TermKind { return (*d.published.Load())[id].Kind }

// Len returns the number of interned terms.
//
//feo:frozen-safe
func (d *TermDict) Len() int { return len(*d.published.Load()) }

// snapshotTerms returns the published term table; the returned slice is
// immutable. Used by the snapshot encoder.
//
//feo:frozen-safe
//feo:decodes
func (d *TermDict) snapshotTerms() []rdf.Term { return *d.published.Load() }

// grow pre-sizes the dictionary for n total terms, so a bulk load (the
// snapshot decoder) interns without incremental map and slice growth.
// Writer-only.
//
//feo:mutates
func (d *TermDict) grow(n int) {
	if n <= len(d.terms) {
		return
	}
	terms := make([]rdf.Term, len(d.terms), n)
	copy(terms, d.terms)
	ids := make(map[rdf.Term]ID, n)
	d.mu.RLock()
	//feo:unordered // rebuild preserving key->ID pairs
	for t, id := range d.ids {
		ids[t] = id
	}
	d.mu.RUnlock()
	d.terms = terms
	d.publish()
	d.mu.Lock()
	d.ids = ids
	d.mu.Unlock()
}

// Clone returns an independent copy of the dictionary. IDs are preserved:
// every term interned in d has the same ID in the clone.
//
//feo:frozen-safe
//feo:fresh
func (d *TermDict) Clone() *TermDict {
	out := &TermDict{terms: make([]rdf.Term, len(d.terms))}
	copy(out.terms, d.terms)
	d.mu.RLock()
	out.ids = make(map[rdf.Term]ID, len(d.ids))
	//feo:unordered // map copy
	for t, id := range d.ids {
		out.ids[t] = id
	}
	d.mu.RUnlock()
	out.publish()
	return out
}
