// Package healthcoach simulates the "Health Coach" food recommendation
// service (Rastogi et al., ISWC 2020 demo) that the paper evaluates FEO
// against. The real Health Coach is an ML-based application; the paper
// treats it as a black box that emits recommendations which FEO then
// explains post hoc. This simulation produces the same artifact — a ranked
// recommendation with a decision trace — from a transparent content-based
// scorer over the food knowledge graph, so every recommendation FEO
// explains here is reproducible and the trace-based explanation type has
// real steps to surface.
//
// Scoring model (all weights in Weights):
//
//	hard constraints  allergen in recipe, condition-forbidden food,
//	                  explicitly disliked recipe           → excluded
//	soft signals      liked recipe overlap, in-season ingredients,
//	                  regional ingredients, diet match, protein vs goal,
//	                  cost vs budget                        → weighted sum
//
// The group mode (the paper's seafood-allergy example) applies every
// member's hard constraints and averages the soft scores.
//
// A Coach is stateless — two words of configuration over a graph, no
// caches — so constructing one per graph snapshot is free. feo.Snapshot
// relies on this: every pinned read handle gets its own Coach bound to
// the handle's frozen graph view, and recommendations are consistent with
// that version by construction.
package healthcoach

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/store"
)

// Weights tunes the soft scoring signals.
type Weights struct {
	LikedOverlap float64 // per shared ingredient with a liked recipe
	InSeason     float64 // per ingredient available in the current season
	InRegion     float64 // per ingredient available in the system's region
	DietMatch    float64 // recipe compatible with the user's diet
	Recommended  float64 // per condition-recommended ingredient
	CostPenalty  float64 // per cost level above 1
}

// DefaultWeights mirrors a plausible content-based configuration.
func DefaultWeights() Weights {
	return Weights{
		LikedOverlap: 2.0,
		InSeason:     1.5,
		InRegion:     0.5,
		DietMatch:    2.5,
		Recommended:  3.0,
		CostPenalty:  0.75,
	}
}

// TraceStep records one scoring decision; trace-based explanations render
// these verbatim.
type TraceStep struct {
	Rule   string  // short machine name, e.g. "in-season"
	Detail string  // human sentence fragment
	Delta  float64 // score contribution (0 for hard exclusions)
}

// Recommendation is a scored recipe with its decision trace.
type Recommendation struct {
	Recipe   rdf.Term
	Label    string
	Score    float64
	Excluded bool   // hard-constraint hit
	Reason   string // exclusion reason when Excluded
	Trace    []TraceStep
}

// Coach scores recipes in a knowledge graph for users. Entities (system,
// season, recipes) are resolved from the graph on every call, so data
// loaded after construction is picked up automatically. A Coach holds no
// per-call state: once the graph is quiescent, any number of goroutines
// may call Recommend/RecommendGroup concurrently (the system context each
// pass needs travels as a value, never through Coach fields).
type Coach struct {
	g *store.Graph
	w Weights
}

// New builds a Coach over a (materialized) graph.
func New(g *store.Graph, w Weights) *Coach {
	return &Coach{g: g, w: w}
}

// System returns the system individual the coach recommends on behalf of.
func (c *Coach) System() rdf.Term {
	systems := c.g.InstancesOf(ontology.EOSystem)
	if len(systems) == 0 {
		return rdf.Term{}
	}
	return systems[0]
}

// Season returns the system's current season.
func (c *Coach) Season() rdf.Term {
	return c.g.FirstObject(c.System(), ontology.FEOHasSeason)
}

// sysContext is the system state one recommendation pass scores against.
// It is re-read from the graph per pass and passed by value so concurrent
// passes never share mutable Coach state.
type sysContext struct {
	season, region rdf.Term
}

// refresh re-reads the system context before a recommendation pass.
func (c *Coach) refresh() (sysContext, []rdf.Term) {
	sys := c.System()
	return sysContext{
		season: c.g.FirstObject(sys, ontology.FEOHasSeason),
		region: c.g.FirstObject(sys, ontology.FEOLocatedIn),
	}, c.g.InstancesOf(ontology.FoodRecipe)
}

// Recommend ranks every non-excluded recipe for the user, best first.
// Excluded recipes are returned after the ranked ones with Excluded=true,
// so explanation code can also answer "why NOT X".
func (c *Coach) Recommend(user rdf.Term, limit int) []Recommendation {
	sc, recipes := c.refresh()
	recs := make([]Recommendation, 0, len(recipes))
	for _, r := range recipes {
		recs = append(recs, c.scoreOne(sc, user, r))
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Excluded != recs[j].Excluded {
			return !recs[i].Excluded
		}
		if recs[i].Score != recs[j].Score {
			return recs[i].Score > recs[j].Score
		}
		return recs[i].Label < recs[j].Label
	})
	if limit > 0 && limit < len(recs) {
		recs = recs[:limit]
	}
	return recs
}

// RecommendGroup ranks recipes for a group: any member's hard constraint
// excludes the recipe (the paper's seafood-allergy family example), soft
// scores are averaged across members.
func (c *Coach) RecommendGroup(users []rdf.Term, limit int) []Recommendation {
	if len(users) == 0 {
		return nil
	}
	sc, recipes := c.refresh()
	recs := make([]Recommendation, 0, len(recipes))
	for _, r := range recipes {
		var sum float64
		var merged Recommendation
		merged.Recipe = r
		merged.Label = c.label(r)
		for _, u := range users {
			one := c.scoreOne(sc, u, r)
			if one.Excluded {
				merged.Excluded = true
				merged.Reason = fmt.Sprintf("%s (member %s)", one.Reason, c.label(u))
				merged.Trace = append(merged.Trace, TraceStep{
					Rule:   "group-exclusion",
					Detail: merged.Reason,
				})
				break
			}
			sum += one.Score
			merged.Trace = append(merged.Trace, one.Trace...)
		}
		if !merged.Excluded {
			merged.Score = sum / float64(len(users))
		}
		recs = append(recs, merged)
	}
	sort.SliceStable(recs, func(i, j int) bool {
		if recs[i].Excluded != recs[j].Excluded {
			return !recs[i].Excluded
		}
		if recs[i].Score != recs[j].Score {
			return recs[i].Score > recs[j].Score
		}
		return recs[i].Label < recs[j].Label
	})
	if limit > 0 && limit < len(recs) {
		recs = recs[:limit]
	}
	return recs
}

func (c *Coach) scoreOne(sc sysContext, user, recipe rdf.Term) Recommendation {
	rec := Recommendation{Recipe: recipe, Label: c.label(recipe)}
	ingredients := c.g.Objects(recipe, ontology.FEOHasIngredient)

	// Hard constraint: explicit dislike of the recipe.
	if c.g.Has(user, ontology.FEODislike, recipe) {
		rec.Excluded = true
		rec.Reason = "explicitly disliked"
		return rec
	}
	// Hard constraint: allergens.
	for _, allergen := range c.g.Objects(user, ontology.FEOAllergicTo) {
		if allergen == recipe {
			rec.Excluded = true
			rec.Reason = fmt.Sprintf("allergic to %s", c.label(allergen))
			return rec
		}
		for _, ing := range ingredients {
			if ing == allergen {
				rec.Excluded = true
				rec.Reason = fmt.Sprintf("contains allergen %s", c.label(allergen))
				return rec
			}
		}
	}
	// Hard constraint: condition-forbidden foods. feo:forbids has been
	// closed over ingredients by the reasoner, so a direct lookup suffices.
	for _, cond := range c.g.Objects(user, ontology.FEOHasCondition) {
		if c.g.Has(cond, ontology.FEOForbids, recipe) {
			rec.Excluded = true
			rec.Reason = fmt.Sprintf("forbidden by condition %s", c.label(cond))
			return rec
		}
		for _, ing := range ingredients {
			if c.g.Has(cond, ontology.FEOForbids, ing) {
				rec.Excluded = true
				rec.Reason = fmt.Sprintf("condition %s forbids ingredient %s", c.label(cond), c.label(ing))
				return rec
			}
		}
	}

	add := func(rule, detail string, delta float64) {
		rec.Score += delta
		rec.Trace = append(rec.Trace, TraceStep{Rule: rule, Detail: detail, Delta: delta})
	}

	// Liked-recipe ingredient overlap.
	likedIngredients := make(map[rdf.Term]bool)
	for _, liked := range c.g.Objects(user, ontology.FEOLike) {
		if liked == recipe {
			add("liked", "the user likes this exact recipe", 2*c.w.LikedOverlap)
			continue
		}
		for _, ing := range c.g.Objects(liked, ontology.FEOHasIngredient) {
			likedIngredients[ing] = true
		}
	}
	for _, ing := range ingredients {
		if likedIngredients[ing] {
			add("liked-overlap", fmt.Sprintf("shares %s with a liked recipe", c.label(ing)), c.w.LikedOverlap)
		}
	}
	// Seasonal and regional availability.
	for _, ing := range ingredients {
		if sc.season.IsValid() && c.g.Has(ing, ontology.FEOAvailableIn, sc.season) {
			add("in-season", fmt.Sprintf("%s is available in the current season", c.label(ing)), c.w.InSeason)
		}
		if sc.region.IsValid() && c.g.Has(ing, ontology.FEOAvailableInRegion, sc.region) {
			add("in-region", fmt.Sprintf("%s is local to the system's region", c.label(ing)), c.w.InRegion)
		}
	}
	// Diet compatibility.
	for _, diet := range c.g.Objects(user, ontology.FEOHasDiet) {
		if c.g.Has(recipe, ontology.FEOCompatibleWithDiet, diet) {
			add("diet-match", fmt.Sprintf("compatible with the user's %s diet", c.label(diet)), c.w.DietMatch)
		}
	}
	// Condition-recommended ingredients (e.g. folate for pregnancy).
	for _, cond := range c.g.Objects(user, ontology.FEOHasCondition) {
		for _, ing := range ingredients {
			if c.g.Has(cond, ontology.FEORecommends, ing) {
				add("condition-recommended",
					fmt.Sprintf("%s is recommended for %s", c.label(ing), c.label(cond)), c.w.Recommended)
			}
		}
	}
	// Cost penalty.
	if lvl, ok := c.g.FirstObject(recipe, ontology.FoodCostLevel).Int(); ok && lvl > 1 {
		add("cost", fmt.Sprintf("cost level %d", lvl), -c.w.CostPenalty*float64(lvl-1))
	}
	return rec
}

func (c *Coach) label(t rdf.Term) string {
	if l := c.g.FirstObject(t, rdf.LabelIRI); l.IsValid() {
		return l.Value
	}
	if q, ok := c.g.Namespaces().Shrink(t.Value); ok {
		if i := strings.IndexByte(q, ':'); i >= 0 {
			return spaceCamel(q[i+1:])
		}
		return q
	}
	return t.Value
}

// spaceCamel turns "ButternutSquashSoup" into "Butternut Squash Soup" for
// label fallbacks on unlabeled individuals.
func spaceCamel(s string) string {
	out := make([]rune, 0, len(s)+4)
	runes := []rune(s)
	for i, r := range runes {
		if i > 0 && r >= 'A' && r <= 'Z' && runes[i-1] >= 'a' && runes[i-1] <= 'z' {
			out = append(out, ' ')
		}
		out = append(out, r)
	}
	return string(out)
}

// Assert writes the recommendation into the graph in FEO terms: the system
// eo:recommends the recipe and a feo:FoodRecommendation individual links
// the pieces, so SPARQL-based explanation generators can see it.
func (c *Coach) Assert(rec Recommendation, seq int) rdf.Term {
	node := rdf.NewIRI(rdf.KGNS + fmt.Sprintf("recommendation/r%04d", seq))
	c.g.Add(node, rdf.TypeIRI, ontology.FEOFoodRecommendation)
	c.g.Add(node, ontology.EORecommends, rec.Recipe)
	if sys := c.System(); sys.IsValid() {
		c.g.Add(node, ontology.EOGeneratedBy, sys)
		c.g.Add(sys, ontology.EORecommends, rec.Recipe)
	}
	return node
}
