package healthcoach

import (
	"strings"
	"testing"

	"repro/internal/foodkg"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/store"
	"repro/internal/turtle"
)

// smallWorld builds a tiny hand-written world where the right answers are
// obvious.
func smallWorld(t *testing.T) *store.Graph {
	t.Helper()
	g := ontology.TBox()
	err := turtle.ParseInto(g, `
@prefix eo:   <https://purl.org/heals/eo#> .
@prefix feo:  <https://purl.org/heals/feo#> .
@prefix food: <http://purl.org/heals/food/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix kg:   <https://purl.org/heals/foodkg/> .

kg:autumn a food:Season ; rdfs:label "Autumn" .
kg:sys a eo:System ; feo:hasSeason kg:autumn .

kg:squash a food:Ingredient ; rdfs:label "Squash" ; feo:availableIn kg:autumn .
kg:broccoli a food:Ingredient ; rdfs:label "Broccoli" .
kg:cheddar a food:Ingredient ; rdfs:label "Cheddar" .
kg:rawfish a food:Ingredient ; rdfs:label "RawFish" .
kg:rice a food:Ingredient ; rdfs:label "Rice" .

kg:squashSoup a food:Recipe ; rdfs:label "SquashSoup" ;
    feo:hasIngredient kg:squash ; food:costLevel 1 .
kg:broccoliSoup a food:Recipe ; rdfs:label "BroccoliSoup" ;
    feo:hasIngredient kg:broccoli , kg:cheddar ; food:costLevel 1 .
kg:sushi a food:Recipe ; rdfs:label "Sushi" ;
    feo:hasIngredient kg:rawfish , kg:rice ; food:costLevel 3 .

kg:pregnancy a feo:ConditionCharacteristic ; rdfs:label "Pregnancy" ;
    feo:forbids kg:rawfish .

kg:alice a food:User ; feo:like kg:broccoliSoup ; feo:allergicTo kg:broccoli .
kg:bob a food:User ; feo:like kg:sushi .
kg:carol a food:User ; feo:hasCondition kg:pregnancy .
`)
	if err != nil {
		t.Fatal(err)
	}
	reasoner.New(reasoner.Options{}).Materialize(g)
	return g
}

func kgIRI(s string) rdf.Term { return rdf.NewIRI(rdf.KGNS + s) }

func TestAllergenExcluded(t *testing.T) {
	g := smallWorld(t)
	coach := New(g, DefaultWeights())
	recs := coach.Recommend(kgIRI("alice"), 0)
	for _, r := range recs {
		if r.Recipe == kgIRI("broccoliSoup") {
			if !r.Excluded {
				t.Error("broccoli soup must be excluded for the allergic user")
			}
			if !strings.Contains(r.Reason, "allergen") {
				t.Errorf("reason = %q, want allergen mention", r.Reason)
			}
		}
	}
	// The top pick must be the in-season squash soup.
	if recs[0].Recipe != kgIRI("squashSoup") {
		t.Errorf("top pick = %v, want squashSoup", recs[0].Label)
	}
}

func TestConditionForbiddenExcluded(t *testing.T) {
	g := smallWorld(t)
	coach := New(g, DefaultWeights())
	recs := coach.Recommend(kgIRI("carol"), 0)
	for _, r := range recs {
		if r.Recipe == kgIRI("sushi") {
			if !r.Excluded {
				t.Fatal("sushi must be excluded for the pregnant user (forbidden raw fish)")
			}
			if !strings.Contains(r.Reason, "Pregnancy") {
				t.Errorf("reason = %q, want condition mention", r.Reason)
			}
		}
	}
}

func TestLikedBoost(t *testing.T) {
	g := smallWorld(t)
	coach := New(g, DefaultWeights())
	recs := coach.Recommend(kgIRI("bob"), 1)
	if recs[0].Recipe != kgIRI("sushi") {
		t.Errorf("bob's top pick = %v, want liked sushi", recs[0].Label)
	}
	foundLikeStep := false
	for _, s := range recs[0].Trace {
		if s.Rule == "liked" {
			foundLikeStep = true
		}
	}
	if !foundLikeStep {
		t.Error("trace should record the liked-recipe step")
	}
}

func TestSeasonalBoostTraced(t *testing.T) {
	g := smallWorld(t)
	coach := New(g, DefaultWeights())
	recs := coach.Recommend(kgIRI("carol"), 0)
	var squash *Recommendation
	for i := range recs {
		if recs[i].Recipe == kgIRI("squashSoup") {
			squash = &recs[i]
		}
	}
	if squash == nil {
		t.Fatal("squash soup missing from results")
	}
	seasonal := false
	for _, s := range squash.Trace {
		if s.Rule == "in-season" && s.Delta > 0 {
			seasonal = true
		}
	}
	if !seasonal {
		t.Errorf("squash soup should carry an in-season trace step: %+v", squash.Trace)
	}
}

func TestGroupExclusionPropagates(t *testing.T) {
	// The paper's intro scenario: one member's allergy precludes the recipe
	// for the whole group.
	g := smallWorld(t)
	coach := New(g, DefaultWeights())
	group := []rdf.Term{kgIRI("alice"), kgIRI("bob")}
	recs := coach.RecommendGroup(group, 0)
	for _, r := range recs {
		if r.Recipe == kgIRI("broccoliSoup") && !r.Excluded {
			t.Error("group recommendation must exclude the allergen recipe")
		}
	}
	if recs[0].Excluded {
		t.Error("best group pick should not be excluded")
	}
	if coach.RecommendGroup(nil, 0) != nil {
		t.Error("empty group should return nil")
	}
}

func TestDislikeExcluded(t *testing.T) {
	g := smallWorld(t)
	g.Add(kgIRI("bob"), ontology.FEODislike, kgIRI("broccoliSoup"))
	coach := New(g, DefaultWeights())
	for _, r := range coach.Recommend(kgIRI("bob"), 0) {
		if r.Recipe == kgIRI("broccoliSoup") && !r.Excluded {
			t.Error("disliked recipe must be excluded")
		}
	}
}

func TestCostPenaltyApplied(t *testing.T) {
	g := smallWorld(t)
	coach := New(g, DefaultWeights())
	recs := coach.Recommend(kgIRI("carol"), 0)
	for _, r := range recs {
		if r.Recipe == kgIRI("sushi") {
			continue // excluded
		}
		for _, s := range r.Trace {
			if s.Rule == "cost" && s.Delta >= 0 {
				t.Error("cost trace step should be negative")
			}
		}
	}
}

func TestAssertWritesRecommendation(t *testing.T) {
	g := smallWorld(t)
	coach := New(g, DefaultWeights())
	recs := coach.Recommend(kgIRI("bob"), 1)
	node := coach.Assert(recs[0], 1)
	if !g.IsA(node, ontology.FEOFoodRecommendation) {
		t.Error("recommendation node missing type")
	}
	if !g.Has(node, ontology.EORecommends, recs[0].Recipe) {
		t.Error("recommendation missing eo:recommends")
	}
	if !g.Has(coach.System(), ontology.EORecommends, recs[0].Recipe) {
		t.Error("system-level eo:recommends missing")
	}
}

func TestRecommendOnGeneratedKG(t *testing.T) {
	cfg := foodkg.DefaultConfig()
	cfg.Recipes, cfg.Ingredients, cfg.Users = 50, 40, 10
	kg := foodkg.Generate(cfg)
	g := ontology.TBox()
	g.Merge(kg.Graph)
	reasoner.New(reasoner.Options{}).Materialize(g)
	coach := New(g, DefaultWeights())
	for _, u := range kg.Users {
		recs := coach.Recommend(u, 5)
		if len(recs) == 0 {
			t.Fatalf("no recommendations for %v", u)
		}
		// Ranked output is sorted and the top result has a trace.
		for i := 1; i < len(recs); i++ {
			if !recs[i-1].Excluded && !recs[i].Excluded && recs[i-1].Score < recs[i].Score {
				t.Fatal("recommendations not sorted by score")
			}
		}
	}
}

func TestDeterministicRanking(t *testing.T) {
	g := smallWorld(t)
	coach := New(g, DefaultWeights())
	a := coach.Recommend(kgIRI("carol"), 0)
	b := coach.Recommend(kgIRI("carol"), 0)
	if len(a) != len(b) {
		t.Fatal("rank length varies")
	}
	for i := range a {
		if a[i].Recipe != b[i].Recipe {
			t.Fatal("ranking not deterministic")
		}
	}
}
