package sparql

// Random graph and query generators for the reference-equivalence harness
// and the fuzz seed corpora. Queries are generated as source text (so the
// parser is part of the tested pipeline) over a small term universe that
// forces real joins: a handful of subjects, predicates, classes, and
// literals, plus constants the graph does NOT contain (to exercise the
// absent-constant planning paths).
//
// Numeric literals are integers only: float aggregation folds values in
// engine row order, and while the multiset of values is identical across
// engines, float addition is not associative — integer sums are exact and
// order-independent, which keeps SUM/AVG comparisons meaningful.

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

type gen struct {
	rng *rand.Rand
	// graph-term pools, as SPARQL source fragments
	subjects []string
	preds    []string
	objects  []string
	// vars in play
	varSeq int
}

func newGen(rng *rand.Rand) *gen {
	g := &gen{rng: rng}
	for i := 0; i < 8; i++ {
		g.subjects = append(g.subjects, fmt.Sprintf("<http://ex/s%d>", i))
	}
	for i := 0; i < 5; i++ {
		g.preds = append(g.preds, fmt.Sprintf("<http://ex/p%d>", i))
	}
	g.objects = append(g.objects, g.subjects...)
	for i := 0; i < 4; i++ {
		g.objects = append(g.objects, fmt.Sprintf("<http://ex/c%d>", i))
	}
	for i := 0; i < 6; i++ {
		g.objects = append(g.objects, fmt.Sprintf("%d", i))
	}
	for _, s := range []string{`"a"`, `"b"`, `"c"`, `"a"@en`, `"b"@de`} {
		g.objects = append(g.objects, s)
	}
	return g
}

func (g *gen) pick(pool []string) string { return pool[g.rng.Intn(len(pool))] }

// genGraph builds a random graph over the generator's term universe, with
// enough edge reuse that joins, fused type patterns, and path closures all
// have work to do.
func (g *gen) genGraph() *store.Graph {
	out := store.New()
	n := 150 + g.rng.Intn(150)
	var ttl strings.Builder
	for i := 0; i < n; i++ {
		s := g.pick(g.subjects)
		p := g.pick(g.preds)
		o := g.pick(g.objects)
		if g.rng.Intn(5) == 0 {
			// rdf:type edges feed the fused intersection runs.
			p = "<" + rdf.TypeIRI.Value + ">"
			o = fmt.Sprintf("<http://ex/c%d>", g.rng.Intn(4))
		}
		fmt.Fprintf(&ttl, "%s %s %s .\n", s, p, o)
	}
	// A chain so p0+ / p0* closures have depth.
	for i := 0; i+1 < len(g.subjects); i++ {
		fmt.Fprintf(&ttl, "%s <http://ex/p0> %s .\n", g.subjects[i], g.subjects[i+1])
	}
	mustParseTurtleInto(out, ttl.String())
	return out
}

// mutate applies one random add or remove to the graph.
func (g *gen) mutate(gr *store.Graph) {
	term := func(src string) rdf.Term {
		src = strings.TrimSuffix(strings.TrimPrefix(src, "<"), ">")
		return rdf.NewIRI(src)
	}
	s := term(g.pick(g.subjects))
	p := term(g.pick(g.preds))
	o := term(g.pick(g.subjects))
	if g.rng.Intn(2) == 0 {
		gr.Add(s, p, o)
	} else {
		gr.Remove(s, p, o)
	}
}

func (g *gen) freshVar() string {
	g.varSeq++
	return fmt.Sprintf("?v%d", g.varSeq)
}

// someVar returns a variable already in play most of the time, minting a
// fresh one otherwise (shared variables are what make joins join).
func (g *gen) someVar() string {
	if g.varSeq > 0 && g.rng.Intn(3) != 0 {
		return fmt.Sprintf("?v%d", 1+g.rng.Intn(g.varSeq))
	}
	return g.freshVar()
}

// genTerm returns a term position: mostly graph terms, sometimes a
// constant the graph cannot contain.
func (g *gen) genTerm(pool []string) string {
	if g.rng.Intn(20) == 0 {
		return "<http://ex/absent>"
	}
	return g.pick(pool)
}

func (g *gen) genTriple() string {
	s := g.someVar()
	if g.rng.Intn(4) == 0 {
		s = g.genTerm(g.subjects)
	}
	o := g.freshVar()
	if g.rng.Intn(2) == 0 {
		o = g.someVar()
	}
	if g.rng.Intn(5) == 0 {
		o = g.genTerm(g.objects)
	}
	if g.rng.Intn(6) == 0 {
		return fmt.Sprintf("%s %s %s .", s, g.genPath(2), o)
	}
	p := g.genTerm(g.preds)
	if g.rng.Intn(8) == 0 {
		p = g.someVar()
	}
	if g.rng.Intn(7) == 0 {
		// a-typed pattern: feeds fused runs when repeated
		return fmt.Sprintf("%s a <http://ex/c%d> .", s, g.rng.Intn(4))
	}
	return fmt.Sprintf("%s %s %s .", s, p, o)
}

func (g *gen) genPath(depth int) string {
	if depth == 0 || g.rng.Intn(3) == 0 {
		return g.pick(g.preds)
	}
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s/%s)", g.genPath(depth-1), g.genPath(depth-1))
	case 1:
		return fmt.Sprintf("(%s|%s)", g.genPath(depth-1), g.genPath(depth-1))
	case 2:
		return fmt.Sprintf("^(%s)", g.genPath(depth-1))
	case 3:
		return fmt.Sprintf("%s*", g.pick(g.preds))
	case 4:
		return fmt.Sprintf("%s+", g.pick(g.preds))
	default:
		return fmt.Sprintf("%s?", g.pick(g.preds))
	}
}

func (g *gen) genFilter() string {
	v := g.someVar()
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("FILTER(BOUND(%s))", v)
	case 1:
		return fmt.Sprintf("FILTER(%s %s %s)", v, g.pick([]string{"<", ">", "<=", ">=", "=", "!="}), g.pick(g.objects))
	case 2:
		return fmt.Sprintf("FILTER(%s = %s)", v, g.someVar())
	case 3:
		return fmt.Sprintf("FILTER EXISTS { %s }", g.genTriple())
	case 4:
		return fmt.Sprintf("FILTER NOT EXISTS { %s }", g.genTriple())
	case 5:
		return fmt.Sprintf("FILTER(REGEX(STR(%s), %q))", v, g.pick([]string{"a", "s[0-3]", "c"}))
	case 6:
		return fmt.Sprintf("FILTER(ISIRI(%s) || ISLITERAL(%s))", v, g.someVar())
	default:
		return fmt.Sprintf("FILTER(%s IN (%s, %s))", v, g.pick(g.objects), g.pick(g.objects))
	}
}

func (g *gen) genBind() string {
	target := g.freshVar()
	v := g.someVar()
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("BIND((1 + 2) AS %s)", target)
	case 1:
		return fmt.Sprintf("BIND(STR(%s) AS %s)", v, target)
	case 2:
		return fmt.Sprintf("BIND(IF(BOUND(%s), 1, 0) AS %s)", v, target)
	default:
		return fmt.Sprintf("BIND(UCASE(STR(%s)) AS %s)", v, target)
	}
}

func (g *gen) genValues() string {
	v1 := g.someVar()
	var rows []string
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		cell := g.pick(g.objects)
		if g.rng.Intn(5) == 0 {
			cell = `"novel-value"`
		}
		if g.rng.Intn(6) == 0 {
			cell = "UNDEF"
		}
		rows = append(rows, "("+cell+")")
	}
	return fmt.Sprintf("VALUES (%s) { %s }", v1, strings.Join(rows, " "))
}

// genGroupBody emits the inside of a group graph pattern.
func (g *gen) genGroupBody(depth int) string {
	var parts []string
	for i := 0; i < 1+g.rng.Intn(3); i++ {
		parts = append(parts, g.genTriple())
	}
	if depth > 0 {
		switch g.rng.Intn(6) {
		case 0:
			parts = append(parts, fmt.Sprintf("OPTIONAL { %s }", g.genGroupBody(depth-1)))
		case 1:
			parts = append(parts, fmt.Sprintf("{ %s } UNION { %s }", g.genGroupBody(depth-1), g.genGroupBody(depth-1)))
		case 2:
			parts = append(parts, fmt.Sprintf("MINUS { %s }", g.genGroupBody(depth-1)))
		case 3:
			parts = append(parts, g.genBind())
		case 4:
			parts = append(parts, g.genValues())
		}
	}
	for g.rng.Intn(3) == 0 {
		parts = append(parts, g.genFilter())
	}
	return strings.Join(parts, " ")
}

// genQuery emits a full SELECT or ASK query over the generator's universe.
func (g *gen) genQuery() string {
	g.varSeq = 0
	body := g.genGroupBody(2)
	if g.rng.Intn(10) == 0 {
		return fmt.Sprintf("ASK { %s }", body)
	}
	if g.rng.Intn(6) == 0 && g.varSeq >= 2 {
		// Grouped + aggregated.
		key := fmt.Sprintf("?v%d", 1+g.rng.Intn(g.varSeq))
		arg := fmt.Sprintf("?v%d", 1+g.rng.Intn(g.varSeq))
		agg := g.pick([]string{"COUNT", "SUM", "MIN", "MAX", "SAMPLE"})
		distinct := ""
		if g.rng.Intn(3) == 0 {
			distinct = "DISTINCT "
		}
		q := fmt.Sprintf("SELECT %s (%s(%s%s) AS ?agg) WHERE { %s } GROUP BY %s", key, agg, distinct, arg, body, key)
		if g.rng.Intn(3) == 0 {
			q += fmt.Sprintf(" HAVING(COUNT(%s) >= 1)", arg)
		}
		return q
	}
	// Plain projection.
	proj := "*"
	if g.varSeq > 0 && g.rng.Intn(3) != 0 {
		n := 1 + g.rng.Intn(min(3, g.varSeq))
		seen := map[int]bool{}
		var vars []string
		for len(vars) < n {
			i := 1 + g.rng.Intn(g.varSeq)
			if !seen[i] {
				seen[i] = true
				vars = append(vars, fmt.Sprintf("?v%d", i))
			}
		}
		if g.rng.Intn(5) == 0 {
			vars = append(vars, fmt.Sprintf("(STR(%s) AS ?alias)", vars[0]))
		}
		proj = strings.Join(vars, " ")
	}
	distinct := ""
	if g.rng.Intn(4) == 0 {
		distinct = "DISTINCT "
	}
	q := fmt.Sprintf("SELECT %s%s WHERE { %s }", distinct, proj, body)
	if g.rng.Intn(8) == 0 && g.varSeq > 0 {
		q += fmt.Sprintf(" ORDER BY ?v%d", 1+g.rng.Intn(g.varSeq))
	}
	return q
}
