package sparql

import (
	"testing"
)

// Benchmarks for the parallel executor, recorded in the BENCH_*.json
// trajectory now that scripts/bench.sh sweeps ./... . The seq variant pins
// parallelism 1 (the reference implementation); auto resolves the knob to
// GOMAXPROCS, so on a multi-core runner the pair measures the fan-out
// speedup and on a single-core runner they should coincide (the morsel
// scheduler never engages without a second worker).

func benchQueries() []struct{ name, query string } {
	return []struct{ name, query string }{
		{"join", `SELECT ?a ?b ?v WHERE { ?a <http://w/next> ?b . ?b <http://w/val> ?v }`},
		{"filter-exists", `SELECT ?c WHERE { ?c <http://w/val> ?v . FILTER NOT EXISTS { ?c <http://w/next> ?g } }`},
		{"path-plus", `SELECT ?x WHERE { <http://w/root> <http://w/next>+ ?x }`},
		{"optional", `SELECT ?c ?g WHERE { ?c a <http://w/Node> . OPTIONAL { ?c <http://w/next> ?g } }`},
	}
}

func BenchmarkParallelExecute(b *testing.B) {
	g := buildWideGraph(400, 8)
	old := Parallelism()
	b.Cleanup(func() { SetParallelism(old) })
	for _, tc := range benchQueries() {
		q, err := ParseQuery(tc.query)
		if err != nil {
			b.Fatalf("%s: %v", tc.name, err)
		}
		for _, mode := range []struct {
			name string
			par  int
		}{{"seq", 1}, {"auto", 0}} {
			b.Run(tc.name+"/"+mode.name, func(b *testing.B) {
				SetParallelism(mode.par)
				res, err := Execute(g, q)
				if err != nil {
					b.Fatalf("%s: %v", tc.name, err)
				}
				if res.Len() == 0 {
					b.Fatalf("%s: no rows", tc.name)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := Execute(g, q); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
