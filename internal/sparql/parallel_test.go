package sparql

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// forceParallel pins the parallelism knob to n and drops the fan-out
// threshold to 1 so even the tiny test corpora exercise every parallel
// code path; both globals are restored on cleanup.
func forceParallel(t *testing.T, n int) {
	t.Helper()
	oldMin := fanoutMin
	oldPar := Parallelism()
	fanoutMin = 1
	SetParallelism(n)
	t.Cleanup(func() {
		fanoutMin = oldMin
		SetParallelism(oldPar)
	})
}

// canonicalRows renders a solution multiset order-insensitively.
func canonicalRows(res *Result) []string {
	rows := make([]string, 0, len(res.Solutions))
	for _, sol := range res.Solutions {
		parts := make([]string, 0, len(sol))
		for v, t := range sol {
			parts = append(parts, v+"="+t.String())
		}
		sort.Strings(parts)
		rows = append(rows, strings.Join(parts, "|"))
	}
	sort.Strings(rows)
	return rows
}

// parallelCorpus is the operator coverage for sequential-vs-parallel
// equivalence: one query per evaluator code path the worker pool touches.
var parallelCorpus = []struct{ name, query string }{
	{"bgp-join", `PREFIX ex: <http://e/> SELECT ?p ?f WHERE { ?p a ex:Person . ?p ex:likes ?f }`},
	{"bgp-3way", `PREFIX ex: <http://e/> SELECT ?p ?f ?c WHERE { ?p a ex:Person . ?p ex:likes ?f . ?f ex:cuisine ?c }`},
	{"shared-var", `PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:likes ?x }`},
	{"filter-cmp", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a >= 30) }`},
	{"filter-regex", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:name ?n . FILTER(REGEX(?n, "^[AB]")) }`},
	{"not-exists", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p a ex:Person . FILTER NOT EXISTS { ?p ex:likes ?f } }`},
	{"exists", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p a ex:Person . FILTER EXISTS { ?p ex:likes ex:pizza } }`},
	{"optional", `PREFIX ex: <http://e/> SELECT ?p ?f WHERE { ?p a ex:Person . OPTIONAL { ?p ex:likes ?f } }`},
	{"union", `PREFIX ex: <http://e/> SELECT ?x WHERE { { ?x a ex:Person } UNION { ?x a ex:Food } }`},
	{"minus", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p a ex:Person . MINUS { ?p ex:likes ex:sushi } }`},
	{"bind", `PREFIX ex: <http://e/> SELECT ?p ?n2 WHERE { ?p ex:age ?a . BIND(?a * 2 AS ?n2) }`},
	{"values", `PREFIX ex: <http://e/> SELECT ?p ?f WHERE { ?p ex:likes ?f . VALUES ?f { ex:pizza ex:sushi } }`},
	{"distinct", `PREFIX ex: <http://e/> SELECT DISTINCT ?f WHERE { ?p ex:likes ?f }`},
	{"order-limit", `PREFIX ex: <http://e/> SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY DESC(?a) LIMIT 2`},
	{"aggregate", `PREFIX ex: <http://e/> SELECT ?f (COUNT(?p) AS ?n) WHERE { ?p ex:likes ?f } GROUP BY ?f`},
	{"having", `PREFIX ex: <http://e/> SELECT ?f (COUNT(?p) AS ?n) WHERE { ?p ex:likes ?f } GROUP BY ?f HAVING(COUNT(?p) > 1)`},
	{"path-seq", `PREFIX ex: <http://e/> SELECT ?p ?i WHERE { ?p ex:likes/ex:contains ?i }`},
	{"path-alt-plus", `PREFIX ex: <http://e/> SELECT ?x WHERE { ex:alice (ex:likes|ex:contains)+ ?x }`},
	{"path-inverse", `PREFIX ex: <http://e/> SELECT ?p WHERE { ex:pizza ^ex:likes ?p }`},
	{"path-star-unbound", `PREFIX ex: <http://e/> SELECT ?a ?b WHERE { ?a ex:likes* ?b }`},
	{"path-zero-or-one", `PREFIX ex: <http://e/> SELECT ?x WHERE { ex:alice ex:likes? ?x }`},
	{"var-predicate", `PREFIX ex: <http://e/> SELECT ?pred WHERE { ex:alice ?pred ?o }`},
	{"subselect", `PREFIX ex: <http://e/> SELECT ?p ?f WHERE { ?p a ex:Person . { SELECT ?f WHERE { ?f a ex:Food } } }`},
}

// TestParallelEquivalence runs the operator corpus at parallelism 1, 2, 4,
// and GOMAXPROCS and requires the same solution multiset and variable list
// from each. fanoutMin is forced to 1 so the parallel paths genuinely run.
func TestParallelEquivalence(t *testing.T) {
	g := testGraph(t, fixture)
	levels := []int{2, 4, runtime.GOMAXPROCS(0)}
	for _, tc := range parallelCorpus {
		t.Run(tc.name, func(t *testing.T) {
			forceParallel(t, 1)
			q, err := ParseQuery(tc.query)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			ref, err := Execute(g, q)
			if err != nil {
				t.Fatalf("sequential execute: %v", err)
			}
			want := canonicalRows(ref)
			for _, par := range levels {
				SetParallelism(par)
				res, err := Execute(g, q)
				if err != nil {
					t.Fatalf("parallel(%d) execute: %v", par, err)
				}
				if got := canonicalRows(res); strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Errorf("parallelism %d: solutions differ\npar:\n%s\nseq:\n%s",
						par, strings.Join(got, "\n"), strings.Join(want, "\n"))
				}
				if strings.Join(res.Vars, ",") != strings.Join(ref.Vars, ",") {
					t.Errorf("parallelism %d: vars %v != %v", par, res.Vars, ref.Vars)
				}
			}
		})
	}
}

// buildWideGraph returns a synthetic graph big enough that the default
// fan-out threshold engages: a two-level star (fan wide children, each
// with grand grandchildren) plus typed, numbered leaves.
func buildWideGraph(fan, grand int) *store.Graph {
	g := store.New()
	next := rdf.NewIRI("http://w/next")
	val := rdf.NewIRI("http://w/val")
	kind := rdf.NewIRI("http://w/Node")
	root := rdf.NewIRI("http://w/root")
	for i := 0; i < fan; i++ {
		child := rdf.NewIRI(fmt.Sprintf("http://w/c%d", i))
		g.Add(root, next, child)
		g.Add(child, rdf.TypeIRI, kind)
		g.Add(child, val, rdf.NewInt(int64(i)))
		for j := 0; j < grand; j++ {
			gc := rdf.NewIRI(fmt.Sprintf("http://w/c%d_%d", i, j))
			g.Add(child, next, gc)
			g.Add(gc, val, rdf.NewInt(int64(i*grand+j)))
		}
	}
	return g
}

// TestParallelEquivalenceWide repeats the equivalence check on a graph
// whose intermediate row sets exceed the production fan-out threshold, so
// the morsel scheduler runs with its real chunk sizes (no test hooks).
func TestParallelEquivalenceWide(t *testing.T) {
	g := buildWideGraph(300, 6)
	queries := []struct{ name, query string }{
		{"join", `SELECT ?a ?b ?v WHERE { ?a <http://w/next> ?b . ?b <http://w/val> ?v }`},
		{"filter", `SELECT ?c WHERE { ?c <http://w/val> ?v . FILTER(?v >= 150 && ?v < 1000) }`},
		{"not-exists", `SELECT ?c WHERE { ?c a <http://w/Node> . FILTER NOT EXISTS { ?x <http://w/next> ?c } }`},
		{"optional", `SELECT ?c ?g WHERE { ?c a <http://w/Node> . OPTIONAL { ?c <http://w/next> ?g } }`},
		{"path-plus", `SELECT ?x WHERE { <http://w/root> <http://w/next>+ ?x }`},
		{"path-unbound", `SELECT ?a ?b WHERE { ?a <http://w/next>+ ?b . ?a a <http://w/Node> }`},
		{"aggregate", `SELECT ?a (COUNT(?b) AS ?n) WHERE { ?a <http://w/next> ?b } GROUP BY ?a`},
	}
	oldPar := Parallelism()
	t.Cleanup(func() { SetParallelism(oldPar) })
	for _, tc := range queries {
		t.Run(tc.name, func(t *testing.T) {
			q, err := ParseQuery(tc.query)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			SetParallelism(1)
			ref, err := Execute(g, q)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			want := canonicalRows(ref)
			for _, par := range []int{2, 4} {
				SetParallelism(par)
				res, err := Execute(g, q)
				if err != nil {
					t.Fatalf("parallel(%d): %v", par, err)
				}
				if got := canonicalRows(res); strings.Join(got, "\n") != strings.Join(want, "\n") {
					t.Errorf("parallelism %d: %d rows vs %d; solutions differ", par, len(got), len(want))
				}
			}
		})
	}
}

// TestParallelAskConstruct covers the non-SELECT query kinds.
func TestParallelAskConstruct(t *testing.T) {
	g := testGraph(t, fixture)
	forceParallel(t, 4)
	ask, err := Run(g, `PREFIX ex: <http://e/> ASK { ?p ex:likes ex:pizza }`)
	if err != nil || !ask.Boolean {
		t.Fatalf("ASK failed under parallelism: %v %v", err, ask)
	}
	built, err := Run(g, `PREFIX ex: <http://e/> CONSTRUCT { ?f ex:likedBy ?p } WHERE { ?p ex:likes ?f }`)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(1)
	ref, err := Run(g, `PREFIX ex: <http://e/> CONSTRUCT { ?f ex:likedBy ?p } WHERE { ?p ex:likes ?f }`)
	if err != nil {
		t.Fatal(err)
	}
	if !built.Graph.Equal(ref.Graph) {
		t.Error("CONSTRUCT graph differs between parallel and sequential execution")
	}
}

// TestParallelOrderByDeterministic: a total ORDER BY fully determines the
// rendered table, so it must be byte-identical at every parallelism level.
func TestParallelOrderByDeterministic(t *testing.T) {
	g := buildWideGraph(200, 2)
	const query = `SELECT ?c ?v WHERE { ?c <http://w/val> ?v } ORDER BY ?v ?c`
	oldPar := Parallelism()
	t.Cleanup(func() { SetParallelism(oldPar) })
	SetParallelism(1)
	ref, err := Run(g, query)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Table()
	for _, par := range []int{2, 4} {
		SetParallelism(par)
		res, err := Run(g, query)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table() != want {
			t.Errorf("parallelism %d: ORDER BY table not byte-identical to sequential", par)
		}
	}
}

// TestSetParallelismKnob pins the knob's documented semantics.
func TestSetParallelismKnob(t *testing.T) {
	old := Parallelism()
	t.Cleanup(func() { SetParallelism(old) })
	SetParallelism(0)
	if got := effectiveParallelism(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("auto parallelism = %d, want GOMAXPROCS (%d)", got, runtime.GOMAXPROCS(0))
	}
	SetParallelism(-5)
	if Parallelism() != 0 {
		t.Errorf("negative parallelism should clamp to 0, got %d", Parallelism())
	}
	SetParallelism(3)
	if Parallelism() != 3 || effectiveParallelism() != 3 {
		t.Errorf("parallelism = %d / %d, want 3 / 3", Parallelism(), effectiveParallelism())
	}
	ec := newEvalContext(store.New(), &slotEnv{slots: map[string]int{}})
	if ec.par != 3 || cap(ec.sem) != 2 {
		t.Errorf("context budget = par %d, %d tokens; want 3, 2", ec.par, cap(ec.sem))
	}
	SetParallelism(1)
	if ec := newEvalContext(store.New(), &slotEnv{slots: map[string]int{}}); ec.sem != nil {
		t.Error("parallelism 1 must keep the sequential path (nil semaphore)")
	}
}

// TestConcurrentExecute is the smoke test for the store's reader contract
// as the worker pool consumes it: many goroutines execute queries (each
// itself fanning out internally) against one shared graph under -race.
func TestConcurrentExecute(t *testing.T) {
	g := buildWideGraph(120, 4)
	queries := []string{
		`SELECT ?a ?b WHERE { ?a <http://w/next> ?b }`,
		`SELECT ?c WHERE { ?c <http://w/val> ?v . FILTER(?v < 100) }`,
		`SELECT ?x WHERE { <http://w/root> <http://w/next>+ ?x }`,
		`SELECT ?c (COUNT(?g) AS ?n) WHERE { ?c <http://w/next> ?g } GROUP BY ?c`,
	}
	parsed := make([]*Query, len(queries))
	want := make([]int, len(queries))
	forceParallel(t, 4)
	for i, src := range queries {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatal(err)
		}
		parsed[i] = q
		res, err := Execute(g, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Len()
	}
	const goroutines = 8
	const iterations = 20
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iterations; it++ {
				qi := (w + it) % len(parsed)
				res, err := Execute(g, parsed[qi])
				if err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				if res.Len() != want[qi] {
					errs <- fmt.Errorf("worker %d query %d: %d rows, want %d", w, qi, res.Len(), want[qi])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
