package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// ParseQuery parses a SPARQL query string. The returned Query carries the
// prefix declarations it contained; the repository's standard prefixes
// (rdf, rdfs, owl, xsd, eo, feo, food, kg) are pre-bound so the paper's
// listings parse verbatim.
func ParseQuery(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks, ns: rdf.StandardNamespaces()}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	q.Namespaces = p.ns
	return q, nil
}

type qparser struct {
	toks     []token
	pos      int
	ns       *rdf.Namespaces
	bnodeSeq int
	aggSeq   int
	aggs     []*AggExpr // aggregates discovered while parsing
}

// cur and next clamp at the trailing EOF token: error paths that consume
// a token they expected to exist (e.g. a GROUP_CONCAT separator cut off
// mid-clause) must keep reporting EOF instead of running off the slice.
func (p *qparser) cur() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos]
}

func (p *qparser) next() token {
	t := p.cur()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *qparser) errf(format string, args ...any) error {
	t := p.cur()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *qparser) isKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokKeyword && t.text == kw
}

func (p *qparser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *qparser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *qparser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *qparser) acceptPunct(s string) bool {
	if p.isPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *qparser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *qparser) parseQuery() (*Query, error) {
	if err := p.parsePrologue(); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	switch {
	case p.acceptKeyword("SELECT"):
		q.Kind = KindSelect
		if err := p.parseSelectClause(q); err != nil {
			return nil, err
		}
	case p.acceptKeyword("ASK"):
		q.Kind = KindAsk
	case p.acceptKeyword("CONSTRUCT"):
		q.Kind = KindConstruct
		if err := p.parseConstructTemplate(q); err != nil {
			return nil, err
		}
	case p.acceptKeyword("DESCRIBE"):
		q.Kind = KindDescribe
		if err := p.parseDescribeTerms(q); err != nil {
			return nil, err
		}
		// DESCRIBE may omit WHERE entirely.
		if p.cur().kind == tokEOF {
			q.Where = &Group{}
			return q, nil
		}
	default:
		return nil, p.errf("expected SELECT, ASK, CONSTRUCT, or DESCRIBE, found %s", p.cur())
	}
	p.acceptKeyword("WHERE")
	w, err := p.parseGroupGraphPattern()
	if err != nil {
		return nil, err
	}
	q.Where = w
	if err := p.parseSolutionModifiers(q); err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %s", p.cur())
	}
	// Hoist aggregates found in projection/having into keys.
	for i, agg := range p.aggs {
		agg.key = fmt.Sprintf(" agg%d", i)
	}
	return q, nil
}

func (p *qparser) parsePrologue() error {
	for {
		switch {
		case p.acceptKeyword("PREFIX"):
			t := p.next()
			if t.kind != tokPName || !strings.HasSuffix(t.text, ":") {
				// pname token carries "prefix:" or "prefix:local"; the
				// declaration form must end with a bare colon.
				if t.kind != tokPName || strings.Count(t.text, ":") != 1 {
					return &Error{Line: t.line, Col: t.col, Msg: "expected prefix declaration"}
				}
			}
			name := strings.TrimSuffix(t.text, ":")
			iriTok := p.next()
			if iriTok.kind != tokIRIRef {
				return &Error{Line: iriTok.line, Col: iriTok.col, Msg: "expected IRI in PREFIX"}
			}
			p.ns.Bind(name, iriTok.text)
		case p.acceptKeyword("BASE"):
			iriTok := p.next()
			if iriTok.kind != tokIRIRef {
				return &Error{Line: iriTok.line, Col: iriTok.col, Msg: "expected IRI in BASE"}
			}
			p.ns.SetBase(iriTok.text)
		default:
			return nil
		}
	}
}

func (p *qparser) parseSelectClause(q *Query) error {
	if p.acceptKeyword("DISTINCT") {
		q.Distinct = true
	} else if p.acceptKeyword("REDUCED") {
		q.Reduced = true
	}
	if p.acceptPunct("*") {
		return nil // SELECT *
	}
	for {
		switch {
		case p.cur().kind == tokVar:
			q.Projection = append(q.Projection, SelectItem{Var: p.next().text})
		case p.isPunct("("):
			p.next()
			expr, err := p.parseExpression()
			if err != nil {
				return err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return err
			}
			if p.cur().kind != tokVar {
				return p.errf("expected variable after AS")
			}
			v := p.next().text
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			q.Projection = append(q.Projection, SelectItem{Var: v, Expr: expr})
		default:
			if len(q.Projection) == 0 {
				return p.errf("SELECT needs at least one variable or *")
			}
			return nil
		}
	}
}

func (p *qparser) parseConstructTemplate(q *Query) error {
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for !p.isPunct("}") {
		tps, err := p.parseTriplesSameSubject()
		if err != nil {
			return err
		}
		q.Template = append(q.Template, tps...)
		if !p.acceptPunct(".") {
			break
		}
	}
	return p.expectPunct("}")
}

func (p *qparser) parseDescribeTerms(q *Query) error {
	for {
		switch {
		case p.cur().kind == tokVar:
			q.DescribeTerms = append(q.DescribeTerms, V(p.next().text))
		case p.cur().kind == tokIRIRef || p.cur().kind == tokPName:
			t, err := p.parseTermToken(p.next())
			if err != nil {
				return err
			}
			q.DescribeTerms = append(q.DescribeTerms, T(t))
		default:
			if len(q.DescribeTerms) == 0 {
				return p.errf("DESCRIBE needs at least one term")
			}
			return nil
		}
	}
}

// parseGroupGraphPattern parses '{' ... '}'.
func (p *qparser) parseGroupGraphPattern() (*Group, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	g := &Group{}
	var bgp *BGP
	flushBGP := func() {
		if bgp != nil && len(bgp.Triples) > 0 {
			g.Patterns = append(g.Patterns, bgp)
		}
		bgp = nil
	}
	for {
		switch {
		case p.isPunct("}"):
			p.next()
			flushBGP()
			return g, nil
		case p.cur().kind == tokEOF:
			return nil, p.errf("unterminated group pattern")
		case p.acceptKeyword("FILTER"):
			expr, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, expr)
			p.acceptPunct(".")
		case p.acceptKeyword("OPTIONAL"):
			flushBGP()
			sub, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, &Optional{Pattern: sub})
			p.acceptPunct(".")
		case p.acceptKeyword("MINUS"):
			flushBGP()
			sub, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, &Minus{Pattern: sub})
			p.acceptPunct(".")
		case p.acceptKeyword("BIND"):
			flushBGP()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			expr, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			if p.cur().kind != tokVar {
				return nil, p.errf("expected variable after AS")
			}
			v := p.next().text
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, &Bind{Expr: expr, Var: v})
			p.acceptPunct(".")
		case p.acceptKeyword("VALUES"):
			flushBGP()
			id, err := p.parseInlineData()
			if err != nil {
				return nil, err
			}
			g.Patterns = append(g.Patterns, id)
			p.acceptPunct(".")
		case p.isPunct("{"):
			flushBGP()
			// "{ SELECT ..." opens a subquery rather than a nested group.
			if p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "SELECT" {
				sq, err := p.parseSubSelect()
				if err != nil {
					return nil, err
				}
				g.Patterns = append(g.Patterns, sq)
				p.acceptPunct(".")
				continue
			}
			sub, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			// UNION chains.
			for p.acceptKeyword("UNION") {
				right, err := p.parseGroupGraphPattern()
				if err != nil {
					return nil, err
				}
				sub = &Group{Patterns: []Pattern{&Union{Left: sub, Right: right}}}
			}
			g.Patterns = append(g.Patterns, sub)
			p.acceptPunct(".")
		default:
			tps, err := p.parseTriplesSameSubject()
			if err != nil {
				return nil, err
			}
			if bgp == nil {
				bgp = &BGP{}
			}
			bgp.Triples = append(bgp.Triples, tps...)
			if !p.acceptPunct(".") && !p.isPunct("}") {
				return nil, p.errf("expected '.' or '}' after triple pattern, found %s", p.cur())
			}
		}
	}
}

// parseSubSelect parses "{ SELECT ... }". Aggregates inside the subquery
// are tracked locally so outer aggregates keep their own keys.
func (p *qparser) parseSubSelect() (*SubSelect, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	outerAggs := p.aggs
	p.aggs = nil
	q := &Query{Kind: KindSelect, Limit: -1}
	if err := p.parseSelectClause(q); err != nil {
		return nil, err
	}
	p.acceptKeyword("WHERE")
	w, err := p.parseGroupGraphPattern()
	if err != nil {
		return nil, err
	}
	q.Where = w
	if err := p.parseSolutionModifiers(q); err != nil {
		return nil, err
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	for i, agg := range p.aggs {
		agg.key = fmt.Sprintf(" subagg%d_%d", len(outerAggs), i)
	}
	p.aggs = outerAggs
	q.Namespaces = p.ns
	return &SubSelect{Query: q}, nil
}

// parseConstraint parses a FILTER constraint: parenthesized expression,
// builtin call, or (NOT) EXISTS.
func (p *qparser) parseConstraint() (Expression, error) {
	switch {
	case p.acceptKeyword("NOT"):
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		g, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Negated: true, Pattern: g}, nil
	case p.acceptKeyword("EXISTS"):
		g, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{Pattern: g}, nil
	case p.isPunct("("):
		p.next()
		expr, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		return expr, p.expectPunct(")")
	default:
		// Builtin call form: FILTER regex(...)
		return p.parsePrimaryExpression()
	}
}

func (p *qparser) parseInlineData() (*InlineData, error) {
	id := &InlineData{}
	single := false
	if p.cur().kind == tokVar {
		id.Vars = []string{p.next().text}
		single = true
	} else {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		for p.cur().kind == tokVar {
			id.Vars = append(id.Vars, p.next().text)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for !p.acceptPunct("}") {
		var row []TermOrNil
		if single {
			cell, err := p.parseDataCell()
			if err != nil {
				return nil, err
			}
			row = []TermOrNil{cell}
		} else {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			for !p.acceptPunct(")") {
				cell, err := p.parseDataCell()
				if err != nil {
					return nil, err
				}
				row = append(row, cell)
			}
		}
		if len(row) != len(id.Vars) {
			return nil, p.errf("VALUES row arity %d != %d vars", len(row), len(id.Vars))
		}
		id.Rows = append(id.Rows, row)
	}
	return id, nil
}

func (p *qparser) parseDataCell() (TermOrNil, error) {
	if p.acceptKeyword("UNDEF") {
		return TermOrNil{}, nil
	}
	t, err := p.parseGraphTerm()
	if err != nil {
		return TermOrNil{}, err
	}
	return TermOrNil{Term: t, Defined: true}, nil
}

// parseTriplesSameSubject parses "subject predicateObjectList".
func (p *qparser) parseTriplesSameSubject() ([]TriplePattern, error) {
	subj, err := p.parseVarOrTerm()
	if err != nil {
		return nil, err
	}
	return p.parsePredicateObjectList(subj)
}

func (p *qparser) parsePredicateObjectList(subj TermOrVar) ([]TriplePattern, error) {
	var out []TriplePattern
	for {
		var pred TermOrVar
		var path *Path
		if p.cur().kind == tokVar {
			pred = V(p.next().text)
		} else {
			pp, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			if pp.Kind == PathIRI {
				pred = T(pp.IRI)
			} else {
				path = pp
			}
		}
		// Object list.
		for {
			obj, err := p.parseVarOrTerm()
			if err != nil {
				return nil, err
			}
			out = append(out, TriplePattern{S: subj, P: pred, O: obj, Path: path})
			if !p.acceptPunct(",") {
				break
			}
		}
		if !p.acceptPunct(";") {
			return out, nil
		}
		// Tolerate trailing ';'.
		if p.isPunct(".") || p.isPunct("}") {
			return out, nil
		}
	}
}

// parsePath parses a SPARQL 1.1 property path expression.
func (p *qparser) parsePath() (*Path, error) {
	return p.parsePathAlternative()
}

func (p *qparser) parsePathAlternative() (*Path, error) {
	left, err := p.parsePathSequence()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("|") {
		right, err := p.parsePathSequence()
		if err != nil {
			return nil, err
		}
		left = &Path{Kind: PathAlt, Kids: []*Path{left, right}}
	}
	return left, nil
}

func (p *qparser) parsePathSequence() (*Path, error) {
	left, err := p.parsePathEltOrInverse()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("/") {
		right, err := p.parsePathEltOrInverse()
		if err != nil {
			return nil, err
		}
		left = &Path{Kind: PathSeq, Kids: []*Path{left, right}}
	}
	return left, nil
}

func (p *qparser) parsePathEltOrInverse() (*Path, error) {
	if p.acceptPunct("^") {
		elt, err := p.parsePathElt()
		if err != nil {
			return nil, err
		}
		return &Path{Kind: PathInverse, Kids: []*Path{elt}}, nil
	}
	return p.parsePathElt()
}

func (p *qparser) parsePathElt() (*Path, error) {
	prim, err := p.parsePathPrimary()
	if err != nil {
		return nil, err
	}
	switch {
	case p.acceptPunct("*"):
		return &Path{Kind: PathZeroOrMore, Kids: []*Path{prim}}, nil
	case p.acceptPunct("+"):
		return &Path{Kind: PathOneOrMore, Kids: []*Path{prim}}, nil
	case p.acceptPunct("?"):
		return &Path{Kind: PathZeroOrOne, Kids: []*Path{prim}}, nil
	}
	return prim, nil
}

func (p *qparser) parsePathPrimary() (*Path, error) {
	switch {
	case p.isPunct("("):
		p.next()
		inner, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return inner, p.expectPunct(")")
	case p.isKeyword("A"):
		p.next()
		return &Path{Kind: PathIRI, IRI: rdf.TypeIRI}, nil
	case p.cur().kind == tokIRIRef:
		return &Path{Kind: PathIRI, IRI: rdf.NewIRI(p.ns.Resolve(p.next().text))}, nil
	case p.cur().kind == tokPName:
		t, err := p.parseTermToken(p.next())
		if err != nil {
			return nil, err
		}
		return &Path{Kind: PathIRI, IRI: t}, nil
	default:
		return nil, p.errf("expected property path, found %s", p.cur())
	}
}

// parseVarOrTerm parses a subject/object position.
func (p *qparser) parseVarOrTerm() (TermOrVar, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.next()
		return V(t.text), nil
	case tokAnon:
		p.next()
		p.bnodeSeq++
		return V(fmt.Sprintf(" bnode%d", p.bnodeSeq)), nil
	default:
		term, err := p.parseGraphTerm()
		if err != nil {
			return TermOrVar{}, err
		}
		return T(term), nil
	}
}

// parseGraphTerm parses a concrete RDF term in a query.
func (p *qparser) parseGraphTerm() (rdf.Term, error) {
	t := p.next()
	switch t.kind {
	case tokIRIRef:
		return rdf.NewIRI(p.ns.Resolve(t.text)), nil
	case tokPName:
		return p.parseTermToken(t)
	case tokNumber:
		return numberTerm(t.text), nil
	case tokBool:
		return rdf.NewBool(t.text == "true"), nil
	case tokString:
		return p.parseLiteralTail(t.text)
	case tokPunct:
		if t.text == "-" || t.text == "+" {
			n := p.next()
			if n.kind != tokNumber {
				return rdf.Term{}, &Error{Line: n.line, Col: n.col, Msg: "expected number after sign"}
			}
			if t.text == "-" {
				return numberTerm("-" + n.text), nil
			}
			return numberTerm(n.text), nil
		}
	}
	return rdf.Term{}, &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf("expected RDF term, found %q", t.text)}
}

// parseLiteralTail handles optional @lang / ^^datatype after a string.
func (p *qparser) parseLiteralTail(lex string) (rdf.Term, error) {
	switch {
	case p.cur().kind == tokLangTag:
		return rdf.NewLangLiteral(lex, p.next().text), nil
	case p.isPunct("^"):
		p.next()
		if err := p.expectPunct("^"); err != nil {
			return rdf.Term{}, err
		}
		dt := p.next()
		switch dt.kind {
		case tokIRIRef:
			return rdf.NewTypedLiteral(lex, p.ns.Resolve(dt.text)), nil
		case tokPName:
			t, err := p.parseTermToken(dt)
			if err != nil {
				return rdf.Term{}, err
			}
			return rdf.NewTypedLiteral(lex, t.Value), nil
		default:
			return rdf.Term{}, &Error{Line: dt.line, Col: dt.col, Msg: "expected datatype IRI"}
		}
	default:
		return rdf.NewLiteral(lex), nil
	}
}

// parseTermToken resolves a tokPName to an IRI or blank node term.
func (p *qparser) parseTermToken(t token) (rdf.Term, error) {
	if strings.HasPrefix(t.text, "_:") {
		// Blank nodes in queries are scoped variables.
		return rdf.Term{}, &Error{Line: t.line, Col: t.col,
			Msg: "labeled blank nodes in queries are not supported; use a variable"}
	}
	if t.kind == tokIRIRef {
		return rdf.NewIRI(p.ns.Resolve(t.text)), nil
	}
	if !strings.Contains(t.text, ":") {
		return rdf.Term{}, &Error{Line: t.line, Col: t.col,
			Msg: fmt.Sprintf("unexpected bare word %q", t.text)}
	}
	iri, ok := p.ns.Expand(t.text)
	if !ok {
		return rdf.Term{}, &Error{Line: t.line, Col: t.col,
			Msg: fmt.Sprintf("unbound prefix in %q", t.text)}
	}
	return rdf.NewIRI(iri), nil
}

func numberTerm(text string) rdf.Term {
	if strings.ContainsAny(text, "eE") {
		return rdf.NewTypedLiteral(text, rdf.XSDDouble)
	}
	if strings.Contains(text, ".") {
		return rdf.NewTypedLiteral(text, rdf.XSDDecimal)
	}
	return rdf.NewTypedLiteral(text, rdf.XSDInteger)
}

// ---- solution modifiers ----

func (p *qparser) parseSolutionModifiers(q *Query) error {
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			switch {
			case p.cur().kind == tokVar:
				q.GroupBy = append(q.GroupBy, &VarExpr{Name: p.next().text})
			case p.isPunct("("):
				p.next()
				e, err := p.parseExpression()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.GroupBy = append(q.GroupBy, e)
			default:
				if len(q.GroupBy) == 0 {
					return p.errf("GROUP BY needs at least one key")
				}
				goto having
			}
		}
	}
having:
	if p.acceptKeyword("HAVING") {
		for p.isPunct("(") {
			p.next()
			e, err := p.parseExpression()
			if err != nil {
				return err
			}
			if err := p.expectPunct(")"); err != nil {
				return err
			}
			q.Having = append(q.Having, e)
		}
		if len(q.Having) == 0 {
			return p.errf("HAVING needs a constraint")
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			switch {
			case p.acceptKeyword("ASC"), p.acceptKeyword("DESC"):
				desc := p.toks[p.pos-1].text == "DESC"
				if err := p.expectPunct("("); err != nil {
					return err
				}
				e, err := p.parseExpression()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderCondition{Expr: e, Descending: desc})
			case p.cur().kind == tokVar:
				q.OrderBy = append(q.OrderBy, OrderCondition{Expr: &VarExpr{Name: p.next().text}})
			case p.isPunct("("):
				p.next()
				e, err := p.parseExpression()
				if err != nil {
					return err
				}
				if err := p.expectPunct(")"); err != nil {
					return err
				}
				q.OrderBy = append(q.OrderBy, OrderCondition{Expr: e})
			default:
				if len(q.OrderBy) == 0 {
					return p.errf("ORDER BY needs a condition")
				}
				goto limits
			}
		}
	}
limits:
	for {
		switch {
		case p.acceptKeyword("LIMIT"):
			t := p.next()
			if t.kind != tokNumber {
				return p.errf("LIMIT expects a number")
			}
			n, err := strconv.Atoi(t.text)
			if err != nil {
				return p.errf("bad LIMIT %q", t.text)
			}
			q.Limit = n
		case p.acceptKeyword("OFFSET"):
			t := p.next()
			if t.kind != tokNumber {
				return p.errf("OFFSET expects a number")
			}
			n, err := strconv.Atoi(t.text)
			if err != nil {
				return p.errf("bad OFFSET %q", t.text)
			}
			q.Offset = n
		default:
			return nil
		}
	}
}

// ---- expression parsing (precedence climbing) ----

func (p *qparser) parseExpression() (Expression, error) {
	return p.parseOr()
}

func (p *qparser) parseOr() (Expression, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("||") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "||", Left: left, Right: right}
	}
	return left, nil
}

func (p *qparser) parseAnd() (Expression, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.acceptPunct("&&") {
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "&&", Left: left, Right: right}
	}
	return left, nil
}

func (p *qparser) parseRelational() (Expression, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "!=", "<=", ">=", "<", ">"} {
		if p.acceptPunct(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	if p.acceptKeyword("IN") {
		list, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		return &InExpr{Expr: left, List: list}, nil
	}
	if p.isKeyword("NOT") && p.toks[p.pos+1].kind == tokKeyword && p.toks[p.pos+1].text == "IN" {
		p.next()
		p.next()
		list, err := p.parseExprList()
		if err != nil {
			return nil, err
		}
		return &InExpr{Negated: true, Expr: left, List: list}, nil
	}
	return left, nil
}

func (p *qparser) parseExprList() ([]Expression, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var list []Expression
	for !p.acceptPunct(")") {
		if len(list) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
	}
	return list, nil
}

func (p *qparser) parseAdditive() (Expression, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("+"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "+", Left: left, Right: right}
		case p.acceptPunct("-"):
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "-", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *qparser) parseMultiplicative() (Expression, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("*"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "*", Left: left, Right: right}
		case p.acceptPunct("/"):
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "/", Left: left, Right: right}
		default:
			return left, nil
		}
	}
}

func (p *qparser) parseUnary() (Expression, error) {
	switch {
	case p.acceptPunct("!"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "!", Expr: e}, nil
	case p.acceptPunct("-"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	case p.acceptPunct("+"):
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "+", Expr: e}, nil
	}
	return p.parsePrimaryExpression()
}

// aggregateNames lists the aggregate functions handled by GROUP BY.
var aggregateNames = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"SAMPLE": true, "GROUP_CONCAT": true,
}

func (p *qparser) parsePrimaryExpression() (Expression, error) {
	t := p.cur()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			return e, p.expectPunct(")")
		}
	case tokVar:
		p.next()
		return &VarExpr{Name: t.text}, nil
	case tokNumber:
		p.next()
		return &ConstExpr{Term: numberTerm(t.text)}, nil
	case tokBool:
		p.next()
		return &ConstExpr{Term: rdf.NewBool(t.text == "true")}, nil
	case tokString:
		p.next()
		lit, err := p.parseLiteralTail(t.text)
		if err != nil {
			return nil, err
		}
		return &ConstExpr{Term: lit}, nil
	case tokIRIRef:
		p.next()
		return &ConstExpr{Term: rdf.NewIRI(p.ns.Resolve(t.text))}, nil
	case tokKeyword:
		switch t.text {
		case "NOT":
			p.next()
			if err := p.expectKeyword("EXISTS"); err != nil {
				return nil, err
			}
			g, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			return &ExistsExpr{Negated: true, Pattern: g}, nil
		case "EXISTS":
			p.next()
			g, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			return &ExistsExpr{Pattern: g}, nil
		}
	case tokPName:
		upper := strings.ToUpper(t.text)
		if !strings.Contains(t.text, ":") {
			if aggregateNames[upper] {
				return p.parseAggregate(upper)
			}
			if p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
				return p.parseFunctionCall(upper)
			}
			return nil, p.errf("unexpected bare word %q in expression", t.text)
		}
		p.next()
		term, err := p.parseTermToken(t)
		if err != nil {
			return nil, err
		}
		return &ConstExpr{Term: term}, nil
	}
	return nil, p.errf("unexpected %s in expression", p.cur())
}

func (p *qparser) parseFunctionCall(name string) (Expression, error) {
	p.next() // function name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []Expression
	for !p.acceptPunct(")") {
		if len(args) > 0 {
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	return &FuncExpr{Name: name, Args: args}, nil
}

func (p *qparser) parseAggregate(name string) (Expression, error) {
	p.next() // aggregate name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	agg := &AggExpr{Name: name}
	if p.acceptKeyword("DISTINCT") {
		agg.Distinct = true
	}
	if p.acceptPunct("*") {
		if name != "COUNT" {
			return nil, p.errf("only COUNT accepts *")
		}
	} else {
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		agg.Arg = e
	}
	if name == "GROUP_CONCAT" {
		agg.Sep = " "
		if p.acceptPunct(";") {
			sepTok := p.next() // SEPARATOR keyword arrives as a pname
			if !strings.EqualFold(sepTok.text, "SEPARATOR") {
				return nil, p.errf("expected SEPARATOR, found %s", sepTok)
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			s := p.next()
			if s.kind != tokString {
				return nil, p.errf("SEPARATOR expects a string")
			}
			agg.Sep = s.text
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	p.aggSeq++
	p.aggs = append(p.aggs, agg)
	return agg, nil
}
