package sparql

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

var querySeeds = []string{
	`SELECT ?s WHERE { ?s ?p ?o }`,
	`PREFIX ex: <http://e/> SELECT DISTINCT ?a ?b WHERE { ?a ex:p+ ?b . FILTER(?a != ?b) }`,
	`SELECT (COUNT(?x) AS ?n) WHERE { ?x ?p ?o } GROUP BY ?p HAVING (COUNT(?x) > 1)`,
	`ASK { <http://e/a> <http://e/b> "lit"@en }`,
	`CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o . OPTIONAL { ?s ?q ?r } }`,
	`SELECT * WHERE { { ?a ?b ?c } UNION { ?c ?b ?a } MINUS { ?a ?x ?y } } ORDER BY ?a LIMIT 5`,
	`SELECT ?s WHERE { VALUES (?s) { (<http://e/a>) (UNDEF) } ?s ?p ?o . BIND(STR(?o) AS ?t) }`,
	`INSERT DATA { <http://e/a> <http://e/b> <http://e/c> }`,
}

// TestQueryParserNeverPanics mutates valid queries and asserts the parser
// (and evaluator, when parsing succeeds) never panics.
func TestQueryParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := store.New()
	for trial := 0; trial < 3000; trial++ {
		q := querySeeds[rng.Intn(len(querySeeds))]
		for n := 0; n < 1+rng.Intn(4); n++ {
			switch rng.Intn(4) {
			case 0:
				if len(q) > 0 {
					i := rng.Intn(len(q))
					q = q[:i] + q[i+1:]
				}
			case 1:
				i := rng.Intn(len(q) + 1)
				q = q[:i] + string(rune(32+rng.Intn(95))) + q[i:]
			case 2:
				if len(q) > 1 {
					q = q[:rng.Intn(len(q))]
				}
			case 3:
				b := []byte(q)
				if len(b) > 0 {
					b[rng.Intn(len(b))] = byte(rng.Intn(256))
				}
				q = string(b)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on query %q: %v", q, r)
				}
			}()
			if parsed, err := ParseQuery(q); err == nil {
				_, _ = Execute(g, parsed)
			}
			_, _ = RunUpdate(g, q)
		}()
	}
}

func TestQueryPathologicalInputs(t *testing.T) {
	g := store.New()
	cases := []string{
		"",
		"SELECT",
		"SELECT *",
		"SELECT * WHERE",
		"SELECT * WHERE {",
		strings.Repeat("{", 500),
		"SELECT * WHERE " + strings.Repeat("{ ?s ?p ?o . ", 100) + strings.Repeat("}", 100),
		"SELECT ?x WHERE { ?x " + strings.Repeat("a/", 200) + "a ?y }",
		"SELECT * WHERE { ?s ?p " + strings.Repeat("\"", 99) + " }",
		"\x00",
		"SELECT (((((?x AS ?y) WHERE { ?x ?p ?o }",
	}
	for _, q := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", q, r)
				}
			}()
			if parsed, err := ParseQuery(q); err == nil {
				_, _ = Execute(g, parsed)
			}
		}()
	}
}

// TestDeepPathTermination guards against exponential blowup on cyclic
// graphs with nested path operators.
func TestDeepPathTermination(t *testing.T) {
	g := store.New()
	// Dense cyclic graph: 20 nodes, all-to-all edges.
	nodes := make([]string, 20)
	for i := range nodes {
		nodes[i] = string(rune('a' + i))
	}
	if err := loadEdges(g, nodes); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, `PREFIX ex: <http://e/> SELECT ?x WHERE { ex:a (ex:p+)+ ?x }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 20 {
		t.Errorf("cyclic closure = %d, want 20", res.Len())
	}
}

func loadEdges(g *store.Graph, nodes []string) error {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n")
	for _, a := range nodes {
		for _, b := range nodes {
			sb.WriteString("ex:" + a + " ex:p ex:" + b + " .\n")
		}
	}
	return turtle.ParseInto(g, sb.String())
}

// TestFilterPushdownNestedExists guards the filter-pushdown analysis: a
// filter buried several groups deep inside EXISTS still references outer
// variables, so the EXISTS must not run before those variables are bound.
func TestFilterPushdownNestedExists(t *testing.T) {
	g := store.New()
	g.Namespaces().Bind("ex", "http://example.org/")
	a := rdf.NewIRI("http://example.org/a")
	b := rdf.NewIRI("http://example.org/b")
	c := rdf.NewIRI("http://example.org/c")
	g.Add(a, rdf.NewIRI("http://example.org/p"), b)
	g.Add(b, rdf.NewIRI("http://example.org/q"), c)
	res, err := Run(g, `PREFIX ex: <http://example.org/>
		SELECT ?x WHERE { ?x ex:p ?y . FILTER EXISTS { { { ?z ex:q ?w . FILTER(?x = ?x) } } } }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0]["x"] != a {
		t.Fatalf("got %v, want one solution with x=%v", res.Solutions, a)
	}
}
