package sparql_test

// Native fuzz targets for the query parser/renderer pair. The seed corpus
// is the paper's listing queries (verbatim, CQ1-CQ3) plus one query per
// operator family the engine supports. The invariant is stronger than
// "does not panic": any input the parser accepts must render
// ((*Query).String()) to source the parser accepts again, and the second
// render must be byte-identical to the first — the renderer's fixed-point
// property, which pins the parser and renderer against each other.
//
// CI runs `go test -fuzz=FuzzParseQuery -fuzztime=30s` as a smoke pass
// (see .github/workflows/ci.yml); longer local runs just work.

import (
	"testing"

	"repro/internal/paper"
	"repro/internal/sparql"
)

var querySeeds = []string{
	paper.Listing1Query,
	paper.Listing2Query,
	paper.Listing3Query,
	`SELECT * WHERE { ?s ?p ?o }`,
	`SELECT DISTINCT ?s (COUNT(?o) AS ?n) WHERE { ?s <http://e/p> ?o } GROUP BY ?s HAVING(COUNT(?o) > 1) ORDER BY DESC(?n) LIMIT 5 OFFSET 1`,
	`SELECT ?x WHERE { { ?x a <http://e/A> } UNION { ?x a <http://e/B> } MINUS { ?x <http://e/dead> true } }`,
	`SELECT ?x ?y WHERE { ?x (<http://e/p>/<http://e/q>)+ ?y . OPTIONAL { ?y ^<http://e/r> ?z } }`,
	`SELECT ?x WHERE { ?x <http://e/p> ?v . FILTER(?v >= 3 && REGEX(STR(?x), "^http")) FILTER NOT EXISTS { ?x <http://e/q> ?v } }`,
	`SELECT ?x WHERE { VALUES (?x ?v) { (<http://e/a> 1) (UNDEF "two"@en) } BIND(?v + 1 AS ?w) }`,
	`SELECT ?s WHERE { ?s <http://e/p> "lit"^^<http://www.w3.org/2001/XMLSchema#integer> . { SELECT ?s WHERE { ?s a <http://e/C> } } }`,
	`ASK { ?s <http://e/p> [] }`,
	`CONSTRUCT { ?s <http://e/flip> ?o } WHERE { ?o <http://e/flop> ?s }`,
	`DESCRIBE <http://e/thing> ?x WHERE { ?x a <http://e/C> }`,
	`PREFIX ex: <http://e/> SELECT (GROUP_CONCAT(DISTINCT ?n; SEPARATOR=", ") AS ?all) WHERE { ?s ex:name ?n }`,
	`SELECT ?x WHERE { ?x <http://e/p> ?y . FILTER(?y IN (1, 2, "three")) }`,
}

func FuzzParseQuery(f *testing.F) {
	for _, seed := range querySeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := sparql.ParseQuery(src) // must never panic
		if err != nil {
			return
		}
		r1 := q.String()
		q2, err := sparql.ParseQuery(r1)
		if err != nil {
			t.Fatalf("rendered query failed to reparse: %v\ninput:  %q\nrender: %s", err, src, r1)
		}
		if r2 := q2.String(); r1 != r2 {
			t.Fatalf("render is not a fixed point:\nfirst:  %s\nsecond: %s\ninput:  %q", r1, r2, src)
		}
	})
}
