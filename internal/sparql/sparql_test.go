package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

func testGraph(t *testing.T, src string) *store.Graph {
	t.Helper()
	g, err := turtle.Parse(src)
	if err != nil {
		t.Fatalf("fixture parse: %v", err)
	}
	return g
}

func run(t *testing.T, g *store.Graph, query string) *Result {
	t.Helper()
	res, err := Run(g, query)
	if err != nil {
		t.Fatalf("query failed: %v\n%s", err, query)
	}
	return res
}

const fixture = `
@prefix ex: <http://e/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:alice a ex:Person ; ex:age 30 ; ex:name "Alice" ; ex:likes ex:pizza , ex:sushi .
ex:bob a ex:Person ; ex:age 25 ; ex:name "Bob" ; ex:likes ex:pizza .
ex:carol a ex:Person ; ex:age 35 ; ex:name "Carol" .
ex:pizza a ex:Food ; ex:cuisine "italian" .
ex:sushi a ex:Food ; ex:cuisine "japanese" ; ex:contains ex:rawFish .
`

func TestSelectBasic(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p a ex:Person }`)
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3", res.Len())
	}
	if len(res.Vars) != 1 || res.Vars[0] != "p" {
		t.Errorf("vars = %v", res.Vars)
	}
}

func TestSelectStar(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT * WHERE { ?p ex:likes ?food }`)
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3", res.Len())
	}
	if len(res.Vars) != 2 || res.Vars[0] != "p" || res.Vars[1] != "food" {
		t.Errorf("star vars = %v, want [p food] in appearance order", res.Vars)
	}
}

func TestJoin(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?name ?cuisine WHERE {
  ?p ex:likes ?f .
  ?p ex:name ?name .
  ?f ex:cuisine ?cuisine .
}`)
	if res.Len() != 3 {
		t.Fatalf("rows = %d, want 3 (alice×2, bob×1)", res.Len())
	}
	if !res.HasRow(map[string]rdf.Term{"name": rdf.NewLiteral("Alice"), "cuisine": rdf.NewLiteral("japanese")}) {
		t.Error("missing alice/japanese row")
	}
}

func TestSharedVariableInPattern(t *testing.T) {
	g := testGraph(t, `
@prefix ex: <http://e/> .
ex:a ex:knows ex:a .
ex:a ex:knows ex:b .
`)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT ?x WHERE { ?x ex:knows ?x }`)
	if res.Len() != 1 || res.Get(0, "x") != rdf.NewIRI("http://e/a") {
		t.Errorf("self-knows: %v", res.Solutions)
	}
}

func TestFilterComparisons(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a > 26) }`)
	if res.Len() != 2 {
		t.Errorf("age>26 rows = %d, want 2", res.Len())
	}
	res = run(t, g, `PREFIX ex: <http://e/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a >= 25 && ?a < 31) }`)
	if res.Len() != 2 {
		t.Errorf("range rows = %d, want 2", res.Len())
	}
	res = run(t, g, `PREFIX ex: <http://e/>
SELECT ?p WHERE { ?p ex:name ?n . FILTER(?n = "Bob" || ?n = "Carol") }`)
	if res.Len() != 2 {
		t.Errorf("or rows = %d, want 2", res.Len())
	}
	res = run(t, g, `PREFIX ex: <http://e/>
SELECT ?p WHERE { ?p ex:age ?a . FILTER(?a != 30) }`)
	if res.Len() != 2 {
		t.Errorf("neq rows = %d, want 2", res.Len())
	}
}

func TestFilterBooleanObject(t *testing.T) {
	g := testGraph(t, `
@prefix ex: <http://e/> .
ex:a ex:flag true . ex:b ex:flag false .
`)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:flag false }`)
	if res.Len() != 1 || res.Get(0, "s") != rdf.NewIRI("http://e/b") {
		t.Errorf("boolean object match: %v", res.Solutions)
	}
	// The paper's Listing 1 spells booleans capitalized ("False"); SPARQL
	// keywords are case-insensitive in our lexer via keyword uppercasing.
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s ex:flag False }`)
	if res.Len() != 1 {
		t.Errorf("capitalized False literal: rows = %d, want 1", res.Len())
	}
}

func TestFilterNotExists(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p WHERE { ?p a ex:Person . FILTER NOT EXISTS { ?p ex:likes ?f } }`)
	if res.Len() != 1 || res.Get(0, "p") != rdf.NewIRI("http://e/carol") {
		t.Errorf("NOT EXISTS: %v", res.Solutions)
	}
}

func TestFilterExists(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p WHERE { ?p a ex:Person . FILTER EXISTS { ?p ex:likes ex:sushi } }`)
	if res.Len() != 1 || res.Get(0, "p") != rdf.NewIRI("http://e/alice") {
		t.Errorf("EXISTS: %v", res.Solutions)
	}
}

func TestOptional(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?f WHERE { ?p a ex:Person . OPTIONAL { ?p ex:likes ?f } }`)
	if res.Len() != 4 {
		t.Fatalf("rows = %d, want 4 (2 alice + 1 bob + 1 carol-unbound)", res.Len())
	}
	carolRow := false
	for _, sol := range res.Solutions {
		if sol["p"] == rdf.NewIRI("http://e/carol") {
			if _, bound := sol["f"]; !bound {
				carolRow = true
			}
		}
	}
	if !carolRow {
		t.Error("carol should appear with unbound ?f")
	}
}

func TestOptionalWithBound(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?f WHERE { ?p a ex:Person . OPTIONAL { ?p ex:likes ?f . FILTER(?f = ex:sushi) } }`)
	// Alice matches sushi; bob and carol keep unbound f.
	if res.Len() != 3 {
		t.Errorf("rows = %d, want 3", res.Len())
	}
}

func TestUnion(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?x WHERE { { ?x ex:cuisine "italian" } UNION { ?x ex:contains ex:rawFish } }`)
	if res.Len() != 2 {
		t.Errorf("union rows = %d, want 2", res.Len())
	}
}

func TestMinus(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p WHERE { ?p a ex:Person . MINUS { ?p ex:likes ex:pizza } }`)
	if res.Len() != 1 || res.Get(0, "p") != rdf.NewIRI("http://e/carol") {
		t.Errorf("minus: %v", res.Solutions)
	}
}

func TestBind(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?next WHERE { ?p ex:age ?a . BIND(?a + 1 AS ?next) }`)
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
	found := false
	for _, sol := range res.Solutions {
		if v, ok := sol["next"].Int(); ok && v == 31 {
			found = true
		}
	}
	if !found {
		t.Error("BIND arithmetic missing 31")
	}
}

func TestBindConstantLikePaperListing2(t *testing.T) {
	// Listing 2 opens with BIND(feo:WhyEat... as ?question).
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?question WHERE { BIND (ex:q1 as ?question) . ?question ?p ?o . }`)
	if res.Len() != 0 {
		t.Errorf("bound constant with no triples should yield 0 rows, got %d", res.Len())
	}
	g.Add(rdf.NewIRI("http://e/q1"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	res = run(t, g, `PREFIX ex: <http://e/>
SELECT ?question WHERE { BIND (ex:q1 as ?question) . ?question ?p ?o . }`)
	if res.Len() != 1 || res.Get(0, "question") != rdf.NewIRI("http://e/q1") {
		t.Errorf("BIND constant: %v", res.Solutions)
	}
}

func TestValues(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?a WHERE { VALUES ?p { ex:alice ex:bob } ?p ex:age ?a }`)
	if res.Len() != 2 {
		t.Errorf("values rows = %d, want 2", res.Len())
	}
	res = run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?f WHERE { VALUES (?p ?f) { (ex:alice ex:pizza) (ex:bob UNDEF) } ?p ex:likes ?f }`)
	if res.Len() != 2 {
		t.Errorf("multi-var values rows = %d, want 2", res.Len())
	}
}

func TestDistinct(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT DISTINCT ?f WHERE { ?p ex:likes ?f }`)
	if res.Len() != 2 {
		t.Errorf("distinct rows = %d, want 2", res.Len())
	}
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?f WHERE { ?p ex:likes ?f }`)
	if res.Len() != 3 {
		t.Errorf("non-distinct rows = %d, want 3", res.Len())
	}
}

func TestOrderLimitOffset(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY ?a`)
	if res.Len() != 3 || res.Get(0, "p") != rdf.NewIRI("http://e/bob") {
		t.Errorf("order asc: %v", res.Solutions)
	}
	res = run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY DESC(?a) LIMIT 1`)
	if res.Len() != 1 || res.Get(0, "p") != rdf.NewIRI("http://e/carol") {
		t.Errorf("order desc limit: %v", res.Solutions)
	}
	res = run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY ?a OFFSET 1 LIMIT 1`)
	if res.Len() != 1 || res.Get(0, "p") != rdf.NewIRI("http://e/alice") {
		t.Errorf("offset+limit: %v", res.Solutions)
	}
}

func TestAggregates(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT (COUNT(?p) AS ?n) (AVG(?a) AS ?avg) (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) (SUM(?a) AS ?sum)
WHERE { ?p ex:age ?a }`)
	if res.Len() != 1 {
		t.Fatalf("agg rows = %d", res.Len())
	}
	if n, _ := res.Get(0, "n").Int(); n != 3 {
		t.Errorf("count = %v", res.Get(0, "n"))
	}
	if v, _ := res.Get(0, "avg").Float(); v != 30 {
		t.Errorf("avg = %v", res.Get(0, "avg"))
	}
	if v, _ := res.Get(0, "lo").Int(); v != 25 {
		t.Errorf("min = %v", res.Get(0, "lo"))
	}
	if v, _ := res.Get(0, "hi").Int(); v != 35 {
		t.Errorf("max = %v", res.Get(0, "hi"))
	}
	if v, _ := res.Get(0, "sum").Int(); v != 90 {
		t.Errorf("sum = %v", res.Get(0, "sum"))
	}
}

func TestGroupByHaving(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?f (COUNT(?p) AS ?n) WHERE { ?p ex:likes ?f } GROUP BY ?f`)
	if res.Len() != 2 {
		t.Fatalf("group rows = %d", res.Len())
	}
	if !res.HasRow(map[string]rdf.Term{"f": rdf.NewIRI("http://e/pizza"), "n": rdf.NewInt(2)}) {
		t.Errorf("pizza count wrong: %v", res.Solutions)
	}
	res = run(t, g, `PREFIX ex: <http://e/>
SELECT ?f (COUNT(?p) AS ?n) WHERE { ?p ex:likes ?f } GROUP BY ?f HAVING (COUNT(?p) > 1)`)
	if res.Len() != 1 || res.Get(0, "f") != rdf.NewIRI("http://e/pizza") {
		t.Errorf("having: %v", res.Solutions)
	}
}

func TestCountDistinct(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT (COUNT(DISTINCT ?f) AS ?n) WHERE { ?p ex:likes ?f }`)
	if n, _ := res.Get(0, "n").Int(); n != 2 {
		t.Errorf("count distinct = %v", res.Get(0, "n"))
	}
}

func TestBuiltinFunctions(t *testing.T) {
	g := testGraph(t, fixture)
	cases := []struct {
		name, query string
		wantRows    int
	}{
		{"contains", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:name ?n . FILTER(CONTAINS(?n, "li")) }`, 1},
		{"strstarts", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:name ?n . FILTER(STRSTARTS(?n, "B")) }`, 1},
		{"regex", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:name ?n . FILTER(REGEX(?n, "^[AB]")) }`, 2},
		{"regex-i", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:name ?n . FILTER(REGEX(?n, "alice", "i")) }`, 1},
		{"strlen", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:name ?n . FILTER(STRLEN(?n) = 5) }`, 2},
		{"ucase", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:name ?n . FILTER(UCASE(?n) = "BOB") }`, 1},
		{"isIRI", `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:alice ex:likes ?o . FILTER(ISIRI(?o)) }`, 2},
		{"isLiteral", `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:alice ?p ?o . FILTER(ISLITERAL(?o)) }`, 2},
		{"bound", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p a ex:Person . OPTIONAL { ?p ex:likes ?f } FILTER(!BOUND(?f)) }`, 1},
		{"in", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:name ?n . FILTER(?n IN ("Alice", "Bob")) }`, 2},
		{"not in", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:name ?n . FILTER(?n NOT IN ("Alice", "Bob")) }`, 1},
		{"datatype", `PREFIX ex: <http://e/> PREFIX xsd: <http://www.w3.org/2001/XMLSchema#> SELECT ?p WHERE { ?p ex:age ?a . FILTER(DATATYPE(?a) = xsd:integer) }`, 3},
		{"sameterm", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:likes ?f . FILTER(SAMETERM(?f, ex:sushi)) }`, 1},
		{"isnumeric", `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:alice ?p ?o . FILTER(ISNUMERIC(?o)) }`, 1},
		{"coalesce", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p a ex:Person . OPTIONAL { ?p ex:likes ?f } FILTER(COALESCE(?f, ex:none) = ex:none) }`, 1},
		{"if", `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:age ?a . FILTER(IF(?a > 28, true, false)) }`, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res := run(t, g, tc.query)
			if res.Len() != tc.wantRows {
				t.Errorf("rows = %d, want %d\n%s", res.Len(), tc.wantRows, tc.query)
			}
		})
	}
}

func TestStrManipulationInBind(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?up WHERE { ex:alice ex:name ?n . BIND(CONCAT(UCASE(?n), "!") AS ?up) }`)
	if res.Get(0, "up") != rdf.NewLiteral("ALICE!") {
		t.Errorf("concat/ucase = %v", res.Get(0, "up"))
	}
}

func TestPropertyPaths(t *testing.T) {
	g := testGraph(t, `
@prefix ex: <http://e/> .
ex:a ex:sub ex:b . ex:b ex:sub ex:c . ex:c ex:sub ex:d .
ex:x ex:p ex:y . ex:y ex:q ex:z .
`)
	// OneOrMore forward.
	res := run(t, g, `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:a ex:sub+ ?o }`)
	if res.Len() != 3 {
		t.Errorf("a sub+ ?o rows = %d, want 3", res.Len())
	}
	// OneOrMore backward (paper Listing 2 shape: ?x (p+) <bound>).
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?s WHERE { ?s (ex:sub+) ex:d }`)
	if res.Len() != 3 {
		t.Errorf("?s sub+ d rows = %d, want 3", res.Len())
	}
	// ZeroOrMore includes the start.
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:a ex:sub* ?o }`)
	if res.Len() != 4 {
		t.Errorf("a sub* ?o rows = %d, want 4", res.Len())
	}
	// Sequence.
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:x ex:p/ex:q ?o }`)
	if res.Len() != 1 || res.Get(0, "o") != rdf.NewIRI("http://e/z") {
		t.Errorf("seq path: %v", res.Solutions)
	}
	// Inverse.
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?s WHERE { ex:y ^ex:p ?s }`)
	if res.Len() != 1 || res.Get(0, "s") != rdf.NewIRI("http://e/x") {
		t.Errorf("inverse path: %v", res.Solutions)
	}
	// Alternative.
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:x ex:p|ex:q ?o }`)
	if res.Len() != 1 {
		t.Errorf("alt path rows = %d", res.Len())
	}
	// ZeroOrOne.
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:a ex:sub? ?o }`)
	if res.Len() != 2 {
		t.Errorf("zeroOrOne rows = %d, want 2 (a itself + b)", res.Len())
	}
	// Both ends bound.
	res = run(t, g, `PREFIX ex: <http://e/> SELECT * WHERE { ex:a ex:sub+ ex:d }`)
	if res.Len() != 1 {
		t.Errorf("bound-bound path rows = %d, want 1", res.Len())
	}
	// Both ends unbound.
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?s ?o WHERE { ?s ex:sub+ ?o }`)
	if res.Len() != 6 {
		t.Errorf("unbound path rows = %d, want 6", res.Len())
	}
}

func TestPathCycleTermination(t *testing.T) {
	g := testGraph(t, `
@prefix ex: <http://e/> .
ex:a ex:next ex:b . ex:b ex:next ex:a .
`)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:a ex:next+ ?o }`)
	if res.Len() != 2 {
		t.Errorf("cyclic path rows = %d, want 2 (b and a)", res.Len())
	}
}

func TestAsk(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/> ASK { ex:alice ex:likes ex:sushi }`)
	if !res.Boolean {
		t.Error("ASK should be true")
	}
	res = run(t, g, `PREFIX ex: <http://e/> ASK { ex:bob ex:likes ex:sushi }`)
	if res.Boolean {
		t.Error("ASK should be false")
	}
}

func TestConstruct(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
CONSTRUCT { ?f ex:likedBy ?p } WHERE { ?p ex:likes ?f }`)
	if res.Graph == nil || res.Graph.Len() != 3 {
		t.Fatalf("construct graph size = %v", res.Graph)
	}
	if !res.Graph.Has(rdf.NewIRI("http://e/pizza"), rdf.NewIRI("http://e/likedBy"), rdf.NewIRI("http://e/bob")) {
		t.Error("constructed triple missing")
	}
}

func TestDescribe(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/> DESCRIBE ex:pizza`)
	if res.Graph == nil {
		t.Fatal("describe graph nil")
	}
	// pizza: 2 outgoing (a Food, cuisine) + 2 incoming likes.
	if res.Graph.Len() != 4 {
		t.Errorf("describe size = %d, want 4: %v", res.Graph.Len(), res.Graph.Triples())
	}
}

func TestSubSelectStyleNestedGroup(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p WHERE { { ?p a ex:Person . } ?p ex:likes ex:pizza . }`)
	if res.Len() != 2 {
		t.Errorf("nested group rows = %d, want 2", res.Len())
	}
}

func TestTableRendering(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT ?p ?a WHERE { ?p ex:age ?a } ORDER BY ?a`)
	table := res.Table()
	if !strings.Contains(table, "?p") || !strings.Contains(table, "?a") {
		t.Errorf("table missing headers:\n%s", table)
	}
	if !strings.Contains(table, "25") {
		t.Errorf("table missing data:\n%s", table)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ``},
		{"no where", `SELECT ?x`},
		{"unterminated group", `SELECT ?x WHERE { ?x ?p ?o`},
		{"unbound prefix", `SELECT ?x WHERE { ?x nope:p ?o }`},
		{"bad filter", `SELECT ?x WHERE { ?x ?p ?o FILTER() }`},
		{"bad limit", `SELECT ?x WHERE { ?x ?p ?o } LIMIT x`},
		{"trailing", `SELECT ?x WHERE { ?x ?p ?o } garbage:x`},
		{"count star sum", `SELECT (SUM(*) AS ?n) WHERE { ?x ?p ?o }`},
		{"missing as", `SELECT (COUNT(?x) ?n) WHERE { ?x ?p ?o }`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseQuery(tc.src); err == nil {
				t.Errorf("expected parse error for %q", tc.src)
			}
		})
	}
}

// TestPaperListing1Shape parses the exact syntactic shape of the paper's
// Listing 1 (whitespace-normalized) to prove the engine accepts it.
func TestPaperListing1Shape(t *testing.T) {
	q := `
PREFIX feo: <https://purl.org/heals/feo#>
PREFIX eo: <https://purl.org/heals/eo#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT DISTINCT ?characteristic ?classes
WHERE{
  ?WhyEatCauliflowerPotatoCurry feo:hasParameter ?parameter .
  ?parameter feo:hasCharacteristic ?characteristic .
  ?characteristic feo:isInternal False .
  ?systemChar a feo:SystemCharacteristic .
  ?userChar a feo:UserCharacteristic .
  Filter ( ?characteristic = ?systemChar || ?characteristic = ?userChar ) .
  ?characteristic a ?classes .
  ?classes rdfs:subClassOf feo:Characteristic .
  Filter Not Exists{ ?classes rdfs:subClassOf eo:knowledge } .
}`
	if _, err := ParseQuery(q); err != nil {
		t.Fatalf("Listing 1 shape must parse: %v", err)
	}
}

// TestPaperListing2Shape parses the shape of Listing 2 with property paths
// and BIND.
func TestPaperListing2Shape(t *testing.T) {
	q := `
PREFIX feo: <https://purl.org/heals/feo#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
Select DISTINCT ?factType ?factA ?foilType ?foilB
Where{
  BIND (feo:WhyEatButternutSquashSoupOverBroccoliCheddarSoup as ?question) .
  ?question feo:hasPrimaryParameter ?parameterA .
  ?question feo:hasSecondaryParameter ?parameterB .
  ?parameterA feo:hasCharacteristic ?factA .
  ?factA a <https://purl.org/heals/eo#Fact> .
  ?factA a ?factType .
  ?factType (rdfs:subClassOf+) feo:Characteristic .
  Filter Not Exists{ ?factType rdfs:subClassOf <https://purl.org/heals/eo#knowledge> } .
  Filter Not Exists{ ?s rdfs:subClassOf ?factType } .
  ?parameterB feo:hasCharacteristic ?foilB .
  ?foilB a <https://purl.org/heals/eo#Foil> .
  ?foilB a ?foilType .
  ?foilType (rdfs:subClassOf+) feo:Characteristic .
  Filter Not Exists{ ?foilType rdfs:subClassOf <https://purl.org/heals/eo#knowledge> } .
  Filter Not Exists{ ?t rdfs:subClassOf ?foilType } .
}`
	if _, err := ParseQuery(q); err != nil {
		t.Fatalf("Listing 2 shape must parse: %v", err)
	}
}

// TestPaperListing3Shape parses the shape of Listing 3 with OPTIONAL and a
// variable predicate.
func TestPaperListing3Shape(t *testing.T) {
	q := `
PREFIX feo: <https://purl.org/heals/feo#>
PREFIX food: <http://purl.org/heals/food/>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
SELECT Distinct ?property ?baseFood ?inheritedFood
WHERE{
  feo:WhatIfIWasPregnant feo:hasParameter ?parameter .
  ?parameter ?property ?baseFood .
  ?property rdfs:subPropertyOf feo:isCharacteristicOf .
  ?baseFood a food:Food .
  OPTIONAL { ?baseFood feo:isIngredientOf ?inheritedFood . }
}`
	if _, err := ParseQuery(q); err != nil {
		t.Fatalf("Listing 3 shape must parse: %v", err)
	}
}

func TestVariablePredicate(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?pr ?o WHERE { ex:sushi ?pr ?o }`)
	if res.Len() != 3 {
		t.Errorf("variable predicate rows = %d, want 3", res.Len())
	}
}

func TestAnonBlankAsVariable(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT ?p WHERE { ?p ex:likes [] }`)
	if res.Len() != 3 {
		t.Errorf("anon object rows = %d, want 3", res.Len())
	}
}

func TestLangLiteralsInQuery(t *testing.T) {
	g := testGraph(t, `
@prefix ex: <http://e/> .
ex:a ex:label "hello"@en , "bonjour"@fr .
`)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT ?l WHERE { ex:a ex:label ?l . FILTER(LANG(?l) = "fr") }`)
	if res.Len() != 1 || res.Get(0, "l") != rdf.NewLangLiteral("bonjour", "fr") {
		t.Errorf("lang filter: %v", res.Solutions)
	}
	res = run(t, g, `PREFIX ex: <http://e/> SELECT ?l WHERE { ex:a ex:label "hello"@en }`)
	if res.Len() != 1 {
		t.Errorf("lang literal match rows = %d", res.Len())
	}
}

func TestTypedLiteralMatch(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/> PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT ?p WHERE { ?p ex:age "30"^^xsd:integer }`)
	if res.Len() != 1 || res.Get(0, "p") != rdf.NewIRI("http://e/alice") {
		t.Errorf("typed literal: %v", res.Solutions)
	}
}

func TestGroupConcat(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT (GROUP_CONCAT(?n ; SEPARATOR = ", ") AS ?all) WHERE { ?p ex:name ?n }`)
	want := "Alice, Bob, Carol"
	if res.Get(0, "all").Value != want {
		t.Errorf("group_concat = %q, want %q", res.Get(0, "all").Value, want)
	}
}

func TestSample(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT (SAMPLE(?n) AS ?one) WHERE { ?p ex:name ?n }`)
	if res.Len() != 1 || !res.Get(0, "one").IsLiteral() {
		t.Errorf("sample: %v", res.Solutions)
	}
}

func TestSubquery(t *testing.T) {
	g := testGraph(t, fixture)
	// Inner aggregation, outer join: foods liked by more than one person,
	// with the names of their likers.
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?name ?f WHERE {
  { SELECT ?f (COUNT(?p) AS ?n) WHERE { ?p ex:likes ?f } GROUP BY ?f }
  FILTER(?n > 1) .
  ?who ex:likes ?f .
  ?who ex:name ?name .
}`)
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2 (alice+bob like pizza):\n%s", res.Len(), res.Table())
	}
	for _, sol := range res.Solutions {
		if sol["f"] != rdf.NewIRI("http://e/pizza") {
			t.Errorf("only pizza has >1 liker: %v", sol)
		}
	}
}

func TestSubqueryLimit(t *testing.T) {
	g := testGraph(t, fixture)
	// The subquery's LIMIT applies inside, before the outer join.
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?a WHERE {
  { SELECT ?p WHERE { ?p ex:age ?x } ORDER BY DESC(?x) LIMIT 1 }
  ?p ex:age ?a .
}`)
	if res.Len() != 1 || res.Get(0, "p") != rdf.NewIRI("http://e/carol") {
		t.Errorf("subquery limit: %v", res.Solutions)
	}
}

func TestSubqueryProjectionScoping(t *testing.T) {
	g := testGraph(t, fixture)
	// ?x is internal to the subquery; only ?p escapes.
	res := run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?x WHERE {
  { SELECT ?p WHERE { ?p ex:age ?x } }
}`)
	if res.Len() != 3 {
		t.Fatalf("rows = %d", res.Len())
	}
	for _, sol := range res.Solutions {
		if _, leaked := sol["x"]; leaked {
			t.Error("?x must not escape the subquery projection")
		}
	}
}
