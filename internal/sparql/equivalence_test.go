package sparql

// The randomized reference-equivalence harness: the headline guard for the
// ID-row refactor. Random graphs and random queries (BGP joins, UNION,
// OPTIONAL, MINUS, FILTER/EXISTS, property paths, BIND, VALUES, DISTINCT,
// aggregates) run through both the naive term-level reference evaluator
// (reference_test.go) and the production engine — at parallelism 1, 2, 4,
// and GOMAXPROCS, with cold and cached plans, and across interleaved graph
// mutations — asserting solution-multiset equality every time.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/store"
	"repro/internal/turtle"
)

func mustParseTurtleInto(g *store.Graph, ttl string) {
	if err := turtle.ParseInto(g, ttl); err != nil {
		panic(fmt.Sprintf("generated turtle failed to parse: %v\n%s", err, ttl))
	}
}

// assertSameResult compares the reference and production results as
// solution multisets (plus variable lists and ASK booleans).
func assertSameResult(t *testing.T, label, query string, want, got *Result) {
	t.Helper()
	if want.Kind == KindAsk {
		if got.Boolean != want.Boolean {
			t.Fatalf("%s: ASK mismatch: reference %v, production %v\nquery: %s",
				label, want.Boolean, got.Boolean, query)
		}
		return
	}
	if fmt.Sprint(want.Vars) != fmt.Sprint(got.Vars) {
		t.Fatalf("%s: vars mismatch: reference %v, production %v\nquery: %s",
			label, want.Vars, got.Vars, query)
	}
	wantRows, gotRows := canonicalRows(want), canonicalRows(got)
	if len(wantRows) != len(gotRows) {
		t.Fatalf("%s: row count mismatch: reference %d, production %d\nquery: %s\nreference: %v\nproduction: %v",
			label, len(wantRows), len(gotRows), query, wantRows, gotRows)
	}
	for i := range wantRows {
		if wantRows[i] != gotRows[i] {
			t.Fatalf("%s: row %d mismatch:\nreference:  %s\nproduction: %s\nquery: %s",
				label, i, wantRows[i], gotRows[i], query)
		}
	}
}

// TestReferenceEquivalenceCorpus runs the fixed operator corpus through
// the reference evaluator as a deterministic sanity layer under the
// randomized harness (same graph the parallel suites use).
func TestReferenceEquivalenceCorpus(t *testing.T) {
	g := testGraph(t, fixture)
	for _, tc := range parallelCorpus {
		if tc.name == "order-limit" {
			continue // LIMIT without a total order: row choice is unspecified
		}
		t.Run(tc.name, func(t *testing.T) {
			q, err := ParseQuery(tc.query)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			want := refExecute(g, q)
			got, err := Execute(g, q)
			if err != nil {
				t.Fatalf("execute: %v", err)
			}
			assertSameResult(t, tc.name, tc.query, want, got)
		})
	}
}

// TestRandomizedReferenceEquivalence is the randomized harness. Every
// (graph, query) pair is checked at four parallelism levels with a cold
// plan cache and again with a warm one, then the graph is mutated and a
// random subset re-checked against a fresh reference run (so a stale
// cached plan or bitmap set would be caught immediately).
func TestRandomizedReferenceEquivalence(t *testing.T) {
	const seeds = 18
	const queriesPerSeed = 7
	const refRowBudget = 60_000
	levels := []int{1, 2, 4, runtime.GOMAXPROCS(0)}

	oldMin, oldPar := fanoutMin, Parallelism()
	fanoutMin = 1 // tiny corpora must still exercise the fan-out paths
	t.Cleanup(func() {
		fanoutMin = oldMin
		SetParallelism(oldPar)
	})

	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(seed)))
			gen := newGen(rng)
			g := gen.genGraph()
			queries := make([]*Query, 0, queriesPerSeed)
			sources := make([]string, 0, queriesPerSeed)
			wants := make([]*Result, 0, queriesPerSeed)
			for attempts := 0; len(queries) < queriesPerSeed && attempts < 10*queriesPerSeed; attempts++ {
				src := gen.genQuery()
				q, err := ParseQuery(src)
				if err != nil {
					t.Fatalf("generated query failed to parse: %v\n%s", err, src)
				}
				// Cartesian shapes a nested-loop engine cannot finish are
				// skipped, not silently truncated.
				want, ok := refExecuteBudget(g, q, refRowBudget)
				if !ok {
					continue
				}
				queries = append(queries, q)
				sources = append(sources, src)
				wants = append(wants, want)
			}
			if len(queries) < queriesPerSeed {
				t.Fatalf("generator produced too many over-budget queries (kept %d)", len(queries))
			}
			for qi, q := range queries {
				want := wants[qi]
				for _, par := range levels {
					SetParallelism(par)
					ResetPlanCache()
					cold, err := Execute(g, q)
					if err != nil {
						t.Fatalf("execute (cold, par=%d): %v\n%s", par, err, sources[qi])
					}
					warm, err := Execute(g, q)
					if err != nil {
						t.Fatalf("execute (warm, par=%d): %v\n%s", par, err, sources[qi])
					}
					assertSameResult(t, fmt.Sprintf("q%d par=%d cold", qi, par), sources[qi], want, cold)
					assertSameResult(t, fmt.Sprintf("q%d par=%d warm", qi, par), sources[qi], want, warm)
				}
			}
			// Interleaved mutations: each mutation bumps Graph.Version, so
			// the now-stale cached plans must never serve the new graph.
			SetParallelism(2)
			for m := 0; m < 5; m++ {
				gen.mutate(g)
				qi := rng.Intn(len(queries))
				want, ok := refExecuteBudget(g, queries[qi], refRowBudget)
				if !ok {
					continue // a mutation can push a query over budget
				}
				got, err := Execute(g, queries[qi])
				if err != nil {
					t.Fatalf("execute after mutation %d: %v\n%s", m, err, sources[qi])
				}
				assertSameResult(t, fmt.Sprintf("q%d after-mutation=%d", qi, m), sources[qi], want, got)
			}
		})
	}
}
