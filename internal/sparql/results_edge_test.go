package sparql

// Edge-case coverage for results.go and expr.go — the package's least
// covered files before PR 4: HasRow on absent vs explicitly-unbound
// variables, ORDER BY over mixed term kinds, aggregates over empty
// groups, the builtin function library, and the numeric/EBV coercion
// corners.

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func edgeGraph(t *testing.T) *store.Graph {
	t.Helper()
	return testGraph(t, `
@prefix ex: <http://e/> .
ex:a ex:p "text" ; ex:n 3 ; ex:tag "hi"@en .
ex:b ex:p ex:iriVal ; ex:n 7 .
ex:c ex:p 2.5 .
`)
}

func TestHasRowUnboundSemantics(t *testing.T) {
	res := &Result{
		Kind: KindSelect,
		Vars: []string{"x", "y"},
		Solutions: []Solution{
			{"x": rdf.NewLiteral("bound")},                 // y absent
			{"x": rdf.NewLiteral("zero"), "y": rdf.Term{}}, // y explicitly zero
		},
	}
	zero := rdf.Term{}
	// A zero Term in want matches BOTH spellings of "unbound".
	if !res.HasRow(map[string]rdf.Term{"x": rdf.NewLiteral("bound"), "y": zero}) {
		t.Error("want-unbound must match a row where the var is absent")
	}
	if !res.HasRow(map[string]rdf.Term{"x": rdf.NewLiteral("zero"), "y": zero}) {
		t.Error("want-unbound must match a row with an explicit zero binding")
	}
	// A bound want must not match either unbound spelling.
	if res.HasRow(map[string]rdf.Term{"y": rdf.NewLiteral("v")}) {
		t.Error("bound want must not match unbound rows")
	}
	// Probing a variable the result never mentions behaves like unbound.
	if !res.HasRow(map[string]rdf.Term{"nosuch": zero}) {
		t.Error("want-unbound on an unknown var should match")
	}
	if res.HasRow(map[string]rdf.Term{"nosuch": rdf.NewLiteral("v")}) {
		t.Error("bound want on an unknown var must not match")
	}
}

func TestOrderByMixedTermKinds(t *testing.T) {
	g := edgeGraph(t)
	// ?v ranges over a string, an IRI, a decimal, a lang literal — no
	// single comparison domain. ORDER BY must stay total (falling back to
	// the global term order) and never panic or drop rows.
	res, err := Run(g, `SELECT ?s ?v WHERE { ?s <http://e/p> ?v } ORDER BY ?v ?s`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Fatalf("want 3 rows, got %d", res.Len())
	}
	// Unbound sorts first: the OPTIONAL row with no ?v must lead.
	res, err = Run(g, `SELECT ?s ?v ?n WHERE { ?s <http://e/n> ?n . OPTIONAL { ?s <http://e/nosuch> ?v } } ORDER BY ?v DESC(?n)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("want 2 rows, got %d", res.Len())
	}
	if n := res.Get(0, "n"); n != rdf.NewInt(7) {
		t.Errorf("DESC tiebreak: first row n = %v, want 7", n)
	}
}

func TestAggregatesOverEmptyGroups(t *testing.T) {
	g := edgeGraph(t)
	// No rows at all: the implicit group still yields one result row with
	// COUNT 0 and SUM 0; MIN/MAX/SAMPLE stay unbound.
	res, err := Run(g, `SELECT (COUNT(?x) AS ?c) (SUM(?x) AS ?s) (MIN(?x) AS ?lo) (MAX(?x) AS ?hi) (SAMPLE(?x) AS ?any)
		WHERE { ?x <http://e/nosuch> ?y }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("empty input must form one group, got %d rows", res.Len())
	}
	if got := res.Get(0, "c"); got != rdf.NewInt(0) {
		t.Errorf("COUNT over empty group = %v, want 0", got)
	}
	if got := res.Get(0, "s"); got != rdf.NewInt(0) {
		t.Errorf("SUM over empty group = %v, want 0", got)
	}
	zero := rdf.Term{}
	if !res.HasRow(map[string]rdf.Term{"lo": zero, "hi": zero, "any": zero}) {
		t.Errorf("MIN/MAX/SAMPLE over empty group must stay unbound; row: %v", res.Solutions[0])
	}
	// AVG over an empty group is 0 (engine convention), over values exact.
	res, err = Run(g, `SELECT (AVG(?v) AS ?a) WHERE { ?s <http://e/n> ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.Get(0, "a").Float(); !ok || got != 5 {
		t.Errorf("AVG = %v, want 5", res.Get(0, "a"))
	}
	// GROUP_CONCAT with separator; aggregate over non-numeric values.
	res, err = Run(g, `SELECT (GROUP_CONCAT(?v; SEPARATOR="|") AS ?cat) WHERE { <http://e/a> <http://e/p> ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Get(0, "cat"); got.Value != "text" {
		t.Errorf("GROUP_CONCAT = %v", got)
	}
}

func TestResultSortColumnGetTable(t *testing.T) {
	g := edgeGraph(t)
	res, err := Run(g, `SELECT ?s ?n WHERE { ?s <http://e/n> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	res.Sort()
	if res.Len() != 2 || res.Get(0, "s") != rdf.NewIRI("http://e/a") {
		t.Errorf("Sort: first subject = %v", res.Get(0, "s"))
	}
	if res.Get(-1, "s") != (rdf.Term{}) || res.Get(99, "s") != (rdf.Term{}) {
		t.Error("Get out of range must return the zero term")
	}
	if col := res.Column("n"); len(col) != 2 {
		t.Errorf("Column: %v", col)
	}
	if col := res.Column("nosuch"); len(col) != 0 {
		t.Errorf("Column of unknown var: %v", col)
	}
	if tbl := res.Table(); !strings.Contains(tbl, "?s") || !strings.Contains(tbl, "----") {
		t.Errorf("Table output malformed:\n%s", tbl)
	}
	ask, err := Run(g, `ASK { <http://e/a> <http://e/n> 3 }`)
	if err != nil {
		t.Fatal(err)
	}
	if ask.Table() != "yes\n" {
		t.Errorf("ASK Table = %q", ask.Table())
	}
}

// TestBuiltinLibrary sweeps the builtin function corners through FILTER
// and BIND so both the dispatch and the row plumbing are exercised.
func TestBuiltinLibrary(t *testing.T) {
	g := edgeGraph(t)
	yes := []string{
		`ASK { FILTER(ABS(-3) = 3) }`,
		`ASK { FILTER(CEIL(2.1) = 3) }`,
		`ASK { FILTER(FLOOR(2.9) = 2) }`,
		`ASK { FILTER(ROUND(2.5) = 3) }`,
		`ASK { FILTER(STRLEN("héllo") = 5) }`,
		`ASK { FILTER(UCASE("ab") = "AB") }`,
		`ASK { FILTER(LCASE("AB") = "ab") }`,
		`ASK { FILTER(CONTAINS("abc", "b")) }`,
		`ASK { FILTER(STRSTARTS("abc", "ab")) }`,
		`ASK { FILTER(STRENDS("abc", "bc")) }`,
		`ASK { FILTER(STRBEFORE("a-b", "-") = "a") }`,
		`ASK { FILTER(STRAFTER("a-b", "-") = "b") }`,
		`ASK { FILTER(STRBEFORE("ab", "x") = "") }`,
		`ASK { FILTER(CONCAT("a", "b", "c") = "abc") }`,
		`ASK { FILTER(SUBSTR("abcde", 2, 3) = "bcd") }`,
		`ASK { FILTER(SUBSTR("abcde", 4) = "de") }`,
		`ASK { FILTER(REPLACE("banana", "na", "NA") = "baNANA") }`,
		`ASK { FILTER(SAMETERM(1, 1)) }`,
		`ASK { FILTER(ISNUMERIC(2.5)) }`,
		`ASK { FILTER(!ISNUMERIC("x")) }`,
		`ASK { FILTER(ISIRI(IRI("http://e/x"))) }`,
		`ASK { FILTER(DATATYPE("plain") = <http://www.w3.org/2001/XMLSchema#string>) }`,
		`ASK { ?s <http://e/tag> ?v . FILTER(LANG(?v) = "en") }`,
		`ASK { ?s <http://e/tag> ?v . FILTER(LANGMATCHES(LANG(?v), "*")) }`,
		`ASK { ?s <http://e/tag> ?v . FILTER(LANGMATCHES(LANG(?v), "EN")) }`,
		`ASK { FILTER(COALESCE(?unbound, 7) = 7) }`,
		`ASK { FILTER(IF(1 > 2, "a", "b") = "b") }`,
		`ASK { FILTER(1 IN (3, 2, 1)) }`,
		`ASK { FILTER(4 NOT IN (3, 2, 1)) }`,
		`ASK { FILTER(STR(<http://e/x>) = "http://e/x") }`,
		`ASK { FILTER((2 + 3) * 2 = 10) }`,
		`ASK { FILTER(7 / 2 = 3.5) }`,
		`ASK { FILTER(-(-2) = 2) }`,
		`ASK { FILTER("b" > "a") }`,
		`ASK { FILTER(false < true) }`,
		`ASK { FILTER(<http://e/a> < <http://e/b>) }`,
	}
	for _, src := range yes {
		res, err := Run(g, src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if !res.Boolean {
			t.Errorf("%s: want true", src)
		}
	}
	// Error semantics: an erroring filter drops rows instead of failing.
	no := []string{
		`ASK { FILTER(1 / 0 = 1) }`,                    // division by zero: error
		`ASK { FILTER("x" + 1 = 2) }`,                  // non-numeric arithmetic: error
		`ASK { FILTER(ABS("x") = 1) }`,                 // numeric fn on string: error
		`ASK { FILTER(?never) }`,                       // unbound EBV: error
		`ASK { FILTER(BOUND(?never)) }`,                // false
		`ASK { FILTER(LANG("plain") != "") }`,          // plain literal has no lang
		`ASK { FILTER(SUBSTR("abc", 0) = "abc") }`,     // start < 1: error
		`ASK { FILTER(REPLACE("a", "(", "x") = "a") }`, // bad regex: error
		`ASK { FILTER(<http://e/a> = 1) }`,             // IRI vs literal: not equal
	}
	for _, src := range no {
		res, err := Run(g, src)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if res.Boolean {
			t.Errorf("%s: want false", src)
		}
	}
}

// TestEBVCoercion covers the effective-boolean-value table.
func TestEBVCoercion(t *testing.T) {
	cases := []struct {
		term rdf.Term
		want bool
		err  bool
	}{
		{rdf.TrueLiteral, true, false},
		{rdf.FalseLiteral, false, false},
		{rdf.NewInt(0), false, false},
		{rdf.NewInt(-1), true, false},
		{rdf.NewFloat(0), false, false},
		{rdf.NewLiteral(""), false, false},
		{rdf.NewLiteral("x"), true, false},
		{rdf.NewLangLiteral("x", "en"), true, false},
		{rdf.NewIRI("http://e/x"), false, true},
		{rdf.NewTypedLiteral("v", "http://e/custom"), false, true},
	}
	for _, tc := range cases {
		got, err := ebv(tc.term)
		if tc.err != (err != nil) {
			t.Errorf("ebv(%v): err = %v, want err=%v", tc.term, err, tc.err)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ebv(%v) = %v, want %v", tc.term, got, tc.want)
		}
	}
}
