package sparql

import (
	"sync"
	"sync/atomic"

	"repro/internal/store"
)

// BGP plan compilation and the process-wide plan cache.
//
// Compiling a BGP — estimating selectivities, picking the greedy join
// order, encoding each pattern's constant IDs, and segmenting the ordered
// patterns into fused intersection runs — depends only on the pattern
// list, the graph snapshot (its Version), and which slots are certainly
// bound on entry. All three are captured in the cache key, so a repeated
// query (the serve-time steady state, and every per-row re-entry of an
// OPTIONAL or EXISTS body) skips straight to execution.
//
// The key's graph component is whatever *store.Graph the query executes
// against. Under the MVCC serving model that is a frozen snapshot view
// whose Version never changes, so every plan compiled for a pinned
// snapshot stays hot for as long as any reader keeps pinning it —
// publishing a new version invalidates nothing retroactively. Plans are
// intentionally never reused across versions even for an identical BGP:
// a plan's fused steps embed materialized intersections of the snapshot's
// live index sets (sharedCand), which are content-dependent, so the first
// query against a freshly published snapshot recompiles. Dead entries —
// a live graph that mutated (version moved on), or a snapshot view that
// has been superseded by a newer publish — are evicted first when the
// cache reaches its size cap.

// bgpConstPos marks a pattern position that holds a constant ID.
const bgpConstPos = -1

// bgpSpec is one triple pattern of an ID pipeline: per position either a
// constant ID (slot == bgpConstPos) or an index into the row's slots.
type bgpSpec struct {
	ids  [3]store.ID
	slot [3]int
}

// planStep is one execution step of a compiled BGP: either a single
// property-path pattern, one plain pattern expansion, or a fused run of
// patterns that all constrain the same single fresh slot.
type planStep struct {
	tp     TriplePattern // the path pattern, when isPath
	isPath bool
	specs  []bgpSpec // 1 = plain expand, >1 = fused intersection run
	// freeSlot is the run's single uncertain slot (fused runs only).
	freeSlot int
	// shared holds the run's row-invariant candidate sets (smallest
	// first) when every non-free position is constant; sharedCand their
	// pre-materialized dense intersection. nil: resolve per row.
	shared     []*store.IDSet
	sharedCand *store.IDSet
}

// bgpPlan is a compiled BGP: the reordered patterns broken into steps.
// Plans are immutable after compilation and safe for concurrent use.
type bgpPlan struct {
	// empty is set when a non-path pattern names a constant term the
	// graph has never seen: the conjunction can match nothing.
	empty bool
	steps []planStep
}

// planKey identifies a compiled plan: the BGP identity, the graph
// snapshot it was compiled against, and which slots were certainly bound
// at entry (the join-order estimates and the fusion segmentation both
// depend on that set).
type planKey struct {
	bgp   *BGP
	g     *store.Graph
	ver   uint64
	bound string
}

// planCacheMax bounds the cache; on overflow stale-version entries are
// evicted first (see evictPlans).
const planCacheMax = 4096

var (
	planCache    sync.Map // planKey -> *bgpPlan
	planCacheLen atomic.Int32
	planCacheMu  sync.Mutex
	planHits     atomic.Uint64
	planMisses   atomic.Uint64
)

// PlanCacheStats returns the cumulative plan-cache hit and miss counts
// since process start (or the last ResetPlanCache). A repeated query on an
// unmodified graph hits; the first execution after any mutation misses.
func PlanCacheStats() (hits, misses uint64) {
	return planHits.Load(), planMisses.Load()
}

// ResetPlanCache empties the plan cache and zeroes its counters. Intended
// for tests and benchmarks that need a cold-plan baseline.
func ResetPlanCache() {
	planCacheMu.Lock()
	defer planCacheMu.Unlock()
	planCache.Range(func(k, _ any) bool {
		planCache.Delete(k)
		return true
	})
	planCacheLen.Store(0)
	planHits.Store(0)
	planMisses.Store(0)
}

// boundSig encodes the certainly-bound slot set as a compact cache-key
// string: two little-endian bytes per bound slot index, collision-free up
// to 65536 slots (the env builder assigns dense indices, so any real
// query is far below that; a hypothetical wider one would panic in the
// append below rather than alias two different bound sets onto one key).
func boundSig(certain []bool) string {
	if len(certain) > 1<<16 {
		panic("sparql: query exceeds 65536 variable slots")
	}
	var buf []byte
	for s, b := range certain {
		if b {
			buf = append(buf, byte(s), byte(s>>8))
		}
	}
	return string(buf)
}

// evictPlans shrinks an overflowing cache. Stale entries go first: a live
// graph that has since mutated (the key's old version can never be looked
// up again — versions are monotonic) or a snapshot view superseded by a
// newer publish (still readable by whoever pinned it, but commit-per-
// request workloads mint one batch of these per commit and the hot plans
// are the fresh snapshot's). Dropping them frees the dead plans without a
// fleet-wide recompile of the hot ones. If that alone does not bring the
// cache under its cap (e.g. thousands of still-"live" entries for graphs
// the application has discarded — their versions never move again, so
// staleness cannot identify them), the purge falls back to dropping
// everything: the cap is a hard bound on how much graph memory cache keys
// and cached index sets can pin.
func evictPlans() {
	planCacheMu.Lock()
	defer planCacheMu.Unlock()
	if planCacheLen.Load() <= planCacheMax {
		return // another goroutine already evicted
	}
	dropped := int32(0)
	planCache.Range(func(k, _ any) bool {
		pk := k.(planKey)
		if pk.g.Version() != pk.ver || pk.g.Superseded() {
			planCache.Delete(k)
			dropped++
		}
		return true
	})
	if planCacheLen.Load()-dropped > planCacheMax {
		planCache.Range(func(k, _ any) bool {
			planCache.Delete(k)
			dropped++
			return true
		})
	}
	planCacheLen.Add(-dropped)
}

// planBGP returns the compiled plan for bgp given the entry row set,
// consulting the cache unless join reordering is disabled (the A/B knob
// changes the plan shape and is not part of the key) or the graph mutated
// mid-query (the snapshot the key names no longer exists).
func (ec *evalContext) planBGP(bgp *BGP, rows []idRow) *bgpPlan {
	certain := ec.certainSlots(rows)
	if DisableJoinReorder || ec.g.Version() != ec.gver {
		return ec.compileBGP(bgp, certain)
	}
	key := planKey{bgp: bgp, g: ec.g, ver: ec.gver, bound: boundSig(certain)}
	if p, ok := planCache.Load(key); ok {
		planHits.Add(1)
		return p.(*bgpPlan)
	}
	planMisses.Add(1)
	p := ec.compileBGP(bgp, certain)
	if _, loaded := planCache.LoadOrStore(key, p); !loaded {
		if planCacheLen.Add(1) > planCacheMax {
			evictPlans()
		}
	}
	return p
}

// compileBGP orders the patterns, encodes their constants, and segments
// the ordered list into plan steps (fusing runs of patterns that share
// one fresh slot into intersection steps).
func (ec *evalContext) compileBGP(bgp *BGP, certain []bool) *bgpPlan {
	order, empty := ec.orderBGP(bgp.Triples, certain)
	plan := &bgpPlan{empty: empty}
	if empty {
		return plan
	}
	// Encode every non-path pattern once.
	specs := make([]bgpSpec, len(order))
	for i, oi := range order {
		tp := bgp.Triples[oi]
		if tp.Path != nil {
			continue
		}
		for j, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
			if tv.IsVar {
				specs[i].slot[j] = ec.env.slot(tv.Var)
				continue
			}
			specs[i].slot[j] = bgpConstPos
			id, ok := ec.g.LookupID(tv.Term)
			if !ok {
				plan.empty = true // constant absent: no triple can match
				return plan
			}
			specs[i].ids[j] = id
		}
	}
	// Segment into steps, tracking which slots become certainly bound as
	// the pipeline executes (a pattern binds all its slots in every
	// surviving row; a path binds its endpoint slots).
	cert := append([]bool(nil), certain...)
	for i := 0; i < len(order); {
		tp := bgp.Triples[order[i]]
		if tp.Path != nil {
			plan.steps = append(plan.steps, planStep{tp: tp, isPath: true, freeSlot: -1})
			for _, tv := range [2]TermOrVar{tp.S, tp.O} {
				if tv.IsVar {
					if s := ec.env.slot(tv.Var); s >= 0 {
						cert[s] = true
					}
				}
			}
			i++
			continue
		}
		run := i
		freeSlot := -1
		if v, ok := fusableSlot(specs[i], cert); ok {
			freeSlot = v
			for run = i + 1; run < len(order); run++ {
				if bgp.Triples[order[run]].Path != nil {
					break
				}
				if v2, ok2 := fusableSlot(specs[run], cert); !ok2 || v2 != v {
					break
				}
			}
		}
		if run > i+1 {
			st := planStep{specs: specs[i:run:run], freeSlot: freeSlot}
			st.shared, st.sharedCand = fusedSharedSets(ec.g, st.specs, freeSlot)
			plan.steps = append(plan.steps, st)
			for _, spec := range st.specs {
				markCertain(spec, cert)
			}
			i = run
			continue
		}
		plan.steps = append(plan.steps, planStep{specs: specs[i : i+1 : i+1], freeSlot: -1})
		markCertain(specs[i], cert)
		i++
	}
	return plan
}

// DisableJoinReorder turns off selectivity-based BGP join reordering and
// evaluates triple patterns in their written order (plans are then always
// compiled fresh, bypassing the plan cache). The solution set is identical
// either way; the knob exists for A/B benchmarks and for tests that
// verify that equivalence.
var DisableJoinReorder = false

// orderBGP returns indices of the BGP's triple patterns in a greedy join
// order: repeatedly pick the pattern with the lowest estimated cardinality
// given the slots bound so far, so selective patterns run first and each
// join extends as few intermediate rows as possible. The solution multiset
// of a conjunctive BGP is invariant under join order, so results are
// identical to the written order. empty reports that some non-path pattern
// names a constant the graph has never interned (the BGP matches nothing).
func (ec *evalContext) orderBGP(tps []TriplePattern, certain []bool) (order []int, empty bool) {
	type patInfo struct {
		slots     [3]int // slot per position, bgpConstPos when constant
		baseCount int    // CountID over the constant positions
		isPath    bool
	}
	infos := make([]patInfo, len(tps))
	for i, tp := range tps {
		pi := patInfo{isPath: tp.Path != nil}
		ids := [3]store.ID{store.NoID, store.NoID, store.NoID}
		absent := false
		for j, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
			pi.slots[j] = bgpConstPos
			if pi.isPath && j == 1 {
				continue // path position: no predicate term
			}
			if tv.IsVar {
				pi.slots[j] = ec.env.slot(tv.Var)
				continue
			}
			id, ok := ec.g.LookupID(tv.Term)
			if !ok {
				// A constant the graph never interned. For a plain pattern
				// the whole conjunction is empty; a path endpoint merely
				// counts as bound for estimation (zero-width paths can
				// still match it).
				if !pi.isPath {
					return nil, true
				}
				absent = true
				continue
			}
			ids[j] = id
		}
		if !pi.isPath && !absent {
			pi.baseCount = ec.g.CountID(ids[0], ids[1], ids[2])
		}
		infos[i] = pi
	}
	order = make([]int, 0, len(tps))
	if len(tps) < 2 || DisableJoinReorder {
		for i := range tps {
			order = append(order, i)
		}
		return order, false
	}
	bound := append([]bool(nil), certain...)
	const pathCost = int(^uint(0) >> 1)
	estimate := func(pi patInfo) int {
		if pi.isPath {
			// Paths carry no index statistics. A path whose endpoints are
			// already bound is a near-constant reachability check and
			// should run as soon as it can prune; with endpoints free it
			// can enumerate large closures, so it goes last.
			boundEnds := 0
			if pi.slots[0] == bgpConstPos || bound[pi.slots[0]] {
				boundEnds++
			}
			if pi.slots[2] == bgpConstPos || bound[pi.slots[2]] {
				boundEnds++
			}
			switch boundEnds {
			case 2:
				return 8
			case 1:
				return 4096
			default:
				return pathCost
			}
		}
		// Each position held by an already-bound slot shrinks the
		// estimate: the join will probe with a concrete ID even though we
		// could not count it upfront.
		est := pi.baseCount
		for _, s := range pi.slots {
			if s != bgpConstPos && bound[s] && est > 1 {
				est = est/8 + 1
			}
		}
		return est
	}
	used := make([]bool, len(tps))
	for range tps {
		best, bestEst := -1, 0
		for i := range tps {
			if used[i] {
				continue
			}
			est := estimate(infos[i])
			if best < 0 || est < bestEst {
				best, bestEst = i, est
			}
		}
		used[best] = true
		order = append(order, best)
		for _, s := range infos[best].slots {
			if s != bgpConstPos {
				bound[s] = true
			}
		}
	}
	return order, false
}

// fusableSlot reports whether exactly one position of spec holds a slot
// not yet certainly bound, returning that slot. Such a pattern resolves,
// per row, to a single index-level candidate set — the shape the fused
// intersection join consumes. A pattern repeating its one fresh variable
// in two positions has two uncertain positions and is rejected, as is a
// pattern whose positions are all constants or certain (a pure existence
// test, which the plain expander handles without allocating).
func fusableSlot(spec bgpSpec, certain []bool) (int, bool) {
	free, n := -1, 0
	for j := 0; j < 3; j++ {
		if s := spec.slot[j]; s != bgpConstPos && !certain[s] {
			free = s
			n++
		}
	}
	return free, n == 1
}

// markCertain records that spec's slots are bound in every surviving row
// (expansion binds all of a pattern's slots).
func markCertain(spec bgpSpec, certain []bool) {
	for j := 0; j < 3; j++ {
		if spec.slot[j] != bgpConstPos {
			certain[spec.slot[j]] = true
		}
	}
}

// fusedSharedSets resolves a fused run's candidate sets when they are
// row-invariant: every position of every pattern other than the free slot
// holds a constant, so the per-row probes never differ. The live index
// sets are returned smallest first (the iteration/And order that does the
// least work); nil sets means some pattern reads another (certainly
// bound) slot and the sets must be resolved per row. When the smallest
// set is dense enough for word-level ANDs to pay off, cand is the
// materialized intersection, computed exactly once for the whole plan —
// cached, sequential, and fanned-out execution alike.
func fusedSharedSets(g *store.Graph, specs []bgpSpec, freeSlot int) (sets []*store.IDSet, cand *store.IDSet) {
	for _, spec := range specs {
		for j := 0; j < 3; j++ {
			if s := spec.slot[j]; s != bgpConstPos && s != freeSlot {
				return nil, nil
			}
		}
	}
	sets = make([]*store.IDSet, 0, len(specs))
	for _, spec := range specs {
		var probe [3]store.ID
		for j := 0; j < 3; j++ {
			if spec.slot[j] == bgpConstPos {
				probe[j] = spec.ids[j]
			} else {
				probe[j] = store.NoID
			}
		}
		sets = append(sets, g.MatchSetID(probe[0], probe[1], probe[2]))
	}
	sortSetsByLen(sets)
	if sets[0].Len() >= fusedAndMin {
		cand = andAll(sets)
	}
	return sets, cand
}

// andAll folds ≥ 2 sets (smallest first) into their intersection with
// word-level ANDs, stopping as soon as the product empties. The result is
// always a fresh set, never a live index level.
func andAll(sets []*store.IDSet) *store.IDSet {
	cand := sets[0].And(sets[1])
	for _, s := range sets[2:] {
		if cand.Len() == 0 {
			break
		}
		cand = cand.And(s)
	}
	return cand
}

// sortSetsByLen orders a handful of sets by ascending cardinality
// (insertion sort: runs are 2-4 patterns long).
func sortSetsByLen(sets []*store.IDSet) {
	for i := 1; i < len(sets); i++ {
		for j := i; j > 0 && sets[j].Len() < sets[j-1].Len(); j-- {
			sets[j], sets[j-1] = sets[j-1], sets[j]
		}
	}
}

// fusedAndMin is the smallest-candidate-set size at which materializing
// the word-level AND beats iterating the smallest set and probing the
// others. Below it the intersection runs allocation-free.
const fusedAndMin = 1024
