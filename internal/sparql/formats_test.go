package sparql

import (
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"
)

func formatFixture(t *testing.T) *Result {
	g := testGraph(t, fixture)
	return run(t, g, `PREFIX ex: <http://e/>
SELECT ?p ?name ?f WHERE {
  ?p ex:name ?name . OPTIONAL { ?p ex:likes ?f }
} ORDER BY ?name`)
}

func TestWriteJSONConformsToW3CShape(t *testing.T) {
	res := formatFixture(t)
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Results struct {
			Bindings []map[string]struct {
				Type  string `json:"type"`
				Value string `json:"value"`
			} `json:"bindings"`
		} `json:"results"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Head.Vars) != 3 {
		t.Errorf("vars = %v", doc.Head.Vars)
	}
	if len(doc.Results.Bindings) != 4 {
		t.Errorf("bindings = %d, want 4", len(doc.Results.Bindings))
	}
	first := doc.Results.Bindings[0]
	if first["p"].Type != "uri" || first["name"].Type != "literal" {
		t.Errorf("term typing wrong: %v", first)
	}
	// Carol has no likes: her row must omit ?f rather than bind empty.
	for _, row := range doc.Results.Bindings {
		if row["name"].Value == "Carol" {
			if _, bound := row["f"]; bound {
				t.Error("unbound variable must be omitted in JSON bindings")
			}
		}
	}
}

func TestWriteJSONAsk(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `PREFIX ex: <http://e/> ASK { ex:alice ex:likes ex:sushi }`)
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Boolean *bool `json:"boolean"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Boolean == nil || !*doc.Boolean {
		t.Errorf("ASK JSON: %s", sb.String())
	}
}

func TestWriteCSV(t *testing.T) {
	res := formatFixture(t)
	var sb strings.Builder
	if err := res.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The W3C SPARQL 1.1 CSV format (RFC 4180) requires CRLF record endings.
	if strings.Count(out, "\r\n") != strings.Count(out, "\n") {
		t.Errorf("csv records must end in CRLF:\n%q", out)
	}
	lines := strings.Split(strings.TrimSuffix(out, "\r\n"), "\r\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines = %d, want header+4:\n%s", len(lines), out)
	}
	if lines[0] != "p,name,f" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(out, "Alice") {
		t.Error("csv missing data")
	}
}

func TestWriteTSVUsesNTriplesTerms(t *testing.T) {
	res := formatFixture(t)
	var sb strings.Builder
	if err := res.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "?p\t?name\t?f") {
		t.Errorf("tsv header wrong:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "<http://e/alice>") {
		t.Error("tsv should render IRIs in angle brackets")
	}
	if !strings.Contains(sb.String(), `"Alice"`) {
		t.Error("tsv should render literals quoted")
	}
}

func TestWriteXMLWellFormed(t *testing.T) {
	res := formatFixture(t)
	var sb strings.Builder
	if err := res.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	// Must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(sb.String()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("ill-formed XML: %v\n%s", err, sb.String())
		}
	}
	if !strings.Contains(sb.String(), `<variable name="p"/>`) {
		t.Error("XML head missing variables")
	}
	if !strings.Contains(sb.String(), "<uri>http://e/alice</uri>") {
		t.Error("XML missing uri binding")
	}
}

func TestWriteXMLAsk(t *testing.T) {
	g := testGraph(t, fixture)
	res := run(t, g, `ASK { ?s ?p ?o }`)
	var sb strings.Builder
	if err := res.WriteXML(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<boolean>true</boolean>") {
		t.Errorf("ASK XML:\n%s", sb.String())
	}
}

func TestFormatsEscapeSpecials(t *testing.T) {
	g := testGraph(t, `
@prefix ex: <http://e/> .
ex:s ex:p "a,b\"c<d>&e" .
`)
	res := run(t, g, `PREFIX ex: <http://e/> SELECT ?o WHERE { ex:s ex:p ?o }`)
	var csvOut, xmlOut, jsonOut strings.Builder
	if err := res.WriteCSV(&csvOut); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteXML(&xmlOut); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteJSON(&jsonOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvOut.String(), `"a,b""c<d>&e"`) {
		t.Errorf("csv quoting wrong: %q", csvOut.String())
	}
	if strings.Contains(xmlOut.String(), "<d>") {
		t.Error("xml must escape angle brackets in literals")
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(jsonOut.String()), &parsed); err != nil {
		t.Errorf("json escape broke document: %v", err)
	}
}
