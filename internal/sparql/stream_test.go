package sparql

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// chunkRecorder is the underlying sink for the streaming proofs: it
// records every Write the buffered writer hands the transport, so tests
// can assert that output left the writer incrementally (many small
// chunks) rather than as one document-sized write.
type chunkRecorder struct {
	buf      bytes.Buffer
	writes   int
	maxChunk int
}

func (cr *chunkRecorder) Write(p []byte) (int, error) {
	cr.writes++
	if len(p) > cr.maxChunk {
		cr.maxChunk = len(p)
	}
	return cr.buf.Write(p)
}

// bigGraph builds n subjects each carrying a name literal — a SELECT over
// it yields n rows.
func bigGraph(n int) *store.Graph {
	g := store.New()
	p := rdf.NewIRI("http://e/name")
	for i := 0; i < n; i++ {
		g.Add(rdf.NewIRI(fmt.Sprintf("http://e/s%06d", i)), p, rdf.NewLiteral(fmt.Sprintf("name-%06d", i)))
	}
	return g
}

const bigQuery = `SELECT ?s ?name WHERE { ?s <http://e/name> ?name }`

// TestStreamEquivalentToMaterialized locks the two serialization paths
// together: for every format, RunStream over the graph produces byte-for-
// byte what Write* produces from the materialized Result.
func TestStreamEquivalentToMaterialized(t *testing.T) {
	g := testGraph(t, fixture)
	query := `PREFIX ex: <http://e/>
SELECT ?p ?name ?f WHERE { ?p ex:name ?name . OPTIONAL { ?p ex:likes ?f } } ORDER BY ?name`
	res := run(t, g, query)
	for _, tc := range []struct {
		format string
		mk     func(io.Writer) ResultWriter
		mat    func(io.Writer) error
	}{
		{"json", NewJSONWriter, res.WriteJSON},
		{"xml", NewXMLWriter, res.WriteXML},
		{"csv", NewCSVWriter, res.WriteCSV},
		{"tsv", NewTSVWriter, res.WriteTSV},
	} {
		var streamed, materialized bytes.Buffer
		st, err := RunStream(g, query, tc.mk(&streamed), StreamOptions{})
		if err != nil {
			t.Fatalf("%s: RunStream: %v", tc.format, err)
		}
		if st.Rows != res.Len() || st.Truncated {
			t.Errorf("%s: stats = %+v, want %d rows untruncated", tc.format, st, res.Len())
		}
		if err := tc.mat(&materialized); err != nil {
			t.Fatal(err)
		}
		if streamed.String() != materialized.String() {
			t.Errorf("%s: streamed and materialized output differ:\n--- stream\n%s\n--- materialized\n%s",
				tc.format, streamed.String(), materialized.String())
		}
	}
}

// TestStreamFirstByteBeforeLastRow is the bounded-memory proof for the
// streaming writers: over a large synthetic result the transport must see
// many buffer-sized chunks — the first of them long before the last row —
// never one document-sized write, and the writer's own output accounting
// must match what arrived.
func TestStreamFirstByteBeforeLastRow(t *testing.T) {
	const n = 100000
	g := bigGraph(n)
	for _, tc := range []struct {
		format string
		mk     func(io.Writer) ResultWriter
	}{
		{"json", NewJSONWriter},
		{"xml", NewXMLWriter},
		{"csv", NewCSVWriter},
		{"tsv", NewTSVWriter},
	} {
		cr := &chunkRecorder{}
		rw := tc.mk(cr)
		st, err := RunStream(g, bigQuery, rw, StreamOptions{})
		if err != nil {
			t.Fatalf("%s: %v", tc.format, err)
		}
		if st.Rows != n {
			t.Fatalf("%s: rows = %d, want %d", tc.format, st.Rows, n)
		}
		total := cr.buf.Len()
		// A materialize-then-write serializer hands the transport the whole
		// document at once; the streaming writers must never exceed their
		// fixed buffer (8 KiB, with slack for one oversized record).
		if cr.maxChunk > 64<<10 {
			t.Errorf("%s: max transport chunk = %d bytes of %d total — not streaming", tc.format, cr.maxChunk, total)
		}
		if min := total / (16 << 10); cr.writes < min {
			t.Errorf("%s: only %d transport writes for %d bytes — not incremental", tc.format, cr.writes, total)
		}
		if got := rw.Written(); got != int64(total) {
			t.Errorf("%s: Written() = %d, transport got %d", tc.format, got, total)
		}
	}
}

func TestStreamMaxRowsTruncatesWellFormed(t *testing.T) {
	g := bigGraph(1000)
	var buf bytes.Buffer
	st, err := RunStream(g, bigQuery, NewJSONWriter(&buf), StreamOptions{MaxRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rows != 10 || !st.Truncated || st.Reason != "rows" {
		t.Fatalf("stats = %+v, want 10 rows truncated by rows", st)
	}
	var doc struct {
		Results struct {
			Bindings []map[string]struct{ Value string } `json:"bindings"`
		} `json:"results"`
		Truncated string `json:"truncated"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("truncated document is not well-formed JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Results.Bindings) != 10 || doc.Truncated != "rows" {
		t.Errorf("doc = %d bindings, truncated=%q", len(doc.Results.Bindings), doc.Truncated)
	}
}

func TestStreamMaxBytesTruncatesWellFormed(t *testing.T) {
	g := bigGraph(10000)
	var buf bytes.Buffer
	st, err := RunStream(g, bigQuery, NewXMLWriter(&buf), StreamOptions{MaxBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated || st.Reason != "bytes" {
		t.Fatalf("stats = %+v, want bytes truncation", st)
	}
	if st.Rows >= 10000 || st.Rows == 0 {
		t.Errorf("rows = %d, want a partial prefix", st.Rows)
	}
	out := buf.String()
	if !strings.Contains(out, "<!-- truncated: bytes limit reached -->") || !strings.HasSuffix(out, "</sparql>\n") {
		t.Errorf("truncated XML not well-formed:\n%s", out)
	}
}

func TestStreamExpiredDeadlineFailsBeforeFirstByte(t *testing.T) {
	g := bigGraph(10)
	var buf bytes.Buffer
	_, err := RunStream(g, bigQuery, NewJSONWriter(&buf), StreamOptions{Deadline: time.Now().Add(-time.Second)})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if buf.Len() != 0 {
		t.Errorf("wrote %d bytes despite expired deadline", buf.Len())
	}
}

// TestStreamDeadlineCancelsRunawayQuery proves the cooperative stop flag
// actually unwinds the evaluator: a three-way cartesian product over 300
// triples (2.7e7 result rows before projection) must abort near the
// deadline instead of materializing the product.
func TestStreamDeadlineCancelsRunawayQuery(t *testing.T) {
	g := bigGraph(300)
	const q = `SELECT ?a ?c ?e WHERE { ?a <http://e/name> ?b . ?c <http://e/name> ?d . ?e <http://e/name> ?f }`
	var buf bytes.Buffer
	start := time.Now()
	_, err := RunStream(g, q, NewJSONWriter(&buf), StreamOptions{Deadline: time.Now().Add(50 * time.Millisecond)})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v — stop flag not being polled", elapsed)
	}
	if buf.Len() != 0 {
		t.Errorf("wrote %d bytes despite pre-emission cancellation", buf.Len())
	}
}

func TestStreamAskBoolean(t *testing.T) {
	g := testGraph(t, fixture)
	const q = `PREFIX ex: <http://e/> ASK { ex:alice ex:likes ex:sushi }`
	var jsonBuf, csvBuf bytes.Buffer
	if _, err := RunStream(g, q, NewJSONWriter(&jsonBuf), StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Boolean *bool `json:"boolean"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &doc); err != nil || doc.Boolean == nil || !*doc.Boolean {
		t.Errorf("ASK JSON stream: err=%v doc=%s", err, jsonBuf.String())
	}
	if _, err := RunStream(g, q, NewCSVWriter(&csvBuf), StreamOptions{}); err != nil {
		t.Fatal(err)
	}
	if csvBuf.String() != "true\r\n" {
		t.Errorf("ASK CSV stream = %q", csvBuf.String())
	}
}

func TestStreamGraphResultsRejected(t *testing.T) {
	g := testGraph(t, fixture)
	var buf bytes.Buffer
	_, err := RunStream(g, `PREFIX ex: <http://e/> CONSTRUCT { ?s ex:n ?o } WHERE { ?s ex:name ?o }`,
		NewJSONWriter(&buf), StreamOptions{})
	if !errors.Is(err, ErrGraphResult) {
		t.Fatalf("CONSTRUCT err = %v, want ErrGraphResult", err)
	}
	if buf.Len() != 0 {
		t.Errorf("wrote %d bytes for a graph result", buf.Len())
	}
}

// BenchmarkStreamMillionRows exercises the acceptance-scale result: a
// 1M-row SELECT streamed through the JSON writer into a discarding
// transport. Bytes/op staying O(row) (not O(result)) is visible in the
// -benchmem numbers.
func BenchmarkStreamMillionRows(b *testing.B) {
	g := bigGraph(1_000_000)
	q, err := ParseQuery(`SELECT ?s ?name WHERE { ?s <http://e/name> ?name }`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := ExecuteStream(g, q, NewJSONWriter(io.Discard), StreamOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if st.Rows != 1_000_000 {
			b.Fatalf("rows = %d", st.Rows)
		}
	}
}
