package sparql

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/store"
)

// Parallel query execution.
//
// The evaluator's hot loops are embarrassingly parallel: extending N
// solutions against a triple pattern, probing N OPTIONAL / EXISTS bodies,
// evaluating a filter over N rows, expanding N BFS frontier nodes — each
// item is independent and touches the graph read-only (see the reader
// contract in internal/store). This file provides the morsel-driven
// fan-out those loops share.
//
// # Determinism
//
// Every fan-out here is order-preserving by construction: items are
// partitioned into contiguous chunks, each chunk appends into its own
// index-ordered slot, and slots are concatenated in chunk order. The
// resulting sequence is exactly what the sequential append loop over the
// same items would have produced — parallel execution never reorders,
// drops, or duplicates a row relative to parallelism 1. (The store's
// innermost index level is a bitmap and iterates in ascending ID order,
// but patterns with two or more free positions still walk the outer map
// levels in unspecified order, so two executions of the same query can
// enumerate those matches differently; that residual nondeterminism
// exists at every parallelism level and is canonicalized away by ORDER
// BY, DISTINCT-insensitive consumers, and the artifact renderers. The
// guarantee the worker pool adds — and the equivalence tests enforce — is
// that the solution multiset, the variable list, and every rendered
// artifact are identical to sequential evaluation.)
//
// # Scheduling
//
// One query resolves its worker budget once, at Execute time. The budget
// is a semaphore of par-1 extra-worker tokens shared by every fan-out
// point in that query, so nested parallelism (a UNION branch inside an
// OPTIONAL inside a parallel filter) can never exceed the budget: a loop
// that finds no free token simply runs sequentially in its caller's
// goroutine. Fan-outs engage only when a loop has at least 2*fanoutMin
// items, so small queries keep the exact allocation profile of the
// sequential reference implementation.

// parallelism holds the package-wide worker knob; see SetParallelism.
var parallelism atomic.Int32

// fanoutMin is the minimum number of items one worker must be able to
// claim before a loop fans out. A variable rather than a constant so tests
// can force tiny corpora through the parallel paths.
var fanoutMin = 16

// chunksPerWorker over-partitions each fan-out so a chunk that happens to
// carry heavy rows (e.g. a high-degree join key) doesn't stall the barrier.
const chunksPerWorker = 4

// SetParallelism sets the worker count used by Execute: 0 (the default)
// resolves to runtime.GOMAXPROCS(0), 1 selects the sequential reference
// implementation, and n > 1 uses at most n workers per query. The setting
// is process-wide and safe to change concurrently with running queries;
// each Execute resolves it once at entry. Results are identical at every
// setting (see the determinism notes above).
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	parallelism.Store(int32(n))
}

// Parallelism reports the current SetParallelism value (0 = automatic).
func Parallelism() int { return int(parallelism.Load()) }

// effectiveParallelism resolves the knob to a concrete worker count.
func effectiveParallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parChunks partitions [0, n) into contiguous chunks and runs fn over them
// on this query's workers. fn receives (chunk, lo, hi) and must write only
// to state owned by that chunk index (or to distinct item indexes), never
// to shared accumulators. Chunk indexes are dense in [0, chunks), and
// chunks never exceeds ec.maxChunks().
//
// Returns (chunks, true) after all chunks completed, or (0, false) when the
// caller must run its sequential loop instead — the work is too small, the
// context is sequential, or every worker token is already in use.
func (ec *evalContext) parChunks(n int, fn func(chunk, lo, hi int)) (int, bool) {
	if ec == nil || ec.sem == nil || n < 2*fanoutMin {
		return 0, false
	}
	workers := n / fanoutMin
	if workers > ec.par {
		workers = ec.par
	}
	// Claim extra-worker tokens without blocking: a nested fan-out that
	// finds the budget exhausted degrades to sequential instead of
	// deadlocking or oversubscribing.
	extra := 0
acquire:
	for extra < workers-1 {
		select {
		case ec.sem <- struct{}{}:
			extra++
		default:
			break acquire
		}
	}
	if extra == 0 {
		return 0, false
	}
	workers = extra + 1
	chunks := workers * chunksPerWorker
	if chunks > n {
		chunks = n
	}
	var cursor atomic.Int64
	run := func() {
		for {
			c := int(cursor.Add(1)) - 1
			if c >= chunks {
				return
			}
			fn(c, c*n/chunks, (c+1)*n/chunks)
		}
	}
	var wg sync.WaitGroup
	wg.Add(extra)
	for i := 0; i < extra; i++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run() // the caller's goroutine participates
	wg.Wait()
	for i := 0; i < extra; i++ {
		<-ec.sem
	}
	return chunks, true
}

// maxChunks bounds the chunk count any parChunks call can produce, so
// callers can pre-size per-chunk slot arrays.
func (ec *evalContext) maxChunks() int { return ec.par * chunksPerWorker }

// parEligible reports whether a loop over n items may fan out. Call sites
// guard with it BEFORE constructing the closures they would hand to
// parRange/parChunks/parMap: those closures escape into worker goroutines,
// so building them unconditionally would put one heap allocation on the
// sequential path of every operator — exactly the profile the reference
// implementation must keep.
func (ec *evalContext) parEligible(n int) bool {
	return ec != nil && ec.sem != nil && n >= 2*fanoutMin
}

// parRange fans an append-style range evaluator (eval appends the results
// for items [lo, hi) onto out) across the worker pool and concatenates the
// per-chunk outputs in chunk order, reproducing the sequential append
// order exactly. ok=false means the caller must run eval(0, n, nil) itself.
func parRange[U any](ec *evalContext, n int, eval func(lo, hi int, out []U) []U) ([]U, bool) {
	buckets := make([][]U, ec.maxChunks())
	chunks, ok := ec.parChunks(n, func(c, lo, hi int) {
		buckets[c] = eval(lo, hi, nil)
	})
	if !ok {
		return nil, false
	}
	total := 0
	for _, b := range buckets[:chunks] {
		total += len(b)
	}
	out := make([]U, 0, total)
	for _, b := range buckets[:chunks] {
		out = append(out, b...)
	}
	return out, true
}

// parMap fills out[i] = fn(items[i]) in parallel. Index-ordered slots make
// it trivially order-preserving. Returns false when the caller must run
// the loop sequentially; out is then untouched.
func parMap[T, U any](ec *evalContext, items []T, out []U, fn func(T) U) bool {
	if ec == nil || ec.sem == nil || len(items) < 2*fanoutMin {
		return false
	}
	_, ok := ec.parChunks(len(items), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = fn(items[i])
		}
	})
	return ok
}

// parSetUnion fans an accumulate-into-a-set evaluator across the worker
// pool: [0, n) partitions into contiguous morsels, eval fills a private
// bitmap per morsel, and the morsel bitmaps merge with word-level ORs.
// Union is commutative and idempotent, so the merged set is independent
// of chunk boundaries and worker scheduling — identical to eval(0, n)
// into one set. ok=false means the caller must run that sequential form
// itself.
//
//feo:fresh
func parSetUnion(ec *evalContext, n int, eval func(lo, hi int, out *store.IDSet)) (*store.IDSet, bool) {
	outs := make([]*store.IDSet, ec.maxChunks())
	chunks, ok := ec.parChunks(n, func(c, lo, hi int) {
		s := store.NewIDSet()
		eval(lo, hi, s)
		outs[c] = s
	})
	if !ok {
		return nil, false
	}
	merged := store.NewIDSet()
	for _, s := range outs[:chunks] {
		merged.OrWith(s)
	}
	return merged, true
}

// parPair runs f and g concurrently when a worker token is free, else
// sequentially (f first). Used for the two branches of UNION.
func (ec *evalContext) parPair(f, g func()) {
	if ec != nil && ec.sem != nil {
		select {
		case ec.sem <- struct{}{}:
			done := make(chan struct{})
			go func() {
				defer close(done)
				f()
			}()
			g()
			<-done
			<-ec.sem
			return
		default:
		}
	}
	f()
	g()
}
