package sparql

import (
	"errors"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Solution is one query solution: a binding of variable names to terms.
type Solution map[string]rdf.Term

// clone copies a solution before extension. The extra headroom keeps the
// insert that follows from growing (and rehashing) the fresh map.
func (s Solution) clone() Solution {
	out := make(Solution, len(s)+2)
	//feo:unordered // map copy
	for k, v := range s {
		out[k] = v
	}
	return out
}

// errUnbound signals an expression error per SPARQL semantics: in FILTER it
// removes the solution; in BIND it leaves the variable unbound.
var errUnbound = errors.New("sparql: expression error")

// Expression is a SPARQL expression evaluable against an ID row.
//
// Variables resolve through the context's slot table and decode lazily:
// an expression that never needs a term's lexical form (BOUND, EXISTS)
// touches no term at all, and one that does decodes exactly the slots it
// reads. Expression trees are immutable after parsing, so Eval is safe
// for concurrent calls with distinct rows — the parallel executor
// evaluates filters, BINDs, and projection expressions from many workers
// at once. Anything stateful an Eval reaches (the evalContext memos, the
// regex cache) synchronizes internally.
type Expression interface {
	Eval(ec *evalContext, r idRow) (rdf.Term, error)
}

// ---- leaf expressions ----

// VarExpr references a variable.
type VarExpr struct{ Name string }

// Eval returns the bound term (decoded lazily) or an error when unbound.
func (e *VarExpr) Eval(ec *evalContext, r idRow) (rdf.Term, error) {
	if t, ok := ec.valueOf(r, e.Name); ok {
		return t, nil
	}
	return rdf.Term{}, errUnbound
}

// ConstExpr is a constant term.
type ConstExpr struct{ Term rdf.Term }

// Eval returns the constant.
func (e *ConstExpr) Eval(*evalContext, idRow) (rdf.Term, error) { return e.Term, nil }

// ---- compound expressions ----

// BinaryExpr applies an infix operator: || && = != < > <= >= + - * /.
type BinaryExpr struct {
	Op          string
	Left, Right Expression
}

// UnaryExpr applies ! or unary -.
type UnaryExpr struct {
	Op   string
	Expr Expression
}

// FuncExpr is a builtin function call.
type FuncExpr struct {
	Name string // upper-cased
	Args []Expression
}

// ExistsExpr is EXISTS{} / NOT EXISTS{}.
type ExistsExpr struct {
	Negated bool
	Pattern *Group
}

// InExpr is "expr IN (e1, e2, ...)" or NOT IN.
type InExpr struct {
	Negated bool
	Expr    Expression
	List    []Expression
}

// AggExpr is an aggregate call; it is evaluated by the GROUP BY machinery,
// not by Eval (Eval reads the precomputed value bound under its key).
type AggExpr struct {
	Name     string // COUNT, SUM, AVG, MIN, MAX, SAMPLE, GROUP_CONCAT
	Distinct bool
	Arg      Expression // nil for COUNT(*)
	Sep      string     // GROUP_CONCAT separator
	key      string     // internal binding key assigned by the planner
}

// Eval reads the aggregate's computed value from the group row.
func (e *AggExpr) Eval(ec *evalContext, r idRow) (rdf.Term, error) {
	if t, ok := ec.valueOf(r, e.key); ok {
		return t, nil
	}
	return rdf.Term{}, errUnbound
}

// Eval of BinaryExpr implements SPARQL operator semantics, including
// short-circuit || / && with the three-valued error handling of the spec.
func (e *BinaryExpr) Eval(ec *evalContext, row idRow) (rdf.Term, error) {
	switch e.Op {
	case "||":
		lv, lerr := ebvOf(e.Left, ec, row)
		rv, rerr := ebvOf(e.Right, ec, row)
		switch {
		case lerr == nil && lv, rerr == nil && rv:
			return rdf.TrueLiteral, nil
		case lerr != nil || rerr != nil:
			return rdf.Term{}, errUnbound
		default:
			return rdf.FalseLiteral, nil
		}
	case "&&":
		lv, lerr := ebvOf(e.Left, ec, row)
		rv, rerr := ebvOf(e.Right, ec, row)
		switch {
		case lerr == nil && !lv, rerr == nil && !rv:
			return rdf.FalseLiteral, nil
		case lerr != nil || rerr != nil:
			return rdf.Term{}, errUnbound
		default:
			return rdf.TrueLiteral, nil
		}
	}
	l, err := e.Left.Eval(ec, row)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := e.Right.Eval(ec, row)
	if err != nil {
		return rdf.Term{}, err
	}
	switch e.Op {
	case "=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(eq), nil
	case "!=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(!eq), nil
	case "<", ">", "<=", ">=":
		c, err := orderCompare(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		switch e.Op {
		case "<":
			return boolTerm(c < 0), nil
		case ">":
			return boolTerm(c > 0), nil
		case "<=":
			return boolTerm(c <= 0), nil
		default:
			return boolTerm(c >= 0), nil
		}
	case "+", "-", "*", "/":
		lf, lok := l.Float()
		rf, rok := r.Float()
		if !lok || !rok {
			return rdf.Term{}, errUnbound
		}
		var v float64
		switch e.Op {
		case "+":
			v = lf + rf
		case "-":
			v = lf - rf
		case "*":
			v = lf * rf
		default:
			if rf == 0 {
				return rdf.Term{}, errUnbound
			}
			v = lf / rf
		}
		return numericResult(v, l, r, e.Op), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown operator %q", e.Op)
}

// numericResult keeps integer typing for integer operands of +,-,* and
// produces xsd:decimal otherwise.
func numericResult(v float64, l, r rdf.Term, op string) rdf.Term {
	if op != "/" && l.Datatype == rdf.XSDInteger && r.Datatype == rdf.XSDInteger && v == math.Trunc(v) {
		return rdf.NewInt(int64(v))
	}
	return rdf.NewTypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), rdf.XSDDecimal)
}

// Eval of UnaryExpr.
func (e *UnaryExpr) Eval(ec *evalContext, r idRow) (rdf.Term, error) {
	switch e.Op {
	case "!":
		v, err := ebvOf(e.Expr, ec, r)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(!v), nil
	case "-":
		v, err := e.Expr.Eval(ec, r)
		if err != nil {
			return rdf.Term{}, err
		}
		f, ok := v.Float()
		if !ok {
			return rdf.Term{}, errUnbound
		}
		if v.Datatype == rdf.XSDInteger {
			return rdf.NewInt(-int64(f)), nil
		}
		return rdf.NewFloat(-f), nil
	case "+":
		return e.Expr.Eval(ec, r)
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown unary operator %q", e.Op)
}

// Eval of InExpr.
func (e *InExpr) Eval(ec *evalContext, r idRow) (rdf.Term, error) {
	v, err := e.Expr.Eval(ec, r)
	if err != nil {
		return rdf.Term{}, err
	}
	found := false
	for _, item := range e.List {
		iv, err := item.Eval(ec, r)
		if err != nil {
			continue
		}
		if eq, err := termsEqual(v, iv); err == nil && eq {
			found = true
			break
		}
	}
	return boolTerm(found != e.Negated), nil
}

// Eval of ExistsExpr runs the nested pattern seeded with the current row
// and tests for any result. Single-triple-pattern groups — the common
// FILTER (NOT) EXISTS shape — short-circuit on the first index hit
// instead of materializing any binding, without decoding a single term.
func (e *ExistsExpr) Eval(ec *evalContext, r idRow) (rdf.Term, error) {
	if found, ok := ec.quickExists(e.Pattern, r); ok {
		return boolTerm(found != e.Negated), nil
	}
	res := ec.evalGroupRows(e.Pattern, []idRow{r})
	return boolTerm((len(res) > 0) != e.Negated), nil
}

// Eval of FuncExpr dispatches the builtin library.
func (e *FuncExpr) Eval(ec *evalContext, r idRow) (rdf.Term, error) {
	// BOUND and COALESCE/IF inspect raw evaluation outcomes.
	switch e.Name {
	case "BOUND":
		v, ok := e.Args[0].(*VarExpr)
		if !ok {
			return rdf.Term{}, errUnbound
		}
		s := ec.env.slot(v.Name)
		return boolTerm(s >= 0 && r[s] != store.NoID), nil
	case "COALESCE":
		for _, a := range e.Args {
			if v, err := a.Eval(ec, r); err == nil {
				return v, nil
			}
		}
		return rdf.Term{}, errUnbound
	case "IF":
		if len(e.Args) != 3 {
			return rdf.Term{}, errUnbound
		}
		c, err := ebvOf(e.Args[0], ec, r)
		if err != nil {
			return rdf.Term{}, err
		}
		if c {
			return e.Args[1].Eval(ec, r)
		}
		return e.Args[2].Eval(ec, r)
	}
	args := make([]rdf.Term, len(e.Args))
	for i, a := range e.Args {
		v, err := a.Eval(ec, r)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = v
	}
	return evalBuiltin(e.Name, args)
}

func evalBuiltin(name string, args []rdf.Term) (rdf.Term, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sparql: %s expects %d args, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "ISIRI", "ISURI":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(args[0].IsIRI()), nil
	case "ISBLANK":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(args[0].IsBlank()), nil
	case "ISLITERAL":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(args[0].IsLiteral()), nil
	case "ISNUMERIC":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		_, ok := args[0].Float()
		return boolTerm(ok), nil
	case "STR":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewLiteral(args[0].Value), nil
	case "LANG":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		if !args[0].IsLiteral() {
			return rdf.Term{}, errUnbound
		}
		return rdf.NewLiteral(args[0].Lang), nil
	case "LANGMATCHES":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		tag, rng := strings.ToLower(args[0].Value), strings.ToLower(args[1].Value)
		if rng == "*" {
			return boolTerm(tag != ""), nil
		}
		return boolTerm(tag == rng || strings.HasPrefix(tag, rng+"-")), nil
	case "DATATYPE":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		if !args[0].IsLiteral() {
			return rdf.Term{}, errUnbound
		}
		dt := args[0].Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return rdf.NewIRI(dt), nil
	case "IRI", "URI":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(args[0].Value), nil
	case "STRLEN":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewInt(int64(len([]rune(args[0].Value)))), nil
	case "UCASE":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return stringResult(strings.ToUpper(args[0].Value), args[0]), nil
	case "LCASE":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return stringResult(strings.ToLower(args[0].Value), args[0]), nil
	case "CONTAINS":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(strings.Contains(args[0].Value, args[1].Value)), nil
	case "STRSTARTS":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(strings.HasPrefix(args[0].Value, args[1].Value)), nil
	case "STRENDS":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(strings.HasSuffix(args[0].Value, args[1].Value)), nil
	case "STRBEFORE":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		if i := strings.Index(args[0].Value, args[1].Value); i >= 0 {
			return stringResult(args[0].Value[:i], args[0]), nil
		}
		return rdf.NewLiteral(""), nil
	case "STRAFTER":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		if i := strings.Index(args[0].Value, args[1].Value); i >= 0 {
			return stringResult(args[0].Value[i+len(args[1].Value):], args[0]), nil
		}
		return rdf.NewLiteral(""), nil
	case "CONCAT":
		var b strings.Builder
		for _, a := range args {
			b.WriteString(a.Value)
		}
		return rdf.NewLiteral(b.String()), nil
	case "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return rdf.Term{}, errUnbound
		}
		runes := []rune(args[0].Value)
		start, ok := args[1].Int()
		if !ok || start < 1 {
			return rdf.Term{}, errUnbound
		}
		from := int(start) - 1
		if from > len(runes) {
			from = len(runes)
		}
		to := len(runes)
		if len(args) == 3 {
			n, ok := args[2].Int()
			if !ok {
				return rdf.Term{}, errUnbound
			}
			if from+int(n) < to {
				to = from + int(n)
			}
		}
		return stringResult(string(runes[from:to]), args[0]), nil
	case "REPLACE":
		if len(args) != 3 {
			return rdf.Term{}, errUnbound
		}
		re, err := compileRegex(args[1].Value, "")
		if err != nil {
			return rdf.Term{}, errUnbound
		}
		return stringResult(re.ReplaceAllString(args[0].Value, args[2].Value), args[0]), nil
	case "REGEX":
		if len(args) != 2 && len(args) != 3 {
			return rdf.Term{}, errUnbound
		}
		flags := ""
		if len(args) == 3 {
			flags = args[2].Value
		}
		re, err := compileRegex(args[1].Value, flags)
		if err != nil {
			return rdf.Term{}, errUnbound
		}
		return boolTerm(re.MatchString(args[0].Value)), nil
	case "ABS":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return numericUnary(args[0], math.Abs)
	case "CEIL":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return numericUnary(args[0], math.Ceil)
	case "FLOOR":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return numericUnary(args[0], math.Floor)
	case "ROUND":
		if err := need(1); err != nil {
			return rdf.Term{}, err
		}
		return numericUnary(args[0], math.Round)
	case "SAMETERM":
		if err := need(2); err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(args[0] == args[1]), nil
	}
	return rdf.Term{}, fmt.Errorf("sparql: unknown function %s", name)
}

// regexCache memoizes compiled REGEX/REPLACE patterns across queries. The
// pattern argument is re-evaluated per solution, so an uncached FILTER
// REGEX would recompile the same pattern once per row. Data-driven
// (per-row varying) patterns stop being cached once the cache is full,
// bounding memory; lookups stay lock-free either way.
var (
	regexCache    sync.Map // "pattern\x00flags" -> *regexp.Regexp
	regexCacheLen atomic.Int32
)

const regexCacheMax = 256

func compileRegex(pattern, flags string) (*regexp.Regexp, error) {
	key := pattern + "\x00" + flags
	if re, ok := regexCache.Load(key); ok {
		return re.(*regexp.Regexp), nil
	}
	if strings.Contains(flags, "i") {
		pattern = "(?i)" + pattern
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	if regexCacheLen.Load() < regexCacheMax {
		if _, loaded := regexCache.LoadOrStore(key, re); !loaded {
			regexCacheLen.Add(1)
		}
	}
	return re, nil
}

func numericUnary(t rdf.Term, f func(float64) float64) (rdf.Term, error) {
	v, ok := t.Float()
	if !ok {
		return rdf.Term{}, errUnbound
	}
	r := f(v)
	if t.Datatype == rdf.XSDInteger {
		return rdf.NewInt(int64(r)), nil
	}
	return rdf.NewFloat(r), nil
}

// stringResult preserves the language tag of the first argument per the
// SPARQL string-function rules.
func stringResult(s string, like rdf.Term) rdf.Term {
	if like.Lang != "" {
		return rdf.NewLangLiteral(s, like.Lang)
	}
	return rdf.NewLiteral(s)
}

func boolTerm(b bool) rdf.Term {
	if b {
		return rdf.TrueLiteral
	}
	return rdf.FalseLiteral
}

// ebvOf computes the effective boolean value of an expression.
func ebvOf(e Expression, ec *evalContext, r idRow) (bool, error) {
	v, err := e.Eval(ec, r)
	if err != nil {
		return false, err
	}
	return ebv(v)
}

// ebv implements SPARQL effective boolean value coercion.
func ebv(t rdf.Term) (bool, error) {
	if !t.IsLiteral() {
		return false, errUnbound
	}
	if b, ok := t.Bool(); ok {
		return b, nil
	}
	if f, ok := t.Float(); ok {
		return f != 0 && !math.IsNaN(f), nil
	}
	if t.Datatype == "" || t.Datatype == rdf.XSDString || t.Lang != "" {
		return t.Value != "", nil
	}
	return false, errUnbound
}

// termsEqual implements SPARQL "=" semantics: numeric comparison for
// numerics, value equality for booleans and strings, term equality for
// IRIs/blanks; comparing two incompatible literal types is an error.
func termsEqual(a, b rdf.Term) (bool, error) {
	if a == b {
		return true, nil
	}
	if a.IsLiteral() && b.IsLiteral() {
		if fa, ok := a.Float(); ok {
			if fb, ok2 := b.Float(); ok2 {
				return fa == fb, nil
			}
		}
		if ba, ok := a.Bool(); ok {
			if bb, ok2 := b.Bool(); ok2 {
				return ba == bb, nil
			}
		}
		if isPlainString(a) && isPlainString(b) {
			return a.Value == b.Value && a.Lang == b.Lang, nil
		}
		// Unknown datatype combinations with identical lexical forms were
		// caught by a == b above; different forms are errors per spec, but
		// returning false is more useful for this engine's closed world.
		return false, nil
	}
	return false, nil
}

func isPlainString(t rdf.Term) bool {
	return t.Datatype == "" || t.Datatype == rdf.XSDString || t.Lang != ""
}

// orderCompare compares two terms for <, >, ORDER BY: numeric, string, or
// boolean comparisons when compatible, otherwise the global term order.
func orderCompare(a, b rdf.Term) (int, error) {
	if a.IsLiteral() && b.IsLiteral() {
		if fa, ok := a.Float(); ok {
			if fb, ok2 := b.Float(); ok2 {
				switch {
				case fa < fb:
					return -1, nil
				case fa > fb:
					return 1, nil
				default:
					return 0, nil
				}
			}
		}
		if isPlainString(a) && isPlainString(b) {
			return strings.Compare(a.Value, b.Value), nil
		}
		if ba, ok := a.Bool(); ok {
			if bb, ok2 := b.Bool(); ok2 {
				switch {
				case !ba && bb:
					return -1, nil
				case ba && !bb:
					return 1, nil
				default:
					return 0, nil
				}
			}
		}
		return 0, errUnbound
	}
	if a.IsIRI() && b.IsIRI() {
		return strings.Compare(a.Value, b.Value), nil
	}
	return 0, errUnbound
}
