package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Result holds the outcome of executing a query.
type Result struct {
	Kind QueryKind
	// Vars lists the projected variable names in order (SELECT).
	Vars []string
	// Solutions holds the rows (SELECT).
	Solutions []Solution
	// Boolean is the ASK answer.
	Boolean bool
	// Graph holds CONSTRUCT/DESCRIBE output.
	Graph *store.Graph
	// Namespaces from the query, for rendering.
	Namespaces *rdf.Namespaces
}

// Execute runs a parsed query against a graph. Evaluation fans out across
// the worker budget set by SetParallelism; the graph must be quiescent (no
// concurrent writers) for the duration of the call, per the store's reader
// contract. Concurrent Execute calls against one graph are safe.
//
// Internally every operator works on fixed-slot ID rows (see idspace.go);
// the public map-based Solutions are materialized exactly once per
// projected result row, in finishSelect.
func Execute(g *store.Graph, q *Query) (*Result, error) {
	ec := newEvalContext(g, buildQueryEnv(q))
	rows := ec.evalGroupRows(q.Where, []idRow{ec.newRow()})
	res := &Result{Kind: q.Kind, Namespaces: q.Namespaces}
	switch q.Kind {
	case KindAsk:
		res.Boolean = len(rows) > 0
		return res, nil
	case KindConstruct:
		res.Graph = ec.constructGraph(q, rows)
		return res, nil
	case KindDescribe:
		res.Graph = ec.describeGraph(q, rows)
		return res, nil
	}
	return ec.finishSelect(q, rows)
}

// Run parses and executes src against g in one call. Parses are memoized
// by source text (bounded), so the serve-time steady state — the same
// query string arriving per request — reuses one immutable parse tree,
// which in turn is what lets the plan cache hit across requests: its keys
// include BGP identity, and a fresh parse would mint fresh identities.
func Run(g *store.Graph, src string) (*Result, error) {
	q, err := parseQueryCached(src)
	if err != nil {
		return nil, err
	}
	return Execute(g, q)
}

// queryCache memoizes successful parses by exact source text. Parsed
// queries are immutable after ParseQuery returns (execution never writes
// to the AST), so one tree can serve concurrent executions. Bounded the
// same way as the plan cache: on overflow the whole map drops.
var (
	queryCache    sync.Map // string -> *Query
	queryCacheLen atomic.Int32
)

const queryCacheMax = 512

func parseQueryCached(src string) (*Query, error) {
	if q, ok := queryCache.Load(src); ok {
		return q.(*Query), nil
	}
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err // parse errors are not cached (and are cheap to rediscover)
	}
	if _, loaded := queryCache.LoadOrStore(src, q); !loaded {
		if queryCacheLen.Add(1) > queryCacheMax {
			queryCache.Range(func(k, _ any) bool {
				queryCache.Delete(k)
				return true
			})
			queryCacheLen.Store(0)
		}
	}
	return q, nil
}

type evalContext struct {
	g *store.Graph
	// env is the query's variable→slot binding table; every idRow this
	// context touches has exactly env.width() slots.
	env *slotEnv
	// par is the worker budget this execution resolved from SetParallelism;
	// sem holds its par-1 extra-worker tokens. sem == nil (par <= 1) keeps
	// every loop on the sequential reference path.
	par int
	sem chan struct{}
	// gver is the graph's mutation version at Execute entry, and dictLen
	// the dictionary size of that snapshot (the boundary between graph IDs
	// and query-local extension IDs). The memo caches below are only valid
	// for that snapshot; the path caches and the plan cache check it and
	// bypass themselves if the graph mutated mid-query (a reader-contract
	// violation, degraded to uncached evaluation instead of stale results).
	gver    uint64
	dictLen int
	// mu guards the maps below plus the extension dictionary: they are
	// lazily filled caches shared by all of the query's workers. Lookups
	// and stores lock; computations run unlocked (a duplicated compute is
	// harmless, a lock held across one could deadlock re-entry).
	mu sync.Mutex
	// Query-local extension dictionary: terms the graph has never interned
	// (expression results, VALUES constants), with IDs growing downward
	// from just below store.NoID. See idspace.go.
	extIDs   map[rdf.Term]store.ID
	extTerms []rdf.Term
	// Per-query property-path memos, ID-keyed: the graph is immutable
	// while a query runs, so the ID set a path reaches from a given
	// endpoint is computed (and encoded) once even when many rows probe
	// the same (path, endpoint) pair.
	pathFwd    map[pathIDKey][]store.ID
	pathBwd    map[pathIDKey][]store.ID
	pathStarts map[*Path][]store.ID
	// Per-query filter-pushdown analysis, memoized by group: OPTIONAL and
	// EXISTS bodies re-enter evalGroupRows once per row, and the variable
	// collection depends only on the (immutable) pattern tree.
	groupMemo map[*Group]*groupInfo
	// stop, when non-nil, is a cooperative cancellation flag (set by
	// ExecuteStream's deadline timer). The row loops poll it and unwind
	// with partial state, which the caller then discards; the worker pool
	// has no panic recovery, so cancellation must never panic. nil — the
	// plain Execute path — keeps the polls to a nil check.
	stop *atomic.Bool
}

// canceled reports whether this execution's deadline has fired.
func (ec *evalContext) canceled() bool { return ec.stop != nil && ec.stop.Load() }

// newEvalContext resolves the parallelism knob and pins the graph snapshot
// for this execution.
func newEvalContext(g *store.Graph, env *slotEnv) *evalContext {
	ec := &evalContext{
		g:       g,
		env:     env,
		par:     effectiveParallelism(),
		gver:    g.Version(),
		dictLen: g.Dict().Len(),
	}
	if ec.par > 1 {
		ec.sem = make(chan struct{}, ec.par-1)
	}
	return ec
}

type pathIDKey struct {
	p *Path
	t store.ID
}

// groupInfo caches the static part of a group's filter-pushdown analysis.
type groupInfo struct {
	groupVars map[string]bool // variables any pattern of the group could bind
	fvars     [][]string      // variables mentioned by each filter
}

func (ec *evalContext) groupInfoFor(g *Group) *groupInfo {
	ec.mu.Lock()
	gi, ok := ec.groupMemo[g]
	ec.mu.Unlock()
	if ok {
		return gi
	}
	gi = &groupInfo{groupVars: make(map[string]bool), fvars: make([][]string, len(g.Filters))}
	for _, pat := range g.Patterns {
		collectPossibleVars(pat, gi.groupVars)
	}
	for i, f := range g.Filters {
		gi.fvars[i] = collectExprVars(f)
	}
	ec.mu.Lock()
	if ec.groupMemo == nil {
		ec.groupMemo = make(map[*Group]*groupInfo)
	}
	ec.groupMemo[g] = gi
	ec.mu.Unlock()
	return gi
}

// evalGroupRows evaluates a group graph pattern over the input rows.
//
// Filters are pushed down: a filter runs as soon as every variable it can
// ever see is certainly bound (or can never be bound by this group), so it
// prunes intermediate rows before later patterns multiply them. A filter's
// value for a row cannot change once its variables are bound, so the final
// solution set is identical to filtering at the end.
func (ec *evalContext) evalGroupRows(g *Group, input []idRow) []idRow {
	seq := input
	if len(g.Filters) == 0 {
		for _, pat := range g.Patterns {
			if ec.canceled() {
				return nil
			}
			seq = ec.evalPatternRows(pat, seq)
			if len(seq) == 0 {
				break
			}
		}
		return seq
	}
	// certain: variables bound in every row at this point.
	certain := ec.varsBoundInAllRows(input)
	gi := ec.groupInfoFor(g)
	groupVars, fvars := gi.groupVars, gi.fvars
	applied := make([]bool, len(g.Filters))
	runReady := func() {
		for i, f := range g.Filters {
			if applied[i] {
				continue
			}
			ready := true
			for _, v := range fvars[i] {
				// A variable blocks the filter only while this group could
				// still bind it: anything else is either bound already or
				// stays unbound forever (existential / error semantics).
				if !certain[v] && groupVars[v] {
					ready = false
					break
				}
			}
			if ready {
				applied[i] = true
				seq = ec.applyFilter(f, seq)
			}
		}
	}
	runReady()
	for _, pat := range g.Patterns {
		if ec.canceled() {
			return nil
		}
		seq = ec.evalPatternRows(pat, seq)
		if len(seq) == 0 {
			// Filters with EXISTS could still not resurrect solutions.
			break
		}
		addCertainVars(pat, certain)
		runReady()
	}
	for i, f := range g.Filters {
		if !applied[i] {
			seq = ec.applyFilter(f, seq)
		}
	}
	return seq
}

// collectPossibleVars adds every variable p could bind in any solution.
func collectPossibleVars(p Pattern, out map[string]bool) {
	switch pat := p.(type) {
	case *BGP:
		for _, tp := range pat.Triples {
			for _, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
				if tv.IsVar {
					out[tv.Var] = true
				}
			}
		}
	case *Group:
		for _, sub := range pat.Patterns {
			collectPossibleVars(sub, out)
		}
	case *Optional:
		for _, sub := range pat.Pattern.Patterns {
			collectPossibleVars(sub, out)
		}
	case *Union:
		for _, sub := range pat.Left.Patterns {
			collectPossibleVars(sub, out)
		}
		for _, sub := range pat.Right.Patterns {
			collectPossibleVars(sub, out)
		}
	case *Bind:
		out[pat.Var] = true
	case *InlineData:
		for _, v := range pat.Vars {
			out[v] = true
		}
	case *SubSelect:
		for _, item := range pat.Query.Projection {
			out[item.Var] = true
		}
		if len(pat.Query.Projection) == 0 {
			// SELECT *: anything its WHERE clause mentions.
			if pat.Query.Where != nil {
				for _, sub := range pat.Query.Where.Patterns {
					collectPossibleVars(sub, out)
				}
			}
		}
	}
	// *Minus binds nothing.
}

// addCertainVars adds the variables that are bound in every solution after
// p evaluates successfully.
func addCertainVars(p Pattern, out map[string]bool) {
	switch pat := p.(type) {
	case *BGP:
		for _, tp := range pat.Triples {
			for _, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
				if tv.IsVar {
					out[tv.Var] = true
				}
			}
		}
	case *Group:
		for _, sub := range pat.Patterns {
			addCertainVars(sub, out)
		}
	case *Union:
		left := make(map[string]bool)
		right := make(map[string]bool)
		for _, sub := range pat.Left.Patterns {
			addCertainVars(sub, left)
		}
		for _, sub := range pat.Right.Patterns {
			addCertainVars(sub, right)
		}
		//feo:unordered // result is a set
		for v := range left {
			if right[v] {
				out[v] = true
			}
		}
	}
	// Optional, Bind, InlineData, Minus, SubSelect guarantee nothing: their
	// bindings can be absent from individual solutions.
}

// collectExprVars returns every variable an expression mentions, including
// variables anywhere inside EXISTS patterns — pattern positions and filter
// expressions alike, at every nesting depth. Pushdown correctness depends
// on this being an over-approximation, never an under-approximation.
func collectExprVars(e Expression) []string {
	seen := make(map[string]bool)
	var walk func(Expression)
	var walkPat func(Pattern)
	var walkGroup func(g *Group)
	walkGroup = func(g *Group) {
		if g == nil {
			return
		}
		for _, sub := range g.Patterns {
			walkPat(sub)
		}
		for _, f := range g.Filters {
			walk(f)
		}
	}
	walkPat = func(p Pattern) {
		collectPossibleVars(p, seen)
		switch pat := p.(type) {
		case *Group:
			walkGroup(pat)
		case *Optional:
			walkGroup(pat.Pattern)
		case *Union:
			walkGroup(pat.Left)
			walkGroup(pat.Right)
		case *Minus:
			walkGroup(pat.Pattern)
		case *Bind:
			walk(pat.Expr)
		case *SubSelect:
			if pat.Query != nil {
				walkGroup(pat.Query.Where)
				for _, item := range pat.Query.Projection {
					if item.Expr != nil {
						walk(item.Expr)
					}
				}
				for _, h := range pat.Query.Having {
					walk(h)
				}
			}
		}
	}
	walk = func(e Expression) {
		switch x := e.(type) {
		case *VarExpr:
			seen[x.Name] = true
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			walk(x.Expr)
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *InExpr:
			walk(x.Expr)
			for _, a := range x.List {
				walk(a)
			}
		case *AggExpr:
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *ExistsExpr:
			walkGroup(x.Pattern)
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	//feo:unordered // sorted below
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func (ec *evalContext) evalPatternRows(p Pattern, seq []idRow) []idRow {
	switch pat := p.(type) {
	case *BGP:
		return ec.evalBGPRows(pat, seq)
	case *Group:
		return ec.evalGroupRows(pat, seq)
	case *Optional:
		// Each row's OPTIONAL probe is independent: fan the probes out,
		// falling back to the sequential loop below the threshold.
		if ec.parEligible(len(seq)) {
			if out, ok := parRange(ec, len(seq), func(lo, hi int, out []idRow) []idRow {
				return ec.evalOptionalRange(pat, seq, lo, hi, out)
			}); ok {
				return out
			}
		}
		return ec.evalOptionalRange(pat, seq, 0, len(seq), nil)
	case *Union:
		// The branches see the same immutable inputs and share the query's
		// memo caches (locked), so they can evaluate concurrently; output
		// order stays left-then-right either way. Micro-unions — one input
		// row joined against two single-pattern branches, the shape a
		// per-row EXISTS re-enters — stay sequential: goroutine hand-off
		// would cost more than the branch and burn the token budget the
		// large fan-outs need.
		if ec.sem != nil && (len(seq) > 1 || len(pat.Left.Patterns)+len(pat.Right.Patterns) > 2) {
			var left, right []idRow
			ec.parPair(
				func() { left = ec.evalGroupRows(pat.Left, seq) },
				func() { right = ec.evalGroupRows(pat.Right, seq) },
			)
			return append(left, right...)
		}
		left := ec.evalGroupRows(pat.Left, seq)
		right := ec.evalGroupRows(pat.Right, seq)
		return append(left, right...)
	case *Minus:
		rhs := ec.evalGroupRows(pat.Pattern, []idRow{ec.newRow()})
		if ec.parEligible(len(seq)) {
			if out, ok := parRange(ec, len(seq), func(lo, hi int, out []idRow) []idRow {
				return minusRange(seq, rhs, lo, hi, out)
			}); ok {
				return out
			}
		}
		return minusRange(seq, rhs, 0, len(seq), nil)
	case *Bind:
		if ec.parEligible(len(seq)) {
			if out, ok := parRange(ec, len(seq), func(lo, hi int, out []idRow) []idRow {
				return ec.evalBindRange(pat, seq, lo, hi, out)
			}); ok {
				return out
			}
		}
		return ec.evalBindRange(pat, seq, 0, len(seq), nil)
	case *InlineData:
		return ec.evalInlineData(pat, seq)
	case *SubSelect:
		// Subqueries evaluate in a fresh scope; their projected rows carry
		// only the projected slots, then join with the outer rows.
		inner := ec.evalGroupRows(pat.Query.Where, []idRow{ec.newRow()})
		projRows, _ := ec.finishSelectRows(pat.Query, inner)
		var out []idRow
		for _, r := range seq {
			for _, sr := range projRows {
				if merged, ok := mergeRows(r, sr); ok {
					out = append(out, merged)
				}
			}
		}
		return out
	default:
		return nil
	}
}

// evalOptionalRange extends seq[lo:hi] per OPTIONAL semantics, appending
// to out. The range form serves both the sequential reference path (one
// full-range call, no closures) and the worker pool (one call per morsel).
func (ec *evalContext) evalOptionalRange(pat *Optional, seq []idRow, lo, hi int, out []idRow) []idRow {
	for _, r := range seq[lo:hi] {
		if ec.canceled() {
			return out
		}
		ext := ec.evalGroupRows(pat.Pattern, []idRow{r})
		if len(ext) > 0 {
			out = append(out, ext...)
		} else {
			out = append(out, r)
		}
	}
	return out
}

// minusRange appends the rows of seq[lo:hi] not excluded by rhs.
//
//feo:idspace
func minusRange(seq, rhs []idRow, lo, hi int, out []idRow) []idRow {
	for _, r := range seq[lo:hi] {
		if !minusMatchesRows(r, rhs) {
			out = append(out, r)
		}
	}
	return out
}

// minusMatchesRows reports whether r is excluded by any row in rhs per
// SPARQL MINUS semantics (compatible and sharing at least one variable).
//
//feo:idspace
func minusMatchesRows(r idRow, rhs []idRow) bool {
	for _, m := range rhs {
		shared := false
		compatible := true
		for s, v := range m {
			if v == store.NoID {
				continue
			}
			if rv := r[s]; rv != store.NoID {
				shared = true
				if rv != v {
					compatible = false
					break
				}
			}
		}
		if shared && compatible {
			return true
		}
	}
	return false
}

// evalBindRange applies a BIND to seq[lo:hi], appending to out.
func (ec *evalContext) evalBindRange(pat *Bind, seq []idRow, lo, hi int, out []idRow) []idRow {
	slot := ec.env.slot(pat.Var)
	for _, r := range seq[lo:hi] {
		v, err := pat.Expr.Eval(ec, r)
		if err != nil {
			out = append(out, r) // expression error leaves var unbound
			continue
		}
		id := ec.encodeTerm(v)
		if r[slot] != store.NoID {
			if r[slot] == id {
				out = append(out, r)
			}
			continue
		}
		ns := cloneRow(r)
		ns[slot] = id
		out = append(out, ns)
	}
	return out
}

// evalInlineData joins a VALUES block: each data row's cells are encoded
// once, then merged against every input row (copy-on-write, ID equality).
func (ec *evalContext) evalInlineData(pat *InlineData, seq []idRow) []idRow {
	slots := make([]int, len(pat.Vars))
	for i, v := range pat.Vars {
		slots[i] = ec.env.slot(v)
	}
	enc := make([][]store.ID, len(pat.Rows))
	for i, row := range pat.Rows {
		ids := make([]store.ID, len(row))
		for j, cell := range row {
			if cell.Defined {
				ids[j] = ec.encodeTerm(cell.Term)
			} else {
				ids[j] = store.NoID // UNDEF
			}
		}
		enc[i] = ids
	}
	var out []idRow
	for _, r := range seq {
		for _, ids := range enc {
			merged := r
			cloned := false
			ok := true
			for j, id := range ids {
				if id == store.NoID {
					continue
				}
				slot := slots[j]
				if merged[slot] != store.NoID {
					if merged[slot] != id {
						ok = false
						break
					}
					continue
				}
				if !cloned {
					merged = cloneRow(r)
					cloned = true
				}
				merged[slot] = id
			}
			if ok {
				out = append(out, merged)
			}
		}
	}
	return out
}

func (ec *evalContext) applyFilter(f Expression, seq []idRow) []idRow {
	// Filters are pure per-row predicates (EXISTS probes re-enter the
	// evaluator, which is itself safe for concurrent rows), so large
	// inputs evaluate in parallel morsels whose surviving rows concatenate
	// in chunk order — input order exactly.
	if ec.parEligible(len(seq)) {
		if out, ok := ec.parApplyFilter(f, seq); ok {
			return out
		}
	}
	var out []idRow
	for _, r := range seq {
		if ec.canceled() {
			return out
		}
		if ok, err := ebvOf(f, ec, r); err == nil && ok {
			out = append(out, r)
		}
	}
	return out
}

// parApplyFilter fans a filter across the worker pool; false means no
// tokens were free and the caller must filter sequentially.
func (ec *evalContext) parApplyFilter(f Expression, seq []idRow) ([]idRow, bool) {
	return parRange(ec, len(seq), func(lo, hi int, out []idRow) []idRow {
		for _, r := range seq[lo:hi] {
			if ec.canceled() {
				return out
			}
			if ok, err := ebvOf(f, ec, r); err == nil && ok {
				out = append(out, r)
			}
		}
		return out
	})
}

// evalBGPRows evaluates a basic graph pattern as a pure ID-space pipeline:
// the compiled (and cached) plan orders the patterns by estimated
// selectivity and fuses runs of patterns sharing one fresh slot into
// bitmap intersections; execution then expands the input rows step by
// step, with property-path steps interleaved where the planner placed
// them. No term is decoded and no Solution map is built — rows stay
// []store.ID throughout.
func (ec *evalContext) evalBGPRows(bgp *BGP, rows []idRow) []idRow {
	if len(rows) == 0 || len(bgp.Triples) == 0 {
		return rows
	}
	plan := ec.planBGP(bgp, rows)
	if plan.empty {
		return nil
	}
	for i := range plan.steps {
		if len(rows) == 0 || ec.canceled() {
			return nil
		}
		st := &plan.steps[i]
		switch {
		case st.isPath:
			rows = ec.evalPathRows(st.tp, rows)
		case len(st.specs) > 1:
			// Fused run: per row, each pattern's candidate bitmap comes
			// straight from an index level and the run's matches are their
			// word-level intersection, in the exact ascending-ID order the
			// unfused expand-then-filter cascade would emit.
			expanded := false
			if ec.parEligible(len(rows)) {
				if par, ok := ec.parIntersectIDRows(st, rows); ok {
					rows, expanded = par, true
				}
			}
			if !expanded {
				rows = intersectIDRows(ec.g, ec.stop, st, rows, 0, len(rows), rows[:0:0])
			}
		default:
			spec := st.specs[0]
			expanded := false
			if ec.parEligible(len(rows)) {
				if par, ok := ec.parExpandIDRows(spec, rows); ok {
					rows, expanded = par, true
				}
			}
			if !expanded {
				rows = expandIDRows(ec.g, ec.stop, spec, rows, 0, len(rows), rows[:0:0])
			}
		}
	}
	return rows
}

// probeFor resolves one pattern against one row: constants from the spec,
// everything else from the row's slots (NoID when the slot is unbound).
//
//feo:idspace
func probeFor(spec bgpSpec, r idRow) [3]store.ID {
	var probe [3]store.ID
	for j := 0; j < 3; j++ {
		if spec.slot[j] == bgpConstPos {
			probe[j] = spec.ids[j]
		} else {
			probe[j] = r[spec.slot[j]]
		}
	}
	return probe
}

// intersectIDRows joins rows[lo:hi] against a fused run of patterns that
// all constrain the same single fresh slot. Per row, each pattern
// contributes the live index bitmap behind its doubly-bound probe; the
// run's matches are the intersection of those bitmaps — iterated off the
// smallest set with membership probes into the rest when the smallest is
// small (no allocation), materialized as word-level ANDs when it is dense.
// Either way the surviving IDs extend the row in ascending order — exactly
// what expanding the first pattern and filtering through the rest would
// append, without materializing a row per pre-filter candidate. Rows that
// already bind the slot degrade to one membership test per pattern.
//
//feo:idspace
func intersectIDRows(g *store.Graph, stop *atomic.Bool, st *planStep, rows []idRow, lo, hi int, next []idRow) []idRow {
	specs, freeSlot := st.specs, st.freeSlot
	var scratch [8]*store.IDSet
	for _, r := range rows[lo:hi] {
		if stop != nil && stop.Load() {
			return next // canceled: caller discards partial output
		}
		if v := r[freeSlot]; v != store.NoID {
			ok := true
			switch {
			case st.sharedCand != nil:
				ok = st.sharedCand.Contains(v)
			case st.shared != nil:
				for _, set := range st.shared {
					if !set.Contains(v) {
						ok = false
						break
					}
				}
			default:
				for _, spec := range specs {
					probe := probeFor(spec, r)
					if !g.HasID(probe[0], probe[1], probe[2]) {
						ok = false
						break
					}
				}
			}
			if ok {
				next = append(next, r)
			}
			continue
		}
		emit := func(id store.ID) bool {
			vals := cloneRow(r)
			vals[freeSlot] = id
			next = append(next, vals)
			return true
		}
		if st.sharedCand != nil {
			st.sharedCand.ForEach(emit)
			continue
		}
		sets := st.shared
		if sets == nil {
			sets = scratch[:0]
			dead := false
			for _, spec := range specs {
				probe := probeFor(spec, r)
				set := g.MatchSetID(probe[0], probe[1], probe[2])
				if set.Len() == 0 {
					dead = true
					break
				}
				sets = append(sets, set)
			}
			if dead {
				continue
			}
			sortSetsByLen(sets)
			if sets[0].Len() >= fusedAndMin {
				// Dense row-dependent candidates: materialize this row's
				// word-level AND.
				andAll(sets).ForEach(emit)
				continue
			}
		} else if sets[0].Len() == 0 {
			continue
		}
		// Sparse candidates: iterate the smallest set and probe the others —
		// ascending order, nothing allocated.
		sets[0].ForEach(func(id store.ID) bool {
			for _, s := range sets[1:] {
				if !s.Contains(id) {
					return true
				}
			}
			return emit(id)
		})
	}
	return next
}

// parIntersectIDRows fans a fused intersection run across the worker pool;
// see parExpandIDRows for why it is a separate method.
func (ec *evalContext) parIntersectIDRows(st *planStep, rows []idRow) ([]idRow, bool) {
	return parRange(ec, len(rows), func(lo, hi int, out []idRow) []idRow {
		return intersectIDRows(ec.g, ec.stop, st, rows, lo, hi, out)
	})
}

// parExpandIDRows fans one pattern's row expansion across the worker
// pool. A separate method (like parStepSet) so its escaping closure never
// forces heap boxing of evalBGPRows' pipeline state on the sequential
// reference path.
func (ec *evalContext) parExpandIDRows(spec bgpSpec, rows []idRow) ([]idRow, bool) {
	return parRange(ec, len(rows), func(lo, hi int, out []idRow) []idRow {
		return expandIDRows(ec.g, ec.stop, spec, rows, lo, hi, out)
	})
}

// expandIDRows joins rows[lo:hi] against one encoded pattern, appending
// every extension to next. It reads only the graph and the rows, so it is
// safe to call from concurrent workers on disjoint ranges.
//
//feo:idspace
func expandIDRows(g *store.Graph, stop *atomic.Bool, spec bgpSpec, rows []idRow, lo, hi int, next []idRow) []idRow {
	for _, r := range rows[lo:hi] {
		if stop != nil && stop.Load() {
			return next // canceled: caller discards partial output
		}
		probe := probeFor(spec, r) // NoID in unbound positions
		g.ForEachID(probe[0], probe[1], probe[2], func(s, p, o store.ID) bool {
			match := [3]store.ID{s, p, o}
			ext := r
			cloned := false
			for j := 0; j < 3; j++ {
				slot := spec.slot[j]
				if slot == bgpConstPos || probe[j] != store.NoID {
					continue // constant or pre-bound: index guaranteed it
				}
				if ext[slot] != store.NoID {
					// Same variable matched earlier in this triple.
					if ext[slot] != match[j] {
						return true
					}
					continue
				}
				if !cloned {
					ext = cloneRow(r)
					cloned = true
				}
				ext[slot] = match[j]
			}
			next = append(next, ext)
			return true
		})
	}
	return next
}

// quickExists answers EXISTS over a group consisting of a single non-path
// triple pattern without materializing rows: it probes the ID indexes
// directly from the row's slots — no decode at all — and stops at the
// first match. ok=false means the group is not of that shape and the
// caller must fall back to full evaluation.
//
//feo:unordered
func (ec *evalContext) quickExists(g *Group, r idRow) (found, ok bool) {
	if g == nil || len(g.Filters) != 0 || len(g.Patterns) != 1 {
		return false, false
	}
	bgp, isBGP := g.Patterns[0].(*BGP)
	if !isBGP || len(bgp.Triples) != 1 || bgp.Triples[0].Path != nil {
		return false, false
	}
	tp := bgp.Triples[0]
	ids := [3]store.ID{store.NoID, store.NoID, store.NoID}
	freeSlots := [3]int{-1, -1, -1}
	for i, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
		if tv.IsVar {
			s := ec.env.slot(tv.Var)
			if s >= 0 && r[s] != store.NoID {
				ids[i] = r[s]
				continue
			}
			// Two unbound occurrences of one variable constrain each
			// other; leave that shape to the full evaluator.
			for j := 0; j < i; j++ {
				if freeSlots[j] == s {
					return false, false
				}
			}
			freeSlots[i] = s
			continue
		}
		id, known := ec.g.LookupID(tv.Term)
		if !known {
			return false, true // a term the graph has never seen: no match
		}
		ids[i] = id
	}
	ec.g.ForEachID(ids[0], ids[1], ids[2], func(_, _, _ store.ID) bool {
		found = true
		return false
	})
	return found, true
}

// ---- SELECT finalization: grouping, aggregates, projection, modifiers ----

// finishSelect runs the SELECT pipeline on ID rows and materializes the
// public Solutions — one map allocation per projected result row, the
// only place the engine decodes rows into terms wholesale.
func (ec *evalContext) finishSelect(q *Query, rows []idRow) (*Result, error) {
	res := &Result{Kind: KindSelect, Namespaces: q.Namespaces}
	projected, vars := ec.finishSelectRows(q, rows)
	res.Vars = vars
	slots := make([]int, len(vars))
	for i, v := range vars {
		slots[i] = ec.env.slot(v)
	}
	out := make([]Solution, len(projected))
	if !(ec.parEligible(len(projected)) && parMap(ec, projected, out, func(r idRow) Solution {
		return ec.materializeRow(r, vars, slots)
	})) {
		for i, r := range projected {
			out[i] = ec.materializeRow(r, vars, slots)
		}
	}
	res.Solutions = out
	return res, nil
}

// materializeRow builds the public Solution map for one projected row —
// the single map[string]rdf.Term allocation per result row.
func (ec *evalContext) materializeRow(r idRow, vars []string, slots []int) Solution {
	sol := make(Solution, len(vars))
	for i, v := range vars {
		if s := slots[i]; s >= 0 && r[s] != store.NoID {
			sol[v] = ec.termOf(r[s])
		}
	}
	return sol
}

// finishSelectRows applies grouping/aggregation, projection expressions,
// ORDER BY, projection, DISTINCT, and OFFSET/LIMIT, entirely on ID rows.
// The returned rows carry only the projected slots (SubSelect joins rely
// on that). vars is the projected column order.
func (ec *evalContext) finishSelectRows(q *Query, rows []idRow) ([]idRow, []string) {
	// Aggregation applies when GROUP BY is present or any projection/having
	// expression contains an aggregate.
	aggs := collectAggregates(q)
	if len(q.GroupBy) > 0 || len(aggs) > 0 {
		rows = ec.groupAndAggregateRows(q, rows, aggs)
	}
	// Extend rows with computed projection values first, so ORDER BY can
	// reference both SELECT aliases and variables that the projection will
	// later drop.
	vars := projectionVars(q)
	hasExprs := false
	for _, item := range q.Projection {
		if item.Expr != nil {
			hasExprs = true
			break
		}
	}
	extended := rows
	if hasExprs {
		extendOne := func(r idRow) idRow {
			ext := cloneRow(r)
			for _, item := range q.Projection {
				if item.Expr == nil {
					continue
				}
				if v, err := item.Expr.Eval(ec, ext); err == nil {
					if s := ec.env.slot(item.Var); s >= 0 {
						ext[s] = ec.encodeTerm(v)
					}
				}
			}
			return ext
		}
		extended = make([]idRow, len(rows))
		if !(ec.parEligible(len(rows)) && parMap(ec, rows, extended, extendOne)) {
			for i, r := range rows {
				extended[i] = extendOne(r)
			}
		}
	}
	// ORDER BY on the full (extended) rows.
	if len(q.OrderBy) > 0 {
		sorted := make([]idRow, len(extended))
		copy(sorted, extended)
		sortRows(ec, sorted, q.OrderBy)
		extended = sorted
	}
	// Reduce to the projected slots.
	projSlots := make([]int, len(vars))
	for i, v := range vars {
		projSlots[i] = ec.env.slot(v)
	}
	projectOne := func(r idRow) idRow {
		row := ec.newRow()
		for _, s := range projSlots {
			if s >= 0 {
				row[s] = r[s]
			}
		}
		return row
	}
	projected := make([]idRow, len(extended))
	if !(ec.parEligible(len(extended)) && parMap(ec, extended, projected, projectOne)) {
		for i, r := range extended {
			projected[i] = projectOne(r)
		}
	}
	// DISTINCT / REDUCED.
	if q.Distinct || q.Reduced {
		projected = distinctRows(projected, projSlots)
	}
	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	return projected, vars
}

func collectAggregates(q *Query) []*AggExpr {
	var aggs []*AggExpr
	var walk func(e Expression)
	walk = func(e Expression) {
		switch x := e.(type) {
		case *AggExpr:
			aggs = append(aggs, x)
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			walk(x.Expr)
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *InExpr:
			walk(x.Expr)
			for _, a := range x.List {
				walk(a)
			}
		}
	}
	for _, item := range q.Projection {
		if item.Expr != nil {
			walk(item.Expr)
		}
	}
	for _, h := range q.Having {
		walk(h)
	}
	return aggs
}

// groupAndAggregateRows partitions rows by the GROUP BY keys (compared by
// ID — exact sameTerm semantics), computes each aggregate per group, and
// returns one row per group carrying the key bindings plus aggregate
// values under their internal slots.
func (ec *evalContext) groupAndAggregateRows(q *Query, rows []idRow, aggs []*AggExpr) []idRow {
	type groupData struct {
		key  idRow
		rows []idRow
	}
	groups := make(map[string]*groupData)
	var order []string
	var kb []byte
	// Key slots are loop-invariant: resolve each GROUP BY expression's
	// target slot (the variable's own, or the planner's " gk<i>") once.
	keySlots := make([]int, len(q.GroupBy))
	for i, ge := range q.GroupBy {
		if ve, isVar := ge.(*VarExpr); isVar {
			keySlots[i] = ec.env.slot(ve.Name)
		} else {
			keySlots[i] = ec.env.slot(" gk" + strconv.Itoa(i))
		}
	}
	keyIDs := make([]store.ID, len(q.GroupBy))
	for _, r := range rows {
		kb = kb[:0]
		for i, ge := range q.GroupBy {
			id := store.NoID // expression error: key component stays unbound
			if v, err := ge.Eval(ec, r); err == nil {
				id = ec.encodeTerm(v)
			}
			keyIDs[i] = id
			kb = append(kb, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		k := string(kb)
		gd, ok := groups[k]
		if !ok {
			// The key row materializes once per distinct group, not per
			// input row.
			key := ec.newRow()
			for i, id := range keyIDs {
				if s := keySlots[i]; s >= 0 && id != store.NoID {
					key[s] = id
				}
			}
			gd = &groupData{key: key}
			groups[k] = gd
			order = append(order, k)
		}
		gd.rows = append(gd.rows, r)
	}
	// With no GROUP BY, all rows form one group (even when empty).
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &groupData{key: ec.newRow()}
		order = append(order, "")
	}
	var out []idRow
	for _, k := range order {
		gd := groups[k]
		row := cloneRow(gd.key)
		for _, agg := range aggs {
			values := ec.aggregateValues(agg, gd.rows)
			if v, ok := foldAggregate(agg.Name, agg.Sep, values); ok {
				if s := ec.env.slot(agg.key); s >= 0 {
					row[s] = ec.encodeTerm(v)
				}
			}
		}
		keep := true
		for _, h := range q.Having {
			ok, err := ebvOf(h, ec, row)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out
}

// aggregateValues evaluates an aggregate's argument over a group's rows
// (COUNT(*) counts rows; evaluation errors skip the row), applying the
// DISTINCT modifier.
func (ec *evalContext) aggregateValues(agg *AggExpr, rows []idRow) []rdf.Term {
	var values []rdf.Term
	for _, r := range rows {
		if agg.Arg == nil { // COUNT(*)
			values = append(values, rdf.TrueLiteral)
			continue
		}
		if v, err := agg.Arg.Eval(ec, r); err == nil {
			values = append(values, v)
		}
	}
	if agg.Distinct {
		values = dedupTerms(values)
	}
	return values
}

// dedupTerms removes duplicate terms, keeping first-occurrence order.
func dedupTerms(values []rdf.Term) []rdf.Term {
	seen := make(map[rdf.Term]bool, len(values))
	var out []rdf.Term
	for _, v := range values {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// foldAggregate folds gathered values into the aggregate's result. Pure:
// shared by the production engine and the reference evaluator so both
// agree on numeric typing and the deterministic SAMPLE/GROUP_CONCAT.
func foldAggregate(name, sep string, values []rdf.Term) (rdf.Term, bool) {
	switch name {
	case "COUNT":
		return rdf.NewInt(int64(len(values))), true
	case "SUM", "AVG":
		sum := 0.0
		n := 0
		allInt := true
		for _, v := range values {
			if f, ok := v.Float(); ok {
				sum += f
				n++
				if v.Datatype != rdf.XSDInteger {
					allInt = false
				}
			}
		}
		if name == "SUM" {
			if allInt {
				return rdf.NewInt(int64(sum)), true
			}
			return rdf.NewFloat(sum), true
		}
		if n == 0 {
			return rdf.NewInt(0), true
		}
		return rdf.NewFloat(sum / float64(n)), true
	case "MIN", "MAX":
		if len(values) == 0 {
			return rdf.Term{}, false
		}
		best := values[0]
		for _, v := range values[1:] {
			c, err := orderCompare(v, best)
			if err != nil {
				c = rdf.Compare(v, best)
			}
			if (name == "MIN" && c < 0) || (name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, true
	case "SAMPLE":
		if len(values) == 0 {
			return rdf.Term{}, false
		}
		// Deterministic sample: smallest term.
		best := values[0]
		for _, v := range values[1:] {
			if rdf.Compare(v, best) < 0 {
				best = v
			}
		}
		return best, true
	case "GROUP_CONCAT":
		parts := make([]string, 0, len(values))
		for _, v := range values {
			parts = append(parts, v.Value)
		}
		sort.Strings(parts) // deterministic
		return rdf.NewLiteral(strings.Join(parts, sep)), true
	}
	return rdf.Term{}, false
}

// projectionVars determines the output column order.
func projectionVars(q *Query) []string {
	if len(q.Projection) > 0 {
		vars := make([]string, 0, len(q.Projection))
		for _, item := range q.Projection {
			vars = append(vars, item.Var)
		}
		return vars
	}
	// SELECT *: variables in order of first appearance in the pattern tree.
	var vars []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] && !strings.HasPrefix(name, " ") {
			seen[name] = true
			vars = append(vars, name)
		}
	}
	var walkGroup func(g *Group)
	var walkPattern func(p Pattern)
	walkPattern = func(p Pattern) {
		switch pat := p.(type) {
		case *BGP:
			for _, tp := range pat.Triples {
				if tp.S.IsVar {
					add(tp.S.Var)
				}
				if tp.P.IsVar {
					add(tp.P.Var)
				}
				if tp.O.IsVar {
					add(tp.O.Var)
				}
			}
		case *Group:
			walkGroup(pat)
		case *Optional:
			walkGroup(pat.Pattern)
		case *Union:
			walkGroup(pat.Left)
			walkGroup(pat.Right)
		case *Minus:
			// MINUS variables are not projected.
		case *Bind:
			add(pat.Var)
		case *InlineData:
			for _, v := range pat.Vars {
				add(v)
			}
		}
	}
	walkGroup = func(g *Group) {
		for _, p := range g.Patterns {
			walkPattern(p)
		}
	}
	if q.Where != nil {
		walkGroup(q.Where)
	}
	return vars
}

func sortRows(ec *evalContext, rows []idRow, conds []OrderCondition) {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range conds {
			vi, ei := c.Expr.Eval(ec, rows[i])
			vj, ej := c.Expr.Eval(ec, rows[j])
			var cmp int
			switch {
			case ei != nil && ej != nil:
				cmp = 0
			case ei != nil:
				cmp = -1 // unbound sorts first
			case ej != nil:
				cmp = 1
			default:
				var err error
				cmp, err = orderCompare(vi, vj)
				if err != nil {
					cmp = rdf.Compare(vi, vj)
				}
			}
			if c.Descending {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

// distinctRows dedups by the projected slots' IDs — exact term identity,
// no string rendering.
//
//feo:idspace
func distinctRows(rows []idRow, projSlots []int) []idRow {
	seen := make(map[string]bool, len(rows))
	var kb []byte
	var out []idRow
	for _, r := range rows {
		kb = kb[:0]
		for _, s := range projSlots {
			id := store.NoID
			if s >= 0 {
				id = r[s]
			}
			kb = append(kb, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		k := string(kb)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}

// ---- CONSTRUCT / DESCRIBE ----

func (ec *evalContext) constructGraph(q *Query, rows []idRow) *store.Graph {
	out := store.New()
	if q.Namespaces != nil {
		for _, p := range q.Namespaces.Prefixes() {
			if iri, ok := q.Namespaces.IRIFor(p); ok {
				out.Namespaces().Bind(p, iri)
			}
		}
	}
	for i, r := range rows {
		bnodeSeq := i + 1
		for _, tp := range q.Template {
			s, sOK := ec.instantiatePos(tp.S, r, bnodeSeq)
			p, pOK := ec.instantiatePos(tp.P, r, bnodeSeq)
			o, oOK := ec.instantiatePos(tp.O, r, bnodeSeq)
			if sOK && pOK && oOK {
				out.Add(s, p, o)
			}
		}
	}
	return out
}

// instantiatePos resolves a template position against a row, decoding the
// bound slot (or minting a per-row blank node for template bnodes).
func (ec *evalContext) instantiatePos(tv TermOrVar, r idRow, bnodeSeq int) (rdf.Term, bool) {
	if !tv.IsVar {
		return tv.Term, true
	}
	if strings.HasPrefix(tv.Var, " bnode") {
		// Template blank nodes are fresh per solution.
		return rdf.NewBlank(fmt.Sprintf("c%d%s", bnodeSeq, strings.TrimSpace(tv.Var))), true
	}
	return ec.valueOf(r, tv.Var)
}

// describeGraph returns the concise bounded description of every described
// resource: all triples with the resource as subject, recursing through
// blank-node objects, plus incoming triples.
//
//feo:unordered
func (ec *evalContext) describeGraph(q *Query, rows []idRow) *store.Graph {
	g := ec.g
	out := store.New()
	targets := make(map[rdf.Term]bool)
	for _, dt := range q.DescribeTerms {
		if !dt.IsVar {
			targets[dt.Term] = true
			continue
		}
		for _, r := range rows {
			if t, ok := ec.valueOf(r, dt.Var); ok {
				targets[t] = true
			}
		}
	}
	var describe func(t rdf.Term, depth int)
	describe = func(t rdf.Term, depth int) {
		if depth > 8 {
			return
		}
		g.ForEach(t, store.Wildcard, store.Wildcard, func(tr rdf.Triple) bool {
			if out.AddTriple(tr) && tr.O.IsBlank() {
				describe(tr.O, depth+1)
			}
			return true
		})
	}
	//feo:unordered // graph insertion; triple sets are order-insensitive
	for t := range targets {
		describe(t, 0)
		g.ForEach(store.Wildcard, store.Wildcard, t, func(tr rdf.Triple) bool {
			out.AddTriple(tr)
			return true
		})
	}
	return out
}
