package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Result holds the outcome of executing a query.
type Result struct {
	Kind QueryKind
	// Vars lists the projected variable names in order (SELECT).
	Vars []string
	// Solutions holds the rows (SELECT).
	Solutions []Solution
	// Boolean is the ASK answer.
	Boolean bool
	// Graph holds CONSTRUCT/DESCRIBE output.
	Graph *store.Graph
	// Namespaces from the query, for rendering.
	Namespaces *rdf.Namespaces
}

// Execute runs a parsed query against a graph.
func Execute(g *store.Graph, q *Query) (*Result, error) {
	ec := &evalContext{g: g}
	sols := ec.evalGroup(q.Where, []Solution{{}})
	res := &Result{Kind: q.Kind, Namespaces: q.Namespaces}
	switch q.Kind {
	case KindAsk:
		res.Boolean = len(sols) > 0
		return res, nil
	case KindConstruct:
		res.Graph = constructGraph(q, sols)
		return res, nil
	case KindDescribe:
		res.Graph = describeGraph(g, q, sols)
		return res, nil
	}
	return finishSelect(ec, q, sols)
}

// Run parses and executes src against g in one call.
func Run(g *store.Graph, src string) (*Result, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Execute(g, q)
}

type evalContext struct {
	g *store.Graph
}

// evalGroup evaluates a group graph pattern over the input solutions.
func (ec *evalContext) evalGroup(g *Group, input []Solution) []Solution {
	seq := input
	for _, pat := range g.Patterns {
		seq = ec.evalPattern(pat, seq)
		if len(seq) == 0 {
			// Filters with EXISTS could still not resurrect solutions.
			break
		}
	}
	for _, f := range g.Filters {
		seq = ec.applyFilter(f, seq)
	}
	return seq
}

func (ec *evalContext) evalPattern(p Pattern, seq []Solution) []Solution {
	switch pat := p.(type) {
	case *BGP:
		for _, tp := range pat.Triples {
			seq = ec.evalTriplePattern(tp, seq)
			if len(seq) == 0 {
				return nil
			}
		}
		return seq
	case *Group:
		return ec.evalGroup(pat, seq)
	case *Optional:
		var out []Solution
		for _, sol := range seq {
			ext := ec.evalGroup(pat.Pattern, []Solution{sol})
			if len(ext) > 0 {
				out = append(out, ext...)
			} else {
				out = append(out, sol)
			}
		}
		return out
	case *Union:
		left := ec.evalGroup(pat.Left, seq)
		right := ec.evalGroup(pat.Right, seq)
		return append(left, right...)
	case *Minus:
		rhs := ec.evalGroup(pat.Pattern, []Solution{{}})
		var out []Solution
		for _, sol := range seq {
			if !minusMatches(sol, rhs) {
				out = append(out, sol)
			}
		}
		return out
	case *Bind:
		var out []Solution
		for _, sol := range seq {
			v, err := pat.Expr.Eval(ec, sol)
			if err != nil {
				out = append(out, sol) // expression error leaves var unbound
				continue
			}
			if existing, bound := sol[pat.Var]; bound {
				if existing == v {
					out = append(out, sol)
				}
				continue
			}
			ns := sol.clone()
			ns[pat.Var] = v
			out = append(out, ns)
		}
		return out
	case *InlineData:
		var out []Solution
		for _, sol := range seq {
			for _, row := range pat.Rows {
				merged, ok := mergeRow(sol, pat.Vars, row)
				if ok {
					out = append(out, merged)
				}
			}
		}
		return out
	case *SubSelect:
		// Subqueries evaluate in a fresh scope, then join with the outer
		// solutions on their projected variables.
		res, err := finishSelect(ec, pat.Query, ec.evalGroup(pat.Query.Where, []Solution{{}}))
		if err != nil {
			return nil
		}
		var out []Solution
		for _, sol := range seq {
			for _, sub := range res.Solutions {
				if merged, ok := mergeSolutions(sol, sub); ok {
					out = append(out, merged)
				}
			}
		}
		return out
	default:
		return nil
	}
}

// mergeSolutions joins two solutions when their shared variables agree.
func mergeSolutions(a, b Solution) (Solution, bool) {
	out := a.clone()
	for k, v := range b {
		if existing, ok := out[k]; ok {
			if existing != v {
				return nil, false
			}
			continue
		}
		out[k] = v
	}
	return out, true
}

// minusMatches reports whether sol is excluded by any solution in rhs per
// SPARQL MINUS semantics (compatible and sharing at least one variable).
func minusMatches(sol Solution, rhs []Solution) bool {
	for _, m := range rhs {
		shared := false
		compatible := true
		for k, v := range m {
			if sv, ok := sol[k]; ok {
				shared = true
				if sv != v {
					compatible = false
					break
				}
			}
		}
		if shared && compatible {
			return true
		}
	}
	return false
}

func mergeRow(sol Solution, vars []string, row []TermOrNil) (Solution, bool) {
	out := sol.clone()
	for i, v := range vars {
		if !row[i].Defined {
			continue
		}
		if existing, ok := out[v]; ok {
			if existing != row[i].Term {
				return nil, false
			}
			continue
		}
		out[v] = row[i].Term
	}
	return out, true
}

func (ec *evalContext) applyFilter(f Expression, seq []Solution) []Solution {
	var out []Solution
	for _, sol := range seq {
		if ok, err := ebvOf(f, ec, sol); err == nil && ok {
			out = append(out, sol)
		}
	}
	return out
}

// evalTriplePattern extends each solution with matches of one pattern.
func (ec *evalContext) evalTriplePattern(tp TriplePattern, seq []Solution) []Solution {
	var out []Solution
	for _, sol := range seq {
		if tp.Path != nil {
			out = append(out, ec.evalPathPattern(tp, sol)...)
			continue
		}
		s, sVar := resolve(tp.S, sol)
		p, pVar := resolve(tp.P, sol)
		o, oVar := resolve(tp.O, sol)
		ec.g.ForEach(s, p, o, func(t rdf.Triple) bool {
			ext := sol
			cloned := false
			bind := func(name string, val rdf.Term) bool {
				if name == "" {
					return true
				}
				if cur, ok := ext[name]; ok {
					return cur == val
				}
				if !cloned {
					ext = ext.clone()
					cloned = true
				}
				ext[name] = val
				return true
			}
			if bind(sVar, t.S) && bind(pVar, t.P) && bind(oVar, t.O) {
				if !cloned {
					ext = sol
				}
				out = append(out, ext)
			}
			return true
		})
	}
	return out
}

// resolve maps a pattern position to (bound term, "") or (wildcard, varname).
func resolve(tv TermOrVar, sol Solution) (rdf.Term, string) {
	if !tv.IsVar {
		return tv.Term, ""
	}
	if t, ok := sol[tv.Var]; ok {
		return t, ""
	}
	return store.Wildcard, tv.Var
}

// ---- SELECT finalization: grouping, aggregates, projection, modifiers ----

func finishSelect(ec *evalContext, q *Query, sols []Solution) (*Result, error) {
	res := &Result{Kind: KindSelect, Namespaces: q.Namespaces}
	// Aggregation applies when GROUP BY is present or any projection/having
	// expression contains an aggregate.
	aggs := collectAggregates(q)
	if len(q.GroupBy) > 0 || len(aggs) > 0 {
		grouped, err := groupAndAggregate(ec, q, sols, aggs)
		if err != nil {
			return nil, err
		}
		sols = grouped
	}
	// Extend solutions with computed projection values first, so ORDER BY
	// can reference both SELECT aliases and variables that the projection
	// will later drop.
	vars := projectionVars(q, sols)
	res.Vars = vars
	hasExprs := false
	for _, item := range q.Projection {
		if item.Expr != nil {
			hasExprs = true
			break
		}
	}
	extended := sols
	if hasExprs {
		extended = make([]Solution, 0, len(sols))
		for _, sol := range sols {
			ext := sol.clone()
			for _, item := range q.Projection {
				if item.Expr == nil {
					continue
				}
				if v, err := item.Expr.Eval(ec, ext); err == nil {
					ext[item.Var] = v
				}
			}
			extended = append(extended, ext)
		}
	}
	// ORDER BY on the full (extended) solutions.
	if len(q.OrderBy) > 0 {
		sorted := make([]Solution, len(extended))
		copy(sorted, extended)
		sortSolutions(ec, sorted, q.OrderBy)
		extended = sorted
	}
	// Reduce to the projected variables.
	projected := make([]Solution, 0, len(extended))
	for _, sol := range extended {
		row := make(Solution, len(vars))
		for _, v := range vars {
			if t, ok := sol[v]; ok {
				row[v] = t
			}
		}
		projected = append(projected, row)
	}
	// DISTINCT / REDUCED.
	if q.Distinct || q.Reduced {
		projected = distinct(projected, vars)
	}
	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	res.Solutions = projected
	return res, nil
}

func collectAggregates(q *Query) []*AggExpr {
	var aggs []*AggExpr
	var walk func(e Expression)
	walk = func(e Expression) {
		switch x := e.(type) {
		case *AggExpr:
			aggs = append(aggs, x)
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			walk(x.Expr)
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *InExpr:
			walk(x.Expr)
			for _, a := range x.List {
				walk(a)
			}
		}
	}
	for _, item := range q.Projection {
		if item.Expr != nil {
			walk(item.Expr)
		}
	}
	for _, h := range q.Having {
		walk(h)
	}
	return aggs
}

// groupAndAggregate partitions solutions by the GROUP BY keys, computes each
// aggregate per group, and returns one solution per group carrying the key
// bindings plus aggregate values under their internal keys.
func groupAndAggregate(ec *evalContext, q *Query, sols []Solution, aggs []*AggExpr) ([]Solution, error) {
	type groupData struct {
		key  Solution
		rows []Solution
	}
	groups := make(map[string]*groupData)
	var order []string
	for _, sol := range sols {
		var kb strings.Builder
		key := Solution{}
		for i, ge := range q.GroupBy {
			v, err := ge.Eval(ec, sol)
			if err == nil {
				kb.WriteString(v.String())
				if ve, ok := ge.(*VarExpr); ok {
					key[ve.Name] = v
				} else {
					key[" gk"+strconv.Itoa(i)] = v
				}
			}
			kb.WriteByte('|')
		}
		k := kb.String()
		gd, ok := groups[k]
		if !ok {
			gd = &groupData{key: key}
			groups[k] = gd
			order = append(order, k)
		}
		gd.rows = append(gd.rows, sol)
	}
	// With no GROUP BY, all solutions form one group (even when empty).
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &groupData{key: Solution{}}
		order = append(order, "")
	}
	var out []Solution
	for _, k := range order {
		gd := groups[k]
		row := gd.key.clone()
		for _, agg := range aggs {
			if v, ok := computeAggregate(ec, agg, gd.rows); ok {
				row[agg.key] = v
			}
		}
		keep := true
		for _, h := range q.Having {
			ok, err := ebvOf(h, ec, row)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

func computeAggregate(ec *evalContext, agg *AggExpr, rows []Solution) (rdf.Term, bool) {
	var values []rdf.Term
	for _, r := range rows {
		if agg.Arg == nil { // COUNT(*)
			values = append(values, rdf.TrueLiteral)
			continue
		}
		if v, err := agg.Arg.Eval(ec, r); err == nil {
			values = append(values, v)
		}
	}
	if agg.Distinct {
		seen := make(map[rdf.Term]bool)
		var dd []rdf.Term
		for _, v := range values {
			if !seen[v] {
				seen[v] = true
				dd = append(dd, v)
			}
		}
		values = dd
	}
	switch agg.Name {
	case "COUNT":
		return rdf.NewInt(int64(len(values))), true
	case "SUM", "AVG":
		sum := 0.0
		n := 0
		allInt := true
		for _, v := range values {
			if f, ok := v.Float(); ok {
				sum += f
				n++
				if v.Datatype != rdf.XSDInteger {
					allInt = false
				}
			}
		}
		if agg.Name == "SUM" {
			if allInt {
				return rdf.NewInt(int64(sum)), true
			}
			return rdf.NewFloat(sum), true
		}
		if n == 0 {
			return rdf.NewInt(0), true
		}
		return rdf.NewFloat(sum / float64(n)), true
	case "MIN", "MAX":
		if len(values) == 0 {
			return rdf.Term{}, false
		}
		best := values[0]
		for _, v := range values[1:] {
			c, err := orderCompare(v, best)
			if err != nil {
				c = rdf.Compare(v, best)
			}
			if (agg.Name == "MIN" && c < 0) || (agg.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, true
	case "SAMPLE":
		if len(values) == 0 {
			return rdf.Term{}, false
		}
		// Deterministic sample: smallest term.
		best := values[0]
		for _, v := range values[1:] {
			if rdf.Compare(v, best) < 0 {
				best = v
			}
		}
		return best, true
	case "GROUP_CONCAT":
		parts := make([]string, 0, len(values))
		for _, v := range values {
			parts = append(parts, v.Value)
		}
		sort.Strings(parts) // deterministic
		return rdf.NewLiteral(strings.Join(parts, agg.Sep)), true
	}
	return rdf.Term{}, false
}

// projectionVars determines the output column order.
func projectionVars(q *Query, sols []Solution) []string {
	if len(q.Projection) > 0 {
		vars := make([]string, 0, len(q.Projection))
		for _, item := range q.Projection {
			vars = append(vars, item.Var)
		}
		return vars
	}
	// SELECT *: variables in order of first appearance in the pattern tree.
	var vars []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] && !strings.HasPrefix(name, " ") {
			seen[name] = true
			vars = append(vars, name)
		}
	}
	var walkGroup func(g *Group)
	var walkPattern func(p Pattern)
	walkPattern = func(p Pattern) {
		switch pat := p.(type) {
		case *BGP:
			for _, tp := range pat.Triples {
				if tp.S.IsVar {
					add(tp.S.Var)
				}
				if tp.P.IsVar {
					add(tp.P.Var)
				}
				if tp.O.IsVar {
					add(tp.O.Var)
				}
			}
		case *Group:
			walkGroup(pat)
		case *Optional:
			walkGroup(pat.Pattern)
		case *Union:
			walkGroup(pat.Left)
			walkGroup(pat.Right)
		case *Minus:
			// MINUS variables are not projected.
		case *Bind:
			add(pat.Var)
		case *InlineData:
			for _, v := range pat.Vars {
				add(v)
			}
		}
	}
	walkGroup = func(g *Group) {
		for _, p := range g.Patterns {
			walkPattern(p)
		}
	}
	if q.Where != nil {
		walkGroup(q.Where)
	}
	return vars
}

func sortSolutions(ec *evalContext, sols []Solution, conds []OrderCondition) {
	sort.SliceStable(sols, func(i, j int) bool {
		for _, c := range conds {
			vi, ei := c.Expr.Eval(ec, sols[i])
			vj, ej := c.Expr.Eval(ec, sols[j])
			var cmp int
			switch {
			case ei != nil && ej != nil:
				cmp = 0
			case ei != nil:
				cmp = -1 // unbound sorts first
			case ej != nil:
				cmp = 1
			default:
				var err error
				cmp, err = orderCompare(vi, vj)
				if err != nil {
					cmp = rdf.Compare(vi, vj)
				}
			}
			if c.Descending {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

func distinct(sols []Solution, vars []string) []Solution {
	seen := make(map[string]bool, len(sols))
	var out []Solution
	for _, sol := range sols {
		var kb strings.Builder
		for _, v := range vars {
			if t, ok := sol[v]; ok {
				kb.WriteString(t.String())
			}
			kb.WriteByte('|')
		}
		k := kb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, sol)
		}
	}
	return out
}

// ---- CONSTRUCT / DESCRIBE ----

func constructGraph(q *Query, sols []Solution) *store.Graph {
	out := store.New()
	if q.Namespaces != nil {
		for _, p := range q.Namespaces.Prefixes() {
			if iri, ok := q.Namespaces.IRIFor(p); ok {
				out.Namespaces().Bind(p, iri)
			}
		}
	}
	bnodeSeq := 0
	for _, sol := range sols {
		bnodeSeq++
		for _, tp := range q.Template {
			s, sOK := instantiate(tp.S, sol, bnodeSeq)
			p, pOK := instantiate(tp.P, sol, bnodeSeq)
			o, oOK := instantiate(tp.O, sol, bnodeSeq)
			if sOK && pOK && oOK {
				out.Add(s, p, o)
			}
		}
	}
	return out
}

func instantiate(tv TermOrVar, sol Solution, bnodeSeq int) (rdf.Term, bool) {
	if !tv.IsVar {
		return tv.Term, true
	}
	if strings.HasPrefix(tv.Var, " bnode") {
		// Template blank nodes are fresh per solution.
		return rdf.NewBlank(fmt.Sprintf("c%d%s", bnodeSeq, strings.TrimSpace(tv.Var))), true
	}
	t, ok := sol[tv.Var]
	return t, ok
}

// describeGraph returns the concise bounded description of every described
// resource: all triples with the resource as subject, recursing through
// blank-node objects, plus incoming triples.
func describeGraph(g *store.Graph, q *Query, sols []Solution) *store.Graph {
	out := store.New()
	targets := make(map[rdf.Term]bool)
	for _, dt := range q.DescribeTerms {
		if !dt.IsVar {
			targets[dt.Term] = true
			continue
		}
		for _, sol := range sols {
			if t, ok := sol[dt.Var]; ok {
				targets[t] = true
			}
		}
	}
	var describe func(t rdf.Term, depth int)
	describe = func(t rdf.Term, depth int) {
		if depth > 8 {
			return
		}
		g.ForEach(t, store.Wildcard, store.Wildcard, func(tr rdf.Triple) bool {
			if out.AddTriple(tr) && tr.O.IsBlank() {
				describe(tr.O, depth+1)
			}
			return true
		})
	}
	for t := range targets {
		describe(t, 0)
		g.ForEach(store.Wildcard, store.Wildcard, t, func(tr rdf.Triple) bool {
			out.AddTriple(tr)
			return true
		})
	}
	return out
}
