package sparql

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/rdf"
	"repro/internal/store"
)

// Result holds the outcome of executing a query.
type Result struct {
	Kind QueryKind
	// Vars lists the projected variable names in order (SELECT).
	Vars []string
	// Solutions holds the rows (SELECT).
	Solutions []Solution
	// Boolean is the ASK answer.
	Boolean bool
	// Graph holds CONSTRUCT/DESCRIBE output.
	Graph *store.Graph
	// Namespaces from the query, for rendering.
	Namespaces *rdf.Namespaces
}

// Execute runs a parsed query against a graph. Evaluation fans out across
// the worker budget set by SetParallelism; the graph must be quiescent (no
// concurrent writers) for the duration of the call, per the store's reader
// contract. Concurrent Execute calls against one graph are safe.
func Execute(g *store.Graph, q *Query) (*Result, error) {
	ec := newEvalContext(g)
	sols := ec.evalGroup(q.Where, []Solution{{}})
	res := &Result{Kind: q.Kind, Namespaces: q.Namespaces}
	switch q.Kind {
	case KindAsk:
		res.Boolean = len(sols) > 0
		return res, nil
	case KindConstruct:
		res.Graph = constructGraph(q, sols)
		return res, nil
	case KindDescribe:
		res.Graph = describeGraph(g, q, sols)
		return res, nil
	}
	return finishSelect(ec, q, sols)
}

// Run parses and executes src against g in one call.
func Run(g *store.Graph, src string) (*Result, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return Execute(g, q)
}

type evalContext struct {
	g *store.Graph
	// par is the worker budget this execution resolved from SetParallelism;
	// sem holds its par-1 extra-worker tokens. sem == nil (par <= 1) keeps
	// every loop on the sequential reference path.
	par int
	sem chan struct{}
	// gver is the graph's mutation version at Execute entry. The per-query
	// memo caches below are only valid for that snapshot; the path caches
	// check it on every lookup and bypass themselves if the graph mutated
	// mid-query (a reader-contract violation, degraded to uncached
	// evaluation instead of stale results).
	gver uint64
	// mu guards the memo maps below: they are lazily filled caches of pure
	// computations, shared by all of the query's workers. Lookups and
	// stores lock; the computation itself runs unlocked (a duplicated
	// compute is harmless, a lock held across one could deadlock re-entry).
	mu sync.Mutex
	// Per-query property-path memo: the graph is immutable while a query
	// runs, so the node set a path reaches from a given term is computed
	// once even when many solutions probe the same (path, term) pair.
	pathFwd map[pathTermKey][]rdf.Term
	pathBwd map[pathTermKey][]rdf.Term
	// Per-query filter-pushdown analysis, memoized by group: OPTIONAL and
	// EXISTS bodies re-enter evalGroup once per solution, and the variable
	// collection depends only on the (immutable) pattern tree.
	groupMemo map[*Group]*groupInfo
}

// newEvalContext resolves the parallelism knob once for this execution.
func newEvalContext(g *store.Graph) *evalContext {
	ec := &evalContext{g: g, par: effectiveParallelism(), gver: g.Version()}
	if ec.par > 1 {
		ec.sem = make(chan struct{}, ec.par-1)
	}
	return ec
}

type pathTermKey struct {
	p *Path
	t rdf.Term
}

// groupInfo caches the static part of a group's filter-pushdown analysis.
type groupInfo struct {
	groupVars map[string]bool // variables any pattern of the group could bind
	fvars     [][]string      // variables mentioned by each filter
}

func (ec *evalContext) groupInfoFor(g *Group) *groupInfo {
	ec.mu.Lock()
	gi, ok := ec.groupMemo[g]
	ec.mu.Unlock()
	if ok {
		return gi
	}
	gi = &groupInfo{groupVars: make(map[string]bool), fvars: make([][]string, len(g.Filters))}
	for _, pat := range g.Patterns {
		collectPossibleVars(pat, gi.groupVars)
	}
	for i, f := range g.Filters {
		gi.fvars[i] = collectExprVars(f)
	}
	ec.mu.Lock()
	if ec.groupMemo == nil {
		ec.groupMemo = make(map[*Group]*groupInfo)
	}
	ec.groupMemo[g] = gi
	ec.mu.Unlock()
	return gi
}

// evalGroup evaluates a group graph pattern over the input solutions.
//
// Filters are pushed down: a filter runs as soon as every variable it can
// ever see is certainly bound (or can never be bound by this group), so it
// prunes intermediate solutions before later patterns multiply them. A
// filter's value for a solution cannot change once its variables are bound,
// so the final solution set is identical to filtering at the end.
func (ec *evalContext) evalGroup(g *Group, input []Solution) []Solution {
	seq := input
	if len(g.Filters) == 0 {
		for _, pat := range g.Patterns {
			seq = ec.evalPattern(pat, seq)
			if len(seq) == 0 {
				break
			}
		}
		return seq
	}
	// certain: variables bound in every solution at this point.
	certain := varsBoundInAll(input)
	gi := ec.groupInfoFor(g)
	groupVars, fvars := gi.groupVars, gi.fvars
	applied := make([]bool, len(g.Filters))
	runReady := func() {
		for i, f := range g.Filters {
			if applied[i] {
				continue
			}
			ready := true
			for _, v := range fvars[i] {
				// A variable blocks the filter only while this group could
				// still bind it: anything else is either bound already or
				// stays unbound forever (existential / error semantics).
				if !certain[v] && groupVars[v] {
					ready = false
					break
				}
			}
			if ready {
				applied[i] = true
				seq = ec.applyFilter(f, seq)
			}
		}
	}
	runReady()
	for _, pat := range g.Patterns {
		seq = ec.evalPattern(pat, seq)
		if len(seq) == 0 {
			// Filters with EXISTS could still not resurrect solutions.
			break
		}
		addCertainVars(pat, certain)
		runReady()
	}
	for i, f := range g.Filters {
		if !applied[i] {
			seq = ec.applyFilter(f, seq)
		}
	}
	return seq
}

// varsBoundInAll returns the variables bound in every input solution.
func varsBoundInAll(input []Solution) map[string]bool {
	out := make(map[string]bool)
	if len(input) == 0 {
		return out
	}
	for v := range input[0] {
		inAll := true
		for _, sol := range input[1:] {
			if _, ok := sol[v]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			out[v] = true
		}
	}
	return out
}

// collectPossibleVars adds every variable p could bind in any solution.
func collectPossibleVars(p Pattern, out map[string]bool) {
	switch pat := p.(type) {
	case *BGP:
		for _, tp := range pat.Triples {
			for _, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
				if tv.IsVar {
					out[tv.Var] = true
				}
			}
		}
	case *Group:
		for _, sub := range pat.Patterns {
			collectPossibleVars(sub, out)
		}
	case *Optional:
		for _, sub := range pat.Pattern.Patterns {
			collectPossibleVars(sub, out)
		}
	case *Union:
		for _, sub := range pat.Left.Patterns {
			collectPossibleVars(sub, out)
		}
		for _, sub := range pat.Right.Patterns {
			collectPossibleVars(sub, out)
		}
	case *Bind:
		out[pat.Var] = true
	case *InlineData:
		for _, v := range pat.Vars {
			out[v] = true
		}
	case *SubSelect:
		for _, item := range pat.Query.Projection {
			out[item.Var] = true
		}
		if len(pat.Query.Projection) == 0 {
			// SELECT *: anything its WHERE clause mentions.
			if pat.Query.Where != nil {
				for _, sub := range pat.Query.Where.Patterns {
					collectPossibleVars(sub, out)
				}
			}
		}
	}
	// *Minus binds nothing.
}

// addCertainVars adds the variables that are bound in every solution after
// p evaluates successfully.
func addCertainVars(p Pattern, out map[string]bool) {
	switch pat := p.(type) {
	case *BGP:
		for _, tp := range pat.Triples {
			for _, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
				if tv.IsVar {
					out[tv.Var] = true
				}
			}
		}
	case *Group:
		for _, sub := range pat.Patterns {
			addCertainVars(sub, out)
		}
	case *Union:
		left := make(map[string]bool)
		right := make(map[string]bool)
		for _, sub := range pat.Left.Patterns {
			addCertainVars(sub, left)
		}
		for _, sub := range pat.Right.Patterns {
			addCertainVars(sub, right)
		}
		for v := range left {
			if right[v] {
				out[v] = true
			}
		}
	}
	// Optional, Bind, InlineData, Minus, SubSelect guarantee nothing: their
	// bindings can be absent from individual solutions.
}

// collectExprVars returns every variable an expression mentions, including
// variables anywhere inside EXISTS patterns — pattern positions and filter
// expressions alike, at every nesting depth. Pushdown correctness depends
// on this being an over-approximation, never an under-approximation.
func collectExprVars(e Expression) []string {
	seen := make(map[string]bool)
	var walk func(Expression)
	var walkPat func(Pattern)
	var walkGroup func(g *Group)
	walkGroup = func(g *Group) {
		if g == nil {
			return
		}
		for _, sub := range g.Patterns {
			walkPat(sub)
		}
		for _, f := range g.Filters {
			walk(f)
		}
	}
	walkPat = func(p Pattern) {
		collectPossibleVars(p, seen)
		switch pat := p.(type) {
		case *Group:
			walkGroup(pat)
		case *Optional:
			walkGroup(pat.Pattern)
		case *Union:
			walkGroup(pat.Left)
			walkGroup(pat.Right)
		case *Minus:
			walkGroup(pat.Pattern)
		case *Bind:
			walk(pat.Expr)
		case *SubSelect:
			if pat.Query != nil {
				walkGroup(pat.Query.Where)
				for _, item := range pat.Query.Projection {
					if item.Expr != nil {
						walk(item.Expr)
					}
				}
				for _, h := range pat.Query.Having {
					walk(h)
				}
			}
		}
	}
	walk = func(e Expression) {
		switch x := e.(type) {
		case *VarExpr:
			seen[x.Name] = true
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			walk(x.Expr)
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *InExpr:
			walk(x.Expr)
			for _, a := range x.List {
				walk(a)
			}
		case *AggExpr:
			if x.Arg != nil {
				walk(x.Arg)
			}
		case *ExistsExpr:
			walkGroup(x.Pattern)
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out
}

func (ec *evalContext) evalPattern(p Pattern, seq []Solution) []Solution {
	switch pat := p.(type) {
	case *BGP:
		return ec.evalBGP(pat, seq)
	case *Group:
		return ec.evalGroup(pat, seq)
	case *Optional:
		// Each solution's OPTIONAL probe is independent: fan the probes out,
		// falling back to the sequential loop below the threshold.
		if ec.parEligible(len(seq)) {
			if out, ok := parRange(ec, len(seq), func(lo, hi int, out []Solution) []Solution {
				return ec.evalOptionalRange(pat, seq, lo, hi, out)
			}); ok {
				return out
			}
		}
		return ec.evalOptionalRange(pat, seq, 0, len(seq), nil)
	case *Union:
		// The branches see the same immutable inputs and share the query's
		// memo caches (locked), so they can evaluate concurrently; output
		// order stays left-then-right either way. Micro-unions — one input
		// solution joined against two single-pattern branches, the shape a
		// per-row EXISTS re-enters — stay sequential: goroutine hand-off
		// would cost more than the branch and burn the token budget the
		// large fan-outs need.
		if ec.sem != nil && (len(seq) > 1 || len(pat.Left.Patterns)+len(pat.Right.Patterns) > 2) {
			var left, right []Solution
			ec.parPair(
				func() { left = ec.evalGroup(pat.Left, seq) },
				func() { right = ec.evalGroup(pat.Right, seq) },
			)
			return append(left, right...)
		}
		left := ec.evalGroup(pat.Left, seq)
		right := ec.evalGroup(pat.Right, seq)
		return append(left, right...)
	case *Minus:
		rhs := ec.evalGroup(pat.Pattern, []Solution{{}})
		if ec.parEligible(len(seq)) {
			if out, ok := parRange(ec, len(seq), func(lo, hi int, out []Solution) []Solution {
				return minusRange(seq, rhs, lo, hi, out)
			}); ok {
				return out
			}
		}
		return minusRange(seq, rhs, 0, len(seq), nil)
	case *Bind:
		if ec.parEligible(len(seq)) {
			if out, ok := parRange(ec, len(seq), func(lo, hi int, out []Solution) []Solution {
				return ec.evalBindRange(pat, seq, lo, hi, out)
			}); ok {
				return out
			}
		}
		return ec.evalBindRange(pat, seq, 0, len(seq), nil)
	case *InlineData:
		var out []Solution
		for _, sol := range seq {
			for _, row := range pat.Rows {
				merged, ok := mergeRow(sol, pat.Vars, row)
				if ok {
					out = append(out, merged)
				}
			}
		}
		return out
	case *SubSelect:
		// Subqueries evaluate in a fresh scope, then join with the outer
		// solutions on their projected variables.
		res, err := finishSelect(ec, pat.Query, ec.evalGroup(pat.Query.Where, []Solution{{}}))
		if err != nil {
			return nil
		}
		var out []Solution
		for _, sol := range seq {
			for _, sub := range res.Solutions {
				if merged, ok := mergeSolutions(sol, sub); ok {
					out = append(out, merged)
				}
			}
		}
		return out
	default:
		return nil
	}
}

// evalOptionalRange extends seq[lo:hi] per OPTIONAL semantics, appending
// to out. The range form serves both the sequential reference path (one
// full-range call, no closures) and the worker pool (one call per morsel).
func (ec *evalContext) evalOptionalRange(pat *Optional, seq []Solution, lo, hi int, out []Solution) []Solution {
	for _, sol := range seq[lo:hi] {
		ext := ec.evalGroup(pat.Pattern, []Solution{sol})
		if len(ext) > 0 {
			out = append(out, ext...)
		} else {
			out = append(out, sol)
		}
	}
	return out
}

// minusRange appends the solutions of seq[lo:hi] not excluded by rhs.
func minusRange(seq, rhs []Solution, lo, hi int, out []Solution) []Solution {
	for _, sol := range seq[lo:hi] {
		if !minusMatches(sol, rhs) {
			out = append(out, sol)
		}
	}
	return out
}

// evalBindRange applies a BIND to seq[lo:hi], appending to out.
func (ec *evalContext) evalBindRange(pat *Bind, seq []Solution, lo, hi int, out []Solution) []Solution {
	for _, sol := range seq[lo:hi] {
		v, err := pat.Expr.Eval(ec, sol)
		if err != nil {
			out = append(out, sol) // expression error leaves var unbound
			continue
		}
		if existing, bound := sol[pat.Var]; bound {
			if existing == v {
				out = append(out, sol)
			}
			continue
		}
		ns := sol.clone()
		ns[pat.Var] = v
		out = append(out, ns)
	}
	return out
}

// mergeSolutions joins two solutions when their shared variables agree.
func mergeSolutions(a, b Solution) (Solution, bool) {
	out := a.clone()
	for k, v := range b {
		if existing, ok := out[k]; ok {
			if existing != v {
				return nil, false
			}
			continue
		}
		out[k] = v
	}
	return out, true
}

// minusMatches reports whether sol is excluded by any solution in rhs per
// SPARQL MINUS semantics (compatible and sharing at least one variable).
func minusMatches(sol Solution, rhs []Solution) bool {
	for _, m := range rhs {
		shared := false
		compatible := true
		for k, v := range m {
			if sv, ok := sol[k]; ok {
				shared = true
				if sv != v {
					compatible = false
					break
				}
			}
		}
		if shared && compatible {
			return true
		}
	}
	return false
}

func mergeRow(sol Solution, vars []string, row []TermOrNil) (Solution, bool) {
	out := sol.clone()
	for i, v := range vars {
		if !row[i].Defined {
			continue
		}
		if existing, ok := out[v]; ok {
			if existing != row[i].Term {
				return nil, false
			}
			continue
		}
		out[v] = row[i].Term
	}
	return out, true
}

func (ec *evalContext) applyFilter(f Expression, seq []Solution) []Solution {
	// Filters are pure per-solution predicates (EXISTS probes re-enter the
	// evaluator, which is itself safe for concurrent solutions), so large
	// inputs evaluate in parallel morsels whose surviving rows concatenate
	// in chunk order — input order exactly.
	if ec.parEligible(len(seq)) {
		if out, ok := ec.parApplyFilter(f, seq); ok {
			return out
		}
	}
	var out []Solution
	for _, sol := range seq {
		if ok, err := ebvOf(f, ec, sol); err == nil && ok {
			out = append(out, sol)
		}
	}
	return out
}

// parApplyFilter fans a filter across the worker pool; false means no
// tokens were free and the caller must filter sequentially.
func (ec *evalContext) parApplyFilter(f Expression, seq []Solution) ([]Solution, bool) {
	return parRange(ec, len(seq), func(lo, hi int, out []Solution) []Solution {
		for _, sol := range seq[lo:hi] {
			if ok, err := ebvOf(f, ec, sol); err == nil && ok {
				out = append(out, sol)
			}
		}
		return out
	})
}

// DisableJoinReorder turns off selectivity-based BGP join reordering and
// evaluates triple patterns in their written order. The solution set is
// identical either way; the knob exists for A/B benchmarks and for tests
// that verify that equivalence.
var DisableJoinReorder = false

// orderBGP returns the BGP's triple patterns in a greedy join order:
// repeatedly pick the pattern with the lowest estimated cardinality given
// the variables bound so far, so selective patterns run first and each join
// extends as few intermediate solutions as possible. The solution multiset
// of a conjunctive BGP is invariant under join order, so results are
// identical to the written order. Property-path patterns carry no index
// statistics and evaluate last, keeping their relative order.
func (ec *evalContext) orderBGP(tps []TriplePattern, seq []Solution) []TriplePattern {
	if len(tps) < 2 || DisableJoinReorder {
		return tps
	}
	// Variables bound in every input solution count as bound for estimation.
	bound := varsBoundInAll(seq)
	// Encode each pattern's constant positions once; the greedy rounds below
	// then only consult the O(1) count tables and the bound-variable set.
	type patInfo struct {
		vars      [3]string // variable name per position, "" when constant
		baseCount int       // CountID over the constant positions
		isPath    bool
	}
	infos := make([]patInfo, len(tps))
	for i, tp := range tps {
		pi := patInfo{isPath: tp.Path != nil}
		ids := [3]store.ID{store.NoID, store.NoID, store.NoID}
		empty := false
		for j, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
			if pi.isPath && j == 1 {
				continue // path position: no predicate term
			}
			if tv.IsVar {
				pi.vars[j] = tv.Var
				continue
			}
			id, ok := ec.g.LookupID(tv.Term)
			if !ok {
				empty = true // constant absent from graph: pattern is empty
				break
			}
			ids[j] = id
		}
		if !pi.isPath {
			if empty {
				pi.baseCount = 0
			} else {
				pi.baseCount = ec.g.CountID(ids[0], ids[1], ids[2])
			}
		}
		infos[i] = pi
	}
	const pathCost = int(^uint(0) >> 1)
	estimate := func(pi patInfo) int {
		if pi.isPath {
			// Paths carry no index statistics. A path whose endpoints are
			// already bound is a near-constant reachability check and should
			// run as soon as it can prune; with endpoints free it can
			// enumerate large closures, so it goes last.
			boundEnds := 0
			if pi.vars[0] == "" || bound[pi.vars[0]] {
				boundEnds++
			}
			if pi.vars[2] == "" || bound[pi.vars[2]] {
				boundEnds++
			}
			switch boundEnds {
			case 2:
				return 8
			case 1:
				return 4096
			default:
				return pathCost
			}
		}
		// Each position held by an already-bound variable shrinks the
		// estimate: the join will probe with a concrete term even though we
		// could not count it upfront.
		est := pi.baseCount
		for _, v := range pi.vars {
			if v != "" && bound[v] && est > 1 {
				est = est/8 + 1
			}
		}
		return est
	}
	out := make([]TriplePattern, 0, len(tps))
	used := make([]bool, len(tps))
	for range tps {
		best, bestEst := -1, 0
		for i := range tps {
			if used[i] {
				continue
			}
			est := estimate(infos[i])
			if best < 0 || est < bestEst {
				best, bestEst = i, est
			}
		}
		used[best] = true
		out = append(out, tps[best])
		for _, v := range infos[best].vars {
			if v != "" {
				bound[v] = true
			}
		}
	}
	return out
}

// evalBGP evaluates a basic graph pattern: patterns are reordered by
// estimated selectivity, then the maximal path-free prefix runs as a pure
// ID-space pipeline (bindings are []store.ID rows — extending a row is a
// small memcopy, with no term hashing and no map allocation), and only the
// BGP's final rows are materialized back into Solutions. Path patterns and
// anything ordered after them go through the per-pattern evaluator.
func (ec *evalContext) evalBGP(bgp *BGP, seq []Solution) []Solution {
	ordered := ec.orderBGP(bgp.Triples, seq)
	prefix := 0
	for prefix < len(ordered) && ordered[prefix].Path == nil {
		prefix++
	}
	// The ID pipeline pays off from two joined patterns up; a single
	// pattern (the common OPTIONAL / EXISTS body, re-entered per solution)
	// is cheaper through the direct per-pattern evaluator.
	if prefix > 1 && len(seq) > 0 {
		seq = ec.evalBGPPrefix(ordered[:prefix], seq)
	} else {
		prefix = 0
	}
	for _, tp := range ordered[prefix:] {
		if len(seq) == 0 {
			return nil
		}
		seq = ec.evalTriplePattern(tp, seq)
	}
	return seq
}

// bgpConstPos marks a pattern position that holds a constant ID.
const bgpConstPos = -1

// bgpSpec is one triple pattern of an ID pipeline: per position either a
// constant ID (slot == bgpConstPos) or an index into the row's slots.
type bgpSpec struct {
	ids  [3]store.ID
	slot [3]int
}

// idRow is one intermediate binding of the ID pipeline.
type idRow struct {
	src  int // index of the seeding input Solution
	vals []store.ID
}

// evalBGPPrefix joins a run of non-path triple patterns entirely on
// dictionary IDs. Variables get dense slots; every intermediate binding is
// a row of IDs. Each input Solution seeds one row, and each surviving row
// clones its input Solution exactly once, at the end, with the new
// variables decoded lazily.
func (ec *evalContext) evalBGPPrefix(tps []TriplePattern, seq []Solution) []Solution {
	g := ec.g
	// Assign slots to the variables the patterns mention.
	slots := make(map[string]int)
	slotNames := make([]string, 0, 8)
	slotOf := func(name string) int {
		if i, ok := slots[name]; ok {
			return i
		}
		i := len(slotNames)
		slots[name] = i
		slotNames = append(slotNames, name)
		return i
	}
	// Encode each pattern: per position either a constant ID or a slot.
	specs := make([]bgpSpec, len(tps))
	for i, tp := range tps {
		for j, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
			if tv.IsVar {
				specs[i].slot[j] = slotOf(tv.Var)
				continue
			}
			specs[i].slot[j] = bgpConstPos
			id, ok := g.LookupID(tv.Term)
			if !ok {
				return nil // constant term absent: no triple can match
			}
			specs[i].ids[j] = id
		}
	}
	nSlots := len(slotNames)
	rows := make([]idRow, 0, len(seq))
	boundN := make([]int, nSlots)
	for si, sol := range seq {
		vals := make([]store.ID, nSlots)
		ok := true
		for name, slot := range slots {
			vals[slot] = store.NoID
			if t, bound := sol[name]; bound {
				id, known := g.LookupID(t)
				if !known {
					ok = false // bound to a term no triple contains
					break
				}
				vals[slot] = id
			}
		}
		if ok {
			for slot, v := range vals {
				if v != store.NoID {
					boundN[slot]++
				}
			}
			rows = append(rows, idRow{src: si, vals: vals})
		}
	}
	// certain[slot] marks slots bound in every row: seeded from the rows
	// just built, then extended as the pipeline executes (a pattern binds
	// all of its slots in every surviving row). Runs of patterns whose
	// single uncertain slot coincide fuse into one bitmap intersection
	// below.
	certain := make([]bool, nSlots)
	for slot, n := range boundN {
		certain[slot] = n == len(rows) && len(rows) > 0
	}
	// Join pipeline: the first (most selective) pattern seeds the row
	// stream, and each subsequent pattern expands every surviving row.
	// Consecutive patterns that constrain the same single fresh variable —
	// the dense-ontology staple `?x rdf:type :A . ?x rdf:type :B` — fuse
	// into one run: per row, each pattern's candidate bitmap comes straight
	// from an index level (MatchSetID) and the run's matches are their
	// word-level intersection, in the exact ascending-ID order the unfused
	// expand-then-filter cascade would emit. Large row sets fan out across
	// the worker pool in contiguous morsels whose outputs concatenate in
	// morsel order — exactly the sequential append order — while small
	// ones run the closure-free range call.
	for i := 0; i < len(specs); {
		if len(rows) == 0 {
			return nil
		}
		run := i
		freeSlot := -1
		if v, ok := fusableSlot(specs[i], certain); ok {
			freeSlot = v
			for run = i + 1; run < len(specs); run++ {
				if v2, ok2 := fusableSlot(specs[run], certain); !ok2 || v2 != v {
					break
				}
			}
		}
		if run > i+1 {
			fused := specs[i:run]
			// When every non-free position of the run is a constant the
			// candidate sets are the same for every row: resolve them once
			// here — and materialize the dense word-level AND once — instead
			// of per row (and per morsel).
			shared, sharedCand := fusedSharedSets(g, fused, freeSlot)
			expanded := false
			if ec.parEligible(len(rows)) {
				if par, ok := ec.parIntersectIDRows(fused, freeSlot, shared, sharedCand, rows); ok {
					rows, expanded = par, true
				}
			}
			if !expanded {
				rows = intersectIDRows(g, fused, freeSlot, shared, sharedCand, rows, 0, len(rows), rows[:0:0])
			}
			for _, spec := range fused {
				markCertain(spec, certain)
			}
			i = run
			continue
		}
		spec := specs[i]
		expanded := false
		if ec.parEligible(len(rows)) {
			if par, ok := ec.parExpandIDRows(spec, rows); ok {
				rows, expanded = par, true
			}
		}
		if !expanded {
			rows = expandIDRows(g, spec, rows, 0, len(rows), rows[:0:0])
		}
		markCertain(spec, certain)
		i++
	}
	// Materialize surviving rows into Solutions; each row is independent,
	// so large results decode in parallel into index-ordered slots.
	out := make([]Solution, len(rows))
	if !(ec.parEligible(len(rows)) && ec.parMaterializeIDRows(seq, slotNames, rows, out)) {
		materializeIDRows(g, seq, slotNames, rows, out, 0, len(rows))
	}
	return out
}

// fusableSlot reports whether exactly one position of spec holds a slot
// not yet certainly bound, returning that slot. Such a pattern resolves,
// per row, to a single index-level candidate set — the shape the fused
// intersection join consumes. A pattern repeating its one fresh variable
// in two positions has two uncertain positions and is rejected, as is a
// pattern whose positions are all constants or certain (a pure existence
// test, which the plain expander handles without allocating).
func fusableSlot(spec bgpSpec, certain []bool) (int, bool) {
	free, n := -1, 0
	for j := 0; j < 3; j++ {
		if s := spec.slot[j]; s != bgpConstPos && !certain[s] {
			free = s
			n++
		}
	}
	return free, n == 1
}

// probeFor resolves one pattern against one row: constants from the spec,
// everything else from the row's slots (NoID when the slot is unbound).
func probeFor(spec bgpSpec, r idRow) [3]store.ID {
	var probe [3]store.ID
	for j := 0; j < 3; j++ {
		if spec.slot[j] == bgpConstPos {
			probe[j] = spec.ids[j]
		} else {
			probe[j] = r.vals[spec.slot[j]]
		}
	}
	return probe
}

// markCertain records that spec's slots are bound in every surviving row
// (expansion binds all of a pattern's slots).
func markCertain(spec bgpSpec, certain []bool) {
	for j := 0; j < 3; j++ {
		if spec.slot[j] != bgpConstPos {
			certain[spec.slot[j]] = true
		}
	}
}

// fusedSharedSets resolves a fused run's candidate sets when they are
// row-invariant: every position of every pattern other than the free slot
// holds a constant, so the per-row probes never differ. The live index
// sets are returned smallest first (the iteration/And order that does the
// least work); nil sets means some pattern reads another (certainly
// bound) slot and the sets must be resolved per row. When the smallest
// set is dense enough for word-level ANDs to pay off, cand is the
// materialized intersection, computed exactly once for the whole run —
// sequential and fanned-out execution alike.
func fusedSharedSets(g *store.Graph, specs []bgpSpec, freeSlot int) (sets []*store.IDSet, cand *store.IDSet) {
	for _, spec := range specs {
		for j := 0; j < 3; j++ {
			if s := spec.slot[j]; s != bgpConstPos && s != freeSlot {
				return nil, nil
			}
		}
	}
	sets = make([]*store.IDSet, 0, len(specs))
	for _, spec := range specs {
		var probe [3]store.ID
		for j := 0; j < 3; j++ {
			if spec.slot[j] == bgpConstPos {
				probe[j] = spec.ids[j]
			} else {
				probe[j] = store.NoID
			}
		}
		sets = append(sets, g.MatchSetID(probe[0], probe[1], probe[2]))
	}
	sortSetsByLen(sets)
	if sets[0].Len() >= fusedAndMin {
		cand = andAll(sets)
	}
	return sets, cand
}

// andAll folds ≥ 2 sets (smallest first) into their intersection with
// word-level ANDs, stopping as soon as the product empties. The result is
// always a fresh set, never a live index level.
func andAll(sets []*store.IDSet) *store.IDSet {
	cand := sets[0].And(sets[1])
	for _, s := range sets[2:] {
		if cand.Len() == 0 {
			break
		}
		cand = cand.And(s)
	}
	return cand
}

// sortSetsByLen orders a handful of sets by ascending cardinality
// (insertion sort: runs are 2-4 patterns long).
func sortSetsByLen(sets []*store.IDSet) {
	for i := 1; i < len(sets); i++ {
		for j := i; j > 0 && sets[j].Len() < sets[j-1].Len(); j-- {
			sets[j], sets[j-1] = sets[j-1], sets[j]
		}
	}
}

// fusedAndMin is the smallest-candidate-set size at which materializing
// the word-level AND beats iterating the smallest set and probing the
// others. Below it the intersection runs allocation-free.
const fusedAndMin = 1024

// intersectIDRows joins rows[lo:hi] against a fused run of patterns that
// all constrain the same single fresh slot. Per row, each pattern
// contributes the live index bitmap behind its doubly-bound probe; the
// run's matches are the intersection of those bitmaps — iterated off the
// smallest set with membership probes into the rest when the smallest is
// small (no allocation), materialized as word-level ANDs when it is dense.
// Either way the surviving IDs extend the row in ascending order — exactly
// what expanding the first pattern and filtering through the rest would
// append, without materializing a row per pre-filter candidate. Rows whose
// seeding solution already bound the slot degrade to one membership test
// per pattern. shared passes the row-invariant candidate sets from
// fusedSharedSets (nil: resolve per row) and sharedCand their
// pre-materialized dense intersection (nil: none).
func intersectIDRows(g *store.Graph, specs []bgpSpec, freeSlot int, shared []*store.IDSet, sharedCand *store.IDSet, rows []idRow, lo, hi int, next []idRow) []idRow {
	var scratch [8]*store.IDSet
	for _, r := range rows[lo:hi] {
		if v := r.vals[freeSlot]; v != store.NoID {
			ok := true
			switch {
			case sharedCand != nil:
				ok = sharedCand.Contains(v)
			case shared != nil:
				for _, set := range shared {
					if !set.Contains(v) {
						ok = false
						break
					}
				}
			default:
				for _, spec := range specs {
					probe := probeFor(spec, r)
					if !g.HasID(probe[0], probe[1], probe[2]) {
						ok = false
						break
					}
				}
			}
			if ok {
				next = append(next, r)
			}
			continue
		}
		emit := func(id store.ID) bool {
			vals := append([]store.ID(nil), r.vals...)
			vals[freeSlot] = id
			next = append(next, idRow{src: r.src, vals: vals})
			return true
		}
		if sharedCand != nil {
			sharedCand.ForEach(emit)
			continue
		}
		sets := shared
		if sets == nil {
			sets = scratch[:0]
			dead := false
			for _, spec := range specs {
				probe := probeFor(spec, r)
				set := g.MatchSetID(probe[0], probe[1], probe[2])
				if set.Len() == 0 {
					dead = true
					break
				}
				sets = append(sets, set)
			}
			if dead {
				continue
			}
			sortSetsByLen(sets)
			if sets[0].Len() >= fusedAndMin {
				// Dense row-dependent candidates: materialize this row's
				// word-level AND.
				andAll(sets).ForEach(emit)
				continue
			}
		} else if sets[0].Len() == 0 {
			continue
		}
		// Sparse candidates: iterate the smallest set and probe the others —
		// ascending order, nothing allocated.
		sets[0].ForEach(func(id store.ID) bool {
			for _, s := range sets[1:] {
				if !s.Contains(id) {
					return true
				}
			}
			return emit(id)
		})
	}
	return next
}

// parIntersectIDRows fans a fused intersection run across the worker pool;
// see parExpandIDRows for why it is a separate method.
func (ec *evalContext) parIntersectIDRows(specs []bgpSpec, freeSlot int, shared []*store.IDSet, sharedCand *store.IDSet, rows []idRow) ([]idRow, bool) {
	return parRange(ec, len(rows), func(lo, hi int, out []idRow) []idRow {
		return intersectIDRows(ec.g, specs, freeSlot, shared, sharedCand, rows, lo, hi, out)
	})
}

// parExpandIDRows fans one pattern's row expansion across the worker
// pool. A separate method (like parStepIDs) so its escaping closure never
// forces heap boxing of evalBGPPrefix's pipeline state on the sequential
// reference path.
func (ec *evalContext) parExpandIDRows(spec bgpSpec, rows []idRow) ([]idRow, bool) {
	return parRange(ec, len(rows), func(lo, hi int, out []idRow) []idRow {
		return expandIDRows(ec.g, spec, rows, lo, hi, out)
	})
}

// parMaterializeIDRows decodes rows into out's index-ordered slots in
// parallel; false means the caller must materialize sequentially.
func (ec *evalContext) parMaterializeIDRows(seq []Solution, slotNames []string, rows []idRow, out []Solution) bool {
	_, ok := ec.parChunks(len(rows), func(_, lo, hi int) {
		materializeIDRows(ec.g, seq, slotNames, rows, out, lo, hi)
	})
	return ok
}

// expandIDRows joins rows[lo:hi] against one encoded pattern, appending
// every extension to next. It reads only the graph and the rows, so it is
// safe to call from concurrent workers on disjoint ranges.
func expandIDRows(g *store.Graph, spec bgpSpec, rows []idRow, lo, hi int, next []idRow) []idRow {
	for _, r := range rows[lo:hi] {
		probe := probeFor(spec, r) // NoID in unbound positions
		g.ForEachID(probe[0], probe[1], probe[2], func(s, p, o store.ID) bool {
			match := [3]store.ID{s, p, o}
			ext := r.vals
			cloned := false
			for j := 0; j < 3; j++ {
				slot := spec.slot[j]
				if slot == bgpConstPos || probe[j] != store.NoID {
					continue // constant or pre-bound: index guaranteed it
				}
				if ext[slot] != store.NoID {
					// Same variable matched earlier in this triple.
					if ext[slot] != match[j] {
						return true
					}
					continue
				}
				if !cloned {
					ext = append([]store.ID(nil), ext...)
					cloned = true
				}
				ext[slot] = match[j]
			}
			next = append(next, idRow{src: r.src, vals: ext})
			return true
		})
	}
	return next
}

// materializeIDRows decodes rows[lo:hi] into out[lo:hi]: each surviving
// row clones its seeding Solution exactly once, with the new variables
// decoded lazily from the dictionary.
func materializeIDRows(g *store.Graph, seq []Solution, slotNames []string, rows []idRow, out []Solution, lo, hi int) {
	for i := lo; i < hi; i++ {
		r := rows[i]
		sol := seq[r.src]
		ext := sol
		cloned := false
		for slot, name := range slotNames {
			if r.vals[slot] == store.NoID {
				continue
			}
			if _, bound := sol[name]; bound {
				continue
			}
			if !cloned {
				ext = sol.clone()
				cloned = true
			}
			ext[name] = g.TermOf(r.vals[slot])
		}
		out[i] = ext
	}
}

// quickExists answers EXISTS over a group consisting of a single non-path
// triple pattern without materializing bindings: it probes the ID indexes
// and stops at the first match. ok=false means the group is not of that
// shape and the caller must fall back to full evaluation.
func (ec *evalContext) quickExists(g *Group, sol Solution) (found, ok bool) {
	if g == nil || len(g.Filters) != 0 || len(g.Patterns) != 1 {
		return false, false
	}
	bgp, isBGP := g.Patterns[0].(*BGP)
	if !isBGP || len(bgp.Triples) != 1 || bgp.Triples[0].Path != nil {
		return false, false
	}
	tp := bgp.Triples[0]
	ids := [3]store.ID{store.NoID, store.NoID, store.NoID}
	var seenVars [3]string
	for i, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
		term := tv.Term
		if tv.IsVar {
			t, bound := sol[tv.Var]
			if !bound {
				// Two unbound occurrences of one variable constrain each
				// other; leave that shape to the full evaluator.
				for j := 0; j < i; j++ {
					if seenVars[j] == tv.Var {
						return false, false
					}
				}
				seenVars[i] = tv.Var
				continue
			}
			term = t
		}
		id, known := ec.g.LookupID(term)
		if !known {
			return false, true // a term the graph has never seen: no match
		}
		ids[i] = id
	}
	ec.g.ForEachID(ids[0], ids[1], ids[2], func(_, _, _ store.ID) bool {
		found = true
		return false
	})
	return found, true
}

// evalTriplePattern extends each solution with matches of one pattern. The
// match runs at dictionary-ID level: constants are encoded once per pattern,
// solution-bound variables once per solution, and only the wildcard
// positions of each matching triple are decoded back to terms.
func (ec *evalContext) evalTriplePattern(tp TriplePattern, seq []Solution) []Solution {
	// Each solution extends independently; large inputs fan out across the
	// worker pool, everything else takes the closure-free range call.
	if ec.parEligible(len(seq)) {
		if out, ok := parRange(ec, len(seq), func(lo, hi int, out []Solution) []Solution {
			return ec.evalTriplePatternRange(tp, seq, lo, hi, out)
		}); ok {
			return out
		}
	}
	return ec.evalTriplePatternRange(tp, seq, 0, len(seq), nil)
}

// evalTriplePatternRange extends seq[lo:hi] with tp's matches, appending
// to out; the per-pattern constant encoding is repeated per range, which
// costs three dictionary probes per worker morsel.
func (ec *evalContext) evalTriplePatternRange(tp TriplePattern, seq []Solution, lo, hi int, out []Solution) []Solution {
	if tp.Path != nil {
		for _, sol := range seq[lo:hi] {
			out = append(out, ec.evalPathPattern(tp, sol)...)
		}
		return out
	}
	g := ec.g
	// Encode the constant positions once; a constant the dictionary has
	// never seen matches nothing for any solution.
	type posSpec struct {
		id      store.ID // bound ID, or NoID when variable
		varName string   // non-empty when variable
	}
	encode := func(tv TermOrVar) (posSpec, bool) {
		if tv.IsVar {
			return posSpec{id: store.NoID, varName: tv.Var}, true
		}
		id, ok := g.LookupID(tv.Term)
		return posSpec{id: id}, ok
	}
	sSpec, ok := encode(tp.S)
	if !ok {
		return nil
	}
	pSpec, ok := encode(tp.P)
	if !ok {
		return nil
	}
	oSpec, ok := encode(tp.O)
	if !ok {
		return nil
	}
	// resolvePos folds the current solution in: a variable bound in sol
	// becomes a concrete ID (ok=false when its term is not in the graph —
	// the pattern then cannot match this solution).
	resolvePos := func(ps posSpec, sol Solution) (store.ID, string, bool) {
		if ps.varName == "" {
			return ps.id, "", true
		}
		if t, bound := sol[ps.varName]; bound {
			id, known := g.LookupID(t)
			return id, "", known
		}
		return store.NoID, ps.varName, true
	}
	for _, sol := range seq[lo:hi] {
		sID, sVar, ok := resolvePos(sSpec, sol)
		if !ok {
			continue
		}
		pID, pVar, ok := resolvePos(pSpec, sol)
		if !ok {
			continue
		}
		oID, oVar, ok := resolvePos(oSpec, sol)
		if !ok {
			continue
		}
		g.ForEachID(sID, pID, oID, func(si, pi, oi store.ID) bool {
			ext := sol
			cloned := false
			bind := func(name string, id store.ID) bool {
				if name == "" {
					return true
				}
				val := g.TermOf(id)
				if cur, ok := ext[name]; ok {
					return cur == val
				}
				if !cloned {
					ext = ext.clone()
					cloned = true
				}
				ext[name] = val
				return true
			}
			if bind(sVar, si) && bind(pVar, pi) && bind(oVar, oi) {
				if !cloned {
					ext = sol
				}
				out = append(out, ext)
			}
			return true
		})
	}
	return out
}

// resolve maps a pattern position to (bound term, "") or (wildcard, varname).
func resolve(tv TermOrVar, sol Solution) (rdf.Term, string) {
	if !tv.IsVar {
		return tv.Term, ""
	}
	if t, ok := sol[tv.Var]; ok {
		return t, ""
	}
	return store.Wildcard, tv.Var
}

// ---- SELECT finalization: grouping, aggregates, projection, modifiers ----

func finishSelect(ec *evalContext, q *Query, sols []Solution) (*Result, error) {
	res := &Result{Kind: KindSelect, Namespaces: q.Namespaces}
	// Aggregation applies when GROUP BY is present or any projection/having
	// expression contains an aggregate.
	aggs := collectAggregates(q)
	if len(q.GroupBy) > 0 || len(aggs) > 0 {
		grouped, err := groupAndAggregate(ec, q, sols, aggs)
		if err != nil {
			return nil, err
		}
		sols = grouped
	}
	// Extend solutions with computed projection values first, so ORDER BY
	// can reference both SELECT aliases and variables that the projection
	// will later drop.
	vars := projectionVars(q, sols)
	res.Vars = vars
	hasExprs := false
	for _, item := range q.Projection {
		if item.Expr != nil {
			hasExprs = true
			break
		}
	}
	extended := sols
	if hasExprs {
		extendOne := func(sol Solution) Solution {
			ext := sol.clone()
			for _, item := range q.Projection {
				if item.Expr == nil {
					continue
				}
				if v, err := item.Expr.Eval(ec, ext); err == nil {
					ext[item.Var] = v
				}
			}
			return ext
		}
		extended = make([]Solution, len(sols))
		if !parMap(ec, sols, extended, extendOne) {
			for i, sol := range sols {
				extended[i] = extendOne(sol)
			}
		}
	}
	// ORDER BY on the full (extended) solutions.
	if len(q.OrderBy) > 0 {
		sorted := make([]Solution, len(extended))
		copy(sorted, extended)
		sortSolutions(ec, sorted, q.OrderBy)
		extended = sorted
	}
	// Reduce to the projected variables.
	projectOne := func(sol Solution) Solution {
		row := make(Solution, len(vars))
		for _, v := range vars {
			if t, ok := sol[v]; ok {
				row[v] = t
			}
		}
		return row
	}
	projected := make([]Solution, len(extended))
	if !parMap(ec, extended, projected, projectOne) {
		for i, sol := range extended {
			projected[i] = projectOne(sol)
		}
	}
	// DISTINCT / REDUCED.
	if q.Distinct || q.Reduced {
		projected = distinct(projected, vars)
	}
	// OFFSET / LIMIT.
	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	res.Solutions = projected
	return res, nil
}

func collectAggregates(q *Query) []*AggExpr {
	var aggs []*AggExpr
	var walk func(e Expression)
	walk = func(e Expression) {
		switch x := e.(type) {
		case *AggExpr:
			aggs = append(aggs, x)
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			walk(x.Expr)
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *InExpr:
			walk(x.Expr)
			for _, a := range x.List {
				walk(a)
			}
		}
	}
	for _, item := range q.Projection {
		if item.Expr != nil {
			walk(item.Expr)
		}
	}
	for _, h := range q.Having {
		walk(h)
	}
	return aggs
}

// groupAndAggregate partitions solutions by the GROUP BY keys, computes each
// aggregate per group, and returns one solution per group carrying the key
// bindings plus aggregate values under their internal keys.
func groupAndAggregate(ec *evalContext, q *Query, sols []Solution, aggs []*AggExpr) ([]Solution, error) {
	type groupData struct {
		key  Solution
		rows []Solution
	}
	groups := make(map[string]*groupData)
	var order []string
	for _, sol := range sols {
		var kb strings.Builder
		key := Solution{}
		for i, ge := range q.GroupBy {
			v, err := ge.Eval(ec, sol)
			if err == nil {
				kb.WriteString(v.String())
				if ve, ok := ge.(*VarExpr); ok {
					key[ve.Name] = v
				} else {
					key[" gk"+strconv.Itoa(i)] = v
				}
			}
			kb.WriteByte('|')
		}
		k := kb.String()
		gd, ok := groups[k]
		if !ok {
			gd = &groupData{key: key}
			groups[k] = gd
			order = append(order, k)
		}
		gd.rows = append(gd.rows, sol)
	}
	// With no GROUP BY, all solutions form one group (even when empty).
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &groupData{key: Solution{}}
		order = append(order, "")
	}
	var out []Solution
	for _, k := range order {
		gd := groups[k]
		row := gd.key.clone()
		for _, agg := range aggs {
			if v, ok := computeAggregate(ec, agg, gd.rows); ok {
				row[agg.key] = v
			}
		}
		keep := true
		for _, h := range q.Having {
			ok, err := ebvOf(h, ec, row)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

func computeAggregate(ec *evalContext, agg *AggExpr, rows []Solution) (rdf.Term, bool) {
	var values []rdf.Term
	for _, r := range rows {
		if agg.Arg == nil { // COUNT(*)
			values = append(values, rdf.TrueLiteral)
			continue
		}
		if v, err := agg.Arg.Eval(ec, r); err == nil {
			values = append(values, v)
		}
	}
	if agg.Distinct {
		seen := make(map[rdf.Term]bool)
		var dd []rdf.Term
		for _, v := range values {
			if !seen[v] {
				seen[v] = true
				dd = append(dd, v)
			}
		}
		values = dd
	}
	switch agg.Name {
	case "COUNT":
		return rdf.NewInt(int64(len(values))), true
	case "SUM", "AVG":
		sum := 0.0
		n := 0
		allInt := true
		for _, v := range values {
			if f, ok := v.Float(); ok {
				sum += f
				n++
				if v.Datatype != rdf.XSDInteger {
					allInt = false
				}
			}
		}
		if agg.Name == "SUM" {
			if allInt {
				return rdf.NewInt(int64(sum)), true
			}
			return rdf.NewFloat(sum), true
		}
		if n == 0 {
			return rdf.NewInt(0), true
		}
		return rdf.NewFloat(sum / float64(n)), true
	case "MIN", "MAX":
		if len(values) == 0 {
			return rdf.Term{}, false
		}
		best := values[0]
		for _, v := range values[1:] {
			c, err := orderCompare(v, best)
			if err != nil {
				c = rdf.Compare(v, best)
			}
			if (agg.Name == "MIN" && c < 0) || (agg.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, true
	case "SAMPLE":
		if len(values) == 0 {
			return rdf.Term{}, false
		}
		// Deterministic sample: smallest term.
		best := values[0]
		for _, v := range values[1:] {
			if rdf.Compare(v, best) < 0 {
				best = v
			}
		}
		return best, true
	case "GROUP_CONCAT":
		parts := make([]string, 0, len(values))
		for _, v := range values {
			parts = append(parts, v.Value)
		}
		sort.Strings(parts) // deterministic
		return rdf.NewLiteral(strings.Join(parts, agg.Sep)), true
	}
	return rdf.Term{}, false
}

// projectionVars determines the output column order.
func projectionVars(q *Query, sols []Solution) []string {
	if len(q.Projection) > 0 {
		vars := make([]string, 0, len(q.Projection))
		for _, item := range q.Projection {
			vars = append(vars, item.Var)
		}
		return vars
	}
	// SELECT *: variables in order of first appearance in the pattern tree.
	var vars []string
	seen := make(map[string]bool)
	add := func(name string) {
		if name != "" && !seen[name] && !strings.HasPrefix(name, " ") {
			seen[name] = true
			vars = append(vars, name)
		}
	}
	var walkGroup func(g *Group)
	var walkPattern func(p Pattern)
	walkPattern = func(p Pattern) {
		switch pat := p.(type) {
		case *BGP:
			for _, tp := range pat.Triples {
				if tp.S.IsVar {
					add(tp.S.Var)
				}
				if tp.P.IsVar {
					add(tp.P.Var)
				}
				if tp.O.IsVar {
					add(tp.O.Var)
				}
			}
		case *Group:
			walkGroup(pat)
		case *Optional:
			walkGroup(pat.Pattern)
		case *Union:
			walkGroup(pat.Left)
			walkGroup(pat.Right)
		case *Minus:
			// MINUS variables are not projected.
		case *Bind:
			add(pat.Var)
		case *InlineData:
			for _, v := range pat.Vars {
				add(v)
			}
		}
	}
	walkGroup = func(g *Group) {
		for _, p := range g.Patterns {
			walkPattern(p)
		}
	}
	if q.Where != nil {
		walkGroup(q.Where)
	}
	return vars
}

func sortSolutions(ec *evalContext, sols []Solution, conds []OrderCondition) {
	sort.SliceStable(sols, func(i, j int) bool {
		for _, c := range conds {
			vi, ei := c.Expr.Eval(ec, sols[i])
			vj, ej := c.Expr.Eval(ec, sols[j])
			var cmp int
			switch {
			case ei != nil && ej != nil:
				cmp = 0
			case ei != nil:
				cmp = -1 // unbound sorts first
			case ej != nil:
				cmp = 1
			default:
				var err error
				cmp, err = orderCompare(vi, vj)
				if err != nil {
					cmp = rdf.Compare(vi, vj)
				}
			}
			if c.Descending {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
}

func distinct(sols []Solution, vars []string) []Solution {
	seen := make(map[string]bool, len(sols))
	var out []Solution
	for _, sol := range sols {
		var kb strings.Builder
		for _, v := range vars {
			if t, ok := sol[v]; ok {
				kb.WriteString(t.String())
			}
			kb.WriteByte('|')
		}
		k := kb.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, sol)
		}
	}
	return out
}

// ---- CONSTRUCT / DESCRIBE ----

func constructGraph(q *Query, sols []Solution) *store.Graph {
	out := store.New()
	if q.Namespaces != nil {
		for _, p := range q.Namespaces.Prefixes() {
			if iri, ok := q.Namespaces.IRIFor(p); ok {
				out.Namespaces().Bind(p, iri)
			}
		}
	}
	bnodeSeq := 0
	for _, sol := range sols {
		bnodeSeq++
		for _, tp := range q.Template {
			s, sOK := instantiate(tp.S, sol, bnodeSeq)
			p, pOK := instantiate(tp.P, sol, bnodeSeq)
			o, oOK := instantiate(tp.O, sol, bnodeSeq)
			if sOK && pOK && oOK {
				out.Add(s, p, o)
			}
		}
	}
	return out
}

func instantiate(tv TermOrVar, sol Solution, bnodeSeq int) (rdf.Term, bool) {
	if !tv.IsVar {
		return tv.Term, true
	}
	if strings.HasPrefix(tv.Var, " bnode") {
		// Template blank nodes are fresh per solution.
		return rdf.NewBlank(fmt.Sprintf("c%d%s", bnodeSeq, strings.TrimSpace(tv.Var))), true
	}
	t, ok := sol[tv.Var]
	return t, ok
}

// describeGraph returns the concise bounded description of every described
// resource: all triples with the resource as subject, recursing through
// blank-node objects, plus incoming triples.
func describeGraph(g *store.Graph, q *Query, sols []Solution) *store.Graph {
	out := store.New()
	targets := make(map[rdf.Term]bool)
	for _, dt := range q.DescribeTerms {
		if !dt.IsVar {
			targets[dt.Term] = true
			continue
		}
		for _, sol := range sols {
			if t, ok := sol[dt.Var]; ok {
				targets[t] = true
			}
		}
	}
	var describe func(t rdf.Term, depth int)
	describe = func(t rdf.Term, depth int) {
		if depth > 8 {
			return
		}
		g.ForEach(t, store.Wildcard, store.Wildcard, func(tr rdf.Triple) bool {
			if out.AddTriple(tr) && tr.O.IsBlank() {
				describe(tr.O, depth+1)
			}
			return true
		})
	}
	for t := range targets {
		describe(t, 0)
		g.ForEach(store.Wildcard, store.Wildcard, t, func(tr rdf.Triple) bool {
			out.AddTriple(tr)
			return true
		})
	}
	return out
}
