package sparql

// A deliberately naive reference evaluator, used by the randomized
// equivalence harness (equivalence_test.go) to lock in the production
// engine's semantics.
//
// Where the production engine runs on fixed-slot ID rows with join
// reordering, pattern fusion, filter pushdown, a plan cache, and a worker
// pool, this evaluator does none of that: it works on map-based Solutions,
// joins triple patterns by nested-loop scans in their written order,
// applies every filter at the end of its group, recomputes property-path
// reachability from scratch at every use, and never caches or fans out.
// Anything the two engines must agree on *by definition* — the scalar
// builtin library, numeric typing, term comparison, aggregate folding —
// is shared (evalBuiltin, ebv, termsEqual, orderCompare, numericResult,
// foldAggregate), so a divergence between the engines points at the
// solution pipeline, not at arithmetic.

import (
	"strconv"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

type refEvaluator struct {
	g *store.Graph
	// budget bounds the total rows the nested-loop engine may produce:
	// random query generation can emit cartesian shapes that a naive
	// evaluator cannot finish, and the harness skips those (by catching
	// the errRefBudget panic) rather than bounding the generator's shape
	// space. 0 = unlimited.
	budget int
}

// errRefBudget is panicked when a budgeted reference run exceeds its row
// allowance; refExecuteBudget converts it into ok=false.
var errRefBudget = &struct{ s string }{"reference evaluator budget exceeded"}

func (re *refEvaluator) spend(n int) {
	if re.budget == 0 {
		return
	}
	re.budget -= n
	if re.budget <= 0 {
		panic(errRefBudget)
	}
}

// refExecute evaluates q against g with the reference engine. Only SELECT
// and ASK are supported (the harness compares solution multisets).
func refExecute(g *store.Graph, q *Query) *Result {
	re := &refEvaluator{g: g}
	return re.execute(q)
}

// refExecuteBudget is refExecute with a row budget; ok=false means the
// query was too explosive for nested loops and should be skipped.
func refExecuteBudget(g *store.Graph, q *Query, budget int) (res *Result, ok bool) {
	defer func() {
		if r := recover(); r != nil {
			if r == errRefBudget {
				res, ok = nil, false
				return
			}
			panic(r)
		}
	}()
	re := &refEvaluator{g: g, budget: budget}
	return re.execute(q), true
}

func (re *refEvaluator) execute(q *Query) *Result {
	sols := re.evalGroup(q.Where, []Solution{{}})
	res := &Result{Kind: q.Kind, Namespaces: q.Namespaces}
	if q.Kind == KindAsk {
		res.Boolean = len(sols) > 0
		return res
	}
	return re.finishSelect(q, sols)
}

// evalGroup: patterns in written order, every filter at the very end.
func (re *refEvaluator) evalGroup(g *Group, input []Solution) []Solution {
	seq := input
	for _, pat := range g.Patterns {
		seq = re.evalPattern(pat, seq)
	}
	for _, f := range g.Filters {
		var out []Solution
		for _, sol := range seq {
			if ok, err := re.ebv(f, sol); err == nil && ok {
				out = append(out, sol)
			}
		}
		seq = out
	}
	return seq
}

func (re *refEvaluator) evalPattern(p Pattern, seq []Solution) []Solution {
	re.spend(len(seq))
	switch pat := p.(type) {
	case *BGP:
		for _, tp := range pat.Triples {
			var out []Solution
			for _, sol := range seq {
				out = append(out, re.evalTriple(tp, sol)...)
				re.spend(1)
			}
			re.spend(len(out))
			seq = out
		}
		return seq
	case *Group:
		return re.evalGroup(pat, seq)
	case *Optional:
		var out []Solution
		for _, sol := range seq {
			ext := re.evalGroup(pat.Pattern, []Solution{sol})
			if len(ext) > 0 {
				out = append(out, ext...)
			} else {
				out = append(out, sol)
			}
		}
		return out
	case *Union:
		left := re.evalGroup(pat.Left, seq)
		right := re.evalGroup(pat.Right, seq)
		return append(left, right...)
	case *Minus:
		rhs := re.evalGroup(pat.Pattern, []Solution{{}})
		var out []Solution
		for _, sol := range seq {
			excluded := false
			for _, m := range rhs {
				shared, compatible := false, true
				for k, v := range m {
					if sv, ok := sol[k]; ok {
						shared = true
						if sv != v {
							compatible = false
							break
						}
					}
				}
				if shared && compatible {
					excluded = true
					break
				}
			}
			if !excluded {
				out = append(out, sol)
			}
		}
		return out
	case *Bind:
		var out []Solution
		for _, sol := range seq {
			v, err := re.eval(pat.Expr, sol)
			if err != nil {
				out = append(out, sol)
				continue
			}
			if existing, bound := sol[pat.Var]; bound {
				if existing == v {
					out = append(out, sol)
				}
				continue
			}
			ns := sol.clone()
			ns[pat.Var] = v
			out = append(out, ns)
		}
		return out
	case *InlineData:
		var out []Solution
		for _, sol := range seq {
			for _, row := range pat.Rows {
				merged := sol.clone()
				ok := true
				for i, v := range pat.Vars {
					if !row[i].Defined {
						continue
					}
					if existing, bound := merged[v]; bound {
						if existing != row[i].Term {
							ok = false
							break
						}
						continue
					}
					merged[v] = row[i].Term
				}
				if ok {
					out = append(out, merged)
				}
			}
		}
		return out
	case *SubSelect:
		sub := re.execute(pat.Query) // shares the row budget
		var out []Solution
		for _, sol := range seq {
			for _, sr := range sub.Solutions {
				merged := sol.clone()
				ok := true
				for k, v := range sr {
					if existing, bound := merged[k]; bound {
						if existing != v {
							ok = false
							break
						}
						continue
					}
					merged[k] = v
				}
				if ok {
					out = append(out, merged)
				}
			}
		}
		return out
	default:
		return nil
	}
}

// evalTriple extends one solution against one triple pattern by scanning
// the graph term-level (property paths go through refPathForward).
func (re *refEvaluator) evalTriple(tp TriplePattern, sol Solution) []Solution {
	if tp.Path != nil {
		return re.evalPathTriple(tp, sol)
	}
	resolve := func(tv TermOrVar) (rdf.Term, string) {
		if !tv.IsVar {
			return tv.Term, ""
		}
		if t, ok := sol[tv.Var]; ok {
			return t, ""
		}
		return store.Wildcard, tv.Var
	}
	s, sVar := resolve(tp.S)
	p, pVar := resolve(tp.P)
	o, oVar := resolve(tp.O)
	var out []Solution
	re.g.ForEach(s, p, o, func(tr rdf.Triple) bool {
		ns := sol.clone()
		ok := true
		for _, bind := range [3]struct {
			name string
			val  rdf.Term
		}{{sVar, tr.S}, {pVar, tr.P}, {oVar, tr.O}} {
			if bind.name == "" {
				continue
			}
			if existing, bound := ns[bind.name]; bound {
				if existing != bind.val {
					ok = false
					break
				}
				continue
			}
			ns[bind.name] = bind.val
		}
		if ok {
			out = append(out, ns)
		}
		return true
	})
	return out
}

func (re *refEvaluator) evalPathTriple(tp TriplePattern, sol Solution) []Solution {
	resolve := func(tv TermOrVar) (rdf.Term, string, bool) {
		if !tv.IsVar {
			return tv.Term, "", true
		}
		if t, ok := sol[tv.Var]; ok {
			return t, "", true
		}
		return rdf.Term{}, tv.Var, false
	}
	s, sVar, sBound := resolve(tp.S)
	o, oVar, oBound := resolve(tp.O)
	// Variable endpoints only bind graph nodes; see the matching rule (and
	// rationale) in the production engine's evalPathRange.
	if (tp.S.IsVar && sBound && !re.isNode(s)) || (tp.O.IsVar && oBound && !re.isNode(o)) {
		return nil
	}
	var out []Solution
	switch {
	case sBound && oBound:
		for _, t := range re.pathForward(tp.Path, s) {
			if t == o {
				out = append(out, sol)
				break
			}
		}
	case sBound:
		for _, t := range re.pathForward(tp.Path, s) {
			if !re.isNode(t) {
				continue
			}
			ns := sol.clone()
			ns[oVar] = t
			out = append(out, ns)
		}
	case oBound:
		for _, t := range re.pathBackward(tp.Path, o) {
			if !re.isNode(t) {
				continue
			}
			ns := sol.clone()
			ns[sVar] = t
			out = append(out, ns)
		}
	default:
		// Both unbound: try every node of the graph as a start. Starts
		// with no outgoing path match contribute nothing, so this is
		// equivalent to any smarter candidate pruning.
		for _, start := range re.allNodes() {
			for _, t := range re.pathForward(tp.Path, start) {
				ns := sol.clone()
				if sVar == oVar {
					if start != t {
						continue
					}
					ns[sVar] = start
				} else {
					ns[sVar] = start
					ns[oVar] = t
				}
				out = append(out, ns)
			}
		}
	}
	return out
}

func (re *refEvaluator) isNode(t rdf.Term) bool {
	return re.g.Count(t, store.Wildcard, store.Wildcard) > 0 ||
		re.g.Count(store.Wildcard, store.Wildcard, t) > 0
}

func (re *refEvaluator) allNodes() []rdf.Term {
	seen := make(map[rdf.Term]bool)
	var out []rdf.Term
	re.g.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t rdf.Triple) bool {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		if !seen[t.O] {
			seen[t.O] = true
			out = append(out, t.O)
		}
		return true
	})
	return out
}

// pathForward computes the forward reachability of a path from scratch —
// no memo, map-based BFS.
func (re *refEvaluator) pathForward(p *Path, from rdf.Term) []rdf.Term {
	switch p.Kind {
	case PathIRI:
		return re.g.Objects(from, p.IRI)
	case PathInverse:
		return re.pathBackward(p.Kids[0], from)
	case PathSeq:
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		for _, m := range re.pathForward(p.Kids[0], from) {
			for _, t := range re.pathForward(p.Kids[1], m) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PathAlt:
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		for _, kid := range p.Kids {
			for _, t := range re.pathForward(kid, from) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PathZeroOrOne:
		out := []rdf.Term{from}
		seen := map[rdf.Term]bool{from: true}
		for _, t := range re.pathForward(p.Kids[0], from) {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
		return out
	case PathZeroOrMore, PathOneOrMore:
		return re.bfs(p.Kids[0], from, p.Kind == PathZeroOrMore, false)
	}
	return nil
}

func (re *refEvaluator) pathBackward(p *Path, to rdf.Term) []rdf.Term {
	switch p.Kind {
	case PathIRI:
		return re.g.Subjects(p.IRI, to)
	case PathInverse:
		return re.pathForward(p.Kids[0], to)
	case PathSeq:
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		for _, m := range re.pathBackward(p.Kids[1], to) {
			for _, t := range re.pathBackward(p.Kids[0], m) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PathAlt:
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		for _, kid := range p.Kids {
			for _, t := range re.pathBackward(kid, to) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PathZeroOrOne:
		out := []rdf.Term{to}
		seen := map[rdf.Term]bool{to: true}
		for _, t := range re.pathBackward(p.Kids[0], to) {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
		return out
	case PathZeroOrMore, PathOneOrMore:
		return re.bfs(p.Kids[0], to, p.Kind == PathZeroOrMore, true)
	}
	return nil
}

func (re *refEvaluator) bfs(step *Path, start rdf.Term, includeStart, backward bool) []rdf.Term {
	visited := make(map[rdf.Term]bool)
	var out []rdf.Term
	if includeStart {
		visited[start] = true
		out = append(out, start)
	}
	frontier := []rdf.Term{start}
	for len(frontier) > 0 {
		var next []rdf.Term
		for _, node := range frontier {
			var steps []rdf.Term
			if backward {
				steps = re.pathBackward(step, node)
			} else {
				steps = re.pathForward(step, node)
			}
			for _, t := range steps {
				if !visited[t] {
					visited[t] = true
					out = append(out, t)
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	return out
}

// ---- expressions (term-level, own dispatch, shared scalar helpers) ----

func (re *refEvaluator) ebv(e Expression, sol Solution) (bool, error) {
	v, err := re.eval(e, sol)
	if err != nil {
		return false, err
	}
	return ebv(v)
}

func (re *refEvaluator) eval(e Expression, sol Solution) (rdf.Term, error) {
	switch x := e.(type) {
	case *VarExpr:
		if t, ok := sol[x.Name]; ok {
			return t, nil
		}
		return rdf.Term{}, errUnbound
	case *ConstExpr:
		return x.Term, nil
	case *AggExpr:
		if t, ok := sol[x.key]; ok {
			return t, nil
		}
		return rdf.Term{}, errUnbound
	case *ExistsExpr:
		res := re.evalGroup(x.Pattern, []Solution{sol})
		return boolTerm((len(res) > 0) != x.Negated), nil
	case *UnaryExpr:
		switch x.Op {
		case "!":
			v, err := re.ebv(x.Expr, sol)
			if err != nil {
				return rdf.Term{}, err
			}
			return boolTerm(!v), nil
		case "-":
			v, err := re.eval(x.Expr, sol)
			if err != nil {
				return rdf.Term{}, err
			}
			f, ok := v.Float()
			if !ok {
				return rdf.Term{}, errUnbound
			}
			if v.Datatype == rdf.XSDInteger {
				return rdf.NewInt(-int64(f)), nil
			}
			return rdf.NewFloat(-f), nil
		default: // unary +
			return re.eval(x.Expr, sol)
		}
	case *InExpr:
		v, err := re.eval(x.Expr, sol)
		if err != nil {
			return rdf.Term{}, err
		}
		found := false
		for _, item := range x.List {
			iv, err := re.eval(item, sol)
			if err != nil {
				continue
			}
			if eq, err := termsEqual(v, iv); err == nil && eq {
				found = true
				break
			}
		}
		return boolTerm(found != x.Negated), nil
	case *BinaryExpr:
		return re.evalBinary(x, sol)
	case *FuncExpr:
		switch x.Name {
		case "BOUND":
			v, ok := x.Args[0].(*VarExpr)
			if !ok {
				return rdf.Term{}, errUnbound
			}
			_, bound := sol[v.Name]
			return boolTerm(bound), nil
		case "COALESCE":
			for _, a := range x.Args {
				if v, err := re.eval(a, sol); err == nil {
					return v, nil
				}
			}
			return rdf.Term{}, errUnbound
		case "IF":
			if len(x.Args) != 3 {
				return rdf.Term{}, errUnbound
			}
			c, err := re.ebv(x.Args[0], sol)
			if err != nil {
				return rdf.Term{}, err
			}
			if c {
				return re.eval(x.Args[1], sol)
			}
			return re.eval(x.Args[2], sol)
		}
		args := make([]rdf.Term, len(x.Args))
		for i, a := range x.Args {
			v, err := re.eval(a, sol)
			if err != nil {
				return rdf.Term{}, err
			}
			args[i] = v
		}
		return evalBuiltin(x.Name, args)
	}
	return rdf.Term{}, errUnbound
}

func (re *refEvaluator) evalBinary(e *BinaryExpr, sol Solution) (rdf.Term, error) {
	switch e.Op {
	case "||":
		lv, lerr := re.ebv(e.Left, sol)
		rv, rerr := re.ebv(e.Right, sol)
		switch {
		case lerr == nil && lv, rerr == nil && rv:
			return rdf.TrueLiteral, nil
		case lerr != nil || rerr != nil:
			return rdf.Term{}, errUnbound
		default:
			return rdf.FalseLiteral, nil
		}
	case "&&":
		lv, lerr := re.ebv(e.Left, sol)
		rv, rerr := re.ebv(e.Right, sol)
		switch {
		case lerr == nil && !lv, rerr == nil && !rv:
			return rdf.FalseLiteral, nil
		case lerr != nil || rerr != nil:
			return rdf.Term{}, errUnbound
		default:
			return rdf.TrueLiteral, nil
		}
	}
	l, err := re.eval(e.Left, sol)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := re.eval(e.Right, sol)
	if err != nil {
		return rdf.Term{}, err
	}
	switch e.Op {
	case "=", "!=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		return boolTerm(eq == (e.Op == "=")), nil
	case "<", ">", "<=", ">=":
		c, err := orderCompare(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		switch e.Op {
		case "<":
			return boolTerm(c < 0), nil
		case ">":
			return boolTerm(c > 0), nil
		case "<=":
			return boolTerm(c <= 0), nil
		default:
			return boolTerm(c >= 0), nil
		}
	case "+", "-", "*", "/":
		lf, lok := l.Float()
		rf, rok := r.Float()
		if !lok || !rok {
			return rdf.Term{}, errUnbound
		}
		var v float64
		switch e.Op {
		case "+":
			v = lf + rf
		case "-":
			v = lf - rf
		case "*":
			v = lf * rf
		default:
			if rf == 0 {
				return rdf.Term{}, errUnbound
			}
			v = lf / rf
		}
		return numericResult(v, l, r, e.Op), nil
	}
	return rdf.Term{}, errUnbound
}

// ---- SELECT finalization ----

// termKey renders a term as an exact, collision-free map key.
func termKey(t rdf.Term, bound bool) string {
	if !bound {
		return "~"
	}
	var b strings.Builder
	b.WriteString(strconv.Itoa(int(t.Kind)))
	for _, s := range [3]string{t.Value, t.Lang, t.Datatype} {
		b.WriteString(strconv.Itoa(len(s)))
		b.WriteByte(':')
		b.WriteString(s)
	}
	return b.String()
}

func (re *refEvaluator) finishSelect(q *Query, sols []Solution) *Result {
	res := &Result{Kind: KindSelect, Namespaces: q.Namespaces}
	aggs := collectAggregates(q)
	if len(q.GroupBy) > 0 || len(aggs) > 0 {
		sols = re.groupAndAggregate(q, sols, aggs)
	}
	vars := projectionVars(q)
	res.Vars = vars
	extended := sols
	hasExprs := false
	for _, item := range q.Projection {
		if item.Expr != nil {
			hasExprs = true
			break
		}
	}
	if hasExprs {
		extended = make([]Solution, len(sols))
		for i, sol := range sols {
			ext := sol.clone()
			for _, item := range q.Projection {
				if item.Expr == nil {
					continue
				}
				if v, err := re.eval(item.Expr, ext); err == nil {
					ext[item.Var] = v
				}
			}
			extended[i] = ext
		}
	}
	// (No ORDER BY: the harness compares solution multisets, and without
	// LIMIT/OFFSET ordering cannot change the multiset.)
	projected := make([]Solution, len(extended))
	for i, sol := range extended {
		row := make(Solution, len(vars))
		for _, v := range vars {
			if t, ok := sol[v]; ok {
				row[v] = t
			}
		}
		projected[i] = row
	}
	if q.Distinct || q.Reduced {
		seen := make(map[string]bool, len(projected))
		var out []Solution
		for _, sol := range projected {
			var kb strings.Builder
			for _, v := range vars {
				t, ok := sol[v]
				kb.WriteString(termKey(t, ok))
				kb.WriteByte('|')
			}
			k := kb.String()
			if !seen[k] {
				seen[k] = true
				out = append(out, sol)
			}
		}
		projected = out
	}
	if q.Offset > 0 {
		if q.Offset >= len(projected) {
			projected = nil
		} else {
			projected = projected[q.Offset:]
		}
	}
	if q.Limit >= 0 && q.Limit < len(projected) {
		projected = projected[:q.Limit]
	}
	res.Solutions = projected
	return res
}

func (re *refEvaluator) groupAndAggregate(q *Query, sols []Solution, aggs []*AggExpr) []Solution {
	type groupData struct {
		key  Solution
		rows []Solution
	}
	groups := make(map[string]*groupData)
	var order []string
	for _, sol := range sols {
		var kb strings.Builder
		key := Solution{}
		for i, ge := range q.GroupBy {
			v, err := re.eval(ge, sol)
			bound := err == nil
			if bound {
				if ve, ok := ge.(*VarExpr); ok {
					key[ve.Name] = v
				} else {
					key[" gk"+strconv.Itoa(i)] = v
				}
			}
			kb.WriteString(termKey(v, bound))
			kb.WriteByte('|')
		}
		k := kb.String()
		gd, ok := groups[k]
		if !ok {
			gd = &groupData{key: key}
			groups[k] = gd
			order = append(order, k)
		}
		gd.rows = append(gd.rows, sol)
	}
	if len(q.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = &groupData{key: Solution{}}
		order = append(order, "")
	}
	var out []Solution
	for _, k := range order {
		gd := groups[k]
		row := gd.key.clone()
		for _, agg := range aggs {
			var values []rdf.Term
			for _, r := range gd.rows {
				if agg.Arg == nil {
					values = append(values, rdf.TrueLiteral)
					continue
				}
				if v, err := re.eval(agg.Arg, r); err == nil {
					values = append(values, v)
				}
			}
			if agg.Distinct {
				values = dedupTerms(values)
			}
			if v, ok := foldAggregate(agg.Name, agg.Sep, values); ok {
				row[agg.key] = v
			}
		}
		keep := true
		for _, h := range q.Having {
			ok, err := re.ebv(h, row)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out
}
