package sparql

import (
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Get returns the binding of var in row i, or the zero Term.
func (r *Result) Get(i int, varName string) rdf.Term {
	if i < 0 || i >= len(r.Solutions) {
		return rdf.Term{}
	}
	return r.Solutions[i][varName]
}

// Len returns the number of solution rows.
func (r *Result) Len() int { return len(r.Solutions) }

// Sort orders the solution rows deterministically by the projected
// variables (rdf.Compare per column, left to right; unbound sorts first).
// Without an ORDER BY clause the evaluator's row order is unspecified —
// it follows index iteration, which varies run to run — so renderers that
// need byte-stable output across runs and across parallelism settings
// sort before rendering. A no-op on ASK/CONSTRUCT/DESCRIBE results.
func (r *Result) Sort() {
	sort.SliceStable(r.Solutions, func(i, j int) bool {
		a, b := r.Solutions[i], r.Solutions[j]
		for _, v := range r.Vars {
			if c := rdf.Compare(a[v], b[v]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// Table renders SELECT results as an aligned text table using the query's
// prefixes, in the style the paper presents its listing outputs.
//
//feo:emit
func (r *Result) Table() string {
	if r.Kind == KindAsk {
		if r.Boolean {
			return "yes\n"
		}
		return "no\n"
	}
	cols := r.Vars
	widths := make([]int, len(cols))
	header := make([]string, len(cols))
	for i, c := range cols {
		header[i] = "?" + c
		widths[i] = len(header[i])
	}
	rows := make([][]string, 0, len(r.Solutions))
	for _, sol := range r.Solutions {
		row := make([]string, len(cols))
		for i, c := range cols {
			if t, ok := sol[c]; ok {
				row[i] = t.Compact(r.Namespaces)
			} else {
				row[i] = ""
			}
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Column returns all bindings of one variable across rows (unbound cells
// are skipped).
func (r *Result) Column(varName string) []rdf.Term {
	out := make([]rdf.Term, 0, len(r.Solutions))
	for _, sol := range r.Solutions {
		if t, ok := sol[varName]; ok {
			out = append(out, t)
		}
	}
	return out
}

// HasRow reports whether some row binds every given (var, term) pair. A
// zero Term in want requires the variable to be unbound in the row, and a
// row entry holding a zero Term counts as unbound — absent and
// explicitly-unbound variables are indistinguishable on both sides, so
// reference-evaluator comparisons (and callers probing OPTIONAL results)
// can use the same map regardless of how a row spelled "no binding".
func (r *Result) HasRow(want map[string]rdf.Term) bool {
	zero := rdf.Term{}
	for _, sol := range r.Solutions {
		match := true
		//feo:unordered // membership check only
		for v, t := range want {
			got, bound := sol[v]
			if got == zero {
				bound = false // an explicit zero binding means unbound
			}
			if t == zero {
				if bound {
					match = false
					break
				}
				continue
			}
			if !bound || got != t {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}
