package sparql

// Query rendering: Query.String() serializes a parsed query back to SPARQL
// source that this package's parser accepts, reaching a fixed point after
// one round trip (render(parse(render(q))) == render(q) — the property
// FuzzParseQuery enforces). Prefixes are expanded (terms render as absolute
// IRIs), and anonymous blank nodes — which the parser rewrites to internal
// variables — render as plain variables with a reserved ?_anonN name, so
// the rendered text is plain-variable SPARQL. The renderer is for
// diagnostics, corpus generation, and round-trip testing; it does not try
// to reproduce the original layout.

import (
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// String renders the query as parseable SPARQL source.
//
//feo:emit
func (q *Query) String() string {
	var b strings.Builder
	switch q.Kind {
	case KindSelect:
		b.WriteString("SELECT ")
		if q.Distinct {
			b.WriteString("DISTINCT ")
		} else if q.Reduced {
			b.WriteString("REDUCED ")
		}
		if len(q.Projection) == 0 {
			b.WriteString("*")
		} else {
			for i, item := range q.Projection {
				if i > 0 {
					b.WriteByte(' ')
				}
				if item.Expr != nil {
					b.WriteString("(" + renderExpr(item.Expr) + " AS " + renderVar(item.Var) + ")")
				} else {
					b.WriteString(renderVar(item.Var))
				}
			}
		}
	case KindAsk:
		b.WriteString("ASK")
	case KindConstruct:
		b.WriteString("CONSTRUCT { ")
		for _, tp := range q.Template {
			b.WriteString(renderTriple(tp) + " ")
		}
		b.WriteString("}")
	case KindDescribe:
		b.WriteString("DESCRIBE")
		for _, dt := range q.DescribeTerms {
			b.WriteByte(' ')
			b.WriteString(renderTermOrVar(dt))
		}
	}
	b.WriteString(" WHERE ")
	renderGroup(&b, q.Where)
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY")
		for _, ge := range q.GroupBy {
			b.WriteByte(' ')
			if ve, ok := ge.(*VarExpr); ok {
				b.WriteString(renderVar(ve.Name))
			} else {
				b.WriteString("(" + renderExpr(ge) + ")")
			}
		}
	}
	if len(q.Having) > 0 {
		b.WriteString(" HAVING")
		for _, h := range q.Having {
			b.WriteString(" (" + renderExpr(h) + ")")
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, oc := range q.OrderBy {
			if oc.Descending {
				b.WriteString(" DESC(" + renderExpr(oc.Expr) + ")")
			} else {
				b.WriteString(" ASC(" + renderExpr(oc.Expr) + ")")
			}
		}
	}
	if q.Limit >= 0 {
		b.WriteString(" LIMIT " + strconv.Itoa(q.Limit))
	}
	if q.Offset > 0 {
		b.WriteString(" OFFSET " + strconv.Itoa(q.Offset))
	}
	return b.String()
}

// renderVar maps internal anonymous-blank variables (" bnodeN") onto the
// reserved plain name ?_anonN; ordinary variables render as ?name.
func renderVar(name string) string {
	if rest, ok := strings.CutPrefix(name, " bnode"); ok {
		return "?_anon" + rest
	}
	return "?" + name
}

func renderTermOrVar(tv TermOrVar) string {
	if tv.IsVar {
		return renderVar(tv.Var)
	}
	return tv.Term.String()
}

func renderTriple(tp TriplePattern) string {
	p := ""
	if tp.Path != nil {
		p = renderPath(tp.Path)
	} else {
		p = renderTermOrVar(tp.P)
	}
	return renderTermOrVar(tp.S) + " " + p + " " + renderTermOrVar(tp.O) + " ."
}

func renderPath(p *Path) string {
	switch p.Kind {
	case PathIRI:
		return p.IRI.String()
	case PathSeq:
		return "(" + renderPath(p.Kids[0]) + "/" + renderPath(p.Kids[1]) + ")"
	case PathAlt:
		parts := make([]string, len(p.Kids))
		for i, kid := range p.Kids {
			parts[i] = renderPath(kid)
		}
		return "(" + strings.Join(parts, "|") + ")"
	case PathInverse:
		return "^(" + renderPath(p.Kids[0]) + ")"
	case PathZeroOrMore:
		return "(" + renderPath(p.Kids[0]) + ")*"
	case PathOneOrMore:
		return "(" + renderPath(p.Kids[0]) + ")+"
	case PathZeroOrOne:
		return "(" + renderPath(p.Kids[0]) + ")?"
	}
	return "<invalid-path>"
}

func renderGroup(b *strings.Builder, g *Group) {
	b.WriteString("{ ")
	if g != nil {
		for _, p := range g.Patterns {
			renderPattern(b, p)
			b.WriteByte(' ')
		}
		for _, f := range g.Filters {
			if ex, ok := f.(*ExistsExpr); ok {
				b.WriteString("FILTER " + renderExists(ex) + " ")
				continue
			}
			b.WriteString("FILTER (" + renderExpr(f) + ") ")
		}
	}
	b.WriteString("}")
}

func renderPattern(b *strings.Builder, p Pattern) {
	switch pat := p.(type) {
	case *BGP:
		for i, tp := range pat.Triples {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(renderTriple(tp))
		}
	case *Group:
		// The parser wraps every UNION in a singleton group (and nested
		// braces in general); unwrap filterless singletons so rendering is
		// a fixed point instead of growing a brace level per round trip.
		if len(pat.Patterns) == 1 && len(pat.Filters) == 0 {
			renderPattern(b, pat.Patterns[0])
			return
		}
		renderGroup(b, pat)
	case *Optional:
		b.WriteString("OPTIONAL ")
		renderGroup(b, pat.Pattern)
	case *Union:
		renderGroup(b, pat.Left)
		b.WriteString(" UNION ")
		renderGroup(b, pat.Right)
	case *Minus:
		b.WriteString("MINUS ")
		renderGroup(b, pat.Pattern)
	case *Bind:
		b.WriteString("BIND(" + renderExpr(pat.Expr) + " AS " + renderVar(pat.Var) + ")")
	case *InlineData:
		b.WriteString("VALUES (")
		for i, v := range pat.Vars {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(renderVar(v))
		}
		b.WriteString(") { ")
		for _, row := range pat.Rows {
			b.WriteString("(")
			for i, cell := range row {
				if i > 0 {
					b.WriteByte(' ')
				}
				if cell.Defined {
					b.WriteString(cell.Term.String())
				} else {
					b.WriteString("UNDEF")
				}
			}
			b.WriteString(") ")
		}
		b.WriteString("}")
	case *SubSelect:
		b.WriteString("{ ")
		b.WriteString(pat.Query.String())
		b.WriteString(" }")
	}
}

func renderExists(e *ExistsExpr) string {
	var b strings.Builder
	if e.Negated {
		b.WriteString("NOT ")
	}
	b.WriteString("EXISTS ")
	renderGroup(&b, e.Pattern)
	return b.String()
}

func renderExpr(e Expression) string {
	switch x := e.(type) {
	case *VarExpr:
		return renderVar(x.Name)
	case *ConstExpr:
		return x.Term.String()
	case *BinaryExpr:
		return "(" + renderExpr(x.Left) + " " + x.Op + " " + renderExpr(x.Right) + ")"
	case *UnaryExpr:
		return "(" + x.Op + renderExpr(x.Expr) + ")"
	case *FuncExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = renderExpr(a)
		}
		return x.Name + "(" + strings.Join(args, ", ") + ")"
	case *InExpr:
		items := make([]string, len(x.List))
		for i, item := range x.List {
			items[i] = renderExpr(item)
		}
		op := " IN ("
		if x.Negated {
			op = " NOT IN ("
		}
		return "(" + renderExpr(x.Expr) + op + strings.Join(items, ", ") + "))"
	case *AggExpr:
		var b strings.Builder
		b.WriteString(x.Name)
		b.WriteByte('(')
		if x.Distinct {
			b.WriteString("DISTINCT ")
		}
		if x.Arg == nil {
			b.WriteByte('*')
		} else {
			b.WriteString(renderExpr(x.Arg))
		}
		if x.Name == "GROUP_CONCAT" && x.Sep != " " {
			b.WriteString("; SEPARATOR=" + rdf.QuoteLiteral(x.Sep))
		}
		b.WriteByte(')')
		return b.String()
	case *ExistsExpr:
		return renderExists(x)
	}
	return "<invalid-expr>"
}
