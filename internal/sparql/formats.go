package sparql

import (
	"io"
)

// Materialized-result serialization. Each Write* method adapts the
// corresponding streaming writer in stream.go to an in-memory Result:
// the bytes are produced row by row through the exact code path
// ExecuteStream feeds live, so the two paths cannot drift. Memory here
// is O(row) over and above the Result the caller already holds.

// writeAll drains a Result through one streaming writer.
func (r *Result) writeAll(rw ResultWriter) error {
	if r.Kind == KindAsk {
		return rw.Boolean(r.Boolean)
	}
	if err := rw.Begin(r.Vars); err != nil {
		return err
	}
	for _, sol := range r.Solutions {
		if err := rw.Row(sol); err != nil {
			return err
		}
	}
	return rw.End(nil)
}

// WriteJSON serializes SELECT/ASK results in the W3C "SPARQL 1.1 Query
// Results JSON Format" (application/sparql-results+json).
//
//feo:emit
func (r *Result) WriteJSON(w io.Writer) error { return r.writeAll(NewJSONWriter(w)) }

// WriteCSV serializes SELECT results in the W3C SPARQL 1.1 CSV format
// (text/csv): header row of variable names, plain lexical values, CRLF
// record endings per RFC 4180.
//
//feo:emit
func (r *Result) WriteCSV(w io.Writer) error { return r.writeAll(NewCSVWriter(w)) }

// WriteTSV serializes SELECT results in the W3C SPARQL 1.1 TSV format
// (text/tab-separated-values): terms in full N-Triples syntax.
//
//feo:emit
func (r *Result) WriteTSV(w io.Writer) error { return r.writeAll(NewTSVWriter(w)) }

// WriteXML serializes SELECT/ASK results in the W3C "SPARQL Query Results
// XML Format" (application/sparql-results+xml).
//
//feo:emit
func (r *Result) WriteXML(w io.Writer) error { return r.writeAll(NewXMLWriter(w)) }
