package sparql

import (
	"encoding/csv"
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
)

// WriteJSON serializes SELECT/ASK results in the W3C "SPARQL 1.1 Query
// Results JSON Format" (application/sparql-results+json).
//
//feo:emit
func (r *Result) WriteJSON(w io.Writer) error {
	type jsonTerm struct {
		Type     string `json:"type"`
		Value    string `json:"value"`
		Lang     string `json:"xml:lang,omitempty"`
		Datatype string `json:"datatype,omitempty"`
	}
	doc := struct {
		Head struct {
			Vars []string `json:"vars"`
		} `json:"head"`
		Boolean *bool `json:"boolean,omitempty"`
		Results *struct {
			Bindings []map[string]jsonTerm `json:"bindings"`
		} `json:"results,omitempty"`
	}{}
	doc.Head.Vars = r.Vars
	if r.Kind == KindAsk {
		v := r.Boolean
		doc.Boolean = &v
	} else {
		doc.Results = &struct {
			Bindings []map[string]jsonTerm `json:"bindings"`
		}{Bindings: make([]map[string]jsonTerm, 0, len(r.Solutions))}
		for _, sol := range r.Solutions {
			row := make(map[string]jsonTerm, len(sol))
			for _, v := range r.Vars {
				t, ok := sol[v]
				if !ok {
					continue
				}
				jt := jsonTerm{Value: t.Value}
				switch {
				case t.IsIRI():
					jt.Type = "uri"
				case t.IsBlank():
					jt.Type = "bnode"
				default:
					jt.Type = "literal"
					jt.Lang = t.Lang
					if t.Lang == "" && t.Datatype != "" && t.Datatype != rdf.XSDString {
						jt.Datatype = t.Datatype
					}
				}
				row[v] = jt
			}
			doc.Results.Bindings = append(doc.Results.Bindings, row)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteCSV serializes SELECT results in the W3C SPARQL 1.1 CSV format
// (text/csv): header row of variable names, plain lexical values.
//
//feo:emit
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Vars); err != nil {
		return err
	}
	row := make([]string, len(r.Vars))
	for _, sol := range r.Solutions {
		for i, v := range r.Vars {
			if t, ok := sol[v]; ok {
				row[i] = t.Value
			} else {
				row[i] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTSV serializes SELECT results in the W3C SPARQL 1.1 TSV format
// (text/tab-separated-values): terms in full N-Triples syntax.
//
//feo:emit
func (r *Result) WriteTSV(w io.Writer) error {
	var b strings.Builder
	for i, v := range r.Vars {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteString("?" + v)
	}
	b.WriteByte('\n')
	for _, sol := range r.Solutions {
		for i, v := range r.Vars {
			if i > 0 {
				b.WriteByte('\t')
			}
			if t, ok := sol[v]; ok {
				b.WriteString(t.String())
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteXML serializes SELECT/ASK results in the W3C "SPARQL Query Results
// XML Format" (application/sparql-results+xml).
//
//feo:emit
func (r *Result) WriteXML(w io.Writer) error {
	var b strings.Builder
	b.WriteString(xml.Header)
	b.WriteString(`<sparql xmlns="http://www.w3.org/2005/sparql-results#">` + "\n")
	b.WriteString("  <head>\n")
	for _, v := range r.Vars {
		b.WriteString(`    <variable name="` + escapeXML(v) + `"/>` + "\n")
	}
	b.WriteString("  </head>\n")
	if r.Kind == KindAsk {
		fmt.Fprintf(&b, "  <boolean>%t</boolean>\n", r.Boolean)
	} else {
		b.WriteString("  <results>\n")
		for _, sol := range r.Solutions {
			b.WriteString("    <result>\n")
			for _, v := range r.Vars {
				t, ok := sol[v]
				if !ok {
					continue
				}
				b.WriteString(`      <binding name="` + escapeXML(v) + `">`)
				switch {
				case t.IsIRI():
					b.WriteString("<uri>" + escapeXML(t.Value) + "</uri>")
				case t.IsBlank():
					b.WriteString("<bnode>" + escapeXML(t.Value) + "</bnode>")
				default:
					b.WriteString("<literal")
					if t.Lang != "" {
						b.WriteString(` xml:lang="` + escapeXML(t.Lang) + `"`)
					} else if t.Datatype != "" && t.Datatype != rdf.XSDString {
						b.WriteString(` datatype="` + escapeXML(t.Datatype) + `"`)
					}
					b.WriteString(">" + escapeXML(t.Value) + "</literal>")
				}
				b.WriteString("</binding>\n")
			}
			b.WriteString("    </result>\n")
		}
		b.WriteString("  </results>\n")
	}
	b.WriteString("</sparql>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escapeXML(s string) string {
	var b strings.Builder
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}
