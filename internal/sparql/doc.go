// Package sparql implements the subset of SPARQL 1.1 that the FEO paper's
// competency-question queries (Listings 1-3) and the extension explanation
// types require: SELECT/ASK/CONSTRUCT/DESCRIBE forms, basic graph patterns,
// FILTER with the standard operator and builtin-function library,
// FILTER (NOT) EXISTS, OPTIONAL, UNION, MINUS, BIND, VALUES, property paths
// (sequence, alternative, inverse, +, *, ?), DISTINCT/REDUCED, GROUP BY with
// aggregates, HAVING, ORDER BY, and LIMIT/OFFSET.
//
// The engine evaluates against a store.Graph; run the reasoner first to
// query the inferred closure, exactly as the paper exports inferred axioms
// from Pellet before querying.
//
// # ID-space solution representation
//
// Internally the evaluator never works on the public map-based Solution.
// Before execution, every variable the query can mention — pattern
// positions, BIND/VALUES targets, SELECT aliases, subquery and EXISTS-body
// variables, the planner's internal aggregate and group keys — is assigned
// a dense slot (idspace.go), and an intermediate solution is an idRow: a
// fixed-width []store.ID with store.NoID marking unbound slots. Every
// operator — BGP joins, UNION, OPTIONAL/MINUS probes, EXISTS, FILTER,
// property paths, BIND, VALUES, subqueries, GROUP BY/aggregation,
// ORDER BY, DISTINCT — consumes and produces idRows; joining is integer
// comparison and extending a binding is a small copy-on-write memcopy.
// The public map[string]rdf.Term Solutions materialize exactly once per
// projected result row, at the end of finishSelect (ExecuteUpdate's
// template instantiation likewise consumes ID rows directly).
//
// Terms that exist only inside a query — expression results, VALUES
// constants the graph never interned — get query-local "extension" IDs
// growing downward from just below store.NoID. They can never collide
// with graph IDs, graph index probes against them simply miss, and ID
// equality remains exact RDF term identity across both ranges.
//
// # The lazy-decode rule
//
// A term is decoded from its ID only when something needs its lexical
// form: a FILTER expression reading a slot, ORDER BY comparisons,
// CONSTRUCT/DESCRIBE instantiation, update templates, and final result
// materialization. Operators that only move bindings around (joins,
// UNION, MINUS, projection, DISTINCT — which dedups on slot IDs) decode
// nothing; BOUND and the single-pattern EXISTS fast path touch no term at
// all. Property-path reachability is memoized per (path, endpoint ID)
// with the endpoint decoded once per memo fill, never per row.
//
// # Plan cache
//
// Compiling a basic graph pattern — estimating selectivities, picking the
// greedy join order, encoding constant IDs, segmenting the ordered
// patterns into fused bitmap-intersection runs — depends only on the
// pattern list, the graph snapshot, and which slots are certainly bound
// at entry. planBGP therefore memoizes compiled plans process-wide, keyed
// by (BGP identity, graph identity, Graph.Version, bound-slot set).
// Invalidation is by construction: every mutation bumps Graph.Version, so
// a stale plan's key can never be looked up again; on overflow the
// bounded cache evicts those unreachable stale entries first.
// PlanCacheStats exposes hit/miss counters and ResetPlanCache gives
// benchmarks a cold start. Run additionally
// memoizes parses by source text, so a serve-time request stream of
// repeated query strings reuses one immutable parse tree — the BGP
// identity the plan cache keys on. DisableJoinReorder bypasses the cache
// (knob-shaped plans are never stored).
//
// # Streaming results
//
// ExecuteStream/RunStream feed SELECT and ASK results into a
// ResultWriter row by row. The contract has two sides:
//
// Memory. The evaluator may still materialize the intermediate ID-row
// set (ORDER BY, DISTINCT, and aggregation need it), but everything
// downstream is O(row): each projected Solution map is built, serialized
// through a small fixed-size buffer, and released before the next row is
// touched. No writer accumulates the result — there is no O(result)
// strings.Builder or binding slice anywhere on the emission path, so a
// million-row SELECT streams in constant serialization memory.
// WriteJSON/WriteCSV/WriteTSV/WriteXML on Result are thin adapters over
// the same writers (formats.go), so both paths emit identical bytes.
//
// Limits. StreamOptions bounds a query three ways: MaxRows and MaxBytes
// truncate the emission, and Deadline cancels evaluation cooperatively —
// a per-row atomic flag polled inside the join loops, the path BFS, and
// the filter workers, never a panic (the parallel workers have no
// recover). A deadline that fires before the first byte returns
// ErrDeadlineExceeded so callers can still send a clean error; any limit
// that trips after emission began instead ends the document well-formed
// with a Truncation (JSON's "truncated" member, an XML comment, or the
// caller's out-of-band channel for CSV/TSV). CONSTRUCT/DESCRIBE are
// graph-shaped and return ErrGraphResult up front.
//
// Every writer's emission path is marked //feo:emit: output bytes must be
// a pure function of the result sequence, so no writer may range over a
// map (Solution maps are ordered via the head's variable list) or consult
// clocks, randomness, or pointer identity. feovet's mapdeterminism pass
// enforces the map half of that obligation at compile time.
//
// # Correctness harness
//
// The ID pipeline, the planner, and the caches are locked in by a
// randomized reference-equivalence harness (reference_test.go,
// equivalence_test.go): a deliberately naive term-level evaluator —
// nested-loop joins in written order, no reordering, no fusion, no
// caching, no parallelism — must produce the same solution multiset as
// the production engine on generated graphs and queries, at parallelism
// 1/2/4/GOMAXPROCS, with cold and warm plans, across interleaved
// mutations. FuzzParseQuery additionally holds the parser and the
// renderer ((*Query).String) to a round-trip fixed point.
package sparql
