package sparql

import (
	"strconv"

	"repro/internal/rdf"
	"repro/internal/store"
)

// This file holds the internal ID-space solution representation: fixed-slot
// rows of dictionary IDs plus the per-query variable→slot binding table.
//
// Every variable the query can ever mention — pattern positions, BIND and
// VALUES targets, SELECT aliases, the planner's internal aggregate and
// group-key bindings, variables of nested subqueries and EXISTS bodies —
// is assigned one dense slot before evaluation starts. An intermediate
// solution is then an idRow: a []store.ID of exactly that width, with
// store.NoID marking an unbound slot. Extending a binding is a small
// memcopy plus a store; joining is integer comparison; no term is hashed
// or decoded on the hot path. The public map[string]rdf.Term Solution is
// materialized exactly once per projected result row, at the very end of
// finishSelect.
//
// Terms that exist only inside the query — BIND/projection expression
// results, VALUES constants, aggregate outputs — have no graph-dictionary
// ID. The evalContext interns them in a query-local extension dictionary
// whose IDs grow downward from just below store.NoID, so they can never
// collide with graph IDs, graph index probes against them simply miss
// (map lookup and bitmap Contains of an absent ID), and ID equality
// remains exactly RDF term identity across both ID ranges.

// idRow is one intermediate solution in ID space: one slot per query
// variable, store.NoID where unbound. Rows are extended copy-on-write —
// every operator clones a row before writing to it — so a row handed to a
// sub-evaluation (an OPTIONAL probe, an EXISTS body) is never mutated.
type idRow []store.ID

// slotEnv is the per-query variable→slot binding table.
type slotEnv struct {
	slots map[string]int
	names []string
}

// slot returns the slot of name, or -1 when the query never mentions it.
//
//feo:idspace
func (e *slotEnv) slot(name string) int {
	if i, ok := e.slots[name]; ok {
		return i
	}
	return -1
}

// width returns the fixed row width (number of assigned slots).
func (e *slotEnv) width() int { return len(e.names) }

func (e *slotEnv) add(name string) {
	if name == "" {
		return
	}
	if _, ok := e.slots[name]; ok {
		return
	}
	e.slots[name] = len(e.names)
	e.names = append(e.names, name)
}

// buildQueryEnv assigns a slot to every variable q can bind or read, in a
// deterministic walk order (so equal parse trees get equal slot layouts).
func buildQueryEnv(q *Query) *slotEnv {
	env := &slotEnv{slots: make(map[string]int)}
	addQueryVars(q, env.add)
	return env
}

// buildUpdateEnv assigns slots for one update operation: its WHERE clause
// plus the variables of its delete/insert templates.
func buildUpdateEnv(op *UpdateOperation) *slotEnv {
	env := &slotEnv{slots: make(map[string]int)}
	if op.Where != nil {
		addGroupVars(op.Where, env.add)
	}
	for _, tmpl := range [2][]TriplePattern{op.Delete, op.Insert} {
		for _, tp := range tmpl {
			for _, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
				if tv.IsVar {
					env.add(tv.Var)
				}
			}
		}
	}
	return env
}

func addQueryVars(q *Query, add func(string)) {
	for _, item := range q.Projection {
		add(item.Var)
		if item.Expr != nil {
			addExprVars(item.Expr, add)
		}
	}
	for _, dt := range q.DescribeTerms {
		if dt.IsVar {
			add(dt.Var)
		}
	}
	if q.Where != nil {
		addGroupVars(q.Where, add)
	}
	for i, ge := range q.GroupBy {
		if _, isVar := ge.(*VarExpr); !isVar {
			add(" gk" + strconv.Itoa(i))
		}
		addExprVars(ge, add)
	}
	for _, h := range q.Having {
		addExprVars(h, add)
	}
	for _, oc := range q.OrderBy {
		addExprVars(oc.Expr, add)
	}
}

func addGroupVars(g *Group, add func(string)) {
	if g == nil {
		return
	}
	for _, p := range g.Patterns {
		addPatternVars(p, add)
	}
	for _, f := range g.Filters {
		addExprVars(f, add)
	}
}

func addPatternVars(p Pattern, add func(string)) {
	switch pat := p.(type) {
	case *BGP:
		for _, tp := range pat.Triples {
			for _, tv := range [3]TermOrVar{tp.S, tp.P, tp.O} {
				if tv.IsVar {
					add(tv.Var)
				}
			}
		}
	case *Group:
		addGroupVars(pat, add)
	case *Optional:
		addGroupVars(pat.Pattern, add)
	case *Union:
		addGroupVars(pat.Left, add)
		addGroupVars(pat.Right, add)
	case *Minus:
		addGroupVars(pat.Pattern, add)
	case *Bind:
		add(pat.Var)
		addExprVars(pat.Expr, add)
	case *InlineData:
		for _, v := range pat.Vars {
			add(v)
		}
	case *SubSelect:
		if pat.Query != nil {
			addQueryVars(pat.Query, add)
		}
	}
}

// addExprVars adds every variable an expression can read or carry,
// including the planner's internal aggregate keys and the variables of
// nested EXISTS bodies — the slot table must cover anything Eval can see.
func addExprVars(e Expression, add func(string)) {
	switch x := e.(type) {
	case *VarExpr:
		add(x.Name)
	case *BinaryExpr:
		addExprVars(x.Left, add)
		addExprVars(x.Right, add)
	case *UnaryExpr:
		addExprVars(x.Expr, add)
	case *FuncExpr:
		for _, a := range x.Args {
			addExprVars(a, add)
		}
	case *InExpr:
		addExprVars(x.Expr, add)
		for _, a := range x.List {
			addExprVars(a, add)
		}
	case *AggExpr:
		add(x.key)
		if x.Arg != nil {
			addExprVars(x.Arg, add)
		}
	case *ExistsExpr:
		addGroupVars(x.Pattern, add)
	}
}

// newRow returns a fresh all-unbound row of the query's width.
func (ec *evalContext) newRow() idRow {
	r := make(idRow, ec.env.width())
	for i := range r {
		r[i] = store.NoID
	}
	return r
}

func cloneRow(r idRow) idRow {
	out := make(idRow, len(r))
	copy(out, r)
	return out
}

// encodeTerm returns the ID of t: the graph dictionary's when the graph
// knows the term, otherwise a query-local extension ID (interned under the
// context lock — extension terms are the rare case: expression results and
// VALUES constants, never triple matches).
func (ec *evalContext) encodeTerm(t rdf.Term) store.ID {
	if id, ok := ec.g.LookupID(t); ok {
		return id
	}
	ec.mu.Lock()
	defer ec.mu.Unlock()
	if id, ok := ec.extIDs[t]; ok {
		return id
	}
	id := store.NoID - 1 - store.ID(len(ec.extTerms))
	if ec.extIDs == nil {
		ec.extIDs = make(map[rdf.Term]store.ID)
	}
	ec.extTerms = append(ec.extTerms, t)
	ec.extIDs[t] = id
	return id
}

// termOf decodes an ID from either range: graph IDs resolve through the
// (lock-free) graph dictionary, extension IDs through the query-local
// table. This is the only decode path row values may take — g.TermOf
// would panic on an extension ID.
func (ec *evalContext) termOf(id store.ID) rdf.Term {
	if int64(id) < int64(ec.dictLen) {
		return ec.g.TermOf(id)
	}
	ec.mu.Lock()
	idx := int(store.NoID - 1 - id)
	if idx >= 0 && idx < len(ec.extTerms) {
		t := ec.extTerms[idx]
		ec.mu.Unlock()
		return t
	}
	ec.mu.Unlock()
	// An ID above the snapshot's dictionary length that is not an
	// extension ID: the graph grew mid-query (a reader-contract
	// violation); degrade to the live dictionary rather than panic.
	return ec.g.TermOf(id)
}

// valueOf resolves a variable against a row, decoding lazily.
func (ec *evalContext) valueOf(r idRow, name string) (rdf.Term, bool) {
	s := ec.env.slot(name)
	if s < 0 || r[s] == store.NoID {
		return rdf.Term{}, false
	}
	return ec.termOf(r[s]), true
}

// encodeTerms maps a term list through encodeTerm.
func (ec *evalContext) encodeTerms(ts []rdf.Term) []store.ID {
	out := make([]store.ID, len(ts))
	for i, t := range ts {
		out[i] = ec.encodeTerm(t)
	}
	return out
}

// certainSlots reports, per slot, whether every row binds it (all false
// for an empty row set).
func (ec *evalContext) certainSlots(rows []idRow) []bool {
	w := ec.env.width()
	out := make([]bool, w)
	if len(rows) == 0 {
		return out
	}
	for s := 0; s < w; s++ {
		bound := true
		for _, r := range rows {
			if r[s] == store.NoID {
				bound = false
				break
			}
		}
		out[s] = bound
	}
	return out
}

// varsBoundInAllRows is certainSlots keyed by variable name, the form the
// filter-pushdown analysis consumes.
func (ec *evalContext) varsBoundInAllRows(rows []idRow) map[string]bool {
	out := make(map[string]bool)
	if len(rows) == 0 {
		return out
	}
	for slot, bound := range ec.certainSlots(rows) {
		if bound {
			out[ec.env.names[slot]] = true
		}
	}
	return out
}

// mergeRows joins two rows when their shared slots agree. The merged row
// shares a's backing array when b adds nothing new (rows are copy-on-write
// everywhere, so sharing is safe).
func mergeRows(a, b idRow) (idRow, bool) {
	out := a
	cloned := false
	for s, v := range b {
		if v == store.NoID {
			continue
		}
		if a[s] != store.NoID {
			if a[s] != v {
				return nil, false
			}
			continue
		}
		if !cloned {
			out = cloneRow(a)
			cloned = true
		}
		out[s] = v
	}
	return out, true
}
