package sparql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
	"repro/internal/store"
)

// UpdateKind discriminates SPARQL 1.1 Update operations.
type UpdateKind int

// Supported update forms.
const (
	UpdateInsertData UpdateKind = iota
	UpdateDeleteData
	UpdateDeleteWhere
	UpdateModify // DELETE {} INSERT {} WHERE {}
	UpdateClear
)

// Update is a parsed SPARQL Update request (one or more operations
// separated by ';').
type Update struct {
	Operations []UpdateOperation
	Namespaces *rdf.Namespaces
}

// UpdateOperation is a single update operation.
type UpdateOperation struct {
	Kind   UpdateKind
	Insert []TriplePattern
	Delete []TriplePattern
	Where  *Group
}

// UpdateResult reports what an update changed.
type UpdateResult struct {
	Inserted int
	Deleted  int
	// StaleInferred lists previously inferred triples whose recorded
	// derivation lost at least one premise to this update's deletions.
	// Forward-chaining materialization is monotonic — such inferences stay
	// in the graph — so inference-aware layers surface them here instead of
	// silently serving stale proofs. The SPARQL executor itself never fills
	// this field; feo.Session.Update does, from the reasoner's derivation
	// trace.
	StaleInferred []rdf.Triple
}

// String renders the result for CLI output.
func (r UpdateResult) String() string {
	if n := len(r.StaleInferred); n > 0 {
		return fmt.Sprintf("inserted %d, deleted %d (%d inference(s) lost a premise and may be stale)",
			r.Inserted, r.Deleted, n)
	}
	return fmt.Sprintf("inserted %d, deleted %d", r.Inserted, r.Deleted)
}

// ParseUpdate parses a SPARQL 1.1 Update request supporting INSERT DATA,
// DELETE DATA, DELETE WHERE, DELETE/INSERT ... WHERE, and CLEAR.
func ParseUpdate(src string) (*Update, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks, ns: rdf.StandardNamespaces()}
	if err := p.parsePrologue(); err != nil {
		return nil, err
	}
	u := &Update{Namespaces: p.ns}
	for {
		op, err := p.parseUpdateOperation()
		if err != nil {
			return nil, err
		}
		u.Operations = append(u.Operations, op)
		if !p.acceptPunct(";") {
			break
		}
		// Allow a trailing ';'.
		if p.cur().kind == tokEOF {
			break
		}
		// Each operation may repeat the prologue per the SPARQL grammar.
		if err := p.parsePrologue(); err != nil {
			return nil, err
		}
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %s", p.cur())
	}
	return u, nil
}

func (p *qparser) parseUpdateOperation() (UpdateOperation, error) {
	switch {
	case p.acceptKeyword("INSERT"):
		if p.acceptKeyword("DATA") {
			tmpl, err := p.parseQuadData(true)
			if err != nil {
				return UpdateOperation{}, err
			}
			return UpdateOperation{Kind: UpdateInsertData, Insert: tmpl}, nil
		}
		// INSERT {} WHERE {}
		tmpl, err := p.parseQuadData(false)
		if err != nil {
			return UpdateOperation{}, err
		}
		p.acceptKeyword("WHERE")
		w, err := p.parseGroupGraphPattern()
		if err != nil {
			return UpdateOperation{}, err
		}
		return UpdateOperation{Kind: UpdateModify, Insert: tmpl, Where: w}, nil
	case p.acceptKeyword("DELETE"):
		if p.acceptKeyword("DATA") {
			tmpl, err := p.parseQuadData(true)
			if err != nil {
				return UpdateOperation{}, err
			}
			return UpdateOperation{Kind: UpdateDeleteData, Delete: tmpl}, nil
		}
		if p.acceptKeyword("WHERE") {
			w, err := p.parseGroupGraphPattern()
			if err != nil {
				return UpdateOperation{}, err
			}
			tmpl := patternTriples(w)
			if tmpl == nil {
				return UpdateOperation{}, p.errf("DELETE WHERE requires a plain triple pattern")
			}
			return UpdateOperation{Kind: UpdateDeleteWhere, Delete: tmpl, Where: w}, nil
		}
		del, err := p.parseQuadData(false)
		if err != nil {
			return UpdateOperation{}, err
		}
		var ins []TriplePattern
		if p.acceptKeyword("INSERT") {
			ins, err = p.parseQuadData(false)
			if err != nil {
				return UpdateOperation{}, err
			}
		}
		p.acceptKeyword("WHERE")
		w, err := p.parseGroupGraphPattern()
		if err != nil {
			return UpdateOperation{}, err
		}
		return UpdateOperation{Kind: UpdateModify, Delete: del, Insert: ins, Where: w}, nil
	case p.acceptKeyword("CLEAR"):
		// Accept and ignore an optional ALL keyword (arrives as a pname).
		if p.cur().kind == tokPName && strings.EqualFold(p.cur().text, "ALL") {
			p.next()
		}
		return UpdateOperation{Kind: UpdateClear}, nil
	default:
		return UpdateOperation{}, p.errf("expected INSERT, DELETE, or CLEAR, found %s", p.cur())
	}
}

// parseQuadData parses '{ triples }'. ground=true rejects variables
// (INSERT/DELETE DATA must be concrete).
func (p *qparser) parseQuadData(ground bool) ([]TriplePattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []TriplePattern
	for !p.isPunct("}") {
		tps, err := p.parseTriplesSameSubject()
		if err != nil {
			return nil, err
		}
		out = append(out, tps...)
		if !p.acceptPunct(".") {
			break
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	if ground {
		for _, tp := range out {
			if tp.S.IsVar || tp.P.IsVar || tp.O.IsVar || tp.Path != nil {
				return nil, p.errf("variables are not allowed in DATA blocks")
			}
		}
	}
	for _, tp := range out {
		if tp.Path != nil {
			return nil, p.errf("property paths are not allowed in update templates")
		}
	}
	return out, nil
}

// patternTriples extracts the triple patterns of a group consisting solely
// of BGPs (for DELETE WHERE), or nil if the group has other pattern kinds.
func patternTriples(g *Group) []TriplePattern {
	var out []TriplePattern
	if len(g.Filters) > 0 {
		return nil
	}
	for _, p := range g.Patterns {
		bgp, ok := p.(*BGP)
		if !ok {
			return nil
		}
		for _, tp := range bgp.Triples {
			if tp.Path != nil {
				return nil
			}
		}
		out = append(out, bgp.Triples...)
	}
	return out
}

// ExecuteUpdate applies a parsed update to the graph and reports the
// number of triples inserted and deleted. Operations run in order; each
// operation's WHERE clause is evaluated against the graph state left by
// the previous operation. Deletions are applied before insertions within
// one operation, per the SPARQL Update semantics.
func ExecuteUpdate(g *store.Graph, u *Update) (UpdateResult, error) {
	var res UpdateResult
	for _, op := range u.Operations {
		// Fresh context per operation: evalContext memoizes path
		// reachability under the assumption the graph does not change
		// mid-evaluation, and earlier operations may have mutated it.
		// gver pins that snapshot so the memo stays live for the WHERE
		// evaluation (and self-bypasses if the graph somehow mutates under
		// it). Deliberately built without a worker budget (nil sem, never
		// parallel): updates interleave pattern matching with mutation,
		// which the store's reader contract forbids running concurrently.
		op := op
		ec := &evalContext{g: g, gver: g.Version(), dictLen: g.Dict().Len(), env: buildUpdateEnv(&op)}
		switch op.Kind {
		case UpdateInsertData:
			for _, tp := range op.Insert {
				if g.Add(tp.S.Term, tp.P.Term, tp.O.Term) {
					res.Inserted++
				}
			}
		case UpdateDeleteData:
			for _, tp := range op.Delete {
				if g.Remove(tp.S.Term, tp.P.Term, tp.O.Term) {
					res.Deleted++
				}
			}
		case UpdateDeleteWhere, UpdateModify:
			rows := ec.evalGroupRows(op.Where, []idRow{ec.newRow()})
			// Materialize both sets (decoding the ID rows) before mutating.
			var toDelete, toInsert []rdf.Triple
			for _, r := range rows {
				for _, tp := range op.Delete {
					if t, ok := ec.instantiateTripleRow(tp, r); ok {
						toDelete = append(toDelete, t)
					}
				}
				for _, tp := range op.Insert {
					if t, ok := ec.instantiateTripleRow(tp, r); ok {
						toInsert = append(toInsert, t)
					}
				}
			}
			for _, t := range toDelete {
				if g.Remove(t.S, t.P, t.O) {
					res.Deleted++
				}
			}
			for _, t := range toInsert {
				if g.AddTriple(t) {
					res.Inserted++
				}
			}
		case UpdateClear:
			res.Deleted += g.Len()
			g.Clear()
		}
	}
	return res, nil
}

// instantiateTripleRow fills an update template from one ID row, decoding
// each bound slot exactly once per instantiated position.
func (ec *evalContext) instantiateTripleRow(tp TriplePattern, r idRow) (rdf.Triple, bool) {
	resolvePos := func(tv TermOrVar) (rdf.Term, bool) {
		if !tv.IsVar {
			return tv.Term, true
		}
		return ec.valueOf(r, tv.Var)
	}
	s, ok1 := resolvePos(tp.S)
	p, ok2 := resolvePos(tp.P)
	o, ok3 := resolvePos(tp.O)
	if !ok1 || !ok2 || !ok3 {
		return rdf.Triple{}, false
	}
	t := rdf.Triple{S: s, P: p, O: o}
	return t, t.Valid()
}

// RunUpdate parses and executes an update request in one call.
func RunUpdate(g *store.Graph, src string) (UpdateResult, error) {
	u, err := ParseUpdate(src)
	if err != nil {
		return UpdateResult{}, err
	}
	return ExecuteUpdate(g, u)
}
