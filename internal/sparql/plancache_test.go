package sparql

// Plan-cache behavior tests: hits on repeated execution, invalidation on
// every mutation path that bumps Graph.Version (Add, Remove, Clear, and
// the reasoner's materialization), and -race-clean concurrent Execute
// while the cache populates.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/store"
)

func planCacheGraph() *store.Graph {
	g := store.New()
	p := rdf.NewIRI("http://e/p")
	q := rdf.NewIRI("http://e/q")
	cls := rdf.NewIRI("http://e/C")
	for i := 0; i < 12; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://e/s%d", i))
		g.Add(s, p, rdf.NewInt(int64(i)))
		g.Add(s, q, rdf.NewIRI(fmt.Sprintf("http://e/s%d", (i+1)%12)))
		g.Add(s, rdf.TypeIRI, cls)
	}
	return g
}

const planCacheQuery = `SELECT ?s ?v WHERE { ?s a <http://e/C> . ?s <http://e/p> ?v . ?s <http://e/q> ?t }`

// TestPlanCacheHitOnRepeat: the first execution compiles (miss), every
// repeat on the unchanged graph reuses the compiled plan (hits, no new
// misses).
func TestPlanCacheHitOnRepeat(t *testing.T) {
	ResetPlanCache()
	g := planCacheGraph()
	q, err := ParseQuery(planCacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(g, q); err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := PlanCacheStats()
	if misses0 == 0 {
		t.Fatal("first execution should compile at least one plan (miss)")
	}
	for i := 0; i < 3; i++ {
		if _, err := Execute(g, q); err != nil {
			t.Fatal(err)
		}
	}
	hits1, misses1 := PlanCacheStats()
	if misses1 != misses0 {
		t.Errorf("repeat executions recompiled plans: misses %d -> %d", misses0, misses1)
	}
	if hits1 <= hits0 {
		t.Errorf("repeat executions did not hit the cache: hits %d -> %d", hits0, hits1)
	}
}

// TestPlanCacheInvalidation: every mutation path that bumps
// Graph.Version must force a recompile on the next execution — and the
// recompiled plan must see the new data.
func TestPlanCacheInvalidation(t *testing.T) {
	g := planCacheGraph()
	q, err := ParseQuery(planCacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	mutate := []struct {
		name string
		do   func()
	}{
		{"add", func() { g.Add(rdf.NewIRI("http://e/new"), rdf.TypeIRI, rdf.NewIRI("http://e/C")) }},
		{"remove", func() { g.Remove(rdf.NewIRI("http://e/new"), rdf.TypeIRI, rdf.NewIRI("http://e/C")) }},
		{"reasoner", func() {
			g.Add(rdf.NewIRI("http://e/C"), rdf.NewIRI(rdf.RDFSNS+"subClassOf"), rdf.NewIRI("http://e/Super"))
			reasoner.New(reasoner.Options{}).Materialize(g)
		}},
		{"clear", func() { g.Clear() }},
	}
	ResetPlanCache()
	if _, err := Execute(g, q); err != nil {
		t.Fatal(err)
	}
	for _, m := range mutate {
		t.Run(m.name, func(t *testing.T) {
			before := g.Version()
			m.do()
			if g.Version() == before {
				t.Fatalf("%s did not bump Graph.Version", m.name)
			}
			_, misses0 := PlanCacheStats()
			res, err := Execute(g, q)
			if err != nil {
				t.Fatal(err)
			}
			_, misses1 := PlanCacheStats()
			if misses1 <= misses0 {
				t.Errorf("%s: execution after mutation must recompile (misses %d -> %d)", m.name, misses0, misses1)
			}
			// The recompiled plan serves the mutated graph, not the old one.
			want := refExecute(g, q)
			assertSameResult(t, m.name, planCacheQuery, want, res)
		})
	}
}

// TestPlanCacheDisabledWithJoinReorderOff: the A/B knob bypasses the
// cache entirely (plans under the knob have a different shape and must
// not pollute or read the keyed entries).
func TestPlanCacheDisabledWithJoinReorderOff(t *testing.T) {
	ResetPlanCache()
	g := planCacheGraph()
	q, err := ParseQuery(planCacheQuery)
	if err != nil {
		t.Fatal(err)
	}
	DisableJoinReorder = true
	defer func() { DisableJoinReorder = false }()
	for i := 0; i < 2; i++ {
		if _, err := Execute(g, q); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := PlanCacheStats()
	if hits != 0 || misses != 0 {
		t.Errorf("DisableJoinReorder executions touched the plan cache (hits=%d misses=%d)", hits, misses)
	}
}

// TestPlanCacheConcurrentPopulation: many goroutines execute a query mix
// against one graph starting from a cold cache. Run under -race in CI;
// results must match the single-threaded reference regardless of which
// goroutine won each LoadOrStore.
func TestPlanCacheConcurrentPopulation(t *testing.T) {
	ResetPlanCache()
	g := planCacheGraph()
	queries := []string{
		planCacheQuery,
		`SELECT ?s WHERE { ?s <http://e/q>+ <http://e/s0> }`,
		`SELECT ?s (COUNT(?t) AS ?n) WHERE { ?s <http://e/q> ?t } GROUP BY ?s`,
		`ASK { ?s a <http://e/C> . FILTER(?s = <http://e/s3>) }`,
	}
	parsed := make([]*Query, len(queries))
	wants := make([]*Result, len(queries))
	for i, src := range queries {
		q, err := ParseQuery(src)
		if err != nil {
			t.Fatalf("%v: %s", err, src)
		}
		parsed[i] = q
		wants[i] = refExecute(g, q)
	}
	ResetPlanCache() // cold again: the reference runs above must not prime it
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qi := (w + i) % len(parsed)
				res, err := Execute(g, parsed[qi])
				if err != nil {
					errs <- fmt.Sprintf("worker %d: %v", w, err)
					return
				}
				want := wants[qi]
				if want.Kind == KindAsk {
					if res.Boolean != want.Boolean {
						errs <- fmt.Sprintf("worker %d: ASK mismatch on %s", w, queries[qi])
						return
					}
					continue
				}
				if strings.Join(canonicalRows(res), "\n") != strings.Join(canonicalRows(want), "\n") {
					errs <- fmt.Sprintf("worker %d: rows mismatch on %s", w, queries[qi])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	hits, misses := PlanCacheStats()
	if hits == 0 || misses == 0 {
		t.Errorf("concurrent run should both compile and reuse plans (hits=%d misses=%d)", hits, misses)
	}
}
