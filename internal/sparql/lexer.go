package sparql

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar     // ?name or $name (normalized to name)
	tokIRIRef  // <...> (value without brackets)
	tokPName   // prefix:local or prefix: (kept verbatim)
	tokString  // quoted string (value unescaped)
	tokNumber  // numeric literal (verbatim)
	tokBool    // true / false
	tokPunct   // single/multi character punctuation
	tokLangTag // @en
	tokAnon    // []
)

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// Error reports a SPARQL syntax or evaluation error with position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sparql: line %d col %d: %s", e.Line, e.Col, e.Msg)
	}
	return "sparql: " + e.Msg
}

var keywords = map[string]bool{
	"SELECT": true, "DISTINCT": true, "REDUCED": true, "WHERE": true,
	"FILTER": true, "OPTIONAL": true, "UNION": true, "MINUS": true,
	"BIND": true, "AS": true, "VALUES": true, "UNDEF": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"LIMIT": true, "OFFSET": true, "GROUP": true, "HAVING": true,
	"ASK": true, "CONSTRUCT": true, "DESCRIBE": true,
	"PREFIX": true, "BASE": true, "NOT": true, "EXISTS": true, "IN": true,
	"A":      true,
	"INSERT": true, "DELETE": true, "DATA": true, "CLEAR": true,
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	if err := l.run(); err != nil {
		return nil, err
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) errf(format string, args ...any) error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) emit(kind tokenKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, line: l.line, col: l.col})
}

func (l *lexer) eof() bool { return l.pos >= len(l.src) }

func (l *lexer) peek() byte {
	if l.eof() {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) run() error {
	for !l.eof() {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			for !l.eof() && l.peek() != '\n' {
				l.advance()
			}
		case c == '?' || c == '$':
			// '?' not followed by a name char is the zero-or-one path
			// modifier, not a variable.
			if !isNameChar(l.peekAt(1)) {
				l.advance()
				l.emit(tokPunct, "?")
				continue
			}
			l.advance()
			start := l.pos
			for !l.eof() && isNameChar(l.peek()) {
				l.advance()
			}
			l.emit(tokVar, l.src[start:l.pos])
		case c == '<':
			// Distinguish IRIRef from comparison operators: an IRIRef has no
			// whitespace before the closing '>'.
			if iri, ok := l.tryIRIRef(); ok {
				l.emit(tokIRIRef, iri)
			} else {
				l.advance()
				if l.peek() == '=' {
					l.advance()
					l.emit(tokPunct, "<=")
				} else {
					l.emit(tokPunct, "<")
				}
			}
		case c == '"' || c == '\'':
			s, err := l.lexString()
			if err != nil {
				return err
			}
			l.emit(tokString, s)
		case c == '@':
			l.advance()
			start := l.pos
			for !l.eof() && (isAlpha(l.peek()) || l.peek() == '-' || isDigit(l.peek())) {
				l.advance()
			}
			if l.pos == start {
				return l.errf("empty language tag")
			}
			l.emit(tokLangTag, l.src[start:l.pos])
		case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
			l.lexNumber(false)
		case c == '+' || c == '-':
			// Sign is part of a numeric literal only directly before digits;
			// the parser decides arithmetic from context, so emit punct and
			// let numbers be unsigned at the lexer level.
			l.advance()
			l.emit(tokPunct, string(c))
		case c == '[':
			// ANON blank node "[]" (possibly with inner whitespace) vs '['.
			save := l.pos
			l.advance()
			for !l.eof() && (l.peek() == ' ' || l.peek() == '\t') {
				l.advance()
			}
			if l.peek() == ']' {
				l.advance()
				l.emit(tokAnon, "[]")
			} else {
				l.pos = save
				l.advance()
				l.emit(tokPunct, "[")
			}
		case strings.IndexByte("{}().;,*/|^!=>&", c) >= 0:
			l.lexPunct()
		case c == '_' && l.peekAt(1) == ':':
			l.advance()
			l.advance()
			start := l.pos
			for !l.eof() && isNameChar(l.peek()) {
				l.advance()
			}
			l.emit(tokPName, "_:"+l.src[start:l.pos])
		case isAlpha(c) || c >= utf8.RuneSelf:
			l.lexWord()
		default:
			return l.errf("unexpected character %q", string(c))
		}
	}
	return nil
}

// tryIRIRef attempts to scan <...> as an IRI reference; on failure the
// position is restored and ok=false (so '<' can be an operator).
func (l *lexer) tryIRIRef() (string, bool) {
	save, saveLine, saveCol := l.pos, l.line, l.col
	l.advance() // '<'
	start := l.pos
	for !l.eof() {
		c := l.peek()
		if c == '>' {
			iri := l.src[start:l.pos]
			l.advance()
			return iri, true
		}
		if c == ' ' || c == '\t' || c == '\n' || c == '<' || c == '"' {
			break
		}
		l.advance()
	}
	l.pos, l.line, l.col = save, saveLine, saveCol
	return "", false
}

func (l *lexer) lexString() (string, error) {
	quote := l.advance()
	long := false
	if l.peek() == quote && l.peekAt(1) == quote {
		l.advance()
		l.advance()
		long = true
	} else if l.peek() == quote {
		l.advance()
		return "", nil
	}
	var b strings.Builder
	for {
		if l.eof() {
			return "", l.errf("unterminated string")
		}
		c := l.peek()
		if c == quote {
			if !long {
				l.advance()
				return b.String(), nil
			}
			if l.peekAt(1) == quote && l.peekAt(2) == quote {
				l.advance()
				l.advance()
				l.advance()
				return b.String(), nil
			}
			b.WriteByte(l.advance())
			continue
		}
		if c == '\\' {
			l.advance()
			if l.eof() {
				return "", l.errf("unterminated escape")
			}
			switch e := l.advance(); e {
			case 't':
				b.WriteByte('\t')
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case '"', '\'', '\\':
				b.WriteByte(e)
			case 'u':
				r, err := l.readHex(4)
				if err != nil {
					return "", err
				}
				b.WriteRune(r)
			default:
				return "", l.errf("invalid escape \\%c", e)
			}
			continue
		}
		if !long && (c == '\n' || c == '\r') {
			return "", l.errf("newline in string")
		}
		b.WriteByte(l.advance())
	}
}

func (l *lexer) readHex(n int) (rune, error) {
	var v rune
	for i := 0; i < n; i++ {
		if l.eof() {
			return 0, l.errf("unterminated hex escape")
		}
		c := l.advance()
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= rune(c - '0')
		case c >= 'a' && c <= 'f':
			v |= rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v |= rune(c-'A') + 10
		default:
			return 0, l.errf("invalid hex digit")
		}
	}
	return v, nil
}

func (l *lexer) lexNumber(neg bool) {
	start := l.pos
	for !l.eof() && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		l.advance()
		for !l.eof() && isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			for !l.eof() && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			l.pos = save
		}
	}
	text := l.src[start:l.pos]
	if neg {
		text = "-" + text
	}
	l.emit(tokNumber, text)
}

func (l *lexer) lexPunct() {
	c := l.advance()
	two := func(next byte, combined string) {
		if l.peek() == next {
			l.advance()
			l.emit(tokPunct, combined)
		} else {
			l.emit(tokPunct, string(c))
		}
	}
	switch c {
	case '!':
		two('=', "!=")
	case '>':
		two('=', ">=")
	case '&':
		two('&', "&&")
	case '|':
		two('|', "||")
	default:
		l.emit(tokPunct, string(c))
	}
}

// lexWord scans a bare word: keyword, boolean, builtin function name, or
// prefixed name.
func (l *lexer) lexWord() {
	start := l.pos
	for !l.eof() && (isNameChar(l.peek()) || l.peek() >= utf8.RuneSelf) {
		l.advance()
	}
	word := l.src[start:l.pos]
	// prefix:local form (includes empty local "ex:").
	if l.peek() == ':' {
		l.advance()
		lstart := l.pos
		for !l.eof() {
			c := l.peek()
			if isNameChar(c) || c >= utf8.RuneSelf {
				l.advance()
				continue
			}
			if c == '.' && (isNameChar(l.peekAt(1)) || l.peekAt(1) >= utf8.RuneSelf) {
				l.advance()
				continue
			}
			break
		}
		l.emit(tokPName, word+":"+l.src[lstart:l.pos])
		return
	}
	switch strings.ToLower(word) {
	case "true", "false":
		// Boolean literals are matched case-insensitively: the paper's
		// Listing 1 spells "False".
		l.emit(tokBool, strings.ToLower(word))
		return
	}
	if keywords[strings.ToUpper(word)] {
		l.emit(tokKeyword, strings.ToUpper(word))
		return
	}
	// Builtin function names and anything else: keep verbatim; the parser
	// resolves them (case-insensitively for functions).
	l.emit(tokPName, word)
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isNameChar(c byte) bool { return isAlpha(c) || isDigit(c) || c == '-' }
