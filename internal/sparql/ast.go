// AST types for parsed queries; package documentation lives in doc.go.
package sparql

import (
	"repro/internal/rdf"
)

// QueryKind discriminates the four SPARQL query forms.
type QueryKind int

// Query forms.
const (
	KindSelect QueryKind = iota
	KindAsk
	KindConstruct
	KindDescribe
)

func (k QueryKind) String() string {
	switch k {
	case KindSelect:
		return "SELECT"
	case KindAsk:
		return "ASK"
	case KindConstruct:
		return "CONSTRUCT"
	default:
		return "DESCRIBE"
	}
}

// Query is a parsed SPARQL query.
type Query struct {
	Kind     QueryKind
	Distinct bool
	Reduced  bool
	// Projection lists the selected items; empty means SELECT *.
	Projection []SelectItem
	// DescribeTerms lists the IRIs/vars of a DESCRIBE query.
	DescribeTerms []TermOrVar
	// Template holds the CONSTRUCT template.
	Template []TriplePattern
	Where    *Group
	GroupBy  []Expression
	Having   []Expression
	OrderBy  []OrderCondition
	Limit    int // -1 when absent
	Offset   int
	// Namespaces carries the PREFIX declarations for result rendering.
	Namespaces *rdf.Namespaces
}

// SelectItem is a projected variable, optionally computed from an expression
// ("(expr AS ?v)").
type SelectItem struct {
	Var  string
	Expr Expression // nil for plain variables
}

// OrderCondition is one ORDER BY key.
type OrderCondition struct {
	Expr       Expression
	Descending bool
}

// TermOrVar is a triple-pattern position: either a concrete RDF term or a
// variable name.
type TermOrVar struct {
	Term  rdf.Term
	Var   string // non-empty means variable
	IsVar bool
}

// V returns a variable position.
func V(name string) TermOrVar { return TermOrVar{Var: name, IsVar: true} }

// T returns a concrete-term position.
func T(t rdf.Term) TermOrVar { return TermOrVar{Term: t} }

// String renders the position in SPARQL syntax.
func (tv TermOrVar) String() string {
	if tv.IsVar {
		return "?" + tv.Var
	}
	return tv.Term.String()
}

// TriplePattern is a single pattern in a basic graph pattern. When Path is
// non-nil the predicate position is a property path instead of a term/var.
type TriplePattern struct {
	S, P, O TermOrVar
	Path    *Path
}

// PathKind discriminates property-path operators.
type PathKind int

// Property path operators.
const (
	PathIRI        PathKind = iota // single predicate
	PathSeq                        // p1 / p2
	PathAlt                        // p1 | p2
	PathInverse                    // ^p
	PathZeroOrMore                 // p*
	PathOneOrMore                  // p+
	PathZeroOrOne                  // p?
)

// Path is a property-path expression tree.
type Path struct {
	Kind PathKind
	IRI  rdf.Term // for PathIRI
	Kids []*Path  // operands for the composite kinds
}

// Pattern is a node of the WHERE-clause pattern tree.
type Pattern interface{ isPattern() }

// Group is a braced group graph pattern: an ordered list of sub-patterns.
// Filters apply over the group's solutions after all other patterns.
type Group struct {
	Patterns []Pattern
	Filters  []Expression
}

// BGP is a basic graph pattern: a conjunction of triple patterns.
type BGP struct {
	Triples []TriplePattern
}

// Optional is OPTIONAL { ... }.
type Optional struct {
	Pattern *Group
}

// Union is { A } UNION { B } (n-ary unions are parsed left-nested).
type Union struct {
	Left, Right *Group
}

// Minus is MINUS { ... }.
type Minus struct {
	Pattern *Group
}

// Bind is BIND(expr AS ?v).
type Bind struct {
	Expr Expression
	Var  string
}

// SubSelect is a nested "{ SELECT ... }" subquery. It evaluates in a fresh
// scope and joins its projected solutions with the outer pattern.
type SubSelect struct {
	Query *Query
}

// InlineData is a VALUES block. A nil term in a row means UNDEF.
type InlineData struct {
	Vars []string
	Rows [][]TermOrNil
}

// TermOrNil is a VALUES cell; Defined=false encodes UNDEF.
type TermOrNil struct {
	Term    rdf.Term
	Defined bool
}

func (*Group) isPattern()      {}
func (*BGP) isPattern()        {}
func (*Optional) isPattern()   {}
func (*Union) isPattern()      {}
func (*Minus) isPattern()      {}
func (*Bind) isPattern()       {}
func (*InlineData) isPattern() {}
func (*SubSelect) isPattern()  {}
