package sparql

import (
	"repro/internal/rdf"
	"repro/internal/store"
	"sort"
)

// evalPathRows evaluates a triple pattern whose predicate is a property
// path, extending each row with every (subject, object) pair the path
// connects. Rows stay in ID space: endpoints resolve from row slots, the
// per-(path, endpoint) reachability memo stores encoded ID lists, and the
// underlying closure walks run on the bitmap indexes where the path shape
// allows. Terms are decoded only once per distinct memo fill, never per
// row.
func (ec *evalContext) evalPathRows(tp TriplePattern, rows []idRow) []idRow {
	if ec.parEligible(len(rows)) {
		if out, ok := parRange(ec, len(rows), func(lo, hi int, out []idRow) []idRow {
			return ec.evalPathRange(tp, rows, lo, hi, out)
		}); ok {
			return out
		}
	}
	return ec.evalPathRange(tp, rows, 0, len(rows), nil)
}

// evalPathRange extends rows[lo:hi] with the path pattern's matches,
// appending to out.
//
// The evaluation direction is chosen from the bound ends: bound→unbound
// uses forward or backward reachability; bound→bound is a reachability
// test; and unbound→unbound enumerates path matches from every candidate
// start node.
// A variable path endpoint only ever binds a node of the graph (a term
// used as subject or object). Without this restriction zero-width paths
// would make BGP results depend on join order: `?x p* ?y` joined against
// a pattern binding ?y to a predicate-only term would reflexively match
// when the path runs last (?y arrives bound, zero-length x=y) but not
// when it runs first (the unbound enumeration ranges over nodes). The
// node rule makes the pattern's solution set a fixed multiset, invariant
// under the planner's ordering — the randomized reference-equivalence
// harness enforces exactly that. Constant endpoints are taken as given
// (`<x> p* <x>` holds for any term, matching the zero-length-path spec).
func (ec *evalContext) evalPathRange(tp TriplePattern, rows []idRow, lo, hi int, out []idRow) []idRow {
	sSlot, oSlot := -1, -1
	sConst, oConst := store.NoID, store.NoID
	if tp.S.IsVar {
		sSlot = ec.env.slot(tp.S.Var)
	} else {
		sConst = ec.encodeTerm(tp.S.Term)
	}
	if tp.O.IsVar {
		oSlot = ec.env.slot(tp.O.Var)
	} else {
		oConst = ec.encodeTerm(tp.O.Term)
	}
	for _, r := range rows[lo:hi] {
		sID := sConst
		if sSlot >= 0 {
			sID = r[sSlot]
			if sID != store.NoID && !ec.isNodeID(sID) {
				continue // a var endpoint bound to a non-node never matches
			}
		}
		oID := oConst
		if oSlot >= 0 {
			oID = r[oSlot]
			if oID != store.NoID && !ec.isNodeID(oID) {
				continue
			}
		}
		switch {
		case sID != store.NoID && oID != store.NoID:
			if ec.pathReachesID(tp.Path, sID, oID) {
				out = append(out, r)
			}
		case sID != store.NoID:
			for _, t := range ec.pathForwardIDs(tp.Path, sID) {
				if !ec.isNodeID(t) {
					continue // only the zero-length self can be a non-node
				}
				ns := cloneRow(r)
				ns[oSlot] = t
				out = append(out, ns)
			}
		case oID != store.NoID:
			for _, t := range ec.pathBackwardIDs(tp.Path, oID) {
				if !ec.isNodeID(t) {
					continue
				}
				ns := cloneRow(r)
				ns[sSlot] = t
				out = append(out, ns)
			}
		default:
			// Both unbound: enumerate from all (node) start candidates.
			out = ec.pathStartsAll(tp, r, sSlot, oSlot, out)
		}
	}
	return out
}

// isNodeID reports whether id is a node of the graph: a term occurring in
// subject or object position. Two O(1) count-table lookups.
func (ec *evalContext) isNodeID(id store.ID) bool {
	return ec.g.CountID(id, store.NoID, store.NoID) > 0 ||
		ec.g.CountID(store.NoID, store.NoID, id) > 0
}

// pathStartsAll enumerates path matches from every candidate start node.
// Each start's reachability is independent, so large candidate sets fan
// out across the worker pool. A separate method so the closure it hands
// the scheduler cannot force heap boxing inside evalPathRange's
// (sequential, per-row) hot path.
func (ec *evalContext) pathStartsAll(tp TriplePattern, r idRow, sSlot, oSlot int, out []idRow) []idRow {
	starts := ec.pathStartIDs(tp.Path)
	if ec.parEligible(len(starts)) {
		if par, ok := parRange(ec, len(starts), func(lo, hi int, buf []idRow) []idRow {
			return ec.pathStartsRange(tp, r, sSlot, oSlot, starts, lo, hi, buf)
		}); ok {
			return append(out, par...)
		}
	}
	return ec.pathStartsRange(tp, r, sSlot, oSlot, starts, 0, len(starts), out)
}

// pathStartsRange matches the path from starts[lo:hi], appending a row per
// (start, reachable) pair to out.
func (ec *evalContext) pathStartsRange(tp TriplePattern, r idRow, sSlot, oSlot int, starts []store.ID, lo, hi int, out []idRow) []idRow {
	for _, start := range starts[lo:hi] {
		for _, t := range ec.pathForwardIDs(tp.Path, start) {
			if sSlot == oSlot {
				// ?x path ?x: only self-reaching starts match.
				if start != t {
					continue
				}
				ns := cloneRow(r)
				ns[sSlot] = start
				out = append(out, ns)
				continue
			}
			ns := cloneRow(r)
			ns[sSlot] = start
			ns[oSlot] = t
			out = append(out, ns)
		}
	}
	return out
}

// pathForwardIDs memoizes the encoded forward reachability of (path,
// endpoint) for the duration of one query evaluation. The memo is shared
// by the query's workers: the lookup and store lock, the (pure)
// computation runs unlocked, so a race costs at worst a duplicated
// traversal, never a wrong result.
//
// Memoized reachability is only valid for the graph snapshot the query
// started against, so the caches assert stability via Graph.Version: if
// the graph mutated since Execute began (a contract violation — but one a
// mis-locked caller can commit), the memo is bypassed rather than serving
// reachability from a graph that no longer exists.
func (ec *evalContext) pathForwardIDs(p *Path, from store.ID) []store.ID {
	if ec.g.Version() != ec.gver {
		return ec.encodeTerms(ec.pathForward(p, ec.termOf(from)))
	}
	k := pathIDKey{p, from}
	ec.mu.Lock()
	v, ok := ec.pathFwd[k]
	ec.mu.Unlock()
	if ok {
		return v
	}
	v = ec.encodeTerms(ec.pathForward(p, ec.termOf(from)))
	ec.mu.Lock()
	if ec.pathFwd == nil {
		ec.pathFwd = make(map[pathIDKey][]store.ID)
	}
	ec.pathFwd[k] = v
	ec.mu.Unlock()
	return v
}

// pathBackwardIDs memoizes backward reachability per (path, endpoint);
// see pathForwardIDs for the locking discipline and the version guard.
func (ec *evalContext) pathBackwardIDs(p *Path, to store.ID) []store.ID {
	if ec.g.Version() != ec.gver {
		return ec.encodeTerms(ec.pathBackward(p, ec.termOf(to)))
	}
	k := pathIDKey{p, to}
	ec.mu.Lock()
	v, ok := ec.pathBwd[k]
	ec.mu.Unlock()
	if ok {
		return v
	}
	v = ec.encodeTerms(ec.pathBackward(p, ec.termOf(to)))
	ec.mu.Lock()
	if ec.pathBwd == nil {
		ec.pathBwd = make(map[pathIDKey][]store.ID)
	}
	ec.pathBwd[k] = v
	ec.mu.Unlock()
	return v
}

// pathReachesID tests whether `to` is reachable from `from` via the path.
func (ec *evalContext) pathReachesID(p *Path, from, to store.ID) bool {
	for _, t := range ec.pathForwardIDs(p, from) {
		if t == to {
			return true
		}
	}
	return false
}

// pathStartIDs memoizes the encoded start-candidate set per path (the set
// is row-invariant, and the unbound-unbound shape probes it once per row).
func (ec *evalContext) pathStartIDs(p *Path) []store.ID {
	if ec.g.Version() != ec.gver {
		return ec.encodeTerms(ec.pathStartCandidates(p))
	}
	ec.mu.Lock()
	v, ok := ec.pathStarts[p]
	ec.mu.Unlock()
	if ok {
		return v
	}
	v = ec.encodeTerms(ec.pathStartCandidates(p))
	ec.mu.Lock()
	if ec.pathStarts == nil {
		ec.pathStarts = make(map[*Path][]store.ID)
	}
	ec.pathStarts[p] = v
	ec.mu.Unlock()
	return v
}

// pathForward returns the set of nodes reachable from `from` via the path.
func (ec *evalContext) pathForward(p *Path, from rdf.Term) []rdf.Term {
	switch p.Kind {
	case PathIRI:
		return ec.g.Objects(from, p.IRI)
	case PathInverse:
		return ec.pathBackward(p.Kids[0], from)
	case PathSeq:
		mids := ec.pathForward(p.Kids[0], from)
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		for _, m := range mids {
			for _, t := range ec.pathForward(p.Kids[1], m) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PathAlt:
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		for _, kid := range p.Kids {
			for _, t := range ec.pathForward(kid, from) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PathZeroOrOne:
		out := []rdf.Term{from}
		seen := map[rdf.Term]bool{from: true}
		for _, t := range ec.pathForward(p.Kids[0], from) {
			if !seen[t] {
				out = append(out, t)
			}
		}
		return out
	case PathZeroOrMore, PathOneOrMore:
		return ec.closure(p.Kids[0], from, p.Kind == PathZeroOrMore, false)
	}
	return nil
}

// pathBackward returns the set of nodes from which `to` is reachable.
func (ec *evalContext) pathBackward(p *Path, to rdf.Term) []rdf.Term {
	switch p.Kind {
	case PathIRI:
		return ec.g.Subjects(p.IRI, to)
	case PathInverse:
		return ec.pathForward(p.Kids[0], to)
	case PathSeq:
		mids := ec.pathBackward(p.Kids[1], to)
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		for _, m := range mids {
			for _, t := range ec.pathBackward(p.Kids[0], m) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PathAlt:
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		for _, kid := range p.Kids {
			for _, t := range ec.pathBackward(kid, to) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PathZeroOrOne:
		out := []rdf.Term{to}
		seen := map[rdf.Term]bool{to: true}
		for _, t := range ec.pathBackward(p.Kids[0], to) {
			if !seen[t] {
				out = append(out, t)
			}
		}
		return out
	case PathZeroOrMore, PathOneOrMore:
		return ec.closure(p.Kids[0], to, p.Kind == PathZeroOrMore, true)
	}
	return nil
}

// closure performs BFS over single path steps. includeStart selects
// zero-or-more semantics; backward reverses the step direction. When the
// step is built only from plain, inverted, or alternated predicates the
// walk runs on dictionary IDs; composite steps fall back to term-level BFS.
func (ec *evalContext) closure(step *Path, start rdf.Term, includeStart, backward bool) []rdf.Term {
	if out, ok := ec.closureIDs(step, start, includeStart, backward); ok {
		return out
	}
	return ec.closureTerms(step, start, includeStart, backward)
}

// closureIDs is the ID-level BFS: each frontier expansion probes the SPO /
// POS indexes with uint32 keys and nothing is decoded until the closure is
// complete. The visited and frontier sets are bitmaps, so the per-level
// bookkeeping is set algebra — fresh = successors AndNot visited, visited
// OrWith fresh — over 64-bit words instead of a hash probe per reached
// node, and the result enumerates in ascending ID order at every
// parallelism level (union of the morsel expansions is commutative).
// ok=false when the step contains sequence/optional/nested-closure
// operators, which the flattening below does not model.
func (ec *evalContext) closureIDs(step *Path, start rdf.Term, includeStart, backward bool) ([]rdf.Term, bool) {
	var fwd, inv []store.ID
	var flatten func(p *Path, inverted bool) bool
	flatten = func(p *Path, inverted bool) bool {
		switch p.Kind {
		case PathIRI:
			id, ok := ec.g.LookupID(p.IRI)
			if !ok {
				return true // predicate absent from graph: no edges
			}
			if inverted {
				inv = append(inv, id)
			} else {
				fwd = append(fwd, id)
			}
			return true
		case PathInverse:
			return flatten(p.Kids[0], !inverted)
		case PathAlt:
			for _, kid := range p.Kids {
				if !flatten(kid, inverted) {
					return false
				}
			}
			return true
		default:
			return false
		}
	}
	if !flatten(step, backward) {
		return nil, false
	}
	startID, known := ec.g.LookupID(start)
	if !known {
		if includeStart {
			return []rdf.Term{start}, true
		}
		return nil, true
	}
	// visited is the closure's dedup bitmap — Add doubles as the membership
	// test — and the frontier is a slice of the IDs Add just admitted. The
	// sequential walk allocates only visited and two level buffers, no
	// matter how many levels the BFS runs.
	visited := store.NewIDSet()
	if includeStart {
		visited.Add(startID)
	}
	frontier := []store.ID{startID}
	var next []store.ID
	for len(frontier) > 0 {
		if ec.canceled() {
			break // deadline: partial closure, discarded by the caller
		}
		next = next[:0]
		// Wide frontiers expand in parallel: contiguous frontier morsels
		// each accumulate successors into a private bitmap, the morsel
		// bitmaps merge with word-level ORs (commutative — the merged set
		// is independent of chunk boundaries), and the fresh nodes are the
		// merged set minus visited. The fan-out lives in a helper method so
		// its escaping closure cannot force heap boxing of this walk's
		// locals on the sequential path.
		if ec.parEligible(len(frontier)) {
			if succ := ec.parStepSet(fwd, inv, frontier); succ != nil {
				fresh := succ.AndNot(visited)
				visited.OrWith(fresh)
				next = fresh.AppendTo(next)
				frontier, next = next, frontier
				continue
			}
		}
		for _, node := range frontier {
			expand := func(t store.ID) bool {
				if visited.Add(t) {
					next = append(next, t)
				}
				return true
			}
			for _, p := range fwd {
				ec.g.ForEachObjectID(node, p, expand)
			}
			for _, p := range inv {
				ec.g.ForEachSubjectID(p, node, expand)
			}
		}
		frontier, next = next, frontier
	}
	// The result enumerates the visited bitmap in ascending ID order —
	// identical at every parallelism level. (Under one-or-more semantics
	// the start is absent unless the walk reached it, exactly as the
	// includeStart seeding above arranged.)
	reached := visited.AppendTo(make([]store.ID, 0, visited.Len()))
	out := make([]rdf.Term, len(reached))
	decoded := false
	if ec.parEligible(len(reached)) {
		decoded = parMap(ec, reached, out, ec.g.TermOf)
	}
	if !decoded {
		for i, id := range reached {
			out[i] = ec.g.TermOf(id)
		}
	}
	return out, true
}

// parStepSet expands one BFS frontier across the worker pool, returning
// the union of all successor sets; nil means the fan-out could not run
// and the caller expands sequentially.
func (ec *evalContext) parStepSet(fwd, inv []store.ID, frontier []store.ID) *store.IDSet {
	succ, ok := parSetUnion(ec, len(frontier), func(lo, hi int, out *store.IDSet) {
		add := func(t store.ID) bool {
			out.Add(t)
			return true
		}
		for _, node := range frontier[lo:hi] {
			for _, p := range fwd {
				ec.g.ForEachObjectID(node, p, add)
			}
			for _, p := range inv {
				ec.g.ForEachSubjectID(p, node, add)
			}
		}
	})
	if !ok {
		return nil
	}
	return succ
}

func (ec *evalContext) closureTerms(step *Path, start rdf.Term, includeStart, backward bool) []rdf.Term {
	visited := make(map[rdf.Term]bool)
	var out []rdf.Term
	if includeStart {
		visited[start] = true
		out = append(out, start)
	}
	frontier := []rdf.Term{start}
	for len(frontier) > 0 {
		if ec.canceled() {
			break // deadline: partial closure, discarded by the caller
		}
		var next []rdf.Term
		// Composite steps (sequences, optionals) are the expensive
		// per-node traversals, so wide frontiers fan out here too; the
		// merge below runs in frontier order like the ID-level BFS.
		if ec.parEligible(len(frontier)) {
			if flat, ok := ec.parStepTerms(step, frontier, backward); ok {
				for _, t := range flat {
					if !visited[t] {
						visited[t] = true
						out = append(out, t)
						next = append(next, t)
					}
				}
				frontier = next
				continue
			}
		}
		for _, node := range frontier {
			var steps []rdf.Term
			if backward {
				steps = ec.pathBackward(step, node)
			} else {
				steps = ec.pathForward(step, node)
			}
			for _, t := range steps {
				if !visited[t] {
					visited[t] = true
					out = append(out, t)
					next = append(next, t)
				}
			}
		}
		frontier = next
	}
	if !includeStart {
		// One-or-more: the start itself is only a result if reachable in ≥1
		// step, which the BFS above established via visited.
		return out
	}
	return out
}

// parStepTerms is parStepIDs for the term-level BFS over composite steps.
func (ec *evalContext) parStepTerms(step *Path, frontier []rdf.Term, backward bool) ([]rdf.Term, bool) {
	return parRange(ec, len(frontier), func(lo, hi int, buf []rdf.Term) []rdf.Term {
		for _, node := range frontier[lo:hi] {
			if backward {
				buf = append(buf, ec.pathBackward(step, node)...)
			} else {
				buf = append(buf, ec.pathForward(step, node)...)
			}
		}
		return buf
	})
}

// pathStartCandidates returns the nodes that can possibly start a path match
// when both ends are unbound: for zero-width paths every subject and object,
// otherwise the subjects of the leftmost predicate.
func (ec *evalContext) pathStartCandidates(p *Path) []rdf.Term {
	switch p.Kind {
	case PathIRI:
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		ec.g.ForEach(store.Wildcard, p.IRI, store.Wildcard, func(t rdf.Triple) bool {
			if !seen[t.S] {
				seen[t.S] = true
				out = append(out, t.S)
			}
			return true
		})
		sortTerms(out)
		return out
	case PathInverse:
		return ec.pathEndCandidates(p.Kids[0])
	case PathSeq:
		return ec.pathStartCandidates(p.Kids[0])
	case PathAlt:
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		for _, kid := range p.Kids {
			for _, t := range ec.pathStartCandidates(kid) {
				if !seen[t] {
					seen[t] = true
					out = append(out, t)
				}
			}
		}
		return out
	case PathOneOrMore:
		return ec.pathStartCandidates(p.Kids[0])
	case PathZeroOrMore, PathZeroOrOne:
		// Zero-width paths can start at any node in the graph.
		return ec.allNodes()
	}
	return nil
}

func (ec *evalContext) pathEndCandidates(p *Path) []rdf.Term {
	switch p.Kind {
	case PathIRI:
		seen := make(map[rdf.Term]bool)
		var out []rdf.Term
		ec.g.ForEach(store.Wildcard, p.IRI, store.Wildcard, func(t rdf.Triple) bool {
			if !seen[t.O] {
				seen[t.O] = true
				out = append(out, t.O)
			}
			return true
		})
		sortTerms(out)
		return out
	default:
		return ec.allNodes()
	}
}

func (ec *evalContext) allNodes() []rdf.Term {
	seen := make(map[rdf.Term]bool)
	var out []rdf.Term
	ec.g.ForEach(store.Wildcard, store.Wildcard, store.Wildcard, func(t rdf.Triple) bool {
		if !seen[t.S] {
			seen[t.S] = true
			out = append(out, t.S)
		}
		if !seen[t.O] {
			seen[t.O] = true
			out = append(out, t.O)
		}
		return true
	})
	sortTerms(out)
	return out
}

// sortTerms orders candidate lists so path evaluation visits start/end
// nodes in a reproducible order regardless of index-map iteration.
func sortTerms(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool { return rdf.Compare(ts[i], ts[j]) < 0 })
}
