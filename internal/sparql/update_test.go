package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func TestInsertData(t *testing.T) {
	g := store.New()
	res, err := RunUpdate(g, `
PREFIX ex: <http://e/>
INSERT DATA { ex:s ex:p ex:o . ex:s ex:p "lit" . ex:s a ex:C . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 3 || res.Deleted != 0 {
		t.Errorf("result = %v", res)
	}
	if !g.Has(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewLiteral("lit")) {
		t.Error("inserted literal missing")
	}
	if !g.IsA(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/C")) {
		t.Error("'a' keyword in update data failed")
	}
	// Duplicate insert is a no-op.
	res, _ = RunUpdate(g, `PREFIX ex: <http://e/> INSERT DATA { ex:s ex:p ex:o }`)
	if res.Inserted != 0 {
		t.Error("duplicate insert should count 0")
	}
}

func TestDeleteData(t *testing.T) {
	g := store.New()
	g.Add(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	res, err := RunUpdate(g, `PREFIX ex: <http://e/> DELETE DATA { ex:s ex:p ex:o . ex:x ex:y ex:z . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 {
		t.Errorf("deleted = %d, want 1 (second triple absent)", res.Deleted)
	}
	if g.Len() != 0 {
		t.Error("triple not removed")
	}
}

func TestDeleteWhere(t *testing.T) {
	g := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
	g.Add(ex("a"), ex("age"), rdf.NewInt(30))
	g.Add(ex("b"), ex("age"), rdf.NewInt(25))
	g.Add(ex("a"), ex("name"), rdf.NewLiteral("A"))
	res, err := RunUpdate(g, `PREFIX ex: <http://e/> DELETE WHERE { ?s ex:age ?v }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 2 {
		t.Errorf("deleted = %d, want 2", res.Deleted)
	}
	if !g.Has(ex("a"), ex("name"), rdf.NewLiteral("A")) {
		t.Error("unrelated triple removed")
	}
}

func TestModifyDeleteInsertWhere(t *testing.T) {
	g := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
	g.Add(ex("a"), ex("status"), rdf.NewLiteral("draft"))
	g.Add(ex("b"), ex("status"), rdf.NewLiteral("draft"))
	g.Add(ex("c"), ex("status"), rdf.NewLiteral("final"))
	res, err := RunUpdate(g, `
PREFIX ex: <http://e/>
DELETE { ?s ex:status "draft" }
INSERT { ?s ex:status "review" }
WHERE  { ?s ex:status "draft" }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 2 || res.Inserted != 2 {
		t.Errorf("result = %v", res)
	}
	if g.Count(store.Wildcard, ex("status"), rdf.NewLiteral("review")) != 2 {
		t.Error("rewrite incomplete")
	}
	if !g.Has(ex("c"), ex("status"), rdf.NewLiteral("final")) {
		t.Error("non-matching subject touched")
	}
}

func TestInsertWhereOnly(t *testing.T) {
	g := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
	g.Add(ex("r"), ex("hasIngredient"), ex("i"))
	res, err := RunUpdate(g, `
PREFIX ex: <http://e/>
INSERT { ?i ex:isIngredientOf ?r } WHERE { ?r ex:hasIngredient ?i }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 {
		t.Errorf("inserted = %d", res.Inserted)
	}
	if !g.Has(ex("i"), ex("isIngredientOf"), ex("r")) {
		t.Error("inverse triple missing")
	}
}

func TestModifyWithFilter(t *testing.T) {
	g := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
	g.Add(ex("a"), ex("cal"), rdf.NewInt(800))
	g.Add(ex("b"), ex("cal"), rdf.NewInt(200))
	_, err := RunUpdate(g, `
PREFIX ex: <http://e/>
INSERT { ?s a ex:HighCalorie } WHERE { ?s ex:cal ?c . FILTER(?c > 500) }`)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsA(ex("a"), ex("HighCalorie")) || g.IsA(ex("b"), ex("HighCalorie")) {
		t.Error("filtered insert wrong")
	}
}

func TestClear(t *testing.T) {
	g := store.New()
	g.Add(rdf.NewIRI("http://e/s"), rdf.NewIRI("http://e/p"), rdf.NewIRI("http://e/o"))
	res, err := RunUpdate(g, `CLEAR ALL`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deleted != 1 || g.Len() != 0 {
		t.Errorf("clear result = %v, len = %d", res, g.Len())
	}
}

func TestUpdateSequence(t *testing.T) {
	g := store.New()
	res, err := RunUpdate(g, `
PREFIX ex: <http://e/>
INSERT DATA { ex:s ex:p ex:o } ;
DELETE DATA { ex:s ex:p ex:o } ;
INSERT DATA { ex:s ex:q ex:o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 2 || res.Deleted != 1 {
		t.Errorf("sequence result = %v", res)
	}
	if g.Len() != 1 {
		t.Errorf("len = %d", g.Len())
	}
}

func TestUpdateParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"var in insert data", `INSERT DATA { ?s <http://e/p> <http://e/o> }`},
		{"var in delete data", `DELETE DATA { <http://e/s> ?p <http://e/o> }`},
		{"garbage", `UPSERT DATA { }`},
		{"unterminated", `INSERT DATA { <http://e/s> <http://e/p> <http://e/o>`},
		{"delete where with filter", `DELETE WHERE { ?s ?p ?o . FILTER(?s = ?o) }`},
		{"path in template", `INSERT { ?s <http://e/p>+ ?o } WHERE { ?s ?p ?o }`},
		{"trailing garbage", `CLEAR ALL garbage`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseUpdate(tc.src); err == nil {
				t.Errorf("expected error for %q", tc.src)
			}
		})
	}
}

func TestUpdateUnboundTemplateVarSkipped(t *testing.T) {
	g := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
	g.Add(ex("a"), ex("p"), ex("b"))
	// ?x is never bound; the template instantiation must be skipped, not
	// inserted with a zero term.
	res, err := RunUpdate(g, `
PREFIX ex: <http://e/>
INSERT { ?s ex:q ?x } WHERE { ?s ex:p ?o . OPTIONAL { ?s ex:none ?x } }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 {
		t.Errorf("inserted = %d, want 0", res.Inserted)
	}
}

func TestUpdateLiteralSubjectSkipped(t *testing.T) {
	g := store.New()
	ex := func(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }
	g.Add(ex("a"), ex("p"), rdf.NewLiteral("lit"))
	// ?o binds to a literal; using it as subject is invalid and skipped.
	res, err := RunUpdate(g, `
PREFIX ex: <http://e/>
INSERT { ?o ex:q ex:a } WHERE { ?s ex:p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 0 {
		t.Errorf("inserted = %d, want 0 (literal subject invalid)", res.Inserted)
	}
}

func TestUpdateResultStringStaleInferred(t *testing.T) {
	res := UpdateResult{Inserted: 1, Deleted: 2}
	if got := res.String(); got != "inserted 1, deleted 2" {
		t.Errorf("String() = %q", got)
	}
	res.StaleInferred = []rdf.Triple{
		{S: rdf.NewIRI("http://e/s"), P: rdf.NewIRI("http://e/p"), O: rdf.NewIRI("http://e/o")},
	}
	got := res.String()
	if !strings.Contains(got, "1 inference(s)") || !strings.Contains(got, "stale") {
		t.Errorf("String() with stale inferences = %q", got)
	}
}
