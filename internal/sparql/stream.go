package sparql

import (
	"bufio"
	"encoding/csv"
	"errors"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

// This file is the streaming half of the result-format layer: the
// ResultWriter contract, its four W3C serializations, and the
// ExecuteStream/RunStream entry points that feed rows into a writer as
// the evaluator produces them, under a deadline and row/byte limits.
//
// The materialize-then-write methods on Result (formats.go) are thin
// adapters over the same writers, so the two paths cannot drift: a byte
// the adapter emits is a byte the stream emits.

// ResultWriter serializes one SELECT/ASK result document incrementally:
// Begin writes the document header, each Row appends one solution, and
// End closes the document (writing an in-band truncation marker when the
// format has room for one) and flushes. Boolean is the one-shot ASK
// form, used instead of the Begin/Row/End sequence.
//
// A writer buffers internally but never holds more than its fixed buffer
// of serialized output: memory is O(row), not O(result). Writers are not
// safe for concurrent use.
//
// Determinism: a row serializes by the Begin vars order — implementations
// must never iterate the Solution map itself.
type ResultWriter interface {
	Begin(vars []string) error
	Row(sol Solution) error
	// End finishes the document. A non-nil trunc marks a deliberate early
	// stop: formats with an in-band channel (JSON members, XML comments)
	// record it; CSV/TSV rely on the caller's transport (HTTP trailers).
	End(trunc *Truncation) error
	Boolean(b bool) error
	// Written reports the bytes of serialized output produced so far
	// (buffered or flushed). Byte limits are enforced against it.
	Written() int64
}

// Truncation describes why a streamed result ended before its last row.
type Truncation struct {
	// Reason is "rows", "bytes", or "deadline".
	Reason string
	// Rows is the number of rows emitted before the cut.
	Rows int
}

// StreamOptions bounds one streamed execution. The zero value means
// unbounded: no deadline, no row cap, no byte cap.
type StreamOptions struct {
	// Deadline bounds evaluation and emission. A query that exceeds it
	// during evaluation fails with ErrDeadlineExceeded (no bytes written);
	// one that exceeds it mid-emission ends with a well-formed truncated
	// document instead.
	Deadline time.Time
	// MaxRows caps emitted solution rows (0 = unlimited).
	MaxRows int
	// MaxBytes caps serialized output bytes (0 = unlimited). Checked
	// between rows, so the document may exceed it by one row plus the
	// footer — the cap bounds memory and transfer, it is not an exact
	// content length.
	MaxBytes int64
}

// StreamStats reports what one streamed execution emitted.
type StreamStats struct {
	// Rows is the number of solution rows written.
	Rows int
	// Truncated reports an early stop; Reason is its Truncation reason.
	Truncated bool
	Reason    string
}

// ErrGraphResult is returned by ExecuteStream/RunStream for CONSTRUCT and
// DESCRIBE queries, whose results are graphs: callers serialize those via
// Execute and a graph writer (Turtle/RDF-XML), not a bindings writer. It
// is returned before evaluation, so routing on it costs one cached parse.
var ErrGraphResult = errors.New("sparql: CONSTRUCT/DESCRIBE produces a graph, not bindings; use Execute and a graph serializer")

// ErrDeadlineExceeded is returned when StreamOptions.Deadline expires
// before the first result byte is written. After the first byte the
// deadline truncates the document instead (see StreamOptions.Deadline).
var ErrDeadlineExceeded = errors.New("sparql: query deadline exceeded")

// RunStream parses src (memoized, like Run) and streams its result into
// rw. See ExecuteStream.
func RunStream(g *store.Graph, src string, rw ResultWriter, opts StreamOptions) (StreamStats, error) {
	q, err := parseQueryCached(src)
	if err != nil {
		return StreamStats{}, err
	}
	return ExecuteStream(g, q, rw, opts)
}

// ExecuteStream runs a SELECT or ASK query and feeds each projected row
// into rw as it is materialized: the full document is never built in
// memory, and the public Solution maps exist one row at a time. The
// evaluator's intermediate ID rows are still computed eagerly (ORDER BY,
// DISTINCT, and aggregation need the full row set), but those are compact
// []store.ID rows — the O(result) heap the materialized writers used to
// pay for term maps and document builders is gone.
//
// opts.Deadline cancels a runaway evaluation: the evaluator polls a stop
// flag in its row loops and unwinds with partial state, and ExecuteStream
// returns ErrDeadlineExceeded without writing a byte. Once emission has
// begun, the deadline — like MaxRows and MaxBytes — ends the stream with
// a well-formed document carrying a Truncation instead.
func ExecuteStream(g *store.Graph, q *Query, rw ResultWriter, opts StreamOptions) (StreamStats, error) {
	var st StreamStats
	if q.Kind == KindConstruct || q.Kind == KindDescribe {
		return st, ErrGraphResult
	}
	ec := newEvalContext(g, buildQueryEnv(q))
	if !opts.Deadline.IsZero() {
		d := time.Until(opts.Deadline)
		if d <= 0 {
			return st, ErrDeadlineExceeded
		}
		stop := new(atomic.Bool)
		ec.stop = stop
		timer := time.AfterFunc(d, func() { stop.Store(true) })
		defer timer.Stop()
	}
	rows := ec.evalGroupRows(q.Where, []idRow{ec.newRow()})
	if ec.canceled() {
		return st, ErrDeadlineExceeded
	}
	if q.Kind == KindAsk {
		return st, rw.Boolean(len(rows) > 0)
	}
	projected, vars := ec.finishSelectRows(q, rows)
	if ec.canceled() {
		return st, ErrDeadlineExceeded
	}
	slots := make([]int, len(vars))
	for i, v := range vars {
		slots[i] = ec.env.slot(v)
	}
	if err := rw.Begin(vars); err != nil {
		return st, err
	}
	var trunc *Truncation
	for _, r := range projected {
		switch {
		case opts.MaxRows > 0 && st.Rows >= opts.MaxRows:
			trunc = &Truncation{Reason: "rows", Rows: st.Rows}
		case opts.MaxBytes > 0 && rw.Written() >= opts.MaxBytes:
			trunc = &Truncation{Reason: "bytes", Rows: st.Rows}
		case ec.canceled():
			trunc = &Truncation{Reason: "deadline", Rows: st.Rows}
		}
		if trunc != nil {
			break
		}
		if err := rw.Row(ec.materializeRow(r, vars, slots)); err != nil {
			return st, err
		}
		st.Rows++
	}
	if trunc != nil {
		st.Truncated = true
		st.Reason = trunc.Reason
	}
	return st, rw.End(trunc)
}

// countWriter is the shared buffered sink under every streaming writer:
// it tracks bytes accepted (pre-flush, so Written is exact and
// deterministic regardless of buffer boundaries) and defers errors — the
// emit helpers are fire-and-forget, and the first underlying error
// surfaces from flush() or the next Write.
type countWriter struct {
	bw *bufio.Writer
	n  int64
}

func newCountWriter(w io.Writer) *countWriter {
	return &countWriter{bw: bufio.NewWriterSize(w, 8192)}
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.bw.Write(p)
	c.n += int64(n)
	return n, err
}

func (c *countWriter) str(s string) {
	n, _ := c.bw.WriteString(s)
	c.n += int64(n)
}

func (c *countWriter) byte(b byte) {
	if c.bw.WriteByte(b) == nil {
		c.n++
	}
}

func (c *countWriter) written() int64 { return c.n }

func (c *countWriter) flush() error { return c.bw.Flush() }

// jsonString writes s as a JSON string literal (quoted, escaped).
func (c *countWriter) jsonString(s string) {
	const hex = "0123456789abcdef"
	c.byte('"')
	start := 0
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b >= 0x20 && b != '"' && b != '\\' {
			continue
		}
		c.str(s[start:i])
		switch b {
		case '"':
			c.str(`\"`)
		case '\\':
			c.str(`\\`)
		case '\n':
			c.str(`\n`)
		case '\r':
			c.str(`\r`)
		case '\t':
			c.str(`\t`)
		default:
			c.str(`\u00`)
			c.byte(hex[b>>4])
			c.byte(hex[b&0xF])
		}
		start = i + 1
	}
	c.str(s[start:])
	c.byte('"')
}

// ---- JSON: the W3C SPARQL 1.1 Query Results JSON Format ----

type jsonResultWriter struct {
	c    *countWriter
	vars []string
	rows int
}

// NewJSONWriter returns a streaming writer for
// application/sparql-results+json. A Truncation is recorded in-band as a
// non-standard top-level "truncated" member after "results" — still a
// well-formed document, ignored by standard consumers.
func NewJSONWriter(w io.Writer) ResultWriter { return &jsonResultWriter{c: newCountWriter(w)} }

func (jw *jsonResultWriter) Begin(vars []string) error {
	jw.vars = vars
	jw.c.str(`{"head":{"vars":[`)
	for i, v := range vars {
		if i > 0 {
			jw.c.byte(',')
		}
		jw.c.jsonString(v)
	}
	jw.c.str(`]},"results":{"bindings":[`)
	return nil
}

func (jw *jsonResultWriter) Row(sol Solution) error {
	if jw.rows > 0 {
		jw.c.byte(',')
	}
	jw.rows++
	jw.c.str("\n{")
	first := true
	for _, v := range jw.vars {
		t, ok := sol[v]
		if !ok || t == (rdf.Term{}) {
			continue
		}
		if !first {
			jw.c.byte(',')
		}
		first = false
		jw.c.jsonString(v)
		jw.c.str(`:{"type":`)
		switch {
		case t.IsIRI():
			jw.c.str(`"uri"`)
		case t.IsBlank():
			jw.c.str(`"bnode"`)
		default:
			jw.c.str(`"literal"`)
			if t.Lang != "" {
				jw.c.str(`,"xml:lang":`)
				jw.c.jsonString(t.Lang)
			} else if t.Datatype != "" && t.Datatype != rdf.XSDString {
				jw.c.str(`,"datatype":`)
				jw.c.jsonString(t.Datatype)
			}
		}
		jw.c.str(`,"value":`)
		jw.c.jsonString(t.Value)
		jw.c.byte('}')
	}
	jw.c.byte('}')
	return jw.c.flushEvery()
}

func (jw *jsonResultWriter) End(trunc *Truncation) error {
	jw.c.str("\n]}")
	if trunc != nil {
		jw.c.str(`,"truncated":`)
		jw.c.jsonString(trunc.Reason)
	}
	jw.c.str("}\n")
	return jw.c.flush()
}

func (jw *jsonResultWriter) Boolean(b bool) error {
	if b {
		jw.c.str(`{"head":{"vars":[]},"boolean":true}` + "\n")
	} else {
		jw.c.str(`{"head":{"vars":[]},"boolean":false}` + "\n")
	}
	return jw.c.flush()
}

func (jw *jsonResultWriter) Written() int64 { return jw.c.written() }

// flushEvery flushes opportunistically so a slowly-produced stream still
// reaches the client row by row; bufio already flushes on overflow, this
// only caps the latency of a buffered partial row batch.
func (c *countWriter) flushEvery() error {
	if c.bw.Buffered() >= 4096 {
		return c.bw.Flush()
	}
	return nil
}

// ---- XML: the W3C SPARQL Query Results XML Format ----

type xmlResultWriter struct {
	c    *countWriter
	vars []string
}

// NewXMLWriter returns a streaming writer for
// application/sparql-results+xml. A Truncation is recorded as an XML
// comment before the closing tag.
func NewXMLWriter(w io.Writer) ResultWriter { return &xmlResultWriter{c: newCountWriter(w)} }

func (xw *xmlResultWriter) header(vars []string) {
	xw.c.str(`<?xml version="1.0" encoding="UTF-8"?>` + "\n")
	xw.c.str(`<sparql xmlns="http://www.w3.org/2005/sparql-results#">` + "\n")
	xw.c.str("  <head>\n")
	for _, v := range vars {
		xw.c.str(`    <variable name="`)
		xw.c.xmlEscape(v)
		xw.c.str("\"/>\n")
	}
	xw.c.str("  </head>\n")
}

func (xw *xmlResultWriter) Begin(vars []string) error {
	xw.vars = vars
	xw.header(vars)
	xw.c.str("  <results>\n")
	return nil
}

func (xw *xmlResultWriter) Row(sol Solution) error {
	c := xw.c
	c.str("    <result>\n")
	for _, v := range xw.vars {
		t, ok := sol[v]
		if !ok || t == (rdf.Term{}) {
			continue
		}
		c.str(`      <binding name="`)
		c.xmlEscape(v)
		c.str(`">`)
		switch {
		case t.IsIRI():
			c.str("<uri>")
			c.xmlEscape(t.Value)
			c.str("</uri>")
		case t.IsBlank():
			c.str("<bnode>")
			c.xmlEscape(t.Value)
			c.str("</bnode>")
		default:
			c.str("<literal")
			if t.Lang != "" {
				c.str(` xml:lang="`)
				c.xmlEscape(t.Lang)
				c.byte('"')
			} else if t.Datatype != "" && t.Datatype != rdf.XSDString {
				c.str(` datatype="`)
				c.xmlEscape(t.Datatype)
				c.byte('"')
			}
			c.byte('>')
			c.xmlEscape(t.Value)
			c.str("</literal>")
		}
		c.str("</binding>\n")
	}
	c.str("    </result>\n")
	return c.flushEvery()
}

func (xw *xmlResultWriter) End(trunc *Truncation) error {
	xw.c.str("  </results>\n")
	if trunc != nil {
		xw.c.str("  <!-- truncated: ")
		xw.c.xmlEscape(trunc.Reason)
		xw.c.str(" limit reached -->\n")
	}
	xw.c.str("</sparql>\n")
	return xw.c.flush()
}

func (xw *xmlResultWriter) Boolean(b bool) error {
	xw.header(nil)
	if b {
		xw.c.str("  <boolean>true</boolean>\n")
	} else {
		xw.c.str("  <boolean>false</boolean>\n")
	}
	xw.c.str("</sparql>\n")
	return xw.c.flush()
}

func (xw *xmlResultWriter) Written() int64 { return xw.c.written() }

// xmlEscape writes s with XML special characters escaped (the five
// predefined entities plus the CR that XML 1.0 normalizes away).
func (c *countWriter) xmlEscape(s string) {
	start := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '&':
			esc = "&amp;"
		case '"':
			esc = "&quot;"
		case '\'':
			esc = "&apos;"
		case '\r':
			esc = "&#xD;"
		default:
			continue
		}
		c.str(s[start:i])
		c.str(esc)
		start = i + 1
	}
	c.str(s[start:])
}

// ---- CSV: the W3C SPARQL 1.1 CSV format (RFC 4180, CRLF line endings) ----

type csvResultWriter struct {
	c    *countWriter
	cw   *csv.Writer
	vars []string
	row  []string
}

// NewCSVWriter returns a streaming writer for text/csv. Per RFC 4180 (and
// the W3C SPARQL 1.1 CSV Results note) records end in CRLF. ASK results
// serialize as a single boolean cell; CSV has no in-band truncation
// channel — transports signal it out of band.
func NewCSVWriter(w io.Writer) ResultWriter {
	c := newCountWriter(w)
	cw := csv.NewWriter(c)
	cw.UseCRLF = true
	return &csvResultWriter{c: c, cw: cw}
}

func (vw *csvResultWriter) Begin(vars []string) error {
	vw.vars = vars
	vw.row = make([]string, len(vars))
	return vw.cw.Write(vars)
}

func (vw *csvResultWriter) Row(sol Solution) error {
	for i, v := range vw.vars {
		if t, ok := sol[v]; ok {
			vw.row[i] = t.Value
		} else {
			vw.row[i] = ""
		}
	}
	if err := vw.cw.Write(vw.row); err != nil {
		return err
	}
	return vw.c.flushEvery()
}

func (vw *csvResultWriter) End(*Truncation) error {
	vw.cw.Flush()
	if err := vw.cw.Error(); err != nil {
		return err
	}
	return vw.c.flush()
}

func (vw *csvResultWriter) Boolean(b bool) error {
	if b {
		vw.c.str("true\r\n")
	} else {
		vw.c.str("false\r\n")
	}
	return vw.c.flush()
}

func (vw *csvResultWriter) Written() int64 {
	vw.cw.Flush() // csv.Writer buffers a record at a time; count it
	return vw.c.written()
}

// ---- TSV: the W3C SPARQL 1.1 TSV format (N-Triples term syntax) ----

type tsvResultWriter struct {
	c    *countWriter
	vars []string
}

// NewTSVWriter returns a streaming writer for text/tab-separated-values:
// header of ?var names, then terms in full N-Triples syntax. Like CSV,
// truncation has no in-band channel.
func NewTSVWriter(w io.Writer) ResultWriter { return &tsvResultWriter{c: newCountWriter(w)} }

func (tw *tsvResultWriter) Begin(vars []string) error {
	tw.vars = vars
	for i, v := range vars {
		if i > 0 {
			tw.c.byte('\t')
		}
		tw.c.byte('?')
		tw.c.str(v)
	}
	tw.c.byte('\n')
	return nil
}

func (tw *tsvResultWriter) Row(sol Solution) error {
	for i, v := range tw.vars {
		if i > 0 {
			tw.c.byte('\t')
		}
		if t, ok := sol[v]; ok && t != (rdf.Term{}) {
			tw.c.str(t.String())
		}
	}
	tw.c.byte('\n')
	return tw.c.flushEvery()
}

func (tw *tsvResultWriter) End(*Truncation) error { return tw.c.flush() }

func (tw *tsvResultWriter) Boolean(b bool) error {
	if b {
		tw.c.str("true\n")
	} else {
		tw.c.str("false\n")
	}
	return tw.c.flush()
}

func (tw *tsvResultWriter) Written() int64 { return tw.c.written() }
