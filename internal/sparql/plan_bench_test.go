package sparql

// Benchmarks for the two PR-4 engine properties the bench gate enforces:
// solution materialization cost (the ID-row pipeline allocates exactly
// one Solution map per projected result row — allocs/op is the headline
// number) and the plan cache (cold compiles per execution, warm reuses
// the memoized join order / fused runs — the warm/cold ns/op gap is the
// cache's value on the serve-time steady state of repeated queries).

import (
	"testing"
)

// BenchmarkMaterializeSolutions runs a join that produces thousands of
// rows and projects two variables per row. With the end-to-end ID
// pipeline, intermediate joins allocate only []store.ID rows; the
// Solution maps appear exactly once, in finishSelect.
func BenchmarkMaterializeSolutions(b *testing.B) {
	g := buildWideGraph(400, 8)
	q, err := ParseQuery(`SELECT ?a ?b WHERE { ?a <http://w/next> ?b . ?b <http://w/val> ?v }`)
	if err != nil {
		b.Fatal(err)
	}
	old := Parallelism()
	SetParallelism(1)
	b.Cleanup(func() { SetParallelism(old) })
	res, err := Execute(g, q)
	if err != nil || res.Len() == 0 {
		b.Fatalf("rows=%d err=%v", res.Len(), err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

// planBenchQuery anchors five patterns at one subject, so execution
// touches a handful of rows while compilation still counts, orders, and
// fuses a real pattern list — the shape where the plan cache's value is
// visible (a serve-time request stream re-running a selective query).
const planBenchQuery = `SELECT ?v ?w WHERE { <http://w/c3> a <http://w/Node> . <http://w/c3> <http://w/val> ?v . <http://w/c3> <http://w/next> ?g . ?g <http://w/val> ?w . FILTER(?w >= 0) }`

func BenchmarkPlanCacheCold(b *testing.B) {
	g := buildWideGraph(64, 2)
	q, err := ParseQuery(planBenchQuery)
	if err != nil {
		b.Fatal(err)
	}
	old := Parallelism()
	SetParallelism(1)
	b.Cleanup(func() { SetParallelism(old) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResetPlanCache()
		if _, err := Execute(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanCacheWarm(b *testing.B) {
	g := buildWideGraph(64, 2)
	q, err := ParseQuery(planBenchQuery)
	if err != nil {
		b.Fatal(err)
	}
	old := Parallelism()
	SetParallelism(1)
	b.Cleanup(func() { SetParallelism(old) })
	ResetPlanCache()
	if _, err := Execute(g, q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(g, q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if hits, _ := PlanCacheStats(); hits == 0 {
		b.Fatal("warm benchmark never hit the plan cache")
	}
}
