// Package durable makes a feo session crash-safe: a binary snapshot plus a
// write-ahead log (WAL) persist the materialized knowledge graph — and the
// reasoner's carried closure state — across process death, so a restart
// recovers every acknowledged mutation without re-parsing Turtle or
// re-running the OWL RL closure.
//
// # Data directory layout
//
// A data directory holds at most two live files:
//
//	snapshot.bin   the graph + closure state as of generation G
//	wal-G.log      every commit applied since that snapshot
//
// The generation number G ties the pair together. Compaction writes the
// next snapshot (generation G+1) via temp file + fsync + atomic rename +
// directory fsync, creates wal-(G+1).log, and only then deletes the old
// log; a crash anywhere in that sequence leaves either the old pair or the
// new pair recoverable, and Open deletes any WAL whose generation does not
// match the surviving snapshot (its records are already folded in).
//
// # Record framing
//
// The WAL is a stream of frames after an 8-byte magic:
//
//	[uint32 LE payload length][uint32 LE CRC-32C of payload][payload]
//
// Frame 0 is a header naming the generation and the graph version the
// snapshot captured; every later frame is one Record: the flags byte
// (Clear), the ordered add/remove mutation stream of one commit (asserted
// AND inferred triples, exactly as the store applied them), the graph
// version the commit reached, the reasoner's cumulative inferred count,
// and the derivation-trace delta the commit produced. Because the stream
// is verbatim, replay applies it with no rule evaluation at all — boot
// cost is O(bytes), and the restored closure state lets the next write
// keep using the incremental materialization path.
//
// # Acknowledgement and fsync policy
//
// A commit is acknowledged when the session's mutating call (Explain,
// Update, LoadTurtle, LoadRDFXML) returns success: the record was framed
// and handed to the operating system inside the session's write lock,
// before the lock was released. How hard that guarantee is depends on the
// sync policy:
//
//	SyncAlways    fsync after every record; an acknowledged commit
//	              survives OS/power failure, not just process death.
//	SyncInterval  a background fsync every SyncEvery; process death loses
//	              nothing (the OS has the bytes), power failure loses at
//	              most the unsynced tail.
//	SyncNever     leave flushing entirely to the OS.
//
// Under every policy, recovery is prefix-exact at record granularity (see
// below): a commit is either fully recovered or fully absent, never
// half-applied.
//
// # Torn-tail truncation rule
//
// Replay reads frames until the first defect — a length that runs past the
// file, a CRC mismatch, a payload that does not parse — and truncates the
// file at the last good frame boundary. Everything before the defect is
// applied; everything at and after it is discarded. This is the standard
// WAL bargain: a torn tail is indistinguishable from a crash mid-write of
// the first bad record, so the log recovers the longest prefix of commits
// whose frames are intact. A failed append additionally poisons the Store
// (further appends error out) so no later record can hide behind a torn
// middle.
package durable
