package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/reasoner"
	"repro/internal/store"
)

// SyncPolicy selects when appended WAL records are fsynced; see the
// package documentation for the guarantee each policy buys.
type SyncPolicy int

// Sync policies, strongest first.
const (
	// SyncAlways fsyncs after every appended record (the default).
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background goroutine every SyncEvery.
	SyncInterval
	// SyncNever never fsyncs; the OS flushes on its own schedule.
	SyncNever
)

// Options configures a Store.
type Options struct {
	// Sync selects the fsync policy. Default SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the background fsync period under SyncInterval.
	// Zero means 100ms.
	SyncEvery time.Duration
}

// Record is one durable commit: the ordered mutation stream a session
// write applied (asserted and inferred triples alike, exactly as the store
// executed them), plus the state the reasoner must re-carry after replay.
type Record struct {
	// Cleared reports the commit began with Graph.Clear; Ops then holds
	// only the post-Clear mutations.
	Cleared bool
	// Ops is the commit's ordered add/remove stream.
	Ops []store.TermOp
	// EndVersion is the graph's mutation version when the commit finished.
	EndVersion uint64
	// TotalInferred is the reasoner's cumulative inferred count after the
	// commit.
	TotalInferred int
	// Derivations is the derivation-trace delta the commit recorded.
	Derivations []reasoner.TracedDerivation
}

// Boot is what Open recovered from the data directory.
type Boot struct {
	// Graph is the recovered graph: the snapshot with every intact WAL
	// record replayed onto it. Nil when the directory holds no snapshot
	// yet (a fresh directory) — the caller must build its initial state
	// and seed the store with Compact before appending.
	Graph *store.Graph
	// Closure is the reasoner closure state matching Graph.
	Closure reasoner.ClosureState
	// Generation is the recovered snapshot generation.
	Generation uint64
	// Records counts the WAL records replayed onto the snapshot.
	Records int
	// Truncated reports that replay found a torn or corrupt tail and
	// truncated the WAL at the last intact record.
	Truncated bool
}

const (
	snapshotName     = "snapshot.bin"
	snapMagic        = "FEOSNAP1"
	walMagic         = "FEOWAL01"
	frameHeaderLen   = 8 // uint32 payload length + uint32 CRC-32C
	defaultSyncEvery = 100 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// walFile is the handle the Store writes records through. It is a seam:
// the crash-fault-injection tests swap newWALFile for a failpoint
// implementation that dies mid-write at a chosen byte offset.
type walFile interface {
	io.Writer
	Sync() error
	Close() error
}

// newWALFile opens WAL files; a package variable so tests can inject
// write/sync faults.
var newWALFile = func(path string, flag int) (walFile, error) {
	return os.OpenFile(path, flag, 0o644)
}

// Store is an open data directory: the WAL append handle plus the
// bookkeeping Compact needs. Append/Compact/Sync/Close are safe for
// concurrent use, but the caller must serialize Append against the graph
// mutations it records (feo.Session's write lock does).
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	gen    uint64
	wal    walFile
	path   string
	size   int64
	dirty  bool // bytes written since the last fsync
	broken error

	stop     chan struct{}
	syncDone chan struct{}
}

func walName(gen uint64) string { return fmt.Sprintf("wal-%d.log", gen) }

// Open recovers the data directory: load the snapshot, replay the matching
// WAL (truncating a torn tail), delete stale files from interrupted
// compactions, and return both the recovered state and a Store ready for
// appends. A directory with no snapshot returns Boot.Graph == nil; seed it
// with Compact before the first Append.
func Open(dir string, opts Options) (*Store, *Boot, error) {
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	st := &Store{dir: dir, opts: opts}
	boot := &Boot{}
	// Leftovers from an interrupted compaction (classic or two-phase) are
	// never part of recovered state; drop them so they cannot be confused
	// for one.
	os.Remove(filepath.Join(dir, snapshotName+".tmp"))
	os.Remove(filepath.Join(dir, snapshotName+".pending"))

	gen, g, closure, err := readSnapshotFile(filepath.Join(dir, snapshotName))
	if err != nil {
		return nil, nil, err
	}
	st.gen = gen
	boot.Generation = gen
	boot.Graph = g
	boot.Closure = closure

	// Delete WALs from other generations: either stale files an
	// interrupted compaction left behind (their records are folded into
	// the surviving snapshot) or orphans in a directory whose snapshot
	// never got written (no acknowledged state can exist without one).
	stale, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	live := filepath.Join(dir, walName(gen))
	for _, p := range stale {
		if g == nil || p != live {
			if err := os.Remove(p); err != nil {
				return nil, nil, err
			}
		}
	}
	if g == nil {
		st.startSyncer()
		return st, boot, nil
	}

	if err := st.recoverWAL(live, g, boot); err != nil {
		return nil, nil, err
	}
	st.startSyncer()
	return st, boot, nil
}

// recoverWAL replays the live WAL onto g, truncates a torn tail, and opens
// the append handle. A missing or header-corrupt WAL is reinitialized
// empty (prefix-0 recovery: the snapshot alone is the recovered state).
func (st *Store) recoverWAL(path string, g *store.Graph, boot *Boot) error {
	data, err := os.ReadFile(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		data = nil
	case err != nil:
		return err
	}

	valid := int64(0)
	if len(data) >= len(walMagic) && string(data[:len(walMagic)]) == walMagic {
		if hdrEnd, ok := st.checkHeader(data); ok {
			valid = hdrEnd
			off := hdrEnd
			for {
				payload, next, ok := readFrame(data, off)
				if !ok {
					break
				}
				rec, err := parseRecord(payload)
				if err != nil {
					break
				}
				applyRecord(g, &boot.Closure, rec)
				boot.Records++
				valid, off = next, next
			}
			if valid < int64(len(data)) {
				boot.Truncated = true
			}
		}
	} else if len(data) > 0 {
		boot.Truncated = true
	}

	if valid == 0 {
		// No intact header: reinitialize the WAL for this generation.
		if len(data) > 0 {
			boot.Truncated = true
		}
		wal, size, err := createWAL(path, st.gen, g.Version())
		if err != nil {
			return err
		}
		st.wal, st.path, st.size = wal, path, size
		return nil
	}
	if valid < int64(len(data)) {
		if err := os.Truncate(path, valid); err != nil {
			return err
		}
	}
	wal, err := newWALFile(path, os.O_WRONLY|os.O_APPEND)
	if err != nil {
		return err
	}
	st.wal, st.path, st.size = wal, path, valid
	return nil
}

// checkHeader validates the WAL's header frame (frame 0) and returns the
// offset where record frames begin.
func (st *Store) checkHeader(data []byte) (int64, bool) {
	payload, next, ok := readFrame(data, int64(len(walMagic)))
	if !ok {
		return 0, false
	}
	d := &decoder{buf: payload}
	gen := d.uvarint()
	d.uvarint() // base version, informational
	if d.err != nil || len(d.buf) != 0 || gen != st.gen {
		return 0, false
	}
	return next, true
}

// readFrame parses the frame at off: payload, offset past the frame, and
// whether the frame is intact (length in bounds, CRC matches).
func readFrame(data []byte, off int64) ([]byte, int64, bool) {
	if off+frameHeaderLen > int64(len(data)) {
		return nil, 0, false
	}
	n := int64(binary.LittleEndian.Uint32(data[off:]))
	sum := binary.LittleEndian.Uint32(data[off+4:])
	start := off + frameHeaderLen
	if start+n > int64(len(data)) {
		return nil, 0, false
	}
	payload := data[start : start+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, 0, false
	}
	return payload, start + n, true
}

// appendFrame frames payload (length + CRC-32C header) onto buf.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	return append(append(buf, hdr[:]...), payload...)
}

// applyRecord replays one WAL record onto the recovered graph and closure
// accumulator. Ops replay verbatim — no rule evaluation — because the
// stream already contains every inferred triple the original commit added.
func applyRecord(g *store.Graph, closure *reasoner.ClosureState, rec Record) {
	if rec.Cleared {
		g.Clear()
		closure.Derivations = nil
	}
	for _, op := range rec.Ops {
		if op.Remove {
			g.Remove(op.T.S, op.T.P, op.T.O)
		} else {
			g.AddTriple(op.T)
		}
	}
	g.ForceVersion(rec.EndVersion)
	closure.TotalInferred = rec.TotalInferred
	closure.Derivations = append(closure.Derivations, rec.Derivations...)
}

// createWAL writes a fresh WAL (magic + header frame) and returns the open
// append handle and its size.
func createWAL(path string, gen, baseVersion uint64) (walFile, int64, error) {
	e := &encoder{buf: []byte(walMagic)}
	hdr := &encoder{}
	hdr.uvarint(gen)
	hdr.uvarint(baseVersion)
	e.buf = appendFrame(e.buf, hdr.buf)

	f, err := newWALFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC)
	if err != nil {
		return nil, 0, err
	}
	if _, err := f.Write(e.buf); err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, int64(len(e.buf)), nil
}

// Append frames rec, writes it to the WAL, and applies the sync policy.
// On a write error the Store is poisoned: the log may end in a torn frame,
// so accepting further appends could strand acknowledged records behind an
// unreadable middle; every later Append fails until a Compact rewrites the
// log. The caller must not acknowledge the commit when Append errors.
//
//feo:wal-append
func (st *Store) Append(rec Record) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.broken != nil {
		return st.broken
	}
	if st.wal == nil {
		return errors.New("durable: store has no snapshot yet (seed with Compact)")
	}
	frame := appendFrame(nil, appendRecord(nil, rec))
	if _, err := st.wal.Write(frame); err != nil {
		st.broken = fmt.Errorf("durable: WAL append failed (store poisoned until compaction): %w", err)
		return st.broken
	}
	st.size += int64(len(frame))
	if st.opts.Sync == SyncAlways {
		if err := st.wal.Sync(); err != nil {
			st.broken = fmt.Errorf("durable: WAL sync failed (store poisoned until compaction): %w", err)
			return st.broken
		}
	} else {
		st.dirty = true
	}
	return nil
}

// WALSize returns the current WAL length in bytes — the compaction
// trigger's input.
func (st *Store) WALSize() int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.size
}

// Generation returns the current snapshot generation.
func (st *Store) Generation() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.gen
}

// Compact durably writes (g, closure) as the next-generation snapshot and
// rotates the WAL: snapshot to a temp file, fsync, atomic rename over
// snapshot.bin, directory fsync, fresh wal-(G+1).log, then delete the old
// log. The caller must guarantee g and closure are quiescent and include
// every record appended so far (feo.Session calls it under its write
// lock). Compaction also repairs a poisoned Store: the new snapshot
// captures the full in-memory state, so the torn log is obsolete.
func (st *Store) Compact(g *store.Graph, closure reasoner.ClosureState) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	newGen := st.gen + 1
	if err := writeSnapshotFile(st.dir, newGen, g, closure); err != nil {
		return err
	}
	// The new snapshot is durable; from here the old WAL is obsolete and
	// any crash recovers from the new generation (Open deletes leftovers).
	st.rotateWAL(newGen, g.Version())
	return st.broken
}

// rotateWAL switches the store to a fresh WAL for newGen after its
// snapshot has durably replaced snapshot.bin: close the old log, create
// wal-newGen.log, fsync the directory, delete the old log. On success the
// store is healthy (broken cleared — the new snapshot captures the full
// state, so a previously torn log is obsolete); on failure it is
// poisoned. st.mu held by the caller.
func (st *Store) rotateWAL(newGen, baseVersion uint64) {
	oldWAL := st.path
	if st.wal != nil {
		st.wal.Close()
		st.wal = nil
	}
	path := filepath.Join(st.dir, walName(newGen))
	wal, size, err := createWAL(path, newGen, baseVersion)
	if err != nil {
		st.broken = fmt.Errorf("durable: WAL rotation failed (store poisoned): %w", err)
		return
	}
	if err := syncDir(st.dir); err != nil {
		wal.Close()
		st.broken = fmt.Errorf("durable: WAL rotation failed (store poisoned): %w", err)
		return
	}
	if oldWAL != "" && oldWAL != path {
		os.Remove(oldWAL) // best-effort; Open cleans up leftovers
	}
	st.gen, st.wal, st.path, st.size = newGen, wal, path, size
	st.dirty = false
	st.broken = nil
}

// PendingCompact is a two-phase compaction in flight: BeginCompact
// reserved the generation, WriteSnapshot durably wrote its bytes to a
// side file, and Install/Abort decides whether that file becomes the
// store's snapshot. The pending file is invisible to recovery — a crash
// at any point before Install leaves the store exactly as it was.
type PendingCompact struct {
	st   *Store
	gen  uint64
	path string
	done bool
}

// BeginCompact reserves the next snapshot generation for a two-phase
// compaction. Cheap (one lock acquisition); the caller then serializes
// the state with WriteSnapshot — typically off every lock, from an
// immutable store.Snapshot view — and finishes with Install or Abort.
func (st *Store) BeginCompact() (*PendingCompact, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.broken == errClosed {
		return nil, errClosed
	}
	return &PendingCompact{
		st:   st,
		gen:  st.gen + 1,
		path: filepath.Join(st.dir, snapshotName+".pending"),
	}, nil
}

// WriteSnapshot serializes (g, closure) as the pending generation's
// snapshot and fsyncs it to the side file. This is the heavy step —
// encode plus fsync — and takes no Store lock: appends and even a
// concurrent classic Compact proceed freely while it runs. The caller
// must guarantee g and closure do not mutate during the call; a frozen
// snapshot view satisfies that by construction.
func (pc *PendingCompact) WriteSnapshot(g *store.Graph, closure reasoner.ClosureState) error {
	data, err := encodeSnapshot(pc.gen, g, closure)
	if err != nil {
		return err
	}
	return writeFileSync(pc.path, data)
}

// Install atomically promotes the pending snapshot file to snapshot.bin
// and rotates the WAL to the new generation at baseVersion. The caller
// must guarantee — under whatever lock serializes its writers — that no
// record has been appended since the state WriteSnapshot serialized
// (otherwise those acknowledged records would be lost with the rotation;
// verify the graph version and Abort instead). Install fails without
// side effects if another compaction already took the generation.
func (pc *PendingCompact) Install(baseVersion uint64) error {
	st := pc.st
	st.mu.Lock()
	defer st.mu.Unlock()
	if pc.done {
		return errors.New("durable: Install on a finished compaction")
	}
	pc.done = true
	if st.broken == errClosed {
		os.Remove(pc.path)
		return errClosed
	}
	if st.gen+1 != pc.gen {
		os.Remove(pc.path)
		return fmt.Errorf("durable: pending compaction superseded (generation %d is taken)", pc.gen)
	}
	if err := os.Rename(pc.path, filepath.Join(st.dir, snapshotName)); err != nil {
		os.Remove(pc.path)
		return err
	}
	if err := syncDir(st.dir); err != nil {
		// The rename may or may not be durable; either way recovery is
		// sound (the old WAL's records are folded into both generations),
		// but this store's log state is now unknown — poison it.
		st.broken = fmt.Errorf("durable: snapshot install failed (store poisoned): %w", err)
		return st.broken
	}
	st.rotateWAL(pc.gen, baseVersion)
	return st.broken
}

// Abort discards the pending snapshot file. Safe to call at any point
// after BeginCompact; idempotent.
func (pc *PendingCompact) Abort() {
	if pc.done {
		return
	}
	pc.done = true
	os.Remove(pc.path)
}

// Sync forces an fsync of the WAL now, regardless of policy.
//
//feo:wal-sync
func (st *Store) Sync() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.syncLocked()
}

//feo:wal-sync
func (st *Store) syncLocked() error {
	if st.broken != nil {
		return st.broken
	}
	if st.wal == nil || !st.dirty {
		return nil
	}
	if err := st.wal.Sync(); err != nil {
		st.broken = fmt.Errorf("durable: WAL sync failed (store poisoned until compaction): %w", err)
		return st.broken
	}
	st.dirty = false
	return nil
}

var errClosed = errors.New("durable: store is closed")

// Close flushes and closes the WAL. The Store accepts no appends
// afterwards.
func (st *Store) Close() error {
	if st.stop != nil {
		close(st.stop)
		<-st.syncDone
		st.stop = nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.broken == errClosed {
		return nil
	}
	err := st.syncLocked()
	if st.wal != nil {
		if cerr := st.wal.Close(); err == nil {
			err = cerr
		}
		st.wal = nil
	}
	st.broken = errClosed
	if err == errClosed {
		err = nil
	}
	return err
}

// startSyncer launches the SyncInterval background fsync goroutine.
func (st *Store) startSyncer() {
	if st.opts.Sync != SyncInterval {
		return
	}
	st.stop = make(chan struct{})
	st.syncDone = make(chan struct{})
	go func() {
		defer close(st.syncDone)
		ticker := time.NewTicker(st.opts.SyncEvery)
		defer ticker.Stop()
		for {
			select {
			case <-st.stop:
				return
			case <-ticker.C:
				st.mu.Lock()
				if st.broken == nil {
					if err := st.syncLocked(); err != nil && st.broken == nil {
						st.broken = err
					}
				}
				st.mu.Unlock()
			}
		}
	}()
}

// ---- snapshot file ----

// encodeSnapshot serializes generation gen of (g, closure) to the
// snapshot file format: magic + payload + trailing CRC-32C over
// everything before it.
func encodeSnapshot(gen uint64, g *store.Graph, closure reasoner.ClosureState) ([]byte, error) {
	var gbuf bytes.Buffer
	if err := g.WriteSnapshot(&gbuf); err != nil {
		return nil, err
	}
	e := &encoder{buf: []byte(snapMagic)}
	e.uvarint(gen)
	e.uvarint(uint64(gbuf.Len()))
	e.buf = append(e.buf, gbuf.Bytes()...)
	e.buf = appendClosure(e.buf, g, closure)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.Checksum(e.buf, castagnoli))
	return append(e.buf, sum[:]...), nil
}

// writeFileSync replaces path with data and fsyncs it; on error the file
// is removed.
//
//feo:wal-sync
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// writeSnapshotFile atomically replaces dir/snapshot.bin with generation
// gen of (g, closure): temp file, fsync, rename, directory fsync.
func writeSnapshotFile(dir string, gen uint64, g *store.Graph, closure reasoner.ClosureState) error {
	data, err := encodeSnapshot(gen, g, closure)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, snapshotName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapshotName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// readSnapshotFile loads dir/snapshot.bin. A missing file returns a nil
// graph and no error (fresh directory); a corrupt file returns an error —
// the snapshot is the recovery root, so silently booting empty would
// discard acknowledged state.
func readSnapshotFile(path string) (uint64, *store.Graph, reasoner.ClosureState, error) {
	var closure reasoner.ClosureState
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, closure, nil
	}
	if err != nil {
		return 0, nil, closure, err
	}
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return 0, nil, closure, fmt.Errorf("durable: %s is not a snapshot file", path)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return 0, nil, closure, fmt.Errorf("durable: snapshot %s failed its checksum", path)
	}
	d := &decoder{buf: body[len(snapMagic):]}
	gen := d.uvarint()
	glen := d.uvarint()
	if d.err != nil || glen > uint64(len(d.buf)) {
		return 0, nil, closure, fmt.Errorf("durable: corrupt snapshot header in %s", path)
	}
	g, err := store.ReadSnapshot(bytes.NewReader(d.buf[:glen]))
	if err != nil {
		return 0, nil, closure, err
	}
	closure, rest, err := parseClosure(d.buf[glen:], g)
	if err != nil {
		return 0, nil, closure, err
	}
	if len(rest) != 0 {
		return 0, nil, closure, fmt.Errorf("durable: %d trailing bytes in snapshot %s", len(rest), path)
	}
	return gen, g, closure, nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
//
//feo:wal-sync
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
