package durable

// WALFile re-exports the internal WAL handle interface so external test
// packages (package durable_test) can inject failpoint implementations —
// the reader-latency harness drives a whole feo.Session through a WAL
// whose fsync stalls on command.
type WALFile = walFile

// SetNewWALFile swaps the WAL file factory and returns a restore func.
// Test-only; the in-package fault-injection tests reassign newWALFile
// directly.
func SetNewWALFile(f func(path string, flag int) (WALFile, error)) (restore func()) {
	old := newWALFile
	newWALFile = func(path string, flag int) (walFile, error) { return f(path, flag) }
	return func() { newWALFile = old }
}
