package durable

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/store"
)

func tIRI(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }

func tTriple(n int) rdf.Triple {
	return rdf.Triple{S: tIRI(fmt.Sprintf("s%d", n)), P: tIRI("p"), O: tIRI(fmt.Sprintf("o%d", n))}
}

// testRecord builds the record a commit adding triple n would produce
// against a graph at version v.
func testRecord(n int, v uint64) Record {
	return Record{
		Ops:           []store.TermOp{{T: tTriple(n)}},
		EndVersion:    v,
		TotalInferred: n,
		Derivations: []reasoner.TracedDerivation{{
			Conclusion: tTriple(n), Rule: "test-rule",
			Premises: []rdf.Triple{tTriple(n + 1000)},
		}},
	}
}

// seedStore opens dir, seeds it with base as generation 1, and returns the
// open store.
func seedStore(t *testing.T, dir string, base *store.Graph) *Store {
	t.Helper()
	st, boot, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if boot.Graph != nil {
		t.Fatal("fresh directory should boot with a nil graph")
	}
	if err := st.Compact(base, reasoner.ClosureState{}); err != nil {
		t.Fatalf("seed Compact: %v", err)
	}
	return st
}

func TestRecordCodecRoundTrip(t *testing.T) {
	recs := []Record{
		{},
		{Cleared: true, EndVersion: 42},
		testRecord(1, 7),
		{
			Cleared: true,
			Ops: []store.TermOp{
				{T: tTriple(1)},
				{Remove: true, T: rdf.Triple{S: tIRI("s"), P: tIRI("p"), O: rdf.NewLangLiteral("héllo", "fr")}},
				{T: rdf.Triple{S: rdf.NewBlank("b0"), P: tIRI("p"), O: rdf.NewTypedLiteral("3", rdf.XSDInteger)}},
			},
			EndVersion:    1 << 40,
			TotalInferred: 12345,
			Derivations: []reasoner.TracedDerivation{
				{Conclusion: tTriple(9), Rule: "prp-trp", Premises: []rdf.Triple{tTriple(1), tTriple(2)}},
				{Conclusion: tTriple(10), Rule: "cax-sco"},
			},
		},
	}
	for i, rec := range recs {
		payload := appendRecord(nil, rec)
		got, err := parseRecord(payload)
		if err != nil {
			t.Fatalf("rec %d: parse: %v", i, err)
		}
		if got.Cleared != rec.Cleared || got.EndVersion != rec.EndVersion ||
			got.TotalInferred != rec.TotalInferred ||
			len(got.Ops) != len(rec.Ops) || len(got.Derivations) != len(rec.Derivations) {
			t.Fatalf("rec %d: roundtrip mismatch\n got %+v\nwant %+v", i, got, rec)
		}
		for j := range rec.Ops {
			if got.Ops[j] != rec.Ops[j] {
				t.Fatalf("rec %d op %d: %+v != %+v", i, j, got.Ops[j], rec.Ops[j])
			}
		}
		for j := range rec.Derivations {
			if got.Derivations[j].Conclusion != rec.Derivations[j].Conclusion ||
				got.Derivations[j].Rule != rec.Derivations[j].Rule ||
				len(got.Derivations[j].Premises) != len(rec.Derivations[j].Premises) {
				t.Fatalf("rec %d derivation %d mismatch", i, j)
			}
		}
	}
}

func TestRecordCodecRejectsDamage(t *testing.T) {
	payload := appendRecord(nil, testRecord(3, 9))
	// Every truncation must error (the payload has no optional tail).
	for cut := 0; cut < len(payload); cut++ {
		if _, err := parseRecord(payload[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := parseRecord(append(payload[:len(payload):len(payload)], 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	bad := append([]byte(nil), payload...)
	bad[0] |= 0x80 // unknown flag bit
	if _, err := parseRecord(bad); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestFreshDirSeedAppendReopen(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	base.AddTriple(tTriple(0))
	st := seedStore(t, dir, base)

	// Append is refused before the seed... (checked via a second fresh dir)
	st2, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Append(testRecord(1, 1)); err == nil {
		t.Fatal("Append before seed Compact should fail")
	}
	st2.Close()

	// ...and accepted after.
	live := base.Clone()
	for n := 1; n <= 3; n++ {
		rec := testRecord(n, live.Version()+2)
		for _, op := range rec.Ops {
			live.AddTriple(op.T)
		}
		live.ForceVersion(rec.EndVersion)
		if err := st.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", n, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st3, boot, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st3.Close()
	if boot.Records != 3 || boot.Truncated {
		t.Fatalf("boot = %d records, truncated=%v; want 3, false", boot.Records, boot.Truncated)
	}
	if !boot.Graph.Equal(live) {
		t.Fatal("replayed graph differs from live graph")
	}
	if boot.Graph.Version() != live.Version() {
		t.Fatalf("replayed version %d, want %d", boot.Graph.Version(), live.Version())
	}
	if boot.Closure.TotalInferred != 3 || len(boot.Closure.Derivations) != 3 {
		t.Fatalf("closure = %+v", boot.Closure)
	}
	// Double Close is safe.
	if err := st3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st3.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestTruncationEveryOffset cuts the WAL at every byte offset and asserts
// prefix recovery: the booted graph always equals the state after some
// prefix of the appended records — specifically the longest prefix whose
// frames survived intact — and never panics or reports a corrupt middle.
func TestTruncationEveryOffset(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	base.AddTriple(tTriple(0))
	st := seedStore(t, dir, base)

	// Record the expected graph after each prefix of appends.
	const k = 5
	prefixes := []*store.Graph{base.Clone()}
	live := base.Clone()
	for n := 1; n <= k; n++ {
		rec := testRecord(n, live.Version()+2)
		live.AddTriple(rec.Ops[0].T)
		live.ForceVersion(rec.EndVersion)
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, live.Clone())
	}
	st.Close()

	walPath := filepath.Join(dir, walName(st.Generation()))
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(full); cut++ {
		scratch := t.TempDir()
		if err := os.WriteFile(filepath.Join(scratch, snapshotName), mustRead(t, filepath.Join(dir, snapshotName)), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(scratch, walName(st.Generation())), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, boot, err := Open(scratch, Options{})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		matched := -1
		for i, pg := range prefixes {
			if boot.Graph.Equal(pg) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Fatalf("cut %d: recovered graph matches no prefix", cut)
		}
		if boot.Records != matched {
			t.Fatalf("cut %d: %d records replayed but graph matches prefix %d", cut, boot.Records, matched)
		}
		if cut == len(full) && (boot.Truncated || matched != k) {
			t.Fatalf("intact WAL: truncated=%v prefix=%d", boot.Truncated, matched)
		}
		if cut < len(full) && matched == k && !boot.Truncated && boot.Records == k {
			// A cut strictly inside the file that still yields all k records
			// can only be the loss of pure padding — impossible here.
			t.Fatalf("cut %d: full recovery from a truncated file", cut)
		}
		// The reopened store must accept appends (tail repaired).
		if err := st2.Append(testRecord(99, boot.Graph.Version()+1)); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		st2.Close()
	}
}

// TestBitFlipCorruption flips random bits in the WAL body and asserts
// recovery still lands on a clean record prefix.
func TestBitFlipCorruption(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	base.AddTriple(tTriple(0))
	st := seedStore(t, dir, base)
	const k = 5
	live := base.Clone()
	prefixes := []*store.Graph{base.Clone()}
	for n := 1; n <= k; n++ {
		rec := testRecord(n, live.Version()+2)
		live.AddTriple(rec.Ops[0].T)
		live.ForceVersion(rec.EndVersion)
		if err := st.Append(rec); err != nil {
			t.Fatal(err)
		}
		prefixes = append(prefixes, live.Clone())
	}
	st.Close()
	walPath := filepath.Join(dir, walName(st.Generation()))
	full := mustRead(t, walPath)
	snap := mustRead(t, filepath.Join(dir, snapshotName))

	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		mut := append([]byte(nil), full...)
		mut[rng.Intn(len(mut))] ^= 1 << rng.Intn(8)
		scratch := t.TempDir()
		os.WriteFile(filepath.Join(scratch, snapshotName), snap, 0o644)
		os.WriteFile(filepath.Join(scratch, walName(st.Generation())), mut, 0o644)
		st2, boot, err := Open(scratch, Options{})
		if err != nil {
			t.Fatalf("flip %d: Open: %v", i, err)
		}
		matched := false
		for _, pg := range prefixes {
			if boot.Graph.Equal(pg) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("flip %d: recovered graph matches no prefix (records=%d)", i, boot.Records)
		}
		st2.Close()
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// faultFile injects a write failure after budget bytes, simulating a crash
// mid-frame: bytes beyond the budget are silently dropped, the write
// reports an error, and every later operation fails.
type faultFile struct {
	f      *os.File
	budget int
	dead   bool
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.dead {
		return 0, errors.New("fault: file is dead")
	}
	if len(p) <= ff.budget {
		ff.budget -= len(p)
		return ff.f.Write(p)
	}
	n, _ := ff.f.Write(p[:ff.budget])
	ff.budget = 0
	ff.dead = true
	return n, errors.New("fault: write cut short")
}

func (ff *faultFile) Sync() error {
	if ff.dead {
		return errors.New("fault: file is dead")
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// TestCrashFaultInjection arms the newWALFile failpoint so a randomized
// append stream dies mid-write at an arbitrary byte offset, then verifies:
// the failed Append errors (the commit is never acknowledged), the store
// stays poisoned for later appends, reopening recovers exactly the
// acknowledged prefix, and Compact repairs the poisoned store in place.
func TestCrashFaultInjection(t *testing.T) {
	orig := newWALFile
	defer func() { newWALFile = orig }()

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		newWALFile = orig
		dir := t.TempDir()
		base := store.New()
		base.AddTriple(tTriple(0))
		st := seedStore(t, dir, base)

		budget := rng.Intn(600) // dies somewhere inside the first few frames
		armed := false
		newWALFile = func(path string, flag int) (walFile, error) {
			f, err := os.OpenFile(path, flag, 0o644)
			if err != nil {
				return nil, err
			}
			if armed {
				return &faultFile{f: f, budget: budget}, nil
			}
			return f, nil
		}
		// Re-open through the failpoint so the append handle is faulty.
		st.Close()
		armed = true
		st, boot, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d: reopen: %v", trial, err)
		}
		live := boot.Graph.Clone()

		acked := []*store.Graph{live.Clone()}
		crashed := false
		for n := 1; n <= 8; n++ {
			rec := testRecord(n, live.Version()+2)
			next := live.Clone()
			next.AddTriple(rec.Ops[0].T)
			next.ForceVersion(rec.EndVersion)
			if err := st.Append(rec); err != nil {
				crashed = true
				// Poisoned: every later append must also fail.
				if err2 := st.Append(rec); err2 == nil {
					t.Fatalf("trial %d: append succeeded on a poisoned store", trial)
				}
				break
			}
			live = next
			acked = append(acked, live.Clone())
		}
		if !crashed {
			t.Fatalf("trial %d: fault never fired (budget %d)", trial, budget)
		}

		// Crash: drop the handle without Close (Close would flush state we
		// pretend was lost) and recover from disk.
		newWALFile = orig
		st2, boot2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d: recovery open: %v", trial, err)
		}
		matched := -1
		for i, ag := range acked {
			if boot2.Graph.Equal(ag) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Fatalf("trial %d: recovered state matches no acknowledged prefix", trial)
		}
		if matched != len(acked)-1 {
			t.Fatalf("trial %d: recovered prefix %d but %d commits were acknowledged",
				trial, matched, len(acked)-1)
		}
		st2.Close()

		// Compact repairs the poisoned store: appends flow again.
		if err := st.Compact(live, reasoner.ClosureState{}); err != nil {
			t.Fatalf("trial %d: repair Compact: %v", trial, err)
		}
		if err := st.Append(testRecord(50, live.Version()+1)); err != nil {
			t.Fatalf("trial %d: append after repair: %v", trial, err)
		}
		st.Close()
	}
}

func TestCompactionRotatesAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	base.AddTriple(tTriple(0))
	st := seedStore(t, dir, base)
	gen1 := st.Generation()

	live := base.Clone()
	rec := testRecord(1, live.Version()+2)
	live.AddTriple(rec.Ops[0].T)
	live.ForceVersion(rec.EndVersion)
	if err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
	sizeBefore := st.WALSize()
	if err := st.Compact(live, reasoner.ClosureState{TotalInferred: 1}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st.Generation() != gen1+1 {
		t.Fatalf("generation %d, want %d", st.Generation(), gen1+1)
	}
	if st.WALSize() >= sizeBefore {
		t.Fatalf("WAL did not shrink after compaction (%d -> %d)", sizeBefore, st.WALSize())
	}
	if _, err := os.Stat(filepath.Join(dir, walName(gen1))); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("old WAL survived compaction: %v", err)
	}
	st.Close()

	st2, boot, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if boot.Records != 0 || !boot.Graph.Equal(live) || boot.Closure.TotalInferred != 1 {
		t.Fatalf("post-compaction boot wrong: records=%d inferred=%d", boot.Records, boot.Closure.TotalInferred)
	}
}

func TestStaleWALCleanup(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	base.AddTriple(tTriple(0))
	st := seedStore(t, dir, base)
	st.Close()
	// Simulate an interrupted compaction: a WAL from a different generation.
	stale := filepath.Join(dir, walName(st.Generation()+7))
	if err := os.WriteFile(stale, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, boot, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if boot.Graph == nil || !boot.Graph.Equal(base) {
		t.Fatal("boot lost the snapshot state")
	}
	if _, err := os.Stat(stale); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale WAL not deleted")
	}
}

func TestCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	base.AddTriple(tTriple(0))
	st := seedStore(t, dir, base)
	st.Close()

	path := filepath.Join(dir, snapshotName)
	data := mustRead(t, path)
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot silently accepted")
	}
}

func TestClearInWAL(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	base.AddTriple(tTriple(0))
	base.AddTriple(tTriple(1))
	st := seedStore(t, dir, base)

	live := base.Clone()
	live.Clear()
	live.AddTriple(tTriple(7))
	rec := Record{Cleared: true, Ops: []store.TermOp{{T: tTriple(7)}},
		EndVersion: live.Version() + 5, TotalInferred: 0}
	live.ForceVersion(rec.EndVersion)
	if err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, boot, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !boot.Graph.Equal(live) {
		t.Fatalf("Clear record replayed wrong: %d triples", boot.Graph.Len())
	}
	if boot.Graph.Has(tTriple(0).S, tTriple(0).P, tTriple(0).O) {
		t.Fatal("pre-Clear triple survived replay")
	}
	if len(boot.Closure.Derivations) != 0 {
		t.Fatal("Clear record should wipe accumulated derivations")
	}
}
