// Reader latency under a stalled writer. This lives in package
// durable_test (not feo) because the stall is injected through durable's
// WAL-file seam, which only this directory's test build can reach; the
// session under test is a real feo.Session, so the harness proves the
// full serving stack — not just the store — keeps readers lock-free.
package durable_test

import (
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/feo"
	"repro/internal/durable"
)

// stallFile wraps a real WAL file; while armed, Sync parks until released
// and reports that it entered the stall.
type stallFile struct {
	f       durable.WALFile
	armed   *atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func (s *stallFile) Write(p []byte) (int, error) { return s.f.Write(p) }

func (s *stallFile) Sync() error {
	if s.armed.Load() {
		select {
		case s.entered <- struct{}{}:
		default:
		}
		<-s.release
	}
	return s.f.Sync()
}

func (s *stallFile) Close() error { return s.f.Close() }

// TestReaderLatencyUnderStalledWriter pins the MVCC serving guarantee
// end to end: a durable commit parked inside its WAL fsync — the
// slowest, least bounded step of a write — must not delay any reader.
// Snapshot reads complete promptly and observe exactly the last
// published (pre-stall) version; ExplainTriple, the one live read,
// completes too because the session releases its live lock before the
// append. Under the old RWMutex design every one of these calls queued
// behind the fsync.
func TestReaderLatencyUnderStalledWriter(t *testing.T) {
	dir := t.TempDir()
	armed := &atomic.Bool{}
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	restore := durable.SetNewWALFile(func(path string, flag int) (durable.WALFile, error) {
		f, err := os.OpenFile(path, flag, 0o644)
		if err != nil {
			return nil, err
		}
		return &stallFile{f: f, armed: armed, entered: entered, release: release}, nil
	})
	defer restore()

	s, err := feo.Open(feo.Options{DataDir: dir}) // SyncAlways: every commit fsyncs
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer s.Close()
	if _, err := s.Update("INSERT DATA { <http://x/stall/warm> <http://x/stall/p> <http://x/stall/o> . }"); err != nil {
		t.Fatalf("warm-up commit: %v", err)
	}
	pre := s.Snapshot()
	preVer := pre.Version()

	armed.Store(true)
	writerDone := make(chan error, 1)
	go func() {
		_, err := s.Update("INSERT DATA { <http://x/stall/blocked> <http://x/stall/p> <http://x/stall/o> . }")
		writerDone <- err
	}()
	select {
	case <-entered: // the writer is parked inside its commit's fsync
	case <-time.After(30 * time.Second):
		t.Fatal("writer never reached the WAL fsync")
	}

	readsDone := make(chan struct{})
	go func() {
		defer close(readsDone)
		sn := s.Snapshot()
		if got := sn.Version(); got != preVer {
			t.Errorf("reader pinned version %d during stall, want pre-commit %d", got, preVer)
		}
		res, err := sn.Query("SELECT ?o WHERE { <http://x/stall/blocked> <http://x/stall/p> ?o }")
		if err != nil {
			t.Errorf("query under stall: %v", err)
		} else if res.Len() != 0 {
			t.Errorf("reader observed the un-published, un-logged commit")
		}
		if st := sn.Stats(); !strings.Contains(st, "triples=") {
			t.Errorf("stats under stall: %q", st)
		}
		sn.Users()
		sn.Validate()
		// Live read: the session drops its live lock before the append.
		s.ExplainTriple(feo.FEO("x"), feo.FEO("y"), feo.FEO("z"))
	}()
	select {
	case <-readsDone:
	case <-time.After(30 * time.Second):
		t.Fatal("readers blocked behind a writer stalled in its WAL fsync")
	}

	armed.Store(false)
	close(release)
	if err := <-writerDone; err != nil {
		t.Fatalf("stalled commit failed after release: %v", err)
	}
	fresh := s.Snapshot()
	if fresh.Version() <= preVer {
		t.Fatalf("commit did not publish after release")
	}
	res, err := fresh.Query("SELECT ?o WHERE { <http://x/stall/blocked> <http://x/stall/p> ?o }")
	if err != nil || res.Len() != 1 {
		t.Fatalf("released commit not visible to a fresh pin: rows=%v err=%v", res, err)
	}
}
