package durable

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rdf"
	"repro/internal/reasoner"
	"repro/internal/store"
)

// Byte-level encoding shared by the WAL record payloads and the snapshot
// file's closure section. Strings are uvarint-length-prefixed; terms are a
// kind byte plus their strings (literals add datatype and lang); triples
// are three terms.

type encoder struct {
	buf []byte
}

func (e *encoder) uvarint(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) byte(b byte)      { e.buf = append(e.buf, b) }
func (e *encoder) str(s string)     { e.uvarint(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) term(t rdf.Term) {
	e.byte(byte(t.Kind))
	e.str(t.Value)
	if t.Kind == rdf.KindLiteral {
		e.str(t.Datatype)
		e.str(t.Lang)
	}
}
func (e *encoder) triple(t rdf.Triple) {
	e.term(t.S)
	e.term(t.P)
	e.term(t.O)
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("durable: truncated uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail("durable: truncated byte")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)) {
		d.fail("durable: string length %d exceeds remaining %d bytes", n, len(d.buf))
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) term() rdf.Term {
	kind := rdf.TermKind(d.byte())
	t := rdf.Term{Kind: kind}
	switch kind {
	case rdf.KindIRI, rdf.KindBlank:
		t.Value = d.str()
	case rdf.KindLiteral:
		t.Value = d.str()
		t.Datatype = d.str()
		t.Lang = d.str()
	default:
		d.fail("durable: invalid term kind %d", kind)
	}
	return t
}

func (d *decoder) triple() rdf.Triple {
	return rdf.Triple{S: d.term(), P: d.term(), O: d.term()}
}

// count reads a collection length bounded by what remains in the buffer
// (every element costs at least one byte), so corrupt counts fail instead
// of allocating unbounded slices.
func (d *decoder) count(perElem int, what string) int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.buf)/perElem) {
		d.fail("durable: %s count %d exceeds remaining payload", what, v)
	}
	if d.err != nil {
		return 0
	}
	return int(v)
}

// ---- record payload ----

const recFlagCleared = 1 << 0

// appendRecord encodes rec as a WAL record payload.
func appendRecord(buf []byte, rec Record) []byte {
	e := &encoder{buf: buf}
	var flags byte
	if rec.Cleared {
		flags |= recFlagCleared
	}
	e.byte(flags)
	e.uvarint(rec.EndVersion)
	e.uvarint(uint64(rec.TotalInferred))
	e.uvarint(uint64(len(rec.Ops)))
	for _, op := range rec.Ops {
		var kind byte
		if op.Remove {
			kind = 1
		}
		e.byte(kind)
		e.triple(op.T)
	}
	appendDerivations(e, rec.Derivations)
	return e.buf
}

func parseRecord(payload []byte) (Record, error) {
	d := &decoder{buf: payload}
	var rec Record
	flags := d.byte()
	if flags&^recFlagCleared != 0 {
		d.fail("durable: unknown record flags %#x", flags)
	}
	rec.Cleared = flags&recFlagCleared != 0
	rec.EndVersion = d.uvarint()
	rec.TotalInferred = int(d.uvarint())
	nOps := d.count(4, "op")
	if d.err == nil && nOps > 0 {
		rec.Ops = make([]store.TermOp, nOps)
		for i := range rec.Ops {
			kind := d.byte()
			if d.err == nil && kind > 1 {
				d.fail("durable: unknown op kind %d", kind)
			}
			rec.Ops[i] = store.TermOp{Remove: kind == 1, T: d.triple()}
		}
	}
	rec.Derivations = parseDerivations(d)
	if d.err == nil && len(d.buf) != 0 {
		d.fail("durable: %d trailing bytes after record", len(d.buf))
	}
	return rec, d.err
}

// ---- closure / derivations ----

func appendDerivations(e *encoder, ds []reasoner.TracedDerivation) {
	e.uvarint(uint64(len(ds)))
	for _, d := range ds {
		e.triple(d.Conclusion)
		e.str(d.Rule)
		e.uvarint(uint64(len(d.Premises)))
		for _, p := range d.Premises {
			e.triple(p)
		}
	}
}

func parseDerivations(d *decoder) []reasoner.TracedDerivation {
	n := d.count(4, "derivation")
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]reasoner.TracedDerivation, n)
	for i := range out {
		out[i].Conclusion = d.triple()
		out[i].Rule = d.str()
		nPrem := d.count(4, "premise")
		if d.err != nil {
			return nil
		}
		if nPrem > 0 {
			out[i].Premises = make([]rdf.Triple, nPrem)
			for j := range out[i].Premises {
				out[i].Premises[j] = d.triple()
			}
		}
	}
	if d.err != nil {
		return nil
	}
	return out
}

// The snapshot file's closure section is dictionary-coded: derivation
// conclusions and premises are triples of the snapshotted graph, so their
// terms are encoded as references into the graph dictionary the snapshot
// already carries — a uvarint instead of re-serialized strings, decoded by
// a slice index instead of an allocation. (WAL records keep the
// self-describing term encoding above: their ops introduce terms the
// snapshot dictionary has never seen.) The rare term that is not interned
// — nothing produces one today — falls back to an inline encoding.

func (e *encoder) termRef(g *store.Graph, t rdf.Term) {
	if id, ok := g.LookupID(t); ok {
		e.uvarint(uint64(id) + 1)
		return
	}
	e.uvarint(0)
	e.term(t)
}

func (e *encoder) tripleRef(g *store.Graph, t rdf.Triple) {
	e.termRef(g, t.S)
	e.termRef(g, t.P)
	e.termRef(g, t.O)
}

func (d *decoder) termRef(g *store.Graph) rdf.Term {
	v := d.uvarint()
	if d.err != nil {
		return rdf.Term{}
	}
	if v == 0 {
		return d.term()
	}
	if v > uint64(g.Dict().Len()) {
		d.fail("durable: term reference %d out of dictionary range %d", v-1, g.Dict().Len())
		return rdf.Term{}
	}
	return g.TermOf(store.ID(v - 1))
}

func (d *decoder) tripleRef(g *store.Graph) rdf.Triple {
	return rdf.Triple{S: d.termRef(g), P: d.termRef(g), O: d.termRef(g)}
}

func appendClosure(buf []byte, g *store.Graph, st reasoner.ClosureState) []byte {
	e := &encoder{buf: buf}
	e.uvarint(uint64(st.TotalInferred))
	e.uvarint(uint64(len(st.Derivations)))
	for _, dv := range st.Derivations {
		e.tripleRef(g, dv.Conclusion)
		e.str(dv.Rule)
		e.uvarint(uint64(len(dv.Premises)))
		for _, p := range dv.Premises {
			e.tripleRef(g, p)
		}
	}
	return e.buf
}

func parseClosure(payload []byte, g *store.Graph) (reasoner.ClosureState, []byte, error) {
	d := &decoder{buf: payload}
	var st reasoner.ClosureState
	st.TotalInferred = int(d.uvarint())
	n := d.count(4, "derivation")
	if d.err == nil && n > 0 {
		// Premises are carved out of chunked arenas instead of one
		// slice per derivation: a large closure has tens of thousands
		// of tiny premise lists, and boot latency is dominated by
		// allocation pressure. Sealed-capacity subslices keep later
		// appends from aliasing earlier lists.
		const arenaChunk = 1 << 13
		var arena []rdf.Triple
		st.Derivations = make([]reasoner.TracedDerivation, n)
		for i := range st.Derivations {
			st.Derivations[i].Conclusion = d.tripleRef(g)
			st.Derivations[i].Rule = d.str()
			nPrem := d.count(3, "premise")
			if d.err != nil {
				break
			}
			if nPrem == 0 {
				continue
			}
			if cap(arena)-len(arena) < nPrem {
				arena = make([]rdf.Triple, 0, max(arenaChunk, nPrem))
			}
			start := len(arena)
			for j := 0; j < nPrem; j++ {
				arena = append(arena, d.tripleRef(g))
			}
			st.Derivations[i].Premises = arena[start:len(arena):len(arena)]
		}
	}
	if d.err != nil {
		return reasoner.ClosureState{}, nil, d.err
	}
	return st, d.buf, nil
}
