package durable

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/reasoner"
	"repro/internal/store"
)

// TestTwoPhaseCompactInstall: the off-lock compaction protocol — reserve,
// write the pending snapshot, install — must rotate the generation and
// leave a directory that reboots to the compacted state.
func TestTwoPhaseCompactInstall(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	for i := 0; i < 30; i++ {
		base.Add(tTriple(i).S, tTriple(i).P, tTriple(i).O)
	}
	st := seedStore(t, dir, base)
	if err := st.Append(testRecord(100, base.Version()+1)); err != nil {
		t.Fatalf("Append: %v", err)
	}
	base.Add(tTriple(100).S, tTriple(100).P, tTriple(100).O)

	pc, err := st.BeginCompact()
	if err != nil {
		t.Fatalf("BeginCompact: %v", err)
	}
	if err := pc.WriteSnapshot(base, reasoner.ClosureState{}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := pc.Install(base.Version()); err != nil {
		t.Fatalf("Install: %v", err)
	}
	if got := st.Generation(); got != 2 {
		t.Fatalf("generation after install = %d, want 2", got)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName+".pending")); !os.IsNotExist(err) {
		t.Fatalf("pending file survived install: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, boot, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if boot.Graph == nil || !boot.Graph.Equal(base) {
		t.Fatalf("reboot after install did not restore the compacted graph")
	}
	if boot.Records != 0 {
		t.Fatalf("install did not rotate the WAL: %d stale records", boot.Records)
	}
}

// TestTwoPhaseCompactSuperseded: an Install racing a completed classic
// Compact must refuse (its reserved generation is stale) and clean up,
// leaving the newer compaction's state untouched.
func TestTwoPhaseCompactSuperseded(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	base.Add(tTriple(1).S, tTriple(1).P, tTriple(1).O)
	st := seedStore(t, dir, base)
	defer st.Close()

	pc, err := st.BeginCompact()
	if err != nil {
		t.Fatalf("BeginCompact: %v", err)
	}
	if err := pc.WriteSnapshot(base, reasoner.ClosureState{}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	// A full compaction completes while the pending one is off-lock.
	base.Add(tTriple(2).S, tTriple(2).P, tTriple(2).O)
	if err := st.Compact(base, reasoner.ClosureState{}); err != nil {
		t.Fatalf("intervening Compact: %v", err)
	}
	genAfter := st.Generation()
	err = pc.Install(base.Version())
	if err == nil || !strings.Contains(err.Error(), "superseded") {
		t.Fatalf("stale Install error = %v, want superseded", err)
	}
	if st.Generation() != genAfter {
		t.Fatalf("stale Install moved the generation")
	}
	if _, statErr := os.Stat(filepath.Join(dir, snapshotName+".pending")); !os.IsNotExist(statErr) {
		t.Fatalf("stale Install left the pending file behind")
	}
}

// TestTwoPhaseCompactAbortAndCrashLeftovers: Abort removes the pending
// file; and a pending file left by a crash between WriteSnapshot and
// Install is invisible to recovery — Open boots from the committed
// snapshot and deletes the leftover.
func TestTwoPhaseCompactAbortAndCrashLeftovers(t *testing.T) {
	dir := t.TempDir()
	base := store.New()
	base.Add(tTriple(1).S, tTriple(1).P, tTriple(1).O)
	st := seedStore(t, dir, base)

	pc, err := st.BeginCompact()
	if err != nil {
		t.Fatalf("BeginCompact: %v", err)
	}
	if err := pc.WriteSnapshot(base, reasoner.ClosureState{}); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	pc.Abort()
	pc.Abort() // idempotent
	if _, statErr := os.Stat(filepath.Join(dir, snapshotName+".pending")); !os.IsNotExist(statErr) {
		t.Fatalf("Abort left the pending file behind")
	}

	// Simulate a crash that left a pending snapshot with EXTRA state the
	// writer never acknowledged: recovery must ignore it.
	ahead := base.Clone()
	ahead.Add(tTriple(99).S, tTriple(99).P, tTriple(99).O)
	pc2, err := st.BeginCompact()
	if err != nil {
		t.Fatalf("BeginCompact 2: %v", err)
	}
	if err := pc2.WriteSnapshot(ahead, reasoner.ClosureState{}); err != nil {
		t.Fatalf("WriteSnapshot 2: %v", err)
	}
	st.Close() // crash point: pending written, never installed

	st2, boot, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if boot.Graph == nil || !boot.Graph.Equal(base) {
		t.Fatalf("recovery read the uninstalled pending snapshot")
	}
	if _, statErr := os.Stat(filepath.Join(dir, snapshotName+".pending")); !os.IsNotExist(statErr) {
		t.Fatalf("Open did not clean up the leftover pending file")
	}
}
