package reasoner

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://e/" + s) }

func materialize(t *testing.T, src string) *store.Graph {
	t.Helper()
	g, err := turtle.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	New(Options{}).Materialize(g)
	return g
}

const prelude = `
@prefix ex: <http://e/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix owl: <http://www.w3.org/2002/07/owl#> .
`

func TestSubClassTransitivityAndTypePropagation(t *testing.T) {
	g := materialize(t, prelude+`
ex:A rdfs:subClassOf ex:B .
ex:B rdfs:subClassOf ex:C .
ex:C rdfs:subClassOf ex:D .
ex:x a ex:A .
`)
	if !g.Has(iri("A"), rdf.SubClassOfIRI, iri("D")) {
		t.Error("scm-sco: A sco D missing")
	}
	for _, c := range []string{"B", "C", "D"} {
		if !g.IsA(iri("x"), iri(c)) {
			t.Errorf("cax-sco: x should be a %s", c)
		}
	}
}

func TestSubPropertyPropagation(t *testing.T) {
	g := materialize(t, prelude+`
ex:p1 rdfs:subPropertyOf ex:p2 .
ex:p2 rdfs:subPropertyOf ex:p3 .
ex:x ex:p1 ex:y .
`)
	if !g.Has(iri("p1"), rdf.SubPropertyOfIRI, iri("p3")) {
		t.Error("scm-spo: p1 spo p3 missing")
	}
	if !g.Has(iri("x"), iri("p2"), iri("y")) || !g.Has(iri("x"), iri("p3"), iri("y")) {
		t.Error("prp-spo1: triple not propagated to superproperties")
	}
}

func TestDomainRange(t *testing.T) {
	g := materialize(t, prelude+`
ex:p rdfs:domain ex:D ; rdfs:range ex:R .
ex:x ex:p ex:y .
`)
	if !g.IsA(iri("x"), iri("D")) {
		t.Error("prp-dom failed")
	}
	if !g.IsA(iri("y"), iri("R")) {
		t.Error("prp-rng failed")
	}
}

func TestRangeNotAppliedToLiterals(t *testing.T) {
	g := materialize(t, prelude+`
ex:p rdfs:range ex:R .
ex:x ex:p "literal" .
`)
	if g.Exists(rdf.NewLiteral("literal"), rdf.TypeIRI, store.Wildcard) {
		t.Error("range rule must not type literals")
	}
}

func TestInverseOf(t *testing.T) {
	// The paper's own example: feo:dislikedBy inverse of feo:dislike lets
	// the reasoner infer user dislikes without explicit assertions.
	g := materialize(t, prelude+`
ex:dislike owl:inverseOf ex:dislikedBy .
ex:user ex:dislike ex:broccoli .
ex:spinach ex:dislikedBy ex:user2 .
`)
	if !g.Has(iri("broccoli"), iri("dislikedBy"), iri("user")) {
		t.Error("prp-inv1 failed")
	}
	if !g.Has(iri("user2"), iri("dislike"), iri("spinach")) {
		t.Error("prp-inv2 failed")
	}
}

func TestTransitiveProperty(t *testing.T) {
	// The paper declares feo:hasCharacteristic transitive so queries reach
	// characteristics at all depths.
	g := materialize(t, prelude+`
ex:hasCharacteristic a owl:TransitiveProperty .
ex:curry ex:hasCharacteristic ex:cauliflower .
ex:cauliflower ex:hasCharacteristic ex:autumn .
ex:autumn ex:hasCharacteristic ex:cool .
`)
	if !g.Has(iri("curry"), iri("hasCharacteristic"), iri("autumn")) {
		t.Error("prp-trp depth 2 failed")
	}
	if !g.Has(iri("curry"), iri("hasCharacteristic"), iri("cool")) {
		t.Error("prp-trp depth 3 failed")
	}
}

func TestTransitiveDeclarationAfterEdges(t *testing.T) {
	// Characteristic activation must also work when the edges are already
	// in the graph before the TransitiveProperty declaration is processed.
	g := store.New()
	g.Add(iri("a"), iri("p"), iri("b"))
	g.Add(iri("b"), iri("p"), iri("c"))
	g.Add(iri("p"), rdf.TypeIRI, rdf.NewIRI(rdf.OWLTransitiveProperty))
	New(Options{}).Materialize(g)
	if !g.Has(iri("a"), iri("p"), iri("c")) {
		t.Error("transitivity not applied to pre-existing edges")
	}
}

func TestSymmetricProperty(t *testing.T) {
	g := materialize(t, prelude+`
ex:pairsWith a owl:SymmetricProperty .
ex:wine ex:pairsWith ex:cheese .
`)
	if !g.Has(iri("cheese"), iri("pairsWith"), iri("wine")) {
		t.Error("prp-symp failed")
	}
}

func TestEquivalentClass(t *testing.T) {
	g := materialize(t, prelude+`
ex:A owl:equivalentClass ex:B .
ex:x a ex:A .
ex:y a ex:B .
`)
	if !g.IsA(iri("x"), iri("B")) || !g.IsA(iri("y"), iri("A")) {
		t.Error("equivalentClass must share instances both ways")
	}
	if !g.Has(iri("B"), rdf.EquivClassIRI, iri("A")) {
		t.Error("equivalentClass must be symmetric")
	}
}

func TestMutualSubclassBecomesEquivalent(t *testing.T) {
	g := materialize(t, prelude+`
ex:A rdfs:subClassOf ex:B .
ex:B rdfs:subClassOf ex:A .
`)
	if !g.Has(iri("A"), rdf.EquivClassIRI, iri("B")) {
		t.Error("scm-eqc2 failed")
	}
}

func TestEquivalentProperty(t *testing.T) {
	g := materialize(t, prelude+`
ex:p owl:equivalentProperty ex:q .
ex:x ex:p ex:y .
`)
	if !g.Has(iri("x"), iri("q"), iri("y")) {
		t.Error("equivalentProperty must propagate triples")
	}
}

func TestIntersectionClassification(t *testing.T) {
	// The Fact/Foil pattern: Fact ≡ SupportsParameter ⊓ InEcosystem.
	g := materialize(t, prelude+`
ex:Fact owl:intersectionOf ( ex:SupportsParameter ex:InEcosystem ) .
ex:autumn a ex:SupportsParameter , ex:InEcosystem .
ex:broccoli a ex:SupportsParameter .
`)
	if !g.IsA(iri("autumn"), iri("Fact")) {
		t.Error("cls-int1: autumn should classify as Fact")
	}
	if g.IsA(iri("broccoli"), iri("Fact")) {
		t.Error("cls-int1: broccoli lacks InEcosystem, must not be Fact")
	}
}

func TestIntersectionDecomposition(t *testing.T) {
	g := materialize(t, prelude+`
ex:Fact owl:intersectionOf ( ex:A ex:B ) .
ex:x a ex:Fact .
`)
	if !g.IsA(iri("x"), iri("A")) || !g.IsA(iri("x"), iri("B")) {
		t.Error("cls-int2: members not derived from intersection type")
	}
}

func TestIntersectionMembersInEitherOrder(t *testing.T) {
	// cls-int1 must fire regardless of which member type arrives last.
	g := store.New()
	if err := turtle.ParseInto(g, prelude+`
ex:Both owl:intersectionOf ( ex:A ex:B ) .
`); err != nil {
		t.Fatal(err)
	}
	g.Add(iri("x"), rdf.TypeIRI, iri("B"))
	g.Add(iri("x"), rdf.TypeIRI, iri("A"))
	New(Options{}).Materialize(g)
	if !g.IsA(iri("x"), iri("Both")) {
		t.Error("cls-int1 order dependence")
	}
}

func TestUnionMembership(t *testing.T) {
	g := materialize(t, prelude+`
ex:Produce owl:unionOf ( ex:Fruit ex:Vegetable ) .
ex:apple a ex:Fruit .
`)
	if !g.IsA(iri("apple"), iri("Produce")) {
		t.Error("cls-uni failed")
	}
}

func TestSomeValuesFrom(t *testing.T) {
	g := materialize(t, prelude+`
ex:SeasonalFood owl:equivalentClass [ a owl:Restriction ;
    owl:onProperty ex:availableIn ; owl:someValuesFrom ex:Season ] .
ex:autumn a ex:Season .
ex:squash ex:availableIn ex:autumn .
ex:candy ex:availableIn ex:nowhere .
`)
	if !g.IsA(iri("squash"), iri("SeasonalFood")) {
		t.Error("cls-svf1 + equivalence: squash should be SeasonalFood")
	}
	if g.IsA(iri("candy"), iri("SeasonalFood")) {
		t.Error("candy must not classify (filler not a Season)")
	}
}

func TestSomeValuesFromFillerArrivesLate(t *testing.T) {
	g := store.New()
	if err := turtle.ParseInto(g, prelude+`
ex:R a owl:Restriction ; owl:onProperty ex:p ; owl:someValuesFrom ex:F .
ex:x ex:p ex:y .
`); err != nil {
		t.Fatal(err)
	}
	New(Options{}).Materialize(g)
	if g.IsA(iri("x"), iri("R")) {
		t.Fatal("x must not classify before filler type exists")
	}
	g.Add(iri("y"), rdf.TypeIRI, iri("F"))
	New(Options{}).Materialize(g)
	if !g.IsA(iri("x"), iri("R")) {
		t.Error("cls-svf1 must fire when filler type arrives later")
	}
}

func TestSomeValuesFromThing(t *testing.T) {
	g := materialize(t, prelude+`
ex:R a owl:Restriction ; owl:onProperty ex:p ; owl:someValuesFrom owl:Thing .
ex:x ex:p ex:anything .
`)
	if !g.IsA(iri("x"), iri("R")) {
		t.Error("cls-svf2: someValuesFrom owl:Thing should classify any subject")
	}
}

func TestHasValueBothDirections(t *testing.T) {
	g := materialize(t, prelude+`
ex:PregnantUser owl:equivalentClass [ a owl:Restriction ;
    owl:onProperty ex:hasCondition ; owl:hasValue ex:Pregnancy ] .
ex:alice ex:hasCondition ex:Pregnancy .
ex:carol a ex:PregnantUser .
`)
	if !g.IsA(iri("alice"), iri("PregnantUser")) {
		t.Error("cls-hv2: value assertion should classify alice")
	}
	if !g.Has(iri("carol"), iri("hasCondition"), iri("Pregnancy")) {
		t.Error("cls-hv1: class membership should assert the value")
	}
}

func TestAllValuesFrom(t *testing.T) {
	g := materialize(t, prelude+`
ex:VeganDish a owl:Class .
ex:VeganDish rdfs:subClassOf [ a owl:Restriction ;
    owl:onProperty ex:hasIngredient ; owl:allValuesFrom ex:PlantIngredient ] .
ex:salad a ex:VeganDish ; ex:hasIngredient ex:lettuce .
`)
	if !g.IsA(iri("lettuce"), iri("PlantIngredient")) {
		t.Error("cls-avf: ingredient of vegan dish should be plant")
	}
}

func TestFunctionalProperty(t *testing.T) {
	g := materialize(t, prelude+`
ex:hasBirthSeason a owl:FunctionalProperty .
ex:u ex:hasBirthSeason ex:s1 , ex:s2 .
`)
	if !g.Has(iri("s1"), rdf.SameAsIRI, iri("s2")) && !g.Has(iri("s2"), rdf.SameAsIRI, iri("s1")) {
		t.Error("prp-fp: functional property objects must be sameAs")
	}
}

func TestInverseFunctionalProperty(t *testing.T) {
	g := materialize(t, prelude+`
ex:hasSSN a owl:InverseFunctionalProperty .
ex:a ex:hasSSN ex:n . ex:b ex:hasSSN ex:n .
`)
	if !g.Has(iri("a"), rdf.SameAsIRI, iri("b")) && !g.Has(iri("b"), rdf.SameAsIRI, iri("a")) {
		t.Error("prp-ifp failed")
	}
}

func TestSameAsReplication(t *testing.T) {
	g := materialize(t, prelude+`
ex:a owl:sameAs ex:b .
ex:a ex:p ex:o .
ex:s ex:q ex:a .
ex:b owl:sameAs ex:c .
`)
	if !g.Has(iri("b"), iri("p"), iri("o")) {
		t.Error("eq-rep-s failed")
	}
	if !g.Has(iri("s"), iri("q"), iri("b")) {
		t.Error("eq-rep-o failed")
	}
	if !g.Has(iri("a"), rdf.SameAsIRI, iri("c")) {
		t.Error("eq-trans failed")
	}
	if !g.Has(iri("b"), rdf.SameAsIRI, iri("a")) {
		t.Error("eq-sym failed")
	}
	if !g.Has(iri("c"), iri("p"), iri("o")) {
		t.Error("sameAs chain replication failed")
	}
}

func TestFixpointIdempotence(t *testing.T) {
	src := prelude + `
ex:A rdfs:subClassOf ex:B . ex:B rdfs:subClassOf ex:C .
ex:p a owl:TransitiveProperty . ex:p owl:inverseOf ex:q .
ex:x a ex:A ; ex:p ex:y . ex:y ex:p ex:z .
ex:I owl:intersectionOf ( ex:B ex:C ) .
`
	g := materialize(t, src)
	n1 := g.Len()
	stats := New(Options{}).Materialize(g)
	if g.Len() != n1 {
		t.Errorf("second materialization added %d triples; closure not a fixpoint", g.Len()-n1)
	}
	if stats.Inferred != 0 {
		t.Errorf("stats.Inferred = %d on second run, want 0", stats.Inferred)
	}
}

func TestMonotonicity(t *testing.T) {
	src := prelude + `
ex:A rdfs:subClassOf ex:B .
ex:x a ex:A ; ex:p ex:y .
`
	g, err := turtle.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	before := g.Triples()
	New(Options{}).Materialize(g)
	for _, tr := range before {
		if !g.Has(tr.S, tr.P, tr.O) {
			t.Errorf("asserted triple %v lost during materialization", tr)
		}
	}
}

func TestNaiveSemiNaiveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	classes := []rdf.Term{iri("C1"), iri("C2"), iri("C3"), iri("C4")}
	props := []rdf.Term{iri("p1"), iri("p2"), iri("p3")}
	inds := []rdf.Term{iri("i1"), iri("i2"), iri("i3"), iri("i4"), iri("i5")}
	for trial := 0; trial < 40; trial++ {
		g1 := store.New()
		// Random schema.
		for i := 0; i < 4; i++ {
			g1.Add(classes[rng.Intn(4)], rdf.SubClassOfIRI, classes[rng.Intn(4)])
			g1.Add(props[rng.Intn(3)], rdf.SubPropertyOfIRI, props[rng.Intn(3)])
		}
		if rng.Intn(2) == 0 {
			g1.Add(props[0], rdf.TypeIRI, rdf.NewIRI(rdf.OWLTransitiveProperty))
		}
		if rng.Intn(2) == 0 {
			g1.Add(props[1], rdf.InverseOfIRI, props[2])
		}
		g1.Add(props[rng.Intn(3)], rdf.DomainIRI, classes[rng.Intn(4)])
		g1.Add(props[rng.Intn(3)], rdf.RangeIRI, classes[rng.Intn(4)])
		// Random instances.
		for i := 0; i < 10; i++ {
			g1.Add(inds[rng.Intn(5)], props[rng.Intn(3)], inds[rng.Intn(5)])
			g1.Add(inds[rng.Intn(5)], rdf.TypeIRI, classes[rng.Intn(4)])
		}
		g2 := g1.Clone()
		New(Options{Naive: false}).Materialize(g1)
		New(Options{Naive: true}).Materialize(g2)
		if !g1.Equal(g2) {
			only1, only2 := diff(g1, g2)
			t.Fatalf("trial %d: naive and semi-naive closures differ\nsemi-naive only: %v\nnaive only: %v",
				trial, only1, only2)
		}
	}
}

func diff(a, b *store.Graph) (onlyA, onlyB []rdf.Triple) {
	for _, t := range a.Triples() {
		if !b.Has(t.S, t.P, t.O) {
			onlyA = append(onlyA, t)
		}
	}
	for _, t := range b.Triples() {
		if !a.Has(t.S, t.P, t.O) {
			onlyB = append(onlyB, t)
		}
	}
	return onlyA, onlyB
}

// TestSubclassClosureAgainstFloydWarshall checks scm-sco against an
// independent transitive-closure computation on random class DAGs.
func TestSubclassClosureAgainstFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 12
	for trial := 0; trial < 30; trial++ {
		g := store.New()
		reach := make([][]bool, n)
		for i := range reach {
			reach[i] = make([]bool, n)
		}
		cls := make([]rdf.Term, n)
		for i := range cls {
			cls[i] = iri(fmt.Sprintf("C%d", i))
		}
		for e := 0; e < 18; e++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if i == j {
				continue
			}
			g.Add(cls[i], rdf.SubClassOfIRI, cls[j])
			reach[i][j] = true
		}
		// Floyd-Warshall reference closure.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		New(Options{}).Materialize(g)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				has := g.Has(cls[i], rdf.SubClassOfIRI, cls[j])
				if has != reach[i][j] {
					t.Fatalf("trial %d: C%d sco C%d: reasoner=%v reference=%v",
						trial, i, j, has, reach[i][j])
				}
			}
		}
	}
}

func TestDerivationTracing(t *testing.T) {
	g, err := turtle.Parse(prelude + `
ex:A rdfs:subClassOf ex:B .
ex:B rdfs:subClassOf ex:C .
ex:x a ex:A .
`)
	if err != nil {
		t.Fatal(err)
	}
	r := New(Options{TraceDerivations: true})
	r.Materialize(g)
	inferred := rdf.Triple{S: iri("x"), P: rdf.TypeIRI, O: iri("C")}
	d, ok := r.Derivation(inferred)
	if !ok {
		t.Fatal("derivation missing for inferred triple")
	}
	if d.Rule != "cax-sco" {
		t.Errorf("rule = %s, want cax-sco", d.Rule)
	}
	proof := r.Proof(inferred)
	if len(proof) < 2 {
		t.Fatalf("proof too short: %v", proof)
	}
	// Final step must be the conclusion; earlier steps its support.
	if proof[len(proof)-1].Conclusion != inferred {
		t.Error("proof must end at the queried conclusion")
	}
	sawAsserted := false
	for _, s := range proof {
		if s.Rule == "asserted" {
			sawAsserted = true
		}
	}
	if !sawAsserted {
		t.Error("proof should bottom out at asserted triples")
	}
	// Asserted triples have no derivation.
	if _, ok := r.Derivation(rdf.Triple{S: iri("x"), P: rdf.TypeIRI, O: iri("A")}); ok {
		t.Error("asserted triple must not have a derivation")
	}
}

func TestTracingDisabledByDefault(t *testing.T) {
	g, _ := turtle.Parse(prelude + `
ex:A rdfs:subClassOf ex:B . ex:x a ex:A .
`)
	r := New(Options{})
	r.Materialize(g)
	if _, ok := r.Derivation(rdf.Triple{S: iri("x"), P: rdf.TypeIRI, O: iri("B")}); ok {
		t.Error("tracing should be off by default")
	}
}

func TestStatsPopulated(t *testing.T) {
	g, _ := turtle.Parse(prelude + `
ex:A rdfs:subClassOf ex:B . ex:x a ex:A .
`)
	stats := New(Options{}).Materialize(g)
	if stats.Asserted != 2 {
		t.Errorf("Asserted = %d, want 2", stats.Asserted)
	}
	if stats.Inferred != 1 {
		t.Errorf("Inferred = %d, want 1", stats.Inferred)
	}
	if stats.RuleFirings["cax-sco"] != 1 {
		t.Errorf("RuleFirings = %v", stats.RuleFirings)
	}
	if stats.String() == "" {
		t.Error("String should render")
	}
}

func TestNoReflexiveByDefault(t *testing.T) {
	g := materialize(t, prelude+`
ex:A a owl:Class .
ex:A rdfs:subClassOf ex:B .
`)
	if g.Has(iri("A"), rdf.SubClassOfIRI, iri("A")) {
		t.Error("reflexive subClassOf must be off by default (paper queries rely on it)")
	}
	g2, _ := turtle.Parse(prelude + `
ex:A a owl:Class .
`)
	New(Options{IncludeReflexive: true}).Materialize(g2)
	if !g2.Has(iri("A"), rdf.SubClassOfIRI, iri("A")) {
		t.Error("IncludeReflexive should add reflexive sco")
	}
	if !g2.Has(iri("A"), rdf.SubClassOfIRI, rdf.ThingIRI) {
		t.Error("IncludeReflexive should add sco owl:Thing")
	}
}

func TestDeepChainClosure(t *testing.T) {
	// A 50-deep transitive chain exercises queue behavior.
	g := store.New()
	p := iri("p")
	g.Add(p, rdf.TypeIRI, rdf.NewIRI(rdf.OWLTransitiveProperty))
	for i := 0; i < 50; i++ {
		g.Add(iri(fmt.Sprintf("n%d", i)), p, iri(fmt.Sprintf("n%d", i+1)))
	}
	New(Options{}).Materialize(g)
	if !g.Has(iri("n0"), p, iri("n50")) {
		t.Error("deep transitive closure incomplete")
	}
	// Full closure has n*(n+1)/2 pairs.
	want := 51 * 50 / 2
	if got := g.Count(store.Wildcard, p, store.Wildcard); got != want {
		t.Errorf("closure size = %d, want %d", got, want)
	}
}

func TestPropertyChain(t *testing.T) {
	// The CQ3 pattern: forbids ∘ isIngredientOf ⊑ forbids.
	g := materialize(t, prelude+`
ex:forbids owl:propertyChainAxiom ( ex:forbids ex:isIngredientOf ) .
ex:Pregnancy ex:forbids ex:RawFish .
ex:RawFish ex:isIngredientOf ex:Sushi .
`)
	if !g.Has(iri("Pregnancy"), iri("forbids"), iri("Sushi")) {
		t.Error("prp-spo2: pregnancy should forbid sushi via ingredient chain")
	}
}

func TestPropertyChainThreeSteps(t *testing.T) {
	g := materialize(t, prelude+`
ex:anc owl:propertyChainAxiom ( ex:p ex:q ex:r ) .
ex:a ex:p ex:b . ex:b ex:q ex:c . ex:c ex:r ex:d .
`)
	if !g.Has(iri("a"), iri("anc"), iri("d")) {
		t.Error("3-step chain failed")
	}
}

func TestPropertyChainOrderIndependence(t *testing.T) {
	// The chain must fire no matter which step triple arrives last.
	for variant := 0; variant < 2; variant++ {
		g := store.New()
		if err := turtle.ParseInto(g, prelude+`
ex:sup owl:propertyChainAxiom ( ex:p ex:q ) .
`); err != nil {
			t.Fatal(err)
		}
		if variant == 0 {
			g.Add(iri("a"), iri("p"), iri("b"))
			g.Add(iri("b"), iri("q"), iri("c"))
		} else {
			g.Add(iri("b"), iri("q"), iri("c"))
			g.Add(iri("a"), iri("p"), iri("b"))
		}
		New(Options{}).Materialize(g)
		if !g.Has(iri("a"), iri("sup"), iri("c")) {
			t.Errorf("variant %d: chain did not fire", variant)
		}
	}
}

func TestChainRecursiveGrowth(t *testing.T) {
	// forbids ∘ ingredient chains compose with newly inferred forbids.
	g := materialize(t, prelude+`
ex:forbids owl:propertyChainAxiom ( ex:forbids ex:isIngredientOf ) .
ex:C ex:forbids ex:x .
ex:x ex:isIngredientOf ex:y .
ex:y ex:isIngredientOf ex:z .
`)
	if !g.Has(iri("C"), iri("forbids"), iri("z")) {
		t.Error("recursive chain growth failed: C should forbid z")
	}
}
