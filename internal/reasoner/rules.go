package reasoner

import (
	"repro/internal/store"
)

// The rule bodies below run entirely on dictionary IDs: premise joins probe
// the store's ID indexes (ObjectsID / SubjectsID / HasID / ForEachID) and
// conclusions are asserted with AddID. The indexes' innermost levels are
// the store's roaring bitmaps, so a membership premise (HasID) is a bitmap
// Contains and the candidate lists the joins iterate arrive in ascending
// ID order. No term is decoded unless tracing is enabled. Kind guards that
// used to call Term.IsIRI/IsBlank use the dictionary's kind table
// (IsResourceID) instead.

// applyDelta fires every rule in which the triple t can serve as a premise,
// joining the remaining premises against the current graph.
func (r *Reasoner) applyDelta(t iTriple) {
	switch t.P {
	case r.v.sco:
		r.onSubClassOf(t)
	case r.v.spo:
		r.onSubPropertyOf(t)
	case r.v.typ:
		r.onType(t)
	case r.v.dom:
		r.onDomain(t)
	case r.v.rng:
		r.onRange(t)
	case r.v.inv:
		r.onInverseOf(t)
	case r.v.eqc:
		r.onEquivalentClass(t)
	case r.v.eqp:
		r.onEquivalentProperty(t)
	case r.v.same:
		r.onSameAs(t)
	}
	// Every triple is also a candidate instance assertion (x p y).
	r.onAssertion(t)
}

// onSubClassOf: scm-sco (transitivity), cax-sco (type propagation),
// scm-eqc2 (mutual subclass → equivalence), scm-dom1, scm-rng1.
func (r *Reasoner) onSubClassOf(t iTriple) {
	c1, c2 := t.S, t.O
	// scm-sco: (c1 sco c2) ∧ (c2 sco c3) → (c1 sco c3)
	for _, c3 := range r.g.ObjectsID(c2, r.v.sco) {
		if c3 != c1 {
			r.infer("scm-sco", c1, r.v.sco, c3, t, iTriple{c2, r.v.sco, c3})
		}
	}
	// scm-sco (other side): (c0 sco c1) ∧ (c1 sco c2) → (c0 sco c2)
	for _, c0 := range r.g.SubjectsID(r.v.sco, c1) {
		if c0 != c2 {
			r.infer("scm-sco", c0, r.v.sco, c2, iTriple{c0, r.v.sco, c1}, t)
		}
	}
	// cax-sco: (x type c1) → (x type c2)
	for _, x := range r.g.SubjectsID(r.v.typ, c1) {
		r.infer("cax-sco", x, r.v.typ, c2, iTriple{x, r.v.typ, c1}, t)
	}
	// scm-eqc2: (c1 sco c2) ∧ (c2 sco c1) → equivalence
	if c1 != c2 && r.g.HasID(c2, r.v.sco, c1) {
		r.infer("scm-eqc2", c1, r.v.eqc, c2, t, iTriple{c2, r.v.sco, c1})
	}
	// cls-int1 via subclass: if c2 is a member of an intersection, x may now
	// qualify — handled by the type-propagation above reaching onType.
}

// onSubPropertyOf: scm-spo (transitivity), prp-spo1 (triple propagation),
// scm-eqp2, scm-dom2, scm-rng2.
func (r *Reasoner) onSubPropertyOf(t iTriple) {
	p1, p2 := t.S, t.O
	for _, p3 := range r.g.ObjectsID(p2, r.v.spo) {
		if p3 != p1 {
			r.infer("scm-spo", p1, r.v.spo, p3, t, iTriple{p2, r.v.spo, p3})
		}
	}
	for _, p0 := range r.g.SubjectsID(r.v.spo, p1) {
		if p0 != p2 {
			r.infer("scm-spo", p0, r.v.spo, p2, iTriple{p0, r.v.spo, p1}, t)
		}
	}
	// prp-spo1: (x p1 y) → (x p2 y)
	r.g.ForEachID(store.NoID, p1, store.NoID, func(s, p, o store.ID) bool {
		r.infer("prp-spo1", s, p2, o, iTriple{s, p, o}, t)
		return true
	})
	// scm-eqp2
	if p1 != p2 && r.g.HasID(p2, r.v.spo, p1) {
		r.infer("scm-eqp2", p1, r.v.eqp, p2, t, iTriple{p2, r.v.spo, p1})
	}
	// scm-dom2: (p2 dom c) → (p1 dom c); scm-rng2 analog.
	for _, c := range r.g.ObjectsID(p2, r.v.dom) {
		r.infer("scm-dom2", p1, r.v.dom, c, iTriple{p2, r.v.dom, c}, t)
	}
	for _, c := range r.g.ObjectsID(p2, r.v.rng) {
		r.infer("scm-rng2", p1, r.v.rng, c, iTriple{p2, r.v.rng, c}, t)
	}
}

// onType handles (x rdf:type c): subclass propagation, intersection and
// union membership, restriction consequences, and property-characteristic
// activation when c is an owl property class.
func (r *Reasoner) onType(t iTriple) {
	x, c := t.S, t.O
	// cax-sco: (c sco c2) → (x type c2)
	for _, c2 := range r.g.ObjectsID(c, r.v.sco) {
		r.infer("cax-sco", x, r.v.typ, c2, t, iTriple{c, r.v.sco, c2})
	}
	// cls-int2: x ∈ intersection c → x ∈ every member.
	if members, ok := r.expr.intersections[c]; ok {
		for _, m := range members {
			r.infer("cls-int2", x, r.v.typ, m, t)
		}
	}
	// cls-int1: c is a member of intersection classes; x qualifies when it
	// has every member type.
	for _, ic := range r.expr.memberOfIntersection[c] {
		all := true
		for _, m := range r.expr.intersections[ic] {
			if m != c && !r.g.HasID(x, r.v.typ, m) {
				all = false
				break
			}
		}
		if all {
			premises := []iTriple{t}
			for _, m := range r.expr.intersections[ic] {
				if m != c {
					premises = append(premises, iTriple{x, r.v.typ, m})
				}
			}
			r.infer("cls-int1", x, r.v.typ, ic, premises...)
		}
	}
	// cls-uni: c is a member of union classes → x ∈ union.
	for _, uc := range r.expr.memberOfUnion[c] {
		r.infer("cls-uni", x, r.v.typ, uc, t)
	}
	// cls-hv1: c is a hasValue restriction → (x prop value).
	if rest, ok := r.expr.byNode[c]; ok {
		if rest.HasValue != store.NoID {
			r.infer("cls-hv1", x, rest.Prop, rest.HasValue, t)
		}
		// cls-avf: c = allValuesFrom(p, f): (x p v) → (v type f)
		if rest.AllFrom != store.NoID {
			r.g.ForEachID(x, rest.Prop, store.NoID, func(s, p, o store.ID) bool {
				r.infer("cls-avf", o, r.v.typ, rest.AllFrom, t, iTriple{s, p, o})
				return true
			})
		}
	}
	// cls-svf1 (filler side): x just became an instance of a someValuesFrom
	// filler; every (u p x) now makes u an instance of the restriction.
	for _, rest := range r.expr.svfByFiller[c] {
		for _, u := range r.g.SubjectsID(rest.Prop, x) {
			r.infer("cls-svf1", u, r.v.typ, rest.Node, iTriple{u, rest.Prop, x}, t)
		}
	}
	// scm-cls: (x type owl:Class) → reflexive subclass axioms. Handled here
	// (rather than by a whole-graph seed pass) so class declarations
	// arriving in a delta get their reflexive triples too.
	if c == r.v.class && r.opts.IncludeReflexive {
		r.infer("scm-cls", x, r.v.sco, x, t)
		r.infer("scm-cls", x, r.v.sco, r.v.thing, t)
	}
	// Property-characteristic activation: (p type TransitiveProperty) etc.
	// arriving after instance triples requires a batch pass.
	switch c {
	case r.v.trans:
		r.g.ForEachID(store.NoID, x, store.NoID, func(s, p, o store.ID) bool {
			r.transClose(x, iTriple{s, p, o})
			return true
		})
	case r.v.sym:
		r.g.ForEachID(store.NoID, x, store.NoID, func(s, p, o store.ID) bool {
			if r.g.IsResourceID(o) {
				r.infer("prp-symp", o, x, s, iTriple{s, p, o}, t)
			}
			return true
		})
	case r.v.funcP:
		r.g.ForEachID(store.NoID, x, store.NoID, func(s, p, o store.ID) bool {
			r.funcProp(x, iTriple{s, p, o})
			return true
		})
	case r.v.invFunc:
		r.g.ForEachID(store.NoID, x, store.NoID, func(s, p, o store.ID) bool {
			r.invFuncProp(x, iTriple{s, p, o})
			return true
		})
	}
}

// onDomain applies prp-dom to all existing triples of the property.
func (r *Reasoner) onDomain(t iTriple) {
	p, c := t.S, t.O
	r.g.ForEachID(store.NoID, p, store.NoID, func(s, pp, o store.ID) bool {
		r.infer("prp-dom", s, r.v.typ, c, iTriple{s, pp, o}, t)
		return true
	})
}

// onRange applies prp-rng to all existing triples of the property.
func (r *Reasoner) onRange(t iTriple) {
	p, c := t.S, t.O
	r.g.ForEachID(store.NoID, p, store.NoID, func(s, pp, o store.ID) bool {
		if r.g.IsResourceID(o) {
			r.infer("prp-rng", o, r.v.typ, c, iTriple{s, pp, o}, t)
		}
		return true
	})
}

// onInverseOf applies prp-inv1/2 to existing triples of both properties.
func (r *Reasoner) onInverseOf(t iTriple) {
	p1, p2 := t.S, t.O
	r.g.ForEachID(store.NoID, p1, store.NoID, func(s, p, o store.ID) bool {
		if r.g.IsResourceID(o) {
			r.infer("prp-inv1", o, p2, s, iTriple{s, p, o}, t)
		}
		return true
	})
	r.g.ForEachID(store.NoID, p2, store.NoID, func(s, p, o store.ID) bool {
		if r.g.IsResourceID(o) {
			r.infer("prp-inv2", o, p1, s, iTriple{s, p, o}, t)
		}
		return true
	})
}

// onEquivalentClass: scm-eqc1 both directions plus symmetry.
func (r *Reasoner) onEquivalentClass(t iTriple) {
	c1, c2 := t.S, t.O
	r.infer("scm-eqc1", c1, r.v.sco, c2, t)
	r.infer("scm-eqc1", c2, r.v.sco, c1, t)
	r.infer("eq-sym(c)", c2, r.v.eqc, c1, t)
}

// onEquivalentProperty: scm-eqp1 both directions plus symmetry.
func (r *Reasoner) onEquivalentProperty(t iTriple) {
	p1, p2 := t.S, t.O
	r.infer("scm-eqp1", p1, r.v.spo, p2, t)
	r.infer("scm-eqp1", p2, r.v.spo, p1, t)
	r.infer("eq-sym(p)", p2, r.v.eqp, p1, t)
}

// onSameAs: eq-sym, eq-trans, eq-rep-s/o (predicate replacement is omitted:
// sameAs between properties does not occur in FEO).
func (r *Reasoner) onSameAs(t iTriple) {
	x, y := t.S, t.O
	if x == y {
		return
	}
	r.infer("eq-sym", y, r.v.same, x, t)
	for _, z := range r.g.ObjectsID(y, r.v.same) {
		if z != x {
			r.infer("eq-trans", x, r.v.same, z, t, iTriple{y, r.v.same, z})
		}
	}
	// eq-rep-s: (x same y) ∧ (x p o) → (y p o)
	r.g.ForEachID(x, store.NoID, store.NoID, func(s, p, o store.ID) bool {
		if p != r.v.same {
			r.infer("eq-rep-s", y, p, o, iTriple{s, p, o}, t)
		}
		return true
	})
	// eq-rep-o: (x same y) ∧ (s p x) → (s p y)
	r.g.ForEachID(store.NoID, store.NoID, x, func(s, p, o store.ID) bool {
		if p != r.v.same {
			r.infer("eq-rep-o", s, p, y, iTriple{s, p, o}, t)
		}
		return true
	})
}

// onAssertion handles a generic triple (x p y) as an instance assertion.
func (r *Reasoner) onAssertion(t iTriple) {
	x, p, y := t.S, t.P, t.O
	yRes := r.g.IsResourceID(y)
	// prp-spo1: superproperties carry the triple.
	for _, sup := range r.g.ObjectsID(p, r.v.spo) {
		if sup != p {
			r.infer("prp-spo1", x, sup, y, t, iTriple{p, r.v.spo, sup})
		}
	}
	// prp-dom / prp-rng.
	for _, c := range r.g.ObjectsID(p, r.v.dom) {
		r.infer("prp-dom", x, r.v.typ, c, t, iTriple{p, r.v.dom, c})
	}
	if yRes {
		for _, c := range r.g.ObjectsID(p, r.v.rng) {
			r.infer("prp-rng", y, r.v.typ, c, t, iTriple{p, r.v.rng, c})
		}
	}
	// prp-inv1/2.
	if yRes {
		for _, q := range r.g.ObjectsID(p, r.v.inv) {
			r.infer("prp-inv1", y, q, x, t, iTriple{p, r.v.inv, q})
		}
		for _, q := range r.g.SubjectsID(r.v.inv, p) {
			r.infer("prp-inv2", y, q, x, t, iTriple{q, r.v.inv, p})
		}
		// prp-symp.
		if r.g.HasID(p, r.v.typ, r.v.sym) {
			r.infer("prp-symp", y, p, x, t, iTriple{p, r.v.typ, r.v.sym})
		}
		// prp-trp.
		if r.g.HasID(p, r.v.typ, r.v.trans) {
			r.transClose(p, t)
		}
		// prp-fp / prp-ifp.
		if r.g.HasID(p, r.v.typ, r.v.funcP) {
			r.funcProp(p, t)
		}
		if r.g.HasID(p, r.v.typ, r.v.invFunc) {
			r.invFuncProp(p, t)
		}
	}
	// cls-svf1: (x p y) ∧ (y type filler) → (x type restriction).
	for _, rest := range r.expr.restrictionsByProp[p] {
		if rest.SomeFrom != store.NoID {
			if rest.SomeFrom == r.v.thing || r.g.HasID(y, r.v.typ, rest.SomeFrom) {
				prem := []iTriple{t}
				if rest.SomeFrom != r.v.thing {
					prem = append(prem, iTriple{y, r.v.typ, rest.SomeFrom})
				}
				r.infer("cls-svf1", x, r.v.typ, rest.Node, prem...)
			}
		}
		// cls-hv2: (x p v) with v the hasValue → (x type restriction).
		if rest.HasValue != store.NoID && rest.HasValue == y {
			r.infer("cls-hv2", x, r.v.typ, rest.Node, t)
		}
		// cls-avf: (x type restriction) ∧ (x p y) → (y type filler).
		if rest.AllFrom != store.NoID && r.g.HasID(x, r.v.typ, rest.Node) {
			r.infer("cls-avf", y, r.v.typ, rest.AllFrom, t, iTriple{x, r.v.typ, rest.Node})
		}
	}
	// prp-spo2: property chains. Any triple whose predicate appears in a
	// chain may complete an instantiation of that chain.
	for _, ci := range r.expr.chainsByStep[p] {
		r.applyChain(r.expr.chains[ci], t)
	}
	// eq-rep: replicate through sameAs aliases of x and y.
	if p != r.v.same {
		for _, alias := range r.g.ObjectsID(x, r.v.same) {
			if alias != x {
				r.infer("eq-rep-s", alias, p, y, t, iTriple{x, r.v.same, alias})
			}
		}
		if yRes {
			for _, alias := range r.g.ObjectsID(y, r.v.same) {
				if alias != y {
					r.infer("eq-rep-o", x, p, alias, t, iTriple{y, r.v.same, alias})
				}
			}
		}
	}
}

// transClose extends the transitive closure of property p around the new
// edge a = (x p y): joins on both sides.
func (r *Reasoner) transClose(p store.ID, a iTriple) {
	x, y := a.S, a.O
	charPremise := iTriple{p, r.v.typ, r.v.trans}
	for _, z := range r.g.ObjectsID(y, p) {
		if z != x {
			r.infer("prp-trp", x, p, z, a, iTriple{y, p, z}, charPremise)
		}
	}
	for _, w := range r.g.SubjectsID(p, x) {
		if w != y {
			r.infer("prp-trp", w, p, y, iTriple{w, p, x}, a, charPremise)
		}
	}
}

// applyChain applies prp-spo2 for one chain, seeded by the new triple t.
// It enumerates every full instantiation of the chain that uses t in at
// least one step position, joining the other steps against the graph.
func (r *Reasoner) applyChain(c chain, t iTriple) {
	for pos, step := range c.Steps {
		if step != t.P {
			continue
		}
		// Walk backward from t.S through steps[0..pos-1] and forward from
		// t.O through steps[pos+1..], collecting premise sets.
		starts := []chainPath{{node: t.S, premises: nil}}
		for i := pos - 1; i >= 0; i-- {
			var next []chainPath
			for _, cp := range starts {
				for _, prev := range r.g.SubjectsID(c.Steps[i], cp.node) {
					prem := append([]iTriple{{prev, c.Steps[i], cp.node}}, cp.premises...)
					next = append(next, chainPath{node: prev, premises: prem})
				}
			}
			starts = next
			if len(starts) == 0 {
				return
			}
		}
		ends := []chainPath{{node: t.O, premises: nil}}
		for i := pos + 1; i < len(c.Steps); i++ {
			var next []chainPath
			for _, cp := range ends {
				for _, nxt := range r.g.ObjectsID(cp.node, c.Steps[i]) {
					prem := append(append([]iTriple{}, cp.premises...), iTriple{cp.node, c.Steps[i], nxt})
					next = append(next, chainPath{node: nxt, premises: prem})
				}
			}
			ends = next
			if len(ends) == 0 {
				return
			}
		}
		for _, s := range starts {
			for _, e := range ends {
				premises := make([]iTriple, 0, len(s.premises)+1+len(e.premises))
				premises = append(premises, s.premises...)
				premises = append(premises, t)
				premises = append(premises, e.premises...)
				r.infer("prp-spo2", s.node, c.Super, e.node, premises...)
			}
		}
	}
}

// chainPath tracks one partial chain instantiation during prp-spo2.
type chainPath struct {
	node     store.ID
	premises []iTriple
}

// funcProp applies prp-fp: two objects of a functional property are sameAs.
func (r *Reasoner) funcProp(p store.ID, a iTriple) {
	if !r.g.IsResourceID(a.O) {
		return
	}
	for _, other := range r.g.ObjectsID(a.S, p) {
		if other != a.O && r.g.IsResourceID(other) {
			r.infer("prp-fp", a.O, r.v.same, other, a, iTriple{a.S, p, other})
		}
	}
}

// invFuncProp applies prp-ifp: two subjects sharing an object of an
// inverse-functional property are sameAs.
func (r *Reasoner) invFuncProp(p store.ID, a iTriple) {
	for _, other := range r.g.SubjectsID(p, a.O) {
		if other != a.S {
			r.infer("prp-ifp", a.S, r.v.same, other, a, iTriple{other, p, a.O})
		}
	}
}
