package reasoner

import (
	"repro/internal/rdf"
	"repro/internal/store"
)

// Pre-built predicate terms used by the dispatcher.
var (
	typeT       = rdf.TypeIRI
	scoT        = rdf.SubClassOfIRI
	spoT        = rdf.SubPropertyOfIRI
	domT        = rdf.DomainIRI
	rngT        = rdf.RangeIRI
	invT        = rdf.InverseOfIRI
	eqcT        = rdf.EquivClassIRI
	eqpT        = rdf.EquivPropIRI
	sameT       = rdf.SameAsIRI
	transPropT  = rdf.NewIRI(rdf.OWLTransitiveProperty)
	symPropT    = rdf.NewIRI(rdf.OWLSymmetricProperty)
	funcPropT   = rdf.NewIRI(rdf.OWLFunctionalProperty)
	invFuncT    = rdf.NewIRI(rdf.OWLInverseFunctional)
	owlThingT   = rdf.ThingIRI
	owlNothingT = rdf.NothingIRI
)

// applyDelta fires every rule in which the triple t can serve as a premise,
// joining the remaining premises against the current graph.
func (r *Reasoner) applyDelta(t rdf.Triple) {
	switch t.P {
	case scoT:
		r.onSubClassOf(t)
	case spoT:
		r.onSubPropertyOf(t)
	case typeT:
		r.onType(t)
	case domT:
		r.onDomain(t)
	case rngT:
		r.onRange(t)
	case invT:
		r.onInverseOf(t)
	case eqcT:
		r.onEquivalentClass(t)
	case eqpT:
		r.onEquivalentProperty(t)
	case sameT:
		r.onSameAs(t)
	}
	// Every triple is also a candidate instance assertion (x p y).
	r.onAssertion(t)
}

// onSubClassOf: scm-sco (transitivity), cax-sco (type propagation),
// scm-eqc2 (mutual subclass → equivalence), scm-dom1, scm-rng1.
func (r *Reasoner) onSubClassOf(t rdf.Triple) {
	c1, c2 := t.S, t.O
	// scm-sco: (c1 sco c2) ∧ (c2 sco c3) → (c1 sco c3)
	for _, c3 := range r.g.Objects(c2, scoT) {
		if c3 != c1 {
			r.infer("scm-sco", c1, scoT, c3, t, rdf.Triple{S: c2, P: scoT, O: c3})
		}
	}
	// scm-sco (other side): (c0 sco c1) ∧ (c1 sco c2) → (c0 sco c2)
	for _, c0 := range r.g.Subjects(scoT, c1) {
		if c0 != c2 {
			r.infer("scm-sco", c0, scoT, c2, rdf.Triple{S: c0, P: scoT, O: c1}, t)
		}
	}
	// cax-sco: (x type c1) → (x type c2)
	for _, x := range r.g.Subjects(typeT, c1) {
		r.infer("cax-sco", x, typeT, c2, rdf.Triple{S: x, P: typeT, O: c1}, t)
	}
	// scm-eqc2: (c1 sco c2) ∧ (c2 sco c1) → equivalence
	if c1 != c2 && r.g.Has(c2, scoT, c1) {
		r.infer("scm-eqc2", c1, eqcT, c2, t, rdf.Triple{S: c2, P: scoT, O: c1})
	}
	// cls-int1 via subclass: if c2 is a member of an intersection, x may now
	// qualify — handled by the type-propagation above reaching onType.
}

// onSubPropertyOf: scm-spo (transitivity), prp-spo1 (triple propagation),
// scm-eqp2, scm-dom2, scm-rng2.
func (r *Reasoner) onSubPropertyOf(t rdf.Triple) {
	p1, p2 := t.S, t.O
	for _, p3 := range r.g.Objects(p2, spoT) {
		if p3 != p1 {
			r.infer("scm-spo", p1, spoT, p3, t, rdf.Triple{S: p2, P: spoT, O: p3})
		}
	}
	for _, p0 := range r.g.Subjects(spoT, p1) {
		if p0 != p2 {
			r.infer("scm-spo", p0, spoT, p2, rdf.Triple{S: p0, P: spoT, O: p1}, t)
		}
	}
	// prp-spo1: (x p1 y) → (x p2 y)
	r.g.ForEach(store.Wildcard, p1, store.Wildcard, func(a rdf.Triple) bool {
		r.infer("prp-spo1", a.S, p2, a.O, a, t)
		return true
	})
	// scm-eqp2
	if p1 != p2 && r.g.Has(p2, spoT, p1) {
		r.infer("scm-eqp2", p1, eqpT, p2, t, rdf.Triple{S: p2, P: spoT, O: p1})
	}
	// scm-dom2: (p2 dom c) → (p1 dom c); scm-rng2 analog.
	for _, c := range r.g.Objects(p2, domT) {
		r.infer("scm-dom2", p1, domT, c, rdf.Triple{S: p2, P: domT, O: c}, t)
	}
	for _, c := range r.g.Objects(p2, rngT) {
		r.infer("scm-rng2", p1, rngT, c, rdf.Triple{S: p2, P: rngT, O: c}, t)
	}
}

// onType handles (x rdf:type c): subclass propagation, intersection and
// union membership, restriction consequences, and property-characteristic
// activation when c is an owl property class.
func (r *Reasoner) onType(t rdf.Triple) {
	x, c := t.S, t.O
	// cax-sco: (c sco c2) → (x type c2)
	for _, c2 := range r.g.Objects(c, scoT) {
		r.infer("cax-sco", x, typeT, c2, t, rdf.Triple{S: c, P: scoT, O: c2})
	}
	// cls-int2: x ∈ intersection c → x ∈ every member.
	if members, ok := r.expr.intersections[c]; ok {
		for _, m := range members {
			r.infer("cls-int2", x, typeT, m, t)
		}
	}
	// cls-int1: c is a member of intersection classes; x qualifies when it
	// has every member type.
	for _, ic := range r.expr.memberOfIntersection[c] {
		all := true
		for _, m := range r.expr.intersections[ic] {
			if m != c && !r.g.Has(x, typeT, m) {
				all = false
				break
			}
		}
		if all {
			premises := []rdf.Triple{t}
			for _, m := range r.expr.intersections[ic] {
				if m != c {
					premises = append(premises, rdf.Triple{S: x, P: typeT, O: m})
				}
			}
			r.infer("cls-int1", x, typeT, ic, premises...)
		}
	}
	// cls-uni: c is a member of union classes → x ∈ union.
	for _, uc := range r.expr.memberOfUnion[c] {
		r.infer("cls-uni", x, typeT, uc, t)
	}
	// cls-hv1: c is a hasValue restriction → (x prop value).
	if rest, ok := r.expr.byNode[c]; ok {
		if rest.HasValue.IsValid() {
			r.infer("cls-hv1", x, rest.Prop, rest.HasValue, t)
		}
		// cls-avf: c = allValuesFrom(p, f): (x p v) → (v type f)
		if rest.AllFrom.IsValid() {
			r.g.ForEach(x, rest.Prop, store.Wildcard, func(a rdf.Triple) bool {
				r.infer("cls-avf", a.O, typeT, rest.AllFrom, t, a)
				return true
			})
		}
	}
	// cls-svf1 (filler side): x just became an instance of a someValuesFrom
	// filler; every (u p x) now makes u an instance of the restriction.
	for _, rest := range r.expr.svfByFiller[c] {
		r.g.ForEach(store.Wildcard, rest.Prop, store.Wildcard, func(a rdf.Triple) bool {
			if a.O == x {
				r.infer("cls-svf1", a.S, typeT, rest.Node, a, t)
			}
			return true
		})
	}
	// Property-characteristic activation: (p type TransitiveProperty) etc.
	// arriving after instance triples requires a batch pass.
	switch c {
	case transPropT:
		r.g.ForEach(store.Wildcard, x, store.Wildcard, func(a rdf.Triple) bool {
			r.transClose(x, a)
			return true
		})
	case symPropT:
		r.g.ForEach(store.Wildcard, x, store.Wildcard, func(a rdf.Triple) bool {
			if a.O.IsIRI() || a.O.IsBlank() {
				r.infer("prp-symp", a.O, x, a.S, a, t)
			}
			return true
		})
	case funcPropT:
		r.g.ForEach(store.Wildcard, x, store.Wildcard, func(a rdf.Triple) bool {
			r.funcProp(x, a)
			return true
		})
	case invFuncT:
		r.g.ForEach(store.Wildcard, x, store.Wildcard, func(a rdf.Triple) bool {
			r.invFuncProp(x, a)
			return true
		})
	}
}

// onDomain applies prp-dom to all existing triples of the property.
func (r *Reasoner) onDomain(t rdf.Triple) {
	p, c := t.S, t.O
	r.g.ForEach(store.Wildcard, p, store.Wildcard, func(a rdf.Triple) bool {
		r.infer("prp-dom", a.S, typeT, c, a, t)
		return true
	})
}

// onRange applies prp-rng to all existing triples of the property.
func (r *Reasoner) onRange(t rdf.Triple) {
	p, c := t.S, t.O
	r.g.ForEach(store.Wildcard, p, store.Wildcard, func(a rdf.Triple) bool {
		if a.O.IsIRI() || a.O.IsBlank() {
			r.infer("prp-rng", a.O, typeT, c, a, t)
		}
		return true
	})
}

// onInverseOf applies prp-inv1/2 to existing triples of both properties.
func (r *Reasoner) onInverseOf(t rdf.Triple) {
	p1, p2 := t.S, t.O
	r.g.ForEach(store.Wildcard, p1, store.Wildcard, func(a rdf.Triple) bool {
		if a.O.IsIRI() || a.O.IsBlank() {
			r.infer("prp-inv1", a.O, p2, a.S, a, t)
		}
		return true
	})
	r.g.ForEach(store.Wildcard, p2, store.Wildcard, func(a rdf.Triple) bool {
		if a.O.IsIRI() || a.O.IsBlank() {
			r.infer("prp-inv2", a.O, p1, a.S, a, t)
		}
		return true
	})
}

// onEquivalentClass: scm-eqc1 both directions plus symmetry.
func (r *Reasoner) onEquivalentClass(t rdf.Triple) {
	c1, c2 := t.S, t.O
	r.infer("scm-eqc1", c1, scoT, c2, t)
	r.infer("scm-eqc1", c2, scoT, c1, t)
	r.infer("eq-sym(c)", c2, eqcT, c1, t)
}

// onEquivalentProperty: scm-eqp1 both directions plus symmetry.
func (r *Reasoner) onEquivalentProperty(t rdf.Triple) {
	p1, p2 := t.S, t.O
	r.infer("scm-eqp1", p1, spoT, p2, t)
	r.infer("scm-eqp1", p2, spoT, p1, t)
	r.infer("eq-sym(p)", p2, eqpT, p1, t)
}

// onSameAs: eq-sym, eq-trans, eq-rep-s/o (predicate replacement is omitted:
// sameAs between properties does not occur in FEO).
func (r *Reasoner) onSameAs(t rdf.Triple) {
	x, y := t.S, t.O
	if x == y {
		return
	}
	r.infer("eq-sym", y, sameT, x, t)
	for _, z := range r.g.Objects(y, sameT) {
		if z != x {
			r.infer("eq-trans", x, sameT, z, t, rdf.Triple{S: y, P: sameT, O: z})
		}
	}
	// eq-rep-s: (x same y) ∧ (x p o) → (y p o)
	r.g.ForEach(x, store.Wildcard, store.Wildcard, func(a rdf.Triple) bool {
		if a.P != sameT {
			r.infer("eq-rep-s", y, a.P, a.O, a, t)
		}
		return true
	})
	// eq-rep-o: (x same y) ∧ (s p x) → (s p y)
	r.g.ForEach(store.Wildcard, store.Wildcard, x, func(a rdf.Triple) bool {
		if a.P != sameT {
			r.infer("eq-rep-o", a.S, a.P, y, a, t)
		}
		return true
	})
}

// onAssertion handles a generic triple (x p y) as an instance assertion.
func (r *Reasoner) onAssertion(t rdf.Triple) {
	x, p, y := t.S, t.P, t.O
	// prp-spo1: superproperties carry the triple.
	for _, sup := range r.g.Objects(p, spoT) {
		if sup != p {
			r.infer("prp-spo1", x, sup, y, t, rdf.Triple{S: p, P: spoT, O: sup})
		}
	}
	// prp-dom / prp-rng.
	for _, c := range r.g.Objects(p, domT) {
		r.infer("prp-dom", x, typeT, c, t, rdf.Triple{S: p, P: domT, O: c})
	}
	if y.IsIRI() || y.IsBlank() {
		for _, c := range r.g.Objects(p, rngT) {
			r.infer("prp-rng", y, typeT, c, t, rdf.Triple{S: p, P: rngT, O: c})
		}
	}
	// prp-inv1/2.
	if y.IsIRI() || y.IsBlank() {
		for _, q := range r.g.Objects(p, invT) {
			r.infer("prp-inv1", y, q, x, t, rdf.Triple{S: p, P: invT, O: q})
		}
		for _, q := range r.g.Subjects(invT, p) {
			r.infer("prp-inv2", y, q, x, t, rdf.Triple{S: q, P: invT, O: p})
		}
		// prp-symp.
		if r.g.Has(p, typeT, symPropT) {
			r.infer("prp-symp", y, p, x, t, rdf.Triple{S: p, P: typeT, O: symPropT})
		}
		// prp-trp.
		if r.g.Has(p, typeT, transPropT) {
			r.transClose(p, t)
		}
		// prp-fp / prp-ifp.
		if r.g.Has(p, typeT, funcPropT) {
			r.funcProp(p, t)
		}
		if r.g.Has(p, typeT, invFuncT) {
			r.invFuncProp(p, t)
		}
	}
	// cls-svf1: (x p y) ∧ (y type filler) → (x type restriction).
	for _, rest := range r.expr.restrictionsByProp[p] {
		if rest.SomeFrom.IsValid() {
			if rest.SomeFrom == owlThingT || r.g.Has(y, typeT, rest.SomeFrom) {
				prem := []rdf.Triple{t}
				if rest.SomeFrom != owlThingT {
					prem = append(prem, rdf.Triple{S: y, P: typeT, O: rest.SomeFrom})
				}
				r.infer("cls-svf1", x, typeT, rest.Node, prem...)
			}
		}
		// cls-hv2: (x p v) with v the hasValue → (x type restriction).
		if rest.HasValue.IsValid() && rest.HasValue == y {
			r.infer("cls-hv2", x, typeT, rest.Node, t)
		}
		// cls-avf: (x type restriction) ∧ (x p y) → (y type filler).
		if rest.AllFrom.IsValid() && r.g.Has(x, typeT, rest.Node) {
			r.infer("cls-avf", y, typeT, rest.AllFrom, t, rdf.Triple{S: x, P: typeT, O: rest.Node})
		}
	}
	// prp-spo2: property chains. Any triple whose predicate appears in a
	// chain may complete an instantiation of that chain.
	for _, ci := range r.expr.chainsByStep[p] {
		r.applyChain(r.expr.chains[ci], t)
	}
	// eq-rep: replicate through sameAs aliases of x and y.
	if p != sameT {
		for _, alias := range r.g.Objects(x, sameT) {
			if alias != x {
				r.infer("eq-rep-s", alias, p, y, t, rdf.Triple{S: x, P: sameT, O: alias})
			}
		}
		if y.IsIRI() || y.IsBlank() {
			for _, alias := range r.g.Objects(y, sameT) {
				if alias != y {
					r.infer("eq-rep-o", x, p, alias, t, rdf.Triple{S: y, P: sameT, O: alias})
				}
			}
		}
	}
}

// transClose extends the transitive closure of property p around the new
// edge a = (x p y): joins on both sides.
func (r *Reasoner) transClose(p rdf.Term, a rdf.Triple) {
	x, y := a.S, a.O
	charPremise := rdf.Triple{S: p, P: typeT, O: transPropT}
	for _, z := range r.g.Objects(y, p) {
		if z != x {
			r.infer("prp-trp", x, p, z, a, rdf.Triple{S: y, P: p, O: z}, charPremise)
		}
	}
	for _, w := range r.g.Subjects(p, x) {
		if w != y {
			r.infer("prp-trp", w, p, y, rdf.Triple{S: w, P: p, O: x}, a, charPremise)
		}
	}
}

// applyChain applies prp-spo2 for one chain, seeded by the new triple t.
// It enumerates every full instantiation of the chain that uses t in at
// least one step position, joining the other steps against the graph.
func (r *Reasoner) applyChain(c chain, t rdf.Triple) {
	for pos, step := range c.Steps {
		if step != t.P {
			continue
		}
		// Walk backward from t.S through steps[0..pos-1] and forward from
		// t.O through steps[pos+1..], collecting premise sets.
		starts := []chainPath{{node: t.S, premises: nil}}
		for i := pos - 1; i >= 0; i-- {
			var next []chainPath
			for _, cp := range starts {
				for _, prev := range r.g.Subjects(c.Steps[i], cp.node) {
					prem := append([]rdf.Triple{{S: prev, P: c.Steps[i], O: cp.node}}, cp.premises...)
					next = append(next, chainPath{node: prev, premises: prem})
				}
			}
			starts = next
			if len(starts) == 0 {
				return
			}
		}
		ends := []chainPath{{node: t.O, premises: nil}}
		for i := pos + 1; i < len(c.Steps); i++ {
			var next []chainPath
			for _, cp := range ends {
				for _, nxt := range r.g.Objects(cp.node, c.Steps[i]) {
					prem := append(append([]rdf.Triple{}, cp.premises...), rdf.Triple{S: cp.node, P: c.Steps[i], O: nxt})
					next = append(next, chainPath{node: nxt, premises: prem})
				}
			}
			ends = next
			if len(ends) == 0 {
				return
			}
		}
		for _, s := range starts {
			for _, e := range ends {
				premises := make([]rdf.Triple, 0, len(s.premises)+1+len(e.premises))
				premises = append(premises, s.premises...)
				premises = append(premises, t)
				premises = append(premises, e.premises...)
				r.infer("prp-spo2", s.node, c.Super, e.node, premises...)
			}
		}
	}
}

// chainPath tracks one partial chain instantiation during prp-spo2.
type chainPath struct {
	node     rdf.Term
	premises []rdf.Triple
}

// funcProp applies prp-fp: two objects of a functional property are sameAs.
func (r *Reasoner) funcProp(p rdf.Term, a rdf.Triple) {
	for _, other := range r.g.Objects(a.S, p) {
		if other != a.O && (other.IsIRI() || other.IsBlank()) && (a.O.IsIRI() || a.O.IsBlank()) {
			r.infer("prp-fp", a.O, sameT, other, a, rdf.Triple{S: a.S, P: p, O: other})
		}
	}
}

// invFuncProp applies prp-ifp: two subjects sharing an object of an
// inverse-functional property are sameAs.
func (r *Reasoner) invFuncProp(p rdf.Term, a rdf.Triple) {
	for _, other := range r.g.Subjects(p, a.O) {
		if other != a.S {
			r.infer("prp-ifp", a.S, sameT, other, a, rdf.Triple{S: other, P: p, O: a.O})
		}
	}
}
