// Package reasoner implements a forward-chaining materializer for the OWL 2
// RL fragment that the Food Explanation Ontology (FEO) uses. It substitutes
// for the Pellet reasoner the paper runs before exporting inferred axioms:
// after Materialize, the graph contains every triple Listings 1-3 of the
// paper query for — transitive characteristic closures, inverse-property
// completions, sub-property inheritance, and equivalent-class membership
// (including intersection and restriction classes such as eo:Fact/eo:Foil).
//
// Two evaluation strategies are provided: semi-naive (delta-driven, the
// default) and naive (full re-evaluation each round, kept for the ablation
// benchmark that reproduces the paper's "a reasoner known to handle
// individuals more efficiently" motivation for choosing Pellet).
//
// The engine is dictionary-encoded end to end: triples enter the rule queue
// as store.ID triples, rule joins probe the store's ID indexes, and terms
// are only decoded at the public API boundary (Derivation, Proof) or when
// TraceDerivations is on.
package reasoner

import (
	"repro/internal/store"
)

// restriction describes an owl:Restriction node after structural parsing.
// Exactly one of SomeFrom, AllFrom, HasValue is set (the others are NoID).
type restriction struct {
	Node     store.ID // the restriction class node (usually a blank node)
	Prop     store.ID // owl:onProperty
	SomeFrom store.ID // owl:someValuesFrom filler, or NoID
	AllFrom  store.ID // owl:allValuesFrom filler, or NoID
	HasValue store.ID // owl:hasValue value, or NoID
}

// exprTable indexes OWL class expressions (intersections, unions,
// restrictions) for O(1) lookup during rule application, keyed by term ID.
// It is rebuilt whenever structural vocabulary triples change, which for
// ontology + instance loads happens once.
type exprTable struct {
	// intersections maps a class to its owl:intersectionOf member list.
	intersections map[store.ID][]store.ID
	// memberOfIntersection maps a member class to the intersection classes
	// that contain it.
	memberOfIntersection map[store.ID][]store.ID
	unions               map[store.ID][]store.ID
	memberOfUnion        map[store.ID][]store.ID
	// restrictionsByProp maps a property to the restrictions on it.
	restrictionsByProp map[store.ID][]restriction
	// byNode maps a restriction node to its parsed form.
	byNode map[store.ID]restriction
	// svfByFiller maps a someValuesFrom filler class to restrictions using it.
	svfByFiller map[store.ID][]restriction
	// chains holds owl:propertyChainAxiom definitions: super-property and
	// the chain of step properties.
	chains []chain
	// chainsByStep indexes chains by each property appearing in them.
	chainsByStep map[store.ID][]int
}

// chain is one owl:propertyChainAxiom: steps[0] ∘ steps[1] ∘ … ⊑ super.
type chain struct {
	Super store.ID
	Steps []store.ID
}

func buildExprTable(g *store.Graph, v vocab) *exprTable {
	t := &exprTable{
		intersections:        make(map[store.ID][]store.ID),
		memberOfIntersection: make(map[store.ID][]store.ID),
		unions:               make(map[store.ID][]store.ID),
		memberOfUnion:        make(map[store.ID][]store.ID),
		restrictionsByProp:   make(map[store.ID][]restriction),
		byNode:               make(map[store.ID]restriction),
		svfByFiller:          make(map[store.ID][]restriction),
		chainsByStep:         make(map[store.ID][]int),
	}
	g.ForEachID(store.NoID, v.inter, store.NoID, func(s, _, o store.ID) bool {
		if members, ok := g.ReadListID(o); ok && len(members) > 0 {
			t.intersections[s] = members
			for _, m := range members {
				t.memberOfIntersection[m] = append(t.memberOfIntersection[m], s)
			}
		}
		return true
	})
	g.ForEachID(store.NoID, v.union, store.NoID, func(s, _, o store.ID) bool {
		if members, ok := g.ReadListID(o); ok && len(members) > 0 {
			t.unions[s] = members
			for _, m := range members {
				t.memberOfUnion[m] = append(t.memberOfUnion[m], s)
			}
		}
		return true
	})
	g.ForEachID(store.NoID, v.onProp, store.NoID, func(s, _, o store.ID) bool {
		r := restriction{Node: s, Prop: o,
			SomeFrom: g.FirstObjectID(s, v.svf),
			AllFrom:  g.FirstObjectID(s, v.avf),
			HasValue: g.FirstObjectID(s, v.hv),
		}
		if r.SomeFrom == store.NoID && r.AllFrom == store.NoID && r.HasValue == store.NoID {
			return true // cardinality or other unsupported restriction
		}
		t.restrictionsByProp[r.Prop] = append(t.restrictionsByProp[r.Prop], r)
		t.byNode[r.Node] = r
		if r.SomeFrom != store.NoID {
			t.svfByFiller[r.SomeFrom] = append(t.svfByFiller[r.SomeFrom], r)
		}
		return true
	})
	g.ForEachID(store.NoID, v.chain, store.NoID, func(s, _, o store.ID) bool {
		steps, ok := g.ReadListID(o)
		if !ok || len(steps) < 2 {
			return true
		}
		idx := len(t.chains)
		t.chains = append(t.chains, chain{Super: s, Steps: steps})
		seen := store.NewIDSet()
		for _, st := range steps {
			if seen.Add(st) {
				t.chainsByStep[st] = append(t.chainsByStep[st], idx)
			}
		}
		return true
	})
	return t
}
